(* A tour of the ORC11 substrate through litmus tests, plus a hand-rolled
   litmus test written directly against the Prog DSL.

   Run with:  dune exec examples/litmus_tour.exe *)

open Compass_rmc
open Compass_machine
open Compass_clients
open Prog.Syntax

let vi n = Value.Int n

(* The stock battery: SB observable, MP forbidden under rel/acq, CoRR/LB
   forbidden, IRIW observable, fences synchronise, FAA atomic. *)
let stock () =
  Format.printf "== stock litmus battery ==@.";
  List.iter
    (fun (t : Litmus.t) ->
      let ok, report, obs = Litmus.verdict t in
      Format.printf "  %-12s %-40s %-10s observed %-6d %s@."
        report.Explore.name t.Litmus.descr
        (match t.Litmus.expect with
        | `Observable -> "observable"
        | `Forbidden -> "forbidden")
        obs
        (if ok then "OK" else "FAIL"))
    (Litmus.all ())

(* Writing your own: a "SB + release fences" test.  Release fences order
   writes but provide no read-side synchronisation, so the weak outcome
   stays observable — fences are not a global barrier. *)
let sb_with_rel_fences () =
  Format.printf "@.== custom litmus: SB with release fences ==@.";
  let both_zero = ref 0 in
  let scenario =
    {
      Explore.name = "SB+frel";
      build =
        (fun m ->
          let x = Machine.alloc m ~name:"x" ~init:(vi 0) 1 in
          let y = Machine.alloc m ~name:"y" ~init:(vi 0) 1 in
          let t a b =
            let* () = Prog.store a (vi 1) Mode.Rlx in
            let* () = Prog.fence Mode.F_rel in
            Prog.load b Mode.Rlx
          in
          Machine.spawn m [ t x y; t y x ];
          fun outcome ->
            match outcome with
            | Machine.Finished [| r1; r2 |] ->
                if Value.equal r1 (vi 0) && Value.equal r2 (vi 0) then
                  incr both_zero;
                Explore.Pass
            | _ -> Explore.Discard "other");
    }
  in
  let report = Explore.dfs scenario in
  Format.printf "  %a@.  both-zero observed in %d executions (still weak: \
                 release fences alone do not forbid SB)@."
    Explore.pp_report report !both_zero

(* Replaying a counterexample: run MP with a relaxed flag, find the racy
   execution, and print its trace. *)
let trace_demo () =
  Format.printf "@.== counterexample replay: MP with a racy non-atomic ==@.";
  let scenario =
    {
      Explore.name = "mp-race";
      build =
        (fun m ->
          let x = Machine.alloc m ~name:"x" ~init:(vi 0) 1 in
          let flag = Machine.alloc m ~name:"flag" ~init:(vi 0) 1 in
          let t1 =
            let* () = Prog.store x (vi 1) Mode.Na in
            Prog.returning_unit (Prog.store flag (vi 1) Mode.Rlx)
          in
          let t2 =
            let* _ = Prog.await flag Mode.Rlx (Value.equal (vi 1)) in
            Prog.load x Mode.Na
          in
          Machine.spawn m [ t1; t2 ];
          fun outcome ->
            match outcome with
            | Machine.Fault s -> Explore.Violation s
            | Machine.Finished _ -> Explore.Pass
            | _ -> Explore.Discard "other");
    }
  in
  let report = Explore.dfs scenario in
  match report.Explore.violations with
  | { Explore.message; trace } :: _ ->
      Format.printf "  found: %s@.  trace of the racy execution:@." message;
      let r = Explore.replay ~config:Machine.default_config scenario trace in
      Format.printf "%a@." Trace.pp (Machine.trace r.Explore.r_machine)
  | [] -> Format.printf "  no race found (unexpected)@."

let () =
  stock ();
  sb_with_rel_fences ();
  trace_demo ()
