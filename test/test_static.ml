open Compass_rmc
open Compass_machine
open Compass_clients
open Compass_analysis
open Compass_static

(* The static synchronization linter:

   - the planted bug is found: msqueue_weak's relaxed publication CAS is
     a publication defect, and weakening the correct queue's link_cas
     the same way flips its report from clean to flagged — matching the
     dynamic audit's Necessary verdict for that site;
   - no false positives: every correctly-synchronized registered
     structure lints clean at its declared modes;
   - soundness of the race candidate set (differential): every
     dynamically detected race site pair, across the litmus battery and
     the registered structures' workloads, appears among the static
     candidates. *)

let entry key =
  match Specreg.find key with
  | Some e -> e
  | None -> Alcotest.failf "no registered structure named %s" key

let analyze_entry ?overrides (e : Compass_spec.Libspec.entry) =
  Static.analyze ?overrides ~subject:e.Compass_spec.Libspec.key
    e.Compass_spec.Libspec.scenarios

let defect_sites r =
  List.map (fun (f : Lints.finding) -> f.Lints.site) (Static.defects r)
  |> List.sort_uniq compare

(* --- the planted bug ------------------------------------------------ *)

let test_ms_weak_flagged () =
  let r = analyze_entry (entry "ms-weak") in
  Alcotest.(check bool) "ms-weak is not clean" false (Static.clean r);
  let pubs =
    List.filter
      (fun (f : Lints.finding) ->
        f.Lints.severity = Lints.Defect && f.Lints.lint = "publication")
      r.Static.findings
  in
  Alcotest.(check bool)
    "publication defect lands on the relaxed link CAS" true
    (List.exists
       (fun (f : Lints.finding) ->
         f.Lints.site = "msqueue_weak.enq.link_cas")
       pubs)

(* --- no false positives at declared modes --------------------------- *)

let test_declared_modes_sweep () =
  List.iter
    (fun (e : Compass_spec.Libspec.entry) ->
      let r = analyze_entry e in
      let msg =
        Printf.sprintf "%s defects: %s" e.Compass_spec.Libspec.key
          (String.concat ", " (defect_sites r))
      in
      Alcotest.(check bool)
        msg
        (not e.Compass_spec.Libspec.expect_violation)
        (Static.clean r))
    (Specreg.all ())

(* --- weakening flips the correct queue ------------------------------ *)

let test_weaken_flips_ms () =
  let e = entry "ms" in
  let base = analyze_entry e in
  Alcotest.(check bool) "ms clean at declared modes" true (Static.clean base);
  Alcotest.(check bool)
    "link_cas predicted necessary" true
    (List.mem "msqueue.enq.link_cas" base.Static.predicted_necessary);
  let overrides =
    Override.weaken_access "msqueue.enq.link_cas" Mode.Rlx Override.empty
  in
  let weak = analyze_entry ~overrides e in
  Alcotest.(check bool) "weakened ms flagged" false (Static.clean weak);
  Alcotest.(check bool)
    "defect lands on the weakened site" true
    (List.mem "msqueue.enq.link_cas" (defect_sites weak))

(* --- differential soundness: dynamic races \subseteq static --------- *)

let config = { Machine.default_config with record_accesses = true }

let norm a b = if a <= b then (a, b) else (b, a)

let dynamic_pairs ?(max_execs = 4_000) scenarios =
  let agg = Races.agg_create () in
  List.iter
    (fun mk ->
      let sc =
        Instrument.with_accesses (mk ()) (fun log ->
            Races.agg_add ~oracle:false agg log)
      in
      ignore (Explore.dfs ~max_execs ~incremental:true ~config sc))
    scenarios;
  let s = Races.summary agg in
  List.map
    (fun (p : Races.site_pair) -> norm p.Races.site_a p.Races.site_b)
    s.Races.by_site
  |> List.sort_uniq compare

let check_differential name scenarios =
  let dyn = dynamic_pairs scenarios in
  let st = Static.analyze ~subject:name scenarios in
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: dynamic race (%s, %s) statically predicted" name a
           b)
        true
        (List.mem (a, b) st.Static.race_candidates))
    dyn

let test_differential_litmus () =
  List.iter
    (fun (t : Litmus.t) ->
      check_differential t.Litmus.scenario.Explore.name
        [ (fun () -> t.Litmus.scenario) ])
    (Litmus.racy_na () :: Litmus.all ())

let test_differential_structures () =
  List.iter
    (fun (e : Compass_spec.Libspec.entry) ->
      check_differential e.Compass_spec.Libspec.key
        e.Compass_spec.Libspec.scenarios)
    (Specreg.all ())

(* --- audit prioritization ------------------------------------------- *)

(* Feeding the static prediction to the audit must pay off on the
   cost-to-first-verdict metric: on ms, declaration order discovers
   tail_load first and spends a full acq->rlx exploration before its
   violation, while the prioritized order runs link_cas's weakest
   (verdict) mutant immediately — strictly fewer executions, no more
   mutants. *)
let test_prioritize_static () =
  let e = entry "ms" in
  let options =
    {
      Audit.default_options with
      execs = 4000;
      jobs = 1;
      reduce = Machine.RSleep;
    }
  in
  let scenarios = e.Compass_spec.Libspec.scenarios in
  let decl = Audit.run ~options ~probe:"ms" scenarios in
  let st = analyze_entry e in
  let predicted = st.Static.predicted_necessary in
  Alcotest.(check bool)
    "static predicts necessary sites on ms" true (predicted <> []);
  let prio =
    Audit.run ~options
      ~prioritize:(predicted @ st.Static.over_strong)
      ~verdict_first:(fun s -> List.mem s predicted)
      ~probe:"ms" scenarios
  in
  match (decl.Audit.first_violation, prio.Audit.first_violation) with
  | None, _ -> Alcotest.fail "declaration-order audit found no violation"
  | _, None -> Alcotest.fail "prioritized audit found no violation"
  | Some (dm, dx), Some (pm, px) ->
      Alcotest.(check bool)
        (Printf.sprintf "prioritized executions %d < declaration order %d" px
           dx)
        true (px < dx);
      Alcotest.(check bool)
        (Printf.sprintf "prioritized mutants %d <= declaration order %d" pm dm)
        true (pm <= dm)

let suite =
  [
    Alcotest.test_case "ms-weak publication flagged" `Quick test_ms_weak_flagged;
    Alcotest.test_case "declared modes lint clean" `Quick
      test_declared_modes_sweep;
    Alcotest.test_case "weakening link_cas flips ms" `Quick test_weaken_flips_ms;
    Alcotest.test_case "static prioritization reaches the verdict cheaper"
      `Quick test_prioritize_static;
    Alcotest.test_case "differential: litmus races covered" `Slow
      test_differential_litmus;
    Alcotest.test_case "differential: structure races covered" `Slow
      test_differential_structures;
  ]
