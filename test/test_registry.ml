open Compass_event
open Compass_machine
open Compass_spec
open Compass_dstruct
open Compass_clients

(* The spec registry and the refinement layer:

   - completeness: every Iface-exposed factory is registered, keys are
     unique, payloads match their declared names, duplicates are
     rejected;
   - the generic [Libspec.check] is byte-identical to the legacy per-kind
     checker compositions on explored executions (differential);
   - every entry's smoke workload explores cleanly — or violates, for
     the checked-in broken fixtures;
   - the spec object sits at the top of the ladder (SC-abs on every
     execution);
   - refinement: ms/treiber/hw outcome sets are included in their spec
     object's; ms-weak is not, with a replayable counterexample. *)

let entry key =
  match Specreg.find key with
  | Some e -> e
  | None -> Alcotest.failf "no registered structure named %s" key

(* --- completeness -------------------------------------------------- *)

let impl_name (e : Libspec.entry) =
  match e.Libspec.impl with
  | Specreg.Queue f -> Some f.Iface.q_name
  | Specreg.Stack f -> Some f.Iface.s_name
  | _ -> None

let test_all_factories_registered () =
  let registered = List.map (fun e -> e.Libspec.struct_name) (Specreg.all ()) in
  let queue_factories =
    [
      Msqueue.instantiate; Msqueue_fences.instantiate; Msqueue_weak.instantiate;
      Hwqueue.instantiate; Lockqueue.instantiate;
    ]
  in
  let stack_factories =
    [ Treiber.instantiate; Lockstack.instantiate; Elimination.instantiate ]
  in
  List.iter
    (fun (f : Iface.queue_factory) ->
      Alcotest.(check bool)
        (f.Iface.q_name ^ " registered")
        true
        (List.mem f.Iface.q_name registered))
    queue_factories;
  List.iter
    (fun (f : Iface.stack_factory) ->
      Alcotest.(check bool)
        (f.Iface.s_name ^ " registered")
        true
        (List.mem f.Iface.s_name registered))
    stack_factories

let test_keys_unique_and_consistent () =
  let keys = Specreg.keys () in
  Alcotest.(check int) "keys unique" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  List.iter
    (fun (e : Libspec.entry) ->
      (match impl_name e with
      | Some n ->
          Alcotest.(check string)
            (e.Libspec.key ^ " impl name matches")
            e.Libspec.struct_name n
      | None -> ());
      Alcotest.(check bool)
        (e.Libspec.key ^ " has a default client")
        true
        (e.Libspec.scenarios <> []);
      (* refinable entries must expose a factory the driver can pair
         with a spec object *)
      if e.Libspec.refinable then
        Alcotest.(check bool)
          (e.Libspec.key ^ " refinable implies factory")
          true
          (impl_name e <> None))
    (Specreg.all ())

let test_duplicate_key_rejected () =
  let e = entry "ms" in
  Alcotest.check_raises "duplicate key"
    (Invalid_argument "Libspec.register: duplicate key ms") (fun () ->
      Libspec.register e)

let test_style_names_round_trip () =
  List.iter
    (fun s ->
      match Libspec.style_of_string (Libspec.style_name s) with
      | Some s' -> Alcotest.(check bool) "round trip" true (s = s')
      | None -> Alcotest.failf "style %s does not parse" (Libspec.style_name s))
    Libspec.all_styles

(* --- differential: generic checker vs the legacy compositions ------ *)

(* The per-kind dispatch [Styles.check] used to hand-compose: replicate
   it here from the primitive spec modules and demand byte-identical
   violation lists from the generic [Libspec.check] on every explored
   execution. *)
let legacy_check style kind g =
  let consistent, abstract =
    match (kind : Libspec.kind) with
    | Libspec.Queue -> (Queue_spec.consistent, Queue_spec.abstract_state)
    | Libspec.Stack -> (Stack_spec.consistent, Stack_spec.abstract_state)
    | Libspec.Deque -> (Ws_spec.consistent, Ws_spec.abstract_state)
  in
  match (style : Libspec.style) with
  | Libspec.So_abs -> abstract g
  | Libspec.Sc_abs -> abstract ~require_empty:true g
  | Libspec.Hb -> consistent g
  | Libspec.Hb_abs -> consistent g @ abstract g
  | Libspec.Hist -> (
      consistent g
      @
      let lkind =
        match kind with
        | Libspec.Queue -> Linearize.Queue
        | Libspec.Stack -> Linearize.Stack
        | Libspec.Deque -> Linearize.Deque
      in
      if Linearize.commit_order_valid lkind g then []
      else
        match Linearize.search lkind g with
        | Linearize.Linearizable _ -> []
        | Linearize.Not_linearizable ->
            [ Check.v "lathist" "no linearisable total order exists" ]
        | Linearize.Gave_up ->
            [ Check.v "lathist-budget" "linearisation search gave up" ])

let render vs = List.map (fun v -> Format.asprintf "%a" Check.pp_violation v) vs

let differential_battery name kind graph_of sc =
  let execs = ref 0 in
  let sc =
    {
      sc with
      Explore.build =
        (fun m ->
          let judge = sc.Explore.build m in
          fun outcome ->
            (match outcome with
            | Machine.Finished _ ->
                incr execs;
                let g = graph_of () in
                List.iter
                  (fun style ->
                    Alcotest.(check (list string))
                      (Printf.sprintf "%s exec %d style %s" name !execs
                         (Libspec.style_name style))
                      (render (legacy_check style kind g))
                      (render
                         (Libspec.check style (Libspec.of_kind kind) g)))
                  Libspec.all_styles
            | _ -> ());
            judge outcome);
    }
  in
  let r = Explore.dfs ~max_execs:6_000 ~reduce:Machine.RSleep sc in
  Alcotest.(check bool) (name ^ " explored") true (r.Explore.executions > 0);
  Alcotest.(check bool) (name ^ " checked") true (!execs > 0)

let test_differential_queue () =
  (* a graph handle that outlives the scenario build *)
  let g = ref None in
  let factory =
    {
      Iface.q_name = "ms-queue";
      make_queue =
        (fun m ~name ->
          let q = Msqueue.instantiate.Iface.make_queue m ~name in
          g := Some q.Iface.q_graph;
          q);
    }
  in
  differential_battery "ms wl" Libspec.Queue
    (fun () -> Option.get !g)
    (Harness.queue_workload factory ~enqers:2 ~deqers:1 ~ops:1 ())

let test_differential_stack () =
  let g = ref None in
  let factory =
    {
      Iface.s_name = "treiber";
      make_stack =
        (fun m ~name ->
          let s = Treiber.instantiate.Iface.make_stack m ~name in
          g := Some s.Iface.s_graph;
          s);
    }
  in
  differential_battery "treiber wl" Libspec.Stack
    (fun () -> Option.get !g)
    (Harness.stack_workload factory ~pushers:2 ~poppers:1 ~ops:1 ())

let test_styles_shim_agrees () =
  (* the [Styles] compatibility shim must agree with [Libspec.check] on
     an empty graph for every kind and style (the full agreement is the
     differential above — this pins the re-export wiring) *)
  let g = Graph.create ~obj:0 ~name:"empty" in
  List.iter
    (fun kind ->
      List.iter
        (fun style ->
          Alcotest.(check (list string))
            "shim agrees"
            (render (Libspec.check style (Libspec.of_kind kind) g))
            (render (Styles.check style kind g)))
        Libspec.all_styles)
    [ Libspec.Queue; Libspec.Stack; Libspec.Deque ]

(* --- registry smoke ------------------------------------------------ *)

let test_smoke_all_entries () =
  List.iter
    (fun (e : Libspec.entry) ->
      let r = Explore.dfs ~max_execs:8_000 ~reduce:Machine.RSleep (e.Libspec.smoke ()) in
      Alcotest.(check bool)
        (e.Libspec.key ^ " explored")
        true
        (r.Explore.executions > 0);
      Alcotest.(check bool)
        (Printf.sprintf "%s smoke %s" e.Libspec.key
           (if e.Libspec.expect_violation then "violates" else "clean"))
        e.Libspec.expect_violation
        (r.Explore.violations <> []))
    (Specreg.all ())

(* --- the spec object tops the ladder ------------------------------- *)

let test_spec_object_sc_queue () =
  let sc =
    Harness.queue_workload ~style:Styles.Sc_abs (Specobj.queue ()) ~enqers:2
      ~deqers:1 ~ops:1 ()
  in
  let r = Explore.dfs ~max_execs:100_000 sc in
  Alcotest.(check bool) "explored" true r.Explore.complete;
  Alcotest.(check (list string)) "SC-abs holds" []
    (List.map
       (fun (f : Explore.failure) -> f.Explore.message)
       r.Explore.violations)

let test_spec_object_sc_stack () =
  let sc =
    Harness.stack_workload ~style:Styles.Sc_abs (Specobj.stack ()) ~pushers:2
      ~poppers:1 ~ops:1 ()
  in
  let r = Explore.dfs ~max_execs:100_000 sc in
  Alcotest.(check bool) "explored" true r.Explore.complete;
  Alcotest.(check (list string)) "SC-abs holds" []
    (List.map
       (fun (f : Explore.failure) -> f.Explore.message)
       r.Explore.violations)

(* --- refinement ----------------------------------------------------- *)

let refine_options =
  { Refine.default_options with max_execs = 120_000; reduce = Machine.RSleep }

let test_refine_passes () =
  List.iter
    (fun key ->
      let r = Refine.run ~options:refine_options (entry key) in
      Alcotest.(check bool) (key ^ " refines") true r.Refine.ok;
      List.iter
        (fun (c : Refine.client_result) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s spec side exhaustive (%s)" key c.Refine.client)
            true c.Refine.spec_complete)
        r.Refine.clients)
    [ "ms"; "treiber"; "hw" ]

let test_refine_msweak_fails_replayably () =
  let e = entry "ms-weak" in
  let r = Refine.run ~options:refine_options e in
  Alcotest.(check bool) "ms-weak does not refine" false r.Refine.ok;
  match r.Refine.counterexample with
  | None -> Alcotest.fail "no counterexample recorded"
  | Some (i, f) -> (
      match Refine.client_scenario e i with
      | None -> Alcotest.failf "no refinement client %d" i
      | Some sc -> (
          let r =
            Explore.replay ~config:Machine.default_config sc f.Explore.trace
          in
          match r.Explore.r_verdict with
          | Explore.Violation m ->
              Alcotest.(check string) "replay reproduces the violation"
                f.Explore.message m
          | Explore.Pass -> Alcotest.fail "counterexample replayed to Pass"
          | Explore.Discard d ->
              Alcotest.failf "counterexample discarded: %s" d))

let suite =
  [
    Alcotest.test_case "registry: every factory registered" `Quick
      test_all_factories_registered;
    Alcotest.test_case "registry: keys unique, payloads consistent" `Quick
      test_keys_unique_and_consistent;
    Alcotest.test_case "registry: duplicate keys rejected" `Quick
      test_duplicate_key_rejected;
    Alcotest.test_case "registry: style names round-trip" `Quick
      test_style_names_round_trip;
    Alcotest.test_case "check: generic = legacy on ms executions" `Slow
      test_differential_queue;
    Alcotest.test_case "check: generic = legacy on treiber executions" `Slow
      test_differential_stack;
    Alcotest.test_case "check: Styles shim agrees with Libspec" `Quick
      test_styles_shim_agrees;
    Alcotest.test_case "registry: smoke workloads (broken fixtures violate)"
      `Slow test_smoke_all_entries;
    Alcotest.test_case "specobj: queue satisfies SC-abs" `Slow
      test_spec_object_sc_queue;
    Alcotest.test_case "specobj: stack satisfies SC-abs" `Slow
      test_spec_object_sc_stack;
    Alcotest.test_case "refine: ms/treiber/hw included in spec object" `Slow
      test_refine_passes;
    Alcotest.test_case "refine: ms-weak fails with replayable script" `Slow
      test_refine_msweak_fails_replayably;
  ]
