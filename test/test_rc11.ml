open Compass_machine
open Compass_dstruct
open Compass_clients

(* Differential validation: every execution the view-based machine
   produces must satisfy the RC11 axioms when rebuilt declaratively
   (po/rf/mo/fr/sw/hb from the recorded accesses).  Any disagreement is a
   bug in either the view machinery or the checker. *)

let config = { Machine.default_config with record_accesses = true }

(* Wrap a scenario: after its own judge passes, run the axiomatic check. *)
let with_rc11 (sc : Explore.scenario) : Explore.scenario =
  {
    sc with
    Explore.build =
      (fun m ->
        let judge = sc.Explore.build m in
        fun outcome ->
          match judge outcome with
          | Explore.Pass -> (
              match outcome with
              | Machine.Finished _ -> (
                  match Rc11.check (Machine.accesses m) with
                  | [] -> Explore.Pass
                  | v :: _ -> Explore.Violation v)
              | _ -> Explore.Pass)
          | other -> other);
  }

let check_ok name (r : Explore.report) =
  Alcotest.(check (list string))
    (name ^ " axiom violations")
    []
    (List.map (fun (f : Explore.failure) -> f.Explore.message) r.Explore.violations)

let dfs ?(max_execs = 20_000) sc =
  Explore.dfs ~max_execs ~config (with_rc11 sc)

let rand ?(execs = 1_000) sc = Explore.random ~execs ~seed:5 ~config (with_rc11 sc)

let test_litmus_axioms () =
  List.iter
    (fun (t : Litmus.t) ->
      let r = dfs t.Litmus.scenario in
      check_ok r.Explore.name r)
    (Litmus.all ())

let test_litmus_axioms_gap () =
  let config = { config with Machine.policy = `Gap } in
  List.iter
    (fun (t : Litmus.t) ->
      let r = Explore.dfs ~max_execs:20_000 ~config (with_rc11 t.Litmus.scenario) in
      check_ok (r.Explore.name ^ "(gap)") r)
    [ Litmus.sb (); Litmus.two_two_w (); Litmus.corr (); Litmus.coww () ]

let test_msqueue_axioms () =
  check_ok "msqueue"
    (dfs (Harness.queue_workload Msqueue.instantiate ~enqers:2 ~deqers:1 ~ops:1 ()))

let test_msqueue_fences_axioms () =
  check_ok "msqueue-fences"
    (dfs
       (Harness.queue_workload Msqueue_fences.instantiate ~enqers:2 ~deqers:1
          ~ops:1 ()))

let test_hwqueue_axioms () =
  check_ok "hwqueue"
    (dfs (Harness.queue_workload Hwqueue.instantiate ~enqers:2 ~deqers:1 ~ops:1 ()))

let test_treiber_axioms () =
  check_ok "treiber"
    (dfs (Harness.stack_workload Treiber.instantiate ~pushers:2 ~poppers:1 ~ops:1 ()))

let test_exchanger_axioms () =
  check_ok "exchanger" (dfs (Harness.exchanger_workload ~threads:2 ()))

let test_elimination_axioms () =
  check_ok "elimination"
    (rand
       (Harness.stack_workload Elimination.instantiate ~pushers:2 ~poppers:2
          ~ops:1 ()))

let test_lockqueue_axioms () =
  check_ok "lockqueue"
    (dfs ~max_execs:10_000
       (Harness.queue_workload Lockqueue.instantiate ~enqers:2 ~deqers:1 ~ops:1 ()))

let test_chaselev_axioms () =
  check_ok "chaselev"
    (rand ~execs:2_000
       (Ws_client.make ~tasks:2 ~thieves:1 ~steals:1 (Ws_client.fresh_stats ())))

let test_mp_client_axioms () =
  check_ok "mp"
    (dfs ~max_execs:10_000 (Mp.make Msqueue.instantiate (Mp.fresh_stats ())))

(* Sanity: the checker is not vacuous — a fabricated bad execution is
   rejected.  A read whose rf source is mo-hidden behind an hb-later
   write violates coherence. *)
let test_rc11_rejects_coherence_violation () =
  let open Compass_rmc in
  let l = Loc.make ~base:99 ~off:0 in
  let mk aid tid kind mode read_ts write_ts =
    Access.Access { aid; tid; loc = l; kind; mode; read_ts; write_ts; site = None }
  in
  let accesses =
    [
      (* T0: writes 1 then 2 (mo by timestamps), then reads the OLD write:
         po ∪ rf ∪ fr cycle at the location. *)
      mk 0 0 Access.Store Mode.Rlx None (Some 1);
      mk 1 0 Access.Store Mode.Rlx None (Some 2);
      mk 2 0 Access.Load Mode.Rlx (Some 1) None;
    ]
  in
  Alcotest.(check bool) "coherence violation detected" true
    (Rc11.check accesses <> [])

let test_rc11_rejects_atomicity_violation () =
  let open Compass_rmc in
  let l = Loc.make ~base:98 ~off:0 in
  let mk aid tid kind mode read_ts write_ts =
    Access.Access { aid; tid; loc = l; kind; mode; read_ts; write_ts; site = None }
  in
  let accesses =
    [
      mk 0 0 Access.Store Mode.Rlx None (Some 1);
      (* an intervening write between the update and its source *)
      mk 1 1 Access.Store Mode.Rlx None (Some 2);
      mk 2 2 Access.Update Mode.AcqRel (Some 1) (Some 3);
    ]
  in
  Alcotest.(check bool) "atomicity violation detected" true
    (List.exists
       (fun s -> String.length s >= 14 && String.sub s 0 14 = "rc11-atomicity")
       (Rc11.check accesses))

let test_rc11_rejects_race () =
  let open Compass_rmc in
  let l = Loc.make ~base:97 ~off:0 in
  let mk aid tid kind mode read_ts write_ts =
    Access.Access { aid; tid; loc = l; kind; mode; read_ts; write_ts; site = None }
  in
  let accesses =
    [
      mk 0 0 Access.Store Mode.Na None (Some 1);
      mk 1 1 Access.Load Mode.Na (Some 1) None;
    ]
  in
  Alcotest.(check bool) "race detected" true
    (List.exists
       (fun s -> String.length s >= 9 && String.sub s 0 9 = "rc11-race")
       (Rc11.check accesses))

let suite =
  [
    Alcotest.test_case "litmus battery satisfies the axioms" `Slow
      test_litmus_axioms;
    Alcotest.test_case "litmus under gap timestamps" `Slow
      test_litmus_axioms_gap;
    Alcotest.test_case "msqueue satisfies the axioms" `Slow test_msqueue_axioms;
    Alcotest.test_case "msqueue-fences satisfies the axioms" `Slow
      test_msqueue_fences_axioms;
    Alcotest.test_case "hwqueue satisfies the axioms" `Slow test_hwqueue_axioms;
    Alcotest.test_case "treiber satisfies the axioms" `Slow test_treiber_axioms;
    Alcotest.test_case "exchanger satisfies the axioms" `Slow
      test_exchanger_axioms;
    Alcotest.test_case "elimination satisfies the axioms" `Slow
      test_elimination_axioms;
    Alcotest.test_case "lockqueue satisfies the axioms" `Slow
      test_lockqueue_axioms;
    Alcotest.test_case "chaselev satisfies the axioms" `Slow
      test_chaselev_axioms;
    Alcotest.test_case "MP client satisfies the axioms" `Slow
      test_mp_client_axioms;
    Alcotest.test_case "checker rejects coherence violations" `Quick
      test_rc11_rejects_coherence_violation;
    Alcotest.test_case "checker rejects atomicity violations" `Quick
      test_rc11_rejects_atomicity_violation;
    Alcotest.test_case "checker rejects races" `Quick test_rc11_rejects_race;
  ]
