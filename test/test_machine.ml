open Compass_rmc
open Compass_machine
open Prog.Syntax
open Helpers

(* The interleaving machine: solo execution, spawn/run/finale, oracle
   logging, replay determinism, commits, and await semantics. *)

let solo_prog () =
  let m = Machine.create () in
  let r =
    Machine.solo m
      (let* l = Prog.alloc ~name:"x" 1 in
       let* () = Prog.store l (vi 7) Mode.Na in
       let* v = Prog.load l Mode.Na in
       Prog.return v)
  in
  Alcotest.(check value) "solo runs" (vi 7) r

let test_spawn_run () =
  let m = Machine.create () in
  let x = Machine.alloc m ~name:"x" ~init:(vi 0) 1 in
  let t = Prog.map (Prog.faa x 1 Mode.Rlx) (fun old -> vi old) in
  Machine.spawn m [ t; t; t ];
  match Machine.run m (Oracle.fresh_latest ()) with
  | Machine.Finished vs ->
      let sum =
        Array.fold_left (fun acc v -> acc + Value.to_int_exn v) 0 vs
      in
      Alcotest.(check int) "FAA olds sum" 3 sum;
      Machine.join_views m;
      Alcotest.(check value) "final count" (vi 3)
        (Machine.solo m (Prog.load x Mode.Na))
  | o -> Alcotest.failf "unexpected outcome %a" Machine.pp_outcome o

let test_finale_joins_views () =
  let m = Machine.create () in
  let x = Machine.alloc m ~name:"x" ~init:(vi 0) 1 in
  (* Two threads non-atomically write disjoint cells... here one cell
     written by one thread; finale must read it race-free. *)
  Machine.spawn m [ Prog.returning_unit (Prog.store x (vi 5) Mode.Na) ];
  (match Machine.run m (Oracle.fresh_latest ()) with
  | Machine.Finished _ -> ()
  | o -> Alcotest.failf "unexpected outcome %a" Machine.pp_outcome o);
  Alcotest.(check value) "finale reads na" (vi 5)
    (Machine.finale m (Prog.load x Mode.Na))

let test_race_is_fault () =
  (* Schedule: writer first, then reader (which has not synchronised). *)
  let rec find_fault script n =
    if n > 50 then Alcotest.fail "no race found"
    else
      let m = Machine.create () in
      let x = Machine.alloc m ~name:"x" ~init:(vi 0) 1 in
      Machine.spawn m
        [
          Prog.returning_unit (Prog.store x (vi 1) Mode.Na); Prog.load x Mode.Na;
        ];
      match Machine.run m (Oracle.script (Decision.of_ints script)) with
      | Machine.Fault _ -> ()
      | _ -> find_fault (Array.append script [| 0 |]) (n + 1)
  in
  find_fault [||] 0

let test_await_blocks () =
  let m = Machine.create () in
  let x = Machine.alloc m ~name:"x" ~init:(vi 0) 1 in
  Machine.spawn m
    [ Prog.map (Prog.await x Mode.Acq (Value.equal (vi 1))) (fun v -> v) ];
  match Machine.run m (Oracle.fresh_latest ()) with
  | Machine.Blocked _ -> ()
  | o -> Alcotest.failf "expected blocked, got %a" Machine.pp_outcome o

let test_await_wakes () =
  let m = Machine.create () in
  let x = Machine.alloc m ~name:"x" ~init:(vi 0) 1 in
  Machine.spawn m
    [
      Prog.map (Prog.await x Mode.Acq (Value.equal (vi 1))) (fun v -> v);
      Prog.returning_unit (Prog.store x (vi 1) Mode.Rel);
    ];
  match Machine.run m (Oracle.fresh_latest ()) with
  | Machine.Finished vs -> Alcotest.(check value) "await value" (vi 1) vs.(0)
  | o -> Alcotest.failf "unexpected %a" Machine.pp_outcome o

let test_out_of_fuel_blocks () =
  let m = Machine.create () in
  Machine.spawn m
    [
      Prog.map
        (Prog.with_fuel ~fuel:3 ~what:"test" (fun () ->
             Prog.map Prog.yield (fun () -> None)))
        (fun () -> Value.Unit);
    ];
  match Machine.run m (Oracle.fresh_latest ()) with
  | Machine.Blocked s ->
      Alcotest.(check bool) "mentions fuel" true
        (String.length s > 0 && String.sub s 0 3 = "out")
  | o -> Alcotest.failf "unexpected %a" Machine.pp_outcome o

let test_step_budget () =
  let config = { Machine.default_config with max_steps = 5 } in
  let m = Machine.create ~config () in
  let x = Machine.alloc m ~name:"x" ~init:(vi 0) 1 in
  let rec spin () : Value.t Prog.t =
    let* _ = Prog.load x Mode.Rlx in
    spin ()
  in
  Machine.spawn m [ spin () ];
  match Machine.run m (Oracle.fresh_latest ()) with
  | Machine.Bounded -> ()
  | o -> Alcotest.failf "expected bounded, got %a" Machine.pp_outcome o

let test_replay_determinism () =
  (* Two runs with the same script produce identical outcomes + traces. *)
  let mk () =
    let config = { Machine.default_config with record_trace = true } in
    let m = Machine.create ~config () in
    let x = Machine.alloc m ~name:"x" ~init:(vi 0) 1 in
    let t = Prog.map (Prog.faa x 1 Mode.Rlx) (fun o -> vi o) in
    Machine.spawn m [ t; t ];
    m
  in
  let run script =
    let m = mk () in
    let outcome = Machine.run m (Oracle.script (Decision.of_ints script)) in
    (Format.asprintf "%a" Machine.pp_outcome outcome,
     Format.asprintf "%a" Trace.pp (Machine.trace m))
  in
  let s = [| 1; 0 |] in
  Alcotest.(check (pair string string)) "deterministic replay" (run s) (run s)

let test_oracle_logging () =
  let o = Oracle.random ~seed:42 in
  let c1 = Oracle.choose o ~arity:3 in
  let c2 = Oracle.choose o ~arity:5 in
  Alcotest.(check (list int)) "decisions" [ c1; c2 ] (Oracle.decisions o);
  Alcotest.(check (list int)) "arities" [ 3; 5 ] (Oracle.arities o)

let test_tid_op () =
  let m = Machine.create () in
  Machine.spawn m
    [ Prog.map Prog.tid (fun t -> vi t); Prog.map Prog.tid (fun t -> vi t) ];
  match Machine.run m (Oracle.fresh_latest ()) with
  | Machine.Finished vs ->
      Alcotest.(check value) "tid 0" (vi 0) vs.(0);
      Alcotest.(check value) "tid 1" (vi 1) vs.(1)
  | o -> Alcotest.failf "unexpected %a" Machine.pp_outcome o

(* Commits: an annotated store creates an event carrying the thread's
   views; the message is patched so readers acquire the event. *)
let test_commit_event_flow () =
  let open Compass_event in
  let m = Machine.create () in
  let g = Machine.new_graph m ~name:"obj" in
  let x = Machine.alloc m ~name:"x" ~init:(vi 0) 1 in
  let producer =
    let* e = Prog.reserve in
    Prog.returning_unit
      (Prog.store x (vi 1) Mode.Rel
         ~commit:(Commit.always ~obj:(Graph.obj g) (fun _ -> (e, Event.Custom ("W", [])))))
  in
  let consumer =
    let* _ = Prog.await x Mode.Acq (Value.equal (vi 1)) in
    let* e = Prog.reserve in
    Prog.returning_unit
      (Prog.store x (vi 2) Mode.Rel
         ~commit:(Commit.always ~obj:(Graph.obj g) (fun _ -> (e, Event.Custom ("R", [])))))
  in
  Machine.spawn m [ producer; consumer ];
  (match Machine.run m (Oracle.fresh_latest ()) with
  | Machine.Finished _ -> ()
  | o -> Alcotest.failf "unexpected %a" Machine.pp_outcome o);
  Alcotest.(check int) "two events" 2 (Graph.size g);
  match Graph.events_by_cix g with
  | [ w; r ] ->
      Alcotest.(check bool) "consumer observed producer's event" true
        (Graph.lhb g ~before:w.Event.id ~after:r.Event.id);
      Alcotest.(check bool) "producer did not observe consumer" false
        (Graph.lhb g ~before:r.Event.id ~after:w.Event.id)
  | _ -> Alcotest.fail "expected two events"

let test_rmw_release_sequence () =
  (* An acquire read of the last RMW in a chain synchronises with the head
     release write (C11 release sequences). *)
  let m = Machine.create () in
  let x = Machine.alloc m ~name:"x" ~init:(vi 0) 1 in
  let data = Machine.alloc m ~name:"d" ~init:(vi 0) 1 in
  let t1 =
    let* () = Prog.store data (vi 9) Mode.Na in
    Prog.returning_unit (Prog.store x (vi 1) Mode.Rel)
  in
  let t2 =
    let* _ = Prog.await x Mode.Rlx (Value.equal (vi 1)) in
    Prog.map (Prog.faa x 1 Mode.Rlx) (fun _ -> Value.Unit)
  in
  let t3 =
    let* _ = Prog.await x Mode.Acq (Value.equal (vi 2)) in
    Prog.load data Mode.Na
  in
  Machine.spawn m [ t1; t2; t3 ];
  match Machine.run m (Oracle.fresh_latest ()) with
  | Machine.Finished vs ->
      Alcotest.(check value) "release sequence transfers view" (vi 9) vs.(2)
  | o -> Alcotest.failf "unexpected %a" Machine.pp_outcome o

let suite =
  [
    Alcotest.test_case "solo execution" `Quick solo_prog;
    Alcotest.test_case "spawn/run FAA" `Quick test_spawn_run;
    Alcotest.test_case "finale joins views" `Quick test_finale_joins_views;
    Alcotest.test_case "race becomes Fault" `Quick test_race_is_fault;
    Alcotest.test_case "await blocks" `Quick test_await_blocks;
    Alcotest.test_case "await wakes" `Quick test_await_wakes;
    Alcotest.test_case "fuel exhaustion blocks" `Quick test_out_of_fuel_blocks;
    Alcotest.test_case "step budget bounds" `Quick test_step_budget;
    Alcotest.test_case "replay determinism" `Quick test_replay_determinism;
    Alcotest.test_case "oracle logging" `Quick test_oracle_logging;
    Alcotest.test_case "tid op" `Quick test_tid_op;
    Alcotest.test_case "commit event flow" `Quick test_commit_event_flow;
    Alcotest.test_case "rmw release sequence" `Quick test_rmw_release_sequence;
  ]
