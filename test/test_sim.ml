open Compass_rmc
open Compass_event
open Compass_machine
open Compass_spec
open Compass_dstruct
open Compass_clients
open Compass_sim
open Helpers

(* The forward-simulation checker and the most-general-client generator:

   - the Specobj labelled-transition interface respects FIFO/LIFO
     legality (satellite of the lib/sim work);
   - Simrel finds commit-point assignments exactly when one exists —
     including the non-monotone case where a commit-order prefix is
     unlinearizable but the full set is (Herlihy-Wing shape), which a
     naive prefix-closed checker would wrongly reject;
   - MGC enumeration is deterministic, well-formed on every registry
     entry, and at depth 2 contains the MP-shaped client that
     rediscovers the ms-weak violation;
   - simulation agrees with outcome-inclusion refinement on the whole
     refinable registry (simulation is the stronger check: its verdict
     matches on every correct structure and on the broken fixture);
   - verdicts are invariant under reduction, incrementality and job
     count. *)

let vi n = Value.Int n

let entry key =
  match Specreg.find key with
  | Some e -> e
  | None -> Alcotest.failf "no registered structure named %s" key

(* --- Specobj labelled transitions ---------------------------------- *)

let test_step_queue_fifo () =
  let step st ~id ~op ~result = Specobj.step Libspec.Queue st ~id ~op ~result in
  (* empty removal commits EmpDeq, not a value *)
  Alcotest.(check bool) "empty deq illegal" true
    (step [] ~id:0 ~op:Libspec.Remove ~result:(Event.Deq (vi 1)) = None);
  Alcotest.(check bool) "EmpDeq legal on empty" true
    (step [] ~id:0 ~op:Libspec.Remove ~result:Event.EmpDeq <> None);
  let st1 =
    match step [] ~id:0 ~op:(Libspec.Insert (vi 1)) ~result:(Event.Enq (vi 1)) with
    | Some (st, so) ->
        Alcotest.(check (list (pair int int))) "enq has no so edges" [] so;
        st
    | None -> Alcotest.fail "enq 1 rejected"
  in
  let st2 =
    match step st1 ~id:1 ~op:(Libspec.Insert (vi 2)) ~result:(Event.Enq (vi 2)) with
    | Some (st, _) -> st
    | None -> Alcotest.fail "enq 2 rejected"
  in
  (* FIFO: the oldest element comes out, with an so edge from its enq *)
  Alcotest.(check bool) "deq 2 before 1 illegal" true
    (step st2 ~id:2 ~op:Libspec.Remove ~result:(Event.Deq (vi 2)) = None);
  (match step st2 ~id:2 ~op:Libspec.Remove ~result:(Event.Deq (vi 1)) with
  | Some (st, so) ->
      Alcotest.(check (list (pair int int))) "so: enq 0 -> deq 2" [ (0, 2) ] so;
      Alcotest.(check bool) "one element left" true (List.length st = 1)
  | None -> Alcotest.fail "FIFO deq rejected");
  Alcotest.(check bool) "EmpDeq illegal on non-empty" true
    (step st2 ~id:2 ~op:Libspec.Remove ~result:Event.EmpDeq = None);
  (* events outside the kind's vocabulary don't step *)
  Alcotest.(check bool) "pop result rejected by queue kind" true
    (step st2 ~id:2 ~op:Libspec.Remove ~result:(Event.Pop (vi 1)) = None)

let test_step_stack_lifo () =
  let step st ~id ~op ~result = Specobj.step Libspec.Stack st ~id ~op ~result in
  let st2 =
    match
      step [] ~id:0 ~op:(Libspec.Insert (vi 1)) ~result:(Event.Push (vi 1))
    with
    | Some (st1, _) -> (
        match
          step st1 ~id:1 ~op:(Libspec.Insert (vi 2)) ~result:(Event.Push (vi 2))
        with
        | Some (st, _) -> st
        | None -> Alcotest.fail "push 2 rejected")
    | None -> Alcotest.fail "push 1 rejected"
  in
  Alcotest.(check bool) "pop 1 under 2 illegal" true
    (step st2 ~id:2 ~op:Libspec.Remove ~result:(Event.Pop (vi 1)) = None);
  match step st2 ~id:2 ~op:Libspec.Remove ~result:(Event.Pop (vi 2)) with
  | Some (_, so) ->
      Alcotest.(check (list (pair int int))) "so: push 1 -> pop 2" [ (1, 2) ] so
  | None -> Alcotest.fail "LIFO pop rejected"

let test_step_event_vocabulary () =
  Alcotest.(check bool) "exchange is outside queue vocabulary" true
    (Specobj.step_event Libspec.Queue []
       {
         Event.id = 0;
         obj = 0;
         typ = Event.Exchange (vi 1, vi 2);
         tid = 0;
         view = View.bot;
         logview = Lview.singleton 0;
         cix = (1, 0);
       }
    = None)

(* --- Simrel: commit-point assignment search ------------------------- *)

let ev id typ preds step = (id, typ, preds, step)

let test_simrel_fifo_ok () =
  let g =
    mk_graph
      [
        ev 0 (Event.Enq (vi 1)) [] 1;
        ev 1 (Event.Enq (vi 2)) [ 0 ] 2;
        ev 2 (Event.Deq (vi 1)) [ 0; 1 ] 3;
      ]
      [ (0, 2) ]
  in
  match Simrel.check Libspec.Queue g with
  | Simrel.Simulates _ -> ()
  | _ -> Alcotest.fail "legal FIFO history should simulate"

let test_simrel_reorder_freedom () =
  (* without an lhb edge between the enqueues, either insertion order is
     a legal assignment, so dequeuing the later-committed value is fine *)
  let g =
    mk_graph
      [
        ev 0 (Event.Enq (vi 1)) [] 1;
        ev 1 (Event.Enq (vi 2)) [] 2;
        ev 2 (Event.Deq (vi 2)) [ 1 ] 3;
      ]
      [ (1, 2) ]
  in
  match Simrel.check Libspec.Queue g with
  | Simrel.Simulates _ -> ()
  | _ -> Alcotest.fail "unordered enqueues may linearise either way"

let test_simrel_fifo_break_localised () =
  (* Enq 1 happens-before Enq 2, yet 2 is dequeued first: no assignment;
     the witness localises to the dequeue *)
  let g =
    mk_graph
      [
        ev 0 (Event.Enq (vi 1)) [] 1;
        ev 1 (Event.Enq (vi 2)) [ 0 ] 2;
        ev 2 (Event.Deq (vi 2)) [ 0; 1 ] 3;
      ]
      [ (1, 2) ]
  in
  match Simrel.check Libspec.Queue g with
  | Simrel.Breaks b ->
      Alcotest.(check int) "breaks at the dequeue" 2 b.Simrel.index;
      Alcotest.(check bool) "at the Deq event" true
        (Event.typ_equal b.Simrel.at.Event.typ (Event.Deq (vi 2)));
      Alcotest.(check int) "two matched commits before it" 2
        (List.length b.Simrel.prefix)
  | _ -> Alcotest.fail "ordered FIFO violation should break"

let test_simrel_nonmonotone_prefix () =
  (* the Herlihy-Wing shape: the commit-order prefix
     {Enq 1 <lhb Enq 2, Deq 2} admits no assignment, but the full set
     (with Deq 1) does — the checker must judge the full set *)
  let full =
    mk_graph
      [
        ev 0 (Event.Enq (vi 1)) [] 1;
        ev 1 (Event.Enq (vi 2)) [ 0 ] 2;
        ev 2 (Event.Deq (vi 2)) [ 1 ] 3;
        ev 3 (Event.Deq (vi 1)) [ 0 ] 4;
      ]
      [ (1, 2); (0, 3) ]
  in
  (match Simrel.check Libspec.Queue full with
  | Simrel.Simulates _ -> ()
  | _ -> Alcotest.fail "full hw-shaped set should simulate");
  let prefix =
    mk_graph
      [
        ev 0 (Event.Enq (vi 1)) [] 1;
        ev 1 (Event.Enq (vi 2)) [ 0 ] 2;
        ev 2 (Event.Deq (vi 2)) [ 1 ] 3;
      ]
      [ (1, 2) ]
  in
  match Simrel.check Libspec.Queue prefix with
  | Simrel.Breaks _ -> ()
  | _ -> Alcotest.fail "the bare prefix alone should not simulate"

let test_simrel_lifo_break () =
  let g =
    mk_graph
      [
        ev 0 (Event.Push (vi 1)) [] 1;
        ev 1 (Event.Push (vi 2)) [ 0 ] 2;
        ev 2 (Event.Pop (vi 1)) [ 0; 1 ] 3;
      ]
      [ (0, 2) ]
  in
  match Simrel.check Libspec.Stack g with
  | Simrel.Breaks b -> Alcotest.(check int) "breaks at the pop" 2 b.Simrel.index
  | _ -> Alcotest.fail "LIFO violation should break"

let test_simrel_so_mismatch () =
  (* value-correct but the recorded so edge names the wrong insertion *)
  let g =
    mk_graph
      [
        ev 0 (Event.Enq (vi 1)) [] 1;
        ev 1 (Event.Deq (vi 1)) [ 0 ] 2;
      ]
      [] (* missing the so edge the spec predicts *)
  in
  match Simrel.check Libspec.Queue g with
  | Simrel.Breaks _ -> ()
  | _ -> Alcotest.fail "missing so edge should break the abstraction"

(* --- MGC generation -------------------------------------------------- *)

let test_mgc_deterministic () =
  let a = Mgc.generate ~depth:2 () and b = Mgc.generate ~depth:2 () in
  Alcotest.(check (list string)) "same ids, same order"
    (List.map (fun (c : Mgc.client) -> c.Mgc.id) a)
    (List.map (fun (c : Mgc.client) -> c.Mgc.id) b)

let test_mgc_counts () =
  Alcotest.(check int) "depth 1 family" 8
    (List.length (Mgc.generate ~depth:1 ()));
  (* 6 sequences per thread, 36 pairs, plus one handoff per (p, q)
     position pair: 36 + (sum of lengths)^2 = 36 + 100 *)
  Alcotest.(check int) "depth 2 family" 136
    (List.length (Mgc.generate ~depth:2 ()));
  let ids = List.map (fun (c : Mgc.client) -> c.Mgc.id) (Mgc.generate ~depth:2 ()) in
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_mgc_find_mp_shape () =
  (* the MP pattern of the hand-written E1 client: two inserts, a
     release-flag publish, an acquiring consumer, one remove *)
  match Mgc.find ~depth:2 "ii|r+h2.1" with
  | Some c ->
      Alcotest.(check bool) "threads" true
        (c.Mgc.threads = [| [ Mgc.Ins; Mgc.Ins ]; [ Mgc.Rem ] |]);
      Alcotest.(check bool) "handoff after 2nd op, before 1st" true
        (c.Mgc.handoff = Some (2, 1))
  | None -> Alcotest.fail "MP-shaped client missing from the depth-2 family"

let test_mgc_well_formed_all_entries () =
  (* every registry entry instantiates and replays its first path without
     raising — including the factory-less chaselev and exchanger *)
  List.iter
    (fun (e : Libspec.entry) ->
      List.iter
        (fun c ->
          let sc = Mgc.scenario e ~judge:(fun _ _ -> Explore.Pass) c in
          let r =
            Explore.replay ~config:Machine.default_config sc [||]
          in
          match r.Explore.r_verdict with
          | Explore.Violation m ->
              Alcotest.failf "%s / %s first path violates: %s" e.Libspec.key
                c.Mgc.id m
          | _ -> ())
        (Mgc.generate ~depth:1 ()))
    (Specreg.all ())

(* --- simulation end-to-end ------------------------------------------- *)

let quick_options depth =
  { Sim.default_options with mgc_depth = depth; max_execs = 120_000 }

let test_sim_msweak_witness () =
  let e = entry "ms-weak" in
  let r = Sim.run ~options:(quick_options 1) e in
  Alcotest.(check bool) "ms-weak does not simulate" false r.Sim.ok;
  match r.Sim.witness with
  | None -> Alcotest.fail "no witness recorded"
  | Some w -> (
      (match w.Sim.w_detail with
      | None -> Alcotest.fail "witness not localised to a break step"
      | Some d ->
          Alcotest.(check bool) "break names a step" true (d.Sim.d_step >= 0));
      (* the shrunk script replays to the same simulation-level message *)
      match Sim.client_scenario ~depth:1 e w.Sim.w_client with
      | None -> Alcotest.failf "no generated client %s" w.Sim.w_client
      | Some sc -> (
          let r =
            Explore.replay ~config:Machine.default_config sc w.Sim.w_trace
          in
          match r.Explore.r_verdict with
          | Explore.Violation m ->
              Alcotest.(check string) "replay reproduces the break"
                w.Sim.w_message m
          | Explore.Pass -> Alcotest.fail "witness replayed to Pass"
          | Explore.Discard d -> Alcotest.failf "witness discarded: %s" d))

let test_mgc_depth2_rediscovers_msweak () =
  (* The hand-written E1 client finds ms-weak's violation through its
     unsynchronised dequeuer racing with the two enqueues; the depth-2
     family rediscovers exactly that shape as the no-handoff client
     [ii|r].  The handoff variant [ii|r+h2.1] is the E1 *property*
     pattern (both enqueues happen-before the dequeue): the flag
     sequentialises the race away, so even ms-weak simulates under it —
     and any empty dequeue there would be a commit-point break. *)
  let e = entry "ms-weak" in
  let r =
    Sim.run ~options:{ (quick_options 2) with only_client = Some "ii|r" } e
  in
  Alcotest.(check int) "exactly one client selected" 1 r.Sim.clients_run;
  Alcotest.(check bool) "the E1 race shape breaks ms-weak" false r.Sim.ok;
  (match r.Sim.witness with
  | Some w ->
      Alcotest.(check bool) "simulation-level message" true
        (String.length w.Sim.w_message >= 16
        && String.sub w.Sim.w_message 0 16 = "simulation break")
  | None -> Alcotest.fail "no witness on the rediscovered violation");
  let r' =
    Sim.run
      ~options:{ (quick_options 2) with only_client = Some "ii|r+h2.1" }
      e
  in
  Alcotest.(check bool) "the synchronised MP pattern simulates" true r'.Sim.ok

let test_hw_depth2_weak_empdeq () =
  (* At depth 2 the MGC exposes the weak Herlihy-Wing empty dequeue:
     under client [ir|ir] a dequeuer can bound its scan by a stale
     relaxed read of [back], miss the other thread's enqueue, and commit
     EmpDeq.  No commit-point assignment exists — each thread's program
     order pins its enqueue before its removal, so some element always
     remains when the EmpDeq must step.  The registered workloads
     (Hist:sat on the ladder) never run an enqueue and a dequeue on the
     same thread, so they cannot produce the shape; the bench therefore
     gates hw at depth 1 and pins this break as an expected finding. *)
  let e = entry "hw" in
  let r =
    Sim.run
      ~options:
        {
          (quick_options 2) with
          only_client = Some "ir|ir";
          until_violation = true;
        }
      e
  in
  Alcotest.(check bool) "ir|ir breaks hw at depth 2" false r.Sim.ok;
  match r.Sim.witness with
  | None -> Alcotest.fail "no witness on the hw break"
  | Some w -> (
      (match w.Sim.w_detail with
      | Some d ->
          Alcotest.(check bool) "commit-point break, not a fault" false
            d.Sim.d_fault
      | None -> Alcotest.fail "witness not localised");
      (* Independent cross-check that the break is semantic, not a Simrel
         artefact: the repo's LAThist backtracking search also finds no
         linearisation of the replayed graph. *)
      match Mgc.find ~depth:2 w.Sim.w_client with
      | None -> Alcotest.fail "witness client not in the family"
      | Some c -> (
          let gref = ref None in
          let sc =
            Mgc.scenario e
              ~judge:(fun g _ ->
                gref := Some g;
                Explore.Pass)
              c
          in
          let _ = Explore.replay ~config:Machine.default_config sc w.Sim.w_trace in
          match !gref with
          | None -> Alcotest.fail "replay did not reach the judge"
          | Some g -> (
              match Linearize.search Linearize.Queue g with
              | Linearize.Not_linearizable -> ()
              | Linearize.Linearizable _ ->
                  Alcotest.fail "LAThist search linearises the sim break"
              | Linearize.Gave_up -> Alcotest.fail "LAThist search gave up")))

let test_sim_agrees_with_refine () =
  (* simulation is the stronger method: across the whole refinable
     registry its verdict coincides with outcome-inclusion (both pass on
     correct structures, both reject the broken fixture) *)
  let refine_options =
    { Refine.default_options with max_execs = 120_000; reduce = Machine.RSleep }
  in
  List.iter
    (fun (e : Libspec.entry) ->
      if e.Libspec.refinable then begin
        let s = Sim.run ~options:(quick_options 1) e in
        let o = Refine.run ~options:refine_options e in
        Alcotest.(check bool)
          (e.Libspec.key ^ ": simulation matches outcome-inclusion")
          o.Refine.ok s.Sim.ok;
        Alcotest.(check bool)
          (e.Libspec.key ^ ": simulation implies outcome-inclusion")
          true
          ((not s.Sim.ok) || o.Refine.ok)
      end)
    (Specreg.all ())

let test_sim_verdict_invariance () =
  (* the aggregate verdict (and violating client set) must not depend on
     the reduction, incrementality or job count *)
  List.iter
    (fun key ->
      let e = entry key in
      let base = ref None in
      List.iter
        (fun (reduce, incremental, jobs) ->
          let r =
            Sim.run
              ~options:
                { (quick_options 1) with reduce; incremental; jobs }
              e
          in
          let verdict =
            ( r.Sim.ok,
              List.filter_map
                (fun (row : Sim.client_row) ->
                  if row.Sim.c_ok then None else Some row.Sim.c_id)
                r.Sim.rows )
          in
          match !base with
          | None -> base := Some verdict
          | Some v ->
              Alcotest.(check bool)
                (Printf.sprintf "%s invariant under (%s, incremental=%b, jobs=%d)"
                   key
                   (match reduce with
                   | Machine.RSleep -> "sleep"
                   | Machine.RDpor -> "dpor"
                   | Machine.RDporRf -> "dpor-rf"
                   | Machine.RNone -> "none")
                   incremental jobs)
                true (v = verdict))
        [
          (Machine.RSleep, true, 1);
          (Machine.RSleep, false, 1);
          (Machine.RDpor, true, 1);
          (Machine.RDpor, false, 1);
          (Machine.RSleep, true, 2);
          (Machine.RDpor, true, 2);
        ])
    [ "lock-queue"; "ms-weak" ]

let suite =
  [
    Alcotest.test_case "specobj: queue steps are FIFO-legal" `Quick
      test_step_queue_fifo;
    Alcotest.test_case "specobj: stack steps are LIFO-legal" `Quick
      test_step_stack_lifo;
    Alcotest.test_case "specobj: foreign events don't step" `Quick
      test_step_event_vocabulary;
    Alcotest.test_case "simrel: legal FIFO history simulates" `Quick
      test_simrel_fifo_ok;
    Alcotest.test_case "simrel: unordered enqueues reorder freely" `Quick
      test_simrel_reorder_freedom;
    Alcotest.test_case "simrel: FIFO break localised to the dequeue" `Quick
      test_simrel_fifo_break_localised;
    Alcotest.test_case "simrel: hw-shaped non-monotone prefix" `Quick
      test_simrel_nonmonotone_prefix;
    Alcotest.test_case "simrel: LIFO break localised" `Quick
      test_simrel_lifo_break;
    Alcotest.test_case "simrel: so-edge mismatch breaks" `Quick
      test_simrel_so_mismatch;
    Alcotest.test_case "mgc: enumeration is deterministic" `Quick
      test_mgc_deterministic;
    Alcotest.test_case "mgc: family sizes and id uniqueness" `Quick
      test_mgc_counts;
    Alcotest.test_case "mgc: depth-2 family contains the MP shape" `Quick
      test_mgc_find_mp_shape;
    Alcotest.test_case "mgc: well-formed on every registry entry" `Slow
      test_mgc_well_formed_all_entries;
    Alcotest.test_case "sim: ms-weak breaks with replayable localised witness"
      `Slow test_sim_msweak_witness;
    Alcotest.test_case "sim: depth-2 MP client rediscovers ms-weak" `Slow
      test_mgc_depth2_rediscovers_msweak;
    Alcotest.test_case "sim: depth-2 exposes hw's weak empty dequeue" `Slow
      test_hw_depth2_weak_empdeq;
    Alcotest.test_case "sim: agrees with outcome-inclusion on the registry"
      `Slow test_sim_agrees_with_refine;
    Alcotest.test_case "sim: verdict invariant under reduce/incremental/jobs"
      `Slow test_sim_verdict_invariance;
  ]
