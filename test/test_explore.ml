open Compass_rmc
open Compass_machine
open Compass_dstruct
open Compass_clients
open Prog.Syntax

(* The exploration engine: parallel sharded DFS ([Explore.pdfs]) must
   agree with the sequential driver field for field, sleep-set reduction
   must explore strictly fewer executions without losing any violation or
   litmus verdict, and per-execution machines must be isolated enough to
   run on several domains at once. *)

let vi n = Value.Int n

let msgs (r : Explore.report) =
  List.sort compare (List.map (fun (f : Explore.failure) -> f.Explore.message) r.Explore.violations)

let scripts (r : Explore.report) =
  List.sort compare
    (List.map
       (fun (f : Explore.failure) -> Array.to_list (Explore.failure_script f))
       r.Explore.violations)

let report_eq ~name (a : Explore.report) (b : Explore.report) =
  Alcotest.(check int) (name ^ ": executions") a.Explore.executions b.Explore.executions;
  Alcotest.(check int) (name ^ ": passed") a.Explore.passed b.Explore.passed;
  Alcotest.(check int) (name ^ ": discarded") a.Explore.discarded b.Explore.discarded;
  Alcotest.(check int) (name ^ ": blocked") a.Explore.blocked b.Explore.blocked;
  Alcotest.(check int) (name ^ ": bounded") a.Explore.bounded b.Explore.bounded;
  Alcotest.(check int) (name ^ ": pruned") a.Explore.pruned b.Explore.pruned;
  Alcotest.(check int) (name ^ ": dpor_pruned") a.Explore.dpor_pruned b.Explore.dpor_pruned;
  Alcotest.(check bool) (name ^ ": complete") a.Explore.complete b.Explore.complete;
  Alcotest.(check (list string)) (name ^ ": violation multiset") (msgs a) (msgs b)

let red_name = function
  | Machine.RNone -> "none"
  | Machine.RSleep -> "sleep"
  | Machine.RDpor -> "dpor"
  | Machine.RDporRf -> "dpor-rf"

(* For two drivers with the same enumeration order (e.g. incremental vs
   replay-from-root DFS) the kept violations must match script for
   script, not just message for message. *)
let report_eq_strict ~name a b =
  report_eq ~name a b;
  Alcotest.(check (list (list int)))
    (name ^ ": violation scripts (sorted)")
    (scripts a) (scripts b)

(* An intentionally broken scenario: MP over raw cells with a relaxed
   flag, where the stale read is reported as a violation.  The full DFS
   finds it, and so must every reduced or parallel variant.  A third
   thread hammers an unrelated location so there is genuine scheduling
   nondeterminism for the sleep sets to prune. *)
let seeded_mp_violation () =
  {
    Explore.name = "seeded-mp-rlx";
    build =
      (fun m ->
        let x = Machine.alloc m ~name:"x" ~init:(vi 0) 1 in
        let y = Machine.alloc m ~name:"y" ~init:(vi 0) 1 in
        let flag = Machine.alloc m ~name:"flag" ~init:(vi 0) 1 in
        let t1 =
          let* () = Prog.store x (vi 1) Mode.Rlx in
          let* () = Prog.store flag (vi 1) Mode.Rlx in
          Prog.return Value.Unit
        in
        let t2 =
          let* _ = Prog.await flag Mode.Rlx (Value.equal (vi 1)) in
          Prog.load x Mode.Rlx
        in
        let t3 =
          let* () = Prog.store y (vi 1) Mode.Rlx in
          let* () = Prog.store y (vi 2) Mode.Rlx in
          Prog.return Value.Unit
        in
        Machine.spawn m [ t1; t2; t3 ];
        function
        | Machine.Finished [| _; r2; _ |] ->
            if Value.equal r2 (vi 0) then Explore.Violation "stale read of x"
            else Explore.Pass
        | Machine.Finished _ -> Explore.Violation "arity"
        | Machine.Fault s -> Explore.Violation ("fault: " ^ s)
        | Machine.Blocked s -> Explore.Discard s
        | Machine.Bounded -> Explore.Discard "bounded"
        | Machine.Pruned -> Explore.Discard "pruned");
  }

(* The equivalence scenarios the spec asks for — an MP queue client, a
   litmus test, and Treiber stack workloads — plus a seeded violation.
   The 2-pusher Treiber tree has ~300k executions, so that one runs with
   reduction on both sides; the small Treiber covers the unreduced
   path. *)
let equivalence_cases () =
  [
    ( "mp-queue",
      Machine.RNone,
      fun () -> Mp.make Msqueue.instantiate (Mp.fresh_stats ()) );
    ("litmus-sb", Machine.RNone, fun () -> (Litmus.sb ()).Litmus.scenario);
    ( "treiber-small",
      Machine.RNone,
      fun () ->
        Harness.stack_workload Treiber.instantiate ~pushers:1 ~poppers:1 ~ops:1 () );
    ( "treiber-reduced",
      Machine.RSleep,
      fun () ->
        Harness.stack_workload Treiber.instantiate ~pushers:2 ~poppers:1 ~ops:1 () );
    ("seeded-violation", Machine.RNone, fun () -> seeded_mp_violation ());
  ]

(* -- incremental vs replay-from-root differential suite ----------------------

   The incremental checkpoint/restore engine must be observationally
   identical to the replay-from-root oracle: same enumeration order, so
   every report field — including the kept violation scripts — must agree
   exactly, whatever the checkpoint stride, with and without sleep-set
   reduction, and under pdfs sharding (per-worker engines). *)

let test_incremental_equivalence () =
  List.iter
    (fun (name, _, mk) ->
      List.iter
        (fun reduce ->
          let oracle =
            Explore.dfs ~incremental:false ~reduce ~max_execs:200_000 (mk ())
          in
          List.iter
            (fun stride ->
              let inc =
                Explore.dfs ~incremental:true ~stride ~reduce
                  ~max_execs:200_000 (mk ())
              in
              report_eq_strict
                ~name:
                  (Printf.sprintf "%s (reduce %s, stride %d)" name
                     (red_name reduce) stride)
                oracle inc)
            [ 1; 2; 5 ])
        [ Machine.RNone; Machine.RSleep ])
    (equivalence_cases ())

let test_incremental_litmus () =
  (* Every litmus verdict — pass/fail plus observation counts — is
     preserved by the incremental engine. *)
  List.iter
    (fun mk ->
      let t_seq = mk () and t_inc = mk () in
      let ok_seq, r_seq, obs_seq = Litmus.verdict ~incremental:false t_seq in
      let ok_inc, r_inc, obs_inc = Litmus.verdict ~incremental:true t_inc in
      Alcotest.(check bool)
        (r_seq.Explore.name ^ ": verdict preserved incrementally")
        ok_seq ok_inc;
      Alcotest.(check int)
        (r_seq.Explore.name ^ ": observation count preserved")
        obs_seq obs_inc;
      report_eq_strict ~name:r_seq.Explore.name r_seq r_inc)
    [
      Litmus.sb; Litmus.sb_sc_fences; (fun () -> Litmus.mp ());
      Litmus.mp_fences; Litmus.corr; Litmus.cowr; Litmus.lb; Litmus.wrc;
      (fun () -> Litmus.faa_atomic ());
    ]

let test_incremental_pdfs () =
  (* Sharding composes with checkpointing: each worker's engine only ever
     restores checkpoints of its own shard, so incremental pdfs matches
     the replay-from-root sequential driver field for field. *)
  List.iter
    (fun (name, reduce, mk) ->
      let oracle =
        Explore.dfs ~incremental:false ~reduce ~max_execs:200_000 (mk ())
      in
      let par =
        Explore.pdfs ~jobs:4 ~incremental:true ~reduce ~max_execs:200_000
          (mk ())
      in
      report_eq ~name:(name ^ " (incremental pdfs vs replay dfs)") oracle par)
    (equivalence_cases ())

let test_pdfs_equivalence () =
  List.iter
    (fun (name, reduce, mk) ->
      let seq = Explore.dfs ~reduce ~max_execs:200_000 (mk ()) in
      Alcotest.(check bool) (name ^ ": sequential exhausts") true seq.Explore.complete;
      List.iter
        (fun jobs ->
          let par = Explore.pdfs ~jobs ~reduce ~max_execs:200_000 (mk ()) in
          report_eq ~name:(Printf.sprintf "%s (jobs %d)" name jobs) seq par)
        [ 2; 4 ])
    (equivalence_cases ())

let test_reduce_equivalence () =
  (* Reduced DFS: same verdict on every litmus test, strictly fewer
     executions over the battery, and a nonzero pruned tally. *)
  let full_total = ref 0 and red_total = ref 0 and pruned_total = ref 0 in
  List.iter
    (fun mk ->
      let t_full = mk () and t_red = mk () in
      let ok_full, r_full, obs_full = Litmus.verdict t_full in
      let ok_red, r_red, _ = Litmus.verdict ~reduce:Machine.RSleep t_red in
      Alcotest.(check bool)
        (r_full.Explore.name ^ ": verdict preserved under reduction")
        ok_full ok_red;
      (match t_full.Litmus.expect with
      | `Observable ->
          Alcotest.(check bool)
            (r_full.Explore.name ^ ": observable outcome survives reduction")
            true
            (obs_full > 0)
      | `Forbidden -> ());
      full_total := !full_total + r_full.Explore.executions;
      red_total := !red_total + r_red.Explore.executions;
      pruned_total := !pruned_total + r_red.Explore.pruned)
    [
      Litmus.sb; Litmus.sb_sc_fences; (fun () -> Litmus.mp ());
      Litmus.mp_fences; Litmus.corr; Litmus.cowr; Litmus.lb; Litmus.wrc;
      (fun () -> Litmus.faa_atomic ());
    ];
  Alcotest.(check bool)
    (Printf.sprintf "battery: reduced %d < full %d executions" !red_total !full_total)
    true
    (!red_total < !full_total);
  Alcotest.(check bool) "battery: subtrees were pruned" true (!pruned_total > 0)

let test_reduce_keeps_violations () =
  let full = Explore.dfs (seeded_mp_violation ()) in
  let red = Explore.dfs ~reduce:Machine.RSleep (seeded_mp_violation ()) in
  Alcotest.(check bool) "full DFS finds the seeded violation" false (Explore.ok full);
  Alcotest.(check bool) "reduced DFS finds it too" false (Explore.ok red);
  (* Reduction collapses equivalent violating interleavings to one
     representative, so instance counts shrink — but every distinct
     violation must survive. *)
  let distinct r = List.sort_uniq compare (msgs r) in
  Alcotest.(check (list string)) "distinct violations preserved" (distinct full)
    (distinct red);
  Alcotest.(check bool) "reduction explored fewer executions" true
    (red.Explore.executions < full.Explore.executions)

let test_pdfs_reduce () =
  (* Reduction composes with sharding: replay reconstructs the sleep sets
     from the root, so pruning is identical however the tree is carved. *)
  let seq = Explore.dfs ~reduce:Machine.RSleep (seeded_mp_violation ()) in
  let par =
    Explore.pdfs ~jobs:4 ~reduce:Machine.RSleep (seeded_mp_violation ())
  in
  report_eq ~name:"reduced pdfs vs reduced dfs" seq par

(* -- flat vs map backend differential suite ----------------------------------

   The flat array store (growable write-history arrays, truncating
   restores) must be observationally identical to the persistent-map
   oracle.  Both backends feed the same machine the same choices in the
   same order, so the comparison is exact — every report field including
   the kept violation scripts — with and without sleep-set reduction,
   replaying from the root or from checkpoints at any stride, and under
   the work-stealing parallel driver at any job count. *)

let map_config = { Machine.default_config with Machine.backend = `Map }

let backend_cases () =
  ( "hw-queue",
    Machine.RNone,
    fun () -> Mp.make Hwqueue.instantiate (Mp.fresh_stats ()) )
  :: equivalence_cases ()

let test_backend_equivalence () =
  List.iter
    (fun (name, _, mk) ->
      List.iter
        (fun reduce ->
          (* Same enumeration order on both sides, so a budget-capped run
             compares exactly too — the big trees need not exhaust. *)
          let oracle =
            Explore.dfs ~config:map_config ~incremental:false ~reduce
              ~max_execs:60_000 (mk ())
          in
          let replay =
            Explore.dfs ~incremental:false ~reduce ~max_execs:60_000 (mk ())
          in
          report_eq_strict
            ~name:
              (Printf.sprintf "%s (map vs flat replay, reduce %s)" name
                 (red_name reduce))
            oracle replay;
          List.iter
            (fun stride ->
              let inc =
                Explore.dfs ~incremental:true ~stride ~reduce ~max_execs:60_000
                  (mk ())
              in
              report_eq_strict
                ~name:
                  (Printf.sprintf "%s (map vs flat stride %d, reduce %s)" name
                     stride (red_name reduce))
                oracle inc)
            [ 1; 2; 5 ])
        [ Machine.RNone; Machine.RSleep ])
    (backend_cases ())

let test_backend_pdfs () =
  (* Parallel flat exploration vs the sequential map oracle: on a
     complete search the work-stealing partition covers exactly the same
     executions whatever the job count. *)
  List.iter
    (fun (name, reduce, mk) ->
      let oracle =
        Explore.dfs ~config:map_config ~reduce ~max_execs:200_000 (mk ())
      in
      Alcotest.(check bool)
        (name ^ ": map oracle exhausts")
        true oracle.Explore.complete;
      List.iter
        (fun jobs ->
          let par = Explore.pdfs ~jobs ~reduce ~max_execs:200_000 (mk ()) in
          report_eq
            ~name:(Printf.sprintf "%s (flat pdfs jobs %d vs map dfs)" name jobs)
            oracle par)
        [ 1; 2; 4 ])
    (backend_cases ())

let test_domain_isolation () =
  (* Hammer two domains with allocation-heavy exploration concurrently;
     every per-execution machine must be isolated (the shared block-name
     registry is the one global, and it is mutex-guarded). *)
  let explore () = Explore.dfs ~max_execs:2_000 (Mp.make Msqueue.instantiate (Mp.fresh_stats ())) in
  let reference = explore () in
  let domains = Array.init 2 (fun _ -> Domain.spawn explore) in
  Array.iter
    (fun d -> report_eq ~name:"concurrent domain" reference (Domain.join d))
    domains

let suite =
  [
    Alcotest.test_case "incremental == replay dfs (strides 1/2/5, ±reduce)"
      `Slow test_incremental_equivalence;
    Alcotest.test_case "incremental preserves litmus verdicts" `Quick
      test_incremental_litmus;
    Alcotest.test_case "incremental pdfs == replay dfs" `Slow
      test_incremental_pdfs;
    Alcotest.test_case "pdfs == dfs (3 scenarios + seeded violation)" `Slow
      test_pdfs_equivalence;
    Alcotest.test_case "sleep sets preserve litmus verdicts" `Slow
      test_reduce_equivalence;
    Alcotest.test_case "sleep sets keep seeded violations" `Quick
      test_reduce_keeps_violations;
    Alcotest.test_case "reduced pdfs == reduced dfs" `Quick test_pdfs_reduce;
    Alcotest.test_case "flat == map oracle (±reduce, strides 1/2/5)" `Slow
      test_backend_equivalence;
    Alcotest.test_case "flat pdfs (jobs 1/2/4) == map dfs" `Slow
      test_backend_pdfs;
    Alcotest.test_case "two domains explore concurrently" `Slow
      test_domain_isolation;
  ]
