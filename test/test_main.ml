(* COMPASS-OCaml test runner.

   Suites are grouped bottom-up: substrate (views, memory), machine, event
   graphs and orders, spec checkers, data structures, and the paper's
   client verifications.  Model-checking tests are tagged [`Slow]; run
   [dune runtest] for everything or [ALCOTEST_QUICK_TESTS=1] for the fast
   subset. *)

let () =
  Alcotest.run "compass"
    [
      ("view", Test_view.suite);
      ("memory", Test_memory.suite);
      ("machine", Test_machine.suite);
      ("decision", Test_decision.suite);
      ("explore", Test_explore.suite);
      ("dpor", Test_dpor.suite);
      ("fuzz", Test_fuzz.suite);
      ("event", Test_event.suite);
      ("order", Test_order.suite);
      ("queue-spec", Test_queue_spec.suite);
      ("stack-spec", Test_stack_spec.suite);
      ("exchanger-spec", Test_exchanger_spec.suite);
      ("ws-spec", Test_ws_spec.suite);
      ("linearize", Test_linearize.suite);
      ("spsc-spec", Test_spsc_spec.suite);
      ("conformance", Test_conformance.suite);
      ("rc11", Test_rc11.suite);
      ("registry", Test_registry.suite);
      ("sim", Test_sim.suite);
      ("analysis", Test_analysis.suite);
      ("static", Test_static.suite);
      ("prefix", Test_prefix.suite);
      ("dstruct", Test_dstruct.suite);
      ("clients", Test_clients.suite);
    ]
