open Compass_rmc
open Compass_machine
open Compass_dstruct
open Compass_clients
open Prog.Syntax
module Fz = Compass_fuzz

(* The schedule-fuzzing subsystem: the shrinker must preserve the exact
   violation and emit a 1-minimal script; fuzz runs must be byte-identical
   across repeated runs for a fixed seed (including parallel workers); a
   small PCT budget must find the deliberately broken MS queue; corpus
   mutants must never raise on replay; and the random explorer's distinct
   statistic must behave. *)

let vi n = Value.Int n

(* Same shape as test_explore's seeded violation: MP over raw cells with
   a relaxed flag (stale read = violation), plus a third thread hammering
   an unrelated location so scripts have slack for the shrinker to
   remove. *)
let mp_rlx_scenario () =
  {
    Explore.name = "fuzz-mp-rlx";
    build =
      (fun m ->
        let x = Machine.alloc m ~name:"x" ~init:(vi 0) 1 in
        let y = Machine.alloc m ~name:"y" ~init:(vi 0) 1 in
        let flag = Machine.alloc m ~name:"flag" ~init:(vi 0) 1 in
        let t1 =
          let* () = Prog.store x (vi 1) Mode.Rlx in
          let* () = Prog.store flag (vi 1) Mode.Rlx in
          Prog.return Value.Unit
        in
        let t2 =
          let* _ = Prog.await flag Mode.Rlx (Value.equal (vi 1)) in
          Prog.load x Mode.Rlx
        in
        let t3 =
          let* () = Prog.store y (vi 1) Mode.Rlx in
          let* () = Prog.store y (vi 2) Mode.Rlx in
          Prog.return Value.Unit
        in
        Machine.spawn m [ t1; t2; t3 ];
        function
        | Machine.Finished [| _; r2; _ |] ->
            if Value.equal r2 (vi 0) then Explore.Violation "stale read of x"
            else Explore.Pass
        | Machine.Finished _ -> Explore.Violation "arity"
        | Machine.Fault s -> Explore.Violation ("fault: " ^ s)
        | Machine.Blocked s -> Explore.Discard s
        | Machine.Bounded -> Explore.Discard "bounded"
        | Machine.Pruned -> Explore.Discard "pruned");
  }

let ms_weak () = Mp.make Msqueue_weak.instantiate (Mp.fresh_stats ())

let find_violation mk =
  let r = Explore.dfs ~until_violation:true ~max_execs:200_000 (mk ()) in
  match r.Explore.violations with
  | f :: _ -> f
  | [] -> Alcotest.fail "expected the scenario to violate under DFS"

(* -- shrinker ----------------------------------------------------------------- *)

let test_shrink_preserves_violation () =
  let f = find_violation mp_rlx_scenario in
  let stats, small =
    Fz.Shrink.minimize ~scenario:(mp_rlx_scenario ()) ~message:f.Explore.message
      f.Explore.trace
  in
  Alcotest.(check bool)
    "shrunk script reproduces the same violation" true
    (Fz.Shrink.reproduces ~scenario:(mp_rlx_scenario ())
       ~message:f.Explore.message small);
  Alcotest.(check bool)
    "shrunk no longer than the original" true
    (Array.length small <= Array.length f.Explore.trace);
  Alcotest.(check int) "stats record the final length" (Array.length small)
    stats.Fz.Shrink.final_len;
  (* the shrunk script must also be a *valid strict* script: the strict
     replay path is what [compass replay] uses *)
  let r = Explore.replay ~config:Machine.default_config
      (mp_rlx_scenario ()) small
  in
  (match r.Explore.r_verdict with
  | Explore.Violation m ->
      Alcotest.(check string) "strict replay message" f.Explore.message m
  | _ -> Alcotest.fail "strict replay of the shrunk script must violate")

let test_shrink_one_minimal () =
  let f = find_violation mp_rlx_scenario in
  let _, small =
    Fz.Shrink.minimize ~scenario:(mp_rlx_scenario ()) ~message:f.Explore.message
      f.Explore.trace
  in
  let reproduces s =
    Fz.Shrink.reproduces ~scenario:(mp_rlx_scenario ())
      ~message:f.Explore.message s
  in
  (* removing any single element must lose the violation *)
  Array.iteri
    (fun i _ ->
      let cand =
        Array.append (Array.sub small 0 i)
          (Array.sub small (i + 1) (Array.length small - i - 1))
      in
      Alcotest.(check bool)
        (Printf.sprintf "removing position %d breaks reproduction" i)
        false (reproduces cand))
    small;
  (* lowering any single choice must lose the violation too *)
  Array.iteri
    (fun i (c : Decision.t) ->
      if c.Decision.choice > 0 then begin
        let cand = Array.copy small in
        cand.(i) <- Decision.resolve c (c.Decision.choice - 1);
        Alcotest.(check bool)
          (Printf.sprintf "decrementing position %d breaks reproduction" i)
          false (reproduces cand)
      end)
    small

(* -- determinism -------------------------------------------------------------- *)

let fuzz_opts ?(mode = Fz.Fuzz.Pct) ?(jobs = 1) ?(execs = 400) ~seed () =
  { Fz.Fuzz.default_options with Fz.Fuzz.mode; jobs; execs; seed }

let test_pct_deterministic () =
  List.iter
    (fun jobs ->
      let opts = fuzz_opts ~jobs ~seed:11 () in
      let a = Fz.Fuzz.run ~options:opts ms_weak in
      let b = Fz.Fuzz.run ~options:opts ms_weak in
      Alcotest.(check string)
        (Printf.sprintf "pct fingerprint stable across runs (jobs %d)" jobs)
        (Fz.Fuzz.fingerprint a) (Fz.Fuzz.fingerprint b))
    [ 1; 2 ]

let test_modes_deterministic () =
  List.iter
    (fun mode ->
      let opts = fuzz_opts ~mode ~seed:5 () in
      let a = Fz.Fuzz.run ~options:opts mp_rlx_scenario in
      let b = Fz.Fuzz.run ~options:opts mp_rlx_scenario in
      Alcotest.(check string)
        (Fz.Fuzz.mode_name mode ^ " fingerprint stable across runs")
        (Fz.Fuzz.fingerprint a) (Fz.Fuzz.fingerprint b))
    [ Fz.Fuzz.Uniform; Fz.Fuzz.Pct; Fz.Fuzz.Guided ]

let test_backend_identical () =
  (* The flat history backend is a pure representation change: for a
     fixed seed, fuzzing on the map oracle must produce a byte-identical
     fingerprint in every mode. *)
  List.iter
    (fun mode ->
      let opts = fuzz_opts ~mode ~seed:5 () in
      let map_opts =
        {
          opts with
          Fz.Fuzz.config = { opts.Fz.Fuzz.config with Machine.backend = `Map };
        }
      in
      let a = Fz.Fuzz.run ~options:opts mp_rlx_scenario in
      let b = Fz.Fuzz.run ~options:map_opts mp_rlx_scenario in
      Alcotest.(check string)
        (Fz.Fuzz.mode_name mode ^ " fingerprint identical across backends")
        (Fz.Fuzz.fingerprint a) (Fz.Fuzz.fingerprint b))
    [ Fz.Fuzz.Uniform; Fz.Fuzz.Pct; Fz.Fuzz.Guided ]

(* -- finding the broken queue -------------------------------------------------- *)

(* The seed the CI fuzz-smoke job documents: PCT at depth 3 finds the
   Msqueue_weak violation well within 500 executions. *)
let ci_seed = 1

let test_pct_finds_ms_weak () =
  let opts = fuzz_opts ~seed:ci_seed ~execs:500 () in
  let o = Fz.Fuzz.run ~options:opts ms_weak in
  (match o.Fz.Fuzz.first_violation_exec with
  | Some _ -> ()
  | None -> Alcotest.fail "PCT must find the ms-weak violation in 500 execs");
  match o.Fz.Fuzz.violations with
  | [] -> Alcotest.fail "a first violation implies a kept failure"
  | f :: _ ->
      (* the (shrunk) reported script replays to the same violation *)
      let r =
        Explore.replay ~config:opts.Fz.Fuzz.config (ms_weak ())
          f.Explore.trace
      in
      (match r.Explore.r_verdict with
      | Explore.Violation m ->
          Alcotest.(check string) "replayed message" f.Explore.message m
      | _ -> Alcotest.fail "reported script must replay to a violation");
      Alcotest.(check bool) "coverage counted distinct executions" true
        (o.Fz.Fuzz.distinct > 0 && o.Fz.Fuzz.distinct <= o.Fz.Fuzz.execs);
      Alcotest.(check bool) "site pairs covered" true (o.Fz.Fuzz.pairs > 0)

(* -- corpus mutants ------------------------------------------------------------ *)

let test_corpus_mutants_never_raise () =
  (* collect some genuine decision vectors *)
  let corpus = Fz.Corpus.create () in
  let sc = mp_rlx_scenario () in
  for seed = 0 to 9 do
    let m = Machine.create () in
    let judge = sc.Explore.build m in
    let oracle = Oracle.random ~seed in
    ignore (judge (Machine.run m oracle));
    Fz.Corpus.add corpus
      (Fz.Shrink.strip_trailing_zeros (Oracle.trace oracle))
  done;
  Alcotest.(check bool) "corpus non-empty" true (Fz.Corpus.size corpus > 0);
  let st = Random.State.make [| 0xfeed |] in
  for _ = 1 to 200 do
    match Fz.Corpus.pick corpus st with
    | None -> Alcotest.fail "pick on a non-empty corpus"
    | Some base ->
        let other = Fz.Corpus.pick corpus st in
        let mutant = Fz.Corpus.mutate ?other st base in
        (* clamped prefix replay must never raise, whatever the mutant *)
        let m = Machine.create () in
        let judge = (mp_rlx_scenario ()).Explore.build m in
        let oracle = Fz.Fuzz.prefix_oracle st mutant in
        ignore (judge (Machine.run m oracle))
  done

let test_corpus_roundtrip () =
  let corpus = Fz.Corpus.create () in
  Fz.Corpus.add corpus (Decision.of_ints [| 1; 0; 2 |]);
  Fz.Corpus.add corpus (Decision.of_ints [| 3 |]);
  let file = Filename.temp_file "compass" ".corpus" in
  Fz.Corpus.save corpus file;
  let back = Fz.Corpus.load file in
  Sys.remove file;
  Alcotest.(check (list (list int)))
    "corpus survives save/load"
    (List.map
       (fun t -> Array.to_list (Decision.choices t))
       (Fz.Corpus.to_list corpus))
    (List.map
       (fun t -> Array.to_list (Decision.choices t))
       (Fz.Corpus.to_list back))

(* -- Explore.random distinct statistics ---------------------------------------- *)

let test_random_distinct () =
  let r = Explore.random ~execs:500 ~seed:3 (mp_rlx_scenario ()) in
  Alcotest.(check bool) "distinct positive" true (r.Explore.distinct > 0);
  Alcotest.(check bool) "distinct <= executions" true
    (r.Explore.distinct <= r.Explore.executions);
  (* DFS enumerates: every execution is a distinct decision vector *)
  let d = Explore.dfs ~max_execs:5_000 (mp_rlx_scenario ()) in
  Alcotest.(check int) "DFS distinct = executions" d.Explore.executions
    d.Explore.distinct

let suite =
  [
    Alcotest.test_case "shrink preserves violation" `Slow
      test_shrink_preserves_violation;
    Alcotest.test_case "shrink is 1-minimal" `Slow test_shrink_one_minimal;
    Alcotest.test_case "pct deterministic (jobs 1 and 2)" `Slow
      test_pct_deterministic;
    Alcotest.test_case "all modes deterministic" `Slow
      test_modes_deterministic;
    Alcotest.test_case "fixed-seed fuzz identical across backends" `Slow
      test_backend_identical;
    Alcotest.test_case "pct finds ms-weak violation (seed 1)" `Slow
      test_pct_finds_ms_weak;
    Alcotest.test_case "corpus mutants never raise" `Slow
      test_corpus_mutants_never_raise;
    Alcotest.test_case "corpus save/load roundtrip" `Quick
      test_corpus_roundtrip;
    Alcotest.test_case "random explorer distinct stats" `Slow
      test_random_distinct;
  ]
