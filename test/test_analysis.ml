open Compass_machine
open Compass_clients
open Compass_analysis

(* The synchronization analyzer: the vector-clock race detector must
   agree with the axiomatic RC11 race clause on every execution, the
   instrumented access logs must not depend on the exploration engine,
   and the mode-necessity audit must rediscover the known facts about
   the Michael–Scott queue — enqueue publication is necessary, and the
   checked-in weakened mutant is broken in exactly that way. *)

let config = { Machine.default_config with record_accesses = true }

let probe key =
  match Specreg.find key with
  | Some e -> e
  | None -> Alcotest.failf "no registered structure named %s" key

(* Collect, per execution, whatever [f] extracts from the access log. *)
let collect ?(max_execs = 20_000) ?(incremental = true) sc f =
  let out = ref [] in
  let sc = Instrument.with_accesses sc (fun log -> out := f log :: !out) in
  let r = Explore.dfs ~max_execs ~incremental ~config sc in
  (r, List.rev !out)

(* --- race detector vs the RC11 oracle ------------------------------ *)

let test_litmus_agreement () =
  List.iter
    (fun (t : Litmus.t) ->
      let r, mismatches =
        collect t.Litmus.scenario (fun log -> Races.differential log)
      in
      Alcotest.(check bool)
        (t.Litmus.scenario.Explore.name ^ " explored")
        true
        (r.Explore.executions > 0);
      List.iteri
        (fun i ms ->
          Alcotest.(check (list string))
            (Printf.sprintf "%s exec %d differential" t.Litmus.scenario.Explore.name i)
            [] ms)
        mismatches)
    (Litmus.all ())

let test_racy_na_flagged () =
  let t = Litmus.racy_na () in
  let racy = ref 0 and execs = ref 0 in
  let sc =
    Instrument.with_accesses t.Litmus.scenario (fun log ->
        incr execs;
        let vc = Races.detect log and ax = Rc11.races log in
        Alcotest.(check (list (pair int int))) "detectors agree" ax vc;
        if vc <> [] then incr racy)
  in
  let r = Explore.dfs ~max_execs:20_000 ~config sc in
  (* the machine's eager detector faults the racy executions... *)
  Alcotest.(check bool) "machine faults" true (r.Explore.violations <> []);
  List.iter
    (fun (f : Explore.failure) ->
      Alcotest.(check bool)
        ("fault message: " ^ f.Explore.message)
        true
        (String.length f.Explore.message >= 5
        && String.sub f.Explore.message 0 5 = "fault"))
    r.Explore.violations;
  (* ...and both offline detectors flag the same conflicting pair. *)
  Alcotest.(check bool) "offline detectors flag races" true (!racy > 0)

(* --- engine-independence of the recorded logs (satellite a) -------- *)

let log_differential name sc =
  let keep log = List.map (fun a -> Format.asprintf "%a" Access.pp a) log in
  let r_inc, logs_inc = collect ~incremental:true sc keep in
  let r_rep, logs_rep = collect ~incremental:false sc keep in
  Alcotest.(check int)
    (name ^ " same execution count")
    r_rep.Explore.executions r_inc.Explore.executions;
  Alcotest.(check int)
    (name ^ " same log count")
    (List.length logs_rep) (List.length logs_inc);
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check (list string))
        (Printf.sprintf "%s exec %d access log" name i)
        a b)
    (List.combine logs_rep logs_inc)

let test_incremental_logs_litmus () =
  List.iter
    (fun (t : Litmus.t) ->
      log_differential t.Litmus.scenario.Explore.name t.Litmus.scenario)
    [ Litmus.sb (); Litmus.mp (); Litmus.wrc () ]

let test_incremental_logs_queue () =
  let mk = List.hd (probe "ms").Compass_spec.Libspec.scenarios in
  log_differential "ms mp probe" (mk ())

(* --- the weakened-mutant regression fixture (satellite b) ---------- *)

let weak_opts =
  { Audit.default_options with execs = 12_000; jobs = 1; reduce = Machine.RSleep }

let test_msqueue_weak_violates () =
  let mk = List.hd (probe "ms-weak").Compass_spec.Libspec.scenarios in
  let r =
    Explore.dfs ~max_execs:12_000 ~reduce:Machine.RSleep
      ~config:Machine.default_config (mk ())
  in
  Alcotest.(check bool) "violation found" true (r.Explore.violations <> [])

let test_msqueue_weak_baseline_fails () =
  let probe = probe "ms-weak" in
  let r =
    Audit.run ~options:weak_opts ~probe:probe.Compass_spec.Libspec.key
      probe.Compass_spec.Libspec.scenarios
  in
  Alcotest.(check bool) "baseline fails" false r.Audit.baseline_ok;
  Alcotest.(check bool) "failure witnessed" true
    (r.Audit.baseline_failure <> None);
  Alcotest.(check int) "no sites audited" 0 (List.length r.Audit.sites)

(* --- the mode-necessity audit on the healthy queue ----------------- *)

let audit_site site =
  let probe = probe "ms" in
  let r =
    Audit.run ~options:weak_opts
      ~site_filter:(fun s -> s = site)
      ~probe:probe.Compass_spec.Libspec.key probe.Compass_spec.Libspec.scenarios
  in
  Alcotest.(check bool) "baseline ok" true r.Audit.baseline_ok;
  match r.Audit.sites with
  | [ s ] ->
      Alcotest.(check string) "audited site" site s.Audit.site;
      s
  | sites ->
      Alcotest.failf "expected exactly one audited site, got %d"
        (List.length sites)

let test_audit_link_cas_necessary () =
  let s = audit_site "msqueue.enq.link_cas" in
  match s.Audit.verdict with
  | Audit.Necessary { witness; weakening } ->
      Alcotest.(check bool) "witness script nonempty" true
        (Array.length witness.Explore.trace > 0);
      (* the weakest mutant of an acq_rel CAS is the fully relaxed one *)
      Alcotest.(check string) "weakening" "rlx"
        (Audit.weakening_to_string weakening)
  | v ->
      Alcotest.failf "link_cas should be Necessary, got %s"
        (Audit.verdict_to_string v)

let test_audit_tail_help_over_strong () =
  let s = audit_site "msqueue.enq.tail_help" in
  match s.Audit.verdict with
  | Audit.Over_strong _ -> ()
  | v ->
      Alcotest.failf "tail_help should be Over_strong here, got %s"
        (Audit.verdict_to_string v)

let test_audit_witness_replays () =
  let s = audit_site "msqueue.enq.link_cas" in
  match s.Audit.verdict with
  | Audit.Necessary { witness; weakening } ->
      (* find the scenario the witness came from *)
      let sc_name =
        match
          List.find_opt
            (fun (m : Audit.mutant_result) -> m.Audit.outcome <> Audit.Safe)
            (List.rev s.Audit.mutants)
        with
        | Some { Audit.scenario = Some n; _ } -> n
        | _ -> Alcotest.fail "witnessing mutant has no scenario name"
      in
      let probe = probe "ms" in
      let sc =
        match
          List.filter_map
            (fun mk ->
              let sc = (mk () : Explore.scenario) in
              if sc.Explore.name = sc_name then Some sc else None)
            probe.Compass_spec.Libspec.scenarios
        with
        | sc :: _ -> sc
        | [] -> Alcotest.failf "no probe scenario named %s" sc_name
      in
      let overrides = Audit.override_of s.Audit.site weakening in
      let config = { Machine.default_config with overrides } in
      let _, _, _, verdict =
        Explore.run_one ~config sc witness.Explore.trace
      in
      (match verdict with
      | Explore.Violation _ -> ()
      | Explore.Pass -> Alcotest.fail "witness script replayed to Pass"
      | Explore.Discard d -> Alcotest.failf "witness script discarded: %s" d);
      (* and without the weakening the same script is healthy *)
      let _, _, _, verdict =
        Explore.run_one ~config:Machine.default_config sc witness.Explore.trace
      in
      (match verdict with
      | Explore.Violation v ->
          Alcotest.failf "unweakened replay still violates: %s" v
      | _ -> ())
  | v ->
      Alcotest.failf "link_cas should be Necessary, got %s"
        (Audit.verdict_to_string v)

let suite =
  [
    Alcotest.test_case "races: agree with RC11 on the litmus battery" `Quick
      test_litmus_agreement;
    Alcotest.test_case "races: racy na litmus flagged by all detectors" `Quick
      test_racy_na_flagged;
    Alcotest.test_case "instrument: logs identical across engines (litmus)"
      `Quick test_incremental_logs_litmus;
    Alcotest.test_case "instrument: logs identical across engines (ms probe)"
      `Slow test_incremental_logs_queue;
    Alcotest.test_case "msqueue_weak: probe catches the violation" `Quick
      test_msqueue_weak_violates;
    Alcotest.test_case "msqueue_weak: audit baseline fails" `Slow
      test_msqueue_weak_baseline_fails;
    Alcotest.test_case "audit: link_cas is Necessary" `Slow
      test_audit_link_cas_necessary;
    Alcotest.test_case "audit: tail_help is Over_strong" `Slow
      test_audit_tail_help_over_strong;
    Alcotest.test_case "audit: witness replays to a violation" `Slow
      test_audit_witness_replays;
  ]
