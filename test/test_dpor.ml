open Compass_rmc
open Compass_machine
open Compass_spec
open Compass_dstruct
open Compass_clients
open Prog.Syntax

(* Source-DPOR differential suite.  The three reduction modes must agree
   on verdicts and on the set of distinct violations everywhere; the
   execution counts must be monotone (dpor <= sleep <= unreduced); and
   the DPOR integration must be engine-independent: replay-from-root,
   incremental at strides 1/2/5, and the shared-frontier parallel driver
   at 1/2/4 jobs all reach the same verdicts.

   "Total runs" below counts every machine run the search launched,
   completed or killed: sleep sets keep one execution per Mazurkiewicz
   trace but abort many partial redundant runs (report.pruned); DPOR's
   win is not starting them (a small dpor_pruned remainder). *)

let vi n = Value.Int n

let distinct_msgs (r : Explore.report) =
  List.sort_uniq compare
    (List.map (fun (f : Explore.failure) -> f.Explore.message) r.Explore.violations)

let total_runs (r : Explore.report) =
  r.Explore.executions + r.Explore.pruned + r.Explore.dpor_pruned

let check_equiv ~name (a : Explore.report) (b : Explore.report) =
  Alcotest.(check bool) (name ^ ": ok agrees") (Explore.ok a) (Explore.ok b);
  Alcotest.(check bool) (name ^ ": complete agrees") a.Explore.complete
    b.Explore.complete;
  Alcotest.(check (list string))
    (name ^ ": distinct violations agree")
    (distinct_msgs a) (distinct_msgs b)

let scenarios () =
  [
    ( "mp-queue",
      fun () -> Mp.make Msqueue.instantiate (Mp.fresh_stats ()) );
    ( "ms-weak",
      fun () -> Mp.make_weak Msqueue.instantiate (Mp.fresh_stats ()) );
    ( "hw-queue",
      fun () -> Mp.make Hwqueue.instantiate (Mp.fresh_stats ()) );
    ( "treiber",
      fun () ->
        Harness.stack_workload Treiber.instantiate ~pushers:2 ~poppers:1
          ~ops:1 () );
    ("seeded-violation", fun () -> Test_explore.seeded_mp_violation ());
  ]

(* -- dpor == sleep == unreduced on the client scenarios ----------------------- *)

let test_scenario_differential () =
  List.iter
    (fun (name, mk) ->
      let max_execs = 400_000 in
      let full = Explore.dfs ~max_execs (mk ()) in
      let sleep = Explore.dfs ~reduce:Machine.RSleep ~max_execs (mk ()) in
      let dpor = Explore.dfs ~reduce:Machine.RDpor ~max_execs (mk ()) in
      Alcotest.(check bool) (name ^ ": unreduced exhausts") true
        full.Explore.complete;
      check_equiv ~name:(name ^ " sleep vs unreduced") full sleep;
      check_equiv ~name:(name ^ " dpor vs unreduced") full dpor;
      Alcotest.(check bool)
        (Printf.sprintf "%s: dpor %d <= sleep %d executions" name
           dpor.Explore.executions sleep.Explore.executions)
        true
        (dpor.Explore.executions <= sleep.Explore.executions);
      Alcotest.(check bool)
        (Printf.sprintf "%s: sleep %d <= unreduced %d executions" name
           sleep.Explore.executions full.Explore.executions)
        true
        (sleep.Explore.executions <= full.Explore.executions);
      Alcotest.(check bool)
        (Printf.sprintf "%s: dpor launches %d <= sleep's %d runs" name
           (total_runs dpor) (total_runs sleep))
        true
        (total_runs dpor <= total_runs sleep))
    (scenarios ())

(* -- engine independence: ±incremental, strides, parallel jobs ---------------- *)

let test_engine_independence () =
  List.iter
    (fun (name, mk) ->
      let max_execs = 400_000 in
      let reference =
        Explore.dfs ~reduce:Machine.RDpor ~max_execs (mk ())
      in
      let replay =
        Explore.dfs ~reduce:Machine.RDpor ~incremental:false ~max_execs
          (mk ())
      in
      (* One driver, one task order: the replay engine and every stride
         must reproduce the sequential search count for count. *)
      check_equiv ~name:(name ^ " dpor replay-from-root") reference replay;
      Alcotest.(check int)
        (name ^ ": replay executions")
        reference.Explore.executions replay.Explore.executions;
      List.iter
        (fun stride ->
          let inc =
            Explore.dfs ~reduce:Machine.RDpor ~stride ~max_execs (mk ())
          in
          check_equiv
            ~name:(Printf.sprintf "%s dpor stride %d" name stride)
            reference inc;
          Alcotest.(check int)
            (Printf.sprintf "%s: stride %d executions" name stride)
            reference.Explore.executions inc.Explore.executions)
        [ 1; 2; 5 ];
      (* Parallel workers race on the shared frontier, so the count may
         wobble; verdicts, violation sets and completeness may not. *)
      List.iter
        (fun jobs ->
          let par =
            Explore.pdfs ~jobs ~reduce:Machine.RDpor ~max_execs (mk ())
          in
          check_equiv
            ~name:(Printf.sprintf "%s dpor jobs %d" name jobs)
            reference par)
        [ 1; 2; 4 ])
    (scenarios ())

(* -- litmus battery: verdicts preserved, counts monotone ---------------------- *)

let test_litmus_differential () =
  List.iter
    (fun mk ->
      let t_full = mk () and t_sleep = mk () and t_dpor = mk () in
      let ok_full, r_full, _ = Litmus.verdict t_full in
      let ok_sleep, r_sleep, _ =
        Litmus.verdict ~reduce:Machine.RSleep t_sleep
      in
      let ok_dpor, r_dpor, _ = Litmus.verdict ~reduce:Machine.RDpor t_dpor in
      let name = r_full.Explore.name in
      Alcotest.(check bool) (name ^ ": sleep verdict") ok_full ok_sleep;
      Alcotest.(check bool) (name ^ ": dpor verdict") ok_full ok_dpor;
      Alcotest.(check bool)
        (Printf.sprintf "%s: dpor %d <= sleep %d <= full %d" name
           r_dpor.Explore.executions r_sleep.Explore.executions
           r_full.Explore.executions)
        true
        (r_dpor.Explore.executions <= r_sleep.Explore.executions
        && r_sleep.Explore.executions <= r_full.Explore.executions))
    (List.map (fun t () -> t) (Litmus.all ()))

(* -- reads-from classes: dpor-rf counts one execution per rf⊕mo graph --------- *)

(* Exhaustive census: wrap a scenario so every counted (non-[Pruned])
   run records its {!Explore.rf_class_key} into [classes].  Run under
   [RNone] with access recording on, the table afterwards holds every
   distinct execution graph the scenario can produce — the ground truth
   [--reduce=dpor-rf] must match exactly. *)
let census_config = { Machine.default_config with Machine.record_accesses = true }

let with_census classes (sc : Explore.scenario) =
  {
    sc with
    Explore.build =
      (fun m ->
        let judge = sc.Explore.build m in
        fun outcome ->
          (match outcome with
          | Machine.Pruned -> ()
          | _ ->
              Hashtbl.replace classes
                (Explore.rf_class_key ~outcome (Machine.accesses m))
                ());
          judge outcome);
  }

let rf_census_litmus () =
  [
    ("corr", Litmus.corr);
    ("cowr", Litmus.cowr);
    ("sb", fun () -> Litmus.sb ());
    ("iriw", Litmus.iriw);
  ]

let test_rf_census () =
  List.iter
    (fun (name, mk) ->
      let max_execs = 400_000 in
      let classes = Hashtbl.create 64 in
      let t = mk () in
      let full =
        Explore.dfs ~config:census_config ~max_execs
          (with_census classes t.Litmus.scenario)
      in
      Alcotest.(check bool) (name ^ ": exhaustive census complete") true
        full.Explore.complete;
      let n_classes = Hashtbl.length classes in
      Alcotest.(check bool) (name ^ ": some classes observed") true
        (n_classes > 0);
      (* dpor-rf counts exactly one execution per distinct class, and
         books every duplicate completed run as rf_pruned *)
      let rf =
        Explore.dfs ~reduce:Machine.RDporRf ~max_execs (mk ()).Litmus.scenario
      in
      Alcotest.(check bool) (name ^ ": dpor-rf complete") true
        rf.Explore.complete;
      Alcotest.(check int)
        (Printf.sprintf "%s: one execution per rf-class (census %d)" name
           n_classes)
        n_classes rf.Explore.executions;
      (* the same census through the replay-from-root engine and the
         parallel driver: the class count is enumeration-order
         independent *)
      let replay =
        Explore.dfs ~reduce:Machine.RDporRf ~incremental:false ~max_execs
          (mk ()).Litmus.scenario
      in
      Alcotest.(check int)
        (name ^ ": replay-from-root counts the same classes")
        n_classes replay.Explore.executions;
      List.iter
        (fun jobs ->
          let par =
            Explore.pdfs ~jobs ~reduce:Machine.RDporRf ~max_execs
              (mk ()).Litmus.scenario
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s: dpor-rf jobs %d complete" name jobs)
            true par.Explore.complete;
          Alcotest.(check int)
            (Printf.sprintf "%s: dpor-rf jobs %d counts the same classes" name
               jobs)
            n_classes par.Explore.executions)
        [ 1; 2 ])
    (rf_census_litmus ())

(* dpor-rf must keep every litmus verdict of plain dpor while never
   counting more executions. *)
let test_rf_litmus_verdicts () =
  List.iter
    (fun mk ->
      let ok_dpor, r_dpor, _ = Litmus.verdict ~reduce:Machine.RDpor (mk ()) in
      let ok_rf, r_rf, _ = Litmus.verdict ~reduce:Machine.RDporRf (mk ()) in
      let name = r_rf.Explore.name in
      Alcotest.(check bool) (name ^ ": dpor-rf verdict") ok_dpor ok_rf;
      Alcotest.(check bool)
        (Printf.sprintf "%s: dpor-rf %d <= dpor %d executions" name
           r_rf.Explore.executions r_dpor.Explore.executions)
        true
        (r_rf.Explore.executions <= r_dpor.Explore.executions))
    (List.map (fun t () -> t) (Litmus.all ()))

(* Client scenarios and every registry smoke workload: verdicts and
   distinct violation sets agree with plain dpor; the rf pass only ever
   removes counted duplicates. *)
let test_rf_scenario_differential () =
  List.iter
    (fun (name, mk) ->
      let max_execs = 400_000 in
      let dpor = Explore.dfs ~reduce:Machine.RDpor ~max_execs (mk ()) in
      let rf = Explore.dfs ~reduce:Machine.RDporRf ~max_execs (mk ()) in
      check_equiv ~name:(name ^ " dpor-rf vs dpor") dpor rf;
      Alcotest.(check bool)
        (Printf.sprintf "%s: dpor-rf %d <= dpor %d executions" name
           rf.Explore.executions dpor.Explore.executions)
        true
        (rf.Explore.executions <= dpor.Explore.executions))
    (scenarios ())

let test_rf_registry_smoke () =
  List.iter
    (fun (e : Libspec.entry) ->
      let dpor =
        Explore.dfs ~max_execs:8_000 ~reduce:Machine.RDpor (e.Libspec.smoke ())
      in
      let rf =
        Explore.dfs ~max_execs:8_000 ~reduce:Machine.RDporRf
          (e.Libspec.smoke ())
      in
      Alcotest.(check bool)
        (e.Libspec.key ^ ": dpor-rf smoke verdict")
        (dpor.Explore.violations <> [])
        (rf.Explore.violations <> []);
      Alcotest.(check (list string))
        (e.Libspec.key ^ ": dpor-rf distinct violations")
        (distinct_msgs dpor) (distinct_msgs rf);
      Alcotest.(check bool)
        (Printf.sprintf "%s: dpor-rf %d <= dpor %d executions" e.Libspec.key
           rf.Explore.executions dpor.Explore.executions)
        true
        (rf.Explore.executions <= dpor.Explore.executions))
    (Specreg.all ())

(* -- hand-computed optimum: three threads, one write race --------------------- *)

(* t0 and t1 write the same location (dependent), t2 writes another
   (independent of both); no data nondeterminism under the Append
   policy.  6 interleavings, but only the t0/t1 order matters: exactly 2
   Mazurkiewicz traces.  An optimal DPOR explores 2 executions and kills
   none; sleep sets also keep 2 but only by aborting redundant runs. *)
let write_race_scenario () =
  {
    Explore.name = "write-race-3t";
    build =
      (fun m ->
        let a = Machine.alloc m ~name:"a" ~init:(vi 0) 1 in
        let b = Machine.alloc m ~name:"b" ~init:(vi 0) 1 in
        let wr loc v =
          let* () = Prog.store loc (vi v) Mode.Rel in
          Prog.return Value.Unit
        in
        Machine.spawn m [ wr a 1; wr a 2; wr b 1 ];
        function
        | Machine.Finished _ -> Explore.Pass
        | Machine.Fault s -> Explore.Violation ("fault: " ^ s)
        | Machine.Blocked s -> Explore.Discard s
        | Machine.Bounded -> Explore.Discard "bounded"
        | Machine.Pruned -> Explore.Discard "pruned");
  }

let test_optimal_count () =
  let full = Explore.dfs (write_race_scenario ()) in
  let sleep = Explore.dfs ~reduce:Machine.RSleep (write_race_scenario ()) in
  let dpor = Explore.dfs ~reduce:Machine.RDpor (write_race_scenario ()) in
  Alcotest.(check int) "unreduced: 3! interleavings" 6 full.Explore.executions;
  Alcotest.(check bool) "unreduced complete" true full.Explore.complete;
  Alcotest.(check int) "sleep: one per trace" 2 sleep.Explore.executions;
  Alcotest.(check int) "dpor: one per trace" 2 dpor.Explore.executions;
  Alcotest.(check int) "dpor: optimal — nothing killed" 0
    dpor.Explore.dpor_pruned;
  Alcotest.(check bool) "dpor complete" true dpor.Explore.complete;
  (* The same optimum through the replay engine and the parallel driver. *)
  let replay =
    Explore.dfs ~reduce:Machine.RDpor ~incremental:false
      (write_race_scenario ())
  in
  Alcotest.(check int) "dpor replay: one per trace" 2 replay.Explore.executions;
  let par = Explore.pdfs ~jobs:2 ~reduce:Machine.RDpor (write_race_scenario ()) in
  Alcotest.(check bool) "dpor jobs=2 complete" true par.Explore.complete;
  Alcotest.(check int) "dpor jobs=2 passed everything" par.Explore.executions
    par.Explore.passed

(* -- acceptance: the E1 MP-queue client ---------------------------------------

   [--reduce=dpor] must finish the MP-queue client launching strictly
   fewer machine runs than sleep sets, with the same (empty) violation
   set and a complete search. *)
let test_acceptance_mp_queue () =
  let mk () = Mp.make Msqueue.instantiate (Mp.fresh_stats ()) in
  let sleep = Explore.dfs ~reduce:Machine.RSleep ~max_execs:400_000 (mk ()) in
  let dpor = Explore.dfs ~reduce:Machine.RDpor ~max_execs:400_000 (mk ()) in
  Alcotest.(check bool) "dpor completes" true dpor.Explore.complete;
  Alcotest.(check (list string))
    "identical violation set" (distinct_msgs sleep) (distinct_msgs dpor);
  Alcotest.(check bool)
    (Printf.sprintf "dpor launches %d < sleep's %d runs" (total_runs dpor)
       (total_runs sleep))
    true
    (total_runs dpor < total_runs sleep)

(* -- the dependency layer itself ---------------------------------------------- *)

let test_deps_relation () =
  let open Deps in
  let m = Machine.create () in
  let a = Machine.alloc m ~name:"a" ~init:(vi 0) 1 in
  let b = Machine.alloc m ~name:"b" ~init:(vi 0) 1 in
  Alcotest.(check bool) "local/local commute" true (independent FLocal FLocal);
  Alcotest.(check bool) "local/global: global dominates" false
    (independent FLocal FGlobal);
  Alcotest.(check bool) "reads of one location commute" true
    (independent (FRead a) (FRead a));
  Alcotest.(check bool) "write/read of one location conflict" false
    (independent (FWrite a) (FRead a));
  Alcotest.(check bool) "distinct locations commute" true
    (independent (FWrite a) (FWrite b));
  (* A 3-step log: two writes to [a] by different threads with an
     independent write to [b] between them — one direct reversible race,
     (0, 2). *)
  let s =
    analyze_steps [| (0, FWrite a); (1, FWrite b); (2, FWrite a) |]
  in
  Alcotest.(check bool) "conflicting writes trace-ordered" true (hb s 0 2);
  Alcotest.(check bool) "disjoint write unordered" false (hb s 0 1);
  Alcotest.(check (list (pair int int))) "one direct race" [ (0, 2) ] (races s);
  Alcotest.(check (list (pair int int)))
    "races before [from] dropped" [] (races ~from:3 s);
  (* With a conflicting step between them the race is indirect: the
     reversal is reached through the adjacent reversals instead. *)
  let u =
    analyze_steps [| (0, FWrite a); (1, FWrite a); (2, FWrite a) |]
  in
  Alcotest.(check (list (pair int int)))
    "only adjacent races are direct"
    [ (0, 1); (1, 2) ]
    (races u);
  (* Same-thread steps are program-ordered but never a race. *)
  let t = analyze_steps [| (0, FWrite a); (0, FWrite a) |] in
  Alcotest.(check bool) "po orders same thread" true (hb t 0 1);
  Alcotest.(check (list (pair int int))) "po is not a race" [] (races t)

let suite =
  [
    Alcotest.test_case "deps: independence, trace order, races" `Quick
      test_deps_relation;
    Alcotest.test_case "3-thread write race: dpor hits the optimum" `Quick
      test_optimal_count;
    Alcotest.test_case "dpor == sleep == unreduced (clients)" `Slow
      test_scenario_differential;
    Alcotest.test_case "dpor engine-independent (±inc, strides, jobs)" `Slow
      test_engine_independence;
    Alcotest.test_case "dpor preserves litmus verdicts" `Slow
      test_litmus_differential;
    Alcotest.test_case "acceptance: mp-queue dpor < sleep runs" `Quick
      test_acceptance_mp_queue;
    Alcotest.test_case "dpor-rf == exhaustive rf-class census (litmus)" `Slow
      test_rf_census;
    Alcotest.test_case "dpor-rf preserves litmus verdicts" `Slow
      test_rf_litmus_verdicts;
    Alcotest.test_case "dpor-rf == dpor verdicts (clients)" `Slow
      test_rf_scenario_differential;
    Alcotest.test_case "dpor-rf == dpor verdicts (registry smoke)" `Slow
      test_rf_registry_smoke;
  ]
