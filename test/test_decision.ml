open Compass_rmc
open Compass_machine
module Fz = Compass_fuzz

(* The typed decision trace: the versioned line format must round-trip
   every kind/arity/rf combination; the legacy v1 format (plain
   space-separated choice ints) must keep loading — and a legacy witness
   script must replay to the byte-identical outcome as its typed form;
   and every clamped-replay entry point (replay, prefix oracle, shrink)
   must clamp out-of-range choices instead of raising, and report it. *)

(* -- serialization round-trip ------------------------------------------------- *)

(* Sites are print-only metadata and deliberately not serialized, so the
   generator leaves them empty; everything else must survive the trip. *)
let random_decision st =
  let loc () = Loc.make ~base:(Random.State.int st 7) ~off:(Random.State.int st 4) in
  let kind =
    match Random.State.int st 6 with
    | 0 -> Decision.Sched (Random.State.int st 5)
    | 1 -> Decision.Read (loc ())
    | 2 -> Decision.Await (loc ())
    | 3 -> Decision.Cas (loc ())
    | 4 -> Decision.Ts (loc ())
    | _ -> Decision.Opaque
  in
  let arity = Random.State.int st 6 in
  let choice = if arity = 0 then Random.State.int st 8 else Random.State.int st arity in
  let d = Decision.make ~kind ~choice ~arity () in
  if Random.State.bool st then
    Decision.set_rf d ~ts:(Random.State.int st 40)
      ~wtid:(Random.State.int st 5 - 1);
  d

let test_line_roundtrip () =
  let st = Random.State.make [| 0xdec1 |] in
  for i = 0 to 199 do
    let tr = Array.init (Random.State.int st 12) (fun _ -> random_decision st) in
    let line = Decision.to_line tr in
    match Decision.of_line line with
    | None -> Alcotest.failf "roundtrip %d: %S did not parse" i line
    | Some tr' ->
        if not (Decision.equal_trace tr tr') then
          Alcotest.failf "roundtrip %d: %S re-read differently" i line;
        (* serialization is canonical: a second trip is byte-identical *)
        Alcotest.(check string)
          (Printf.sprintf "roundtrip %d: canonical line" i)
          line
          (Decision.to_line tr')
  done

(* Pinned v2 literal: the on-disk grammar is a compatibility surface, so
   a representative line is asserted token by token. *)
let test_pinned_v2_line () =
  let line = "v2 s0:1/3 r3:2/4@7.1 c5:0/2 t6:1/3 w9:0/2 o:5/0 r2:0/3@0.-1" in
  match Decision.of_line line with
  | None -> Alcotest.fail "pinned v2 line did not parse"
  | Some tr ->
      Alcotest.(check int) "pinned v2: length" 7 (Array.length tr);
      Alcotest.(check (array int))
        "pinned v2: choices" [| 1; 2; 0; 1; 0; 5; 0 |] (Decision.choices tr);
      Alcotest.(check (array int))
        "pinned v2: arities" [| 3; 4; 2; 3; 2; 0; 3 |] (Decision.arities tr);
      (match tr.(0).Decision.kind with
      | Decision.Sched 0 -> ()
      | _ -> Alcotest.fail "pinned v2: token 0 is sched T0");
      (match tr.(1).Decision.kind with
      | Decision.Read l -> Alcotest.(check int) "read loc key" 3 (Loc.key l)
      | _ -> Alcotest.fail "pinned v2: token 1 is a read");
      (match tr.(1).Decision.rf with
      | Some { Decision.rf_ts; rf_wtid } ->
          Alcotest.(check int) "rf ts" 7 rf_ts;
          Alcotest.(check int) "rf wtid" 1 rf_wtid
      | None -> Alcotest.fail "pinned v2: token 1 carries provenance");
      (match tr.(6).Decision.rf with
      | Some { Decision.rf_wtid; _ } ->
          Alcotest.(check int) "init rf wtid" (-1) rf_wtid
      | None -> Alcotest.fail "pinned v2: token 6 carries init provenance");
      Alcotest.(check string) "pinned v2: re-serializes identically" line
        (Decision.to_line tr)

let test_pinned_v1_line () =
  (match Decision.of_line "3 1 0 2" with
  | Some tr ->
      Alcotest.(check (array int)) "v1: choices" [| 3; 1; 0; 2 |]
        (Decision.choices tr);
      Alcotest.(check (array int)) "v1: arities all unknown" [| 0; 0; 0; 0 |]
        (Decision.arities tr);
      Array.iter
        (fun (d : Decision.t) ->
          match d.Decision.kind with
          | Decision.Opaque -> ()
          | _ -> Alcotest.fail "v1 entries lift as opaque")
        tr
  | None -> Alcotest.fail "v1 line did not parse");
  (match Decision.of_line "" with
  | Some [||] -> ()
  | _ -> Alcotest.fail "empty line is the empty trace");
  (match Decision.of_line "1 two 3" with
  | None -> ()
  | Some _ -> Alcotest.fail "malformed v1 line must be rejected");
  match Decision.of_line "v2 q:1/2" with
  | None -> ()
  | Some _ -> Alcotest.fail "malformed v2 token must be rejected"

(* -- legacy corpus loading ---------------------------------------------------- *)

let test_legacy_corpus_load () =
  let file = Filename.temp_file "compass-corpus" ".txt" in
  let oc = open_out file in
  (* a pre-decision-trace corpus: v1 int lines, one junk line, and a
     modern v2 line mixed in (corpora may be partially re-saved) *)
  output_string oc "1 0 2\n0 3\nnot a script\nv2 s1:2/3 o:0/0\n";
  close_out oc;
  let c = Fz.Corpus.load file in
  Sys.remove file;
  Alcotest.(check int) "junk skipped, three entries" 3 (Fz.Corpus.size c);
  let got =
    List.map (fun tr -> Array.to_list (Decision.choices tr)) (Fz.Corpus.to_list c)
  in
  Alcotest.(check (list (list int)))
    "choices preserved in order"
    [ [ 1; 0; 2 ]; [ 0; 3 ]; [ 2; 0 ] ]
    got;
  (* save/reload is the identity on the typed entries *)
  let file2 = Filename.temp_file "compass-corpus" ".txt" in
  Fz.Corpus.save c file2;
  let c2 = Fz.Corpus.load file2 in
  Sys.remove file2;
  Alcotest.(check bool) "save/load round-trips" true
    (List.for_all2 Decision.equal_trace (Fz.Corpus.to_list c)
       (Fz.Corpus.to_list c2))

(* -- legacy witness scripts replay byte-identically --------------------------- *)

let outcome_str o = Format.asprintf "%a" Machine.pp_outcome o

let verdict_str = function
  | Explore.Pass -> "pass"
  | Explore.Discard m -> "discard: " ^ m
  | Explore.Violation m -> "violation: " ^ m

let test_legacy_witness_replay () =
  (* Find a real violation, then replay it three ways: the typed logged
     trace, its v2 line round-trip, and the stripped v1 int form an old
     witness JSON would carry.  All three must agree byte for byte on
     outcome and verdict, with no clamping. *)
  let r = Explore.dfs (Test_explore.seeded_mp_violation ()) in
  let f =
    match r.Explore.violations with
    | f :: _ -> f
    | [] -> Alcotest.fail "seeded scenario must violate"
  in
  let replays =
    [
      ("typed", f.Explore.trace);
      ( "v2 line",
        match Decision.of_line (Decision.to_line f.Explore.trace) with
        | Some tr -> tr
        | None -> Alcotest.fail "witness trace did not round-trip" );
      ("legacy v1 ints", Decision.of_ints (Explore.failure_script f));
    ]
  in
  let results =
    List.map
      (fun (tag, tr) ->
        let rep =
          Explore.replay ~config:Machine.default_config
            (Test_explore.seeded_mp_violation ()) tr
        in
        Alcotest.(check int) (tag ^ ": no clamping") 0 rep.Explore.r_clamped;
        (tag, outcome_str rep.Explore.r_outcome, verdict_str rep.Explore.r_verdict))
      replays
  in
  match results with
  | (_, o0, v0) :: rest ->
      Alcotest.(check string) "typed replay reproduces the violation" v0
        ("violation: " ^ f.Explore.message);
      List.iter
        (fun (tag, o, v) ->
          Alcotest.(check string) (tag ^ ": outcome identical") o0 o;
          Alcotest.(check string) (tag ^ ": verdict identical") v0 v)
        rest
  | [] -> assert false

(* -- uniform clamping --------------------------------------------------------- *)

let test_clamp_uniformity () =
  let sc () = Test_explore.seeded_mp_violation () in
  let r = Explore.dfs (sc ()) in
  let f =
    match r.Explore.violations with
    | f :: _ -> f
    | [] -> Alcotest.fail "seeded scenario must violate"
  in
  (* replay: an absurd first choice clamps (reported in r_clamped) and
     the run still completes *)
  let head = Array.copy f.Explore.trace in
  head.(0) <- Decision.resolve head.(0) 99;
  let rep = Explore.replay ~config:Machine.default_config (sc ()) head in
  Alcotest.(check bool) "replay clamps out-of-range choices" true
    (rep.Explore.r_clamped > 0);
  (* a wild witness that still reproduces: overwrite a position whose
     original choice was already the last alternative, so clamping 99
     lands back on it — some such position must exist in any script with
     a non-zero choice *)
  let wild =
    let try_at j =
      let w = Array.copy f.Explore.trace in
      w.(j) <- Decision.resolve w.(j) 99;
      let r = Explore.replay ~config:Machine.default_config (sc ()) w in
      if
        r.Explore.r_clamped > 0
        && verdict_str r.Explore.r_verdict = "violation: " ^ f.Explore.message
      then Some w
      else None
    in
    let n = Array.length f.Explore.trace in
    let rec search j = if j >= n then None else
      match try_at j with Some w -> Some w | None -> search (j + 1)
    in
    match search 0 with
    | Some w -> w
    | None -> Alcotest.fail "no clamped mutation reproduces the witness"
  in
  (* the fuzzer's prefix oracle counts its clamps through the same path *)
  let m = Machine.create ~config:Machine.default_config () in
  let _judge = (sc ()).Explore.build m in
  let clamps = ref 0 in
  let oracle =
    Fz.Fuzz.prefix_oracle ~clamps
      (Random.State.make [| 42 |])
      (Decision.of_ints [| 99 |])
  in
  let _ = Machine.run m oracle in
  Alcotest.(check bool) "prefix oracle clamps and reports" true (!clamps > 0);
  (* the shrinker replays candidates clamped: feeding it a wild witness
     still minimizes to a reproducing script, totalling its clamps *)
  let stats, small =
    Fz.Shrink.minimize ~scenario:(sc ()) ~message:f.Explore.message wild
  in
  Alcotest.(check bool) "shrinker accepted a clamped witness" true
    (Fz.Shrink.reproduces ~scenario:(sc ()) ~message:f.Explore.message small);
  Alcotest.(check bool) "shrinker reports clamp total" true (stats.Fz.Shrink.clamped > 0);
  (* the minimized script is strict: no clamps remain *)
  let rep2 = Explore.replay ~config:Machine.default_config (sc ()) small in
  Alcotest.(check int) "minimized script replays strictly" 0
    rep2.Explore.r_clamped

let suite =
  [
    Alcotest.test_case "v2 line round-trips (random traces)" `Quick
      test_line_roundtrip;
    Alcotest.test_case "pinned v2 fixture parses and re-serializes" `Quick
      test_pinned_v2_line;
    Alcotest.test_case "pinned v1 fixture: ints lift as opaque" `Quick
      test_pinned_v1_line;
    Alcotest.test_case "legacy corpus loads (v1 + v2 + junk)" `Quick
      test_legacy_corpus_load;
    Alcotest.test_case "legacy witness replays byte-identically" `Quick
      test_legacy_witness_replay;
    Alcotest.test_case "clamping is uniform and reported" `Quick
      test_clamp_uniformity;
  ]
