open Compass_rmc
open Helpers

(* Histories, timestamp policies, and the global store with race
   detection. *)

let test_history_basics () =
  let l = loc ~base:9 ~off:0 in
  let h = History.create ~loc:l ~init_value:(vi 0) () in
  Alcotest.(check int) "init ts" Timestamp.init (History.max_ts h);
  History.add h (Msg.make ~loc:l ~ts:3 ~value:(vi 1) ~view:View.bot ~lview:Lview.empty ~wtid:0);
  History.add h (Msg.make ~loc:l ~ts:7 ~value:(vi 2) ~view:View.bot ~lview:Lview.empty ~wtid:0);
  Alcotest.(check int) "max ts" 7 (History.max_ts h);
  Alcotest.(check int) "cardinal" 3 (History.cardinal h);
  Alcotest.(check value) "latest value" (vi 2) !(History.latest h).Msg.value;
  let readable = History.readable h ~from:3 in
  Alcotest.(check int) "readable from 3" 2 (List.length readable);
  Alcotest.(check value) "readable ascending" (vi 1)
    !(List.hd readable).Msg.value

let test_fresh_ts_append () =
  let l = loc ~base:9 ~off:1 in
  let h = History.create ~loc:l ~init_value:(vi 0) () in
  Alcotest.(check (list int)) "append" [ 1 ] (History.fresh_ts h ~policy:`Append ~above:0);
  History.add h (Msg.make ~loc:l ~ts:1 ~value:(vi 1) ~view:View.bot ~lview:Lview.empty ~wtid:0);
  Alcotest.(check (list int)) "append after" [ 2 ]
    (History.fresh_ts h ~policy:`Append ~above:0)

let test_fresh_ts_gap () =
  let l = loc ~base:9 ~off:2 in
  let h = History.create ~loc:l ~init_value:(vi 0) () in
  let stride = Timestamp.stride in
  History.add h
    (Msg.make ~loc:l ~ts:stride ~value:(vi 1) ~view:View.bot ~lview:Lview.empty ~wtid:0);
  let choices = History.fresh_ts h ~policy:`Gap ~above:0 in
  (* A midpoint between init and the stride write, plus past-the-end. *)
  Alcotest.(check bool) "gap has midpoint" true (List.mem (stride / 2) choices);
  Alcotest.(check bool) "gap has append" true
    (List.mem (stride + stride) choices);
  (* With [above] past the first write, only later slots qualify. *)
  let choices = History.fresh_ts h ~policy:`Gap ~above:stride in
  Alcotest.(check bool) "above prunes midpoints" true
    (List.for_all (fun t -> t > stride) choices)

let test_midpoint () =
  Alcotest.(check (option int)) "adjacent has none" None (Timestamp.midpoint 3 4);
  Alcotest.(check (option int)) "gap of two" (Some 4) (Timestamp.midpoint 3 5)

let test_memory_alloc_read () =
  let mem = Memory.create () in
  let base = Memory.alloc mem ~name:"blk" ~size:3 ~init_value:Value.Null in
  Alcotest.(check value) "init value" Value.Null
    !(Memory.latest mem (Loc.shift base 2)).Msg.value;
  Alcotest.(check int) "read choices from init" 1
    (List.length (Memory.read_choices mem base ~from:Timestamp.init));
  Alcotest.check_raises "unallocated"
    (Memory.Error (Memory.Unallocated (Loc.shift base 3)))
    (fun () -> ignore (Memory.latest mem (Loc.shift base 3)))

let test_memory_race_detection () =
  let mem = Memory.create () in
  let base = Memory.alloc mem ~name:"blk" ~size:1 ~init_value:(vi 0) in
  (* A thread that never observed the location races on na access. *)
  Alcotest.check_raises "na read unobserved"
    (Memory.Error (Memory.Race { loc = base; tid = 5; kind = "na-read" }))
    (fun () -> ignore (Memory.na_read mem base ~tv:Tview.init ~tid:5));
  (* After observing the init write, the na read succeeds. *)
  let tv =
    Tview.read Tview.init !(Memory.latest mem base) Mode.Acq
  in
  Alcotest.(check value) "na read after observation" (vi 0)
    !(Memory.na_read mem base ~tv ~tid:5).Msg.value

let test_memory_uninitialised () =
  let mem = Memory.create () in
  let base = Memory.alloc mem ~name:"blk" ~size:1 ~init_value:Value.Poison in
  let tv = Tview.read Tview.init !(Memory.latest mem base) Mode.Acq in
  Alcotest.check_raises "poison read"
    (Memory.Error (Memory.Uninitialised { loc = base; tid = 1 }))
    (fun () -> ignore (Memory.na_read mem base ~tv ~tid:1))

let test_memory_stale_na_write_races () =
  let mem = Memory.create () in
  let base = Memory.alloc mem ~name:"blk" ~size:1 ~init_value:(vi 0) in
  let tv = Tview.read Tview.init !(Memory.latest mem base) Mode.Acq in
  (* Another write lands that [tv] has not observed. *)
  Memory.add_msg mem
    (Msg.make ~loc:base ~ts:4 ~value:(vi 9) ~view:View.bot ~lview:Lview.empty ~wtid:2);
  Alcotest.check_raises "na write behind mo races"
    (Memory.Error (Memory.Race { loc = base; tid = 1; kind = "na-write" }))
    (fun () -> ignore (Memory.na_check mem base ~tv ~tid:1 ~kind:"na-write"))

let suite =
  [
    Alcotest.test_case "history basics" `Quick test_history_basics;
    Alcotest.test_case "fresh ts (append)" `Quick test_fresh_ts_append;
    Alcotest.test_case "fresh ts (gap)" `Quick test_fresh_ts_gap;
    Alcotest.test_case "timestamp midpoint" `Quick test_midpoint;
    Alcotest.test_case "alloc and read choices" `Quick test_memory_alloc_read;
    Alcotest.test_case "race detection (na vs unobserved)" `Quick
      test_memory_race_detection;
    Alcotest.test_case "uninitialised read" `Quick test_memory_uninitialised;
    Alcotest.test_case "na write behind mo races" `Quick
      test_memory_stale_na_write_races;
  ]
