(* The compass CLI: run litmus tests, client verifications, the spec
   matrix, and the full experiment battery from the command line.

     compass litmus [--gap]
     compass client (mp / mp-weak / spsc / pipeline / resource / es) [--queue ms/hw]
     compass specs [--json FILE]
     compass check --struct KEY [--style STYLE]   (or legacy: check ms/hw/treiber/es)
     compass refine --struct KEY [--method outcomes/simulation] [--strict]
                    [--json FILE] [--expect-violation]
     compass sim (--struct KEY / --all) [--client ID] [--mgc-depth D]
                 [--until-violation] [--strict] [--json FILE]
     compass matrix
     compass dot (ms / hw / treiber / es / exchanger / chaselev)
     compass axioms
     compass analyze races --struct KEY [--strict] [--json FILE]
     compass analyze modes --struct KEY [--prioritize=static] [--strict]
                           [--json FILE]
     compass analyze static (--struct KEY / --all) [--weaken SITE=MODE]
                            [--strict] [--json FILE]
     compass replay [--script N,N,...] [--weaken SITE=MODE] [--struct KEY]
                    [--refine-client I] [--sim-client ID [--mgc-depth D]]
     compass fuzz --struct KEY [--mode uniform/pct/guided]
                  [--pct-depth D] [--execs N] [--seed S] [--jobs N]
                  [--corpus FILE] [--json FILE] [--expect-violation]
     compass shrink --script N,N,... [--struct KEY] [--weaken SITE=MODE]
     compass report [--quick]

   Structure keys ([--struct]) resolve through the central spec registry
   (Specreg; [compass specs] lists them).  Every exploring subcommand
   also takes [--jobs N] (shard the DFS across N domains),
   [--reduce[=sleep|dpor|none]] (partial-order reduction: sleep sets or
   source-DPOR with wakeup sequences; bare [--reduce] means sleep),
   [--incremental BOOL] (checkpoint/restore exploration, default on;
   false = replay-from-root oracle) and [--stride N] (checkpoint
   spacing).
*)

open Cmdliner
open Compass_rmc
open Compass_machine
open Compass_event
open Compass_spec
open Compass_dstruct
open Compass_clients
open Compass_analysis
module Fz = Compass_fuzz
module Static = Compass_static.Static
module Sim = Compass_sim.Sim
module J = Compass_util.Jsonout

(* -- shared arguments --------------------------------------------------------- *)

let execs =
  let doc = "Execution budget for exhaustive (DFS) exploration." in
  Arg.(value & opt int 100_000 & info [ "execs"; "e" ] ~docv:"N" ~doc)

let random_mode =
  let doc = "Use seeded random sampling instead of exhaustive DFS." in
  Arg.(value & flag & info [ "random" ] ~doc)

let seed =
  let doc = "Seed for random exploration." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs =
  let doc =
    "Shard the exhaustive DFS across $(docv) domains (parallel \
     exploration; 1 = the sequential driver)."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

(* [--reduce] history: it began life as a plain flag meaning sleep sets,
   so the converter keeps [true]/[false] as aliases and a bare
   [--reduce] still means [sleep]. *)
let reduction_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "sleep" | "true" | "on" -> Ok Machine.RSleep
    | "dpor" -> Ok Machine.RDpor
    | "dpor-rf" | "dporrf" | "rf" -> Ok Machine.RDporRf
    | "none" | "false" | "off" -> Ok Machine.RNone
    | _ ->
        Error
          (`Msg
             (Printf.sprintf
                "invalid reduction %S (expected 'sleep', 'dpor', 'dpor-rf' \
                 or 'none')"
                s))
  in
  let print ppf r =
    Format.pp_print_string ppf
      (match r with
      | Machine.RNone -> "none"
      | Machine.RSleep -> "sleep"
      | Machine.RDpor -> "dpor"
      | Machine.RDporRf -> "dpor-rf")
  in
  Arg.conv (parse, print)

let reduce =
  let doc =
    "Partial-order reduction: $(b,sleep) (sleep sets: skip interleavings      that only reorder independent steps), $(b,dpor) (source-DPOR with      wakeup sequences: near one execution per Mazurkiewicz trace),      $(b,dpor-rf) (source-DPOR plus the reads-from reduction: one counted      execution per distinct rfâmo class) or $(b,none).  Bare      $(b,--reduce) means $(b,sleep).  Verdicts and violations are the      same under all of them; only the execution count shrinks."
  in
  Arg.(
    value
    & opt ~vopt:Machine.RSleep reduction_conv Machine.RNone
    & info [ "reduce" ] ~docv:"RED" ~doc)

let split_depth =
  let doc =
    "Deprecated and ignored: the two-phase sharding scheme this \
     parameterised is retired (work stealing balances the tree)."
  in
  Arg.(value & opt (some int) None & info [ "split-depth" ] ~docv:"N" ~doc)

let warn_split_depth = function
  | None -> ()
  | Some _ ->
      prerr_endline
        "compass: warning: --split-depth is deprecated and ignored (the \
         two-phase sharding scheme was retired; work stealing balances \
         the tree)"

let incremental =
  let doc =
    "Incremental checkpoint/restore exploration (default on): backtrack \
     by restoring machine snapshots and re-execute only decision \
     suffixes.  $(b,--incremental=false) replays every execution from \
     the root — the differential-testing oracle, with identical reports."
  in
  Arg.(value & opt bool true & info [ "incremental" ] ~docv:"BOOL" ~doc)

let stride =
  let doc = "Checkpoint every $(docv) decisions in incremental mode." in
  Arg.(
    value
    & opt int Compass_machine.Explore.default_stride
    & info [ "stride" ] ~docv:"N" ~doc)

let queue_arg =
  let impls =
    Arg.enum [ ("ms", Msqueue.instantiate); ("hw", Hwqueue.instantiate) ]
  in
  let doc = "Queue implementation: $(b,ms) (Michael-Scott) or $(b,hw) (Herlihy-Wing)." in
  Arg.(value & opt impls Msqueue.instantiate & info [ "queue"; "q" ] ~docv:"IMPL" ~doc)

let style_arg =
  let impls =
    Arg.enum
      [
        ("hb", Styles.Hb);
        ("so-abs", Styles.So_abs);
        ("hb-abs", Styles.Hb_abs);
        ("hist", Styles.Hist);
        ("sc-abs", Styles.Sc_abs);
      ]
  in
  let doc =
    "Spec style to check: $(b,hb), $(b,so-abs), $(b,hb-abs), $(b,hist), or \
     $(b,sc-abs)."
  in
  Arg.(value & opt impls Styles.Hb & info [ "style"; "s" ] ~docv:"STYLE" ~doc)

let run_mode ~random ~execs ~seed ~jobs ~reduce ~incremental ~stride sc =
  if random then Explore.random ~execs ~seed sc
  else if jobs > 1 then
    Explore.pdfs ~jobs ~max_execs:execs ~reduce ~incremental ~stride sc
  else Explore.dfs ~max_execs:execs ~reduce ~incremental ~stride sc

let finish report =
  Format.printf "%a@." Explore.pp_report report;
  if Explore.ok report then 0 else 1

(* Structure keys resolve through the central spec registry. *)

let struct_arg =
  let doc =
    Printf.sprintf "Registered structure ($(b,compass specs) lists them): %s."
      (String.concat ", "
         (List.map (fun k -> Printf.sprintf "$(b,%s)" k) (Specreg.keys ())))
  in
  Arg.(
    required
    & opt (some string) None
    & info [ "struct" ] ~docv:"KEY" ~doc)

let json_arg =
  let doc = "Also write the analysis report as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let write_json ?seed ~tool path json =
  Compass_util.Report.write ?seed ~tool ~file:path json;
  Format.printf "JSON report written to %s@." path

let with_entry key f =
  match Specreg.find key with
  | Some e -> f e
  | None ->
      Format.eprintf "unknown structure %s (try: %s)@." key
        (String.concat ", " (Specreg.keys ()));
      2

(* CI gate: [--strict] turns findings into a nonzero exit, not just
   internal errors (race pairs for [analyze races], over-strong/unknown
   verdicts for [modes], expectation mismatches for [static], registry
   expectation mismatches for [refine]/[sim]). *)
let strict_arg =
  let doc =
    "Strict exit code: exit nonzero on any finding or expectation \
     mismatch, not only on errors — for CI gates."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let mgc_depth_arg =
  let doc =
    "Most-general-client enumeration bound: per-thread operation \
     sequences up to $(docv) requests (with every release/acquire \
     flag-handoff position)."
  in
  Arg.(value & opt int 2 & info [ "mgc-depth" ] ~docv:"D" ~doc)

(* -- litmus -------------------------------------------------------------------- *)

let litmus_cmd =
  let gap =
    let doc = "Use the Gap timestamp policy (enables mo-middle insertion, e.g. 2+2W)." in
    Arg.(value & flag & info [ "gap" ] ~doc)
  in
  let run gap execs jobs reduce incremental stride split_depth =
    warn_split_depth split_depth;
    let config =
      { Machine.default_config with policy = (if gap then `Gap else `Append) }
    in
    let tests =
      Litmus.all () @ if gap then [ Litmus.two_two_w () ] else []
    in
    let code = ref 0 in
    List.iter
      (fun (t : Litmus.t) ->
        let ok, report, obs =
          Litmus.verdict ~max_execs:execs ~config ~jobs ~reduce ~incremental ~stride t
        in
        if not ok then code := 1;
        Format.printf "%-12s %-42s expect %-10s observed %-8d execs %-8d %s@."
          report.Explore.name t.Litmus.descr
          (match t.Litmus.expect with
          | `Observable -> "observable"
          | `Forbidden -> "forbidden")
          obs report.Explore.executions
          (if ok then "OK" else "FAIL"))
      tests;
    !code
  in
  let doc = "Run the litmus-test battery against the ORC11 substrate." in
  Cmd.v (Cmd.info "litmus" ~doc)
    Term.(
      const run $ gap $ execs $ jobs $ reduce $ incremental $ stride
      $ split_depth)

(* -- client -------------------------------------------------------------------- *)

let client_cmd =
  let which =
    let doc =
      "Client to verify: $(b,mp), $(b,mp-weak), $(b,spsc), $(b,pipeline), \
       $(b,resource), $(b,es), $(b,mp-stack), $(b,strong-fifo), $(b,ws), or \
       $(b,ws-weak)."
    in
    Arg.(
      required
      & pos 0 (some (enum
                       [
                         ("mp", `Mp);
                         ("mp-weak", `Mp_weak);
                         ("spsc", `Spsc);
                         ("pipeline", `Pipeline);
                         ("resource", `Resource);
                         ("es", `Es);
                         ("mp-stack", `Mp_stack);
                         ("strong-fifo", `Strong_fifo);
                         ("ws", `Ws);
                         ("ws-weak", `Ws_weak);
                       ]))
          None
      & info [] ~docv:"CLIENT" ~doc)
  in
  let run which factory random execs seed jobs reduce incremental stride
      split_depth =
    warn_split_depth split_depth;
    match which with
    | `Mp ->
        let st = Mp.fresh_stats () in
        let r = run_mode ~random ~execs ~seed ~jobs ~reduce ~incremental ~stride (Mp.make factory st) in
        let code = finish r in
        Format.printf "%a@." Mp.pp_stats st;
        if st.Mp.right_empty > 0 then 1 else code
    | `Mp_weak ->
        let st = Mp.fresh_stats () in
        let r = run_mode ~random ~execs ~seed ~jobs ~reduce ~incremental ~stride (Mp.make_weak factory st) in
        let code = finish r in
        Format.printf "%a@." Mp.pp_stats st;
        Format.printf
          "(the empty outcome above is the point: no synchronisation, no \
           exclusion)@.";
        code
    | `Spsc ->
        let st = Spsc_client.fresh_stats () in
        let r =
          run_mode ~random ~execs ~seed ~jobs ~reduce ~incremental ~stride (Spsc_client.make ~n:3 factory st)
        in
        finish r
    | `Pipeline ->
        let st = Pipeline.fresh_stats () in
        let r =
          run_mode ~random ~execs ~seed ~jobs ~reduce ~incremental ~stride
            (Pipeline.make ~n:2 factory Hwqueue.instantiate st)
        in
        finish r
    | `Resource ->
        let st = Resource_exchange.fresh_stats () in
        let r =
          run_mode ~random ~execs ~seed ~jobs ~reduce ~incremental ~stride (Resource_exchange.make ~threads:2 st)
        in
        let code = finish r in
        Format.printf "swaps %d, failed exchanges %d@."
          st.Resource_exchange.swaps st.Resource_exchange.fails;
        code
    | `Es ->
        let st = Es_compose.fresh_stats () in
        let r =
          run_mode ~random ~execs ~seed ~jobs ~reduce ~incremental ~stride
            (Es_compose.make ~pushers:2 ~poppers:2 ~ops:1 st)
        in
        let code = finish r in
        Format.printf "ops via base stack %d, eliminated pairs %d@."
          st.Es_compose.via_base st.Es_compose.eliminated;
        code
    | `Mp_stack ->
        let st = Mp_stack.fresh_stats () in
        let r =
          run_mode ~random ~execs ~seed ~jobs ~reduce ~incremental ~stride (Mp_stack.make Treiber.instantiate st)
        in
        let code = finish r in
        Format.printf "right pop: got %d, empty %d@." st.Mp_stack.right_got
          st.Mp_stack.right_empty;
        code
    | `Strong_fifo ->
        let st = Strong_fifo.fresh_stats () in
        let r = run_mode ~random ~execs ~seed ~jobs ~reduce ~incremental ~stride (Strong_fifo.make factory st) in
        let code = finish r in
        let broke = ref 0 in
        let rc =
          run_mode ~random ~execs:(execs / 2) ~seed ~jobs ~reduce ~incremental ~stride
            (Strong_fifo.make_control factory broke)
        in
        Format.printf
          "bare control: lhb non-total in %d/%d executions (the lock is what \
           upgrades the guarantee)@."
          !broke rc.Explore.executions;
        code
    | `Ws ->
        let st = Ws_client.fresh_stats () in
        let r =
          run_mode ~random ~execs ~seed ~jobs ~reduce ~incremental ~stride
            (Ws_client.make ~tasks:2 ~thieves:1 ~steals:1 st)
        in
        let code = finish r in
        Format.printf "%a@." Ws_client.pp_stats st;
        code
    | `Ws_weak ->
        let st = Ws_client.fresh_stats () in
        let r =
          Explore.random ~execs ~seed
            (Ws_client.make ~weak_fences:true ~tasks:2 ~thieves:1 ~steals:2 st)
        in
        ignore (finish r);
        Format.printf
          "(violations above are the POINT: the double-take the SC fences \
           prevent)@.";
        0
  in
  let doc = "Model-check one of the paper's client verifications." in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const run $ which $ queue_arg $ random_mode $ execs $ seed $ jobs $ reduce
      $ incremental $ stride $ split_depth)

(* -- check --------------------------------------------------------------------- *)

let check_cmd =
  let which =
    let doc =
      "Implementation (legacy positional form; prefer $(b,--struct)): \
       $(b,ms), $(b,hw), $(b,treiber), or $(b,es)."
    in
    Arg.(
      value
      & pos 0 (some (enum
                       [
                         ("ms", `Q Msqueue.instantiate);
                         ("hw", `Q Hwqueue.instantiate);
                         ("treiber", `S Treiber.instantiate);
                         ("es", `S Elimination.instantiate);
                       ]))
          None
      & info [] ~docv:"IMPL" ~doc)
  in
  let struct_key =
    let doc =
      Printf.sprintf
        "Registered structure to check ($(b,compass specs) lists them): %s."
        (String.concat ", "
           (List.map (fun k -> Printf.sprintf "$(b,%s)" k) (Specreg.keys ())))
    in
    Arg.(value & opt (some string) None & info [ "struct" ] ~docv:"KEY" ~doc)
  in
  let threads =
    Arg.(value & opt int 2 & info [ "threads"; "t" ] ~docv:"N"
           ~doc:"Producer and consumer threads (each).")
  in
  let ops =
    Arg.(value & opt int 1 & info [ "ops"; "o" ] ~docv:"N"
           ~doc:"Operations per thread.")
  in
  let run which struct_key style threads ops random execs seed jobs reduce
      incremental stride split_depth =
    warn_split_depth split_depth;
    let impl =
      match (struct_key, which) with
      | Some key, _ -> (
          match Specreg.find key with
          | None ->
              Error
                (Printf.sprintf "unknown structure %s (try: %s)" key
                   (String.concat ", " (Specreg.keys ())))
          | Some e -> (
              match e.Libspec.impl with
              | Specreg.Queue f -> Ok (`Q f)
              | Specreg.Stack f -> Ok (`S f)
              | _ ->
                  Error
                    (Printf.sprintf
                       "%s has no generic workload factory — run its \
                        registered clients via compass analyze/fuzz"
                       key)))
      | None, Some w -> Ok w
      | None, None -> Error "give --struct KEY (or a positional IMPL)"
    in
    match impl with
    | Error msg ->
        Format.eprintf "%s@." msg;
        2
    | Ok w ->
        let sc =
          match w with
          | `Q f ->
              Harness.queue_workload ~style f ~enqers:threads ~deqers:threads
                ~ops ()
          | `S f ->
              Harness.stack_workload ~style f ~pushers:threads ~poppers:threads
                ~ops ()
        in
        finish
          (run_mode ~random ~execs ~seed ~jobs ~reduce ~incremental ~stride sc)
  in
  let doc =
    "Explore a workload on an implementation (resolved through the spec \
     registry with $(b,--struct)) and check a spec style on every \
     execution."
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(
      const run $ which $ struct_key $ style_arg $ threads $ ops $ random_mode
      $ execs $ seed $ jobs $ reduce $ incremental $ stride $ split_depth)

(* -- specs --------------------------------------------------------------------- *)

let specs_cmd =
  let run json =
    Format.printf "%-10s %-16s %-9s %-14s %-8s %s@." "key" "impl" "spec"
      "sites" "clients" "ladder (expected)";
    List.iter
      (fun (e : Libspec.entry) ->
        let ladder =
          match e.Libspec.ladder with
          | [] -> "-"
          | l ->
              String.concat " "
                (List.map
                   (fun (s, sat) ->
                     Printf.sprintf "%s:%s" (Libspec.style_name s)
                       (if sat then "sat" else "fail"))
                   l)
        in
        let flags =
          (if e.Libspec.expect_violation then " [expect-violation]" else "")
          ^ if e.Libspec.refinable then " [refinable]" else ""
        in
        Format.printf "%-10s %-16s %-9s %-14s %-8d %s%s@." e.Libspec.key
          e.Libspec.struct_name e.Libspec.spec.Libspec.name
          (match e.Libspec.site_prefix with Some p -> p ^ "*" | None -> "-")
          (List.length e.Libspec.scenarios)
          ladder flags)
      (Specreg.all ());
    Option.iter
      (fun file ->
        (* Site metadata comes from the static analyzer's symbolic
           discovery (Specreg.sites) — labels and declared modes, no
           exploration. *)
        let entry_json (e : Libspec.entry) =
          J.Obj
            [
              ("key", J.Str e.Libspec.key);
              ("struct", J.Str e.Libspec.struct_name);
              ("spec", J.Str e.Libspec.spec.Libspec.name);
              ("descr", J.Str e.Libspec.descr);
              ("site_prefix", J.opt (fun p -> J.Str p) e.Libspec.site_prefix);
              ("clients", J.Int (List.length e.Libspec.scenarios));
              ( "ladder",
                J.List
                  (List.map
                     (fun (s, sat) ->
                       J.Obj
                         [
                           ("style", J.Str (Libspec.style_name s));
                           ("satisfied", J.Bool sat);
                         ])
                     e.Libspec.ladder) );
              ("expect_violation", J.Bool e.Libspec.expect_violation);
              ("refinable", J.Bool e.Libspec.refinable);
              ( "sites",
                J.List
                  (List.map
                     (fun (site, mode) ->
                       J.Obj [ ("site", J.Str site); ("mode", J.Str mode) ])
                     (Specreg.sites e)) );
            ]
        in
        write_json ~tool:"specs" file
          (J.Obj
             [
               ( "structures",
                 J.List (List.map entry_json (Specreg.all ())) );
             ]))
      json;
    0
  in
  let doc =
    "List the spec registry: every structure with its spec, instrumented \
     sites, registered clients, and expected spec-style ladder.  With \
     $(b,--json), also emit per-site metadata (label and declared mode, \
     discovered by the static linter's symbolic evaluation)."
  in
  Cmd.v (Cmd.info "specs" ~doc) Term.(const run $ json_arg)

(* -- refine -------------------------------------------------------------------- *)

let refine_cmd =
  let expect_violation =
    let doc =
      "Invert the exit code: succeed only if refinement fails (for \
       known-broken fixtures in CI)."
    in
    Arg.(value & flag & info [ "expect-violation" ] ~doc)
  in
  let method_arg =
    let doc =
      "Refinement method: $(b,outcomes) (per-client outcome inclusion in \
       the exhaustively explored spec object) or $(b,simulation) \
       (stepwise forward simulation over most-general clients — \
       strictly stronger; see $(b,compass sim))."
    in
    Arg.(
      value
      & opt (enum [ ("outcomes", `Outcomes); ("simulation", `Simulation) ])
          `Outcomes
      & info [ "method" ] ~docv:"METHOD" ~doc)
  in
  (* Exit-code policy shared with [compass sim]: [--strict] compares the
     verdict against the registry's [expect_violation] expectation (like
     [analyze static]), so checked-in broken fixtures gate as green when
     they do fail. *)
  let exit_code ~strict ~expect ~expect_violation ok =
    if strict then if ok <> expect_violation then 0 else 1
    else if expect then if ok then 1 else 0
    else if ok then 0
    else 1
  in
  let run struct_key execs jobs reduce meth depth strict json expect =
    with_entry struct_key (fun e ->
        if not e.Libspec.refinable then begin
          Format.eprintf "structure %s is not refinable@." struct_key;
          2
        end
        else
          match meth with
          | `Outcomes ->
              let options =
                { Refine.default_options with max_execs = execs; jobs; reduce }
              in
              let r = Refine.run ~options e in
              Format.printf "%a@." Refine.pp r;
              (match r.Refine.counterexample with
              | Some (i, f) ->
                  Format.printf
                    "replay it: compass replay --struct %s --refine-client %d \
                     --script %s@."
                    struct_key i
                    (String.concat ","
                       (List.map string_of_int
                          (Array.to_list (Explore.failure_script f))))
              | None -> ());
              Option.iter
                (fun file ->
                  write_json ~tool:"refine" file (Refine.to_json r))
                json;
              exit_code ~strict ~expect
                ~expect_violation:e.Libspec.expect_violation r.Refine.ok
          | `Simulation ->
              let options =
                {
                  Sim.default_options with
                  mgc_depth = depth;
                  max_execs = execs;
                  jobs;
                  reduce;
                }
              in
              let r = Sim.run ~options e in
              Format.printf "%a@." Sim.pp r;
              (match r.Sim.witness with
              | Some w ->
                  Format.printf
                    "replay it: compass replay --struct %s --sim-client %s \
                     --script %s@."
                    struct_key w.Sim.w_client
                    (String.concat ","
                       (List.map string_of_int
                          (Array.to_list (Decision.choices w.Sim.w_trace))))
              | None -> ());
              Option.iter
                (fun file -> write_json ~tool:"refine" file (Sim.to_json r))
                json;
              exit_code ~strict ~expect
                ~expect_violation:e.Libspec.expect_violation r.Sim.ok)
  in
  let doc =
    "Check refinement of an implementation against its spec object \
     (spec-as-implementation).  $(b,--method=outcomes): for each \
     observation client, every implementation outcome must be admitted \
     by the exhaustively explored spec object, and no execution may \
     fault.  $(b,--method=simulation): stepwise forward simulation over \
     generated most-general clients.  Violations come with replayable \
     counterexample scripts; $(b,--strict) gates against the registry's \
     expectation."
  in
  Cmd.v (Cmd.info "refine" ~doc)
    Term.(
      const run $ struct_arg $ execs $ jobs $ reduce $ method_arg
      $ mgc_depth_arg $ strict_arg $ json_arg $ expect_violation)

(* -- sim ------------------------------------------------------------------------ *)

let sim_cmd =
  let struct_opt_arg =
    let doc = "Check one registered structure ($(b,compass specs) lists them)." in
    Arg.(value & opt (some string) None & info [ "struct" ] ~docv:"KEY" ~doc)
  in
  let all_arg =
    let doc = "Check every refinable registered structure." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let client_arg =
    let doc =
      "Restrict to one generated client id (e.g. $(b,ii|r+h2.1)) instead \
       of the whole family."
    in
    Arg.(value & opt (some string) None & info [ "client" ] ~docv:"ID" ~doc)
  in
  let until_arg =
    let doc =
      "Stop at the first breaking client (time-to-witness mode)."
    in
    Arg.(value & flag & info [ "until-violation" ] ~doc)
  in
  (* Like the analyzers, simulation defaults to sleep-set reduction: the
     verdict is reduction-invariant (it only reads event graphs, which
     reductions preserve per Mazurkiewicz trace), so reduction is pure
     speedup. *)
  let sim_reduce =
    let doc =
      "Partial-order reduction (default $(b,sleep); $(b,dpor) switches \
       to source-DPOR, $(b,--reduce=none) explores the full tree).  \
       Simulation verdicts are invariant under all three."
    in
    Arg.(
      value
      & opt ~vopt:Machine.RSleep reduction_conv Machine.RSleep
      & info [ "reduce" ] ~docv:"RED" ~doc)
  in
  let sim_execs =
    let doc = "Exploration budget per generated client." in
    Arg.(value & opt int 50_000 & info [ "execs"; "e" ] ~docv:"N" ~doc)
  in
  let run struct_opt all client depth execs jobs reduce incremental until
      strict json =
    let entries =
      match (struct_opt, all) with
      | Some key, false -> (
          match Specreg.find key with
          | Some e -> Ok [ e ]
          | None -> Error key)
      | None, true ->
          Ok (List.filter (fun e -> e.Libspec.refinable) (Specreg.all ()))
      | Some _, true -> Error "--struct and --all are exclusive"
      | None, false -> Error "one of --struct or --all is required"
    in
    match entries with
    | Error what ->
        Format.eprintf "compass sim: %s (try: %s)@." what
          (String.concat ", " (Specreg.keys ()));
        2
    | Ok entries ->
        let options =
          {
            Sim.default_options with
            mgc_depth = depth;
            max_execs = execs;
            jobs;
            reduce;
            incremental;
            until_violation = until;
            only_client = client;
          }
        in
        let code = ref 0 in
        let reports =
          List.map
            (fun (e : Libspec.entry) ->
              if not e.Libspec.refinable then begin
                Format.eprintf "structure %s is not refinable@."
                  e.Libspec.key;
                code := 2;
                None
              end
              else begin
                let r = Sim.run ~options e in
                Format.printf "%a@." Sim.pp r;
                (match r.Sim.witness with
                | Some w ->
                    Format.printf
                      "replay it: compass replay --struct %s --sim-client \
                       %s --mgc-depth %d --script %s@."
                      e.Libspec.key w.Sim.w_client depth
                      (String.concat ","
                         (List.map string_of_int
                            (Array.to_list (Decision.choices w.Sim.w_trace))))
                | None -> ());
                let bad =
                  if strict then r.Sim.ok = e.Libspec.expect_violation
                  else not r.Sim.ok
                in
                if bad && !code = 0 then code := 1;
                if strict && bad then
                  Format.printf
                    "EXPECTATION MISMATCH: %s %s but the registry expects \
                     %s@."
                    e.Libspec.key
                    (if r.Sim.ok then "simulates" else "breaks")
                    (if e.Libspec.expect_violation then "a violation"
                     else "success");
                Some r
              end)
            entries
          |> List.filter_map Fun.id
        in
        Option.iter
          (fun file ->
            let json =
              match reports with
              | [ r ] -> Sim.to_json r
              | rs -> J.Obj [ ("structures", J.List (List.map Sim.to_json rs)) ]
            in
            write_json ~tool:"sim" file json)
          json;
        !code
  in
  let doc =
    "Forward-simulation refinement over most-general clients: enumerate \
     the observationally complete two-thread client family from the \
     structure's op signature, exhaustively explore each client, and \
     match every execution's commit points against the spec object's \
     labelled transitions under the view-aware abstraction relation.  A \
     failure yields a shrunk, replayable witness naming the exact commit \
     point (or faulting step) where the abstraction relation breaks."
  in
  Cmd.v (Cmd.info "sim" ~doc)
    Term.(
      const run $ struct_opt_arg $ all_arg $ client_arg $ mgc_depth_arg
      $ sim_execs $ jobs $ sim_reduce $ incremental $ until_arg
      $ strict_arg $ json_arg)

(* -- matrix --------------------------------------------------------------------- *)

let matrix_cmd =
  let run execs jobs reduce =
    let cells =
      Experiments.matrix ~dfs_execs:execs ~rand_execs:(execs / 10) ~jobs ~reduce
        ()
    in
    Format.printf "%a" Experiments.pp_matrix cells;
    0
  in
  let doc =
    "Run the spec-style satisfaction matrix (experiment E2): every \
     implementation against every spec style."
  in
  Cmd.v (Cmd.info "matrix" ~doc) Term.(const run $ execs $ jobs $ reduce)

(* -- dot ------------------------------------------------------------------------ *)

let dot_cmd =
  let which =
    let doc = "Structure to sample: $(b,ms), $(b,hw), $(b,treiber), $(b,es), $(b,exchanger), $(b,chaselev)." in
    Arg.(
      required
      & pos 0 (some (enum [ ("ms", `Ms); ("hw", `Hw); ("treiber", `Tr); ("es", `Es); ("exchanger", `Ex); ("chaselev", `Cl) ])) None
      & info [] ~docv:"IMPL" ~doc)
  in
  let run which seed =
    (* Sample one contended finished execution and dump its graph(s). *)
    let rec sample seed (build : Machine.t -> Value.t Prog.t list * Graph.t list) =
      let m = Machine.create () in
      let threads, graphs = build m in
      Machine.spawn m threads;
      match Machine.run m (Oracle.random ~seed) with
      | Machine.Finished _ -> graphs
      | _ -> sample (seed + 1) build
    in
    let vi n = Value.Int n in
    let queue_build (factory : Iface.queue_factory) m =
      let q = factory.make_queue m ~name:"q" in
      ( [
          Prog.returning_unit (Prog.seq [ q.Iface.enq (vi 1); q.Iface.enq (vi 2) ]);
          Prog.bind (q.Iface.deq ()) (fun _ -> q.Iface.deq ());
        ],
        [ q.Iface.q_graph ] )
    in
    let stack_build (factory : Iface.stack_factory) m =
      let s = factory.make_stack m ~name:"s" in
      ( [
          Prog.returning_unit (Prog.seq [ s.Iface.push (vi 1); s.Iface.push (vi 2) ]);
          Prog.bind (s.Iface.pop ()) (fun _ -> s.Iface.pop ());
        ],
        [ s.Iface.s_graph ] )
    in
    let graphs =
      match which with
      | `Ms -> sample seed (queue_build Msqueue.instantiate)
      | `Hw -> sample seed (queue_build Hwqueue.instantiate)
      | `Tr -> sample seed (stack_build Treiber.instantiate)
      | `Es ->
          sample seed (fun m ->
              let t = Elimination.create m ~name:"es" in
              ( [
                  Prog.returning_unit (Elimination.push t (vi 1));
                  Prog.bind (Elimination.pop t) (fun _ -> Prog.return Value.Unit);
                ],
                [
                  Elimination.graph t;
                  Treiber.graph t.Elimination.base;
                  Exchanger.graph t.Elimination.ex;
                ] ))
      | `Ex ->
          sample seed (fun m ->
              let x = Exchanger.create m ~name:"x" in
              ( [ Exchanger.exchange x (vi 1); Exchanger.exchange x (vi 2) ],
                [ Exchanger.graph x ] ))
      | `Cl ->
          sample seed (fun m ->
              let t = Chaselev.create m ~name:"dq" in
              let owner =
                Prog.bind
                  (Prog.seq [ Chaselev.push t (vi 1); Chaselev.push t (vi 2) ])
                  (fun () -> Chaselev.pop t)
              in
              ([ owner; Chaselev.steal t ], [ Chaselev.graph t ]))
    in
    List.iter (fun g -> print_string (Graph.to_dot g)) graphs;
    0
  in
  let doc = "Sample one execution and print its event graph(s) as DOT." in
  Cmd.v (Cmd.info "dot" ~doc) Term.(const run $ which $ seed)

(* -- axioms ------------------------------------------------------------------------ *)

let axioms_cmd =
  let run execs jobs reduce incremental stride =
    (* Differential validation: every execution of the litmus battery and
       a workload per structure must satisfy the RC11 axioms when rebuilt
       declaratively from the recorded accesses. *)
    let config = { Machine.default_config with record_accesses = true } in
    let with_rc11 (sc : Explore.scenario) =
      {
        sc with
        Explore.build =
          (fun m ->
            let judge = sc.Explore.build m in
            fun outcome ->
              match judge outcome with
              | Explore.Pass -> (
                  match outcome with
                  | Machine.Finished _ -> (
                      match Rc11.check (Machine.accesses m) with
                      | [] -> Explore.Pass
                      | v :: _ -> Explore.Violation v)
                  | _ -> Explore.Pass)
              | other -> other);
      }
    in
    let code = ref 0 in
    let run_sc sc =
      let r =
        if jobs > 1 then
          Explore.pdfs ~jobs ~max_execs:execs ~reduce ~incremental ~stride
            ~config (with_rc11 sc)
        else
          Explore.dfs ~max_execs:execs ~reduce ~incremental ~stride ~config
            (with_rc11 sc)
      in
      if not (Explore.ok r) then code := 1;
      Format.printf "%-38s %7d executions  %s@." r.Explore.name
        r.Explore.executions
        (if Explore.ok r then "axioms OK" else "AXIOM VIOLATION")
    in
    List.iter (fun (t : Litmus.t) -> run_sc t.Litmus.scenario) (Litmus.all ());
    run_sc (Harness.queue_workload Msqueue.instantiate ~enqers:2 ~deqers:1 ~ops:1 ());
    run_sc (Harness.queue_workload Hwqueue.instantiate ~enqers:2 ~deqers:1 ~ops:1 ());
    run_sc (Harness.stack_workload Treiber.instantiate ~pushers:2 ~poppers:1 ~ops:1 ());
    run_sc (Harness.exchanger_workload ~threads:2 ());
    !code
  in
  let doc =
    "Differentially validate the operational semantics against the RC11 \
     axioms (po/rf/mo/fr/sw/hb rebuilt from recorded accesses)."
  in
  Cmd.v (Cmd.info "axioms" ~doc)
    Term.(const run $ execs $ jobs $ reduce $ incremental $ stride)

(* -- analyze ----------------------------------------------------------------------- *)

(* Unlike the exploring subcommands, analysis defaults to sleep-set
   reduction: the audit needs *complete* explorations to call a mode
   over-strong, and reduction keeps them small without losing
   violations. *)
let analyze_reduce =
  let doc =
    "Partial-order reduction (default $(b,sleep); $(b,dpor) switches to \
     source-DPOR, $(b,--reduce=none) explores the full tree)."
  in
  Arg.(
    value
    & opt ~vopt:Machine.RSleep reduction_conv Machine.RSleep
    & info [ "reduce" ] ~docv:"RED" ~doc)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let analyze_races_cmd =
  let run struct_key execs reduce incremental stride strict json =
    with_entry struct_key (fun e ->
        let agg = Races.agg_create () in
        let config =
          { Machine.default_config with record_accesses = true }
        in
        List.iter
          (fun mk ->
            let sc =
              Instrument.with_accesses (mk ()) (fun log ->
                  Races.agg_add agg log)
            in
            let r =
              Explore.dfs ~max_execs:execs ~reduce ~incremental ~stride ~config
                sc
            in
            Format.printf "%-38s %7d executions analysed@." r.Explore.name
              r.Explore.executions)
          e.Libspec.scenarios;
        let s = Races.summary agg in
        Format.printf "@.%a@." Races.pp_summary s;
        Option.iter
          (fun f -> write_json ~tool:"analyze-races" f (Races.summary_to_json s))
          json;
        if s.Races.mismatch_count > 0 then 1
        else if strict && s.Races.total_pairs > 0 then 1
        else 0)
  in
  let doc =
    "Explore a structure's registered clients with access recording on, detect \
     data races per execution with the vector-clock detector, aggregate \
     them by site pair, and differentially check every execution's race \
     set against the RC11 checker's race clause.  (Sequential driver \
     only: the collector is a closure.)"
  in
  Cmd.v (Cmd.info "races" ~doc)
    Term.(
      const run $ struct_arg $ execs $ analyze_reduce $ incremental $ stride
      $ strict_arg $ json_arg)

let analyze_modes_cmd =
  let site_arg =
    let doc = "Only audit sites whose label contains $(docv)." in
    Arg.(value & opt (some string) None & info [ "site" ] ~docv:"SUBSTR" ~doc)
  in
  let prioritize_arg =
    let doc =
      "Audit order: $(b,none) (discovery order) or $(b,static) (the \
       static linter's predicted-necessary sites first, their weakest \
       verdict mutant run before the intermediate ones — fewer mutants \
       and executions to the first Necessary verdict)."
    in
    Arg.(
      value
      & opt (Arg.enum [ ("none", `None); ("static", `Static) ]) `None
      & info [ "prioritize" ] ~docv:"ORDER" ~doc)
  in
  let run struct_key execs jobs reduce site prio strict json =
    with_entry struct_key (fun e ->
        let options = { Audit.default_options with execs; jobs; reduce } in
        let site_filter =
          match site with
          | None -> fun _ -> true
          | Some sub -> fun s -> contains ~sub s
        in
        let prioritize, verdict_first =
          match prio with
          | `None -> ([], fun _ -> false)
          | `Static ->
              let st =
                Static.analyze ~subject:e.Libspec.key e.Libspec.scenarios
              in
              let predicted = st.Static.predicted_necessary in
              Format.printf "static priority: %s@."
                (match predicted @ st.Static.over_strong with
                | [] -> "(none)"
                | order -> String.concat ", " order);
              ( predicted @ st.Static.over_strong,
                fun s -> List.mem s predicted )
        in
        let report =
          Audit.run ~options ~site_filter ~prioritize ~verdict_first
            ~log:(fun line -> Format.printf "%s@." line)
            ~probe:e.Libspec.key e.Libspec.scenarios
        in
        Format.printf "@.%a@." Audit.pp_report report;
        Option.iter
          (fun f -> write_json ~tool:"analyze-modes" f (Audit.report_to_json report))
          json;
        if not report.Audit.baseline_ok then 1
        else
          let _, over_strong, unknown, _ = Audit.counts report in
          if strict && over_strong + unknown > 0 then 1 else 0)
  in
  let doc =
    "The mode-necessity audit: for every labeled atomic site (and fence) \
     the registered clients exercise, run strictly weaker mutants via mode overrides \
     and classify the site necessary (violation witnessed, with a \
     replayable counterexample script), over-strong (exploration \
     exhausted with no violation), or unknown (budget ran out).  \
     $(b,--prioritize=static) orders the audit by the static linter's \
     prediction; $(b,--strict) exits nonzero on any over-strong or \
     unknown verdict."
  in
  Cmd.v (Cmd.info "modes" ~doc)
    Term.(
      const run $ struct_arg $ execs $ jobs $ analyze_reduce $ site_arg
      $ prioritize_arg $ strict_arg $ json_arg)

let analyze_static_cmd =
  let struct_opt_arg =
    let doc =
      Printf.sprintf "Structure to lint ($(b,compass specs) lists them): %s."
        (String.concat ", "
           (List.map (fun k -> Printf.sprintf "$(b,%s)" k) (Specreg.keys ())))
    in
    Arg.(value & opt (some string) None & info [ "struct" ] ~docv:"KEY" ~doc)
  in
  let all_arg =
    let doc = "Lint every registered structure." in
    Arg.(value & flag & info [ "all" ] ~doc)
  in
  let weaken_arg =
    let doc =
      "Lint under a hypothetical weakening (repeatable): $(b,site=mode), \
       the same specs $(b,compass replay --weaken) takes."
    in
    Arg.(value & opt_all string [] & info [ "weaken" ] ~docv:"SITE=MODE" ~doc)
  in
  let run struct_key all weaken strict json =
    match Override.of_specs weaken with
    | Error e ->
        Format.eprintf "bad --weaken spec: %s@." e;
        2
    | Ok overrides -> (
        let entries =
          match (struct_key, all) with
          | None, true -> Ok (Specreg.all ())
          | Some k, false -> (
              match Specreg.find k with
              | Some e -> Ok [ e ]
              | None ->
                  Error
                    (Printf.sprintf "unknown structure %s (try: %s)" k
                       (String.concat ", " (Specreg.keys ()))))
          | None, false | Some _, true ->
              Error "pass exactly one of --struct KEY or --all"
        in
        match entries with
        | Error msg ->
            Format.eprintf "%s@." msg;
            2
        | Ok entries ->
            let mismatched = ref [] in
            let reports =
              List.map
                (fun (e : Libspec.entry) ->
                  let r =
                    Static.analyze ~overrides ~subject:e.Libspec.key
                      e.Libspec.scenarios
                  in
                  Format.printf "%a@." Static.pp_report r;
                  (* With an explicit [--weaken] the registry expectation
                     does not apply — strict then simply demands a clean
                     report. *)
                  let ok =
                    if Override.is_empty overrides then
                      Static.clean r = not e.Libspec.expect_violation
                    else Static.clean r
                  in
                  Format.printf "verdict: %s%s@.@."
                    (if Static.clean r then "clean" else "flagged")
                    (if ok then ""
                     else if Override.is_empty overrides then
                       Printf.sprintf " (expected %s)"
                         (if e.Libspec.expect_violation then "flagged"
                          else "clean")
                     else "");
                  if not ok then mismatched := e.Libspec.key :: !mismatched;
                  Static.report_to_json r)
                entries
            in
            Option.iter
              (fun f ->
                write_json ~tool:"analyze-static" f
                  (J.Obj [ ("structures", J.List reports) ]))
              json;
            match List.rev !mismatched with
            | [] -> 0
            | keys ->
                Format.eprintf "expectation mismatch: %s@."
                  (String.concat ", " keys);
                if strict then 1 else 0)
  in
  let doc =
    "The static synchronization linter: evaluate a structure's registered \
     clients symbolically over the Prog DSL (no exploration), extract the \
     site/location access graph, and run the lint passes — publication \
     safety, acquire pairing, relaxed-CAS-success misuse, non-atomic race \
     candidates — plus a hypothetical-weakening pass splitting the \
     labeled sites into predicted-necessary and over-strong candidates.  \
     $(b,--strict) exits nonzero when a verdict contradicts the \
     registry's expectation (expect-violation structures must be \
     flagged, the rest clean)."
  in
  Cmd.v (Cmd.info "static" ~doc)
    Term.(
      const run $ struct_opt_arg $ all_arg $ weaken_arg $ strict_arg
      $ json_arg)

let analyze_cmd =
  let doc =
    "Synchronization analysis: per-site race detection, the \
     mode-necessity audit, and the static linter."
  in
  Cmd.group (Cmd.info "analyze" ~doc)
    [ analyze_races_cmd; analyze_modes_cmd; analyze_static_cmd ]

(* -- replay ------------------------------------------------------------------------ *)

let replay_cmd =
  let script_arg =
    let doc =
      "Decision script: comma-separated choices (from a report's \
       counterexample)."
    in
    Arg.(value & opt string "" & info [ "script" ] ~docv:"N,N,..." ~doc)
  in
  let weaken_arg =
    let doc =
      "Weaken a site while replaying (repeatable): $(b,site=mode) with an \
       access mode ($(b,rlx), $(b,acq), $(b,rel), $(b,acq_rel)), a fence \
       mode ($(b,fence_acq), ...), or $(b,drop) — the spec an audit \
       counterexample prints."
    in
    Arg.(value & opt_all string [] & info [ "weaken" ] ~docv:"SITE=MODE" ~doc)
  in
  let probe_arg =
    let doc =
      "Replay against a registered structure's client scenario instead of \
       the plain MP client (same scenarios the audit runs; see \
       $(b,compass analyze))."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "struct"; "probe" ] ~docv:"KEY" ~doc)
  in
  let scenario_arg =
    let doc = "Scenario index within the structure's registered clients \
               (default 0, the MP client)." in
    Arg.(value & opt int 0 & info [ "scenario" ] ~docv:"I" ~doc)
  in
  let refine_client_arg =
    let doc =
      "Replay against the structure's $(docv)-th refinement observation \
       client (judged by spec-object outcome membership) instead of its \
       registered scenarios — for $(b,compass refine) counterexamples."
    in
    Arg.(
      value & opt (some int) None & info [ "refine-client" ] ~docv:"I" ~doc)
  in
  let sim_client_arg =
    let doc =
      "Replay against the generated most-general client $(docv) (judged \
       by the forward-simulation relation) — for $(b,compass sim) \
       witnesses; $(b,--mgc-depth) must cover the id."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "sim-client" ] ~docv:"ID" ~doc)
  in
  let trace_arg =
    let doc =
      "Print the typed decision trace of the replay: one numbered line \
       per decision with its kind (sched/read/cas/ts), source site label \
       and reads-from provenance (which write the choice read)."
    in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  let run factory script_str weaken probe scenario_idx refine_client
      sim_client mgc_depth show_trace =
    let script =
      if script_str = "" then [||]
      else
        String.split_on_char ',' script_str
        |> List.map int_of_string |> Array.of_list |> Decision.of_ints
    in
    match Override.of_specs weaken with
    | Error e ->
        Format.eprintf "bad --weaken spec: %s@." e;
        2
    | Ok overrides -> (
        let sc =
          match (probe, refine_client, sim_client) with
          | None, _, _ -> Some (Mp.make factory (Mp.fresh_stats ()))
          | Some key, _, Some id -> (
              match Specreg.find key with
              | Some e -> Sim.client_scenario ~depth:mgc_depth e id
              | None -> None)
          | Some key, Some i, None -> (
              match Specreg.find key with
              | Some e -> Refine.client_scenario e i
              | None -> None)
          | Some key, None, None -> (
              match Specreg.find key with
              | Some e -> (
                  match Specreg.scenario e scenario_idx with
                  | Some mk -> Some (mk ())
                  | None -> None)
              | None -> None)
        in
        match sc with
        | None ->
            Format.eprintf "unknown structure/scenario (try: %s)@."
              (String.concat ", " (Specreg.keys ()));
            2
        | Some sc ->
            (* An override naming a site that does not exist would
               silently replay unweakened; check the labels the static
               analyzer discovers for the chosen probe first. *)
            let valid_sites =
              if Override.is_empty overrides then []
              else
                match probe with
                | Some key -> (
                    match Specreg.find key with
                    | Some e -> List.map fst (Specreg.sites e)
                    | None -> [])
                | None ->
                    List.map fst
                      (Static.site_modes
                         [ (fun () -> Mp.make factory (Mp.fresh_stats ())) ])
            in
            let unknown_sites =
              Override.spec_strings overrides
              |> List.filter_map (fun spec ->
                     match String.index_opt spec '=' with
                     | Some i ->
                         let site = String.sub spec 0 i in
                         if List.mem site valid_sites then None
                         else Some site
                     | None -> None)
            in
            if unknown_sites <> [] then begin
              Format.eprintf
                "unknown --weaken site(s): %s@.valid sites: %s@."
                (String.concat ", " unknown_sites)
                (String.concat ", " valid_sites);
              2
            end
            else begin
            if not (Override.is_empty overrides) then
              Format.printf "weakened: %a@." Override.pp overrides;
            let config = { Machine.default_config with overrides } in
            let r = Explore.replay ~config sc script in
            if r.Explore.r_clamped > 0 then
              Format.printf
                "note: %d out-of-range choice(s) clamped to the last \
                 alternative@."
                r.Explore.r_clamped;
            Format.printf "outcome: %a@.verdict: %s@.@.%a@."
              Machine.pp_outcome r.Explore.r_outcome
              (match r.Explore.r_verdict with
              | Explore.Pass -> "pass"
              | Explore.Violation s -> "VIOLATION: " ^ s
              | Explore.Discard s -> "discard: " ^ s)
              Trace.pp (Machine.trace r.Explore.r_machine);
            if show_trace then
              Format.printf "@.decision trace:@.%a@." Decision.pp_trace
                r.Explore.r_trace;
            0
            end)
  in
  let doc =
    "Replay one execution from a decision script with full tracing — \
     optionally under the same $(b,--weaken) mode overrides an audit \
     mutant ran with, so its counterexamples replay exactly (empty \
     script = first path)."
  in
  Cmd.v (Cmd.info "replay" ~doc)
    Term.(
      const run $ queue_arg $ script_arg $ weaken_arg $ probe_arg
      $ scenario_arg $ refine_client_arg $ sim_client_arg $ mgc_depth_arg
      $ trace_arg)

(* -- fuzz ---------------------------------------------------------------------- *)

let scenario_idx_arg =
  let doc = "Scenario index within the structure's registered clients \
             (default 0)." in
  Arg.(value & opt int 0 & info [ "scenario" ] ~docv:"I" ~doc)

let fuzz_cmd =
  let mode_arg =
    let doc =
      "Search strategy: $(b,uniform) (seeded-random baseline), $(b,pct) \
       (priority-based scheduling with change points), or $(b,guided) \
       (coverage-guided corpus mutation)."
    in
    Arg.(
      value
      & opt
          (enum
             [
               ("uniform", Fz.Fuzz.Uniform);
               ("pct", Fz.Fuzz.Pct);
               ("guided", Fz.Fuzz.Guided);
             ])
          Fz.Fuzz.Pct
      & info [ "mode" ] ~docv:"MODE" ~doc)
  in
  let pct_depth =
    let doc = "PCT priority change points." in
    Arg.(value & opt int 3 & info [ "pct-depth"; "d" ] ~docv:"D" ~doc)
  in
  let pct_len =
    let doc =
      "Scheduling-decision count PCT samples change points over (0: \
       measure with a pilot execution)."
    in
    Arg.(value & opt int 0 & info [ "pct-len" ] ~docv:"N" ~doc)
  in
  let fuzz_execs =
    let doc = "Fuzzing execution budget." in
    Arg.(value & opt int 4000 & info [ "execs"; "e" ] ~docv:"N" ~doc)
  in
  let corpus_arg =
    let doc =
      "Seed the guided corpus from $(docv) (missing file = empty) and save \
       the final corpus back to it."
    in
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"FILE" ~doc)
  in
  let shrink_arg =
    let doc = "Shrink the first violation before reporting (default on)." in
    Arg.(value & opt bool true & info [ "shrink" ] ~docv:"BOOL" ~doc)
  in
  let expect_violation =
    let doc =
      "Invert the exit code: succeed only if a violation was found (for \
       known-broken fixtures in CI)."
    in
    Arg.(value & flag & info [ "expect-violation" ] ~doc)
  in
  let run struct_key scenario_idx mode depth len execs seed jobs corpus shrink
      json expect =
    with_entry struct_key (fun e ->
        match Specreg.scenario e scenario_idx with
        | None ->
            Format.eprintf "structure %s has no scenario %d@." struct_key
              scenario_idx;
            2
        | Some mk ->
            let corpus_in = Option.map Fz.Corpus.load corpus in
            let options =
              {
                Fz.Fuzz.default_options with
                mode;
                execs;
                seed;
                jobs;
                pct_depth = depth;
                sched_len = len;
                shrink;
                corpus_in;
              }
            in
            let o = Fz.Fuzz.run ~options mk in
            Format.printf "%a@." Fz.Fuzz.pp_outcome o;
            let confirmed =
              match o.Fz.Fuzz.violations with
              | [] -> false
              | f :: _ -> (
                  (* the reported (shrunk) script must still replay to the
                     same violation *)
                  let r =
                    Explore.replay ~config:options.Fz.Fuzz.config (mk ())
                      f.Explore.trace
                  in
                  match r.Explore.r_verdict with
                  | Explore.Violation m when m = f.Explore.message ->
                      Format.printf "replay confirms the violation@.";
                      true
                  | _ ->
                      Format.printf
                        "WARNING: replay does not reproduce the violation@.";
                      false)
            in
            Option.iter
              (fun file ->
                Fz.Corpus.save o.Fz.Fuzz.corpus file;
                Format.printf "corpus (%d entries) saved to %s@."
                  (Fz.Corpus.size o.Fz.Fuzz.corpus)
                  file)
              corpus;
            Option.iter
              (fun file ->
                write_json ~tool:"fuzz" ~seed file (Fz.Fuzz.outcome_to_json o))
              json;
            if expect then if confirmed then 0 else 1
            else if o.Fz.Fuzz.violations = [] then 0
            else 1)
  in
  let doc =
    "Schedule-fuzz a structure probe: sample executions under a search \
     strategy (uniform / PCT / coverage-guided) instead of enumerating \
     them, report coverage statistics, and shrink the first violating \
     decision script to 1-minimal form.  Deterministic for a fixed \
     $(b,--seed) at any $(b,--jobs) count."
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ struct_arg $ scenario_idx_arg $ mode_arg $ pct_depth
      $ pct_len $ fuzz_execs $ seed $ jobs $ corpus_arg $ shrink_arg
      $ json_arg $ expect_violation)

(* -- shrink -------------------------------------------------------------------- *)

let shrink_cmd =
  let script_arg =
    let doc = "Violating decision script to shrink (comma-separated)." in
    Arg.(
      required
      & opt (some string) None
      & info [ "script" ] ~docv:"N,N,..." ~doc)
  in
  let weaken_arg =
    let doc =
      "Shrink under mode overrides (repeatable): $(b,site=mode), as \
       printed by audit counterexamples."
    in
    Arg.(value & opt_all string [] & info [ "weaken" ] ~docv:"SITE=MODE" ~doc)
  in
  let probe_arg =
    let doc =
      "Shrink against a registered structure's client scenario instead of \
       the plain MP client."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "struct"; "probe" ] ~docv:"KEY" ~doc)
  in
  let max_replays =
    let doc = "Replay budget for the shrinker." in
    Arg.(value & opt int 20_000 & info [ "max-replays" ] ~docv:"N" ~doc)
  in
  let run factory script_str weaken probe scenario_idx max_replays =
    let script =
      String.split_on_char ',' script_str
      |> List.filter (fun s -> s <> "")
      |> List.map int_of_string |> Array.of_list |> Decision.of_ints
    in
    match Override.of_specs weaken with
    | Error e ->
        Format.eprintf "bad --weaken spec: %s@." e;
        2
    | Ok overrides -> (
        let mk =
          match probe with
          | None -> Some (fun () -> Mp.make factory (Mp.fresh_stats ()))
          | Some key -> (
              match Specreg.find key with
              | Some e -> Specreg.scenario e scenario_idx
              | None -> None)
        in
        match mk with
        | None ->
            Format.eprintf "unknown structure/scenario (try: %s)@."
              (String.concat ", " (Specreg.keys ()));
            2
        | Some mk -> (
            let config = { Machine.default_config with overrides } in
            let r = Explore.replay ~config (mk ()) script in
            match r.Explore.r_verdict with
            | Explore.Violation message ->
                let stats, small =
                  Fz.Shrink.minimize ~config ~max_replays ~scenario:(mk ())
                    ~message script
                in
                Format.printf
                  "violation: %s@ script: %d -> %d choices in %d replays%s@ \
                   shrunk: %s@."
                  message stats.Fz.Shrink.initial_len
                  stats.Fz.Shrink.final_len stats.Fz.Shrink.replays
                  (if stats.Fz.Shrink.clamped > 0 then
                     Printf.sprintf " (%d choices clamped)"
                       stats.Fz.Shrink.clamped
                   else "")
                  (String.concat ","
                     (List.map string_of_int
                        (Array.to_list (Decision.choices small))));
                0
            | Explore.Pass | Explore.Discard _ ->
                Format.eprintf
                  "the script does not produce a violation — nothing to \
                   shrink@.";
                1))
  in
  let doc =
    "Delta-debug a violating decision script (e.g. from a fuzz or audit \
     report) down to a 1-minimal script producing the same violation, \
     optionally under the same $(b,--weaken) overrides."
  in
  Cmd.v (Cmd.info "shrink" ~doc)
    Term.(
      const run $ queue_arg $ script_arg $ weaken_arg $ probe_arg
      $ scenario_idx_arg $ max_replays)

(* -- report ---------------------------------------------------------------------- *)

let report_cmd =
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced budgets (~10x faster).")
  in
  let run quick jobs reduce =
    let t0 = Unix.gettimeofday () in
    let lines = Experiments.all ~quick ~jobs ~reduce () in
    List.iter (fun l -> Format.printf "%a@.@." Experiments.pp_line l) lines;
    Format.printf "E7 reference points from the paper (Section 1.2 / 6):@.";
    List.iter
      (fun (what, figure) -> Format.printf "  %-28s %s@." what figure)
      Experiments.e7_paper_numbers;
    (* One-line synchronization-audit summary (full run: compass analyze
       modes --struct ms). *)
    let e = Option.get (Specreg.find "ms") in
    let options =
      (* reduction always: the summary needs complete explorations to
         tell over-strong from unknown within a sane budget *)
      { Audit.default_options with execs = 12_000; jobs; reduce = Machine.RSleep }
    in
    let ar = Audit.run ~options ~probe:e.Libspec.key e.Libspec.scenarios in
    let n, o, u, mi = Audit.counts ar in
    Format.printf
      "@.sync audit (ms-queue): %d sites audited — %d necessary, %d \
       over-strong, %d unknown, %d minimal@."
      (List.length ar.Audit.sites) n o u mi;
    let ok = List.length (List.filter (fun l -> l.Experiments.ok) lines) in
    Format.printf "@.%d/%d experiments OK in %.1fs@." ok (List.length lines)
      (Unix.gettimeofday () -. t0);
    if ok = List.length lines && ar.Audit.baseline_ok then 0 else 1
  in
  let doc = "Run the full experiment battery (E1-E8) and print paper-vs-measured." in
  Cmd.v (Cmd.info "report" ~doc) Term.(const run $ quick $ jobs $ reduce)

(* -- main ------------------------------------------------------------------------- *)

let () =
  let doc =
    "COMPASS-OCaml: executable relaxed-memory library specifications \
     (PLDI 2022 reproduction)"
  in
  let info = Cmd.info "compass" ~version:Core.version ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            litmus_cmd; client_cmd; specs_cmd; check_cmd; refine_cmd;
            sim_cmd; matrix_cmd; dot_cmd; axioms_cmd; analyze_cmd;
            replay_cmd; fuzz_cmd; shrink_cmd; report_cmd;
          ]))
