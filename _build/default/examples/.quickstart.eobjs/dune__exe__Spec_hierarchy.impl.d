examples/spec_hierarchy.ml: Compass_clients Experiments Format
