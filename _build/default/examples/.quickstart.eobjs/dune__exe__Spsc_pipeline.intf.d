examples/spsc_pipeline.mli:
