examples/quickstart.ml: Compass_clients Compass_dstruct Compass_machine Explore Format Mp Msqueue
