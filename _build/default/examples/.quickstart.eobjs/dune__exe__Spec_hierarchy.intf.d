examples/spec_hierarchy.mli:
