examples/work_stealing.mli:
