examples/litmus_tour.ml: Compass_clients Compass_machine Compass_rmc Explore Format List Litmus Machine Mode Prog Trace Value
