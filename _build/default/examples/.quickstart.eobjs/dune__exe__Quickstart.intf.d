examples/quickstart.mli:
