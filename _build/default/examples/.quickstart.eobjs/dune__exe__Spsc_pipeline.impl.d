examples/spsc_pipeline.ml: Compass_clients Compass_dstruct Compass_machine Explore Format Hwqueue Iface List Msqueue Pipeline Printf Spsc_client
