examples/work_stealing.ml: Compass_clients Compass_machine Explore Format Ws_client
