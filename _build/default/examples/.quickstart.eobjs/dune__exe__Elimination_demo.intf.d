examples/elimination_demo.mli:
