(* SPSC and pipeline clients (paper Section 3.2), mixing implementations.

   Run with:  dune exec examples/spsc_pipeline.exe

   The SPSC client moves an array through a queue: the producer enqueues
   a_p[0..n); the consumer dequeues n values (retrying on empty) into a_c.
   End-to-end FIFO means a_c = a_p — including the *non-atomic* array
   accesses being race-free, which exercises view transfer through the
   queue.

   The pipeline client chains two queues of different implementations
   (Michael-Scott feeding Herlihy-Wing and vice versa) through a
   transforming stage — the two-structure protocol of Section 2.2. *)

open Compass_machine
open Compass_dstruct
open Compass_clients

let run name sc =
  let report = Explore.random ~execs:3_000 ~seed:13 sc in
  Format.printf "%-34s %a@." name Explore.pp_report report

let () =
  Format.printf "== SPSC: end-to-end FIFO through one queue ==@.";
  List.iter
    (fun (factory : Iface.queue_factory) ->
      let st = Spsc_client.fresh_stats () in
      run factory.q_name (Spsc_client.make ~n:4 factory st);
      Format.printf "  (consumer retried on empty %d times)@." st.Spsc_client.empties)
    [ Msqueue.instantiate; Hwqueue.instantiate ];

  Format.printf "@.== pipeline: two queues, mixed implementations ==@.";
  List.iter
    (fun (f1, f2) ->
      let st = Pipeline.fresh_stats () in
      run
        (Printf.sprintf "%s -> %s" f1.Iface.q_name f2.Iface.q_name)
        (Pipeline.make ~n:2 f1 f2 st))
    [
      (Msqueue.instantiate, Hwqueue.instantiate);
      (Hwqueue.instantiate, Msqueue.instantiate);
      (Msqueue.instantiate, Msqueue.instantiate);
    ];

  Format.printf "@.== and exhaustively, for a small instance ==@.";
  let st = Spsc_client.fresh_stats () in
  let report =
    Explore.dfs ~max_execs:150_000
      (Spsc_client.make ~n:2 ~retries:3 Msqueue.instantiate st)
  in
  Format.printf "%a@." Explore.pp_report report
