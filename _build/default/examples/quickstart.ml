(* Quickstart: verify the paper's Message-Passing client (Figure 1).

   Run with:  dune exec examples/quickstart.exe

   Three threads share a Michael-Scott queue [q] and a flag:

     enq(q, 41);            |           | while ([acq] flag == 0) skip;
     enq(q, 42);            |  deq(q)   | deq(q)
     flag :=[rel] 1         |           | // must return 41 or 42, never empty

   We enumerate EVERY execution of this program under the ORC11 memory
   model and check, on each one: the dequeue results, the queue's
   consistency conditions (QueueConsistent — FIFO, EMPDEQ, ...), and the
   deqPerm counting protocol of Figure 3.  This is the model-checking
   counterpart of the paper's Iris proof. *)

open Compass_machine
open Compass_dstruct
open Compass_clients

let () =
  Format.printf "== COMPASS quickstart: the MP client, exhaustively ==@.@.";

  (* 1. Pick an implementation (try [Hwqueue.instantiate] too). *)
  let queue = Msqueue.instantiate in

  (* 2. Build the scenario: [Mp.make] assembles the three threads and a
     judge that checks the verified property on every finished
     execution. *)
  let stats = Mp.fresh_stats () in
  let scenario = Mp.make queue stats in

  (* 3. Explore: DFS enumerates the decision tree (thread interleavings x
     read choices) until exhaustion. *)
  let report = Explore.dfs ~max_execs:200_000 scenario in
  Format.printf "%a@.@.%a@.@." Explore.pp_report report Mp.pp_stats stats;

  (* 4. The ablation: drop the release/acquire on the flag and the empty
     dequeue becomes observable — the behaviour that Cosmo-style specs
     cannot exclude and the paper's hb-tracking specs do. *)
  Format.printf "== Ablation: relaxed flag (no view transfer) ==@.@.";
  let stats_weak = Mp.fresh_stats () in
  let report_weak = Explore.dfs ~max_execs:400_000 (Mp.make_weak queue stats_weak) in
  Format.printf "%a@.@.%a@.@." Explore.pp_report report_weak Mp.pp_stats stats_weak;

  if
    Explore.ok report && report.Explore.complete
    && stats.Mp.right_empty = 0
    && stats_weak.Mp.right_empty > 0
  then
    Format.printf
      "VERIFIED: with rel/acq, the right thread never sees an empty queue \
       (%d executions); without it, it does (%d times).@."
      report.Explore.executions stats_weak.Mp.right_empty
  else Format.printf "UNEXPECTED — see the reports above.@."
