(* The spec-style hierarchy, measured (paper Sections 2.3-3.3).

   Run with:  dune exec examples/spec_hierarchy.exe

   Every implementation is explored under a contended workload and every
   execution's graph is checked against all five spec styles.  The
   resulting matrix reproduces the paper's placement of each
   implementation in the hierarchy:

   - the Michael-Scott queue (pure release-acquire) supports commit-point
     abstract states: LATso-abs / LAThb-abs hold;
   - the weak Herlihy-Wing queue does not (its FAA order diverges from its
     publication order — the paper's prophecy problem), yet LAThb holds
     and an offline linearisation always exists;
   - nothing relaxed reaches the SC spec (SC-abs): failing dequeues/pops
     may commit while the abstract state is non-empty. *)

open Compass_clients

let () =
  Format.printf
    "== spec-style satisfaction matrix (this takes ~a minute) ==@.@.";
  let cells = Experiments.matrix ~dfs_execs:25_000 ~rand_execs:2_000 () in
  Format.printf "%a@." Experiments.pp_matrix cells;
  Format.printf
    "@.Reading guide:@.  sat       every explored execution satisfied the \
     style@.  FAIL k/n  k of n executions violated it (an implementation \
     does not satisfy the spec)@.@.Expected placement (the paper's):@.  \
     ms-queue     satisfies LAThb, LATso-abs, LAThb-abs, LAThist — not \
     SC-abs@.  hw-queue     satisfies LAThb and LAThist only@.  treiber      \
     satisfies LAThist (and everything below) — not SC-abs@.  elimination  \
     satisfies the same specs as its base stack@."
