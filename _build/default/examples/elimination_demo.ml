(* The elimination stack, inside out (paper Section 4).

   Run with:  dune exec examples/elimination_demo.exe

   We run a contended push/pop workload on the elimination stack, verify
   the composed graph plus both sub-libraries on every sampled execution,
   report how many operations were served by elimination, and dump the
   DOT of one execution where an elimination actually happened — the
   eliminated pair shows up as a push and a pop committed in the SAME
   machine step. *)

open Compass_rmc
open Compass_event
open Compass_machine
open Compass_spec
open Compass_dstruct
open Compass_clients
open Prog.Syntax

let vi n = Value.Int n

let () =
  Format.printf "== elimination stack: composition check ==@.@.";
  let st = Es_compose.fresh_stats () in
  let report =
    Explore.random ~execs:6_000 ~seed:2
      (Es_compose.make ~pushers:2 ~poppers:2 ~ops:2 st)
  in
  Format.printf
    "%a@.@.ES events from the base stack: %d@.eliminated push/pop pairs:   \
     %d@.@."
    Explore.pp_report report st.Es_compose.via_base st.Es_compose.eliminated;

  (* Hunt for an execution with an elimination and dump its graphs. *)
  Format.printf "== one execution with an elimination, as DOT ==@.@.";
  let rec hunt seed attempts =
    if attempts > 20_000 then None
    else begin
      let m = Machine.create () in
      let t = Elimination.create m ~name:"es" in
      let pushes =
        Prog.returning_unit
          (let* () = Elimination.push t (vi 1) in
           Elimination.push t (vi 2))
      in
      let pops _ =
        Prog.returning_unit
          (let* _ = Elimination.pop t in
           let* _ = Elimination.pop t in
           Prog.return ())
      in
      Machine.spawn m [ pushes; pops 0; pops 1 ];
      match Machine.run m (Oracle.random ~seed) with
      | Machine.Finished _
        when List.length (Graph.so (Exchanger.graph t.Elimination.ex)) > 0 ->
          Some t
      | _ -> hunt (seed + 1) (attempts + 1)
    end
  in
  match hunt 0 0 with
  | Some t ->
      let es_g = Elimination.graph t in
      print_string (Graph.to_dot es_g);
      Format.printf "@.(note the Push/Pop pair sharing one commit step — \
                     committed atomically together, as Section 4.2's helping \
                     requires)@.@.";
      let violations =
        Stack_spec.consistent es_g
        @ Stack_spec.consistent (Treiber.graph t.Elimination.base)
        @ Exchanger_spec.consistent (Exchanger.graph t.Elimination.ex)
      in
      Format.printf "consistency of all three graphs: %a@." Check.pp violations
  | None ->
      Format.printf "no elimination found in the sampled executions \
                     (try more attempts)@."
