(* Work stealing with the Chase-Lev deque — the paper's Section 6 future
   work ("we would like to apply the COMPASS approach to more
   sophisticated RMC libraries such as work-stealing queues"), executed.

   Run with:  dune exec examples/work_stealing.exe

   The deque follows the C11 access modes of Le, Pop, Cohen & Zappa
   Nardelli (PPoPP'13): the owner's take and the thieves' steal resolve
   their race on the last element with a CAS guarded by SC fences.  We
   check WsDequeConsistent (unique takes, owner-sequential ops, steal
   order = push order, owner-LIFO, and a reservation-aware empty
   condition) plus LAThist on every execution — and then weaken the SC
   fences to acq-rel and watch the model checker find the classic
   double-take. *)

open Compass_machine
open Compass_clients

let () =
  Format.printf "== Chase-Lev with SC fences: exhaustive small instance ==@.";
  let st = Ws_client.fresh_stats () in
  let r =
    Explore.dfs ~max_execs:120_000 (Ws_client.make ~tasks:2 ~thieves:1 ~steals:1 st)
  in
  Format.printf "%a@.  %a@.@." Explore.pp_report r Ws_client.pp_stats st;

  Format.printf "== contended: 3 tasks, 2 thieves (random sampling) ==@.";
  let st2 = Ws_client.fresh_stats () in
  let r2 =
    Explore.random ~execs:8_000 ~seed:3
      (Ws_client.make ~tasks:3 ~thieves:2 ~steals:2 st2)
  in
  Format.printf "%a@.  %a@.@." Explore.pp_report r2 Ws_client.pp_stats st2;

  Format.printf
    "== the ablation: SC fences weakened to acq-rel (Le et al.'s bug) ==@.";
  let st3 = Ws_client.fresh_stats () in
  let r3 =
    Explore.random ~execs:150_000 ~seed:1
      (Ws_client.make ~weak_fences:true ~tasks:2 ~thieves:1 ~steals:2 st3)
  in
  Format.printf "%a@.  %a@.@." Explore.pp_report r3 Ws_client.pp_stats st3;
  (match r3.Explore.violations with
  | { Explore.message; _ } :: _ ->
      Format.printf "first violation: %s@." message
  | [] -> Format.printf "no violation found — unexpected!@.");
  Format.printf
    "@.The double-take above is the store-buffering-shaped owner/thief race \
     that the SC fences forbid: with F_sc, the same %d-execution search \
     finds nothing.@."
    r3.Explore.executions
