lib/event/registry.mli: Graph
