lib/event/graph.ml: Buffer Compass_rmc Event Format Int List Lview Map Printf
