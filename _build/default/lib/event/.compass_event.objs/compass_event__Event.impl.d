lib/event/event.ml: Compass_rmc Format List Lview String Value View
