lib/event/event.mli: Compass_rmc Format Lview Value View
