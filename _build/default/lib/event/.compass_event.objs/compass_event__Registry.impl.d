lib/event/registry.ml: Graph Hashtbl Int List Printf
