lib/event/graph.mli: Event Format
