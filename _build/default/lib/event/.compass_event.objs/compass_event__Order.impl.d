lib/event/order.ml: Hashtbl Int List Map Set
