lib/event/order.mli:
