lib/event/compass_event.ml: Event Graph Order Registry
