(** Yacovet-style event graphs (paper, Section 3.1): events with physical
    and logical views, per-object graphs with the synchronised-with relation
    [so] and the derived local-happens-before [lhb], a global registry
    allocating event ids, and partial-order utilities used by the spec
    checkers. *)

module Event = Event
module Graph = Graph
module Registry = Registry
module Order = Order
