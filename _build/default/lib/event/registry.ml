(* The per-execution registry of library objects and their graphs.

   Event ids are allocated here, globally across all objects, so that
   logical views (id-sets) can mention events of several libraries at once —
   which is what lets a client combine, say, a stack's and an exchanger's
   orderings (Section 4). *)

type t = {
  mutable next_eid : int;
  mutable next_obj : int;
  graphs : (int, Graph.t) Hashtbl.t;
}

let create () = { next_eid = 0; next_obj = 0; graphs = Hashtbl.create 8 }

let new_graph t ~name =
  let obj = t.next_obj in
  t.next_obj <- obj + 1;
  let g = Graph.create ~obj ~name in
  Hashtbl.replace t.graphs obj g;
  g

(* Reserve a fresh event id.  Reservation is separate from commit: an
   operation reserves its id up front (so it can stash it in shared memory,
   e.g. a queue node's eid field) and the id enters the graph only at the
   commit instruction — the paper's "fresh e ∉ G" added at the commit
   point. *)
let reserve t =
  let e = t.next_eid in
  t.next_eid <- e + 1;
  e

let graph t obj =
  match Hashtbl.find_opt t.graphs obj with
  | Some g -> g
  | None -> invalid_arg (Printf.sprintf "Registry.graph: no object %d" obj)

let graphs t =
  Hashtbl.fold (fun _ g acc -> g :: acc) t.graphs []
  |> List.sort (fun a b -> Int.compare (Graph.obj a) (Graph.obj b))
