(* Finite partial-order utilities over integer-identified events.

   Used by the spec checkers: transitive closure of lhb ∪ so, acyclicity,
   and linear extensions (the paper's [to] total order, Section 3.3). *)

module Iset = Set.Make (Int)
module Imap = Map.Make (Int)

type rel = { nodes : int list; succs : Iset.t Imap.t }

let succs_of r n = match Imap.find_opt n r.succs with Some s -> s | None -> Iset.empty

let of_pairs ~nodes pairs =
  let node_set = Iset.of_list nodes in
  let succs =
    List.fold_left
      (fun m (a, b) ->
        if Iset.mem a node_set && Iset.mem b node_set then
          Imap.update a
            (function None -> Some (Iset.singleton b) | Some s -> Some (Iset.add b s))
            m
        else m)
      Imap.empty pairs
  in
  { nodes; succs }

let mem r a b = Iset.mem b (succs_of r a)
let pairs r = Imap.fold (fun a s acc -> Iset.fold (fun b acc -> (a, b) :: acc) s acc) r.succs []

(* Reachability by DFS; [closure] materialises it for repeated queries. *)
let reaches r a b =
  let visited = Hashtbl.create 16 in
  let rec go n =
    n = b
    || (not (Hashtbl.mem visited n))
       && begin
            Hashtbl.replace visited n ();
            Iset.exists go (succs_of r n)
          end
  in
  a <> b && Iset.exists go (succs_of r a)

let closure r =
  let memo : (int, Iset.t) Hashtbl.t = Hashtbl.create 16 in
  let rec reach n =
    match Hashtbl.find_opt memo n with
    | Some s -> s
    | None ->
        (* Mark before recursing so cycles terminate (they yield partial
           sets, which is fine for the acyclic graphs we feed in; [acyclic]
           is checked separately). *)
        Hashtbl.replace memo n Iset.empty;
        let s =
          Iset.fold
            (fun m acc -> Iset.union (Iset.add m (reach m)) acc)
            (succs_of r n) Iset.empty
        in
        Hashtbl.replace memo n s;
        s
  in
  List.iter (fun n -> ignore (reach n)) r.nodes;
  fun a b -> a <> b && Iset.mem b (reach a)

let acyclic r =
  (* Colours: 0 unvisited, 1 on stack, 2 done. *)
  let colour = Hashtbl.create 16 in
  let get n = match Hashtbl.find_opt colour n with Some c -> c | None -> 0 in
  let rec go n =
    match get n with
    | 1 -> false
    | 2 -> true
    | _ ->
        Hashtbl.replace colour n 1;
        let ok = Iset.for_all go (succs_of r n) in
        Hashtbl.replace colour n 2;
        ok
  in
  List.for_all go r.nodes

(* One topological sort (Kahn); [None] if cyclic. *)
let topo_sort r =
  let indeg = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace indeg n 0) r.nodes;
  Imap.iter
    (fun _ s ->
      Iset.iter
        (fun b ->
          match Hashtbl.find_opt indeg b with
          | Some d -> Hashtbl.replace indeg b (d + 1)
          | None -> ())
        s)
    r.succs;
  let ready =
    List.filter (fun n -> Hashtbl.find indeg n = 0) r.nodes |> ref
  in
  let out = ref [] in
  let count = ref 0 in
  while !ready <> [] do
    match !ready with
    | [] -> ()
    | n :: rest ->
        ready := rest;
        out := n :: !out;
        incr count;
        Iset.iter
          (fun b ->
            let d = Hashtbl.find indeg b - 1 in
            Hashtbl.replace indeg b d;
            if d = 0 then ready := b :: !ready)
          (succs_of r n)
  done;
  if !count = List.length r.nodes then Some (List.rev !out) else None

(* Is [order] (a list, earliest first) a linear extension of [r]? *)
let is_linear_extension r order =
  let pos = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace pos n i) order;
  List.length order = List.length r.nodes
  && List.for_all (fun n -> Hashtbl.mem pos n) r.nodes
  && Imap.for_all
       (fun a s ->
         Iset.for_all
           (fun b ->
             match (Hashtbl.find_opt pos a, Hashtbl.find_opt pos b) with
             | Some i, Some j -> i < j
             | _ -> false)
           s)
       r.succs

(* Restrict a pair list to a node predicate. *)
let restrict_pairs pairs p =
  List.filter (fun (a, b) -> p a && p b) pairs
