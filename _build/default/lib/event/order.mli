(** Finite partial-order utilities over integer-identified events, used by
    the spec checkers: transitive closure, acyclicity, and linear
    extensions (the paper's [to] total order, Section 3.3). *)

type rel

val of_pairs : nodes:int list -> (int * int) list -> rel
(** build a relation; pairs mentioning foreign nodes are dropped *)

val mem : rel -> int -> int -> bool
val pairs : rel -> (int * int) list

val reaches : rel -> int -> int -> bool
(** one-off reachability query (DFS) *)

val closure : rel -> int -> int -> bool
(** materialised transitive closure for repeated queries; irreflexive *)

val acyclic : rel -> bool

val topo_sort : rel -> int list option
(** one topological sort; [None] if cyclic *)

val is_linear_extension : rel -> int list -> bool
(** is the list (earliest first) a linear extension covering exactly the
    relation's nodes? *)

val restrict_pairs : (int * int) list -> (int -> bool) -> (int * int) list
