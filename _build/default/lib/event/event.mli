open Compass_rmc

(** Library events: the nodes of the paper's Yacovet-style event graphs
    (Figure 2).  Event ids are globally unique across all objects so that
    logical views can be plain id-sets. *)

type typ =
  | Enq of Value.t
  | Deq of Value.t
  | EmpDeq  (** failing (empty) dequeue *)
  | Push of Value.t
  | Pop of Value.t
  | EmpPop  (** failing (empty) pop *)
  | Exchange of Value.t * Value.t
      (** [Exchange (v1, v2)]: gave [v1], received [v2]; [v2 = Null] is
          the failed exchange (the paper's bottom) *)
  | Steal of Value.t
      (** work-stealing deque: a thief took [v] from the top (experiment
          E8, the paper's Section 6 future work) *)
  | EmpSteal  (** failing (empty) steal *)
  | Custom of string * Value.t list

val typ_equal : typ -> typ -> bool
val pp_typ : Format.formatter -> typ -> unit

type cix = int * int
(** Commit index: (machine step, sub-index within the step).  Two events
    sharing a step were committed by one atomic instruction — the
    exchanger's helper committing helpee-then-helper (Section 4.2), or the
    elimination stack's composed push/pop pair (Section 4.1). *)

val cix_compare : cix -> cix -> int
val pp_cix : Format.formatter -> cix -> unit

type data = {
  id : int;
  obj : int;  (** owning graph / library object *)
  typ : typ;
  tid : int;  (** the operation's calling thread *)
  view : View.t;  (** physical view at the commit point *)
  logview : Lview.t;  (** the paper's [G(e).logview]; contains [id] *)
  cix : cix;
}

val pp : Format.formatter -> data -> unit

val is_enq : data -> bool
val is_deq : data -> bool
val is_empdeq : data -> bool
val is_push : data -> bool
val is_pop : data -> bool
val is_emppop : data -> bool
val is_exchange : data -> bool
val is_steal : data -> bool
val is_empsteal : data -> bool
