open Compass_rmc

(* Library events — the nodes of the paper's Yacovet-style event graphs
   (Figure 2, bottom left).  Event ids are globally unique across all
   objects so that logical views can be plain id-sets. *)

type typ =
  | Enq of Value.t
  | Deq of Value.t
  | EmpDeq  (** failing (empty) dequeue *)
  | Push of Value.t
  | Pop of Value.t
  | EmpPop  (** failing (empty) pop *)
  | Exchange of Value.t * Value.t
      (** [Exchange (v1, v2)]: gave [v1], received [v2]; [v2 = Null] is the
          failed exchange (the paper's bottom). *)
  | Steal of Value.t
      (** work-stealing deque: a thief took [v] from the top (the paper's
          Section 6 future work, reproduced as experiment E8) *)
  | EmpSteal  (** failing (empty) steal *)
  | Custom of string * Value.t list

let typ_equal a b =
  match (a, b) with
  | Enq x, Enq y | Deq x, Deq y | Push x, Push y | Pop x, Pop y
  | Steal x, Steal y ->
      Value.equal x y
  | EmpDeq, EmpDeq | EmpPop, EmpPop | EmpSteal, EmpSteal -> true
  | Exchange (a1, a2), Exchange (b1, b2) -> Value.equal a1 b1 && Value.equal a2 b2
  | Custom (n, vs), Custom (m, ws) ->
      String.equal n m
      && List.length vs = List.length ws
      && List.for_all2 Value.equal vs ws
  | _ -> false

let pp_typ ppf = function
  | Enq v -> Format.fprintf ppf "Enq(%a)" Value.pp v
  | Deq v -> Format.fprintf ppf "Deq(%a)" Value.pp v
  | EmpDeq -> Format.pp_print_string ppf "Deq(eps)"
  | Push v -> Format.fprintf ppf "Push(%a)" Value.pp v
  | Pop v -> Format.fprintf ppf "Pop(%a)" Value.pp v
  | EmpPop -> Format.pp_print_string ppf "Pop(eps)"
  | Exchange (v1, v2) -> Format.fprintf ppf "Xchg(%a,%a)" Value.pp v1 Value.pp v2
  | Steal v -> Format.fprintf ppf "Steal(%a)" Value.pp v
  | EmpSteal -> Format.pp_print_string ppf "Steal(eps)"
  | Custom (n, vs) ->
      Format.fprintf ppf "%s(%a)" n
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Value.pp)
        vs

(* Commit index: (machine step, sub-index within the step).  Two events with
   the same step were committed in one atomic instruction — the exchanger's
   helper committing helpee-then-helper (Section 4.2), or the elimination
   stack's composed push/pop pair (Section 4.1). *)
type cix = int * int

let cix_compare (a : cix) (b : cix) = compare a b
let pp_cix ppf ((s, i) : cix) = Format.fprintf ppf "%d.%d" s i

type data = {
  id : int;
  obj : int;  (** owning graph / library object *)
  typ : typ;
  tid : int;  (** committing-on-behalf-of thread: the operation's caller *)
  view : View.t;  (** physical view at the commit point *)
  logview : Lview.t;  (** the paper's [G(e).logview]; includes [id] itself *)
  cix : cix;
}

let pp ppf e =
  Format.fprintf ppf "e%d:%a[T%d@@%a]" e.id pp_typ e.typ e.tid pp_cix e.cix

let is_enq e = match e.typ with Enq _ -> true | _ -> false
let is_deq e = match e.typ with Deq _ -> true | _ -> false
let is_empdeq e = match e.typ with EmpDeq -> true | _ -> false
let is_push e = match e.typ with Push _ -> true | _ -> false
let is_pop e = match e.typ with Pop _ -> true | _ -> false
let is_emppop e = match e.typ with EmpPop -> true | _ -> false
let is_exchange e = match e.typ with Exchange _ -> true | _ -> false
let is_steal e = match e.typ with Steal _ -> true | _ -> false
let is_empsteal e = match e.typ with EmpSteal -> true | _ -> false
