open Compass_event
open Compass_machine
open Compass_spec
open Compass_dstruct
open Prog.Syntax

(* The elimination-stack composition — Section 4's flagship verification,
   as an executable simulation check.

   The ES is simultaneously a *client* (of the base Treiber stack and the
   exchanger) and a *library* (a stack).  We run a contended workload on
   the ES and check, on every explored execution:

   - the ES's own graph satisfies StackConsistent (the library obligation);
   - the base stack's graph satisfies StackConsistent and the exchanger's
     graph satisfies ExchangerConsistent (the parts keep their specs —
     the composition adds no atomics and cannot break them);
   - the simulation relation: every base Push/Pop/EmpPop has an ES
     counterpart in the same commit step; every eliminated pair appears as
     an ES push+pop committed atomically together; nothing else is in the
     ES graph.

   Statistics count how many pops were served by elimination vs the base
   stack — the observable benefit of the elimination layer. *)

type stats = {
  mutable executions : int;
  mutable eliminated : int;  (** ES pairs created by exchanges *)
  mutable via_base : int;  (** ES events created at base-stack commits *)
}

let fresh_stats () = { executions = 0; eliminated = 0; via_base = 0 }
let ( &&& ) = Harness.( &&& )

(* Simulation check: partition ES events by commit step against the base
   and exchanger graphs. *)
let simulation_violations (t : Elimination.t) =
  let es_g = Elimination.graph t in
  let base_g = Treiber.graph t.Elimination.base in
  let ex_g = Exchanger.graph t.Elimination.ex in
  let step_of (e : Event.data) = fst e.Event.cix in
  let base_steps =
    List.map step_of (Graph.events base_g) |> List.sort_uniq compare
  in
  let ex_match_steps =
    Graph.so ex_g |> List.map (fun (a, _) -> step_of (Graph.find ex_g a))
    |> List.sort_uniq compare
  in
  List.filter_map
    (fun (e : Event.data) ->
      let s = step_of e in
      if List.mem s base_steps || List.mem s ex_match_steps then None
      else
        Some
          (Check.v "es-simulation"
             "ES event %a has no base-stack or exchange commit in its step"
             Event.pp e))
    (Graph.events es_g)
  @
  (* Every base event must be simulated: same number of ES events from
     base steps as base events. *)
  let es_from_base =
    List.filter
      (fun (e : Event.data) -> List.mem (step_of e) base_steps)
      (Graph.events es_g)
  in
  if List.length es_from_base <> Graph.size base_g then
    [
      Check.v "es-simulation" "%d base events but %d simulated ES events"
        (Graph.size base_g) (List.length es_from_base);
    ]
  else []

let make ?(style = Styles.Hb) ?(pushers = 1) ?(poppers = 2) ?(ops = 1)
    (st : stats) =
  Harness.scenario
    ~name:(Printf.sprintf "es-compose[%d push, %d pop]" pushers poppers)
    (fun m ->
      let t = Elimination.create m ~name:"es" in
      let push_thread tid =
        Prog.returning_unit
          (Prog.for_ 0 (ops - 1) (fun i ->
               Elimination.push t (Harness.val_of ~tid ~i)))
      in
      let pop_thread _ =
        Prog.returning_unit
          (Prog.for_ 0 (ops - 1) (fun _ ->
               let* _ = Elimination.pop t in
               Prog.return ()))
      in
      let threads =
        List.init pushers push_thread @ List.init poppers pop_thread
      in
      let judge vs =
        st.executions <- st.executions + 1;
        let es_g = Elimination.graph t in
        let ex_g = Exchanger.graph t.Elimination.ex in
        let base_g = Treiber.graph t.Elimination.base in
        st.eliminated <- st.eliminated + (List.length (Graph.so ex_g) / 2);
        st.via_base <- st.via_base + Graph.size base_g;
        (Harness.graph_judge style Styles.Stack es_g
        &&& Harness.graph_judge Styles.Hb Styles.Stack base_g
        &&& fun _ -> Harness.first_violation (Exchanger_spec.consistent ex_g))
          vs
        |> function
        | Explore.Pass -> Harness.first_violation (simulation_violations t)
        | v -> v
      in
      (threads, judge))


