open Compass_machine
open Compass_spec
open Compass_dstruct

(** The single-producer single-consumer client of Section 3.2: the
    producer enqueues [a_p[0..n)], the consumer dequeues [n] values
    (retrying on empty) into [a_c]; end-to-end FIFO means [a_c = a_p] —
    including race-freedom of the non-atomic array accesses, which
    exercises view transfer through the queue. *)

type stats = { mutable executions : int; mutable empties : int }

val fresh_stats : unit -> stats

val make :
  ?style:Styles.style ->
  ?n:int ->
  ?retries:int ->
  Iface.queue_factory ->
  stats ->
  Explore.scenario
