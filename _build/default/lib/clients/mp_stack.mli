open Compass_spec
open Compass_machine
open Compass_dstruct

(** Message passing through a stack: Figure 1's shape with STACK-EMPPOP
    in the role of QUEUE-EMPDEQ — the flag-synchronised thread's pop can
    never return empty. *)

type stats = {
  mutable executions : int;
  mutable right_got : int;
  mutable right_empty : int;
}

val fresh_stats : unit -> stats
val make : ?style:Styles.style -> Iface.stack_factory -> stats -> Explore.scenario
