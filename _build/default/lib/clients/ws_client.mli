open Compass_rmc
open Compass_spec
open Compass_machine

(** A work-stealing scheduler client for the Chase-Lev deque (experiment
    E8).  The owner pushes distinct tasks and drains; thieves steal.
    Checked per execution: conservation (no task lost or duplicated),
    WsDequeConsistent, and the requested spec style (LAThist by default).
    [weak_fences] runs the broken ablation in which the checker exhibits
    the double-take. *)

type stats = {
  mutable executions : int;
  mutable popped : int;
  mutable stolen : int;
  mutable empty_steals : int;
}

val fresh_stats : unit -> stats
val pp_stats : Format.formatter -> stats -> unit
val task : int -> Value.t

val make :
  ?weak_fences:bool ->
  ?tasks:int ->
  ?thieves:int ->
  ?steals:int ->
  ?style:Styles.style ->
  stats ->
  Explore.scenario
