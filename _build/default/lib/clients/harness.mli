open Compass_rmc
open Compass_event
open Compass_machine
open Compass_spec
open Compass_dstruct

(** Scenario-building helpers shared by all client verifications and
    experiments. *)

val vi : int -> Value.t

val scenario :
  name:string ->
  (Machine.t -> Value.t Prog.t list * (Value.t array -> Explore.verdict)) ->
  Explore.scenario
(** standard outcome plumbing: faults are violations, blocked/bounded
    executions are discarded, finished ones go to the judge *)

val first_violation : Check.violation list -> Explore.verdict

val ( &&& ) :
  (Value.t array -> Explore.verdict) ->
  (Value.t array -> Explore.verdict) ->
  Value.t array ->
  Explore.verdict
(** combine judges; first violation wins *)

val graph_judge :
  Styles.style -> Styles.kind -> Graph.t -> Value.t array -> Explore.verdict

val val_of : tid:int -> i:int -> Value.t
(** distinct per (thread, index) — required for unambiguous so matching *)

(** {1 Parametric workloads} *)

val queue_workload :
  ?style:Styles.style ->
  Iface.queue_factory ->
  enqers:int ->
  deqers:int ->
  ops:int ->
  unit ->
  Explore.scenario

val stack_workload :
  ?style:Styles.style ->
  Iface.stack_factory ->
  pushers:int ->
  poppers:int ->
  ops:int ->
  unit ->
  Explore.scenario

val stack_mixed :
  ?style:Styles.style ->
  Iface.stack_factory ->
  threads:int ->
  ops:int ->
  unit ->
  Explore.scenario
(** every thread pushes and pops alternately *)

val exchanger_workload :
  ?impl:(Machine.t -> name:string -> Iface.exchanger) ->
  threads:int ->
  unit ->
  Explore.scenario
(** checks ExchangerConsistent plus pairwise value swaps; [impl] defaults
    to the single-slot exchanger — pass the array to exercise
    Section 4.1's composite *)
