open Compass_rmc
open Compass_machine
open Compass_spec
open Compass_dstruct
open Prog.Syntax

(* A two-queue pipeline client — the "protocol governing multiple abstract
   states" of Section 2.2: an invariant R ties two queues together.

     source: enq(q1, v_i) for i < n
     stage:  v := deq(q1); enq(q2, f v)   (repeated)
     sink:   w := deq(q2)                 (repeated; retry on empty)

   Here R(vs1, vs2) says the pipeline preserves order and applies
   [f v = v + 100] exactly once: the sink must observe f(v_1), f(v_2), ...
   in order.  The two queues may be *different implementations* — the
   modularity the paper's LAT specs buy. *)

type stats = { mutable executions : int }

let fresh_stats () = { executions = 0 }
let ( &&& ) = Harness.( &&& )

let make ?(style = Styles.Hb) ?(n = 2) ?(retries = 24)
    (f1 : Iface.queue_factory) (f2 : Iface.queue_factory)
    (st : stats) =
  Harness.scenario
    ~name:(Printf.sprintf "pipeline[%s -> %s, n=%d]" f1.q_name f2.q_name n)
    (fun m ->
      let q1 = f1.make_queue m ~name:"q1" in
      let q2 = f2.make_queue m ~name:"q2" in
      let source =
        Prog.returning_unit
          (Prog.for_ 1 n (fun i -> q1.Iface.enq (Value.Int i)))
      in
      let deq_retry q what =
        Prog.with_fuel ~fuel:retries ~what (fun () ->
            let* v = q.Iface.deq () in
            if Value.equal v Value.Null then Prog.return None
            else Prog.return (Some v))
      in
      let stage =
        Prog.returning_unit
          (Prog.for_ 1 n (fun _ ->
               let* v = deq_retry q1 "pipeline-stage" in
               q2.Iface.enq (Value.Int (Value.to_int_exn v + 100))))
      in
      let sink =
        let* ws =
          Prog.map_list (fun _ -> deq_retry q2 "pipeline-sink")
            (List.init n (fun i -> i))
        in
        Prog.return
          (Value.Int
             (List.fold_left (fun acc v -> (acc * 1000) + Value.to_int_exn v) 0 ws))
      in
      let judge vs =
        st.executions <- st.executions + 1;
        let expected =
          List.fold_left (fun acc i -> (acc * 1000) + i + 100) 0
            (List.init n (fun i -> i + 1))
        in
        if not (Value.equal vs.(2) (Value.Int expected)) then
          Explore.Violation
            (Format.asprintf "pipeline order broken: sink got %a, expected %d"
               Value.pp vs.(2) expected)
        else
          (Harness.graph_judge style Styles.Queue q1.Iface.q_graph
          &&& Harness.graph_judge style Styles.Queue q2.Iface.q_graph)
            vs
      in
      ([ source; stage; sink ], judge))
