open Compass_event
open Compass_machine
open Compass_dstruct

(** Section 3.1's flexibility claim, executed: a client that runs every
    queue operation under a global lock regains the {e strong} FIFO
    condition ([(d', d) ∈ lhb]), a total lhb, and even the SC-strength
    empty condition — for any implementation, including the weak
    Herlihy-Wing queue.  {!make_control} is the negative control: on the
    bare queue the strong conditions fail. *)

type stats = { mutable executions : int }

val fresh_stats : unit -> stats
val lhb_total : Graph.t -> bool
val strong_fifo : Graph.t -> bool
val make : Iface.queue_factory -> stats -> Explore.scenario
val make_control : Iface.queue_factory -> int ref -> Explore.scenario
