open Compass_rmc
open Compass_event
open Compass_machine
open Compass_spec
open Compass_dstruct
open Prog.Syntax

(* Section 3.1's flexibility claim, executed:

   "if a client decides to use the queue in an SC fashion by adding
   sufficient external synchronisation, the client can know that lhb is
   total ... and regain the stronger FIFO condition with
   (d', d) ∈ G.lhb."

   Every queue operation runs under a global spinlock.  The judge then
   checks properties that are FALSE for the bare relaxed queue:

   - lhb restricted to the queue's events is total;
   - the *strong* FIFO condition: if e' -lhb-> e and d dequeues e, then
     e' was dequeued by a d' with (d', d) ∈ lhb (not merely committed
     earlier);
   - empty dequeues satisfy even the SC condition (truly empty abstract
     state), because the lock serialises everything.

   Works with any implementation — MS or the weak HW queue alike: the
   client's external synchronisation upgrades the guarantee, exactly the
   compositional story the paper tells. *)

type stats = { mutable executions : int }

let fresh_stats () = { executions = 0 }

let lhb_total g =
  let ids = List.map (fun (e : Event.data) -> e.Event.id) (Graph.events g) in
  List.for_all
    (fun a ->
      List.for_all
        (fun b ->
          a = b || Graph.lhb g ~before:a ~after:b || Graph.lhb g ~before:b ~after:a)
        ids)
    ids

let strong_fifo g =
  let so = Graph.so g in
  List.for_all
    (fun (e_id, d_id) ->
      let d = Graph.find g d_id in
      (not (Event.is_deq d))
      || List.for_all
           (fun (e' : Event.data) ->
             (not
                (e'.Event.id <> e_id
                && Graph.lhb g ~before:e'.Event.id ~after:e_id))
             || List.exists
                  (fun (f, t) ->
                    f = e'.Event.id && Graph.lhb g ~before:t ~after:d_id)
                  so)
           (List.filter Event.is_enq (Graph.events g)))
    so

let make (factory : Iface.queue_factory) (st : stats) =
  Harness.scenario
    ~name:(Printf.sprintf "strong-fifo[%s under lock]" factory.q_name)
    (fun m ->
      let q = factory.make_queue m ~name:"q" in
      let lock = Spinlock.create m ~name:"lock" in
      let locked p = Spinlock.with_lock lock p in
      let enq_thread tid =
        Prog.returning_unit
          (Prog.for_ 0 0 (fun i -> locked (q.Iface.enq (Harness.val_of ~tid ~i))))
      in
      let deq_thread _ =
        let* v = locked (q.Iface.deq ()) in
        let* w = locked (q.Iface.deq ()) in
        Prog.return
          (match (v, w) with
          | Value.Int a, Value.Int b -> Value.Int ((a * 1000) + b)
          | _ -> Value.Null)
      in
      let judge _vs =
        st.executions <- st.executions + 1;
        let g = q.Iface.q_graph in
        if not (lhb_total g) then
          Explore.Violation "lhb not total despite the lock"
        else if not (strong_fifo g) then
          Explore.Violation "strong FIFO not regained"
        else
          Harness.first_violation
            (Styles.check Styles.Sc_abs Styles.Queue g)
      in
      ([ enq_thread 0; enq_thread 1; deq_thread 0 ], judge))

(* Negative control: the same judge on the bare (unlocked) queue.  The
   scenario PASSES when the strong conditions fail somewhere — showing
   they are genuinely client-supplied, not implementation-given.  The
   counter records how many executions broke totality. *)
let make_control (factory : Iface.queue_factory) (broke : int ref) =
  Harness.scenario
    ~name:(Printf.sprintf "strong-fifo-control[%s bare]" factory.q_name)
    (fun m ->
      let q = factory.make_queue m ~name:"q" in
      let enq_thread tid =
        Prog.returning_unit
          (Prog.for_ 0 0 (fun i -> q.Iface.enq (Harness.val_of ~tid ~i)))
      in
      let deq_thread _ =
        let* _ = q.Iface.deq () in
        let* _ = q.Iface.deq () in
        Prog.return Value.Unit
      in
      let judge _vs =
        let g = q.Iface.q_graph in
        if not (lhb_total g) then incr broke;
        (* Consistency of the plain (weak) spec must of course hold. *)
        Harness.graph_judge Styles.Hb Styles.Queue g _vs
      in
      ([ enq_thread 0; enq_thread 1; deq_thread 0 ], judge))
