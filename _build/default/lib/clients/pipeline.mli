open Compass_machine
open Compass_spec
open Compass_dstruct

(** A two-queue pipeline client — the "protocol governing multiple
    abstract states" of Section 2.2: source -> q1 -> stage (applies
    [v + 100]) -> q2 -> sink; the sink must observe the transformed
    values in order.  The two queues may be different implementations —
    the modularity the LAT specs buy. *)

type stats = { mutable executions : int }

val fresh_stats : unit -> stats

val make :
  ?style:Styles.style ->
  ?n:int ->
  ?retries:int ->
  Iface.queue_factory ->
  Iface.queue_factory ->
  stats ->
  Explore.scenario
