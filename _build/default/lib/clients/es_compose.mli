open Compass_spec
open Compass_machine
open Compass_dstruct

(** The elimination-stack composition — Section 4's flagship verification
    as an executable simulation check: the ES graph satisfies
    StackConsistent, the parts keep their own specs, and every ES event
    shares its commit step with a base-stack commit or an exchange pair
    (and conversely every base event is simulated). *)

type stats = {
  mutable executions : int;
  mutable eliminated : int;  (** ES pairs created by exchanges *)
  mutable via_base : int;  (** ES events created at base-stack commits *)
}

val fresh_stats : unit -> stats

val simulation_violations : Elimination.t -> Check.violation list

val make :
  ?style:Styles.style ->
  ?pushers:int ->
  ?poppers:int ->
  ?ops:int ->
  stats ->
  Explore.scenario
