open Compass_rmc
open Compass_machine
open Compass_spec
open Compass_dstruct

(** The Message-Passing client of queues — the paper's Figure 1 and its
    verification, Figure 3.

    Checked on every execution: the flag-synchronised right thread's
    dequeue returns 41 or 42, never empty; the deqPerm(2) counting
    protocol ([|G.so| <= 2]); queue consistency.  The exclusion analysis
    additionally scores, per execution, whether a hypothetical empty
    dequeue would be ruled out under LAThb (always — via the transferred
    logical view [{e1, e2}]) versus Cosmo-style LATso (never — the thread
    has no so-chain to the enqueues), reproducing Section 1.1's point. *)

type stats = {
  mutable executions : int;
  mutable right_got_41 : int;
  mutable right_got_42 : int;
  mutable right_empty : int;  (** must stay 0 with a rel/acq flag *)
  mutable middle_empty : int;  (** fine: the middle thread may see empty *)
  mutable excluded_hb : int;
  mutable excluded_so : int;
}

val fresh_stats : unit -> stats
val pp_stats : Format.formatter -> stats -> unit

val excluded : m0_size:int -> other_deqs:int -> bool
(** the counting core of Figure 3's argument: the empty outcome is
    excluded iff more known enqueues than possible concurrent dequeues *)

val make :
  ?flag_write:Mode.access ->
  ?flag_read:Mode.access ->
  ?style:Styles.style ->
  Iface.queue_factory ->
  stats ->
  Explore.scenario

val make_weak : Iface.queue_factory -> stats -> Explore.scenario
(** the ablation: a relaxed flag transfers no views; the empty outcome
    becomes observable (counted as [right_empty], not a violation — the
    queue itself stays consistent) *)
