open Compass_rmc
open Compass_event
open Compass_machine
open Compass_spec
open Compass_dstruct
open Prog.Syntax

(* A work-stealing scheduler client for the Chase-Lev deque (experiment
   E8 — the paper's Section 6 future work).

   The owner pushes [tasks] distinct tasks interleaved with its own pops;
   [thieves] thieves steal.  Checked on every execution:

   - no task is lost or duplicated: the multiset of successful pops and
     steals is a sub(multi)set of the pushed tasks with no repeats, and
     tasks neither taken nor left in the deque do not exist (conservation);
   - WsDequeConsistent (including the steal-order and owner-LIFO
     conditions) on the event graph;
   - LAThist: a linearisation of the deque history exists.

   [weak_fences] runs the broken ablation: with acq-rel instead of SC
   fences, the owner-vs-thief race on the last element double-takes — the
   model checker exhibits `ws-uniq` violations, confirming that the
   checker (and the fence semantics) have teeth. *)

type stats = {
  mutable executions : int;
  mutable popped : int;
  mutable stolen : int;
  mutable empty_steals : int;
}

let fresh_stats () = { executions = 0; popped = 0; stolen = 0; empty_steals = 0 }

let pp_stats ppf s =
  Format.fprintf ppf "executions %d: %d popped, %d stolen, %d empty steals"
    s.executions s.popped s.stolen s.empty_steals

let task i = Value.Int (500 + i)

let make ?(weak_fences = false) ?(tasks = 2) ?(thieves = 1) ?(steals = 1)
    ?(style = Styles.Hist) (st : stats) =
  Harness.scenario
    ~name:
      (Printf.sprintf "work-stealing[%d tasks, %d thieves%s]" tasks thieves
         (if weak_fences then ", WEAK FENCES" else ""))
    (fun m ->
      let t = Chaselev.create ~weak_fences m ~name:"dq" in
      let owner =
        (* Push everything, then pop everything still there. *)
        let* () = Prog.for_ 0 (tasks - 1) (fun i -> Chaselev.push t (task i)) in
        let rec drain acc n =
          if n > tasks then Prog.return (Value.Int acc)
          else
            let* v = Chaselev.pop t in
            match v with
            | Value.Null -> Prog.return (Value.Int acc)
            | _ -> drain ((acc * 100) + Value.to_int_exn v - 400) (n + 1)
        in
        drain 0 0
      in
      let thief _ =
        let* r =
          Prog.fold_left
            (fun acc () ->
              let* v = Chaselev.steal t in
              match v with
              | Value.Null -> Prog.return acc
              | _ -> Prog.return ((acc * 100) + Value.to_int_exn v - 400))
            0
            (List.init steals (fun _ -> ()))
        in
        Prog.return (Value.Int r)
      in
      let judge _vs =
        st.executions <- st.executions + 1;
        let g = Chaselev.graph t in
        let events = Graph.events g in
        let pops = List.filter Event.is_pop events in
        let steals_ev = List.filter Event.is_steal events in
        st.popped <- st.popped + List.length pops;
        st.stolen <- st.stolen + List.length steals_ev;
        st.empty_steals <-
          st.empty_steals + List.length (List.filter Event.is_empsteal events);
        (* Conservation: every taken value is a pushed task, taken once. *)
        let taken =
          List.filter_map
            (fun (e : Event.data) ->
              match e.Event.typ with
              | Event.Pop v | Event.Steal v -> Some v
              | _ -> None)
            events
        in
        let distinct = List.sort_uniq Value.compare taken in
        if List.length distinct <> List.length taken then
          Explore.Violation "a task was taken twice"
        else if
          not
            (List.for_all
               (fun v ->
                 match v with
                 | Value.Int n -> n >= 500 && n < 500 + tasks
                 | _ -> false)
               taken)
        then Explore.Violation "a non-task value was taken"
        else Harness.graph_judge style Styles.Deque g _vs
      in
      (owner :: List.init thieves thief, judge))
