open Compass_rmc
open Compass_machine
open Compass_spec
open Compass_dstruct
open Prog.Syntax

let ( &&& ) = Harness.( &&& )

(* The single-producer single-consumer client of Section 3.2.

     producer(q, a_p, 0, n)  ||  consumer(q, a_c, 0, n)

   The producer reads the array [a_p] and enqueues its elements in index
   order; the consumer dequeues [n] elements (retrying on empty) and writes
   them to [a_c] in dequeue order.  The expected end-to-end property is
   FIFO: [a_c] ends up equal to [a_p].  The paper derives this from the
   LAThb specs by building the SPSC protocol; we check it directly on
   every explored execution — including that the consumer's non-atomic
   writes to [a_c] and the final (joined) read-back are race-free, which
   exercises the view machinery end to end. *)

type stats = { mutable executions : int; mutable empties : int }

let fresh_stats () = { executions = 0; empties = 0 }

let make ?(style = Styles.Hb) ?(n = 3) ?(retries = 16)
    (factory : Iface.queue_factory) (st : stats) =
  Harness.scenario
    ~name:(Printf.sprintf "spsc[%s, n=%d]" factory.q_name n)
    (fun m ->
      let q = factory.make_queue m ~name:"q" in
      let a_p = Machine.alloc m ~name:"a_p" n in
      let a_c = Machine.alloc m ~name:"a_c" ~init:(Value.Int 0) n in
      (* Fill the producer's array during setup. *)
      ignore
        (Machine.solo m
           (Prog.returning_unit
              (Prog.for_ 0 (n - 1) (fun i ->
                   Prog.store (Loc.shift a_p i) (Value.Int (i + 1)) Mode.Na))));
      let producer =
        Prog.returning_unit
          (Prog.for_ 0 (n - 1) (fun i ->
               let* v = Prog.load (Loc.shift a_p i) Mode.Na in
               q.Iface.enq v))
      in
      let consumer =
        Prog.returning_unit
          (Prog.for_ 0 (n - 1) (fun i ->
               let* v =
                 Prog.with_fuel ~fuel:retries ~what:"spsc-consume" (fun () ->
                     let* v = q.Iface.deq () in
                     if Value.equal v Value.Null then begin
                       st.empties <- st.empties + 1;
                       Prog.return None
                     end
                     else Prog.return (Some v))
               in
               Prog.store (Loc.shift a_c i) v Mode.Na))
      in
      let judge _vs =
        st.executions <- st.executions + 1;
        (* Join views and read back both arrays non-atomically. *)
        let read arr =
          Machine.solo m
            (let* xs =
               Prog.map_list (fun i -> Prog.load (Loc.shift arr i) Mode.Na)
                 (List.init n (fun i -> i))
             in
             Prog.return
               (Value.Int
                  (List.fold_left
                     (fun acc v -> (acc * 10) + Value.to_int_exn v)
                     0 xs)))
        in
        Machine.join_views m;
        let vp = read a_p and vc = read a_c in
        if Value.equal vp vc then
          (* The requested style, plus the *derived* SPSC spec of
             Section 3.2: strict FIFO and counted empty dequeues. *)
          (Harness.graph_judge style Styles.Queue q.Iface.q_graph
          &&& fun _ -> Harness.first_violation (Spsc_spec.consistent q.Iface.q_graph))
            _vs
        else
          Explore.Violation
            (Format.asprintf "FIFO broken: produced %a, consumed %a" Value.pp
               vp Value.pp vc)
      in
      ([ producer; consumer ], judge))
