open Compass_rmc
open Compass_machine

(** The resource-exchange client of Section 4.2: each thread offers a
    pointer to a privately, non-atomically initialised cell through the
    exchanger; a successful exchange lets it read the partner's cell
    non-atomically — race-free only because the exchanger's
    synchronisation transfers the owners' views (a resource transfer in
    the separation-logic sense, checked through the race detector).
    Conservation: swaps pair up exactly. *)

type stats = {
  mutable executions : int;
  mutable swaps : int;
  mutable fails : int;
}

val fresh_stats : unit -> stats
val payload : tid:int -> Value.t
val make : ?threads:int -> stats -> Explore.scenario
