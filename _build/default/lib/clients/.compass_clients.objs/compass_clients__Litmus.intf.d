lib/clients/litmus.mli: Compass_machine Compass_rmc Explore Machine Mode
