lib/clients/es_compose.ml: Check Compass_dstruct Compass_event Compass_machine Compass_spec Elimination Event Exchanger Exchanger_spec Explore Graph Harness List Printf Prog Styles Treiber
