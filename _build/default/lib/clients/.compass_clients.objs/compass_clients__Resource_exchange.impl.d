lib/clients/resource_exchange.ml: Array Compass_dstruct Compass_machine Compass_rmc Compass_spec Exchanger Exchanger_spec Explore Harness List Mode Printf Prog Value
