lib/clients/spsc_client.ml: Compass_dstruct Compass_machine Compass_rmc Compass_spec Explore Format Harness Iface List Loc Machine Mode Printf Prog Spsc_spec Styles Value
