lib/clients/mp.mli: Compass_dstruct Compass_machine Compass_rmc Compass_spec Explore Format Iface Mode Styles
