lib/clients/spsc_client.mli: Compass_dstruct Compass_machine Compass_spec Explore Iface Styles
