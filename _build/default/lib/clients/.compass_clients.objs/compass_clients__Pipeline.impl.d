lib/clients/pipeline.ml: Array Compass_dstruct Compass_machine Compass_rmc Compass_spec Explore Format Harness Iface List Printf Prog Styles Value
