lib/clients/harness.mli: Check Compass_dstruct Compass_event Compass_machine Compass_rmc Compass_spec Explore Graph Iface Machine Prog Styles Value
