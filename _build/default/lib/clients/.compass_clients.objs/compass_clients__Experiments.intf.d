lib/clients/experiments.mli: Compass_spec Format Styles
