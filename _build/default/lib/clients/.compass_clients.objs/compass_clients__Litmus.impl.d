lib/clients/litmus.ml: Compass_machine Compass_rmc Explore List Machine Memory Mode Msg Prog Value
