lib/clients/mp_stack.ml: Array Compass_dstruct Compass_event Compass_machine Compass_rmc Compass_spec Explore Graph Harness Iface List Machine Mode Printf Prog Styles Value
