lib/clients/ws_client.ml: Chaselev Compass_dstruct Compass_event Compass_machine Compass_rmc Compass_spec Event Explore Format Graph Harness List Printf Prog Styles Value
