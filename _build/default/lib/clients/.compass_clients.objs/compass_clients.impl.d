lib/clients/compass_clients.ml: Es_compose Experiments Harness Litmus Mp Mp_stack Pipeline Resource_exchange Spsc_client Strong_fifo Ws_client
