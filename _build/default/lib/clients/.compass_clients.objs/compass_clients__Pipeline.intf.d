lib/clients/pipeline.mli: Compass_dstruct Compass_machine Compass_spec Explore Iface Styles
