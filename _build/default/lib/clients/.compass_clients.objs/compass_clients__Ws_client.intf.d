lib/clients/ws_client.mli: Compass_machine Compass_rmc Compass_spec Explore Format Styles Value
