lib/clients/es_compose.mli: Check Compass_dstruct Compass_machine Compass_spec Elimination Explore Styles
