lib/clients/strong_fifo.mli: Compass_dstruct Compass_event Compass_machine Explore Graph Iface
