lib/clients/strong_fifo.ml: Compass_dstruct Compass_event Compass_machine Compass_rmc Compass_spec Event Explore Graph Harness Iface List Printf Prog Spinlock Styles Value
