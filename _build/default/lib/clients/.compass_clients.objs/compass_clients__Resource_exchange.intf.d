lib/clients/resource_exchange.mli: Compass_machine Compass_rmc Explore Value
