lib/clients/harness.ml: Array Check Compass_dstruct Compass_machine Compass_rmc Compass_spec Exchanger Exchanger_spec Explore Format Iface List Machine Printf Prog Styles Value
