open Compass_rmc
open Compass_machine
open Compass_spec
open Compass_dstruct
open Prog.Syntax

(* The resource-exchange client of Section 4.2: "each exchange call needs
   to provide the resources to be exchanged only at its commit point, and
   only if the exchange succeeds."

   Each thread owns a resource — a privately allocated cell holding a
   distinct payload, written *non-atomically*.  A thread offers the pointer
   to its cell through the exchanger; if the exchange succeeds it reads the
   partner's cell, again non-atomically.  That read is race-free only
   because the exchanger's specs transfer the owner's views across the
   match — a resource transfer in the separation-logic sense, exercised
   here through the race detector: any missing synchronisation in the
   exchanger implementation would surface as a data-race fault.

   Checked per execution: no faults, ExchangerConsistent, and conservation:
   the multiset of payloads read equals the multiset offered (each swap is
   a genuine two-way transfer). *)

type stats = { mutable executions : int; mutable swaps : int; mutable fails : int }

let fresh_stats () = { executions = 0; swaps = 0; fails = 0 }

let payload ~tid = Value.Int (1000 + tid)

let make ?(threads = 2) (st : stats) =
  Harness.scenario
    ~name:(Printf.sprintf "resource-exchange[%d]" threads)
    (fun m ->
      let x = Exchanger.create m ~name:"x" in
      let thread tid =
        (* Allocate and initialise the private resource. *)
        let* r = Prog.alloc ~name:(Printf.sprintf "res%d" tid) 1 in
        let* () = Prog.store r (payload ~tid) Mode.Na in
        let* got = Exchanger.exchange x (Value.Ptr r) in
        match got with
        | Value.Ptr r' ->
            (* Non-atomic read of the partner's resource: safe only thanks
               to the exchanger's internal synchronisation. *)
            Prog.load r' Mode.Na
        | _ -> Prog.return Value.Null
      in
      let judge vs =
        st.executions <- st.executions + 1;
        let got = Array.to_list vs in
        let succeeded = List.filter (fun v -> not (Value.equal v Value.Null)) got in
        st.swaps <- st.swaps + (List.length succeeded / 2);
        st.fails <- st.fails + (List.length got - List.length succeeded);
        match Harness.first_violation (Exchanger_spec.consistent (Exchanger.graph x)) with
        | Explore.Pass ->
            (* Conservation: successful receivers hold distinct payloads
               drawn from the offered set, and swaps pair up: if thread i
               got thread j's payload then j got i's. *)
            let owner = function
              | Value.Int p when p >= 1000 -> Some (p - 1000)
              | _ -> None
            in
            let ok = ref true in
            List.iteri
              (fun i v ->
                match owner v with
                | None -> ()
                | Some j ->
                    if j = i || j < 0 || j >= threads then ok := false
                    else if not (Value.equal vs.(j) (payload ~tid:i)) then
                      ok := false)
              got;
            if !ok then Explore.Pass
            else Explore.Violation "resource conservation broken"
        | v -> v
      in
      (List.init threads thread, judge))
