(* Execution traces, recorded only when requested (counterexample replay):
   one entry per machine step. *)

type entry = { step : int; tid : int; descr : string }

let pp_entry ppf e = Format.fprintf ppf "%4d  T%d  %s" e.step e.tid e.descr

let pp ppf entries =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_entry)
    entries
