open Compass_rmc

(** Memory-access events recorded for the axiomatic differential check
    ({!Rc11}): the machine logs one entry per instruction when the config
    asks for it. *)

type kind = Load | Store | Update

type t =
  | Access of {
      aid : int;  (** position in recording order; unique *)
      tid : int;
      loc : Loc.t;
      kind : kind;
      mode : Mode.access;
      read_ts : Timestamp.t option;  (** the message read (loads, updates) *)
      write_ts : Timestamp.t option;  (** the message written *)
    }
  | Fence of { aid : int; tid : int; fence : Mode.fence }

val aid : t -> int
val tid : t -> int
val pp : Format.formatter -> t -> unit
