open Compass_rmc
open Compass_event

(* Commit annotations.

   A memory operation annotated with a commit function is a (potential)
   commit point: when the machine executes the operation, it applies the
   function to the operation's result; the returned specs are performed in
   the *same atomic step* — events enter their graphs, so edges are added,
   the committing thread observes the new events, and the message written by
   the operation (if any) is patched to carry them.  This realises the
   paper's logically-atomic commit: the abstract update is fused with one
   physical instruction.

   A commit may target several graphs at once (the elimination stack adds
   events to its own graph at the base stack's / exchanger's commits —
   Section 4.1), and may commit several events in one step (the exchanger's
   helper committing helpee-then-helper — Section 4.2). *)

type ev_spec = {
  eid : int;  (** a previously {!Compass_event.Registry.reserve}d id *)
  typ : Event.typ;
  view : View.t option;
      (** physical view of the event; [None] = committing thread's current
          view.  Overridden for helped events, whose view is the helpee's. *)
  lview : Lview.t option;
      (** logical view; [None] = committing thread's current logical view
          plus the event itself. *)
  absorb : bool;
      (** add the event to the committing thread's logical view and to the
          logical view of the message this step wrote (so later readers of
          the commit write observe the event). *)
  tid : int option;
      (** the thread the event belongs to; [None] = the committing thread.
          Overridden for helped events, whose operation runs on the helpee's
          thread (Section 4.2). *)
}

type spec = { obj : int; events : ev_spec list; so : (int * int) list }

(* The operation result a commit function inspects: the value read (loads,
   RMWs) or written (stores), and whether an RMW succeeded. *)
type op_result = { value : Value.t; success : bool }

type fn = op_result -> spec list

let ev ?view ?lview ?(absorb = true) ?tid eid typ =
  { eid; typ; view; lview; absorb; tid }

(* Post-compose a commit function with extra specs derived from the base
   ones — how the elimination stack grafts its own events onto the base
   stack's and exchanger's commit points without new atomic instructions
   (Section 4.1). *)
let compose (f : fn) (extra : spec list -> spec list) : fn =
 fun r ->
  let base = f r in
  base @ extra base
let spec ?(so = []) ~obj events = { obj; events; so }

(* Common cases. *)

(* Commit a single event unconditionally. *)
let always ~obj ?(so = fun (_ : op_result) -> []) mk : fn =
 fun r -> [ spec ~obj [ ev (fst (mk r)) (snd (mk r)) ] ~so:(so r) ]

(* Commit only when an RMW succeeded. *)
let on_success ~obj ?(so = fun (_ : op_result) -> []) mk : fn =
 fun r -> if r.success then [ spec ~obj [ ev (fst (mk r)) (snd (mk r)) ] ~so:(so r) ] else []
