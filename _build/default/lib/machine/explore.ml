(* Exploration drivers: stateless model checking.

   Executions are replayed from decision scripts (arrays of oracle
   choices).  The DFS driver enumerates the decision tree exhaustively:
   after each run it inspects the logged (arity, choice) pairs, finds the
   deepest position with an untried alternative, and restarts with the
   bumped prefix.  The random driver samples seeded executions.  Where the
   paper *proves* a property of all executions, we *enumerate* them (up to
   the configured bounds) and check it on each. *)

type verdict =
  | Pass
  | Violation of string
  | Discard of string
      (** blocked / bounded / irrelevant execution: not counted as pass or
          fail (e.g. a spin loop ran out of fuel) *)

(* A scenario builds its memory, graphs, and threads on a fresh machine and
   returns the judge that decides the verdict of the finished execution.
   [build] runs once per execution; shared statistics live in closures
   created before the scenario. *)
type scenario = {
  name : string;
  build : Machine.t -> (Machine.outcome -> verdict);
}

type failure = { message : string; script : int array }

type report = {
  name : string;
  executions : int;
  passed : int;
  discarded : int;
  bounded : int;
  blocked : int;
  violations : failure list;  (** first few, oldest first *)
  complete : bool;  (** DFS exhausted the tree within the budget *)
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%s: %d executions (%s)@ passed %d, discarded %d (blocked %d, bounded %d), violations %d%a@]"
    r.name r.executions
    (if r.complete then "exhaustive" else "budget-limited")
    r.passed r.discarded r.blocked r.bounded (List.length r.violations)
    (fun ppf vs ->
      List.iteri
        (fun i (f : failure) ->
          if i < 3 then Format.fprintf ppf "@   - %s" f.message)
        vs)
    r.violations

let ok r = r.violations = []

let run_one ~config scenario script =
  let m = Machine.create ~config () in
  let judge = scenario.build m in
  let oracle = Oracle.script script in
  let outcome = Machine.run m oracle in
  let verdict = judge outcome in
  (m, oracle, outcome, verdict)

(* Re-run one script with tracing on, for counterexample display. *)
let replay ~config scenario script =
  let config = { config with Machine.record_trace = true } in
  let m, _, outcome, verdict = run_one ~config scenario script in
  (m, outcome, verdict)

type stats = {
  mutable execs : int;
  mutable passed : int;
  mutable discarded : int;
  mutable bounded : int;
  mutable blocked : int;
  mutable violations : failure list;  (** newest first *)
}

let fresh_stats () =
  { execs = 0; passed = 0; discarded = 0; bounded = 0; blocked = 0; violations = [] }

let account st (outcome : Machine.outcome) verdict script =
  st.execs <- st.execs + 1;
  (match outcome with
  | Machine.Bounded -> st.bounded <- st.bounded + 1
  | Machine.Blocked _ -> st.blocked <- st.blocked + 1
  | _ -> ());
  match verdict with
  | Pass -> st.passed <- st.passed + 1
  | Discard _ -> st.discarded <- st.discarded + 1
  | Violation message ->
      if List.length st.violations < 16 then
        st.violations <- { message; script } :: st.violations

let to_report ~name ~complete st =
  {
    name;
    executions = st.execs;
    passed = st.passed;
    discarded = st.discarded;
    bounded = st.bounded;
    blocked = st.blocked;
    violations = List.rev st.violations;
    complete;
  }

(* Exhaustive DFS over the decision tree, up to [max_execs] executions. *)
let dfs ?(max_execs = 100_000) ?(config = Machine.default_config) scenario =
  let st = fresh_stats () in
  let script = ref [||] in
  let exhausted = ref false in
  (try
     while (not !exhausted) && st.execs < max_execs do
       let _, oracle, outcome, verdict = run_one ~config scenario !script in
       let ds = Array.of_list (Oracle.decisions oracle) in
       account st outcome verdict ds;
       let ars = Array.of_list (Oracle.arities oracle) in
       (* Deepest decision with an untried alternative. *)
       let rec find i =
         if i < 0 then None
         else if ds.(i) + 1 < ars.(i) then Some i
         else find (i - 1)
       in
       match find (Array.length ds - 1) with
       | None -> exhausted := true
       | Some i ->
           script := Array.append (Array.sub ds 0 i) [| ds.(i) + 1 |]
     done
   with e ->
     raise e);
  to_report ~name:scenario.name ~complete:!exhausted st

(* Random sampling: [execs] seeded executions. *)
let random ?(execs = 1_000) ?(seed = 0) ?(config = Machine.default_config)
    scenario =
  let st = fresh_stats () in
  for i = 0 to execs - 1 do
    let m = Machine.create ~config () in
    let judge = scenario.build m in
    let oracle = Oracle.random ~seed:(seed + i) in
    let outcome = Machine.run m oracle in
    let verdict = judge outcome in
    account st outcome verdict (Array.of_list (Oracle.decisions oracle))
  done;
  to_report ~name:scenario.name ~complete:false st

type mode = Dfs of { max_execs : int } | Random of { execs : int; seed : int }

let run ?(config = Machine.default_config) ~mode scenario =
  match mode with
  | Dfs { max_execs } -> dfs ~max_execs ~config scenario
  | Random { execs; seed } -> random ~execs ~seed ~config scenario
