lib/machine/prog.ml: Commit Compass_rmc Loc Lview Mode Value View
