lib/machine/explore.mli: Format Machine Oracle
