lib/machine/machine.mli: Access Compass_event Compass_rmc Format Graph Loc Memory Oracle Prog Registry Trace Tview Value
