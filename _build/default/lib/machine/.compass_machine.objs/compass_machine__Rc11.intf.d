lib/machine/rc11.mli: Access
