lib/machine/commit.ml: Compass_event Compass_rmc Event Lview Value View
