lib/machine/trace.mli: Format
