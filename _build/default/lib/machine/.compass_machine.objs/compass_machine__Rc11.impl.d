lib/machine/rc11.ml: Access Array Compass_event Compass_rmc Format Hashtbl List Loc Mode Option Order Printf Timestamp
