lib/machine/commit.mli: Compass_event Compass_rmc Event Lview Value View
