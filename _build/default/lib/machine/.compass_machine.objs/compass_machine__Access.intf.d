lib/machine/access.mli: Compass_rmc Format Loc Mode Timestamp
