lib/machine/access.ml: Compass_rmc Format Loc Mode Timestamp
