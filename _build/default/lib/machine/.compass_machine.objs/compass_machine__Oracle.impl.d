lib/machine/oracle.ml: Array List Printf Random
