lib/machine/prog.mli: Commit Compass_rmc Loc Lview Mode Value View
