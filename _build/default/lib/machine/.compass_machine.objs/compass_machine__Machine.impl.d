lib/machine/machine.ml: Access Array Commit Compass_event Compass_rmc Event Format Graph History List Loc Lview Memory Mode Msg Option Oracle Prog Registry Timestamp Trace Tview Value View
