lib/machine/compass_machine.ml: Access Commit Explore Machine Oracle Prog Rc11 Trace
