lib/machine/oracle.mli:
