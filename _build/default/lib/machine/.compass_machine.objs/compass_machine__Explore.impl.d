lib/machine/explore.ml: Array Format List Machine Oracle
