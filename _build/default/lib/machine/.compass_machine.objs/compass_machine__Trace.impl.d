lib/machine/trace.ml: Format
