(** Exploration drivers: stateless model checking.

    Executions replay from decision scripts.  The DFS driver enumerates
    the decision tree exhaustively: after each run it takes the logged
    (arity, choice) pairs, finds the deepest position with an untried
    alternative, and restarts with the bumped prefix.  The random driver
    samples seeded executions.  Where the paper {e proves} a property of
    all executions, we {e enumerate} them (up to the configured bounds)
    and check it on each. *)

type verdict =
  | Pass
  | Violation of string
  | Discard of string
      (** blocked / bounded / irrelevant execution — counted separately *)

type scenario = {
  name : string;
  build : Machine.t -> (Machine.outcome -> verdict);
      (** runs once per execution on a fresh machine: allocate, spawn
          threads, return the judge.  Shared statistics live in closures
          created before the scenario. *)
}

type failure = { message : string; script : int array }

type report = {
  name : string;
  executions : int;
  passed : int;
  discarded : int;
  bounded : int;
  blocked : int;
  violations : failure list;  (** first few, oldest first *)
  complete : bool;  (** DFS exhausted the tree within the budget *)
}

val pp_report : Format.formatter -> report -> unit

val ok : report -> bool
(** no violations *)

val run_one :
  config:Machine.config ->
  scenario ->
  int array ->
  Machine.t * Oracle.t * Machine.outcome * verdict
(** one execution from a decision script (exposed for replay tooling) *)

val replay :
  config:Machine.config ->
  scenario ->
  int array ->
  Machine.t * Machine.outcome * verdict
(** re-run one script with tracing on, for counterexample display *)

val dfs : ?max_execs:int -> ?config:Machine.config -> scenario -> report
val random : ?execs:int -> ?seed:int -> ?config:Machine.config -> scenario -> report

type mode = Dfs of { max_execs : int } | Random of { execs : int; seed : int }

val run : ?config:Machine.config -> mode:mode -> scenario -> report
