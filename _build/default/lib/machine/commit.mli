open Compass_rmc
open Compass_event

(** Commit annotations: logically atomic commit points, operationally.

    A memory operation annotated with a commit function is a (potential)
    commit point: the machine applies the function to the operation's
    result and performs the returned specs in the {e same atomic step} —
    events enter their graphs, so edges are added, the committing thread
    observes the new events, and the message written by the operation (if
    any) is patched to carry them.  This fuses the abstract update with
    one physical instruction, which is what the paper's logically atomic
    triples assert.

    A commit may target several graphs at once (the elimination stack
    grafts its events onto the base stack's and exchanger's commits —
    Section 4.1) and may commit several events in one step (the
    exchanger's helper committing helpee-then-helper — Section 4.2). *)

type ev_spec = {
  eid : int;  (** a previously {!Compass_event.Registry.reserve}d id *)
  typ : Event.typ;
  view : View.t option;
      (** physical view override; [None] = the committing thread's current
          view.  Used for helped events, whose view is the helpee's. *)
  lview : Lview.t option;
      (** logical view override; [None] = the committing thread's current
          logical view plus the event itself *)
  absorb : bool;
      (** add the event to the committing thread's logical view and to the
          logical view of the message this step wrote *)
  tid : int option;
      (** owning thread override; [None] = the committing thread.  Used
          for helped events (the helpee's operation runs elsewhere). *)
}

type spec = { obj : int; events : ev_spec list; so : (int * int) list }

type op_result = { value : Value.t; success : bool }
(** what the commit function inspects: the value read (loads, RMWs) or
    written (stores), and whether an RMW succeeded *)

type fn = op_result -> spec list
(** the empty list means "no commit at this instruction" (e.g. a failed
    CAS, or a non-null read on an empty-case commit point) *)

val ev :
  ?view:View.t ->
  ?lview:Lview.t ->
  ?absorb:bool ->
  ?tid:int ->
  int ->
  Event.typ ->
  ev_spec
(** [absorb] defaults to [true] *)

val spec : ?so:(int * int) list -> obj:int -> ev_spec list -> spec

val always :
  obj:int ->
  ?so:(op_result -> (int * int) list) ->
  (op_result -> int * Event.typ) ->
  fn
(** commit a single event unconditionally *)

val on_success :
  obj:int ->
  ?so:(op_result -> (int * int) list) ->
  (op_result -> int * Event.typ) ->
  fn
(** commit only when the RMW succeeded *)

val compose : fn -> (spec list -> spec list) -> fn
(** [compose f extra] post-composes [f] with extra specs derived from its
    output — the elimination stack's grafting hook *)
