(** Execution traces (recorded only when the machine config asks for
    them): one entry per machine step, for counterexample display. *)

type entry = { step : int; tid : int; descr : string }

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> entry list -> unit
