(** An independent RC11-style axiomatic checker for differential
    validation of the operational semantics.

    From the machine's recorded accesses it rebuilds po, rf, mo, fr,
    sw (release/acquire with release sequences, fence-based
    synchronisation, SC-fence total order) and hb, and checks:
    coherence (per-location [hb|loc ∪ rf ∪ mo ∪ fr] acyclicity), RMW
    atomicity, [po ∪ rf] acyclicity (ORC11's defining restriction), and
    hb-ordering of non-atomic conflicts.  A violation means the
    view-based machine and the declarative model disagree. *)

val check : Access.t list -> string list
(** axiom violations of one recorded execution; [[]] = consistent *)
