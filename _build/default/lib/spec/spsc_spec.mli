open Compass_event

(** The derived SPSC specs of Section 3.2: under a single-producer
    single-consumer protocol the weak QUEUE-FIFO strengthens to strict
    position-by-position FIFO, and the empty-dequeue condition to a plain
    count.  A violation here (on an SPSC execution that passes
    QueueConsistent) would refute the paper's derivation, not just the
    implementation. *)

val check_discipline : Graph.t -> Check.violation list
(** one producer thread, one distinct consumer thread *)

val check_strict_fifo : Graph.t -> Check.violation list
(** the k-th successful dequeue takes the k-th enqueue *)

val check_empdeq : Graph.t -> Check.violation list

val consistent : Graph.t -> Check.violation list
(** QueueConsistent plus the derived SPSC conditions *)
