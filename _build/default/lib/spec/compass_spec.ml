(** The COMPASS specification framework, operationalised: consistency
    conditions for queues ({!Queue_spec}), stacks ({!Stack_spec}) and
    exchangers ({!Exchanger_spec}); linearisable histories ({!Linearize},
    the LAThist style of Section 3.3); and the spec-style hierarchy
    ({!Styles}) tying them together. *)

module Check = Check
module Queue_spec = Queue_spec
module Stack_spec = Stack_spec
module Exchanger_spec = Exchanger_spec
module Ws_spec = Ws_spec
module Spsc_spec = Spsc_spec
module Linearize = Linearize
module Styles = Styles
