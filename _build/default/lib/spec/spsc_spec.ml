open Compass_event

(* The derived SPSC specs of Section 3.2.

   "We use the LAThb specs for queues to derive the *stronger*
   LAThb-style specs for SPSC queues, simply by building a concurrent
   SPSC client protocol.  In this derivation, thanks to logical
   atomicity, at every commit point of a successful dequeue we can easily
   match it up with the right enqueue and thus prove FIFO."

   Under the SPSC protocol — one enqueuing thread, one dequeuing thread —
   the partial orders collapse: enqueues are totally ordered by the
   producer's program order, dequeues by the consumer's, and the weak
   QUEUE-FIFO condition strengthens to *strict* FIFO: the k-th successful
   dequeue takes the k-th enqueue.  This module checks that derived spec
   on an execution's graph:

   - SPSC-DISCIPLINE: all enqueues share one thread, all dequeues
     (including empty ones) another;
   - SPSC-FIFO: matching in so is exactly position-by-position;
   - SPSC-EMPDEQ: an empty dequeue is justified only if every enqueue the
     consumer had observed was already consumed — with a single consumer
     this strengthens to: the number of successful dequeues before it
     covers every observed enqueue.

   Together with QueueConsistent (which the base checkers provide), a
   violation here means the *derivation* is wrong, not just the queue. *)

let check_discipline g =
  let acc = ref [] in
  let enq_tids =
    List.filter Event.is_enq (Graph.events g)
    |> List.map (fun (e : Event.data) -> e.Event.tid)
    |> List.sort_uniq compare
  in
  let deq_tids =
    List.filter (fun e -> Event.is_deq e || Event.is_empdeq e) (Graph.events g)
    |> List.map (fun (e : Event.data) -> e.Event.tid)
    |> List.sort_uniq compare
  in
  if List.length enq_tids > 1 then
    acc :=
      Check.v "spsc-discipline" "%d producer threads" (List.length enq_tids)
      :: !acc;
  if List.length deq_tids > 1 then
    acc :=
      Check.v "spsc-discipline" "%d consumer threads" (List.length deq_tids)
      :: !acc;
  (match (enq_tids, deq_tids) with
  | [ p ], [ c ] when p = c ->
      acc := Check.v "spsc-discipline" "producer = consumer" :: !acc
  | _ -> ());
  !acc

(* Strict FIFO: the k-th successful dequeue (in the consumer's program
   order = commit order, single consumer) matches the k-th enqueue (in the
   producer's program order = commit order). *)
let check_strict_fifo g =
  let enqs =
    Graph.events_by_cix g |> List.filter Event.is_enq
    |> List.map (fun (e : Event.data) -> e.Event.id)
  in
  let deqs =
    Graph.events_by_cix g |> List.filter Event.is_deq
    |> List.map (fun (d : Event.data) -> d.Event.id)
  in
  let rec go k es ds acc =
    match (es, ds) with
    | _, [] -> acc
    | [], d :: _ ->
        Check.v "spsc-fifo" "dequeue e%d has no matching enqueue (position %d)"
          d k
        :: acc
    | e :: es', d :: ds' ->
        let acc =
          if Graph.so_mem g (e, d) then acc
          else
            Check.v "spsc-fifo"
              "position %d: dequeue e%d does not take enqueue e%d" k d e
            :: acc
        in
        go (k + 1) es' ds' acc
  in
  go 0 enqs deqs []

(* Single-consumer empty dequeues: at an empty dequeue, every enqueue in
   its logical view must be covered by the successful dequeues committed
   before it — and since the consumer is the only dequeuer and dequeues
   strictly FIFO, "covered" is a plain count. *)
let check_empdeq g =
  let deqs_before (d : Event.data) =
    Graph.events_by_cix g
    |> List.filter (fun (x : Event.data) ->
           Event.is_deq x && Event.cix_compare x.Event.cix d.Event.cix < 0)
    |> List.length
  in
  List.fold_left
    (fun acc (d : Event.data) ->
      let observed_enqs =
        List.filter
          (fun (e : Event.data) -> Graph.lhb g ~before:e.Event.id ~after:d.Event.id)
          (List.filter Event.is_enq (Graph.events g))
        |> List.length
      in
      let consumed = deqs_before d in
      Check.ensure acc "spsc-empdeq"
        (consumed >= observed_enqs)
        (fun () ->
          Format.asprintf
            "empty dequeue %a: %d enqueues observed but only %d consumed"
            Event.pp d observed_enqs consumed))
    []
    (List.filter Event.is_empdeq (Graph.events g))

let consistent g =
  Queue_spec.consistent g @ check_discipline g @ check_strict_fifo g
  @ check_empdeq g
