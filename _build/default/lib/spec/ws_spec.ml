open Compass_rmc
open Compass_event

(* WsDequeConsistent — consistency conditions for single-owner
   work-stealing deques, in the same Yacovet/Compass style as
   QueueConsistent and StackConsistent.  Work-stealing queues are the
   paper's named future work (Section 6, citing Chase-Lev and Le et al.);
   experiment E8 applies the framework to them.

   Events: the owner's [Push v] / [Pop v] / [EmpPop] and the thieves'
   [Steal v] / [EmpSteal].  Conditions:

   - WS-MATCHES / WS-UNIQ:  so matches each push to at most one taker
     (owner pop or steal), values agree, every successful taker takes
     exactly one push;
   - WS-OWNER:   pushes, pops and empty-pops all come from one thread (the
     owner) — deque discipline;
   - WS-STEAL-ORDER:  steals take pushes in push order: the top index only
     grows, so among stolen elements the steal commit order agrees with
     the (owner-sequential, hence total) push order;
   - WS-OWNER-LIFO:  the owner pops the *newest* untaken push it can see:
     if pop d takes e and e -lhb-> e' -lhb-> d for a push e', then e' was
     already taken when d committed;
   - WS-EMPTY:   an empty pop/steal is justified only if every push that
     happens before it was already taken (the EMPDEQ analogue). *)

let pushes g = List.filter Event.is_push (Graph.events g)
let takers g = List.filter (fun e -> Event.is_pop e || Event.is_steal e) (Graph.events g)

let empties g =
  List.filter (fun e -> Event.is_emppop e || Event.is_empsteal e) (Graph.events g)

let before (a : Event.data) (b : Event.data) = Event.cix_compare a.cix b.cix < 0

let taker_value (e : Event.data) =
  match e.Event.typ with
  | Event.Pop v | Event.Steal v -> Some v
  | _ -> None

let check_matches g =
  List.fold_left
    (fun acc (e_id, d_id) ->
      let e = Graph.find g e_id and d = Graph.find g d_id in
      match (e.Event.typ, taker_value d) with
      | Event.Push v, Some w when Value.equal v w -> acc
      | _ ->
          Check.v "ws-matches" "so pair (%a, %a) mismatched" Event.pp e
            Event.pp d
          :: acc)
    [] (Graph.so g)

let check_uniq g =
  let acc = ref [] in
  List.iter
    (fun (e : Event.data) ->
      let outs = Graph.so_out g e.id in
      if List.length outs > 1 then
        acc :=
          Check.v "ws-uniq" "push %a taken %d times" Event.pp e
            (List.length outs)
          :: !acc)
    (pushes g);
  List.iter
    (fun (d : Event.data) ->
      match Graph.so_in g d.id with
      | [ e_id ] when Event.is_push (Graph.find g e_id) -> ()
      | ins ->
          acc :=
            Check.v "ws-uniq" "taker %a matched %d times (need exactly 1 push)"
              Event.pp d (List.length ins)
            :: !acc)
    (takers g);
  List.iter
    (fun (d : Event.data) ->
      if Graph.so_in g d.id <> [] || Graph.so_out g d.id <> [] then
        acc := Check.v "ws-uniq" "empty op %a has so edges" Event.pp d :: !acc)
    (empties g);
  !acc

let check_so_lhb g =
  List.fold_left
    (fun acc (e_id, d_id) ->
      let e = Graph.find g e_id and d = Graph.find g d_id in
      let acc =
        Check.ensure acc "ws-so-lhb"
          (Graph.lhb g ~before:e_id ~after:d_id)
          (fun () ->
            Format.asprintf "(%a, %a) in so but not lhb" Event.pp e Event.pp d)
      in
      Check.ensure acc "ws-so-cix" (before e d) (fun () ->
          Format.asprintf "so pair (%a, %a) violates commit order" Event.pp e
            Event.pp d))
    [] (Graph.so g)

let check_owner g =
  let owner_events =
    List.filter
      (fun (e : Event.data) ->
        Event.is_push e || Event.is_pop e || Event.is_emppop e)
      (Graph.events g)
  in
  match owner_events with
  | [] -> []
  | first :: _ ->
      List.filter_map
        (fun (e : Event.data) ->
          if e.Event.tid <> first.Event.tid then
            Some
              (Check.v "ws-owner" "%a is an owner operation on thread %d (owner is %d)"
                 Event.pp e e.Event.tid first.Event.tid)
          else None)
        owner_events

(* Steals take pushes in push order. *)
let check_steal_order g =
  let steal_pairs =
    List.filter_map
      (fun (e_id, d_id) ->
        let d = Graph.find g d_id in
        if Event.is_steal d then Some (Graph.find g e_id, d) else None)
      (Graph.so g)
  in
  List.fold_left
    (fun acc (e1, s1) ->
      List.fold_left
        (fun acc (e2, s2) ->
          if before s1 s2 && not (before e1 e2) && e1.Event.id <> e2.Event.id
          then
            Check.v "ws-steal-order"
              "steal %a (of %a) before steal %a (of %a) against push order"
              Event.pp s1 Event.pp e1 Event.pp s2 Event.pp e2
            :: acc
          else acc)
        acc steal_pairs)
    [] steal_pairs

(* The owner pops the newest untaken push visible to it. *)
let check_owner_lifo g =
  let so = Graph.so g in
  List.fold_left
    (fun acc (e_id, d_id) ->
      let d = Graph.find g d_id in
      if not (Event.is_pop d) then acc
      else
        let e = Graph.find g e_id in
        List.fold_left
          (fun acc (e' : Event.data) ->
            if
              e'.id <> e_id
              && Graph.lhb g ~before:e_id ~after:e'.id
              && Graph.lhb g ~before:e'.id ~after:d_id
            then
              let taken_before =
                List.exists
                  (fun (f, t) -> f = e'.id && before (Graph.find g t) d)
                  so
              in
              Check.ensure acc "ws-owner-lifo" taken_before (fun () ->
                  Format.asprintf
                    "%a pushed after %a and visible to pop %a, yet untaken"
                    Event.pp e' Event.pp e Event.pp d)
            else acc)
          acc (pushes g))
    [] so

(* WS-EMPTY is deliberately weaker than the queue's EMPDEQ: the justifying
   take need NOT have committed before the empty operation.  The owner's
   bottom decrement *reserves* the element before its pop commits, so a
   thief that synchronises mid-pop (through the SC fences) correctly
   observes emptiness while the push is, at that instant, still untaken —
   the pop commits moments later, and LAThist reorders the empty steal
   after it.  Requiring commit-order-prior justification (as for queues)
   is refuted by the model checker; this is a concrete instance of the
   per-library tailoring of consistency conditions that Yacovet/Compass
   is designed for.  A push that happens before the empty op and is NEVER
   taken remains a violation. *)
let check_empty g =
  let so = Graph.so g in
  List.fold_left
    (fun acc (d : Event.data) ->
      List.fold_left
        (fun acc (e : Event.data) ->
          if Graph.lhb g ~before:e.id ~after:d.id then
            let taken = List.exists (fun (f, _) -> f = e.id) so in
            Check.ensure acc "ws-empty" taken (fun () ->
                Format.asprintf
                  "empty op %a although push %a happens-before it and is \
                   never taken"
                  Event.pp d Event.pp e)
          else acc)
        acc (pushes g))
    [] (empties g)

let check_lhb_order g =
  let acc = ref [] in
  List.iter
    (fun (e : Event.data) ->
      Lview.iter
        (fun d_id ->
          if d_id <> e.id then
            match Graph.find_opt g d_id with
            | Some d ->
                if fst d.Event.cix > fst e.Event.cix then
                  acc :=
                    Check.v "lhb-cix" "%a observes %a which commits later"
                      Event.pp e Event.pp d
                    :: !acc
            | None -> ())
        e.logview)
    (Graph.events g)
  |> fun () -> !acc

let consistent g =
  check_matches g @ check_uniq g @ check_so_lhb g @ check_owner g
  @ check_steal_order g @ check_owner_lifo g @ check_empty g
  @ check_lhb_order g

(* Commit-order abstract-state replay (LATabs analogue): the deque as a
   sequence, owner at the back, thieves at the front. *)
let abstract_state ?(require_empty = false) g =
  let events = Graph.events_by_cix g in
  let mate d_id = match Graph.so_in g d_id with [ e ] -> Some e | _ -> None in

  let rec go vs acc = function
    | [] -> List.rev acc
    | (e : Event.data) :: rest -> (
        match e.typ with
        | Event.Push v -> go (vs @ [ (v, e.id) ]) acc rest
        | Event.Pop v -> (
            match List.rev vs with
            | (w, ins) :: front_rev
              when Value.equal v w && mate e.id = Some ins ->
                go (List.rev front_rev) acc rest
            | _ ->
                go vs
                  (Check.v "latabs-ws-pop"
                     "pop %a does not take the abstract back" Event.pp e
                  :: acc)
                  rest)
        | Event.Steal v -> (
            match vs with
            | (w, ins) :: vs' when Value.equal v w && mate e.id = Some ins ->
                go vs' acc rest
            | _ ->
                go vs
                  (Check.v "latabs-ws-steal"
                     "steal %a does not take the abstract front" Event.pp e
                  :: acc)
                  rest)
        | Event.EmpPop | Event.EmpSteal ->
            let acc =
              if require_empty && vs <> [] then
                Check.v "latabs-empty"
                  "empty op %a commits while the abstract deque holds %d \
                   elements"
                  Event.pp e (List.length vs)
                :: acc
              else acc
            in
            go vs acc rest
        | _ -> go vs acc rest)
  in
  go [] [] events
