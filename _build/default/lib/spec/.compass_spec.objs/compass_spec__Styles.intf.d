lib/spec/styles.mli: Check Compass_event Format Graph Linearize
