lib/spec/spsc_spec.ml: Check Compass_event Event Format Graph List Queue_spec
