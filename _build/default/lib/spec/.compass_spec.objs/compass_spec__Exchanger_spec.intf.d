lib/spec/exchanger_spec.mli: Check Compass_event Graph
