lib/spec/stack_spec.mli: Check Compass_event Graph
