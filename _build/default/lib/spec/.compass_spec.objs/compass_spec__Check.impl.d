lib/spec/check.ml: Format
