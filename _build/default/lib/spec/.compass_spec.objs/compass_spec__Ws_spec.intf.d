lib/spec/ws_spec.mli: Check Compass_event Graph
