lib/spec/queue_spec.mli: Check Compass_event Graph
