lib/spec/spsc_spec.mli: Check Compass_event Graph
