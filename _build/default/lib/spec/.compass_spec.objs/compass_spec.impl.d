lib/spec/compass_spec.ml: Check Exchanger_spec Linearize Queue_spec Spsc_spec Stack_spec Styles Ws_spec
