lib/spec/linearize.ml: Compass_event Compass_rmc Event Graph Hashtbl Int List Order Set
