lib/spec/linearize.mli: Compass_event Compass_rmc Event Graph
