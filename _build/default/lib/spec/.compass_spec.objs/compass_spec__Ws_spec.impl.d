lib/spec/ws_spec.ml: Check Compass_event Compass_rmc Event Format Graph List Lview Value
