lib/spec/styles.ml: Check Format Linearize Queue_spec Stack_spec Ws_spec
