lib/spec/check.mli: Format
