open Compass_rmc
open Compass_event

(* ExchangerConsistent — the paper's Section 4.2 (Figure 5).

   Successful exchanges come in matched pairs with symmetric so edges and
   swapped values; failed exchanges ([Exchange (v, Null)]) are unmatched.
   Our operational machine realises the paper's helping discipline
   literally: the helper commits the helpee's event and then its own in one
   atomic step, so matched pairs share a commit step ([xchg-atomic-pair]) —
   witnessing that no third commit can observe the intermediate state, the
   property the elimination stack's LIFO argument depends on. *)

let exchanges g = List.filter Event.is_exchange (Graph.events g)

let is_fail (e : Event.data) =
  match e.typ with Event.Exchange (_, Value.Null) -> true | _ -> false

let check_sym g =
  List.fold_left
    (fun acc (a, b) ->
      Check.ensure acc "xchg-sym"
        (Graph.so_mem g (b, a))
        (fun () -> Format.asprintf "so edge (e%d, e%d) lacks its mirror" a b))
    [] (Graph.so g)

let check_matches g =
  List.fold_left
    (fun acc (a_id, b_id) ->
      let a = Graph.find g a_id and b = Graph.find g b_id in
      match (a.Event.typ, b.Event.typ) with
      | Event.Exchange (v1, v2), Event.Exchange (w1, w2) ->
          let acc =
            Check.ensure acc "xchg-matches"
              (Value.equal v2 w1 && Value.equal w2 v1)
              (fun () ->
                Format.asprintf "pair (%a, %a) values do not swap" Event.pp a
                  Event.pp b)
          in
          let acc =
            Check.ensure acc "xchg-no-bot"
              (not (Value.equal v1 Value.Null || Value.equal v2 Value.Null))
              (fun () ->
                Format.asprintf "pair (%a, %a) exchanges bottom" Event.pp a
                  Event.pp b)
          in
          Check.ensure acc "xchg-no-self" (a_id <> b_id) (fun () ->
              Format.asprintf "%a exchanges with itself" Event.pp a)
      | _ ->
          Check.v "xchg-matches" "so pair (e%d, e%d) on non-exchange events"
            a_id b_id
          :: acc)
    [] (Graph.so g)

let check_pairing g =
  List.fold_left
    (fun acc (e : Event.data) ->
      let partners = Graph.so_out g e.id in
      if is_fail e then
        Check.ensure acc "xchg-fail-unpaired" (partners = []) (fun () ->
            Format.asprintf "failed exchange %a has a partner" Event.pp e)
      else
        Check.ensure acc "xchg-success-paired"
          (List.length partners = 1)
          (fun () ->
            Format.asprintf "successful exchange %a has %d partners" Event.pp e
              (List.length partners)))
    [] (exchanges g)

(* Matched pairs are committed in one atomic step, and each event's logical
   view contains both events of the pair (Figure 5: e1, e2 ∈ M'). *)
let check_atomic_pair g =
  List.fold_left
    (fun acc (a_id, b_id) ->
      if a_id > b_id then acc
      else
        let a = Graph.find g a_id and b = Graph.find g b_id in
        let acc =
          Check.ensure acc "xchg-atomic-pair"
            (fst a.Event.cix = fst b.Event.cix)
            (fun () ->
              Format.asprintf "pair (%a, %a) committed in separate steps"
                Event.pp a Event.pp b)
        in
        Check.ensure acc "xchg-mutual-lview"
          (Lview.mem a_id b.Event.logview && Lview.mem b_id a.Event.logview)
          (fun () ->
            Format.asprintf "pair (%a, %a) logical views not mutual" Event.pp a
              Event.pp b))
    [] (Graph.so g)

let consistent g =
  check_sym g @ check_matches g @ check_pairing g @ check_atomic_pair g
