open Compass_event

(** QueueConsistent — the paper's consistency conditions for queues
    (Figure 2, bottom right), checked on a concrete execution's graph.

    Quantifiers over "already committed" events are bounded by commit
    indices, so each condition is evaluated against the graph {e at the
    commit point} of the event under inspection, as the specs demand. *)

val check_matches : Graph.t -> Check.violation list
(** QUEUE-MATCHES: a dequeue returns its matched enqueue's value *)

val check_uniq : Graph.t -> Check.violation list
(** an element is dequeued at most once; every successful dequeue matches
    exactly one enqueue (the paper's footnote 5) *)

val check_so_lhb : Graph.t -> Check.violation list
(** [so ⊆ lhb], and so respects commit order *)

val check_fifo : Graph.t -> Check.violation list
(** QUEUE-FIFO in the paper's weak, RMC-compatible form: if [e' -lhb-> e]
    and [d] dequeues [e], then [e'] was already dequeued by some [d'] with
    [(d, d') ∉ lhb] *)

val check_empdeq : Graph.t -> Check.violation list
(** QUEUE-EMPDEQ: an empty dequeue is justified only if every enqueue that
    happens before it had already been dequeued — the condition that
    verifies the MP client (Figure 1) *)

val check_lhb_order : Graph.t -> Check.violation list
(** events only observe events of earlier steps (same-step mutual
    observation is allowed: helped pairs, the paper's footnote 7) *)

val consistent : Graph.t -> Check.violation list
(** all of the above: the paper's QueueConsistent *)

val abstract_state : ?require_empty:bool -> Graph.t -> Check.violation list
(** Commit-point abstract-state replay (the LATabs styles, Sections 2.3
    and 3.1): every commit must be an atomic update of the abstract queue.
    Michael-Scott passes; the relaxed Herlihy-Wing queue fails — the
    paper's motivation for the abstract-state-free LAThb style
    (Section 3.2).  [require_empty] adds the SC-only condition that empty
    dequeues find a truly empty state (SC-DEQ in Figure 2); the RMC specs
    deliberately drop it. *)
