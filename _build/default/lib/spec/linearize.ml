open Compass_event

(* LAThist (Section 3.3): linearisable histories.

   The spec asserts the existence of a total order [to] over the object's
   events that (1) respects lhb (but, unlike classical linearisability, is
   not required to *imply* it), and (2) can be interpreted as a sequential
   run of the data type ([interp(to, vs)] in Figure 4): pushes/pops behave
   LIFO, empty operations happen only on a truly empty state.

   We check it two ways:

   - [commit_order_valid]: is the machine's commit order already such a
     [to]?  For strongly-placed commit points (Treiber's head CASes —
     exactly the paper's observation that [to] is derivable from lhb plus
     the head's modification order) this fast path succeeds whenever no
     stale empty-read occurred.

   - [search]: a backtracking enumeration of linear extensions of lhb,
     memoised on (used-event-set, abstract state); complete for the graph
     sizes the model checker produces.  This is the general fallback —
     e.g. the Herlihy-Wing queue needs genuine reordering (the SC proof
     needed prophecy variables; offline search replaces prophecy). *)

type kind = Queue | Stack | Deque

(* Sequential interpretation: one step of [interp].  The abstract state
   pairs values with the event id of the operation that inserted them, so
   that the so matching is respected, not just value equality. *)
let apply kind g (vs : (Compass_rmc.Value.t * int) list) (e : Event.data) =
  let so_mate d_id =
    match Graph.so_in g d_id with [ e_id ] -> Some e_id | _ -> None
  in
  match (kind, e.typ) with
  | Queue, Event.Enq v | Stack, Event.Push v ->
      Some (match kind with Queue -> vs @ [ (v, e.id) ] | _ -> (v, e.id) :: vs)
  | Queue, Event.Deq v | Stack, Event.Pop v -> (
      match vs with
      | (w, ins_id) :: vs'
        when Compass_rmc.Value.equal v w && so_mate e.id = Some ins_id ->
          Some vs'
      | _ -> None)
  | Queue, Event.EmpDeq | Stack, Event.EmpPop ->
      if vs = [] then Some [] else None
  (* Deque (experiment E8): the owner works the back, thieves the front;
     we keep the *back* at the list head so owner operations are O(1). *)
  | Deque, Event.Push v -> Some ((v, e.id) :: vs)
  | Deque, Event.Pop v -> (
      match vs with
      | (w, ins_id) :: vs'
        when Compass_rmc.Value.equal v w && so_mate e.id = Some ins_id ->
          Some vs'
      | _ -> None)
  | Deque, Event.Steal v -> (
      match List.rev vs with
      | (w, ins_id) :: front_rev
        when Compass_rmc.Value.equal v w && so_mate e.id = Some ins_id ->
          Some (List.rev front_rev)
      | _ -> None)
  | Deque, (Event.EmpPop | Event.EmpSteal) -> if vs = [] then Some [] else None
  | _ -> None

(* Fast path: replay the commit order. *)
let commit_order_valid kind g =
  let rec go vs = function
    | [] -> true
    | e :: rest -> ( match apply kind g vs e with Some vs' -> go vs' rest | None -> false)
  in
  go [] (Graph.events_by_cix g)

type result =
  | Linearizable of int list  (** a witnessing [to], earliest first *)
  | Not_linearizable
  | Gave_up  (** search budget exhausted *)

(* Backtracking search for a linear extension of lhb that interp accepts. *)
let search ?(max_nodes = 2_000_000) kind g =
  let events = Graph.events_by_cix g in
  let n = List.length events in
  let by_id = Hashtbl.create (2 * n + 1) in
  List.iter (fun (e : Event.data) -> Hashtbl.replace by_id e.id e) events;
  (* lhb predecessors within this graph. *)
  let preds = Hashtbl.create (2 * n + 1) in
  List.iter
    (fun (e : Event.data) ->
      let ps =
        Compass_rmc.Lview.fold
          (fun d acc -> if d <> e.id && Graph.mem g d then d :: acc else acc)
          e.logview []
      in
      Hashtbl.replace preds e.id ps)
    events;
  let budget = ref max_nodes in
  let memo : (int list * (Compass_rmc.Value.t * int) list, unit) Hashtbl.t =
    Hashtbl.create 4096
  in
  let module Iset = Set.Make (Int) in
  let exception Found of int list in
  let rec go used vs acc =
    if Iset.cardinal used = n then raise (Found (List.rev acc));
    decr budget;
    if !budget <= 0 then raise Exit;
    let key = (Iset.elements used, vs) in
    if not (Hashtbl.mem memo key) then begin
      Hashtbl.replace memo key ();
      List.iter
        (fun (e : Event.data) ->
          if
            (not (Iset.mem e.id used))
            && List.for_all (fun p -> Iset.mem p used) (Hashtbl.find preds e.id)
          then
            match apply kind g vs e with
            | Some vs' -> go (Iset.add e.id used) vs' (e.id :: acc)
            | None -> ())
        events
    end
  in
  try
    go Iset.empty [] [];
    Not_linearizable
  with
  | Found order -> Linearizable order
  | Exit -> Gave_up

(* Sanity: a claimed [to] really is a linear extension that interp accepts. *)
let validate kind g order =
  let rec go vs = function
    | [] -> true
    | id :: rest -> (
        match apply kind g vs (Graph.find g id) with
        | Some vs' -> go vs' rest
        | None -> false)
  in
  let nodes = List.map (fun (e : Event.data) -> e.id) (Graph.events g) in
  let rel = Order.of_pairs ~nodes (Graph.lhb_pairs g) in
  Order.is_linear_extension rel order && go [] order
