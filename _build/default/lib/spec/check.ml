(* Violations: the currency of all spec checkers.

   A checker examines an execution's event graph (or its commit-order
   replay) and reports every condition it finds violated.  The empty list
   means the execution satisfies the spec — the operational counterpart of
   the paper's consistency predicates holding invariantly. *)

type violation = { cond : string; detail : string }

let v cond fmt = Format.kasprintf (fun detail -> { cond; detail }) fmt

let pp_violation ppf { cond; detail } = Format.fprintf ppf "[%s] %s" cond detail

let pp ppf = function
  | [] -> Format.pp_print_string ppf "consistent"
  | vs ->
      Format.fprintf ppf "@[<v>%a@]"
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_violation)
        vs

(* Check [p]; if it fails, produce the violation. *)
let ensure acc cond p detail = if p then acc else v cond "%s" (detail ()) :: acc
