open Compass_event

(** LAThist (paper, Section 3.3): linearisable histories.

    The spec asserts a total order [to] over the object's events that
    respects lhb (but, unlike classical linearisability, need not imply
    it) and can be interpreted as a sequential run ([interp(to, vs)],
    Figure 4).  Two checks:

    - {!commit_order_valid}: is the machine's commit order already such a
      [to]?  For strongly-placed commit points (Treiber's head CASes —
      the paper's "derivable from lhb plus the head's modification
      order") this fast path succeeds whenever no stale empty-read
      occurred;
    - {!search}: a memoised backtracking enumeration of lhb's linear
      extensions — the general fallback (e.g. the Herlihy-Wing queue needs
      genuine reordering; offline search replaces the prophecy variables
      the SC proof needed). *)

type kind = Queue | Stack | Deque

val apply :
  kind ->
  Graph.t ->
  (Compass_rmc.Value.t * int) list ->
  Event.data ->
  (Compass_rmc.Value.t * int) list option
(** one step of [interp]; the abstract state pairs values with inserting
    event ids so that so-matching, not just value equality, is enforced *)

val commit_order_valid : kind -> Graph.t -> bool

type result =
  | Linearizable of int list  (** a witnessing [to], earliest first *)
  | Not_linearizable
  | Gave_up  (** search budget exhausted *)

val search : ?max_nodes:int -> kind -> Graph.t -> result

val validate : kind -> Graph.t -> int list -> bool
(** a claimed [to] really is a linear extension of lhb that interp
    accepts *)
