open Compass_event

(** StackConsistent — the LIFO analogue of {!Queue_spec} (the paper notes
    in Section 4.1 that "the key difference is the change from FIFO to
    LIFO in consistency"). *)

val check_matches : Graph.t -> Check.violation list
val check_uniq : Graph.t -> Check.violation list
val check_so_lhb : Graph.t -> Check.violation list

val check_lifo : Graph.t -> Check.violation list
(** STACK-LIFO (weak form): if pop [d] takes [e], any push [e'] with
    [e -lhb-> e' -lhb-> d] must already be popped when [d] commits *)

val check_emppop : Graph.t -> Check.violation list
val check_lhb_order : Graph.t -> Check.violation list

val consistent : Graph.t -> Check.violation list

val abstract_state : ?require_empty:bool -> Graph.t -> Check.violation list
(** commit-order abstract-state replay; see {!Queue_spec.abstract_state} *)
