(** Violations: the currency of all spec checkers.  The empty list means
    the execution satisfies the spec — the operational counterpart of the
    paper's consistency predicates holding invariantly. *)

type violation = { cond : string; detail : string }

val v : string -> ('a, Format.formatter, unit, violation) format4 -> 'a
(** [v cond fmt ...] builds a violation of condition [cond] *)

val pp_violation : Format.formatter -> violation -> unit
val pp : Format.formatter -> violation list -> unit

val ensure :
  violation list -> string -> bool -> (unit -> string) -> violation list
(** [ensure acc cond p detail] accumulates a violation when [p] fails *)
