open Compass_event

(** ExchangerConsistent — the paper's Section 4.2 (Figure 5).

    Successful exchanges come in matched pairs with symmetric so edges and
    swapped values; failed exchanges ([Exchange (v, Null)]) are unmatched.
    Matched pairs must share a commit step — the operational witness of
    the helping discipline: the helper commits the helpee's event and its
    own in one atomic instruction, so no third commit observes the
    intermediate state (the property the elimination stack's LIFO argument
    needs). *)

val check_sym : Graph.t -> Check.violation list
val check_matches : Graph.t -> Check.violation list
val check_pairing : Graph.t -> Check.violation list

val check_atomic_pair : Graph.t -> Check.violation list
(** matched pairs share a commit step, and each event's logical view
    contains both (Figure 5: [e1, e2 ∈ M']) *)

val consistent : Graph.t -> Check.violation list
