open Compass_event

(** WsDequeConsistent — consistency conditions for single-owner
    work-stealing deques in the framework's style (experiment E8; the
    paper's Section 6 names work-stealing queues as future work).

    Conditions: unique takes ([ws-uniq]), single-owner discipline
    ([ws-owner]), steals take pushes in push order ([ws-steal-order]), the
    owner pops the newest visible untaken push ([ws-owner-lifo]), and a
    {e reservation-aware} empty condition ([ws-empty]): the justifying
    take may commit after the empty operation, because the owner's bottom
    decrement reserves an element before its pop commits — the model
    checker refuted the strict (queue-style) version. *)

val check_matches : Graph.t -> Check.violation list
val check_uniq : Graph.t -> Check.violation list
val check_so_lhb : Graph.t -> Check.violation list
val check_owner : Graph.t -> Check.violation list
val check_steal_order : Graph.t -> Check.violation list
val check_owner_lifo : Graph.t -> Check.violation list
val check_empty : Graph.t -> Check.violation list
val check_lhb_order : Graph.t -> Check.violation list

val consistent : Graph.t -> Check.violation list

val abstract_state : ?require_empty:bool -> Graph.t -> Check.violation list
(** commit-order replay of the deque (owner at the back, thieves at the
    front) *)
