(* The spec-style hierarchy (paper, Sections 2.3-3.3):

     LATso-abs  ⊑  LAThb-abs  ⊒  LAThb          LAThb-abs ⊑ LAThist
     (Cosmo)       (+ graphs)    (- abs state)   (+ linearisable history)

   As checkable predicates on one execution:

   - [Hb]      graph consistency only (lhb/so conditions);
   - [So_abs]  commit-point abstract state only (what Cosmo's abstract
               state demands; no graph conditions are available to
               clients);
   - [Hb_abs]  both;
   - [Hist]    both, plus existence of a linearisable [to];
   - [Sc_abs]  the SC spec of Figure 2: abstract state *including* the
               truly-empty condition on failing dequeues/pops.  No relaxed
               implementation satisfies it — its failures quantify exactly
               how far each implementation is from SC strength
               (Section 2.3's "an RMC spec cannot be quite as strong as
               the SC spec").

   An implementation "satisfies" a style when every explored execution
   passes its predicate — the checking counterpart of the paper's per-style
   verification results, reproduced as experiment E2's matrix. *)

type style = So_abs | Hb_abs | Hb | Hist | Sc_abs

let style_name = function
  | So_abs -> "LATso-abs"
  | Hb_abs -> "LAThb-abs"
  | Hb -> "LAThb"
  | Hist -> "LAThist"
  | Sc_abs -> "SC-abs"

let all_styles = [ Hb; So_abs; Hb_abs; Hist; Sc_abs ]

type kind = Linearize.kind = Queue | Stack | Deque

let graph_consistent kind g =
  match kind with
  | Queue -> Queue_spec.consistent g
  | Stack -> Stack_spec.consistent g
  | Deque -> Ws_spec.consistent g

let abs_consistent ?require_empty kind g =
  match kind with
  | Queue -> Queue_spec.abstract_state ?require_empty g
  | Stack -> Stack_spec.abstract_state ?require_empty g
  | Deque -> Ws_spec.abstract_state ?require_empty g

(* Check one style on one execution's graph. *)
let check ?(max_nodes = 200_000) style kind g : Check.violation list =
  match style with
  | So_abs -> abs_consistent kind g
  | Sc_abs -> abs_consistent ~require_empty:true kind g
  | Hb -> graph_consistent kind g
  | Hb_abs -> graph_consistent kind g @ abs_consistent kind g
  | Hist -> (
      graph_consistent kind g
      @
      if Linearize.commit_order_valid kind g then []
      else
        match Linearize.search ~max_nodes kind g with
        | Linearize.Linearizable _ -> []
        | Linearize.Not_linearizable ->
            [ Check.v "lathist" "no linearisable total order exists" ]
        | Linearize.Gave_up ->
            [ Check.v "lathist-budget" "linearisation search gave up" ])

(* Aggregated satisfaction counts across many executions (experiment E2). *)
type tally = {
  mutable execs : int;
  mutable failed : int;
  mutable example : Check.violation option;
}

let fresh_tally () = { execs = 0; failed = 0; example = None }

let tally_one t violations =
  t.execs <- t.execs + 1;
  match violations with
  | [] -> ()
  | v :: _ ->
      t.failed <- t.failed + 1;
      if t.example = None then t.example <- Some v

let satisfied t = t.failed = 0

let pp_tally ppf t =
  if satisfied t then Format.fprintf ppf "sat (%d execs)" t.execs
  else
    Format.fprintf ppf "FAIL %d/%d%a" t.failed t.execs
      (fun ppf -> function
        | Some v -> Format.fprintf ppf " e.g. %a" Check.pp_violation v
        | None -> ())
      t.example
