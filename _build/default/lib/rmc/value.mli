(** Values stored in simulated memory and returned by library operations. *)

type t =
  | Int of int
  | Ptr of Loc.t
  | Null  (** null pointer; doubles as the exchange-failure token (bottom) *)
  | Unit
  | Sentinel  (** the elimination stack's SENTINEL (paper, Section 4.1) *)
  | Taken  (** slot already consumed (Herlihy-Wing slots, exchanger holes) *)
  | Fail  (** contention failure (the paper's FAIL_RACE) *)
  | Poison  (** uninitialised memory; non-atomic reads of it are errors *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val int : int -> t

val to_int_exn : t -> int
(** @raise Invalid_argument if the value is not an [Int]. *)

val to_loc_exn : t -> Loc.t
(** @raise Invalid_argument if the value is not a [Ptr]. *)

val is_ptr : t -> bool
