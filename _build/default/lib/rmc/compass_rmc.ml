(** COMPASS-OCaml memory-model substrate: an operational, view-based
    simulator for ORC11 (the RC11 variant targeted by iRC11 / the Compass
    paper).

    The modules here correspond to the semantic objects of the paper's
    Section 2.3: {!View} (physical views), {!Lview} (logical views —
    Section 3.1), {!Msg}/{!History} (the histories of atomic points-to
    assertions), {!Tview} (the Rel-Write / Acq-Read transitions), and
    {!Memory} (the global store plus race detection for non-atomics). *)

module Loc = Loc
module Value = Value
module Mode = Mode
module Timestamp = Timestamp
module View = View
module Lview = Lview
module Msg = Msg
module History = History
module Tview = Tview
module Memory = Memory
