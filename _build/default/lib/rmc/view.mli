(** Physical views: finite maps from locations to timestamps (the paper's
    [View ::= Loc -> Time], Section 2.3).

    A thread's view records, per location, the latest write it has
    observed.  A location absent from the map has never been observed at
    all — strictly below the initialisation timestamp, so "has observed
    the allocation" is expressible (and its absence is a data race for
    non-atomic accesses). *)

type t

val bot : t

val unseen : Timestamp.t
(** returned for locations with no entry; [unseen < Timestamp.init] *)

val get : t -> Loc.t -> Timestamp.t
val observed : t -> Loc.t -> bool
val singleton : Loc.t -> Timestamp.t -> t
val set : t -> Loc.t -> Timestamp.t -> t

val extend : t -> Loc.t -> Timestamp.t -> t
(** record an observation; monotone (entries only grow) *)

val join : t -> t -> t
(** pointwise maximum — the lattice join [⊔] *)

val leq : t -> t -> bool
(** the view-inclusion order [⊑] *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
val cardinal : t -> int
val fold : (Loc.t -> Timestamp.t -> 'a -> 'a) -> t -> 'a -> 'a
