(* Logical views: sets of library-event identifiers.

   This is the paper's key device (Section 3.1): where a physical view
   approximates happens-before between *memory instructions*, a logical view
   approximates happens-before between *library operations*.  Event ids are
   globally unique across all library objects (see [Compass_event.Graph]), so
   a single set suffices; per-object relations are obtained by restriction.

   Logical views piggyback on exactly the same transfer machinery as
   physical views: every message carries one, release writes attach the
   writer's current logical view, acquire reads join the message's logical
   view into the reader's.  This is what makes *external* synchronisation
   (e.g. the MP client's flag) transfer library-event observations — the
   operational counterpart of the paper's [SeenQueue(q, G, M)] assertions. *)

include Set.Make (Int)

let join = union
let leq = subset

let pp ppf (s : t) =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf e -> Format.fprintf ppf "e%d" e))
    (to_seq s)

let to_string s = Format.asprintf "%a" pp s
