(* Write messages.

   One message per write: its location, its timestamp in that location's
   modification order, the value written, and the release views (physical
   and logical) the writer attached.  Messages are immutable except that the
   machine may *patch* a commit write's logical view to include the event it
   just committed (see [Compass_machine.Machine]); histories therefore store
   messages behind a ref. *)

type t = {
  loc : Loc.t;
  ts : Timestamp.t;
  value : Value.t;
  view : View.t;  (** physical release view *)
  lview : Lview.t;  (** logical release view *)
  wtid : int;  (** writing thread, for traces; -1 = initialisation *)
}

let make ~loc ~ts ~value ~view ~lview ~wtid = { loc; ts; value; view; lview; wtid }

let init ~loc ~value =
  {
    loc;
    ts = Timestamp.init;
    value;
    view = View.singleton loc Timestamp.init;
    lview = Lview.empty;
    wtid = -1;
  }

let pp ppf m =
  Format.fprintf ppf "%a@@%a=%a" Loc.pp m.loc Timestamp.pp m.ts Value.pp
    m.value
