(** Thread view state and its transitions: the operational content of the
    paper's Rel-Write / Acq-Read rules (Section 2.3) and their relaxed /
    non-atomic / fence weakenings, for physical views and their logical
    twins alike. *)

type t = {
  cur : View.t;  (** the thread's current view (the paper's "seen V") *)
  acq : View.t;
      (** accumulator ([>= cur]) of relaxed-read message views, released
          into [cur] by an acquire fence *)
  rel : View.t;
      (** view frozen at the last release fence ([<= cur]), attached to
          relaxed writes *)
  cur_l : Lview.t;
  acq_l : Lview.t;
  rel_l : Lview.t;
}

val init : t

val wf : t -> bool
(** well-formedness: [rel ⊑ cur ⊑ acq], physically and logically *)

val join : t -> t -> t
(** componentwise join — used when a parent joins its children *)

val read : t -> Msg.t -> Mode.access -> t
(** effect of reading a message with the given access mode: coherence
    always bumps [cur] at the location; acquire joins the message views
    into [cur]; relaxed joins them into [acq] only *)

val write :
  t ->
  l:Loc.t ->
  ts:Timestamp.t ->
  mode:Mode.access ->
  ?rmw_read:Msg.t ->
  unit ->
  t * View.t * Lview.t
(** effect of writing at [ts]: the new thread state and the (physical,
    logical) release views to attach to the message.  Release writes
    attach [cur]/[cur_l]; relaxed writes attach [rel]/[rel_l]; non-atomic
    writes attach only the write itself.  [rmw_read] is the message an
    RMW read from — C11 release sequences make the RMW's store inherit its
    views. *)

val fence : t -> Mode.fence -> t
(** [F_acq]: [cur ⊔= acq]; [F_rel]: [rel := cur]; [F_acqrel]/[F_sc]:
    both (the SC fence's global-view join is performed by the machine) *)

val observe_event : t -> int -> t
(** record that the thread has observed library event [e] — the step
    behind "SeenQueue now contains e" after a commit *)

val pp : Format.formatter -> t -> unit
