(* Values stored in simulated memory and returned by library operations.

   [Poison] is the content of freshly allocated cells; reading it through a
   non-atomic access is a program error (uninitialised read).  [Sentinel] is
   the distinguished token used by the elimination stack's exchanger protocol
   (the paper's SENTINEL), and [Null] doubles as the null pointer and the
   exchange-failure token (the paper's bottom). *)

type t =
  | Int of int
  | Ptr of Loc.t
  | Null
  | Unit
  | Sentinel
  | Taken  (** slot already consumed (Herlihy-Wing, exchanger holes) *)
  | Fail  (** contention failure (the paper's FAIL_RACE) *)
  | Poison  (** uninitialised *)

let equal a b =
  match (a, b) with
  | Int x, Int y -> Int.equal x y
  | Ptr x, Ptr y -> Loc.equal x y
  | Null, Null | Unit, Unit | Sentinel, Sentinel | Taken, Taken | Poison, Poison
  | Fail, Fail ->
      true
  | _ -> false

let compare a b =
  let tag = function
    | Int _ -> 0
    | Ptr _ -> 1
    | Null -> 2
    | Unit -> 3
    | Sentinel -> 4
    | Taken -> 5
    | Fail -> 7
    | Poison -> 6
  in
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Ptr x, Ptr y -> Loc.compare x y
  | _ -> Int.compare (tag a) (tag b)

let pp ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Ptr l -> Format.fprintf ppf "&%a" Loc.pp l
  | Null -> Format.pp_print_string ppf "null"
  | Unit -> Format.pp_print_string ppf "()"
  | Sentinel -> Format.pp_print_string ppf "SENTINEL"
  | Taken -> Format.pp_print_string ppf "TAKEN"
  | Fail -> Format.pp_print_string ppf "FAIL_RACE"
  | Poison -> Format.pp_print_string ppf "POISON"

let to_string v = Format.asprintf "%a" pp v
let int n = Int n

let to_int_exn = function
  | Int n -> n
  | v -> invalid_arg ("Value.to_int_exn: " ^ to_string v)

let to_loc_exn = function
  | Ptr l -> l
  | v -> invalid_arg ("Value.to_loc_exn: " ^ to_string v)

let is_ptr = function Ptr _ -> true | _ -> false
