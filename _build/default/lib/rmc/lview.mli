(** Logical views: sets of library-event identifiers (paper, Section 3.1).

    Where a physical view approximates happens-before between memory
    instructions, a logical view approximates happens-before between
    {e library operations}: [(d, e) ∈ G.lhb  iff  d ∈ G(e).logview].
    Event ids are globally unique across all objects
    ({!Compass_event.Registry}), so one set serves every library at once;
    per-object relations are obtained by restriction.

    Logical views ride on exactly the same transfer machinery as physical
    views — release writes attach them to messages, acquire reads join
    them — which is what lets {e external} synchronisation (the MP
    client's flag) transfer library-event observations: the operational
    content of the paper's [SeenQueue(q, G, M)]. *)

include Set.S with type elt = int

val join : t -> t -> t
val leq : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
