(** ORC11 access and fence modes (paper, Section 2.3 / Section 5).

    ORC11 — the memory model of iRC11, targeted by the paper — has
    non-atomic, relaxed, and release/acquire accesses, plus fences.  SC
    accesses are not part of the fragment the paper uses; SC {e fences}
    are modelled (see {!Tview.fence} and the machine's global SC view). *)

type access =
  | Na  (** non-atomic: racy accesses are undefined behaviour (detected) *)
  | Rlx
  | Acq  (** loads / RMWs only *)
  | Rel  (** stores / RMWs only *)
  | AcqRel  (** RMWs only *)

type fence = F_acq | F_rel | F_acqrel | F_sc

val is_atomic : access -> bool

val acquires : access -> bool
(** does a load with this mode perform an acquire? *)

val releases : access -> bool
(** does a store with this mode perform a release? *)

val valid_load : access -> bool
val valid_store : access -> bool
val valid_rmw : access -> bool

val pp_access : Format.formatter -> access -> unit
val pp_fence : Format.formatter -> fence -> unit
val access_to_string : access -> string
