(* Global simulated memory: an allocator plus one history per location.

   Memory is mutable and created fresh for every execution (the model
   checker is stateless: it re-runs executions from decision scripts rather
   than snapshotting state). *)

type policy = [ `Append | `Gap ]

type t = {
  mutable next_base : int;
  hists : (Loc.t, History.t) Hashtbl.t;
  policy : policy;
}

type error =
  | Race of { loc : Loc.t; tid : int; kind : string }
  | Unallocated of Loc.t
  | Uninitialised of { loc : Loc.t; tid : int }

let pp_error ppf = function
  | Race { loc; tid; kind } ->
      Format.fprintf ppf "data race on %a by thread %d (%s)" Loc.pp loc tid kind
  | Unallocated l -> Format.fprintf ppf "access to unallocated %a" Loc.pp l
  | Uninitialised { loc; tid } ->
      Format.fprintf ppf "uninitialised non-atomic read of %a by thread %d"
        Loc.pp loc tid

exception Error of error

let error e = raise (Error e)
let create ?(policy = `Append) () = { next_base = 0; hists = Hashtbl.create 256; policy }

let alloc mem ~name ~size ~init_value =
  let base = mem.next_base in
  mem.next_base <- base + 1;
  Loc.register_name ~base ~name;
  for off = 0 to size - 1 do
    let loc = Loc.make ~base ~off in
    Hashtbl.replace mem.hists loc (History.create ~loc ~init_value)
  done;
  Loc.make ~base ~off:0

let hist mem l =
  match Hashtbl.find_opt mem.hists l with
  | Some h -> h
  | None -> error (Unallocated l)

(* All messages a thread with view-of-[l] [from] may read.  Non-atomic reads
   are handled separately in [na_read]. *)
let read_choices mem l ~from = History.readable (hist mem l) ~from

let latest mem l = History.latest (hist mem l)
let max_ts mem l = History.max_ts (hist mem l)

(* Non-atomic access check: the accessing thread must have observed the
   mo-maximal write to the location, otherwise the access races with that
   write (ORC11 makes racy non-atomics undefined behaviour; we *detect* and
   report them instead).  Returns the unique readable message. *)
let na_check mem l ~(tv : Tview.t) ~tid ~kind =
  let h = hist mem l in
  let m = History.latest h in
  if not (Timestamp.leq (History.max_ts h) (View.get tv.Tview.cur l)) then
    error (Race { loc = l; tid; kind });
  m

let na_read mem l ~tv ~tid =
  let m = na_check mem l ~tv ~tid ~kind:"na-read" in
  (match !m.Msg.value with
  | Value.Poison -> error (Uninitialised { loc = l; tid })
  | _ -> ());
  m

(* Candidate timestamps for a new write by a thread whose view of [l] is
   [above]; the new write must be mo-after everything the writer observed. *)
let write_ts_choices mem l ~above =
  History.fresh_ts (hist mem l) ~policy:mem.policy ~above

let add_msg mem (m : Msg.t) = History.add (hist mem m.loc) m

let pp ppf mem =
  Hashtbl.iter
    (fun l h -> Format.fprintf ppf "%a: %a@." Loc.pp l History.pp h)
    mem.hists
