(** Timestamps index each location's modification order.

    Every location's history starts with an initialisation write at
    {!init}.  Under the default [`Append] policy new writes take the next
    integer; under [`Gap] (needed for weak behaviours requiring mo-middle
    insertion, e.g. 2+2W) appended writes are spaced {!stride} apart so
    later writes can land between existing ones. *)

type t = int

val init : t
val compare : t -> t -> int
val equal : t -> t -> bool
val leq : t -> t -> bool
val lt : t -> t -> bool
val max : t -> t -> t

val stride : int
(** spacing of appended timestamps under the [`Gap] policy *)

val midpoint : t -> t -> t option
(** [midpoint a b] is a timestamp strictly between [a] and [b], if the gap
    admits one. *)

val pp : Format.formatter -> t -> unit
