lib/rmc/mode.mli: Format
