lib/rmc/mode.ml: Format
