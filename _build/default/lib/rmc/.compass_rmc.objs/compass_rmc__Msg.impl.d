lib/rmc/msg.ml: Format Loc Lview Timestamp Value View
