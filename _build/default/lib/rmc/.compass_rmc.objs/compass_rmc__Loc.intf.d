lib/rmc/loc.mli: Format Map Set
