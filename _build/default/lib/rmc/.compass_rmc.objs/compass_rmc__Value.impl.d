lib/rmc/value.ml: Format Int Loc
