lib/rmc/memory.mli: Format History Loc Msg Timestamp Tview Value
