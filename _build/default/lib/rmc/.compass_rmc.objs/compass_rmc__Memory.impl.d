lib/rmc/memory.ml: Format Hashtbl History Loc Msg Timestamp Tview Value View
