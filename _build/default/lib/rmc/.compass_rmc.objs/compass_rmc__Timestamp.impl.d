lib/rmc/timestamp.ml: Format Int Stdlib
