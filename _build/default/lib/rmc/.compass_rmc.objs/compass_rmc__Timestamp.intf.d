lib/rmc/timestamp.mli: Format
