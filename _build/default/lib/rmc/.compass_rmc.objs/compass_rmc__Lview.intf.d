lib/rmc/lview.mli: Format Set
