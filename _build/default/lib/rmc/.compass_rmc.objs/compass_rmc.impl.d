lib/rmc/compass_rmc.ml: History Loc Lview Memory Mode Msg Timestamp Tview Value View
