lib/rmc/tview.ml: Format Loc Lview Mode Msg Timestamp View
