lib/rmc/history.mli: Format Loc Msg Timestamp Value
