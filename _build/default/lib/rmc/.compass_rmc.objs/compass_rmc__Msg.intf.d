lib/rmc/msg.mli: Format Loc Lview Timestamp Value View
