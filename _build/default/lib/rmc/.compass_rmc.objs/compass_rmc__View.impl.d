lib/rmc/view.ml: Format Loc Timestamp
