lib/rmc/loc.ml: Format Hashtbl Int Map Printf Set
