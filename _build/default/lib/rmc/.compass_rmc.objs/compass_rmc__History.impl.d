lib/rmc/history.ml: Format Int List Map Msg Timestamp
