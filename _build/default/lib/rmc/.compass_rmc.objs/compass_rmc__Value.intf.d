lib/rmc/value.mli: Format Loc
