lib/rmc/view.mli: Format Loc Timestamp
