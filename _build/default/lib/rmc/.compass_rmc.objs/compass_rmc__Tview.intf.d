lib/rmc/tview.mli: Format Loc Lview Mode Msg Timestamp View
