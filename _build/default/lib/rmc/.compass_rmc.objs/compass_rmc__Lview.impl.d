lib/rmc/lview.ml: Format Int Set
