(* Timestamps index the modification order of each location.

   Each location's history starts with an initialisation write at [init].
   Under the default [Append] policy new writes take [succ (max_ts)]; under
   the [Gap] policy (used to exhibit weak behaviours that need mo-middle
   insertion, e.g. 2+2W) writes are spaced [stride] apart so that later
   writes can pick unused slots between existing ones. *)

type t = int

let init : t = 0
let compare = Int.compare
let equal = Int.equal
let leq (a : t) (b : t) = a <= b
let lt (a : t) (b : t) = a < b
let max = Stdlib.max

(* Spacing between appended timestamps under the [Gap] policy; a midpoint
   between two writes [a < b] exists whenever [b - a >= 2]. *)
let stride = 1 lsl 16

let midpoint a b = if b - a >= 2 then Some (a + ((b - a) / 2)) else None
let pp ppf (t : t) = Format.fprintf ppf "t%d" t
