(* ORC11 access and fence modes.

   ORC11 (the memory model of iRC11) has non-atomic, relaxed, and
   release/acquire accesses, plus fences.  SC accesses are not part of the
   model the paper targets; SC fences are approximated (see {!Tview.fence}).

   The [leq] orders mirror RC11's mode lattice restricted to the modes a
   given operation supports. *)

type access =
  | Na  (** non-atomic: racy accesses are undefined behaviour *)
  | Rlx
  | Acq  (** loads / RMWs only *)
  | Rel  (** stores / RMWs only *)
  | AcqRel  (** RMWs only *)

type fence = F_acq | F_rel | F_acqrel | F_sc

let is_atomic = function Na -> false | _ -> true

(* Does a load with this mode perform an acquire? *)
let acquires = function Acq | AcqRel -> true | Na | Rlx | Rel -> false

(* Does a store with this mode perform a release? *)
let releases = function Rel | AcqRel -> true | Na | Rlx | Acq -> false

let valid_load = function Na | Rlx | Acq -> true | Rel | AcqRel -> false
let valid_store = function Na | Rlx | Rel -> true | Acq | AcqRel -> false
let valid_rmw = function Rlx | Acq | Rel | AcqRel -> true | Na -> false

let pp_access ppf m =
  Format.pp_print_string ppf
    (match m with
    | Na -> "na"
    | Rlx -> "rlx"
    | Acq -> "acq"
    | Rel -> "rel"
    | AcqRel -> "acq_rel")

let pp_fence ppf f =
  Format.pp_print_string ppf
    (match f with
    | F_acq -> "fence_acq"
    | F_rel -> "fence_rel"
    | F_acqrel -> "fence_acq_rel"
    | F_sc -> "fence_sc")

let access_to_string m = Format.asprintf "%a" pp_access m
