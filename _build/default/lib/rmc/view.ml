(* Physical views: finite maps from locations to timestamps.

   A thread's view records, per location, the latest write it has observed
   (the paper's [View ::= Loc -> Time], Section 2.3).  A location absent from
   the map has never been observed at all — this is strictly below the
   initialisation timestamp, so that non-atomic accesses by threads that have
   not even synchronised with the allocation are flagged as races. *)

type t = Timestamp.t Loc.Map.t

let bot : t = Loc.Map.empty

(* [unseen] is returned for locations the view has no entry for; it is below
   [Timestamp.init] so "observed the initialisation write" is expressible. *)
let unseen : Timestamp.t = -1
let get (v : t) (l : Loc.t) = match Loc.Map.find_opt l v with Some t -> t | None -> unseen
let observed v l = get v l >= Timestamp.init
let singleton l t : t = Loc.Map.singleton l t
let set (v : t) l t : t = Loc.Map.add l t v

(* Record an observation, keeping the view monotone: the entry only grows. *)
let extend (v : t) l t : t =
  Loc.Map.update l
    (function None -> Some t | Some t' -> Some (Timestamp.max t t'))
    v

let join (a : t) (b : t) : t =
  Loc.Map.union (fun _ x y -> Some (Timestamp.max x y)) a b

let leq (a : t) (b : t) =
  Loc.Map.for_all (fun l t -> Timestamp.leq t (get b l)) a

let equal (a : t) (b : t) = Loc.Map.equal Timestamp.equal a b

let pp ppf (v : t) =
  Format.fprintf ppf "{@[%a@]}"
    (Format.pp_print_seq
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (l, t) -> Format.fprintf ppf "%a@@%a" Loc.pp l Timestamp.pp t))
    (Loc.Map.to_seq v)

let to_string v = Format.asprintf "%a" pp v
let cardinal (v : t) = Loc.Map.cardinal v
let fold f (v : t) acc = Loc.Map.fold f v acc
