(** Write messages: one per write, carrying the release views the writer
    attached (physical and logical).

    Histories store messages behind refs because the machine patches a
    commit write's logical view in the same atomic step that creates the
    event (see {!Compass_machine.Machine}). *)

type t = {
  loc : Loc.t;
  ts : Timestamp.t;
  value : Value.t;
  view : View.t;  (** physical release view *)
  lview : Lview.t;  (** logical release view *)
  wtid : int;  (** writing thread, for traces; [-1] = initialisation *)
}

val make :
  loc:Loc.t ->
  ts:Timestamp.t ->
  value:Value.t ->
  view:View.t ->
  lview:Lview.t ->
  wtid:int ->
  t

val init : loc:Loc.t -> value:Value.t -> t
(** the initialisation write at {!Timestamp.init} *)

val pp : Format.formatter -> t -> unit
