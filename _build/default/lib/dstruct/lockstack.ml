open Compass_rmc
open Compass_event
open Compass_machine
open Prog.Syntax

(* Coarse-grained lock-based stack — the stack-side SC baseline; see
   Lockqueue for the rationale.  Also provides the try-operations, so it
   can serve as an (elimination-free) base stack in composition tests:
   its try ops never fail on contention — they just wait for the lock. *)

(* Block: [0] lock, [1] top index, [2..2+cap) slots (pointers to
   [value; eid] cells). *)
type t = { base : Loc.t; capacity : int; graph : Graph.t; fuel : int }

let default_fuel = 16

let create ?(capacity = 8) ?(fuel = default_fuel) m ~name =
  let graph = Machine.new_graph m ~name in
  let base = Machine.alloc m ~name (capacity + 2) in
  ignore
    (Machine.solo m
       (Prog.returning_unit
          (let* () = Prog.store base (Value.Int 0) Mode.Na in
           Prog.store (Loc.shift base 1) (Value.Int 0) Mode.Na)));
  { base; capacity; graph; fuel }

let graph t = t.graph
let lock_cell t = t.base
let top_cell t = Loc.shift t.base 1
let slot t i = Loc.shift t.base (2 + i)

let lock t =
  Prog.with_fuel ~fuel:t.fuel ~what:"lockstack-lock" (fun () ->
      let* _ = Prog.await (lock_cell t) Mode.Rlx (Value.equal (Value.Int 0)) in
      let* _, ok =
        Prog.cas (lock_cell t) ~expected:(Value.Int 0) ~desired:(Value.Int 1)
          Mode.AcqRel
      in
      Prog.return (if ok then Some () else None))

let unlock t = Prog.store (lock_cell t) (Value.Int 0) Mode.Rel

let push ?(extra = fun _ -> []) t v =
  let* e = Prog.reserve in
  let* cell = Prog.alloc ~name:"cell" 2 in
  let* () = Prog.store cell v Mode.Na in
  let* () = Prog.store (Loc.shift cell 1) (Value.Int e) Mode.Na in
  let* () = lock t in
  let* tp = Prog.load (top_cell t) Mode.Na in
  let tp = Value.to_int_exn tp in
  if tp >= t.capacity then raise (Prog.Out_of_fuel "lockstack-capacity")
  else
    let* () = Prog.store (slot t tp) (Value.Ptr cell) Mode.Na in
    let commit =
      Commit.compose
        (Commit.always ~obj:(Graph.obj t.graph) (fun _ -> (e, Event.Push v)))
        extra
    in
    let* () = Prog.store (top_cell t) (Value.Int (tp + 1)) Mode.Na ~commit in
    unlock t

let pop ?(extra = fun _ -> []) t =
  let* d = Prog.reserve in
  let obj = Graph.obj t.graph in
  let* () = lock t in
  let* tp = Prog.load (top_cell t) Mode.Na in
  let tp = Value.to_int_exn tp in
  if tp = 0 then
    let empty_commit =
      Commit.compose
        (fun _ -> [ Commit.spec ~obj [ Commit.ev d Event.EmpPop ] ])
        extra
    in
    let* _ = Prog.load (top_cell t) Mode.Na ~commit:empty_commit in
    let* () = unlock t in
    Prog.return Value.Null
  else
    let* cellp = Prog.load (slot t (tp - 1)) Mode.Na in
    let* v = Prog.load (Value.to_loc_exn cellp) Mode.Na in
    let* ev = Prog.load (Loc.shift (Value.to_loc_exn cellp) 1) Mode.Na in
    let e = Value.to_int_exn ev in
    let commit =
      Commit.compose
        (Commit.always ~obj ~so:(fun _ -> [ (e, d) ]) (fun _ -> (d, Event.Pop v)))
        extra
    in
    let* () = Prog.store (top_cell t) (Value.Int (tp - 1)) Mode.Na ~commit in
    let* () = unlock t in
    Prog.return v

let instantiate : Iface.stack_factory =
  {
    Iface.s_name = "lock-stack";
    make_stack =
      (fun m ~name ->
        let t = create m ~name in
        {
          Iface.s_kind = "lock-stack";
          s_graph = t.graph;
          push = (fun v -> push t v);
          pop = (fun () -> pop t);
          try_push =
            (fun v -> Prog.map (push t v) (fun () -> Value.Int 1));
          try_pop = (fun () -> pop t);
        });
  }
