open Compass_rmc
open Compass_event
open Compass_machine

(** Coarse-grained lock-based queue — the SC baseline: every operation
    holds a spinlock throughout, all data is non-atomic under it.  This is
    the limit case of Section 3.1's "sufficient external synchronisation":
    it satisfies even the SC-strength spec ([Sc_abs]), which no relaxed
    implementation does (experiment E2's top row). *)

type t

val default_fuel : int

val create : ?capacity:int -> ?fuel:int -> Machine.t -> name:string -> t
val graph : t -> Graph.t

val enq :
  ?extra:(Commit.spec list -> Commit.spec list) -> t -> Value.t -> unit Prog.t

val deq : ?extra:(Commit.spec list -> Commit.spec list) -> t -> Value.t Prog.t
val instantiate : Iface.queue_factory
