open Compass_machine

(** Test-and-set spinlock: a substrate self-test, and the tool for
    running a library "in an SC fashion" (paper, Section 3.1). *)

type t

val create : Machine.t -> name:string -> t
val lock : ?fuel:int -> t -> unit Prog.t
val unlock : t -> unit Prog.t
val with_lock : ?fuel:int -> t -> 'a Prog.t -> 'a Prog.t
