lib/dstruct/spinlock.mli: Compass_machine Machine Prog
