lib/dstruct/iface.mli: Compass_event Compass_machine Compass_rmc Graph Machine Prog Value
