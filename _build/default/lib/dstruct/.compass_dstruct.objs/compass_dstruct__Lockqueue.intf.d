lib/dstruct/lockqueue.mli: Commit Compass_event Compass_machine Compass_rmc Graph Iface Machine Prog Value
