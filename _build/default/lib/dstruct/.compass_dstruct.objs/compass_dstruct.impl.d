lib/dstruct/compass_dstruct.ml: Chaselev Elimination Exchanger Exchanger_array Hwqueue Iface Lockqueue Lockstack Msqueue Msqueue_fences Spinlock Treiber
