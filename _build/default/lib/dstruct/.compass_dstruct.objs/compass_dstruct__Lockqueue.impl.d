lib/dstruct/lockqueue.ml: Commit Compass_event Compass_machine Compass_rmc Event Graph Iface Loc Machine Mode Prog Value
