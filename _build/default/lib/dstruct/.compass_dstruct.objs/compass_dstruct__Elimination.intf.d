lib/dstruct/elimination.mli: Compass_event Compass_machine Compass_rmc Exchanger Graph Hashtbl Iface Machine Prog Registry Treiber Value
