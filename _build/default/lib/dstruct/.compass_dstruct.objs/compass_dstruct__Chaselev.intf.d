lib/dstruct/chaselev.mli: Commit Compass_event Compass_machine Compass_rmc Graph Loc Machine Prog Value
