lib/dstruct/hwqueue.mli: Commit Compass_event Compass_machine Compass_rmc Graph Iface Machine Prog Value
