lib/dstruct/spinlock.ml: Compass_machine Compass_rmc Loc Machine Mode Prog Value
