lib/dstruct/hwqueue.ml: Commit Compass_event Compass_machine Compass_rmc Event Graph Hashtbl Iface Loc Machine Mode Prog Value
