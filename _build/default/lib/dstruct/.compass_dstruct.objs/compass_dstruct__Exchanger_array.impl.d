lib/dstruct/exchanger_array.ml: Array Compass_event Compass_machine Compass_rmc Exchanger Graph Iface Machine Printf Prog Value
