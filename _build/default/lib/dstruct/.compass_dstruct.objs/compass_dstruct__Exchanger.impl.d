lib/dstruct/exchanger.ml: Commit Compass_event Compass_machine Compass_rmc Event Format Graph Iface Loc Lview Machine Mode Prog Value
