lib/dstruct/chaselev.ml: Commit Compass_event Compass_machine Compass_rmc Event Format Graph Hashtbl Loc Machine Mode Prog Value
