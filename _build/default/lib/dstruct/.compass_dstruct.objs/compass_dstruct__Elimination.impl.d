lib/dstruct/elimination.ml: Commit Compass_event Compass_machine Compass_rmc Event Exchanger Graph Hashtbl Iface List Machine Prog Registry Treiber Value
