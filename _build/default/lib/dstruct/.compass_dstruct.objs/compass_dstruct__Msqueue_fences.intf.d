lib/dstruct/msqueue_fences.mli: Commit Compass_event Compass_machine Compass_rmc Graph Iface Machine Prog Value
