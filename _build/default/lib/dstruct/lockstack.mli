open Compass_rmc
open Compass_event
open Compass_machine

(** Coarse-grained lock-based stack — see {!Lockqueue}.  Its try
    operations never fail on contention (they wait for the lock). *)

type t

val default_fuel : int

val create : ?capacity:int -> ?fuel:int -> Machine.t -> name:string -> t
val graph : t -> Graph.t

val push :
  ?extra:(Commit.spec list -> Commit.spec list) -> t -> Value.t -> unit Prog.t

val pop : ?extra:(Commit.spec list -> Commit.spec list) -> t -> Value.t Prog.t
val instantiate : Iface.stack_factory
