open Compass_rmc
open Compass_event
open Compass_machine

(** A single-slot exchanger (the core of Scherer-Lea-Scott's elimination
    channel) with the paper's helping discipline (Section 4.2) realised
    operationally: the helper's hole-CAS is the commit point of BOTH
    exchanges — helpee first (with the views released at its offer, the
    operational reading of Figure 5's [V1]/[M']), then the helper — with
    symmetric so edges, in one atomic machine step.  The helpee learns the
    completed graph when it acquire-reads the filled hole (the paper's
    local postcondition).  A successful retract CAS is the commit point of
    a failed exchange. *)

type t

val default_fuel : int

val create : ?fuel:int -> ?graph:Graph.t -> Machine.t -> name:string -> t
(** [graph] shares an event graph across several slots — the array of
    exchangers (Section 4.1) is just more slots on one graph *)

val graph : t -> Graph.t

val exchange_attempt :
  ?extra:(Commit.spec list -> Commit.spec list) ->
  t ->
  e1:int ->
  my_tid:int ->
  Value.t ->
  Value.t option Prog.t
(** one attempt on this slot: [Some v2] done ([Null] = committed failure),
    [None] = contention, try again (possibly on another slot) *)

val exchange :
  ?extra:(Commit.spec list -> Commit.spec list) -> t -> Value.t -> Value.t Prog.t
(** [exchange t v] offers [v] (must not be [Null]); returns the partner's
    value, or [Null] if the exchange failed.
    @raise Invalid_argument on a [Null] offer *)

val instantiate : Machine.t -> name:string -> Iface.exchanger
