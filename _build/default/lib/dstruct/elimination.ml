open Compass_rmc
open Compass_event
open Compass_machine
open Prog.Syntax

(* Elimination stack [Hendler, Shavit & Yerushalmi, SPAA'04], composed from
   a base Treiber stack and an exchanger exactly as in the paper's
   Section 4.1:

     try_push(s, v) ::= if try_push'(s.base, v) then true
                        else exchange(s.ex, v) == SENTINEL
     try_pop(s)     ::= let v = try_pop'(s.base) in
                        if v != FAIL_RACE then v
                        else let v' = exchange(s.ex, SENTINEL) in
                             if v' ∉ {SENTINEL, ⊥} then v' else FAIL_RACE

   The implementation adds *no* atomic instructions of its own; its events
   are grafted onto the base structures' commit points through the [extra]
   commit hooks — the executable form of the paper's simulation argument:

   - a base-stack Push/Pop/EmpPop commit simultaneously commits the
     corresponding ES event (same atomic step);
   - a successful exchange between a value [v] and SENTINEL commits an ES
     [Push v] and an ES [Pop v] *in the same atomic step* as the
     exchanger's own pair — the eliminated element is pushed and popped at
     once, so no concurrent ES operation can observe the intermediate
     state, which is what preserves LIFO;
   - value-value and SENTINEL-SENTINEL matches, and failed exchanges, add
     no ES events (the callers retry).

   Ghost state: a table mapping base-stack push event ids to ES push event
   ids, so that a base pop's so edge can be translated to the ES graph —
   the simulation relation of the proof, as data. *)

type t = {
  base : Treiber.t;
  ex : Exchanger.t;
  graph : Graph.t;
  reg : Registry.t;
  push_map : (int, int) Hashtbl.t;  (** base push eid -> ES push eid *)
  fuel : int;
}

let default_fuel = 8

let create ?(fuel = default_fuel) m ~name =
  let graph = Machine.new_graph m ~name in
  let base = Treiber.create m ~name:(name ^ ".base") in
  let ex = Exchanger.create m ~name:(name ^ ".ex") in
  {
    base;
    ex;
    graph;
    reg = Machine.registry m;
    push_map = Hashtbl.create 16;
    fuel;
  }

let graph t = t.graph

(* -- commit hooks ----------------------------------------------------------- *)

(* Translate a base-stack commit into an ES commit (same step). *)
let on_base t : Commit.spec list -> Commit.spec list =
 fun base_specs ->
  List.concat_map
    (fun (spec : Commit.spec) ->
      List.concat_map
        (fun (es : Commit.ev_spec) ->
          match es.Commit.typ with
          | Event.Push v ->
              let es_e = Registry.reserve t.reg in
              Hashtbl.replace t.push_map es.Commit.eid es_e;
              [ Commit.spec ~obj:(Graph.obj t.graph) [ Commit.ev es_e (Event.Push v) ] ]
          | Event.Pop v ->
              let es_d = Registry.reserve t.reg in
              let so =
                List.filter_map
                  (fun (f, _) ->
                    match Hashtbl.find_opt t.push_map f with
                    | Some es_f -> Some (es_f, es_d)
                    | None -> None)
                  spec.Commit.so
              in
              [ Commit.spec ~obj:(Graph.obj t.graph) [ Commit.ev es_d (Event.Pop v) ] ~so ]
          | Event.EmpPop ->
              let es_d = Registry.reserve t.reg in
              [ Commit.spec ~obj:(Graph.obj t.graph) [ Commit.ev es_d Event.EmpPop ] ]
          | _ -> [])
        spec.Commit.events)
    base_specs

(* Translate a successful v/SENTINEL exchange into an eliminated ES
   push-pop pair (committed in the same step, push first). *)
let on_exchange t : Commit.spec list -> Commit.spec list =
 fun base_specs ->
  List.concat_map
    (fun (spec : Commit.spec) ->
      match spec.Commit.events with
      | [ helpee; helper ] -> (
          match (helpee.Commit.typ, helper.Commit.typ) with
          | Event.Exchange (v2, s2), Event.Exchange (v1, s1)
            when (Value.equal s2 Value.Sentinel && not (Value.equal v2 Value.Sentinel))
                 || (Value.equal s1 Value.Sentinel && not (Value.equal v1 Value.Sentinel))
            ->
              (* Exactly one side gave SENTINEL (the popper); the other
                 gave the value (the pusher). *)
              let pushed, pusher_tid, popper_tid =
                if Value.equal s2 Value.Sentinel then
                  (* helpee gave v2 (value), helper gave SENTINEL *)
                  (v2, helpee.Commit.tid, helper.Commit.tid)
                else (v1, helper.Commit.tid, helpee.Commit.tid)
              in
              if Value.equal pushed Value.Sentinel then []
              else begin
                let es_e = Registry.reserve t.reg in
                let es_d = Registry.reserve t.reg in
                [
                  Commit.spec ~obj:(Graph.obj t.graph)
                    [
                      Commit.ev es_e (Event.Push pushed) ?tid:pusher_tid;
                      Commit.ev es_d (Event.Pop pushed) ?tid:popper_tid;
                    ]
                    ~so:[ (es_e, es_d) ];
                ]
              end
          | _ -> [])
      | _ -> [])
    base_specs

(* -- operations (the paper's code, verbatim) --------------------------------- *)

let try_push t v =
  let* r = Treiber.try_push ~extra:(on_base t) t.base v in
  match r with
  | Value.Int 1 -> Prog.return (Value.Int 1)
  | _ ->
      let* v' = Exchanger.exchange ~extra:(on_exchange t) t.ex v in
      Prog.return
        (if Value.equal v' Value.Sentinel then Value.Int 1 else Value.Fail)

let try_pop t =
  let* v = Treiber.try_pop ~extra:(on_base t) t.base in
  if not (Value.equal v Value.Fail) then Prog.return v
  else
    let* v' = Exchanger.exchange ~extra:(on_exchange t) t.ex Value.Sentinel in
    if not (Value.equal v' Value.Sentinel || Value.equal v' Value.Null) then
      Prog.return v'
    else Prog.return Value.Fail

let push t v =
  Prog.with_fuel ~fuel:t.fuel ~what:"es-push" (fun () ->
      let* r = try_push t v in
      Prog.return (if Value.equal r (Value.Int 1) then Some () else None))

let pop t =
  Prog.with_fuel ~fuel:t.fuel ~what:"es-pop" (fun () ->
      let* v = try_pop t in
      if Value.equal v Value.Fail then Prog.return None else Prog.return (Some v))

let instantiate : Iface.stack_factory =
  {
    Iface.s_name = "elimination";
    make_stack =
      (fun m ~name ->
        let t = create m ~name in
        {
          Iface.s_kind = "elimination";
          s_graph = t.graph;
          push = (fun v -> push t v);
          pop = (fun () -> pop t);
          try_push = (fun v -> try_push t v);
          try_pop = (fun () -> try_pop t);
        });
  }
