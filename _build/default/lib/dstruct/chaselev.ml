open Compass_rmc
open Compass_event
open Compass_machine
open Prog.Syntax

(* Chase-Lev work-stealing deque [Chase & Lev, SPAA'05], with the C11
   access modes of Le, Pop, Cohen & Zappa Nardelli [PPoPP'13] — the
   paper's named future work (Section 6 cites exactly these two papers;
   we reproduce it as experiment E8).

   The owner pushes and pops at the *bottom*; thieves steal at the *top*.
   The take/steal race on the last element is resolved by a CAS on [top]
   guarded by SC fences — the classic store-buffering-shaped race that is
   *incorrect* with weaker fences.  Our machine models SC fences with a
   global SC view, and the model checker confirms both directions: with
   [F_sc] no element is ever lost or duplicated; weaken the fences to
   acq-rel (set [weak_fences] — an ablation used by the tests) and the
   checker exhibits the double-take.

   This bounded variant indexes the buffer by absolute position (no
   wrap-around), eliminating ABA concerns exactly like our Herlihy-Wing
   queue; the synchronisation skeleton is unchanged.  The buffer slots
   hold pointers to [value; eid] cells; the ghost table carries (value,
   event id) into the commit functions, as in Hwqueue.

   Access modes (following Le et al.):
   - push:  load_rlx bottom; load_acq top; slot :=rlx cell;
            fence_rel; bottom :=rlx b+1  (the commit point);
   - take:  bottom :=rlx b-1; fence_sc; t = load_rlx top;
            - t < b-1:  plain take at the bottom (commit at the slot read);
            - t = b-1:  last element: CAS_sc top (commit point; failure is
              the empty-pop commit — a thief won);
            - t > b-1:  empty (commit at the top load); bottom restored;
   - steal: load_acq top; fence_sc; load_acq bottom;
            t < b: read slot, CAS_sc top (commit point; failure aborts and
            retries under fuel); else empty (commit at the bottom load). *)

type t = {
  top : Loc.t;
  bottom : Loc.t;
  buf : Loc.t;
  capacity : int;
  graph : Graph.t;
  ghost : (int, Value.t * int) Hashtbl.t;  (** cell base -> (value, push id) *)
  fuel : int;
  sc_fence : Mode.fence;  (** [F_sc], or [F_acqrel] for the broken ablation *)
}

let default_fuel = 8

let create ?(capacity = 8) ?(fuel = default_fuel) ?(weak_fences = false) m
    ~name =
  let graph = Machine.new_graph m ~name in
  let base = Machine.alloc m ~name (capacity + 2) in
  ignore
    (Machine.solo m
       (Prog.returning_unit
          (let* () = Prog.store base (Value.Int 0) Mode.Na in
           let* () = Prog.store (Loc.shift base 1) (Value.Int 0) Mode.Na in
           Prog.for_ 0 (capacity - 1) (fun i ->
               Prog.store (Loc.shift base (2 + i)) Value.Null Mode.Na))));
  {
    top = base;
    bottom = Loc.shift base 1;
    buf = Loc.shift base 2;
    capacity;
    graph;
    ghost = Hashtbl.create 16;
    fuel;
    sc_fence = (if weak_fences then Mode.F_acqrel else Mode.F_sc);
  }

let graph t = t.graph
let slot t i = Loc.shift t.buf i
let bottom_loc t = t.bottom

let take_commit t ~obj ~d ~extra : Commit.fn =
  Commit.compose
    (fun (r : Commit.op_result) ->
      match r.value with
      | Value.Ptr cell ->
          let v, e = Hashtbl.find t.ghost (Loc.base cell) in
          [ Commit.spec ~obj [ Commit.ev d (Event.Pop v) ] ~so:[ (e, d) ] ]
      | _ -> [])
    extra

(* Owner: push at the bottom. *)
let push ?(extra = fun _ -> []) t v =
  let* e = Prog.reserve in
  let* cell = Prog.alloc ~name:"task" 2 in
  let* () = Prog.store cell v Mode.Na in
  let* () = Prog.store (Loc.shift cell 1) (Value.Int e) Mode.Na in
  Hashtbl.replace t.ghost (Loc.base cell) (v, e);
  let* b = Prog.load t.bottom Mode.Rlx in
  let b = Value.to_int_exn b in
  let* tp = Prog.load t.top Mode.Acq in
  let tp = Value.to_int_exn tp in
  if b >= t.capacity || b - tp >= t.capacity then
    raise (Prog.Out_of_fuel "chaselev-capacity")
  else
    let* () = Prog.store (slot t b) (Value.Ptr cell) Mode.Rlx in
    let* () = Prog.fence Mode.F_rel in
    let commit =
      Commit.compose
        (Commit.always ~obj:(Graph.obj t.graph) (fun _ -> (e, Event.Push v)))
        extra
    in
    Prog.store t.bottom (Value.Int (b + 1)) Mode.Rlx ~commit

(* Owner: take from the bottom.  Returns the value or [Null] (empty). *)
let pop ?(extra = fun _ -> []) t =
  let* d = Prog.reserve in
  let obj = Graph.obj t.graph in
  let* b0 = Prog.load t.bottom Mode.Rlx in
  let b = Value.to_int_exn b0 - 1 in
  let* () = Prog.store t.bottom (Value.Int b) Mode.Rlx in
  let* () = Prog.fence t.sc_fence in
  let empty_commit =
    (* t > b: the deque was empty — this top read is the commit point. *)
    Commit.compose
      (fun (r : Commit.op_result) ->
        if Value.to_int_exn r.value > b then
          [ Commit.spec ~obj [ Commit.ev d Event.EmpPop ] ]
        else [])
      extra
  in
  let* tpv = Prog.load t.top Mode.Rlx ~commit:empty_commit in
  let tp = Value.to_int_exn tpv in
  if tp < b then
    (* More than one element: the bottom one is ours alone. *)
    let* x = Prog.load (slot t b) Mode.Rlx ~commit:(take_commit t ~obj ~d ~extra) in
    match x with
    | Value.Ptr cell -> Prog.load (Loc.shift cell 0) Mode.Na
    | w -> failwith (Format.asprintf "chaselev: corrupt slot %a" Value.pp w)
  else if tp = b then begin
    (* Last element: race the thieves with a CAS on top.  Success commits
       the pop; failure means a thief took it — an empty pop. *)
    let* x = Prog.load (slot t b) Mode.Rlx in
    let* () = Prog.fence t.sc_fence in
    let cas_commit =
      Commit.compose
        (fun (r : Commit.op_result) ->
          if r.success then
            match x with
            | Value.Ptr cell ->
                let v, e = Hashtbl.find t.ghost (Loc.base cell) in
                [ Commit.spec ~obj [ Commit.ev d (Event.Pop v) ] ~so:[ (e, d) ] ]
            | _ -> []
          else [ Commit.spec ~obj [ Commit.ev d Event.EmpPop ] ])
        extra
    in
    let* _, ok =
      Prog.cas t.top ~expected:(Value.Int tp) ~desired:(Value.Int (tp + 1))
        Mode.AcqRel ~commit:cas_commit
    in
    let* () = Prog.store t.bottom (Value.Int (b + 1)) Mode.Rlx in
    if ok then
      match x with
      | Value.Ptr cell -> Prog.load (Loc.shift cell 0) Mode.Na
      | w -> failwith (Format.asprintf "chaselev: corrupt slot %a" Value.pp w)
    else Prog.return Value.Null
  end
  else
    (* Empty (the commit already happened at the top load). *)
    let* () = Prog.store t.bottom (Value.Int (b + 1)) Mode.Rlx in
    Prog.return Value.Null

(* Thief: steal from the top.  Returns the value or [Null] (empty);
   aborts (lost CAS races) retry under fuel. *)
let steal ?(extra = fun _ -> []) t =
  let* d = Prog.reserve in
  let obj = Graph.obj t.graph in
  Prog.with_fuel ~fuel:t.fuel ~what:"chaselev-steal" (fun () ->
      let* tpv = Prog.load t.top Mode.Acq in
      let tp = Value.to_int_exn tpv in
      let* () = Prog.fence t.sc_fence in
      let empty_commit =
        Commit.compose
          (fun (r : Commit.op_result) ->
            if tp >= Value.to_int_exn r.value then
              [ Commit.spec ~obj [ Commit.ev d Event.EmpSteal ] ]
            else [])
          extra
      in
      let* bv = Prog.load t.bottom Mode.Acq ~commit:empty_commit in
      let b = Value.to_int_exn bv in
      if tp >= b then Prog.return (Some Value.Null)
      else
        let* x = Prog.load (slot t tp) Mode.Rlx in
        let steal_commit =
          Commit.compose
            (fun (r : Commit.op_result) ->
              if r.success then
                match x with
                | Value.Ptr cell ->
                    let v, e = Hashtbl.find t.ghost (Loc.base cell) in
                    [
                      Commit.spec ~obj
                        [ Commit.ev d (Event.Steal v) ]
                        ~so:[ (e, d) ];
                    ]
                | _ -> []
              else [])
            extra
        in
        let* _, ok =
          Prog.cas t.top ~expected:(Value.Int tp)
            ~desired:(Value.Int (tp + 1))
            Mode.AcqRel ~commit:steal_commit
        in
        if ok then
          match x with
          | Value.Ptr cell ->
              let* v = Prog.load (Loc.shift cell 0) Mode.Na in
              Prog.return (Some v)
          | w -> failwith (Format.asprintf "chaselev: corrupt slot %a" Value.pp w)
        else Prog.return None (* abort: lost to another thief or the owner *))
