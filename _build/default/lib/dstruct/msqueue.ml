open Compass_rmc
open Compass_event
open Compass_machine
open Prog.Syntax

(* Michael-Scott queue [Michael & Scott, PODC'96] in pure release-acquire,
   as verified in the paper against the LATabs-hb specs (Section 3.2:
   "a purely release-acquire implementation of the Michael-Scott queue
   satisfies the LATabs-hb specs").

   Access modes: purely release-acquire — every CAS is acq-rel and every
   pointer load is an acquire.  The release side of the dequeue's head CAS
   matters: a later dequeuer reaches nodes *through head*, not through the
   enqueuers' next-chain, so head must carry the dequeuer's accumulated
   observations (dropping it to a plain acquire CAS lets a second dequeuer
   read a node's uninitialised next field — our race detector catches
   exactly this if you try).

   Commit points:
   - enqueue: the successful CAS on the predecessor's [next] field;
   - successful dequeue: the successful CAS on [head];
   - empty dequeue: the acquire load of [head->next] that returned null. *)

(* Node block: [0] value, [1] event id, [2] next. *)
let fval p = Loc.shift (Value.to_loc_exn p) 0
let feid p = Loc.shift (Value.to_loc_exn p) 1
let fnext p = Loc.shift (Value.to_loc_exn p) 2

type t = { head : Loc.t; tail : Loc.t; graph : Graph.t; fuel : int }

let default_fuel = 32

let create ?(fuel = default_fuel) m ~name =
  let graph = Machine.new_graph m ~name in
  let q = Machine.alloc m ~name 2 in
  let sentinel = Machine.alloc m ~name:(name ^ ".sent") 3 in
  let () =
    ignore
      (Machine.solo m
         (Prog.returning_unit
            (let* () = Prog.store (Loc.shift sentinel 0) (Value.Int 0) Mode.Na in
             let* () = Prog.store (Loc.shift sentinel 1) (Value.Int (-1)) Mode.Na in
             let* () = Prog.store (Loc.shift sentinel 2) Value.Null Mode.Na in
             let* () = Prog.store (Loc.shift q 0) (Value.Ptr sentinel) Mode.Na in
             Prog.store (Loc.shift q 1) (Value.Ptr sentinel) Mode.Na)))
  in
  { head = Loc.shift q 0; tail = Loc.shift q 1; graph; fuel }

let graph t = t.graph

let enq ?(extra = fun _ -> []) t v =
  let* e = Prog.reserve in
  let* n = Prog.alloc ~name:"node" 3 in
  let np = Value.Ptr n in
  let* () = Prog.store (Loc.shift n 0) v Mode.Na in
  let* () = Prog.store (Loc.shift n 1) (Value.Int e) Mode.Na in
  let* () = Prog.store (Loc.shift n 2) Value.Null Mode.Na in
  let commit =
    Commit.compose
      (Commit.on_success ~obj:(Graph.obj t.graph) (fun _ -> (e, Event.Enq v)))
      extra
  in
  Prog.with_fuel ~fuel:t.fuel ~what:"ms-enq" (fun () ->
      let* tl = Prog.load t.tail Mode.Acq in
      let* nx = Prog.load (fnext tl) Mode.Acq in
      match nx with
      | Value.Null ->
          let* _, ok = Prog.cas (fnext tl) ~expected:Value.Null ~desired:np Mode.AcqRel ~commit in
          if ok then
            (* Swing the tail (best effort; others may help). *)
            let* _ = Prog.cas t.tail ~expected:tl ~desired:np Mode.AcqRel in
            Prog.return (Some ())
          else Prog.return None
      | _ ->
          (* Tail is lagging: help swing it, then retry. *)
          let* _ = Prog.cas t.tail ~expected:tl ~desired:nx Mode.AcqRel in
          Prog.return None)

let deq ?(extra = fun _ -> []) t =
  let* d = Prog.reserve in
  let obj = Graph.obj t.graph in
  Prog.with_fuel ~fuel:t.fuel ~what:"ms-deq" (fun () ->
      let* h = Prog.load t.head Mode.Acq in
      let empty_commit =
        Commit.compose
          (fun (r : Commit.op_result) ->
            if Value.equal r.value Value.Null then
              [ Commit.spec ~obj [ Commit.ev d Event.EmpDeq ] ]
            else [])
          extra
      in
      let* nx = Prog.load (fnext h) Mode.Acq ~commit:empty_commit in
      match nx with
      | Value.Null -> Prog.return (Some Value.Null)
      | _ ->
          let* v = Prog.load (fval nx) Mode.Na in
          let* ev = Prog.load (feid nx) Mode.Na in
          let e = Value.to_int_exn ev in
          let commit =
            Commit.compose
              (Commit.on_success ~obj
                 ~so:(fun _ -> [ (e, d) ])
                 (fun _ -> (d, Event.Deq v)))
              extra
          in
          let* _, ok = Prog.cas t.head ~expected:h ~desired:nx Mode.AcqRel ~commit in
          if ok then Prog.return (Some v) else Prog.return None)

let instantiate : Iface.queue_factory =
  {
    Iface.q_name = "ms-queue";
    make_queue =
      (fun m ~name ->
        let t = create m ~name in
        {
          Iface.q_kind = "ms-queue";
          q_graph = t.graph;
          enq = (fun v -> enq t v);
          deq = (fun () -> deq t);
        });
  }
