open Compass_rmc
open Compass_event
open Compass_machine

(** Elimination stack [Hendler, Shavit & Yerushalmi, SPAA'04], composed
    from a base Treiber stack and an exchanger exactly as in the paper's
    Section 4.1, with {e no new atomic instructions}: its events are
    grafted onto the parts' commit points through the [extra] commit
    hooks — the executable form of the simulation argument.  A successful
    value/SENTINEL exchange commits an ES push and pop {e in the same
    atomic step} as the exchanger's own pair, which is what preserves
    LIFO.

    The record is transparent so composition experiments can check the
    sub-libraries' graphs alongside the composed one. *)

type t = {
  base : Treiber.t;
  ex : Exchanger.t;
  graph : Graph.t;
  reg : Registry.t;
  push_map : (int, int) Hashtbl.t;
      (** base push event id -> ES push event id: the simulation relation,
          as data *)
  fuel : int;
}

val default_fuel : int

val create : ?fuel:int -> Machine.t -> name:string -> t
val graph : t -> Graph.t

val try_push : t -> Value.t -> Value.t Prog.t
(** the paper's [try_push]: [Int 1] on success, [Fail] on contention *)

val try_pop : t -> Value.t Prog.t
(** the paper's [try_pop]: the value, [Null] for empty, [Fail] on
    contention *)

val push : t -> Value.t -> unit Prog.t
(** retry [try_push] under fuel *)

val pop : t -> Value.t Prog.t
val instantiate : Iface.stack_factory
