open Compass_rmc
open Compass_event
open Compass_machine

(** Michael-Scott queue [Michael & Scott, PODC'96], purely release-acquire
    — verified in the paper against the LATabs-hb specs (Section 3.2).

    Commit points: enqueue = the successful link CAS; successful dequeue =
    the head CAS; empty dequeue = the acquire load of [head->next] that
    returned null.  All CASes are acq-rel: the release side of the head
    CAS is load-bearing (a later dequeuer reaches nodes through head, not
    through the enqueuers' next-chain — weakening it to a plain acquire
    CAS is a genuine relaxed-memory bug that the race detector catches). *)

type t

val default_fuel : int

val create : ?fuel:int -> Machine.t -> name:string -> t
val graph : t -> Graph.t

val enq :
  ?extra:(Commit.spec list -> Commit.spec list) -> t -> Value.t -> unit Prog.t

val deq : ?extra:(Commit.spec list -> Commit.spec list) -> t -> Value.t Prog.t
(** returns the value, or [Null] for the empty case *)

val instantiate : Iface.queue_factory
