open Compass_rmc
open Compass_event
open Compass_machine

(** Herlihy-Wing queue [Herlihy & Wing, TOPLAS'90], the weak relaxed
    variant of Yacovet that the paper verifies against the LAThb specs
    (Section 3.2): release enqueues (FAA a slot, publish it), acquire
    dequeues (scan-and-swap), and deliberately no synchronisation among
    enqueues or among dequeues.

    This implementation cannot construct an abstract state at its commit
    points (FAA order diverges from publication order; the SC proof needs
    prophecy variables) — experiment E3 exhibits the LATabs failure while
    LAThb and offline linearisation hold. *)

type t

val create : ?capacity:int -> Machine.t -> name:string -> t
(** exceeding [capacity] discards the execution (the unbounded algorithm
    has no such behaviour) *)

val graph : t -> Graph.t

val enq :
  ?extra:(Commit.spec list -> Commit.spec list) -> t -> Value.t -> unit Prog.t

val deq : ?extra:(Commit.spec list -> Commit.spec list) -> t -> Value.t Prog.t
(** one full scan; [Null] (an empty dequeue) if nothing was found *)

val instantiate : Iface.queue_factory
