open Compass_rmc
open Compass_event
open Compass_machine

(** An array of exchangers (Section 4.1: the exchanger "can be
    implemented as an array of exchangers"): independent slots sharing
    one event graph, so the composite satisfies the same
    ExchangerConsistent spec.  Threads start at an id-derived slot and
    rotate on contention. *)

type t

val default_fuel : int

val create : ?slots:int -> ?fuel:int -> Machine.t -> name:string -> t
val graph : t -> Graph.t

val exchange :
  ?extra:(Commit.spec list -> Commit.spec list) -> t -> Value.t -> Value.t Prog.t

val instantiate : ?slots:int -> Machine.t -> name:string -> Iface.exchanger
