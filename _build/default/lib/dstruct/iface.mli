open Compass_rmc
open Compass_event
open Compass_machine

(** Implementation-generic handles.

    Clients and checkers are written against these records and take a
    factory choosing the implementation — the operational counterpart of
    the paper's modularity: a client verified against a spec works with
    any implementation satisfying it, and the experiments run each client
    against several implementations. *)

type queue = {
  q_kind : string;  (** implementation name, for reports *)
  q_graph : Graph.t;
  enq : Value.t -> unit Prog.t;
      (** enqueue; commits an [Enq v] event at its commit point *)
  deq : unit -> Value.t Prog.t;
      (** dequeue; the value, or [Value.Null] for the empty case; commits
          [Deq v] or [EmpDeq] *)
}

type stack = {
  s_kind : string;
  s_graph : Graph.t;
  push : Value.t -> unit Prog.t;
  pop : unit -> Value.t Prog.t;  (** [Value.Null] for the empty case *)
  try_push : Value.t -> Value.t Prog.t;
      (** single attempt: [Int 1] on success, [Fail] on contention — the
          paper's [try_push'] (Section 4.1) *)
  try_pop : unit -> Value.t Prog.t;
      (** single attempt: the value, [Null] for empty, [Fail] on
          contention — the paper's [try_pop'] *)
}

type exchanger = {
  x_kind : string;
  x_graph : Graph.t;
  exchange : Value.t -> Value.t Prog.t;
      (** [exchange v] gives [v] (must not be [Null]) and returns the
          partner's value, or [Null] if the exchange failed; matched pairs
          commit atomically together (Section 4.2) *)
}

type queue_factory = {
  q_name : string;
  make_queue : Machine.t -> name:string -> queue;
}

type stack_factory = {
  s_name : string;
  make_stack : Machine.t -> name:string -> stack;
}
