open Compass_rmc
open Compass_event
open Compass_machine

(** Treiber stack [Treiber'86], relaxed: release CAS pushes, acquire CAS
    pops — the access modes of the paper's Section 3.3, where this
    implementation is verified against the LAThist specs.  Our commit
    order {e is} the head's modification order, so it is usually already
    a valid linearisation (experiment E5). *)

type t

val default_fuel : int

val create : ?fuel:int -> Machine.t -> name:string -> t
val graph : t -> Graph.t

val push :
  ?extra:(Commit.spec list -> Commit.spec list) -> t -> Value.t -> unit Prog.t

val pop : ?extra:(Commit.spec list -> Commit.spec list) -> t -> Value.t Prog.t
(** [Null] for the empty case *)

val try_push :
  ?extra:(Commit.spec list -> Commit.spec list) -> t -> Value.t -> Value.t Prog.t
(** single attempt: [Int 1] on success, [Fail] on contention — the
    paper's [try_push'] (Section 4.1) *)

val try_pop : ?extra:(Commit.spec list -> Commit.spec list) -> t -> Value.t Prog.t
(** single attempt: the value, [Null] for empty, [Fail] on contention *)

val instantiate : Iface.stack_factory
