open Compass_rmc
open Compass_event
open Compass_machine

(** Michael-Scott queue, fence-based: the same algorithm as {!Msqueue}
    with relaxed accesses and explicit release/acquire fences — the other
    half of ORC11's synchronisation vocabulary (iRC11's F_rel/F_acq rules,
    Section 5).  Spec-equivalent to the access-based version: it satisfies
    the same LATabs-hb specs, verifies the same MP client, and passes the
    same RC11 differential checks (fence-based sw is rebuilt independently
    by the axiomatic checker). *)

type t

val default_fuel : int

val create : ?fuel:int -> Machine.t -> name:string -> t
val graph : t -> Graph.t

val enq :
  ?extra:(Commit.spec list -> Commit.spec list) -> t -> Value.t -> unit Prog.t

val deq : ?extra:(Commit.spec list -> Commit.spec list) -> t -> Value.t Prog.t
val instantiate : Iface.queue_factory
