open Compass_rmc
open Compass_event
open Compass_machine

(** Chase-Lev work-stealing deque [Chase & Lev, SPAA'05] with the C11
    access modes of Le, Pop, Cohen & Zappa Nardelli [PPoPP'13] — the
    paper's named future work (Section 6), reproduced as experiment E8.

    The owner pushes/pops at the bottom, thieves steal at the top; the
    take/steal race on the last element is a CAS on [top] guarded by SC
    fences.  [weak_fences] substitutes acq-rel fences — the broken
    ablation in which the model checker exhibits the classic double-take.
    Bounded, non-circular variant (absolute buffer indices; exceeding the
    capacity discards the execution), same synchronisation skeleton. *)

type t

val default_fuel : int

val create :
  ?capacity:int -> ?fuel:int -> ?weak_fences:bool -> Machine.t -> name:string -> t

val graph : t -> Graph.t
val slot : t -> int -> Loc.t
val bottom_loc : t -> Loc.t

val push :
  ?extra:(Commit.spec list -> Commit.spec list) -> t -> Value.t -> unit Prog.t
(** owner only *)

val pop : ?extra:(Commit.spec list -> Commit.spec list) -> t -> Value.t Prog.t
(** owner only; [Null] for the empty case *)

val steal : ?extra:(Commit.spec list -> Commit.spec list) -> t -> Value.t Prog.t
(** thieves; [Null] for the empty case; lost CAS races retry under fuel *)
