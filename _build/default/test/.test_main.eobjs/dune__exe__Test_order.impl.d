test/test_order.ml: Alcotest Compass_event Helpers List Order QCheck
