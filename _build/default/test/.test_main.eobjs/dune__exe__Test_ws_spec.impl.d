test/test_ws_spec.ml: Alcotest Check Compass_event Compass_rmc Compass_spec Event Graph Helpers Linearize List Lview Styles View Ws_spec
