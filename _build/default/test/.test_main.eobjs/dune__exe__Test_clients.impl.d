test/test_clients.ml: Alcotest Compass_clients Compass_dstruct Compass_machine Explore Hwqueue List Litmus Machine Mp Mp_stack Msqueue Pipeline Resource_exchange Spsc_client Strong_fifo Treiber
