test/test_stack_spec.ml: Alcotest Check Compass_event Compass_rmc Compass_spec Event Graph Helpers List Lview Stack_spec View
