test/test_view.ml: Alcotest Compass_rmc Helpers List Lview Mode Msg QCheck Timestamp Tview View
