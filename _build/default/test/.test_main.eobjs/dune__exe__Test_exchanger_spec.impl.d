test/test_exchanger_spec.ml: Alcotest Check Compass_event Compass_rmc Compass_spec Event Exchanger_spec Graph Helpers List Lview Value View
