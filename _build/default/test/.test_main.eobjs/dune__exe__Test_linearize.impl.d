test/test_linearize.ml: Alcotest Check Compass_event Compass_spec Event Helpers Linearize List Option Stack_spec String
