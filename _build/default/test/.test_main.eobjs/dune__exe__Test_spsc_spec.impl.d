test/test_spsc_spec.ml: Alcotest Check Compass_event Compass_rmc Compass_spec Event Graph Helpers List Spsc_spec
