test/helpers.ml: Alcotest Compass_event Compass_rmc Event Graph List Loc Lview Printf QCheck QCheck_alcotest String Value View
