test/test_event.ml: Alcotest Compass_event Event Graph Helpers List Registry String
