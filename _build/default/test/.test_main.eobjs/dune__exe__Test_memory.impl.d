test/test_memory.ml: Alcotest Compass_rmc Helpers History List Loc Lview Memory Mode Msg Timestamp Tview Value View
