test/test_machine.ml: Alcotest Array Commit Compass_event Compass_machine Compass_rmc Event Format Graph Helpers Machine Mode Oracle Prog String Trace Value
