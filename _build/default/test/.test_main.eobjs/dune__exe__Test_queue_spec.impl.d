test/test_queue_spec.ml: Alcotest Check Compass_event Compass_spec Event Helpers List Queue_spec Styles
