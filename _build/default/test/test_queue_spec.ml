open Compass_event
open Compass_spec
open Helpers

(* QueueConsistent on hand-built graphs: each condition is exercised with a
   conforming and a violating graph. *)

let enq id v preds step = (id, Event.Enq (vi v), preds, step)
let deq id v preds step = (id, Event.Deq (vi v), preds, step)
let empdeq id preds step = (id, Event.EmpDeq, preds, step)

let conds vs = List.map (fun (c : Check.violation) -> c.Check.cond) vs

let has_cond c vs = List.mem c (conds vs)

let test_good_graph () =
  (* Two enqueues by one thread, dequeued FIFO. *)
  let g =
    mk_graph
      [
        enq 0 1 [] 1;
        enq 1 2 [ 0 ] 2;
        deq 2 1 [ 0; 1 ] 3;
        deq 3 2 [ 0; 1; 2 ] 4;
      ]
      [ (0, 2); (1, 3) ]
  in
  Alcotest.(check (list string)) "consistent" [] (conds (Queue_spec.consistent g));
  Alcotest.(check (list string)) "abs ok" [] (conds (Queue_spec.abstract_state g))

let test_matches () =
  let g = mk_graph [ enq 0 1 [] 1; deq 1 2 [ 0 ] 2 ] [ (0, 1) ] in
  Alcotest.(check bool) "value mismatch" true
    (has_cond "queue-matches" (Queue_spec.consistent g))

let test_uniq_double_dequeue () =
  let g =
    mk_graph
      [ enq 0 1 [] 1; deq 1 1 [ 0 ] 2; deq 2 1 [ 0; 1 ] 3 ]
      [ (0, 1); (0, 2) ]
  in
  Alcotest.(check bool) "element dequeued twice" true
    (has_cond "queue-uniq" (Queue_spec.consistent g))

let test_uniq_unmatched_dequeue () =
  let g = mk_graph [ deq 0 1 [] 1 ] [] in
  Alcotest.(check bool) "dequeue with no enqueue" true
    (has_cond "queue-uniq" (Queue_spec.consistent g))

let test_so_requires_lhb () =
  (* so edge without logview membership. *)
  let g = mk_graph [ enq 0 1 [] 1; deq 1 1 [] 2 ] [ (0, 1) ] in
  Alcotest.(check bool) "so not in lhb" true
    (has_cond "queue-so-lhb" (Queue_spec.consistent g))

let test_so_commit_order () =
  (* Dequeue committed before its enqueue. *)
  let g = mk_graph [ enq 0 1 [] 5; deq 1 1 [ 0 ] 2 ] [ (0, 1) ] in
  Alcotest.(check bool) "so against commit order" true
    (has_cond "queue-so-cix" (Queue_spec.consistent g))

let test_fifo_violation () =
  (* e0 -lhb-> e1, both visible; d dequeues e1 while e0 undequeued. *)
  let g =
    mk_graph
      [ enq 0 1 [] 1; enq 1 2 [ 0 ] 2; deq 2 2 [ 0; 1 ] 3 ]
      [ (1, 2) ]
  in
  Alcotest.(check bool) "fifo violation" true
    (has_cond "queue-fifo" (Queue_spec.consistent g))

let test_fifo_ok_unordered_enqueues () =
  (* Concurrent enqueues (no lhb between them): either dequeue order is
     allowed — the paper's weak FIFO. *)
  let g =
    mk_graph
      [ enq 0 1 [] 1; enq 1 2 [] 2; deq 2 2 [ 1 ] 3; deq 3 1 [ 0; 2 ] 4 ]
      [ (1, 2); (0, 3) ]
  in
  Alcotest.(check (list string)) "weak fifo allows it" []
    (conds (Queue_spec.consistent g))

let test_empdeq_violation () =
  (* An enqueue happens-before the empty dequeue and is undequeued. *)
  let g = mk_graph [ enq 0 1 [] 1; empdeq 1 [ 0 ] 2 ] [] in
  Alcotest.(check bool) "empdeq violation" true
    (has_cond "queue-empdeq" (Queue_spec.consistent g))

let test_empdeq_ok_after_consumption () =
  let g =
    mk_graph
      [ enq 0 1 [] 1; deq 1 1 [ 0 ] 2; empdeq 2 [ 0; 1 ] 3 ]
      [ (0, 1) ]
  in
  Alcotest.(check (list string)) "empdeq fine once consumed" []
    (conds (Queue_spec.consistent g))

let test_empdeq_ok_unseen_enqueue () =
  (* The enqueue is NOT in the empty dequeue's logical view: allowed (the
     weak behaviour the RMC spec permits). *)
  let g = mk_graph [ enq 0 1 [] 1; empdeq 1 [] 2 ] [] in
  Alcotest.(check (list string)) "unseen enqueue allows empty" []
    (conds (Queue_spec.consistent g))

let test_empdeq_needs_prior_consumption () =
  (* The matching dequeue commits AFTER the empty dequeue: still a
     violation at the empty dequeue's commit point. *)
  let g =
    mk_graph
      [ enq 0 1 [] 1; empdeq 1 [ 0 ] 2; deq 2 1 [ 0 ] 3 ]
      [ (0, 2) ]
  in
  Alcotest.(check bool) "later consumption does not justify" true
    (has_cond "queue-empdeq" (Queue_spec.consistent g))

let test_lhb_cix () =
  (* An event observing an event committed in a later step. *)
  let g = mk_graph [ enq 0 1 [ 1 ] 1; enq 1 2 [] 5 ] [] in
  Alcotest.(check bool) "lhb against commit order" true
    (has_cond "lhb-cix" (Queue_spec.consistent g))

(* -- abstract states --------------------------------------------------------- *)

let test_abs_fifo_violation () =
  (* Commit order: enq 1, enq 2, deq 2 — head at the dequeue is 1. *)
  let g =
    mk_graph
      [ enq 0 1 [] 1; enq 1 2 [ 0 ] 2; deq 2 2 [ 0; 1 ] 3 ]
      [ (1, 2) ]
  in
  Alcotest.(check bool) "latabs-fifo" true
    (has_cond "latabs-fifo" (Queue_spec.abstract_state g))

let test_abs_empty_default_lenient () =
  let g = mk_graph [ enq 0 1 [] 1; empdeq 1 [] 2 ] [] in
  Alcotest.(check (list string)) "RMC abs allows non-empty empdeq" []
    (conds (Queue_spec.abstract_state g));
  Alcotest.(check bool) "SC abs rejects it" true
    (has_cond "latabs-empty" (Queue_spec.abstract_state ~require_empty:true g))

let test_abs_deq_on_empty () =
  let g = mk_graph [ deq 0 1 [] 1; enq 1 1 [] 2 ] [ (1, 0) ] in
  Alcotest.(check bool) "dequeue before any enqueue" true
    (has_cond "latabs-nonempty" (Queue_spec.abstract_state g))

let test_abs_match_respects_so () =
  (* Two enqueues of the SAME value; the dequeue so-matches the second but
     the abstract head is the first. *)
  let g =
    mk_graph
      [ enq 0 7 [] 1; enq 1 7 [ 0 ] 2; deq 2 7 [ 0; 1 ] 3 ]
      [ (1, 2) ]
  in
  Alcotest.(check bool) "so-mismatched head" true
    (has_cond "latabs-match" (Queue_spec.abstract_state g))

(* Styles dispatch. *)
let test_styles_check () =
  let good =
    mk_graph [ enq 0 1 [] 1; deq 1 1 [ 0 ] 2 ] [ (0, 1) ]
  in
  List.iter
    (fun style ->
      Alcotest.(check (list string))
        (Styles.style_name style) []
        (conds (Styles.check style Styles.Queue good)))
    Styles.all_styles

let test_tally () =
  let t = Styles.fresh_tally () in
  Styles.tally_one t [];
  Styles.tally_one t [ Check.v "x" "boom" ];
  Alcotest.(check int) "execs" 2 t.Styles.execs;
  Alcotest.(check int) "failed" 1 t.Styles.failed;
  Alcotest.(check bool) "not satisfied" false (Styles.satisfied t)

let suite =
  [
    Alcotest.test_case "conforming graph" `Quick test_good_graph;
    Alcotest.test_case "queue-matches" `Quick test_matches;
    Alcotest.test_case "queue-uniq (double dequeue)" `Quick test_uniq_double_dequeue;
    Alcotest.test_case "queue-uniq (unmatched dequeue)" `Quick
      test_uniq_unmatched_dequeue;
    Alcotest.test_case "so requires lhb" `Quick test_so_requires_lhb;
    Alcotest.test_case "so respects commit order" `Quick test_so_commit_order;
    Alcotest.test_case "queue-fifo violation" `Quick test_fifo_violation;
    Alcotest.test_case "weak fifo allows unordered enqueues" `Quick
      test_fifo_ok_unordered_enqueues;
    Alcotest.test_case "queue-empdeq violation" `Quick test_empdeq_violation;
    Alcotest.test_case "empdeq fine once consumed" `Quick
      test_empdeq_ok_after_consumption;
    Alcotest.test_case "empdeq fine when enqueue unseen" `Quick
      test_empdeq_ok_unseen_enqueue;
    Alcotest.test_case "empdeq needs PRIOR consumption" `Quick
      test_empdeq_needs_prior_consumption;
    Alcotest.test_case "lhb respects commit order" `Quick test_lhb_cix;
    Alcotest.test_case "latabs-fifo" `Quick test_abs_fifo_violation;
    Alcotest.test_case "latabs empty: RMC lenient, SC strict" `Quick
      test_abs_empty_default_lenient;
    Alcotest.test_case "latabs dequeue on empty" `Quick test_abs_deq_on_empty;
    Alcotest.test_case "latabs match respects so" `Quick test_abs_match_respects_so;
    Alcotest.test_case "styles dispatch" `Quick test_styles_check;
    Alcotest.test_case "tally accounting" `Quick test_tally;
  ]
