open Compass_rmc
open Helpers

(* Views and logical views: lattice laws and thread-view transitions. *)

let l0 = loc ~base:0 ~off:0
let l1 = loc ~base:1 ~off:0

let test_bot_leq () =
  Alcotest.(check bool) "bot <= anything" true (View.leq View.bot (View.singleton l0 5));
  Alcotest.(check bool) "unseen below init" true (View.unseen < Timestamp.init)

let test_get_set () =
  let v = View.set View.bot l0 3 in
  Alcotest.(check int) "get set" 3 (View.get v l0);
  Alcotest.(check int) "get absent" View.unseen (View.get v l1);
  Alcotest.(check bool) "observed" true (View.observed v l0);
  Alcotest.(check bool) "not observed" false (View.observed v l1)

let test_extend_monotone () =
  let v = View.set View.bot l0 5 in
  let v' = View.extend v l0 3 in
  Alcotest.(check int) "extend keeps max" 5 (View.get v' l0);
  let v'' = View.extend v l0 9 in
  Alcotest.(check int) "extend grows" 9 (View.get v'' l0)

let test_join () =
  let a = View.set (View.set View.bot l0 1) l1 7 in
  let b = View.set View.bot l0 4 in
  let j = View.join a b in
  Alcotest.(check int) "join max l0" 4 (View.get j l0);
  Alcotest.(check int) "join keeps l1" 7 (View.get j l1)

(* QCheck lattice laws. *)
let prop_join_comm =
  QCheck.Test.make ~name:"view join commutative" ~count:200
    (QCheck.pair arb_view arb_view) (fun (a, b) ->
      View.equal (View.join a b) (View.join b a))

let prop_join_assoc =
  QCheck.Test.make ~name:"view join associative" ~count:200
    (QCheck.triple arb_view arb_view arb_view) (fun (a, b, c) ->
      View.equal (View.join a (View.join b c)) (View.join (View.join a b) c))

let prop_join_idem =
  QCheck.Test.make ~name:"view join idempotent" ~count:200 arb_view (fun a ->
      View.equal (View.join a a) a)

let prop_join_ub =
  QCheck.Test.make ~name:"view join is an upper bound" ~count:200
    (QCheck.pair arb_view arb_view) (fun (a, b) ->
      let j = View.join a b in
      View.leq a j && View.leq b j)

let prop_leq_antisym =
  QCheck.Test.make ~name:"view leq antisymmetric" ~count:200
    (QCheck.pair arb_view arb_view) (fun (a, b) ->
      if View.leq a b && View.leq b a then View.equal a b else true)

let prop_lview_join_laws =
  QCheck.Test.make ~name:"lview join laws" ~count:200
    (QCheck.pair arb_lview arb_lview) (fun (a, b) ->
      Lview.equal (Lview.join a b) (Lview.join b a)
      && Lview.leq a (Lview.join a b))

(* Thread-view transitions preserve well-formedness (rel <= cur <= acq). *)
let msg ~l ~ts ~view ~lview =
  Msg.make ~loc:l ~ts ~value:(vi 0) ~view ~lview ~wtid:0

let prop_tview_wf =
  let gen_ops =
    QCheck.Gen.(
      list_size (int_bound 15)
        (oneof
           [
             map (fun v -> `Read (v, Mode.Acq)) gen_view;
             map (fun v -> `Read (v, Mode.Rlx)) gen_view;
             map (fun t -> `Write (t, Mode.Rel)) (int_range 1 30);
             map (fun t -> `Write (t, Mode.Rlx)) (int_range 1 30);
             return (`Fence Mode.F_acq);
             return (`Fence Mode.F_rel);
             return (`Fence Mode.F_acqrel);
             map (fun e -> `Observe e) (int_bound 20);
           ]))
  in
  QCheck.Test.make ~name:"tview transitions preserve wf" ~count:300
    (QCheck.make gen_ops) (fun ops ->
      let tv =
        List.fold_left
          (fun tv op ->
            match op with
            | `Read (view, mode) ->
                Tview.read tv (msg ~l:l0 ~ts:(View.get view l0 + 1) ~view ~lview:Lview.empty) mode
            | `Write (ts, mode) ->
                let ts = View.get tv.Tview.cur l1 + ts in
                let tv, _, _ = Tview.write tv ~l:l1 ~ts ~mode () in
                tv
            | `Fence f -> Tview.fence tv f
            | `Observe e -> Tview.observe_event tv e)
          Tview.init ops
      in
      Tview.wf tv)

let test_tview_release_acquire () =
  (* A release write's message view carries cur; a relaxed write's does
     not (only the fence-frozen rel view). *)
  let tv = Tview.read Tview.init (msg ~l:l0 ~ts:5 ~view:(View.singleton l0 5) ~lview:Lview.empty) Mode.Acq in
  let _, vrel, _ = Tview.write tv ~l:l1 ~ts:1 ~mode:Mode.Rel () in
  Alcotest.(check int) "rel write carries cur" 5 (View.get vrel l0);
  let _, vrlx, _ = Tview.write tv ~l:l1 ~ts:1 ~mode:Mode.Rlx () in
  Alcotest.(check int) "rlx write hides cur" View.unseen (View.get vrlx l0)

let test_tview_fence_protocol () =
  (* rel fence freezes cur for later relaxed writes; acq fence releases the
     accumulated relaxed-read views into cur. *)
  let m1 = msg ~l:l0 ~ts:3 ~view:(View.singleton l0 3) ~lview:(Lview.singleton 7) in
  let tv = Tview.read Tview.init m1 Mode.Rlx in
  Alcotest.(check bool) "rlx read does not acquire lview" false
    (Lview.mem 7 tv.Tview.cur_l);
  let tv = Tview.fence tv Mode.F_acq in
  Alcotest.(check bool) "acq fence acquires lview" true (Lview.mem 7 tv.Tview.cur_l);
  let tv = Tview.fence tv Mode.F_rel in
  let _, _, lrlx = Tview.write tv ~l:l1 ~ts:1 ~mode:Mode.Rlx () in
  Alcotest.(check bool) "rlx write after rel fence releases lview" true
    (Lview.mem 7 lrlx)

let test_tview_join () =
  let tv1 = Tview.observe_event Tview.init 1 in
  let tv2 = Tview.observe_event Tview.init 2 in
  let j = Tview.join tv1 tv2 in
  Alcotest.(check bool) "join has both events" true
    (Lview.mem 1 j.Tview.cur_l && Lview.mem 2 j.Tview.cur_l)

let suite =
  [
    Alcotest.test_case "bot/leq basics" `Quick test_bot_leq;
    Alcotest.test_case "get/set/observed" `Quick test_get_set;
    Alcotest.test_case "extend is monotone" `Quick test_extend_monotone;
    Alcotest.test_case "join" `Quick test_join;
    Alcotest.test_case "release vs relaxed message views" `Quick
      test_tview_release_acquire;
    Alcotest.test_case "fence protocol (logical views)" `Quick
      test_tview_fence_protocol;
    Alcotest.test_case "tview join" `Quick test_tview_join;
    qtest prop_join_comm;
    qtest prop_join_assoc;
    qtest prop_join_idem;
    qtest prop_join_ub;
    qtest prop_leq_antisym;
    qtest prop_lview_join_laws;
    qtest prop_tview_wf;
  ]
