open Compass_rmc
open Compass_event

(* Shared test utilities: Alcotest testables, QCheck generators, and
   hand-built event graphs for the spec checkers. *)

let value : Value.t Alcotest.testable = Alcotest.testable Value.pp Value.equal
let view : View.t Alcotest.testable = Alcotest.testable View.pp View.equal

let lview : Lview.t Alcotest.testable =
  Alcotest.testable Lview.pp Lview.equal

let vi n = Value.Int n
let loc ~base ~off = Loc.make ~base ~off

(* -- QCheck generators ------------------------------------------------------ *)

let gen_loc =
  QCheck.Gen.(
    map2 (fun b o -> Loc.make ~base:b ~off:o) (int_bound 7) (int_bound 3))

let gen_view : View.t QCheck.Gen.t =
  QCheck.Gen.(
    map
      (fun entries ->
        List.fold_left (fun v (l, t) -> View.extend v l t) View.bot entries)
      (list_size (int_bound 12) (pair gen_loc (int_bound 30))))

let arb_view = QCheck.make ~print:View.to_string gen_view

let gen_lview : Lview.t QCheck.Gen.t =
  QCheck.Gen.(map Lview.of_list (list_size (int_bound 10) (int_bound 40)))

let arb_lview = QCheck.make ~print:Lview.to_string gen_lview

(* Random DAGs for Order tests: edges only from smaller to larger ids. *)
let gen_dag =
  QCheck.Gen.(
    let* n = int_range 1 10 in
    let* edges =
      list_size (int_bound 20)
        (let* a = int_bound (n - 1) in
         let* b = int_bound (n - 1) in
         return (min a b, max a b))
    in
    return (List.init n (fun i -> i), List.filter (fun (a, b) -> a <> b) edges))

let arb_dag =
  QCheck.make
    ~print:(fun (ns, es) ->
      Printf.sprintf "nodes=%d edges=[%s]" (List.length ns)
        (String.concat ";"
           (List.map (fun (a, b) -> Printf.sprintf "%d->%d" a b) es)))
    gen_dag

(* -- hand-built graphs ------------------------------------------------------ *)

(* Build a graph from a compact description: events as
   (id, typ, logview-extras, step) where each event's logview contains
   itself plus the listed ids; so edges given separately. *)
let mk_graph ?(name = "g") events so =
  let g = Graph.create ~obj:0 ~name in
  List.iter
    (fun (id, typ, lhb_preds, step) ->
      Graph.commit g
        {
          Event.id;
          obj = 0;
          typ;
          tid = 0;
          view = View.bot;
          logview = Lview.of_list (id :: lhb_preds);
          cix = (step, 0);
        })
    events;
  List.iter (fun (a, b) -> Graph.add_so g ~from:a ~into:b) so;
  g

let qtest = QCheck_alcotest.to_alcotest
