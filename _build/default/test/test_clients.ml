open Compass_machine
open Compass_dstruct
open Compass_clients

(* The paper's client verifications, as tests. *)

let check_ok name (r : Explore.report) =
  Alcotest.(check (list string))
    (name ^ " violations")
    []
    (List.map (fun (f : Explore.failure) -> f.Explore.message) r.Explore.violations)

(* MP (Figure 1): exhaustively verified for the MS queue. *)
let test_mp_msqueue () =
  let st = Mp.fresh_stats () in
  let r = Explore.dfs ~max_execs:100_000 (Mp.make Msqueue.instantiate st) in
  check_ok "mp" r;
  Alcotest.(check bool) "exhaustive" true r.Explore.complete;
  Alcotest.(check int) "right deq never empty" 0 st.Mp.right_empty;
  Alcotest.(check bool) "got both values" true
    (st.Mp.right_got_41 > 0 && st.Mp.right_got_42 > 0);
  Alcotest.(check int) "LAThb excludes empty always" st.Mp.executions
    st.Mp.excluded_hb;
  Alcotest.(check int) "LATso never excludes" 0 st.Mp.excluded_so

(* MP for the HW queue: the LAThb specs suffice (Section 3.2). *)
let test_mp_hwqueue () =
  let st = Mp.fresh_stats () in
  let r = Explore.dfs ~max_execs:20_000 (Mp.make Hwqueue.instantiate st) in
  check_ok "mp-hw" r;
  Alcotest.(check bool) "exhaustive" true r.Explore.complete;
  Alcotest.(check int) "right deq never empty" 0 st.Mp.right_empty

(* The weak-flag ablation: the empty outcome becomes observable. *)
let test_mp_weak_flag () =
  let st = Mp.fresh_stats () in
  let r = Explore.dfs ~max_execs:400_000 (Mp.make_weak Msqueue.instantiate st) in
  check_ok "mp-weak (queue itself stays consistent)" r;
  Alcotest.(check bool) "empty observed without synchronisation" true
    (st.Mp.right_empty > 0)

(* SPSC (Section 3.2): end-to-end FIFO through arrays. *)
let test_spsc () =
  List.iter
    (fun factory ->
      let st = Spsc_client.fresh_stats () in
      let r =
        Explore.random ~execs:2_000 ~seed:3 (Spsc_client.make ~n:3 factory st)
      in
      check_ok "spsc" r)
    [ Msqueue.instantiate; Hwqueue.instantiate ]

let test_spsc_exhaustive_small () =
  let st = Spsc_client.fresh_stats () in
  let r =
    (* retries=2 keeps the consumer's retry subtree small enough to
       exhaust (3.1k executions). *)
    Explore.dfs ~max_execs:60_000
      (Spsc_client.make ~n:1 ~retries:2 Msqueue.instantiate st)
  in
  check_ok "spsc n=1" r;
  Alcotest.(check bool) "exhaustive" true r.Explore.complete

(* Two-queue pipeline, mixing implementations both ways. *)
let test_pipeline () =
  List.iter
    (fun (f1, f2) ->
      let st = Pipeline.fresh_stats () in
      let r =
        Explore.random ~execs:1_000 ~seed:11 (Pipeline.make ~n:2 f1 f2 st)
      in
      check_ok "pipeline" r)
    [
      (Msqueue.instantiate, Hwqueue.instantiate);
      (Hwqueue.instantiate, Msqueue.instantiate);
    ]

(* Resource exchange (Section 4.2): conservation + race-free transfer. *)
let test_resource_exchange () =
  let st = Resource_exchange.fresh_stats () in
  let r =
    Explore.dfs ~max_execs:60_000 (Resource_exchange.make ~threads:2 st)
  in
  check_ok "resource exchange" r;
  Alcotest.(check bool) "some swaps happened" true (st.Resource_exchange.swaps > 0)

let test_resource_exchange_three () =
  let st = Resource_exchange.fresh_stats () in
  let r =
    Explore.random ~execs:3_000 ~seed:5 (Resource_exchange.make ~threads:3 st)
  in
  check_ok "resource exchange x3" r

(* MP through a stack: STACK-EMPPOP's turn. *)
let test_mp_stack () =
  List.iter
    (fun factory ->
      let st = Mp_stack.fresh_stats () in
      let r = Explore.dfs ~max_execs:250_000 (Mp_stack.make factory st) in
      check_ok "mp-stack" r;
      Alcotest.(check int) "right pop never empty" 0 st.Mp_stack.right_empty;
      Alcotest.(check bool) "pops succeeded" true (st.Mp_stack.right_got > 0))
    [ Treiber.instantiate ]

(* Strong FIFO recovery under a client lock (Section 3.1). *)
let test_strong_fifo_recovery () =
  List.iter
    (fun factory ->
      let st = Strong_fifo.fresh_stats () in
      let r = Explore.dfs ~max_execs:150_000 (Strong_fifo.make factory st) in
      check_ok "strong-fifo" r;
      let broke = ref 0 in
      let rc =
        Explore.dfs ~max_execs:60_000 (Strong_fifo.make_control factory broke)
      in
      check_ok "strong-fifo control (weak spec still holds)" rc;
      Alcotest.(check bool) "bare queue breaks totality somewhere" true
        (!broke > 0))
    [ Msqueue.instantiate; Hwqueue.instantiate ]

(* Litmus battery: the substrate's weak behaviours and guarantees. *)
let test_litmus_all () =
  List.iter
    (fun (t : Litmus.t) ->
      let ok, report, obs = Litmus.verdict t in
      if not ok then
        Alcotest.failf "%s: %s (observed %d, expected %s, %d violations)"
          report.Explore.name t.Litmus.descr obs
          (match t.Litmus.expect with
          | `Observable -> "observable"
          | `Forbidden -> "forbidden")
          (List.length report.Explore.violations))
    (Litmus.all ())

let test_litmus_2p2w_policies () =
  let t = Litmus.two_two_w () in
  let config = { Machine.default_config with policy = `Gap } in
  let ok, _, obs = Litmus.verdict ~config t in
  Alcotest.(check bool) "2+2W observable under gap" true (ok && obs > 0);
  let t = Litmus.two_two_w () in
  let _, _, obs = Litmus.verdict t in
  Alcotest.(check int) "2+2W forbidden under append" 0 obs

let suite =
  [
    Alcotest.test_case "MP with MS queue (exhaustive)" `Slow test_mp_msqueue;
    Alcotest.test_case "MP with HW queue (exhaustive)" `Slow test_mp_hwqueue;
    Alcotest.test_case "MP weak-flag ablation" `Slow test_mp_weak_flag;
    Alcotest.test_case "SPSC end-to-end FIFO" `Slow test_spsc;
    Alcotest.test_case "SPSC n=1 exhaustive" `Slow test_spsc_exhaustive_small;
    Alcotest.test_case "two-queue pipeline" `Slow test_pipeline;
    Alcotest.test_case "resource exchange (exhaustive)" `Slow
      test_resource_exchange;
    Alcotest.test_case "resource exchange x3 (random)" `Slow
      test_resource_exchange_three;
    Alcotest.test_case "MP through a stack" `Slow test_mp_stack;
    Alcotest.test_case "strong FIFO under a client lock" `Slow
      test_strong_fifo_recovery;
    Alcotest.test_case "litmus battery" `Slow test_litmus_all;
    Alcotest.test_case "2+2W timestamp policies" `Slow test_litmus_2p2w_policies;
  ]
