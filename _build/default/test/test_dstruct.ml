open Compass_rmc
open Compass_machine
open Compass_spec
open Compass_dstruct
open Compass_clients
open Prog.Syntax
open Helpers

(* Data-structure verifications: bounded-exhaustive and random exploration
   with the spec checkers attached — the testing counterpart of the
   paper's per-implementation proofs. *)

let dfs ?(max_execs = 30_000) sc = Explore.dfs ~max_execs sc
let rand ?(execs = 2_000) sc = Explore.random ~execs ~seed:7 sc

let check_ok name (r : Explore.report) =
  Alcotest.(check (list string))
    (name ^ " violations")
    []
    (List.map (fun (f : Explore.failure) -> f.Explore.message) r.Explore.violations);
  Alcotest.(check bool) (name ^ " ran") true (r.Explore.executions > 0)

(* -- sequential sanity (solo execution) -------------------------------------- *)

let test_msqueue_sequential () =
  let m = Machine.create () in
  let t = Msqueue.create m ~name:"q" in
  let r =
    Machine.solo m
      (let* () = Msqueue.enq t (vi 1) in
       let* () = Msqueue.enq t (vi 2) in
       let* a = Msqueue.deq t in
       let* b = Msqueue.deq t in
       let* c = Msqueue.deq t in
       Prog.return
         (vi
            ((100 * Value.to_int_exn a)
            + (10 * Value.to_int_exn b)
            + (match c with Value.Null -> 9 | _ -> 0))))
  in
  Alcotest.(check value) "FIFO + empty" (vi 129) r;
  Alcotest.(check (list string)) "graph consistent" []
    (List.map
       (fun (c : Check.violation) -> c.Check.cond)
       (Queue_spec.consistent (Msqueue.graph t)))

let test_hwqueue_sequential () =
  let m = Machine.create () in
  let t = Hwqueue.create m ~name:"q" in
  let r =
    Machine.solo m
      (let* () = Hwqueue.enq t (vi 1) in
       let* () = Hwqueue.enq t (vi 2) in
       let* a = Hwqueue.deq t in
       let* b = Hwqueue.deq t in
       let* c = Hwqueue.deq t in
       Prog.return
         (vi
            ((100 * Value.to_int_exn a)
            + (10 * Value.to_int_exn b)
            + (match c with Value.Null -> 9 | _ -> 0))))
  in
  Alcotest.(check value) "FIFO + empty" (vi 129) r

let test_treiber_sequential () =
  let m = Machine.create () in
  let t = Treiber.create m ~name:"s" in
  let r =
    Machine.solo m
      (let* () = Treiber.push t (vi 1) in
       let* () = Treiber.push t (vi 2) in
       let* a = Treiber.pop t in
       let* b = Treiber.pop t in
       let* c = Treiber.pop t in
       Prog.return
         (vi
            ((100 * Value.to_int_exn a)
            + (10 * Value.to_int_exn b)
            + (match c with Value.Null -> 9 | _ -> 0))))
  in
  Alcotest.(check value) "LIFO + empty" (vi 219) r;
  Alcotest.(check bool) "LAThist holds" true
    (Styles.check Styles.Hist Styles.Stack (Treiber.graph t) = [])

let test_elimination_sequential () =
  let m = Machine.create () in
  let t = Elimination.create m ~name:"es" in
  let r =
    Machine.solo m
      (let* () = Elimination.push t (vi 5) in
       let* a = Elimination.pop t in
       let* b = Elimination.pop t in
       Prog.return
         (vi ((10 * Value.to_int_exn a) + (match b with Value.Null -> 9 | _ -> 0))))
  in
  Alcotest.(check value) "push/pop/empty" (vi 59) r

let test_hw_capacity_discards () =
  let m = Machine.create () in
  let t = Hwqueue.create ~capacity:1 m ~name:"q" in
  Machine.spawn m
    [
      Prog.returning_unit
        (let* () = Hwqueue.enq t (vi 1) in
         Hwqueue.enq t (vi 2));
    ];
  match Machine.run m (Oracle.fresh_latest ()) with
  | Machine.Blocked _ -> ()
  | o -> Alcotest.failf "expected blocked on capacity, got %a" Machine.pp_outcome o

(* -- concurrent consistency, exhaustive ---------------------------------------- *)

let test_msqueue_fences_sequential () =
  let m = Machine.create () in
  let t = Msqueue_fences.create m ~name:"q" in
  let r =
    Machine.solo m
      (let* () = Msqueue_fences.enq t (vi 1) in
       let* () = Msqueue_fences.enq t (vi 2) in
       let* a = Msqueue_fences.deq t in
       let* b = Msqueue_fences.deq t in
       let* c = Msqueue_fences.deq t in
       Prog.return
         (vi
            ((100 * Value.to_int_exn a)
            + (10 * Value.to_int_exn b)
            + (match c with Value.Null -> 9 | _ -> 0))))
  in
  Alcotest.(check value) "FIFO + empty" (vi 129) r

let test_msqueue_fences_hb_abs () =
  (* Fence-based synchronisation is spec-equivalent to access-based:
     the same LATabs-hb checks pass. *)
  check_ok "msqueue-fences"
    (dfs ~max_execs:40_000
       (Harness.queue_workload ~style:Styles.Hb_abs Msqueue_fences.instantiate
          ~enqers:2 ~deqers:1 ~ops:1 ()));
  check_ok "msqueue-fences random"
    (rand
       (Harness.queue_workload ~style:Styles.Hb_abs Msqueue_fences.instantiate
          ~enqers:2 ~deqers:2 ~ops:2 ()))

let test_mp_with_fence_queue () =
  (* The MP client verifies over the fence-based queue too. *)
  let st = Mp.fresh_stats () in
  let r = Explore.dfs ~max_execs:250_000 (Mp.make Msqueue_fences.instantiate st) in
  check_ok "mp/msqueue-fences" r;
  Alcotest.(check int) "right deq never empty" 0 st.Mp.right_empty

let test_msqueue_hb_abs () =
  check_ok "msqueue"
    (dfs (Harness.queue_workload ~style:Styles.Hb_abs Msqueue.instantiate
            ~enqers:2 ~deqers:1 ~ops:1 ()))

let test_msqueue_mpmc () =
  check_ok "msqueue mpmc"
    (rand
       (Harness.queue_workload ~style:Styles.Hb_abs Msqueue.instantiate
          ~enqers:2 ~deqers:2 ~ops:2 ()))

let test_hwqueue_hb () =
  check_ok "hwqueue"
    (dfs (Harness.queue_workload ~style:Styles.Hb Hwqueue.instantiate
            ~enqers:2 ~deqers:1 ~ops:1 ()))

let test_hwqueue_fails_latabs () =
  (* The paper's point (Section 3.2): the relaxed HW queue cannot support
     commit-point abstract states.  Two concurrent enqueuers suffice: the
     FAA order and the slot-publication order diverge. *)
  let sc =
    Harness.queue_workload ~style:Styles.So_abs Hwqueue.instantiate ~enqers:2
      ~deqers:1 ~ops:1 ()
  in
  let r = Explore.dfs ~max_execs:60_000 sc in
  Alcotest.(check bool) "found latabs violation" true
    (List.exists
       (fun (f : Explore.failure) ->
         let m = f.Explore.message in
         String.length m >= 7 && String.sub m 0 7 = "[latabs")
       r.Explore.violations)

let test_hwqueue_hist_by_search () =
  (* But a linearisation exists offline: LAThist holds via search. *)
  check_ok "hwqueue hist"
    (dfs ~max_execs:20_000
       (Harness.queue_workload ~style:Styles.Hist Hwqueue.instantiate
          ~enqers:2 ~deqers:1 ~ops:1 ()))

let test_treiber_hist () =
  check_ok "treiber hist"
    (dfs (Harness.stack_workload ~style:Styles.Hist Treiber.instantiate
            ~pushers:2 ~poppers:1 ~ops:1 ()))

let test_treiber_mixed () =
  check_ok "treiber mixed"
    (rand
       (Harness.stack_mixed ~style:Styles.Hist Treiber.instantiate ~threads:3
          ~ops:2 ()))

let test_exchanger_pairs () =
  check_ok "exchanger 2" (dfs (Harness.exchanger_workload ~threads:2 ()));
  check_ok "exchanger 3"
    (rand ~execs:3_000 (Harness.exchanger_workload ~threads:3 ()))

let test_exchanger_array () =
  (* The array of exchangers (Section 4.1) satisfies the same spec. *)
  check_ok "exchanger-array x2"
    (dfs ~max_execs:40_000
       (Harness.exchanger_workload
          ~impl:(Exchanger_array.instantiate ~slots:2)
          ~threads:2 ()));
  check_ok "exchanger-array x4 threads"
    (rand ~execs:3_000
       (Harness.exchanger_workload
          ~impl:(Exchanger_array.instantiate ~slots:2)
          ~threads:4 ()))

let test_exchanger_array_matches () =
  (* Matches actually happen across the array. *)
  let matched = ref 0 in
  let sc =
    Harness.scenario ~name:"xarray-matches" (fun m ->
        let x = Exchanger_array.create ~slots:2 m ~name:"xa" in
        let t v = Exchanger_array.exchange x v in
        let judge vs =
          if Array.exists (fun v -> not (Value.equal v Value.Null)) vs then
            incr matched;
          Harness.first_violation
            (Exchanger_spec.consistent (Exchanger_array.graph x))
        in
        ([ t (vi 1); t (vi 2); t (vi 3) ], judge))
  in
  ignore (Explore.random ~execs:6_000 ~seed:11 sc);
  Alcotest.(check bool) "array matched sometimes" true (!matched > 0)

let test_exchanger_succeeds_sometimes () =
  (* Not vacuous: exchanges do succeed in some executions. *)
  let succeeded = ref 0 in
  let sc =
    Harness.scenario ~name:"xchg-success" (fun m ->
        let x = Exchanger.create m ~name:"x" in
        let t v = Exchanger.exchange x v in
        let judge vs =
          if Array.exists (fun v -> not (Value.equal v Value.Null)) vs then
            incr succeeded;
          Explore.Pass
        in
        ([ t (vi 1); t (vi 2) ], judge))
  in
  ignore (Explore.dfs ~max_execs:20_000 sc);
  Alcotest.(check bool) "some exchange succeeded" true (!succeeded > 0)

let test_elimination_stack_consistent () =
  check_ok "es"
    (dfs ~max_execs:20_000
       (Harness.stack_workload ~style:Styles.Hb Elimination.instantiate
          ~pushers:1 ~poppers:1 ~ops:1 ()))

let test_elimination_composition () =
  let st = Es_compose.fresh_stats () in
  check_ok "es-compose"
    (rand ~execs:1_500 (Es_compose.make ~pushers:2 ~poppers:2 ~ops:1 st));
  Alcotest.(check bool) "base path exercised" true (st.Es_compose.via_base > 0)

let test_elimination_actually_eliminates () =
  (* Under contention, some ops must complete via the exchanger. *)
  let st = Es_compose.fresh_stats () in
  ignore (rand ~execs:4_000 (Es_compose.make ~pushers:2 ~poppers:2 ~ops:2 st));
  Alcotest.(check bool) "eliminations occurred" true (st.Es_compose.eliminated > 0)

(* -- lock-based SC baselines ---------------------------------------------------- *)

let test_lockqueue_sequential () =
  let m = Machine.create () in
  let t = Lockqueue.create m ~name:"q" in
  let r =
    Machine.solo m
      (let* () = Lockqueue.enq t (vi 1) in
       let* () = Lockqueue.enq t (vi 2) in
       let* a = Lockqueue.deq t in
       let* b = Lockqueue.deq t in
       let* c = Lockqueue.deq t in
       Prog.return
         (vi
            ((100 * Value.to_int_exn a)
            + (10 * Value.to_int_exn b)
            + (match c with Value.Null -> 9 | _ -> 0))))
  in
  Alcotest.(check value) "FIFO + empty" (vi 129) r

let test_lockqueue_satisfies_sc () =
  (* The SC baseline satisfies even the SC-strength spec. *)
  check_ok "lockqueue SC-abs"
    (dfs ~max_execs:40_000
       (Harness.queue_workload ~style:Styles.Sc_abs Lockqueue.instantiate
          ~enqers:2 ~deqers:1 ~ops:1 ()));
  check_ok "lockqueue random"
    (rand
       (Harness.queue_workload ~style:Styles.Sc_abs Lockqueue.instantiate
          ~enqers:2 ~deqers:2 ~ops:2 ()))

let test_lockstack_satisfies_sc () =
  check_ok "lockstack SC-abs"
    (dfs ~max_execs:40_000
       (Harness.stack_workload ~style:Styles.Sc_abs Lockstack.instantiate
          ~pushers:2 ~poppers:1 ~ops:1 ()))

(* -- Chase-Lev work-stealing deque (E8) ------------------------------------------ *)

let test_chaselev_sequential () =
  let m = Machine.create () in
  let t = Chaselev.create m ~name:"dq" in
  let r =
    Machine.solo m
      (let* () = Chaselev.push t (vi 1) in
       let* () = Chaselev.push t (vi 2) in
       let* a = Chaselev.pop t in
       (* owner pops LIFO *)
       let* b = Chaselev.pop t in
       let* c = Chaselev.pop t in
       Prog.return
         (vi
            ((100 * Value.to_int_exn a)
            + (10 * Value.to_int_exn b)
            + (match c with Value.Null -> 9 | _ -> 0))))
  in
  Alcotest.(check value) "owner LIFO + empty" (vi 219) r;
  Alcotest.(check bool) "deque consistent" true
    (Ws_spec.consistent (Chaselev.graph t) = [])

let test_chaselev_steals_fifo () =
  (* Owner pushes 1, 2; a thief awaits both pushes, then steals:
     steals take oldest-first. *)
  let m = Machine.create () in
  let t = Chaselev.create m ~name:"dq" in
  let bottom = Chaselev.bottom_loc t in
  let owner =
    Prog.returning_unit
      (let* () = Chaselev.push t (vi 1) in
       Chaselev.push t (vi 2))
  in
  let thief =
    let* _ = Prog.await bottom Mode.Acq (Value.equal (vi 2)) in
    let* a = Chaselev.steal t in
    let* b = Chaselev.steal t in
    let* c = Chaselev.steal t in
    Prog.return
      (vi
         ((100 * Value.to_int_exn a)
         + (10 * Value.to_int_exn b)
         + (match c with Value.Null -> 9 | _ -> 0)))
  in
  Machine.spawn m [ owner; thief ];
  match Machine.run m (Oracle.fresh_latest ()) with
  | Machine.Finished vs ->
      Alcotest.(check value) "steals are FIFO + empty" (vi 129) vs.(1);
      Alcotest.(check bool) "deque consistent" true
        (Ws_spec.consistent (Chaselev.graph t) = [])
  | o -> Alcotest.failf "unexpected %a" Machine.pp_outcome o

let test_chaselev_concurrent () =
  let st = Ws_client.fresh_stats () in
  let r =
    Explore.dfs ~max_execs:60_000 (Ws_client.make ~tasks:2 ~thieves:1 ~steals:1 st)
  in
  check_ok "chaselev" r

let test_chaselev_random_contended () =
  let st = Ws_client.fresh_stats () in
  let r =
    Explore.random ~execs:4_000 ~seed:3
      (Ws_client.make ~tasks:3 ~thieves:2 ~steals:2 st)
  in
  check_ok "chaselev contended" r;
  Alcotest.(check bool) "steals occurred" true (st.Ws_client.stolen > 0)

let test_chaselev_weak_fences_break () =
  (* The ablation: acq-rel instead of SC fences loses elements to double
     takes — the checker must find it. *)
  let st = Ws_client.fresh_stats () in
  let r =
    Explore.random ~execs:120_000 ~seed:1
      (Ws_client.make ~weak_fences:true ~tasks:2 ~thieves:1 ~steals:2 st)
  in
  Alcotest.(check bool) "double take found" true (r.Explore.violations <> [])

let test_spinlock_mutex () =
  (* Two threads increment a plain (non-atomic) counter under the lock:
     no race, final value 2. *)
  let sc =
    Harness.scenario ~name:"spinlock" (fun m ->
        let l = Spinlock.create m ~name:"l" in
        let c = Machine.alloc m ~name:"c" ~init:(vi 0) 1 in
        let t =
          Prog.returning_unit
            (Spinlock.with_lock l
               (let* v = Prog.load c Mode.Na in
                Prog.store c (vi (Value.to_int_exn v + 1)) Mode.Na))
        in
        let judge _ =
          Machine.join_views m;
          let v = Machine.solo m (Prog.load c Mode.Na) in
          if Value.equal v (vi 2) then Explore.Pass
          else Explore.Violation (Format.asprintf "count = %a" Value.pp v)
        in
        ([ t; t ], judge))
  in
  check_ok "spinlock" (dfs ~max_execs:20_000 sc)

let suite =
  [
    Alcotest.test_case "msqueue sequential" `Quick test_msqueue_sequential;
    Alcotest.test_case "hwqueue sequential" `Quick test_hwqueue_sequential;
    Alcotest.test_case "treiber sequential" `Quick test_treiber_sequential;
    Alcotest.test_case "elimination sequential" `Quick test_elimination_sequential;
    Alcotest.test_case "hw capacity discards" `Quick test_hw_capacity_discards;
    Alcotest.test_case "msqueue-fences sequential" `Quick
      test_msqueue_fences_sequential;
    Alcotest.test_case "msqueue-fences LAThb-abs" `Slow
      test_msqueue_fences_hb_abs;
    Alcotest.test_case "MP over msqueue-fences" `Slow test_mp_with_fence_queue;
    Alcotest.test_case "msqueue LAThb-abs (dfs)" `Slow test_msqueue_hb_abs;
    Alcotest.test_case "msqueue MPMC (random)" `Slow test_msqueue_mpmc;
    Alcotest.test_case "hwqueue LAThb (dfs)" `Slow test_hwqueue_hb;
    Alcotest.test_case "hwqueue fails LATabs" `Slow test_hwqueue_fails_latabs;
    Alcotest.test_case "hwqueue LAThist via search" `Slow
      test_hwqueue_hist_by_search;
    Alcotest.test_case "treiber LAThist (dfs)" `Slow test_treiber_hist;
    Alcotest.test_case "treiber mixed (random)" `Slow test_treiber_mixed;
    Alcotest.test_case "exchanger consistency" `Slow test_exchanger_pairs;
    Alcotest.test_case "exchanger succeeds sometimes" `Slow
      test_exchanger_succeeds_sometimes;
    Alcotest.test_case "exchanger array consistent" `Slow test_exchanger_array;
    Alcotest.test_case "exchanger array matches" `Slow
      test_exchanger_array_matches;
    Alcotest.test_case "elimination stack consistent" `Slow
      test_elimination_stack_consistent;
    Alcotest.test_case "elimination composition" `Slow
      test_elimination_composition;
    Alcotest.test_case "elimination eliminates" `Slow
      test_elimination_actually_eliminates;
    Alcotest.test_case "spinlock mutual exclusion" `Slow test_spinlock_mutex;
    Alcotest.test_case "lockqueue sequential" `Quick test_lockqueue_sequential;
    Alcotest.test_case "lockqueue satisfies SC-abs" `Slow
      test_lockqueue_satisfies_sc;
    Alcotest.test_case "lockstack satisfies SC-abs" `Slow
      test_lockstack_satisfies_sc;
    Alcotest.test_case "chaselev sequential (owner LIFO)" `Quick
      test_chaselev_sequential;
    Alcotest.test_case "chaselev steals are FIFO" `Quick
      test_chaselev_steals_fifo;
    Alcotest.test_case "chaselev concurrent (dfs)" `Slow test_chaselev_concurrent;
    Alcotest.test_case "chaselev contended (random)" `Slow
      test_chaselev_random_contended;
    Alcotest.test_case "chaselev weak fences break" `Slow
      test_chaselev_weak_fences_break;
  ]
