open Compass_rmc
open Compass_event
open Compass_spec
open Helpers

(* ExchangerConsistent on hand-built graphs. *)

let conds vs = List.map (fun (c : Check.violation) -> c.Check.cond) vs
let has_cond c vs = List.mem c (conds vs)

(* A well-formed matched pair: same commit step, mutual logical views,
   symmetric so, swapped values. *)
let good_pair () =
  let g = Graph.create ~obj:0 ~name:"x" in
  let commit id typ sub =
    Graph.commit g
      {
        Event.id;
        obj = 0;
        typ;
        tid = id;
        view = View.bot;
        logview = Lview.of_list [ 0; 1 ];
        cix = (3, sub);
      }
  in
  commit 0 (Event.Exchange (vi 1, vi 2)) 0;
  commit 1 (Event.Exchange (vi 2, vi 1)) 1;
  Graph.add_so g ~from:0 ~into:1;
  Graph.add_so g ~from:1 ~into:0;
  g

let test_good () =
  Alcotest.(check (list string)) "consistent" []
    (conds (Exchanger_spec.consistent (good_pair ())))

let test_failed_exchange_ok () =
  let g =
    mk_graph [ (0, Event.Exchange (vi 1, Value.Null), [], 1) ] []
  in
  Alcotest.(check (list string)) "failed exchange consistent" []
    (conds (Exchanger_spec.consistent g))

let test_asymmetric_so () =
  let g = good_pair () in
  (* Break symmetry by adding a third event with a one-way edge. *)
  Graph.commit g
    {
      Event.id = 2;
      obj = 0;
      typ = Event.Exchange (vi 3, vi 4);
      tid = 2;
      view = View.bot;
      logview = Lview.singleton 2;
      cix = (9, 0);
    };
  Graph.add_so g ~from:2 ~into:0;
  Alcotest.(check bool) "missing mirror" true
    (has_cond "xchg-sym" (Exchanger_spec.consistent g))

let test_values_must_swap () =
  let g = Graph.create ~obj:0 ~name:"x" in
  let commit id typ sub =
    Graph.commit g
      {
        Event.id;
        obj = 0;
        typ;
        tid = id;
        view = View.bot;
        logview = Lview.of_list [ 0; 1 ];
        cix = (3, sub);
      }
  in
  commit 0 (Event.Exchange (vi 1, vi 2)) 0;
  commit 1 (Event.Exchange (vi 2, vi 9)) 1;
  Graph.add_so g ~from:0 ~into:1;
  Graph.add_so g ~from:1 ~into:0;
  Alcotest.(check bool) "values do not swap" true
    (has_cond "xchg-matches" (Exchanger_spec.consistent g))

let test_success_needs_partner () =
  let g = mk_graph [ (0, Event.Exchange (vi 1, vi 2), [], 1) ] [] in
  Alcotest.(check bool) "unpaired success" true
    (has_cond "xchg-success-paired" (Exchanger_spec.consistent g))

let test_fail_must_be_unpaired () =
  let g = Graph.create ~obj:0 ~name:"x" in
  let commit id typ sub =
    Graph.commit g
      {
        Event.id;
        obj = 0;
        typ;
        tid = id;
        view = View.bot;
        logview = Lview.of_list [ 0; 1 ];
        cix = (3, sub);
      }
  in
  commit 0 (Event.Exchange (vi 1, Value.Null)) 0;
  commit 1 (Event.Exchange (Value.Null, vi 1)) 1;
  Graph.add_so g ~from:0 ~into:1;
  Graph.add_so g ~from:1 ~into:0;
  let vs = Exchanger_spec.consistent g in
  Alcotest.(check bool) "bottom in pair" true
    (has_cond "xchg-no-bot" vs || has_cond "xchg-fail-unpaired" vs)

let test_atomic_pair_required () =
  (* Same pair but committed in different steps. *)
  let g = Graph.create ~obj:0 ~name:"x" in
  let commit id typ step =
    Graph.commit g
      {
        Event.id;
        obj = 0;
        typ;
        tid = id;
        view = View.bot;
        logview = Lview.of_list [ 0; 1 ];
        cix = (step, 0);
      }
  in
  commit 0 (Event.Exchange (vi 1, vi 2)) 3;
  commit 1 (Event.Exchange (vi 2, vi 1)) 7;
  Graph.add_so g ~from:0 ~into:1;
  Graph.add_so g ~from:1 ~into:0;
  Alcotest.(check bool) "separate steps flagged" true
    (has_cond "xchg-atomic-pair" (Exchanger_spec.consistent g))

let test_mutual_lview_required () =
  let g = Graph.create ~obj:0 ~name:"x" in
  let commit id typ sub lv =
    Graph.commit g
      {
        Event.id;
        obj = 0;
        typ;
        tid = id;
        view = View.bot;
        logview = Lview.of_list lv;
        cix = (3, sub);
      }
  in
  commit 0 (Event.Exchange (vi 1, vi 2)) 0 [ 0 ];
  commit 1 (Event.Exchange (vi 2, vi 1)) 1 [ 1 ];
  Graph.add_so g ~from:0 ~into:1;
  Graph.add_so g ~from:1 ~into:0;
  Alcotest.(check bool) "non-mutual logical views" true
    (has_cond "xchg-mutual-lview" (Exchanger_spec.consistent g))

let test_self_exchange () =
  let g = Graph.create ~obj:0 ~name:"x" in
  Graph.commit g
    {
      Event.id = 0;
      obj = 0;
      typ = Event.Exchange (vi 1, vi 1);
      tid = 0;
      view = View.bot;
      logview = Lview.singleton 0;
      cix = (1, 0);
    };
  Graph.add_so g ~from:0 ~into:0;
  Alcotest.(check bool) "self exchange" true
    (has_cond "xchg-no-self" (Exchanger_spec.consistent g))

let suite =
  [
    Alcotest.test_case "matched pair consistent" `Quick test_good;
    Alcotest.test_case "failed exchange consistent" `Quick
      test_failed_exchange_ok;
    Alcotest.test_case "so symmetry required" `Quick test_asymmetric_so;
    Alcotest.test_case "values must swap" `Quick test_values_must_swap;
    Alcotest.test_case "success needs partner" `Quick test_success_needs_partner;
    Alcotest.test_case "fail must be unpaired" `Quick test_fail_must_be_unpaired;
    Alcotest.test_case "atomic pair required" `Quick test_atomic_pair_required;
    Alcotest.test_case "mutual logical views required" `Quick
      test_mutual_lview_required;
    Alcotest.test_case "no self exchange" `Quick test_self_exchange;
  ]
