open Compass_event
open Helpers

(* Event graphs, registry, snapshots, and DOT export. *)

let test_registry_ids () =
  let r = Registry.create () in
  let g1 = Registry.new_graph r ~name:"a" in
  let g2 = Registry.new_graph r ~name:"b" in
  Alcotest.(check bool) "distinct objects" true (Graph.obj g1 <> Graph.obj g2);
  let e1 = Registry.reserve r and e2 = Registry.reserve r in
  Alcotest.(check bool) "distinct ids" true (e1 <> e2);
  Alcotest.(check string) "lookup" "a" (Graph.name (Registry.graph r (Graph.obj g1)));
  Alcotest.(check int) "graphs listed" 2 (List.length (Registry.graphs r))

let ev id typ preds step = (id, typ, preds, step)

let test_graph_basics () =
  let g =
    mk_graph
      [ ev 0 (Event.Enq (vi 1)) [] 1; ev 1 (Event.Deq (vi 1)) [ 0 ] 2 ]
      [ (0, 1) ]
  in
  Alcotest.(check int) "size" 2 (Graph.size g);
  Alcotest.(check bool) "mem" true (Graph.mem g 0);
  Alcotest.(check bool) "lhb via logview" true (Graph.lhb g ~before:0 ~after:1);
  Alcotest.(check bool) "lhb irreflexive" false (Graph.lhb g ~before:1 ~after:1);
  Alcotest.(check bool) "lhb not symmetric" false (Graph.lhb g ~before:1 ~after:0);
  Alcotest.(check (list (pair int int))) "so" [ (0, 1) ] (Graph.so g);
  Alcotest.(check (list int)) "so_out" [ 1 ] (Graph.so_out g 0);
  Alcotest.(check (list int)) "so_in" [ 0 ] (Graph.so_in g 1)

let test_events_by_cix () =
  let g =
    mk_graph
      [ ev 5 Event.EmpDeq [] 9; ev 3 (Event.Enq (vi 1)) [] 2; ev 4 (Event.Enq (vi 2)) [] 5 ]
      []
  in
  let ids = List.map (fun (e : Event.data) -> e.Event.id) (Graph.events_by_cix g) in
  Alcotest.(check (list int)) "commit order" [ 3; 4; 5 ] ids

let test_included () =
  let small = mk_graph [ ev 0 (Event.Enq (vi 1)) [] 1 ] [] in
  let big =
    mk_graph
      [ ev 0 (Event.Enq (vi 1)) [] 1; ev 1 (Event.Deq (vi 1)) [ 0 ] 2 ]
      [ (0, 1) ]
  in
  Alcotest.(check bool) "snapshot included" true (Graph.included small big);
  Alcotest.(check bool) "not the converse" false (Graph.included big small)

let test_lhb_pairs_and_foreign () =
  (* Logical views may mention events of other objects; lhb restricts to
     this graph. *)
  let g = mk_graph [ ev 0 (Event.Enq (vi 1)) [ 99 ] 1 ] [] in
  Alcotest.(check bool) "foreign id ignored" false (Graph.lhb g ~before:99 ~after:0);
  Alcotest.(check (list (pair int int))) "lhb_pairs" [] (Graph.lhb_pairs g)

let test_dot_export () =
  let g =
    mk_graph
      [ ev 0 (Event.Push (vi 7)) [] 1; ev 1 (Event.Pop (vi 7)) [ 0 ] 2 ]
      [ (0, 1) ]
  in
  let dot = Graph.to_dot g in
  Alcotest.(check bool) "has digraph" true
    (String.length dot > 10 && String.sub dot 0 7 = "digraph");
  let contains needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has so edge" true (contains "e0 -> e1 [color=red]" dot);
  Alcotest.(check bool) "has both nodes" true (contains "Push(7)" dot && contains "Pop(7)" dot)

let test_typ_equal () =
  Alcotest.(check bool) "enq eq" true (Event.typ_equal (Event.Enq (vi 1)) (Event.Enq (vi 1)));
  Alcotest.(check bool) "enq neq" false (Event.typ_equal (Event.Enq (vi 1)) (Event.Enq (vi 2)));
  Alcotest.(check bool) "xchg eq" true
    (Event.typ_equal (Event.Exchange (vi 1, vi 2)) (Event.Exchange (vi 1, vi 2)));
  Alcotest.(check bool) "kinds differ" false
    (Event.typ_equal (Event.Enq (vi 1)) (Event.Push (vi 1)));
  Alcotest.(check bool) "custom eq" true
    (Event.typ_equal (Event.Custom ("x", [ vi 1 ])) (Event.Custom ("x", [ vi 1 ])))

let test_cix_compare () =
  Alcotest.(check bool) "step dominates" true (Event.cix_compare (1, 5) (2, 0) < 0);
  Alcotest.(check bool) "sub breaks ties" true (Event.cix_compare (2, 0) (2, 1) < 0);
  Alcotest.(check int) "equal" 0 (Event.cix_compare (3, 3) (3, 3))

let suite =
  [
    Alcotest.test_case "registry ids and graphs" `Quick test_registry_ids;
    Alcotest.test_case "graph basics" `Quick test_graph_basics;
    Alcotest.test_case "events by commit index" `Quick test_events_by_cix;
    Alcotest.test_case "graph inclusion (snapshots)" `Quick test_included;
    Alcotest.test_case "foreign logview ids" `Quick test_lhb_pairs_and_foreign;
    Alcotest.test_case "dot export" `Quick test_dot_export;
    Alcotest.test_case "typ equality" `Quick test_typ_equal;
    Alcotest.test_case "cix compare" `Quick test_cix_compare;
  ]
