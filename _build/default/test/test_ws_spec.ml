open Compass_rmc
open Compass_event
open Compass_spec
open Helpers

(* WsDequeConsistent on hand-built graphs (experiment E8's spec). *)

let push id v preds step = (id, Event.Push (vi v), preds, step)
let steal id v preds step = (id, Event.Steal (vi v), preds, step)
let emppop id preds step = (id, Event.EmpPop, preds, step)
let empsteal id preds step = (id, Event.EmpSteal, preds, step)
let conds vs = List.map (fun (c : Check.violation) -> c.Check.cond) vs
let has_cond c vs = List.mem c (conds vs)

(* Like mk_graph but with explicit tids (owner vs thieves matter here). *)
let mk_graph_tid events so =
  let g = Graph.create ~obj:0 ~name:"dq" in
  List.iter
    (fun (id, typ, tid, lhb_preds, step) ->
      Graph.commit g
        {
          Event.id;
          obj = 0;
          typ;
          tid;
          view = View.bot;
          logview = Lview.of_list (id :: lhb_preds);
          cix = (step, 0);
        })
    events;
  List.iter (fun (a, b) -> Graph.add_so g ~from:a ~into:b) so;
  g

let owner_pop id v preds step = (id, Event.Pop (vi v), 0, preds, step)
let owner_push id v preds step = (id, Event.Push (vi v), 0, preds, step)
let thief_steal id v preds step = (id, Event.Steal (vi v), 1, preds, step)

let test_good () =
  (* Owner pushes 1, 2; pops 2; thief steals 1. *)
  let g =
    mk_graph_tid
      [
        owner_push 0 1 [] 1;
        owner_push 1 2 [ 0 ] 2;
        owner_pop 2 2 [ 0; 1 ] 3;
        thief_steal 3 1 [ 0 ] 4;
      ]
      [ (1, 2); (0, 3) ]
  in
  Alcotest.(check (list string)) "consistent" [] (conds (Ws_spec.consistent g));
  Alcotest.(check (list string)) "abs ok" [] (conds (Ws_spec.abstract_state g))

let test_matches () =
  let g =
    mk_graph_tid [ owner_push 0 1 [] 1; thief_steal 1 9 [ 0 ] 2 ] [ (0, 1) ]
  in
  Alcotest.(check bool) "mismatch" true (has_cond "ws-matches" (Ws_spec.consistent g))

let test_uniq_double_take () =
  (* The double-take the SC fences prevent: pop and steal both take e0. *)
  let g =
    mk_graph_tid
      [
        owner_push 0 7 [] 1;
        owner_pop 1 7 [ 0 ] 2;
        thief_steal 2 7 [ 0 ] 3;
      ]
      [ (0, 1); (0, 2) ]
  in
  Alcotest.(check bool) "taken twice" true
    (has_cond "ws-uniq" (Ws_spec.consistent g))

let test_owner_discipline () =
  (* A push from a second thread breaks the single-owner discipline. *)
  let g =
    mk_graph_tid
      [ owner_push 0 1 [] 1; (1, Event.Push (vi 2), 1, [ 0 ], 2) ]
      []
  in
  Alcotest.(check bool) "two owners" true
    (has_cond "ws-owner" (Ws_spec.consistent g))

let test_steal_order () =
  (* Steals against push order. *)
  let g =
    mk_graph_tid
      [
        owner_push 0 1 [] 1;
        owner_push 1 2 [ 0 ] 2;
        thief_steal 2 2 [ 0; 1 ] 3;
        thief_steal 3 1 [ 0; 1; 2 ] 4;
      ]
      [ (1, 2); (0, 3) ]
  in
  Alcotest.(check bool) "steal order violated" true
    (has_cond "ws-steal-order" (Ws_spec.consistent g))

let test_owner_lifo () =
  (* The owner pops e0 while a newer visible push e1 is untaken. *)
  let g =
    mk_graph_tid
      [
        owner_push 0 1 [] 1;
        owner_push 1 2 [ 0 ] 2;
        owner_pop 2 1 [ 0; 1 ] 3;
      ]
      [ (0, 2) ]
  in
  Alcotest.(check bool) "owner lifo violated" true
    (has_cond "ws-owner-lifo" (Ws_spec.consistent g))

let test_empty_never_taken () =
  (* A push that happens before the empty steal and is never taken. *)
  let g =
    mk_graph_tid
      [ owner_push 0 1 [] 1; (1, Event.EmpSteal, 1, [ 0 ], 2) ]
      []
  in
  Alcotest.(check bool) "lost element" true
    (has_cond "ws-empty" (Ws_spec.consistent g))

let test_empty_later_take_ok () =
  (* The reservation case: the justifying pop commits AFTER the empty
     steal — allowed for deques (unlike the queue's EMPDEQ). *)
  let g =
    mk_graph_tid
      [
        owner_push 0 1 [] 1;
        (1, Event.EmpSteal, 1, [ 0 ], 2);
        owner_pop 2 1 [ 0 ] 3;
      ]
      [ (0, 2) ]
  in
  Alcotest.(check (list string)) "reservation-justified empty" []
    (conds (Ws_spec.consistent g))

let test_abs_replay () =
  (* Commit-order deque replay: pop takes the back, steal the front. *)
  let g =
    mk_graph_tid
      [
        owner_push 0 1 [] 1;
        owner_push 1 2 [ 0 ] 2;
        thief_steal 2 1 [ 0 ] 3;
        owner_pop 3 2 [ 0; 1 ] 4;
      ]
      [ (0, 2); (1, 3) ]
  in
  Alcotest.(check (list string)) "abs replay ok" []
    (conds (Ws_spec.abstract_state g));
  (* A steal taking the back instead of the front. *)
  let bad =
    mk_graph_tid
      [
        owner_push 0 1 [] 1;
        owner_push 1 2 [ 0 ] 2;
        thief_steal 2 2 [ 0; 1 ] 3;
      ]
      [ (1, 2) ]
  in
  Alcotest.(check bool) "steal from the back flagged" true
    (has_cond "latabs-ws-steal" (Ws_spec.abstract_state bad))

let test_linearize_deque () =
  (* The reservation shape is linearisable by reordering: push,
     empty-steal, pop — the empty steal moves. *)
  let g =
    mk_graph_tid
      [
        owner_push 0 1 [] 1;
        (1, Event.EmpSteal, 1, [], 2);
        owner_pop 2 1 [ 0 ] 3;
      ]
      [ (0, 2) ]
  in
  Alcotest.(check bool) "commit order invalid" false
    (Linearize.commit_order_valid Linearize.Deque g);
  (match Linearize.search Linearize.Deque g with
  | Linearize.Linearizable o ->
      Alcotest.(check bool) "validates" true (Linearize.validate Linearize.Deque g o)
  | _ -> Alcotest.fail "expected linearizable");
  (* Styles dispatch covers Deque. *)
  Alcotest.(check bool) "styles hb" true
    (Styles.check Styles.Hb Styles.Deque g = [])

let suite =
  [
    Alcotest.test_case "conforming deque graph" `Quick test_good;
    Alcotest.test_case "ws-matches" `Quick test_matches;
    Alcotest.test_case "ws-uniq (double take)" `Quick test_uniq_double_take;
    Alcotest.test_case "ws-owner discipline" `Quick test_owner_discipline;
    Alcotest.test_case "ws-steal-order" `Quick test_steal_order;
    Alcotest.test_case "ws-owner-lifo" `Quick test_owner_lifo;
    Alcotest.test_case "ws-empty: lost element" `Quick test_empty_never_taken;
    Alcotest.test_case "ws-empty: reservation allowed" `Quick
      test_empty_later_take_ok;
    Alcotest.test_case "deque abstract replay" `Quick test_abs_replay;
    Alcotest.test_case "deque linearisation" `Quick test_linearize_deque;
  ]
