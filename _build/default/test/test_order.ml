open Compass_event
open Helpers

(* Partial-order utilities. *)

let test_closure () =
  let r = Order.of_pairs ~nodes:[ 0; 1; 2; 3 ] [ (0, 1); (1, 2) ] in
  let c = Order.closure r in
  Alcotest.(check bool) "direct" true (c 0 1);
  Alcotest.(check bool) "transitive" true (c 0 2);
  Alcotest.(check bool) "not backwards" false (c 2 0);
  Alcotest.(check bool) "isolated" false (c 3 0);
  Alcotest.(check bool) "irreflexive" false (c 1 1)

let test_reaches () =
  let r = Order.of_pairs ~nodes:[ 0; 1; 2 ] [ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "reaches" true (Order.reaches r 0 2);
  Alcotest.(check bool) "not reaches" false (Order.reaches r 2 0)

let test_acyclic () =
  let good = Order.of_pairs ~nodes:[ 0; 1; 2 ] [ (0, 1); (1, 2) ] in
  Alcotest.(check bool) "dag acyclic" true (Order.acyclic good);
  let bad = Order.of_pairs ~nodes:[ 0; 1; 2 ] [ (0, 1); (1, 2); (2, 0) ] in
  Alcotest.(check bool) "cycle detected" false (Order.acyclic bad);
  let self = Order.of_pairs ~nodes:[ 0 ] [ (0, 0) ] in
  Alcotest.(check bool) "self loop" false (Order.acyclic self)

let test_topo () =
  let r = Order.of_pairs ~nodes:[ 2; 0; 1 ] [ (0, 1); (1, 2) ] in
  (match Order.topo_sort r with
  | Some o -> Alcotest.(check (list int)) "topo order" [ 0; 1; 2 ] o
  | None -> Alcotest.fail "expected a sort");
  let cyc = Order.of_pairs ~nodes:[ 0; 1 ] [ (0, 1); (1, 0) ] in
  Alcotest.(check bool) "cyclic has none" true (Order.topo_sort cyc = None)

let test_linear_extension () =
  let r = Order.of_pairs ~nodes:[ 0; 1; 2 ] [ (0, 2) ] in
  Alcotest.(check bool) "valid" true (Order.is_linear_extension r [ 1; 0; 2 ]);
  Alcotest.(check bool) "violates edge" false (Order.is_linear_extension r [ 2; 0; 1 ]);
  Alcotest.(check bool) "missing node" false (Order.is_linear_extension r [ 0; 2 ]);
  Alcotest.(check bool) "wrong node set" false (Order.is_linear_extension r [ 0; 2; 5 ])

let test_restrict () =
  let ps = Order.restrict_pairs [ (0, 1); (1, 2); (2, 3) ] (fun x -> x < 2) in
  Alcotest.(check (list (pair int int))) "restricted" [ (0, 1) ] ps

(* QCheck: topo_sort of a DAG is a linear extension; closure contains the
   base relation and is transitive. *)
let prop_topo_is_extension =
  QCheck.Test.make ~name:"topo sort is a linear extension" ~count:300 arb_dag
    (fun (nodes, edges) ->
      let r = Order.of_pairs ~nodes edges in
      match Order.topo_sort r with
      | Some o -> Order.is_linear_extension r o
      | None -> false (* our generator only builds DAGs *))

let prop_closure_transitive =
  QCheck.Test.make ~name:"closure is transitive and contains base" ~count:200
    arb_dag (fun (nodes, edges) ->
      let r = Order.of_pairs ~nodes edges in
      let c = Order.closure r in
      List.for_all (fun (a, b) -> a = b || c a b) edges
      && List.for_all
           (fun a ->
             List.for_all
               (fun b ->
                 List.for_all
                   (fun d -> if c a b && c b d then c a d || a = d else true)
                   nodes)
               nodes)
           nodes)

let prop_dag_acyclic =
  QCheck.Test.make ~name:"generated dags are acyclic" ~count:200 arb_dag
    (fun (nodes, edges) -> Order.acyclic (Order.of_pairs ~nodes edges))

let suite =
  [
    Alcotest.test_case "closure" `Quick test_closure;
    Alcotest.test_case "reaches" `Quick test_reaches;
    Alcotest.test_case "acyclicity" `Quick test_acyclic;
    Alcotest.test_case "topological sort" `Quick test_topo;
    Alcotest.test_case "linear extensions" `Quick test_linear_extension;
    Alcotest.test_case "restrict" `Quick test_restrict;
    qtest prop_topo_is_extension;
    qtest prop_closure_transitive;
    qtest prop_dag_acyclic;
  ]
