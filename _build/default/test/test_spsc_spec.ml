open Compass_event
open Compass_spec
open Helpers

(* The derived SPSC spec (Section 3.2) on hand-built graphs. *)

let conds vs = List.map (fun (c : Check.violation) -> c.Check.cond) vs
let has_cond c vs = List.mem c (conds vs)

let mk events so =
  let g = Graph.create ~obj:0 ~name:"spsc" in
  List.iter
    (fun (id, typ, tid, lhb_preds, step) ->
      Graph.commit g
        {
          Event.id;
          obj = 0;
          typ;
          tid;
          view = Compass_rmc.View.bot;
          logview = Compass_rmc.Lview.of_list (id :: lhb_preds);
          cix = (step, 0);
        })
    events;
  List.iter (fun (a, b) -> Graph.add_so g ~from:a ~into:b) so;
  g

let enq id v preds step = (id, Event.Enq (vi v), 0, preds, step)
let deq id v preds step = (id, Event.Deq (vi v), 1, preds, step)
let empdeq id preds step = (id, Event.EmpDeq, 1, preds, step)

let test_good () =
  let g =
    mk
      [ enq 0 1 [] 1; enq 1 2 [ 0 ] 2; deq 2 1 [ 0 ] 3; deq 3 2 [ 0; 1; 2 ] 4 ]
      [ (0, 2); (1, 3) ]
  in
  Alcotest.(check (list string)) "derived spec holds" []
    (conds (Spsc_spec.consistent g))

let test_two_producers () =
  let g =
    mk
      [ enq 0 1 [] 1; (1, Event.Enq (vi 2), 2, [], 2) ]
      []
  in
  Alcotest.(check bool) "discipline broken" true
    (has_cond "spsc-discipline" (Spsc_spec.consistent g))

let test_same_thread_both_roles () =
  let g = mk [ enq 0 1 [] 1; (1, Event.Deq (vi 1), 0, [ 0 ], 2) ] [ (0, 1) ] in
  Alcotest.(check bool) "producer = consumer flagged" true
    (has_cond "spsc-discipline" (Spsc_spec.consistent g))

let test_out_of_order_consumption () =
  (* The consumer takes the second enqueue first: allowed by the weak
     QUEUE-FIFO (if unordered), but NOT by the derived strict spec. *)
  let g =
    mk
      [ enq 0 1 [] 1; enq 1 2 [ 0 ] 2; deq 2 2 [ 1 ] 3; deq 3 1 [ 0; 2 ] 4 ]
      [ (1, 2); (0, 3) ]
  in
  Alcotest.(check bool) "strict fifo broken" true
    (has_cond "spsc-fifo" (Spsc_spec.consistent g))

let test_empdeq_counting () =
  (* The consumer observed 1 enqueue, consumed 0, yet reports empty. *)
  let g = mk [ enq 0 1 [] 1; empdeq 1 [ 0 ] 2 ] [] in
  Alcotest.(check bool) "counted empdeq" true
    (has_cond "spsc-empdeq" (Spsc_spec.consistent g));
  (* After consuming it, empty is fine. *)
  let g =
    mk
      [ enq 0 1 [] 1; deq 1 1 [ 0 ] 2; empdeq 2 [ 0; 1 ] 3 ]
      [ (0, 1) ]
  in
  Alcotest.(check (list string)) "consumed empdeq fine" []
    (conds (Spsc_spec.consistent g))

let test_unobserved_enqueue_ok () =
  (* An enqueue the consumer has not observed does not forbid empty. *)
  let g = mk [ enq 0 1 [] 1; empdeq 1 [] 2 ] [] in
  Alcotest.(check (list string)) "unobserved enqueue allows empty" []
    (conds (Spsc_spec.consistent g))

let suite =
  [
    Alcotest.test_case "conforming SPSC graph" `Quick test_good;
    Alcotest.test_case "two producers rejected" `Quick test_two_producers;
    Alcotest.test_case "producer=consumer rejected" `Quick
      test_same_thread_both_roles;
    Alcotest.test_case "strict FIFO enforced" `Quick
      test_out_of_order_consumption;
    Alcotest.test_case "counted empty dequeues" `Quick test_empdeq_counting;
    Alcotest.test_case "unobserved enqueue allows empty" `Quick
      test_unobserved_enqueue_ok;
  ]
