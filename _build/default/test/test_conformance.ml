open Compass_rmc
open Compass_machine
open Compass_dstruct
open Prog.Syntax
open Helpers

(* Sequential conformance: random operation sequences executed solo on
   each implementation must agree with a functional reference model.
   This is the property-based bottom layer under the concurrent tests —
   if an implementation is wrong even sequentially, everything above is
   noise. *)

(* Reference models. *)
module Ref_queue = struct
  type t = int list  (* front first *)

  let empty : t = []
  let enq q v = q @ [ v ]
  let deq = function [] -> (None, []) | v :: q -> (Some v, q)
end

module Ref_stack = struct
  type t = int list

  let empty : t = []
  let push s v = v :: s
  let pop = function [] -> (None, []) | v :: s -> (Some v, s)
end

type qop = Enq of int | Deq

let gen_qops =
  QCheck.Gen.(
    list_size (int_range 1 14)
      (oneof [ map (fun n -> Enq (n mod 50)) nat; return Deq ]))

let arb_qops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map (function Enq n -> Printf.sprintf "E%d" n | Deq -> "D") ops))
    gen_qops

(* Run a queue op sequence solo; collect dequeue results. *)
let run_queue (kind : [ `Ms | `Msf | `Hw | `Lock ]) ops =
  let m = Machine.create () in
  let enq, deq =
    match kind with
    | `Ms ->
        let t = Msqueue.create m ~name:"q" in
        ((fun v -> Msqueue.enq t v), fun () -> Msqueue.deq t)
    | `Msf ->
        let t = Msqueue_fences.create m ~name:"q" in
        ((fun v -> Msqueue_fences.enq t v), fun () -> Msqueue_fences.deq t)
    | `Hw ->
        let t = Hwqueue.create ~capacity:20 m ~name:"q" in
        ((fun v -> Hwqueue.enq t v), fun () -> Hwqueue.deq t)
    | `Lock ->
        let t = Lockqueue.create ~capacity:20 m ~name:"q" in
        ((fun v -> Lockqueue.enq t v), fun () -> Lockqueue.deq t)
  in
  let results = ref [] in
  let prog =
    Prog.returning_unit
      (Prog.iter
         (fun op ->
           match op with
           | Enq n -> enq (vi n)
           | Deq ->
               let* v = deq () in
               results := v :: !results;
               Prog.return ())
         ops)
  in
  ignore (Machine.solo m prog);
  List.rev !results

let reference_queue ops =
  let _, results =
    List.fold_left
      (fun (q, rs) op ->
        match op with
        | Enq n -> (Ref_queue.enq q n, rs)
        | Deq ->
            let v, q' = Ref_queue.deq q in
            (q', v :: rs))
      (Ref_queue.empty, []) ops
  in
  List.rev results

let queue_conforms kind ops =
  let got = run_queue kind ops in
  let want =
    List.map
      (function Some n -> Value.Int n | None -> Value.Null)
      (reference_queue ops)
  in
  List.length got = List.length want && List.for_all2 Value.equal got want

let prop_queue kind name =
  QCheck.Test.make ~name ~count:150 arb_qops (fun ops -> queue_conforms kind ops)

(* Stacks. *)
type sop = Push of int | Pop

let gen_sops =
  QCheck.Gen.(
    list_size (int_range 1 14)
      (oneof [ map (fun n -> Push (n mod 50)) nat; return Pop ]))

let arb_sops =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map (function Push n -> Printf.sprintf "P%d" n | Pop -> "O") ops))
    gen_sops

let run_stack (kind : [ `Treiber | `Es | `Lock ]) ops =
  let m = Machine.create () in
  let push, pop =
    match kind with
    | `Treiber ->
        let t = Treiber.create m ~name:"s" in
        ((fun v -> Treiber.push t v), fun () -> Treiber.pop t)
    | `Es ->
        let t = Elimination.create m ~name:"s" in
        ((fun v -> Elimination.push t v), fun () -> Elimination.pop t)
    | `Lock ->
        let t = Lockstack.create ~capacity:20 m ~name:"s" in
        ((fun v -> Lockstack.push t v), fun () -> Lockstack.pop t)
  in
  let results = ref [] in
  let prog =
    Prog.returning_unit
      (Prog.iter
         (fun op ->
           match op with
           | Push n -> push (vi n)
           | Pop ->
               let* v = pop () in
               results := v :: !results;
               Prog.return ())
         ops)
  in
  ignore (Machine.solo m prog);
  List.rev !results

let reference_stack ops =
  let _, results =
    List.fold_left
      (fun (s, rs) op ->
        match op with
        | Push n -> (Ref_stack.push s n, rs)
        | Pop ->
            let v, s' = Ref_stack.pop s in
            (s', v :: rs))
      (Ref_stack.empty, []) ops
  in
  List.rev results

let stack_conforms kind ops =
  let got = run_stack kind ops in
  let want =
    List.map
      (function Some n -> Value.Int n | None -> Value.Null)
      (reference_stack ops)
  in
  List.length got = List.length want && List.for_all2 Value.equal got want

let prop_stack kind name =
  QCheck.Test.make ~name ~count:150 arb_sops (fun ops -> stack_conforms kind ops)

(* Deque: owner-only solo sequences behave as a stack (owner pops LIFO). *)
let run_deque ops =
  let m = Machine.create () in
  let t = Chaselev.create ~capacity:20 m ~name:"dq" in
  let results = ref [] in
  let prog =
    Prog.returning_unit
      (Prog.iter
         (fun op ->
           match op with
           | Push n -> Chaselev.push t (vi n)
           | Pop ->
               let* v = Chaselev.pop t in
               results := v :: !results;
               Prog.return ())
         ops)
  in
  ignore (Machine.solo m prog);
  List.rev !results

let prop_deque_owner_lifo =
  QCheck.Test.make ~name:"chaselev owner-solo behaves as a stack" ~count:150
    arb_sops (fun ops ->
      (* Capacity guard: skip sequences pushing too much. *)
      let pushes = List.length (List.filter (function Push _ -> true | _ -> false) ops) in
      QCheck.assume (pushes <= 18);
      let got = run_deque ops in
      let want =
        List.map
          (function Some n -> Value.Int n | None -> Value.Null)
          (reference_stack ops)
      in
      List.length got = List.length want && List.for_all2 Value.equal got want)

let suite =
  [
    qtest (prop_queue `Ms "msqueue conforms to the reference queue");
    qtest (prop_queue `Msf "msqueue-fences conforms to the reference queue");
    qtest (prop_queue `Hw "hwqueue conforms to the reference queue");
    qtest (prop_queue `Lock "lockqueue conforms to the reference queue");
    qtest (prop_stack `Treiber "treiber conforms to the reference stack");
    qtest (prop_stack `Es "elimination conforms to the reference stack");
    qtest (prop_stack `Lock "lockstack conforms to the reference stack");
    qtest prop_deque_owner_lifo;
  ]
