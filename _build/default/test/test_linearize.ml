open Compass_event
open Compass_spec
open Helpers

(* LAThist: commit-order fast path and the reordering search. *)

let enq id v preds step = (id, Event.Enq (vi v), preds, step)
let deq id v preds step = (id, Event.Deq (vi v), preds, step)
let push id v preds step = (id, Event.Push (vi v), preds, step)
let pop id v preds step = (id, Event.Pop (vi v), preds, step)
let emppop id preds step = (id, Event.EmpPop, preds, step)

let test_commit_order_valid () =
  let g =
    mk_graph
      [ push 0 1 [] 1; push 1 2 [ 0 ] 2; pop 2 2 [ 0; 1 ] 3; pop 3 1 [ 0; 1 ] 4 ]
      [ (1, 2); (0, 3) ]
  in
  Alcotest.(check bool) "commit order is a valid to" true
    (Linearize.commit_order_valid Linearize.Stack g)

let test_commit_order_invalid_but_searchable () =
  (* Herlihy-Wing shape: enqueue commits out of FIFO order relative to the
     dequeues; commit order replay fails but a reordering exists.  Commit
     order: Enq2, Enq1, Deq1, Deq2 — with NO lhb between the enqueues the
     search can reorder them. *)
  let g =
    mk_graph
      [
        enq 1 2 [] 1;
        enq 0 1 [] 2;
        deq 2 1 [ 0 ] 3;
        deq 3 2 [ 1; 2 ] 4;
      ]
      [ (0, 2); (1, 3) ]
  in
  Alcotest.(check bool) "commit order fails" false
    (Linearize.commit_order_valid Linearize.Queue g);
  (match Linearize.search Linearize.Queue g with
  | Linearize.Linearizable order ->
      Alcotest.(check bool) "witness validates" true
        (Linearize.validate Linearize.Queue g order)
  | _ -> Alcotest.fail "expected linearizable")

let test_stale_empty_pop_reordered () =
  (* An EmpPop committed while the stack is non-empty (stale read), but
     with no lhb from the push: [to] may move it before the push. *)
  let g =
    mk_graph
      [ push 0 1 [] 1; emppop 1 [] 2; pop 2 1 [ 0 ] 3 ]
      [ (0, 2) ]
  in
  Alcotest.(check bool) "commit order fails (strict empty)" false
    (Linearize.commit_order_valid Linearize.Stack g);
  match Linearize.search Linearize.Stack g with
  | Linearize.Linearizable order ->
      (* The EmpPop must land at a position where the stack is empty: i.e.
         not between the push and its pop. *)
      let pos x = Option.get (List.find_index (( = ) x) order) in
      Alcotest.(check bool) "emppop outside push..pop window" true
        (pos 1 < pos 0 || pos 1 > pos 2);
      Alcotest.(check bool) "validates" true
        (Linearize.validate Linearize.Stack g order)
  | _ -> Alcotest.fail "expected linearizable"

let test_not_linearizable () =
  (* An EmpPop that happens-after the push and before its pop in lhb — no
     valid placement. *)
  let g =
    mk_graph
      [ push 0 1 [] 1; emppop 1 [ 0 ] 2; pop 2 1 [ 0; 1 ] 3 ]
      [ (0, 2) ]
  in
  (match Linearize.search Linearize.Stack g with
  | Linearize.Not_linearizable -> ()
  | Linearize.Linearizable o ->
      Alcotest.failf "unexpected witness [%s]"
        (String.concat ";" (List.map string_of_int o))
  | Linearize.Gave_up -> Alcotest.fail "gave up");
  (* And the graph checker agrees via stack-emppop. *)
  Alcotest.(check bool) "graph checker catches it" true
    (List.exists
       (fun (c : Check.violation) -> c.Check.cond = "stack-emppop")
       (Stack_spec.consistent g))

let test_lifo_unlinearizable () =
  (* Pop order contradicting LIFO with full lhb ordering. *)
  let g =
    mk_graph
      [
        push 0 1 [] 1;
        push 1 2 [ 0 ] 2;
        pop 2 1 [ 0; 1 ] 3;
        pop 3 2 [ 0; 1; 2 ] 4;
      ]
      [ (0, 2); (1, 3) ]
  in
  match Linearize.search Linearize.Stack g with
  | Linearize.Not_linearizable -> ()
  | _ -> Alcotest.fail "expected not linearizable"

let test_validate_rejects_bad_orders () =
  let g =
    mk_graph [ push 0 1 [] 1; pop 1 1 [ 0 ] 2 ] [ (0, 1) ]
  in
  Alcotest.(check bool) "good order" true
    (Linearize.validate Linearize.Stack g [ 0; 1 ]);
  Alcotest.(check bool) "wrong order" false
    (Linearize.validate Linearize.Stack g [ 1; 0 ]);
  Alcotest.(check bool) "missing event" false
    (Linearize.validate Linearize.Stack g [ 0 ])

let test_search_respects_lhb () =
  (* Two pushes ordered by lhb must appear in that order in any witness. *)
  let g =
    mk_graph [ push 0 1 [] 1; push 1 2 [ 0 ] 2 ] []
  in
  match Linearize.search Linearize.Stack g with
  | Linearize.Linearizable [ 0; 1 ] -> ()
  | Linearize.Linearizable o ->
      Alcotest.failf "order violates lhb: [%s]"
        (String.concat ";" (List.map string_of_int o))
  | _ -> Alcotest.fail "expected linearizable"

let test_gave_up () =
  (* A tiny budget forces Gave_up on a graph needing search. *)
  let g =
    mk_graph
      [ enq 1 2 [] 1; enq 0 1 [] 2; deq 2 1 [ 0 ] 3; deq 3 2 [ 1 ] 4 ]
      [ (0, 2); (1, 3) ]
  in
  match Linearize.search ~max_nodes:1 Linearize.Queue g with
  | Linearize.Gave_up -> ()
  | _ -> Alcotest.fail "expected give-up"

let test_empty_graph () =
  let g = mk_graph [] [] in
  Alcotest.(check bool) "empty commit order valid" true
    (Linearize.commit_order_valid Linearize.Queue g);
  match Linearize.search Linearize.Queue g with
  | Linearize.Linearizable [] -> ()
  | _ -> Alcotest.fail "empty graph linearizes trivially"

let suite =
  [
    Alcotest.test_case "commit order valid (Treiber shape)" `Quick
      test_commit_order_valid;
    Alcotest.test_case "HW shape needs reordering" `Quick
      test_commit_order_invalid_but_searchable;
    Alcotest.test_case "stale empty pop reordered" `Quick
      test_stale_empty_pop_reordered;
    Alcotest.test_case "unjustifiable empty pop" `Quick test_not_linearizable;
    Alcotest.test_case "lifo contradiction" `Quick test_lifo_unlinearizable;
    Alcotest.test_case "validate rejects bad orders" `Quick
      test_validate_rejects_bad_orders;
    Alcotest.test_case "search respects lhb" `Quick test_search_respects_lhb;
    Alcotest.test_case "budget exhaustion" `Quick test_gave_up;
    Alcotest.test_case "empty graph" `Quick test_empty_graph;
  ]
