open Compass_rmc
open Compass_event
open Compass_spec
open Helpers

(* StackConsistent on hand-built graphs. *)

let push id v preds step = (id, Event.Push (vi v), preds, step)
let pop id v preds step = (id, Event.Pop (vi v), preds, step)
let emppop id preds step = (id, Event.EmpPop, preds, step)
let conds vs = List.map (fun (c : Check.violation) -> c.Check.cond) vs
let has_cond c vs = List.mem c (conds vs)

let test_good_lifo () =
  (* push 1, push 2, pop 2, pop 1 — sequential LIFO. *)
  let g =
    mk_graph
      [
        push 0 1 [] 1;
        push 1 2 [ 0 ] 2;
        pop 2 2 [ 0; 1 ] 3;
        pop 3 1 [ 0; 1; 2 ] 4;
      ]
      [ (1, 2); (0, 3) ]
  in
  Alcotest.(check (list string)) "consistent" [] (conds (Stack_spec.consistent g));
  Alcotest.(check (list string)) "abs ok" [] (conds (Stack_spec.abstract_state g))

let test_matches () =
  let g = mk_graph [ push 0 1 [] 1; pop 1 2 [ 0 ] 2 ] [ (0, 1) ] in
  Alcotest.(check bool) "value mismatch" true
    (has_cond "stack-matches" (Stack_spec.consistent g))

let test_uniq () =
  let g =
    mk_graph
      [ push 0 1 [] 1; pop 1 1 [ 0 ] 2; pop 2 1 [ 0; 1 ] 3 ]
      [ (0, 1); (0, 2) ]
  in
  Alcotest.(check bool) "popped twice" true
    (has_cond "stack-uniq" (Stack_spec.consistent g))

let test_lifo_violation () =
  (* pop takes e0 although e1 (pushed after e0, visible to the pop) is
     unpopped: FIFO behaviour, LIFO violation. *)
  let g =
    mk_graph
      [ push 0 1 [] 1; push 1 2 [ 0 ] 2; pop 2 1 [ 0; 1 ] 3 ]
      [ (0, 2) ]
  in
  Alcotest.(check bool) "lifo violation" true
    (has_cond "stack-lifo" (Stack_spec.consistent g))

let test_lifo_ok_concurrent () =
  (* Concurrent pushes: no lhb between them, either pop order fine. *)
  let g =
    mk_graph
      [ push 0 1 [] 1; push 1 2 [] 2; pop 2 1 [ 0 ] 3; pop 3 2 [ 1; 2 ] 4 ]
      [ (0, 2); (1, 3) ]
  in
  Alcotest.(check (list string)) "weak lifo allows it" []
    (conds (Stack_spec.consistent g))

let test_emppop_violation () =
  let g = mk_graph [ push 0 1 [] 1; emppop 1 [ 0 ] 2 ] [] in
  Alcotest.(check bool) "emppop violation" true
    (has_cond "stack-emppop" (Stack_spec.consistent g))

let test_emppop_ok () =
  let g =
    mk_graph
      [ push 0 1 [] 1; pop 1 1 [ 0 ] 2; emppop 2 [ 0; 1 ] 3 ]
      [ (0, 1) ]
  in
  Alcotest.(check (list string)) "consistent" [] (conds (Stack_spec.consistent g))

(* Same-step (eliminated) pairs: push at (s,0), pop at (s,1), mutually
   within one commit step, as the elimination stack produces. *)
let test_eliminated_pair () =
  let g = Graph.create ~obj:0 ~name:"es" in
  let commit id typ sub logview =
    Graph.commit g
      {
        Event.id;
        obj = 0;
        typ;
        tid = 0;
        view = View.bot;
        logview = Lview.of_list logview;
        cix = (5, sub);
      }
  in
  commit 0 (Event.Push (vi 9)) 0 [ 0 ];
  commit 1 (Event.Pop (vi 9)) 1 [ 0; 1 ];
  Graph.add_so g ~from:0 ~into:1;
  Alcotest.(check (list string)) "eliminated pair consistent" []
    (conds (Stack_spec.consistent g));
  Alcotest.(check (list string)) "abs replay fine" []
    (conds (Stack_spec.abstract_state g))

let test_abs_lifo () =
  (* Commit order: push1 push2 pop1 — top is 2. *)
  let g =
    mk_graph
      [ push 0 1 [] 1; push 1 2 [ 0 ] 2; pop 2 1 [ 0; 1 ] 3 ]
      [ (0, 2) ]
  in
  Alcotest.(check bool) "latabs-lifo" true
    (has_cond "latabs-lifo" (Stack_spec.abstract_state g))

let test_abs_empty_modes () =
  let g = mk_graph [ push 0 1 [] 1; emppop 1 [] 2 ] [] in
  Alcotest.(check (list string)) "RMC lenient" []
    (conds (Stack_spec.abstract_state g));
  Alcotest.(check bool) "SC strict" true
    (has_cond "latabs-empty" (Stack_spec.abstract_state ~require_empty:true g))

let test_abs_pop_on_empty () =
  let g = mk_graph [ pop 0 1 [] 1; push 1 1 [] 2 ] [ (1, 0) ] in
  Alcotest.(check bool) "pop before any push" true
    (has_cond "latabs-nonempty" (Stack_spec.abstract_state g))

let suite =
  [
    Alcotest.test_case "sequential LIFO is consistent" `Quick test_good_lifo;
    Alcotest.test_case "stack-matches" `Quick test_matches;
    Alcotest.test_case "stack-uniq" `Quick test_uniq;
    Alcotest.test_case "stack-lifo violation" `Quick test_lifo_violation;
    Alcotest.test_case "weak lifo allows concurrent pushes" `Quick
      test_lifo_ok_concurrent;
    Alcotest.test_case "stack-emppop violation" `Quick test_emppop_violation;
    Alcotest.test_case "emppop after pop" `Quick test_emppop_ok;
    Alcotest.test_case "eliminated same-step pair" `Quick test_eliminated_pair;
    Alcotest.test_case "latabs-lifo" `Quick test_abs_lifo;
    Alcotest.test_case "latabs empty modes" `Quick test_abs_empty_modes;
    Alcotest.test_case "latabs pop on empty" `Quick test_abs_pop_on_empty;
  ]
