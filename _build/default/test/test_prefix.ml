open Compass_event
open Compass_machine
open Compass_spec
open Compass_dstruct
open Compass_clients

(* Prefix-closedness: the paper's consistency conditions are *invariants*
   — "maintained by all operations" — so they must hold not only on the
   final graph but after every commit step.  We sample executions per
   structure and check every step-boundary prefix.  (Cutting inside a
   step would expose the helped-pair intermediate states that the paper
   explicitly says are NOT consistent — Section 4.2 — so prefixes are
   taken at whole steps.) *)

let step_prefixes g =
  let steps =
    Graph.events g
    |> List.map (fun (e : Event.data) -> fst e.Event.cix)
    |> List.sort_uniq compare
  in
  List.map (fun s -> Graph.prefix g ~upto:(s, 0)) steps @ [ g ]

let check_all_prefixes name checker g =
  List.iteri
    (fun i p ->
      match checker p with
      | [] -> ()
      | (v : Check.violation) :: _ ->
          Alcotest.failf "%s: prefix %d (of %d events) violates %s: %s" name i
            (Graph.size p) v.Check.cond v.Check.detail)
    (step_prefixes g)

(* Sample finished executions of a scenario and apply a per-graph check. *)
let sample_and_check ?(execs = 120) ~seed build checker name =
  let found = ref 0 in
  let s = ref seed in
  while !found < execs && !s < seed + (execs * 40) do
    let m = Machine.create () in
    let g, threads = build m in
    Machine.spawn m threads;
    (match Machine.run m (Oracle.random ~seed:!s) with
    | Machine.Finished _ ->
        incr found;
        check_all_prefixes name checker g
    | _ -> ());
    incr s
  done;
  Alcotest.(check bool) (name ^ " sampled enough") true (!found > execs / 2)

let vi n = Compass_rmc.Value.Int n

let queue_build (factory : Iface.queue_factory) m =
  let q = factory.make_queue m ~name:"q" in
  ( q.Iface.q_graph,
    [
      Prog.returning_unit (Prog.seq [ q.Iface.enq (vi 1); q.Iface.enq (vi 2) ]);
      Prog.returning_unit (Prog.seq [ q.Iface.enq (vi 3) ]);
      Prog.bind (q.Iface.deq ()) (fun _ -> q.Iface.deq ());
      Prog.bind (q.Iface.deq ()) (fun _ -> Prog.return Compass_rmc.Value.Unit);
    ] )

let stack_build (factory : Iface.stack_factory) m =
  let s = factory.make_stack m ~name:"s" in
  ( s.Iface.s_graph,
    [
      Prog.returning_unit (Prog.seq [ s.Iface.push (vi 1); s.Iface.push (vi 2) ]);
      Prog.bind (s.Iface.pop ()) (fun _ -> s.Iface.pop ());
      Prog.bind (s.Iface.pop ()) (fun _ -> Prog.return Compass_rmc.Value.Unit);
    ] )

let test_msqueue () =
  sample_and_check ~seed:100 (queue_build Msqueue.instantiate)
    Queue_spec.consistent "msqueue prefixes"

let test_hwqueue () =
  sample_and_check ~seed:200 (queue_build Hwqueue.instantiate)
    Queue_spec.consistent "hwqueue prefixes"

let test_treiber () =
  sample_and_check ~seed:300 (stack_build Treiber.instantiate)
    Stack_spec.consistent "treiber prefixes"

let test_elimination () =
  sample_and_check ~seed:400 (stack_build Elimination.instantiate)
    Stack_spec.consistent "elimination prefixes"

let test_exchanger () =
  sample_and_check ~seed:500 ~execs:80
    (fun m ->
      let x = Exchanger.create m ~name:"x" in
      ( Exchanger.graph x,
        [ Exchanger.exchange x (vi 1); Exchanger.exchange x (vi 2) ] ))
    Exchanger_spec.consistent "exchanger prefixes"

let test_chaselev () =
  sample_and_check ~seed:600 ~execs:80
    (fun m ->
      let t = Chaselev.create m ~name:"dq" in
      let owner =
        Prog.bind
          (Prog.seq [ Chaselev.push t (vi 1); Chaselev.push t (vi 2) ])
          (fun () -> Chaselev.pop t)
      in
      (Chaselev.graph t, [ owner; Chaselev.steal t ]))
    Ws_spec.consistent "chaselev prefixes"

(* Snapshot property: every prefix is included in the full graph. *)
let test_prefix_included () =
  sample_and_check ~seed:700 ~execs:60 (queue_build Msqueue.instantiate)
    (fun _ -> [])
    "inclusion sampling";
  let m = Machine.create () in
  let g, threads = queue_build Msqueue.instantiate m in
  Machine.spawn m threads;
  (match Machine.run m (Oracle.random ~seed:9) with
  | Machine.Finished _ -> ()
  | o -> Alcotest.failf "unexpected %a" Machine.pp_outcome o);
  List.iter
    (fun p ->
      Alcotest.(check bool) "prefix included in full graph" true
        (Graph.included p g))
    (step_prefixes g)

(* The MP client's invariant (deqPerm) holds at every prefix too. *)
let test_mp_invariant_stepwise () =
  let st = Mp.fresh_stats () in
  let sc = Mp.make Msqueue.instantiate st in
  let config = Machine.default_config in
  for seed = 0 to 120 do
    let m = Machine.create ~config () in
    let judge = sc.Explore.build m in
    let outcome = Machine.run m (Oracle.random ~seed) in
    ignore (judge outcome);
    match outcome with
    | Machine.Finished _ ->
        let g = Registry.graph (Machine.registry m) 0 in
        List.iter
          (fun p ->
            Alcotest.(check bool) "deqPerm at prefix" true
              (List.length (Graph.so p) <= 2))
          (step_prefixes g)
    | _ -> ()
  done

let suite =
  [
    Alcotest.test_case "msqueue prefix-closed" `Slow test_msqueue;
    Alcotest.test_case "hwqueue prefix-closed" `Slow test_hwqueue;
    Alcotest.test_case "treiber prefix-closed" `Slow test_treiber;
    Alcotest.test_case "elimination prefix-closed" `Slow test_elimination;
    Alcotest.test_case "exchanger prefix-closed" `Slow test_exchanger;
    Alcotest.test_case "chaselev prefix-closed" `Slow test_chaselev;
    Alcotest.test_case "prefixes are snapshots" `Quick test_prefix_included;
    Alcotest.test_case "MP deqPerm holds stepwise" `Slow
      test_mp_invariant_stepwise;
  ]
