(** Shared utilities with no dependency on the rest of the tree.

    - {!Jsonout}: the minimal JSON emitter behind every [--json] flag and
      benchmark artifact ([audit-*.json], [BENCH_*.json], [fuzz-*.json]) —
      one copy, so analysis, fuzzing and the benches stop growing private
      emitters;
    - {!Report}: stamped report emission — every JSON artifact carries
      [schema_version], the emitting tool, the toolkit version, and the
      run seed. *)

module Jsonout = Jsonout
module Report = Report
