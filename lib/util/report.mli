(** Stamped JSON report emission — the one place every [--json] flag and
    benchmark artifact goes through.

    Each emitted object carries a provenance header: the report
    [schema_version] (bumped on breaking shape changes), the emitting
    [tool] (a subcommand name like ["analyze-modes"]), the toolkit
    [version], and the run [seed] when the producing exploration was
    seeded.  Consumers (CI trend scripts) can then reject shapes they do
    not understand instead of misparsing them. *)

val schema_version : int
val version : string
(** the toolkit version ({!Core.version} re-exports this) *)

val stamp : ?seed:int -> tool:string -> Jsonout.t -> Jsonout.t
(** prepend the provenance header to an [Obj] (other payloads are
    wrapped as [{"payload": ...}] first) *)

val write : ?seed:int -> tool:string -> file:string -> Jsonout.t -> unit
(** [stamp] then write to [file] (with trailing newline) *)

val to_string : ?seed:int -> tool:string -> Jsonout.t -> string
