(** A minimal JSON emitter for the reports the CLI and benches write for
    CI artifacts ([compass analyze/fuzz ... --json], [BENCH_*.json]).
    Strings are escaped; floats print as [%.6g] (non-finite as [null]);
    output is pretty-printed with a trailing newline. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
val int_array : int array -> t
val str_list : string list -> t
val opt : ('a -> t) -> 'a option -> t
