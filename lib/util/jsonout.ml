(* A minimal JSON emitter — just enough for the analysis reports the CLI
   writes for CI artifacts.  No parsing, no dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* JSON has no inf/nan; map them to null rather than emit invalid text. *)
let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else
    (* Shortest representation that still round-trips enough precision for
       benchmark numbers; %.17g would be exact but unreadable. *)
    let s = Printf.sprintf "%.6g" f in
    if String.contains s '.' || String.contains s 'e' then s else s ^ ".0"

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf ~indent ~level j =
  let pad n = String.make (n * indent) ' ' in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (level + 1));
          emit buf ~indent ~level:(level + 1) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad level);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (level + 1));
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          emit buf ~indent ~level:(level + 1) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad level);
      Buffer.add_char buf '}'

let to_string ?(indent = 2) j =
  let buf = Buffer.create 256 in
  emit buf ~indent ~level:0 j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let int_array a = List (Array.to_list a |> List.map (fun i -> Int i))
let str_list l = List (List.map (fun s -> Str s) l)
let opt f = function None -> Null | Some v -> f v
