(* Stamped JSON report emission (see report.mli). *)

let schema_version = 1
let version = "1.1.0"

let stamp ?seed ~tool json =
  let payload =
    match json with
    | Jsonout.Obj fields -> fields
    | other -> [ ("payload", other) ]
  in
  let header =
    [
      ("schema_version", Jsonout.Int schema_version);
      ("tool", Jsonout.Str tool);
      ("version", Jsonout.Str version);
    ]
    @ match seed with None -> [] | Some s -> [ ("seed", Jsonout.Int s) ]
  in
  Jsonout.Obj (header @ payload)

let to_string ?seed ~tool json = Jsonout.to_string (stamp ?seed ~tool json)

let write ?seed ~tool ~file json =
  let oc = open_out file in
  output_string oc (to_string ?seed ~tool json);
  close_out oc
