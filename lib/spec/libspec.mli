open Compass_rmc
open Compass_event
open Compass_machine

(** First-class library specifications and the central spec registry.

    The paper's core claim is that each library gets {e one} spec object,
    arranged in a strength ladder (LATso-abs / LAThb-abs / LAThb /
    LAThist), that clients program against instead of implementations.
    This module makes that architecture literal:

    - {!t} is the common specification signature: a name, the event-graph
      consistency predicate, the commit-point abstract-state machine, and
      (when one exists) the sequential kind driving linearisation;
    - {!check} is the one generic style checker — the per-kind dispatch
      that used to be duplicated across [Styles], [check.ml] and
      [harness.ml] judges lives here once;
    - {!transition}/{!replay} expose the spec's abstract machine as an
      executable object, which {!Compass_dstruct.Specobj} turns into a
      reference implementation ("spec-as-implementation"): abstract
      transitions executed atomically at commit points;
    - the {!entry} registry binds each [lib/dstruct] structure to its
      spec, default workloads, ladder expectations and site metadata, so
      every tool resolves [--struct] through a single table. *)

(** {1 The spec-style ladder} *)

type style = So_abs | Hb_abs | Hb | Hist | Sc_abs
(** see {!Styles} (which re-exports this type) for the paper mapping *)

val style_name : style -> string
val style_of_string : string -> style option
val all_styles : style list

type kind = Linearize.kind = Queue | Stack | Deque

(** {1 The common specification signature} *)

type t = {
  name : string;  (** spec name, e.g. ["queue"] *)
  kind : kind option;
      (** sequential kind for linearisation / abstract replay; [None] for
          specs without one (exchanger) *)
  consistent : Graph.t -> Check.violation list;
      (** the event-graph consistency predicate (the paper's
          XxxConsistent) — the LAThb leg *)
  abstract : (?require_empty:bool -> Graph.t -> Check.violation list) option;
      (** commit-point abstract-state replay (the LATabs legs);
          [require_empty] adds the SC-only truly-empty condition *)
}

val queue : t
val stack : t
val deque : t
val exchanger : t
val spsc : t
(** the derived SPSC spec of Section 3.2: QueueConsistent strengthened by
    the single-producer/single-consumer discipline *)

val of_kind : kind -> t
(** the plain per-kind instance ([queue] / [stack] / [deque]) *)

val check : ?max_nodes:int -> style -> t -> Graph.t -> Check.violation list
(** check one style of one spec on one execution's graph.  This is the
    single generic checker: [Hb] runs [consistent], the abs styles run
    [abstract], [Hist] adds the linearisable-history search (via the
    spec's [kind]).  Styles a spec has no machinery for check vacuously. *)

(** {1 Judge glue}

    The verdict plumbing shared by every scenario judge (previously
    duplicated in [harness.ml]). *)

val first_violation : Check.violation list -> Explore.verdict

val ( &&& ) :
  ('a -> Explore.verdict) -> ('a -> Explore.verdict) -> 'a -> Explore.verdict
(** combine judges; first violation wins *)

val graph_judge : ?max_nodes:int -> style -> t -> Graph.t -> 'a -> Explore.verdict
(** judge an execution by checking [style] on the graph *)

(** {1 The abstract machine, executable}

    The spec's abstract state is the sequential object's contents, each
    element paired with the event id of the operation that inserted it
    (so the generated [so] edges match insertions to removals exactly). *)

type astate = (Value.t * int) list

type op_req =
  | Insert of Value.t
  | Remove  (** dequeue / pop; commits the empty event on empty state *)

val transition :
  kind -> astate -> id:int -> op_req -> astate * Event.typ * (int * int) list
(** one atomic abstract transition: the new state, the event to commit
    (with the fresh event id [id]) and its [so] edges *)

val op_of_typ : Event.typ -> op_req option
(** the operation request a committed event records ([None] for events
    outside the sequential-kind vocabulary: exchanges, custom events) *)

val removed_value : Event.typ -> Value.t option
(** the value a successful removal carried ([Deq]/[Pop]/[Steal]) *)

val replay : kind -> Graph.t -> astate
(** fold the graph's committed events in commit order through the
    abstract machine — the spec object's current state.  Only meaningful
    on graphs populated by the spec object itself (every commit is an
    abstract transition by construction). *)

(** {1 The registry} *)

type impl = ..
(** implementation payloads are contributed by higher layers (the
    structure factories live in [lib/dstruct], which depends on this
    library) — see {!Compass_clients.Specreg} *)

type impl += No_impl  (** structures without an implementation-generic factory *)

type entry = {
  key : string;  (** the CLI [--struct] key, e.g. ["ms"] *)
  struct_name : string;  (** implementation name, e.g. ["ms-queue"] *)
  descr : string;
  spec : t;
  impl : impl;
  ladder : (style * bool) list;
      (** expected style satisfaction (experiment E2's matrix row);
          empty when the structure is not part of the matrix *)
  site_prefix : string option;
      (** label prefix of the structure's instrumented sites *)
  scenarios : (unit -> Explore.scenario) list;
      (** default client workloads (the audit probes): scenario 0 is the
          MP-style client where one exists *)
  smoke : unit -> Explore.scenario;
      (** small default workload for registry smoke checks *)
  expect_violation : bool;
      (** checked-in broken fixtures: the smoke workload must fail *)
  refinable : bool;
      (** a spec-object factory exists, so the refinement driver applies *)
}

val register : entry -> unit
(** @raise Invalid_argument on duplicate keys *)

val find : string -> entry option

val all : unit -> entry list
(** in registration order *)

val keys : unit -> string list
