open Compass_event

(** The spec-style hierarchy (paper, Sections 2.3-3.3), as checkable
    predicates on one execution's graph:

    - [So_abs]: commit-point abstract state only (Cosmo's demand);
    - [Hb]: graph consistency only (lhb/so conditions) — the LAThb style;
    - [Hb_abs]: both — LAThb-abs;
    - [Hist]: both plus a linearisable history — LAThist;
    - [Sc_abs]: the SC spec of Figure 2 including the truly-empty
      condition — satisfied by no relaxed implementation (Section 2.3's
      "an RMC spec cannot be quite as strong as the SC spec"), only by
      the coarse-grained lock baselines.

    An implementation "satisfies" a style when every explored execution
    passes — the checking counterpart of the paper's per-style
    verification results (experiment E2's matrix). *)

type style = Libspec.style = So_abs | Hb_abs | Hb | Hist | Sc_abs

val style_name : style -> string
val all_styles : style list

type kind = Linearize.kind = Queue | Stack | Deque

val graph_consistent : kind -> Graph.t -> Check.violation list
val abs_consistent : ?require_empty:bool -> kind -> Graph.t -> Check.violation list

val check : ?max_nodes:int -> style -> kind -> Graph.t -> Check.violation list
(** check one style on one execution's graph; [max_nodes] bounds the
    LAThist search *)

(** {1 Aggregation across executions} *)

type tally = {
  mutable execs : int;
  mutable failed : int;
  mutable example : Check.violation option;
}

val fresh_tally : unit -> tally
val tally_one : tally -> Check.violation list -> unit
val satisfied : tally -> bool
val pp_tally : Format.formatter -> tally -> unit
