open Compass_rmc
open Compass_event

(* StackConsistent — the LIFO analogue of QueueConsistent (the paper gives
   the queue instance in Figure 2 and notes in Section 4.1 that "the key
   difference is the change from FIFO to LIFO in consistency"). *)

let before (a : Event.data) (b : Event.data) = Event.cix_compare a.cix b.cix < 0

let check_matches g =
  List.fold_left
    (fun acc (e_id, d_id) ->
      let e = Graph.find g e_id and d = Graph.find g d_id in
      match (e.Event.typ, d.Event.typ) with
      | Event.Push v, Event.Pop w when Value.equal v w -> acc
      | _ ->
          Check.v "stack-matches" "so pair (%a, %a) mismatched" Event.pp e
            Event.pp d
          :: acc)
    [] (Graph.so g)

(* so-degree scans over the (short) edge list, allocating nothing — the
   checkers run on every completed execution, so the all-pass path must
   stay cheap. *)
let out_deg so id = List.fold_left (fun n (f, _) -> if f = id then n + 1 else n) 0 so
let in_deg so id = List.fold_left (fun n (_, t) -> if t = id then n + 1 else n) 0 so

let in_src so id =
  List.fold_left (fun s (f, t) -> if t = id then f else s) (-1) so

let check_uniq g =
  let so = Graph.so g in
  let events = Graph.events g in
  let acc = ref [] in
  List.iter
    (fun (e : Event.data) ->
      if Event.is_push e then
        let outs = out_deg so e.id in
        if outs > 1 then
          acc :=
            Check.v "stack-uniq" "push %a popped %d times" Event.pp e outs
            :: !acc)
    events;
  List.iter
    (fun (d : Event.data) ->
      if Event.is_pop d then
        let ins = in_deg so d.id in
        if not (ins = 1 && Event.is_push (Graph.find g (in_src so d.id))) then
          acc :=
            Check.v "stack-uniq" "pop %a matched %d times (need exactly 1 push)"
              Event.pp d ins
            :: !acc)
    events;
  List.iter
    (fun (d : Event.data) ->
      if Event.is_emppop d && (in_deg so d.id > 0 || out_deg so d.id > 0) then
        acc := Check.v "stack-uniq" "empty pop %a has so edges" Event.pp d :: !acc)
    events;
  !acc

let check_so_lhb g =
  List.fold_left
    (fun acc (e_id, d_id) ->
      let e = Graph.find g e_id and d = Graph.find g d_id in
      (* Both ends were just found in the graph, so [Graph.lhb] reduces to
         irreflexivity + logview membership. *)
      let acc =
        if e_id <> d_id && Lview.mem e_id d.Event.logview then acc
        else
          Check.v "stack-so-lhb" "(%a, %a) in so but not lhb" Event.pp e
            Event.pp d
          :: acc
      in
      if before e d then acc
      else
        Check.v "stack-so-cix" "so pair (%a, %a) violates commit order"
          Event.pp e Event.pp d
        :: acc)
    [] (Graph.so g)

(* STACK-LIFO: if pop d takes push e, then any push e' with
   e -lhb-> e' -lhb-> d (pushed after e, visible to d) must already be
   popped when d commits, by a pop d' that d does not happen before. *)
let check_lifo g =
  let so = Graph.so g in
  let events = Graph.events g in
  List.fold_left
    (fun acc (e_id, d_id) ->
      let d = Graph.find g d_id in
      if not (Event.is_pop d) then acc
      else
        let e = Graph.find g e_id in
        List.fold_left
          (fun acc (e' : Event.data) ->
            if
              Event.is_push e' && e'.id <> e_id
              && Lview.mem e_id e'.Event.logview
              && e'.id <> d_id
              && Lview.mem e'.id d.Event.logview
            then
              let popped_before =
                List.exists
                  (fun (f, t) ->
                    f = e'.id
                    &&
                    let d' = Graph.find g t in
                    before d' d
                    && (t = d_id || not (Lview.mem d_id d'.Event.logview)))
                  so
              in
              if popped_before then acc
              else
                Check.v "stack-lifo"
                  "%a pushed after %a and visible to %a, yet unpopped when \
                   %a pops %a"
                  Event.pp e' Event.pp e Event.pp d Event.pp d Event.pp e
                :: acc
            else acc)
          acc events)
    [] so

(* STACK-EMPPOP: an empty pop is justified only if every push that happens
   before it had already been popped. *)
let check_emppop g =
  let so = Graph.so g in
  let events = Graph.events g in
  List.fold_left
    (fun acc (d : Event.data) ->
      if not (Event.is_emppop d) then acc
      else
        List.fold_left
          (fun acc (e : Event.data) ->
            if
              Event.is_push e && e.id <> d.id
              && Lview.mem e.id d.Event.logview
            then
              let consumed =
                List.exists (fun (f, t) -> f = e.id && before (Graph.find g t) d) so
              in
              if consumed then acc
              else
                Check.v "stack-emppop"
                  "empty pop %a although %a happens-before it and is unpopped"
                  Event.pp d Event.pp e
                :: acc
            else acc)
          acc events)
    [] events

(* Same-step observation is allowed: see Queue_spec.check_lhb_order. *)
let check_lhb_order g =
  let acc = ref [] in
  List.iter
    (fun (e : Event.data) ->
      Lview.iter
        (fun d_id ->
          if d_id <> e.id then
            match Graph.find_opt g d_id with
            | Some d ->
                if fst d.Event.cix > fst e.Event.cix then
                  acc :=
                    Check.v "lhb-cix" "%a observes %a which commits later"
                      Event.pp e Event.pp d
                    :: !acc
            | None -> ())
        e.logview)
    (Graph.events g);
  !acc

let consistent g =
  check_matches g @ check_uniq g @ check_so_lhb g @ check_lifo g
  @ check_emppop g @ check_lhb_order g

(* Commit-order abstract-state replay (the LATabs analogue for stacks).
   [require_empty] adds the SC-only truly-empty condition; see
   Queue_spec.abstract_state. *)
let abstract_state ?(require_empty = false) g =
  let events = Graph.events_by_cix g in
  let rec go vs acc = function
    | [] -> List.rev acc
    | (e : Event.data) :: rest -> (
        match e.typ with
        | Event.Push v -> go ((v, e.id) :: vs) acc rest
        | Event.Pop v -> (
            match vs with
            | (w, e_id) :: vs' ->
                let acc =
                  if not (Value.equal v w) then
                    Check.v "latabs-lifo"
                      "pop %a at commit point returns %a but top is %a"
                      Event.pp e Value.pp v Value.pp w
                    :: acc
                  else if not (List.mem (e_id, e.id) (Graph.so g)) then
                    Check.v "latabs-match"
                      "pop %a takes abstract top e%d but so says otherwise"
                      Event.pp e e_id
                    :: acc
                  else acc
                in
                go vs' acc rest
            | [] ->
                go vs
                  (Check.v "latabs-nonempty"
                     "pop %a commits on an empty abstract stack" Event.pp e
                  :: acc)
                  rest)
        | Event.EmpPop ->
            let acc =
              if require_empty && vs <> [] then
                Check.v "latabs-empty"
                  "empty pop %a commits while abstract stack holds %d elements"
                  Event.pp e (List.length vs)
                :: acc
              else acc
            in
            go vs acc rest
        | _ -> go vs acc rest)
  in
  go [] [] events
