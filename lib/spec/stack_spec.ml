open Compass_rmc
open Compass_event

(* StackConsistent — the LIFO analogue of QueueConsistent (the paper gives
   the queue instance in Figure 2 and notes in Section 4.1 that "the key
   difference is the change from FIFO to LIFO in consistency"). *)

let pushes g = List.filter Event.is_push (Graph.events g)
let pops g = List.filter Event.is_pop (Graph.events g)
let emppops g = List.filter Event.is_emppop (Graph.events g)
let before (a : Event.data) (b : Event.data) = Event.cix_compare a.cix b.cix < 0

let check_matches g =
  List.fold_left
    (fun acc (e_id, d_id) ->
      let e = Graph.find g e_id and d = Graph.find g d_id in
      match (e.Event.typ, d.Event.typ) with
      | Event.Push v, Event.Pop w when Value.equal v w -> acc
      | _ ->
          Check.v "stack-matches" "so pair (%a, %a) mismatched" Event.pp e
            Event.pp d
          :: acc)
    [] (Graph.so g)

let check_uniq g =
  let acc = ref [] in
  List.iter
    (fun (e : Event.data) ->
      let outs = Graph.so_out g e.id in
      if List.length outs > 1 then
        acc :=
          Check.v "stack-uniq" "push %a popped %d times" Event.pp e
            (List.length outs)
          :: !acc)
    (pushes g);
  List.iter
    (fun (d : Event.data) ->
      match Graph.so_in g d.id with
      | [ e_id ] when Event.is_push (Graph.find g e_id) -> ()
      | ins ->
          acc :=
            Check.v "stack-uniq" "pop %a matched %d times (need exactly 1 push)"
              Event.pp d (List.length ins)
            :: !acc)
    (pops g);
  List.iter
    (fun (d : Event.data) ->
      if Graph.so_in g d.id <> [] || Graph.so_out g d.id <> [] then
        acc := Check.v "stack-uniq" "empty pop %a has so edges" Event.pp d :: !acc)
    (emppops g);
  !acc

let check_so_lhb g =
  List.fold_left
    (fun acc (e_id, d_id) ->
      let e = Graph.find g e_id and d = Graph.find g d_id in
      let acc =
        Check.ensure acc "stack-so-lhb"
          (Graph.lhb g ~before:e_id ~after:d_id)
          (fun () ->
            Format.asprintf "(%a, %a) in so but not lhb" Event.pp e Event.pp d)
      in
      Check.ensure acc "stack-so-cix" (before e d) (fun () ->
          Format.asprintf "so pair (%a, %a) violates commit order" Event.pp e
            Event.pp d))
    [] (Graph.so g)

(* STACK-LIFO: if pop d takes push e, then any push e' with
   e -lhb-> e' -lhb-> d (pushed after e, visible to d) must already be
   popped when d commits, by a pop d' that d does not happen before. *)
let check_lifo g =
  let so = Graph.so g in
  let pushes = pushes g in
  List.fold_left
    (fun acc (e_id, d_id) ->
      let d = Graph.find g d_id in
      if not (Event.is_pop d) then acc
      else
        let e = Graph.find g e_id in
        List.fold_left
          (fun acc (e' : Event.data) ->
            if
              e'.id <> e_id
              && Graph.lhb g ~before:e_id ~after:e'.id
              && Graph.lhb g ~before:e'.id ~after:d_id
            then
              let popped_before =
                List.exists
                  (fun (f, t) ->
                    f = e'.id
                    &&
                    let d' = Graph.find g t in
                    before d' d && not (Graph.lhb g ~before:d_id ~after:t))
                  so
              in
              Check.ensure acc "stack-lifo" popped_before (fun () ->
                  Format.asprintf
                    "%a pushed after %a and visible to %a, yet unpopped when \
                     %a pops %a"
                    Event.pp e' Event.pp e Event.pp d Event.pp d Event.pp e)
            else acc)
          acc pushes)
    [] so

(* STACK-EMPPOP: an empty pop is justified only if every push that happens
   before it had already been popped. *)
let check_emppop g =
  let so = Graph.so g in
  let pushes = pushes g in
  List.fold_left
    (fun acc (d : Event.data) ->
      List.fold_left
        (fun acc (e : Event.data) ->
          if Graph.lhb g ~before:e.id ~after:d.id then
            let consumed =
              List.exists (fun (f, t) -> f = e.id && before (Graph.find g t) d) so
            in
            Check.ensure acc "stack-emppop" consumed (fun () ->
                Format.asprintf
                  "empty pop %a although %a happens-before it and is unpopped"
                  Event.pp d Event.pp e)
          else acc)
        acc pushes)
    [] (emppops g)

(* Same-step observation is allowed: see Queue_spec.check_lhb_order. *)
let check_lhb_order g =
  let acc = ref [] in
  List.iter
    (fun (e : Event.data) ->
      Lview.iter
        (fun d_id ->
          if d_id <> e.id then
            match Graph.find_opt g d_id with
            | Some d ->
                if fst d.Event.cix > fst e.Event.cix then
                  acc :=
                    Check.v "lhb-cix" "%a observes %a which commits later"
                      Event.pp e Event.pp d
                    :: !acc
            | None -> ())
        e.logview)
    (Graph.events g);
  !acc

let consistent g =
  check_matches g @ check_uniq g @ check_so_lhb g @ check_lifo g
  @ check_emppop g @ check_lhb_order g

(* Commit-order abstract-state replay (the LATabs analogue for stacks).
   [require_empty] adds the SC-only truly-empty condition; see
   Queue_spec.abstract_state. *)
let abstract_state ?(require_empty = false) g =
  let events = Graph.events_by_cix g in
  let rec go vs acc = function
    | [] -> List.rev acc
    | (e : Event.data) :: rest -> (
        match e.typ with
        | Event.Push v -> go ((v, e.id) :: vs) acc rest
        | Event.Pop v -> (
            match vs with
            | (w, e_id) :: vs' ->
                let acc =
                  if not (Value.equal v w) then
                    Check.v "latabs-lifo"
                      "pop %a at commit point returns %a but top is %a"
                      Event.pp e Value.pp v Value.pp w
                    :: acc
                  else if not (List.mem (e_id, e.id) (Graph.so g)) then
                    Check.v "latabs-match"
                      "pop %a takes abstract top e%d but so says otherwise"
                      Event.pp e e_id
                    :: acc
                  else acc
                in
                go vs' acc rest
            | [] ->
                go vs
                  (Check.v "latabs-nonempty"
                     "pop %a commits on an empty abstract stack" Event.pp e
                  :: acc)
                  rest)
        | Event.EmpPop ->
            let acc =
              if require_empty && vs <> [] then
                Check.v "latabs-empty"
                  "empty pop %a commits while abstract stack holds %d elements"
                  Event.pp e (List.length vs)
                :: acc
              else acc
            in
            go vs acc rest
        | _ -> go vs acc rest)
  in
  go [] [] events
