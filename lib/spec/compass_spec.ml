(** The COMPASS specification framework, operationalised: consistency
    conditions for queues ({!Queue_spec}), stacks ({!Stack_spec}) and
    exchangers ({!Exchanger_spec}); linearisable histories ({!Linearize},
    the LAThist style of Section 3.3); the spec-style hierarchy
    ({!Styles}); and {!Libspec} — first-class spec objects, the generic
    style checker, the executable abstract machine behind
    spec-as-implementation, and the central structure registry. *)

module Check = Check
module Libspec = Libspec
module Queue_spec = Queue_spec
module Stack_spec = Stack_spec
module Exchanger_spec = Exchanger_spec
module Ws_spec = Ws_spec
module Spsc_spec = Spsc_spec
module Linearize = Linearize
module Styles = Styles
