open Compass_rmc
open Compass_event

(* QueueConsistent — the paper's consistency conditions for queues
   (Figure 2, bottom right), checked on a concrete execution's graph.

   All conditions are stated against the graph *at the commit point* of the
   event under inspection; operationally that is the commit-index prefix,
   so quantifiers over "already committed" events are bounded by [cix]. *)

let before (a : Event.data) (b : Event.data) = Event.cix_compare a.cix b.cix < 0

(* QUEUE-MATCHES: a dequeue returns the value its matched enqueue inserted. *)
let check_matches g =
  List.fold_left
    (fun acc (e_id, d_id) ->
      let e = Graph.find g e_id and d = Graph.find g d_id in
      match (e.Event.typ, d.Event.typ) with
      | Event.Enq v, Event.Deq w when Value.equal v w -> acc
      | _ ->
          Check.v "queue-matches" "so pair (%a, %a) mismatched" Event.pp e
            Event.pp d
          :: acc)
    [] (Graph.so g)

(* QUEUE-UNIQ: so matches enqueues to dequeues bijectively — an element is
   dequeued at most once, and every successful dequeue dequeues exactly one
   enqueue (footnote 5 of the paper). *)
(* so-degree scans over the (short) edge list, allocating nothing — the
   checkers run on every completed execution, so the all-pass path must
   stay cheap. *)
let out_deg so id = List.fold_left (fun n (f, _) -> if f = id then n + 1 else n) 0 so
let in_deg so id = List.fold_left (fun n (_, t) -> if t = id then n + 1 else n) 0 so

let in_src so id =
  List.fold_left (fun s (f, t) -> if t = id then f else s) (-1) so

let check_uniq g =
  let so = Graph.so g in
  let events = Graph.events g in
  let acc = ref [] in
  List.iter
    (fun (e : Event.data) ->
      if Event.is_enq e then
        let outs = out_deg so e.id in
        if outs > 1 then
          acc :=
            Check.v "queue-uniq" "enqueue %a dequeued %d times" Event.pp e outs
            :: !acc)
    events;
  List.iter
    (fun (d : Event.data) ->
      if Event.is_deq d then begin
        (match in_deg so d.id with
        | 1 ->
            if not (Event.is_enq (Graph.find g (in_src so d.id))) then
              acc := Check.v "queue-uniq" "dequeue %a matched to a non-enqueue" Event.pp d :: !acc
        | 0 -> acc := Check.v "queue-uniq" "dequeue %a matched to no enqueue" Event.pp d :: !acc
        | n ->
            acc :=
              Check.v "queue-uniq" "dequeue %a matched %d times" Event.pp d n
              :: !acc);
        if out_deg so d.id > 0 then
          acc := Check.v "queue-uniq" "dequeue %a used as so source" Event.pp d :: !acc
      end)
    events;
  List.iter
    (fun (d : Event.data) ->
      if Event.is_empdeq d && (in_deg so d.id > 0 || out_deg so d.id > 0) then
        acc := Check.v "queue-uniq" "empty dequeue %a has so edges" Event.pp d :: !acc)
    events;
  !acc

(* so ⊆ lhb, and so respects commit order: a dequeue commits after the
   enqueue it takes from and has synchronised with it. *)
let check_so_lhb g =
  List.fold_left
    (fun acc (e_id, d_id) ->
      let e = Graph.find g e_id and d = Graph.find g d_id in
      (* Both ends were just found in the graph, so [Graph.lhb] reduces to
         irreflexivity + logview membership. *)
      let acc =
        if e_id <> d_id && Lview.mem e_id d.Event.logview then acc
        else
          Check.v "queue-so-lhb" "(%a, %a) in so but not lhb" Event.pp e
            Event.pp d
          :: acc
      in
      if before e d then acc
      else
        Check.v "queue-so-cix" "so pair (%a, %a) violates commit order"
          Event.pp e Event.pp d
        :: acc)
    [] (Graph.so g)

(* QUEUE-FIFO (the paper's weak, RMC-compatible form): if enqueue e' happens
   before enqueue e and some dequeue d takes e, then e' has already been
   dequeued — by a d' committed before d, and d must not happen before
   d'. *)
let check_fifo g =
  let so = Graph.so g in
  let events = Graph.events g in
  List.fold_left
    (fun acc (e_id, d_id) ->
      let d = Graph.find g d_id in
      if not (Event.is_deq d) then acc
      else
        let e = Graph.find g e_id in
        List.fold_left
          (fun acc (e' : Event.data) ->
            if
              Event.is_enq e' && e'.id <> e_id
              && Lview.mem e'.id e.Event.logview
            then
              let dequeued_before =
                List.exists
                  (fun (f, t) ->
                    f = e'.id
                    &&
                    let d' = Graph.find g t in
                    before d' d
                    && (t = d_id || not (Lview.mem d_id d'.Event.logview)))
                  so
              in
              if dequeued_before then acc
              else
                Check.v "queue-fifo"
                  "%a happens-before %a, yet %a dequeues %a while %a is \
                   undequeued"
                  Event.pp e' Event.pp e Event.pp d Event.pp e Event.pp e'
                :: acc
            else acc)
          acc events)
    [] so

(* QUEUE-EMPDEQ: an empty dequeue d is justified only if every enqueue that
   happens before d had already been dequeued when d committed. *)
let check_empdeq g =
  let so = Graph.so g in
  let events = Graph.events g in
  List.fold_left
    (fun acc (d : Event.data) ->
      if not (Event.is_empdeq d) then acc
      else
        List.fold_left
          (fun acc (e : Event.data) ->
            if
              Event.is_enq e && e.id <> d.id
              && Lview.mem e.id d.Event.logview
            then
              let consumed =
                List.exists
                  (fun (f, t) -> f = e.id && before (Graph.find g t) d)
                  so
              in
              if consumed then acc
              else
                Check.v "queue-empdeq"
                  "empty dequeue %a although %a happens-before it and is \
                   undequeued"
                  Event.pp d Event.pp e
                :: acc
            else acc)
          acc events)
    [] events

(* lhb must be consistent with commit order: an event only observes events
   committed in earlier steps — or in the *same* atomic step, which is how
   helped pairs mutually observe each other (the paper's footnote 7: the
   two matching exchange commits are not both hb-ordered, yet each call's
   beginning happens before the other's end). *)
let check_lhb_order g =
  let acc = ref [] in
  List.iter
    (fun (e : Event.data) ->
      Lview.iter
        (fun d_id ->
          if d_id <> e.id then
            match Graph.find_opt g d_id with
            | Some d ->
                if fst d.Event.cix > fst e.Event.cix then
                  acc :=
                    Check.v "lhb-cix"
                      "%a observes %a which commits later" Event.pp e Event.pp
                      d
                    :: !acc
            | None -> ()
            (* foreign-object event: fine *))
        e.logview)
    (Graph.events g);
  !acc

(* The full graph-based consistency (the paper's QueueConsistent). *)
let consistent g =
  check_matches g @ check_uniq g @ check_so_lhb g @ check_fifo g
  @ check_empdeq g @ check_lhb_order g

(* -- Abstract states (LATabs styles, Sections 2.3 and 3.1) ------------------

   Replaying the commits in commit order while maintaining the abstract
   queue [vs] checks that every commit point can be explained as an atomic
   update of the abstract state — what the LATabs specs demand.  Strongly
   synchronised implementations (Michael-Scott) pass; the relaxed
   Herlihy-Wing queue does not (Section 3.2), which is precisely why the
   paper introduces the abstract-state-free LAThb style. *)

(* [require_empty] adds the SC-only condition that an empty dequeue commits
   on a truly empty abstract state (SC-DEQ in Figure 2).  The RMC LATabs
   specs deliberately drop it — a thread may see the queue as empty while a
   not-yet-visible enqueue has committed (Section 2.3) — and our
   experiments confirm that even the release-acquire Michael-Scott queue
   admits such executions. *)
let abstract_state ?(require_empty = false) g =
  let events = Graph.events_by_cix g in
  let rec go vs acc = function
    | [] -> List.rev acc
    | (e : Event.data) :: rest -> (
        match e.typ with
        | Event.Enq v -> go (vs @ [ (v, e.id) ]) acc rest
        | Event.Deq v -> (
            match vs with
            | (w, e_id) :: vs' ->
                let acc =
                  if not (Value.equal v w) then
                    Check.v "latabs-fifo"
                      "dequeue %a at commit point returns %a but head is %a"
                      Event.pp e Value.pp v Value.pp w
                    :: acc
                  else if not (List.mem (e_id, e.id) (Graph.so g)) then
                    Check.v "latabs-match"
                      "dequeue %a takes abstract head e%d but so says \
                       otherwise"
                      Event.pp e e_id
                    :: acc
                  else acc
                in
                go vs' acc rest
            | [] ->
                go vs
                  (Check.v "latabs-nonempty"
                     "dequeue %a commits on an empty abstract queue" Event.pp e
                  :: acc)
                  rest)
        | Event.EmpDeq ->
            let acc =
              if require_empty && vs <> [] then
                Check.v "latabs-empty"
                  "empty dequeue %a commits while abstract queue holds %d \
                   elements"
                  Event.pp e (List.length vs)
                :: acc
              else acc
            in
            go vs acc rest
        | _ -> go vs acc rest)
  in
  go [] [] events
