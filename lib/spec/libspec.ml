open Compass_rmc
open Compass_event
open Compass_machine

(* First-class library specifications: the common signature, the generic
   style checker, the executable abstract machine, and the central
   registry binding structures to specs.  See libspec.mli. *)

(* -- the spec-style ladder ---------------------------------------------------- *)

type style = So_abs | Hb_abs | Hb | Hist | Sc_abs

let style_name = function
  | So_abs -> "LATso-abs"
  | Hb_abs -> "LAThb-abs"
  | Hb -> "LAThb"
  | Hist -> "LAThist"
  | Sc_abs -> "SC-abs"

let style_of_string = function
  | "so-abs" | "LATso-abs" -> Some So_abs
  | "hb-abs" | "LAThb-abs" -> Some Hb_abs
  | "hb" | "LAThb" -> Some Hb
  | "hist" | "LAThist" -> Some Hist
  | "sc-abs" | "SC-abs" -> Some Sc_abs
  | _ -> None

let all_styles = [ Hb; So_abs; Hb_abs; Hist; Sc_abs ]

type kind = Linearize.kind = Queue | Stack | Deque

(* -- the common specification signature --------------------------------------- *)

type t = {
  name : string;
  kind : kind option;
  consistent : Graph.t -> Check.violation list;
  abstract : (?require_empty:bool -> Graph.t -> Check.violation list) option;
}

let queue =
  {
    name = "queue";
    kind = Some Queue;
    consistent = Queue_spec.consistent;
    abstract = Some Queue_spec.abstract_state;
  }

let stack =
  {
    name = "stack";
    kind = Some Stack;
    consistent = Stack_spec.consistent;
    abstract = Some Stack_spec.abstract_state;
  }

let deque =
  {
    name = "ws-deque";
    kind = Some Deque;
    consistent = Ws_spec.consistent;
    abstract = Some Ws_spec.abstract_state;
  }

let exchanger =
  {
    name = "exchanger";
    kind = None;
    consistent = Exchanger_spec.consistent;
    abstract = None;
  }

let spsc =
  {
    name = "spsc-queue";
    kind = Some Queue;
    consistent = Spsc_spec.consistent;
    abstract = Some Queue_spec.abstract_state;
  }

let of_kind = function Queue -> queue | Stack -> stack | Deque -> deque

(* The one generic checker.  Styles a spec has no machinery for are
   vacuous: an exchanger has no abstract-sequence styles, so [So_abs]
   checks nothing rather than failing spuriously. *)
let check ?(max_nodes = 200_000) style spec g : Check.violation list =
  let abs ?require_empty () =
    match spec.abstract with
    | Some f -> f ?require_empty g
    | None -> []
  in
  match style with
  | So_abs -> abs ()
  | Sc_abs -> abs ~require_empty:true ()
  | Hb -> spec.consistent g
  | Hb_abs -> spec.consistent g @ abs ()
  | Hist -> (
      spec.consistent g
      @
      match spec.kind with
      | None -> []
      | Some kind ->
          if Linearize.commit_order_valid kind g then []
          else (
            match Linearize.search ~max_nodes kind g with
            | Linearize.Linearizable _ -> []
            | Linearize.Not_linearizable ->
                [ Check.v "lathist" "no linearisable total order exists" ]
            | Linearize.Gave_up ->
                [ Check.v "lathist-budget" "linearisation search gave up" ]))

(* -- judge glue ---------------------------------------------------------------- *)

let first_violation = function
  | [] -> Explore.Pass
  | v :: _ -> Explore.Violation (Format.asprintf "%a" Check.pp_violation v)

let ( &&& ) j1 j2 vs =
  match j1 vs with Explore.Pass -> j2 vs | other -> other

let graph_judge ?max_nodes style spec g _ =
  first_violation (check ?max_nodes style spec g)

(* -- the abstract machine, executable ------------------------------------------ *)

type astate = (Value.t * int) list

type op_req = Insert of Value.t | Remove

(* One atomic transition of the sequential object.  Queues insert at the
   back and remove at the front; stacks insert and remove at the front;
   deques (owner view) insert at the front like stacks.  Removal from the
   empty state commits the kind's empty event — the SC-strength empty
   condition, which puts the spec object at the very top of the ladder. *)
let transition kind st ~id req =
  match (kind, req) with
  | Queue, Insert v -> (st @ [ (v, id) ], Event.Enq v, [])
  | Stack, Insert v -> ((v, id) :: st, Event.Push v, [])
  | Deque, Insert v -> ((v, id) :: st, Event.Push v, [])
  | Queue, Remove -> (
      match st with
      | [] -> ([], Event.EmpDeq, [])
      | (v, e) :: rest -> (rest, Event.Deq v, [ (e, id) ]))
  | Stack, Remove | Deque, Remove -> (
      match st with
      | [] -> ([], Event.EmpPop, [])
      | (v, e) :: rest -> (rest, Event.Pop v, [ (e, id) ]))

(* The operation request an event records: insertions carry their value,
   removals (successful or empty) are [Remove].  Events outside the
   sequential-kind vocabulary (exchanges, custom) have no request. *)
let op_of_typ = function
  | Event.Enq v | Event.Push v -> Some (Insert v)
  | Event.Deq _ | Event.Pop _ | Event.Steal _
  | Event.EmpDeq | Event.EmpPop | Event.EmpSteal ->
      Some Remove
  | Event.Exchange _ | Event.Custom _ -> None

let removed_value = function
  | Event.Deq v | Event.Pop v | Event.Steal v -> Some v
  | _ -> None

(* Reconstruct the abstract state by replaying commit order.  On a graph
   the spec object populated, every committed event is an abstract
   transition, so folding [transition] inverts the construction exactly
   (empty removals only ever commit on the empty abstract state). *)
let replay kind g : astate =
  let step st (e : Event.data) =
    match op_of_typ e.Event.typ with
    | None -> st
    | Some req ->
        let st', _, _ = transition kind st ~id:e.id req in
        st'
  in
  List.fold_left step [] (Graph.events_by_cix g)

(* -- the registry -------------------------------------------------------------- *)

type impl = ..
type impl += No_impl

type entry = {
  key : string;
  struct_name : string;
  descr : string;
  spec : t;
  impl : impl;
  ladder : (style * bool) list;
  site_prefix : string option;
  scenarios : (unit -> Explore.scenario) list;
  smoke : unit -> Explore.scenario;
  expect_violation : bool;
  refinable : bool;
}

(* Domain-safety: all [register] calls happen at module-initialisation
   time (the dstruct/client modules' top level), strictly before any
   worker domain is spawned; exploration only ever reads.  A read-only
   Hashtbl is safe to share across domains, so no lock is needed. *)
let table : (string, entry) Hashtbl.t = Hashtbl.create 16
let order : string list ref = ref []

let register e =
  if Hashtbl.mem table e.key then
    invalid_arg (Printf.sprintf "Libspec.register: duplicate key %s" e.key);
  Hashtbl.add table e.key e;
  order := e.key :: !order

let find key = Hashtbl.find_opt table key
let all () = List.rev_map (Hashtbl.find table) !order
let keys () = List.map (fun e -> e.key) (all ())
