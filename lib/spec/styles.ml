(* The spec-style hierarchy (paper, Sections 2.3-3.3):

     LATso-abs  ⊑  LAThb-abs  ⊒  LAThb          LAThb-abs ⊑ LAThist
     (Cosmo)       (+ graphs)    (- abs state)   (+ linearisable history)

   The style type and the generic checker now live in {!Libspec} — one
   spec object per library, checked by one generic checker.  This module
   remains the per-kind convenience view (and keeps the cross-execution
   tallies used by experiment E2). *)

type style = Libspec.style = So_abs | Hb_abs | Hb | Hist | Sc_abs

let style_name = Libspec.style_name
let all_styles = Libspec.all_styles

type kind = Linearize.kind = Queue | Stack | Deque

let graph_consistent kind g = (Libspec.of_kind kind).Libspec.consistent g

let abs_consistent ?require_empty kind g =
  match (Libspec.of_kind kind).Libspec.abstract with
  | Some f -> f ?require_empty g
  | None -> []

(* Check one style on one execution's graph — the generic checker applied
   to the kind's spec instance. *)
let check ?max_nodes style kind g : Check.violation list =
  Libspec.check ?max_nodes style (Libspec.of_kind kind) g

(* Aggregated satisfaction counts across many executions (experiment E2). *)
type tally = {
  mutable execs : int;
  mutable failed : int;
  mutable example : Check.violation option;
}

let fresh_tally () = { execs = 0; failed = 0; example = None }

let tally_one t violations =
  t.execs <- t.execs + 1;
  match violations with
  | [] -> ()
  | v :: _ ->
      t.failed <- t.failed + 1;
      if t.example = None then t.example <- Some v

let satisfied t = t.failed = 0

let pp_tally ppf t =
  if satisfied t then Format.fprintf ppf "sat (%d execs)" t.execs
  else
    Format.fprintf ppf "FAIL %d/%d%a" t.failed t.execs
      (fun ppf -> function
        | Some v -> Format.fprintf ppf " e.g. %a" Check.pp_violation v
        | None -> ())
      t.example
