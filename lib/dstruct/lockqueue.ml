open Compass_rmc
open Compass_event
open Compass_machine
open Prog.Syntax

(* A coarse-grained lock-based queue — the SC baseline.

   Every operation holds a test-and-set spinlock for its whole duration;
   the data (indices and slots) is accessed *non-atomically*, which is
   race-free exactly because the lock's acq-rel CAS and release store
   transfer the previous holder's views (and logical views).  This is the
   limit case of Section 3.1's observation: with enough synchronisation,
   the full SC-strength spec is recovered — this implementation satisfies
   even SC-abs (empty dequeues only on truly empty abstract states), which
   no relaxed implementation does.  Experiment E2 uses it to complete the
   top of the spec-style matrix. *)

(* Block: [0] lock, [1] head index, [2] tail index, [3..3+cap) slots.
   Slots hold pointers to 2-cells [value; eid]. *)
type t = { base : Loc.t; capacity : int; graph : Graph.t; fuel : int }

let default_fuel = 16

let create ?(capacity = 8) ?(fuel = default_fuel) m ~name =
  let graph = Machine.new_graph m ~name in
  let base = Machine.alloc m ~name (capacity + 3) in
  ignore
    (Machine.solo m
       (Prog.returning_unit
          (let* () = Prog.store base (Value.Int 0) Mode.Na in
           let* () = Prog.store (Loc.shift base 1) (Value.Int 0) Mode.Na in
           Prog.store (Loc.shift base 2) (Value.Int 0) Mode.Na)));
  { base; capacity; graph; fuel }

let graph t = t.graph
let lock_cell t = t.base
let head_cell t = Loc.shift t.base 1
let tail_cell t = Loc.shift t.base 2
let slot t i = Loc.shift t.base (3 + i)

let lock t =
  Prog.with_fuel ~fuel:t.fuel ~what:"lockqueue-lock" (fun () ->
      let* _ =
        Prog.await ~site:"lockqueue.lock.await" (lock_cell t) Mode.Rlx
          (Value.equal (Value.Int 0))
      in
      let* _, ok =
        Prog.cas ~site:"lockqueue.lock.cas" (lock_cell t)
          ~expected:(Value.Int 0) ~desired:(Value.Int 1) Mode.AcqRel
      in
      Prog.return (if ok then Some () else None))

let unlock t =
  Prog.store ~site:"lockqueue.unlock.store" (lock_cell t) (Value.Int 0)
    Mode.Rel

let enq ?(extra = fun _ -> []) t v =
  let* e = Prog.reserve in
  let* cell = Prog.alloc ~name:"cell" 2 in
  let* () = Prog.store cell v Mode.Na in
  let* () = Prog.store (Loc.shift cell 1) (Value.Int e) Mode.Na in
  let* () = lock t in
  let* tl = Prog.load (tail_cell t) Mode.Na in
  let tl = Value.to_int_exn tl in
  if tl >= t.capacity then raise (Prog.Out_of_fuel "lockqueue-capacity")
  else
    let* () = Prog.store (slot t tl) (Value.Ptr cell) Mode.Na in
    let commit =
      Commit.compose
        (Commit.always ~obj:(Graph.obj t.graph) (fun _ -> (e, Event.Enq v)))
        extra
    in
    (* Commit point: the tail bump, still under the lock. *)
    let* () = Prog.store (tail_cell t) (Value.Int (tl + 1)) Mode.Na ~commit in
    unlock t

let deq ?(extra = fun _ -> []) t =
  let* d = Prog.reserve in
  let obj = Graph.obj t.graph in
  let* () = lock t in
  let* h = Prog.load (head_cell t) Mode.Na in
  let h = Value.to_int_exn h in
  let* tl = Prog.load (tail_cell t) Mode.Na in
  let tl = Value.to_int_exn tl in
  if h = tl then
    (* Empty: commit on a (non-atomic) re-read of head — truly empty, so
       even SC-abs is satisfied. *)
    let empty_commit =
      Commit.compose
        (fun _ -> [ Commit.spec ~obj [ Commit.ev d Event.EmpDeq ] ])
        extra
    in
    let* _ = Prog.load (head_cell t) Mode.Na ~commit:empty_commit in
    let* () = unlock t in
    Prog.return Value.Null
  else
    let* cellp = Prog.load (slot t h) Mode.Na in
    let* v = Prog.load (Value.to_loc_exn cellp) Mode.Na in
    let* ev = Prog.load (Loc.shift (Value.to_loc_exn cellp) 1) Mode.Na in
    let e = Value.to_int_exn ev in
    let commit =
      Commit.compose
        (Commit.always ~obj ~so:(fun _ -> [ (e, d) ]) (fun _ -> (d, Event.Deq v)))
        extra
    in
    let* () = Prog.store (head_cell t) (Value.Int (h + 1)) Mode.Na ~commit in
    let* () = unlock t in
    Prog.return v

let instantiate : Iface.queue_factory =
  {
    Iface.q_name = "lock-queue";
    make_queue =
      (fun m ~name ->
        let t = create m ~name in
        {
          Iface.q_kind = "lock-queue";
          q_graph = t.graph;
          enq = (fun v -> enq t v);
          deq = (fun () -> deq t);
        });
  }
