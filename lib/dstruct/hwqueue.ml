open Compass_rmc
open Compass_event
open Compass_machine
open Prog.Syntax

(* Herlihy-Wing queue [Herlihy & Wing, TOPLAS'90], the *weak* relaxed
   variant of Yacovet [Raad et al., POPL'19] that the paper verifies against
   the LAThb specs (Section 3.2): enqueues use release operations, dequeues
   use acquire ones, and there is deliberately no synchronisation among
   enqueues or among dequeues.

   enq: i := FAA_rlx(back); items[i] :=rel cell
   deq: scan items[0 .. back): x := XCHG_acq(items[i], TAKEN); first
        non-null x wins; a full fruitless scan is an *empty* dequeue.

   This implementation cannot construct an abstract state at its commit
   points (the order of FAA reservations differs from the order of slot
   publications; the SC proof needs prophecy variables) — experiment E3
   shows the LATabs checker failing on it while LAThb holds, reproducing
   the paper's motivation for abandoning abstract states.

   Ghost state: enqueue records (value, event id) for its cell in an
   OCaml-level table, so the dequeue's commit function — which runs inside
   the atomic XCHG step — can name the matched enqueue.  This mirrors the
   ghost state of the Coq proof; the returned value itself is still read
   from simulated memory. *)

type t = {
  back : Loc.t;
  items : Loc.t;  (** base of [capacity] slots *)
  capacity : int;
  graph : Graph.t;
  ghost : (int, Value.t * int) Hashtbl.t;  (** cell base -> (value, enq id) *)
}

let create ?(capacity = 8) m ~name =
  let graph = Machine.new_graph m ~name in
  let q = Machine.alloc m ~name (capacity + 1) in
  let () =
    ignore
      (Machine.solo m
         (Prog.returning_unit
            (let* () = Prog.store q (Value.Int 0) Mode.Na in
             Prog.for_ 1 capacity (fun i ->
                 Prog.store (Loc.shift q i) Value.Null Mode.Na))))
  in
  {
    back = q;
    items = Loc.shift q 1;
    capacity;
    graph;
    ghost = Hashtbl.create 16;
  }

let graph t = t.graph
let slot t i = Loc.shift t.items i

let enq ?(extra = fun _ -> []) t v =
  let* e = Prog.reserve in
  let* cell = Prog.alloc ~name:"cell" 2 in
  let* () = Prog.store ~site:"hwqueue.enq.init_val" (Loc.shift cell 0) v Mode.Na in
  let* () =
    Prog.store ~site:"hwqueue.enq.init_eid" (Loc.shift cell 1) (Value.Int e)
      Mode.Na
  in
  Hashtbl.replace t.ghost (Loc.base cell) (v, e);
  let* i = Prog.faa ~site:"hwqueue.enq.back_faa" t.back 1 Mode.Rlx in
  if i >= t.capacity then
    (* Out of slots: not a behaviour of the unbounded algorithm; discard. *)
    let* () = Prog.yield in
    raise (Prog.Out_of_fuel "hw-capacity")
  else
    let commit =
      Commit.compose
        (Commit.always ~obj:(Graph.obj t.graph) (fun _ -> (e, Event.Enq v)))
        extra
    in
    Prog.store ~site:"hwqueue.enq.slot_publish" (slot t i) (Value.Ptr cell)
      Mode.Rel ~commit

let deq ?(extra = fun _ -> []) t =
  let* d = Prog.reserve in
  let obj = Graph.obj t.graph in
  let* b = Prog.load ~site:"hwqueue.deq.back_load" t.back Mode.Rlx in
  let b = min (Value.to_int_exn b) t.capacity in
  let take_commit =
    Commit.compose
      (fun (r : Commit.op_result) ->
        match r.value with
        | Value.Ptr cell ->
            let v, e = Hashtbl.find t.ghost (Loc.base cell) in
            [
              Commit.spec ~obj
                [ Commit.ev d (Event.Deq v) ]
                ~so:[ (e, d) ];
            ]
        | _ -> [])
      extra
  in
  let rec scan i =
    if i >= b then
      (* Fruitless scan: commit the empty dequeue on a (relaxed) re-read of
         back — a read-only commit point, as the paper allows. *)
      let empty_commit =
        Commit.compose
          (fun _ -> [ Commit.spec ~obj [ Commit.ev d Event.EmpDeq ] ])
          extra
      in
      let* _ =
        Prog.load ~site:"hwqueue.deq.back_reread" t.back Mode.Rlx
          ~commit:empty_commit
      in
      Prog.return Value.Null
    else
      let* x =
        Prog.xchg ~site:"hwqueue.deq.slot_take" (slot t i) Value.Taken
          Mode.Acq ~commit:take_commit
      in
      match x with
      | Value.Ptr cell ->
          Prog.load ~site:"hwqueue.deq.val_load" (Loc.shift cell 0) Mode.Na
      | _ -> scan (i + 1)
  in
  scan 0

let instantiate : Iface.queue_factory =
  {
    Iface.q_name = "hw-queue";
    make_queue =
      (fun m ~name ->
        let t = create m ~name in
        {
          Iface.q_kind = "hw-queue";
          q_graph = t.graph;
          enq = (fun v -> enq t v);
          deq = (fun () -> deq t);
        });
  }
