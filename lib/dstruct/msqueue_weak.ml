open Compass_rmc
open Compass_event
open Compass_machine
open Prog.Syntax

(* The *deliberately broken* Michael-Scott queue: publication relaxed.

   This is {!Msqueue} with the enqueue's two publication CASes demoted to
   relaxed — the link CAS on the predecessor's [next] field and the tail
   swing.  Linking a node with a relaxed CAS publishes a message that
   carries no view: a dequeuer that reaches the node through it has not
   acquired the enqueuer's non-atomic initialisation of [value]/[eid],
   so its plain loads of those fields race.  The machine's race detector
   faults the execution, the RC11 differential checker flags the same
   unordered pair, and the MP client reports the violation — the
   counterexample the paper predicts for dropping the release on
   publication.

   It is a checked-in regression fixture for the synchronization
   analyzer: behaviourally identical to running the real {!Msqueue}
   under [--weaken msqueue.enq.link_cas=rlx], which is exactly the
   weakest mutant the mode-necessity audit generates for that site and
   must classify [Necessary].  Tests pin both routes to the bug. *)

let fval p = Loc.shift (Value.to_loc_exn p) 0
let feid p = Loc.shift (Value.to_loc_exn p) 1
let fnext p = Loc.shift (Value.to_loc_exn p) 2

type t = { head : Loc.t; tail : Loc.t; graph : Graph.t; fuel : int }

let default_fuel = 32

let create ?(fuel = default_fuel) m ~name =
  let graph = Machine.new_graph m ~name in
  let q = Machine.alloc m ~name 2 in
  let sentinel = Machine.alloc m ~name:(name ^ ".sent") 3 in
  let () =
    ignore
      (Machine.solo m
         (Prog.returning_unit
            (let* () = Prog.store (Loc.shift sentinel 0) (Value.Int 0) Mode.Na in
             let* () = Prog.store (Loc.shift sentinel 1) (Value.Int (-1)) Mode.Na in
             let* () = Prog.store (Loc.shift sentinel 2) Value.Null Mode.Na in
             let* () = Prog.store (Loc.shift q 0) (Value.Ptr sentinel) Mode.Na in
             Prog.store (Loc.shift q 1) (Value.Ptr sentinel) Mode.Na)))
  in
  { head = Loc.shift q 0; tail = Loc.shift q 1; graph; fuel }

let graph t = t.graph

let enq ?(extra = fun _ -> []) t v =
  let* e = Prog.reserve in
  let* n = Prog.alloc ~name:"node" 3 in
  let np = Value.Ptr n in
  let* () =
    Prog.store ~site:"msqueue_weak.enq.init_val" (Loc.shift n 0) v Mode.Na
  in
  let* () =
    Prog.store ~site:"msqueue_weak.enq.init_eid" (Loc.shift n 1) (Value.Int e)
      Mode.Na
  in
  let* () =
    Prog.store ~site:"msqueue_weak.enq.init_next" (Loc.shift n 2) Value.Null
      Mode.Na
  in
  let commit =
    Commit.compose
      (Commit.on_success ~obj:(Graph.obj t.graph) (fun _ -> (e, Event.Enq v)))
      extra
  in
  Prog.with_fuel ~fuel:t.fuel ~what:"ms-weak-enq" (fun () ->
      let* tl = Prog.load ~site:"msqueue_weak.enq.tail_load" t.tail Mode.Acq in
      let* nx =
        Prog.load ~site:"msqueue_weak.enq.next_load" (fnext tl) Mode.Acq
      in
      match nx with
      | Value.Null ->
          (* BUG (deliberate): the publication CAS is relaxed. *)
          let* _, ok =
            Prog.cas ~site:"msqueue_weak.enq.link_cas" (fnext tl)
              ~expected:Value.Null ~desired:np Mode.Rlx ~commit
          in
          if ok then
            let* _ =
              Prog.cas ~site:"msqueue_weak.enq.tail_swing" t.tail ~expected:tl
                ~desired:np Mode.Rlx
            in
            Prog.return (Some ())
          else Prog.return None
      | _ ->
          let* _ =
            Prog.cas ~site:"msqueue_weak.enq.tail_help" t.tail ~expected:tl
              ~desired:nx Mode.Rlx
          in
          Prog.return None)

let deq ?(extra = fun _ -> []) t =
  let* d = Prog.reserve in
  let obj = Graph.obj t.graph in
  Prog.with_fuel ~fuel:t.fuel ~what:"ms-weak-deq" (fun () ->
      let* h = Prog.load ~site:"msqueue_weak.deq.head_load" t.head Mode.Acq in
      let empty_commit =
        Commit.compose
          (fun (r : Commit.op_result) ->
            if Value.equal r.value Value.Null then
              [ Commit.spec ~obj [ Commit.ev d Event.EmpDeq ] ]
            else [])
          extra
      in
      let* nx =
        Prog.load ~site:"msqueue_weak.deq.next_load" (fnext h) Mode.Acq
          ~commit:empty_commit
      in
      match nx with
      | Value.Null -> Prog.return (Some Value.Null)
      | _ ->
          let* v =
            Prog.load ~site:"msqueue_weak.deq.val_load" (fval nx) Mode.Na
          in
          let* ev =
            Prog.load ~site:"msqueue_weak.deq.eid_load" (feid nx) Mode.Na
          in
          let e = Value.to_int_exn ev in
          let commit =
            Commit.compose
              (Commit.on_success ~obj
                 ~so:(fun _ -> [ (e, d) ])
                 (fun _ -> (d, Event.Deq v)))
              extra
          in
          let* _, ok =
            Prog.cas ~site:"msqueue_weak.deq.head_cas" t.head ~expected:h
              ~desired:nx Mode.AcqRel ~commit
          in
          if ok then Prog.return (Some v) else Prog.return None)

let instantiate : Iface.queue_factory =
  {
    Iface.q_name = "ms-queue-weak";
    make_queue =
      (fun m ~name ->
        let t = create m ~name in
        {
          Iface.q_kind = "ms-queue-weak";
          q_graph = t.graph;
          enq = (fun v -> enq t v);
          deq = (fun () -> deq t);
        });
  }
