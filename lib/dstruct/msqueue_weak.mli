open Compass_rmc
open Compass_event
open Compass_machine

(** The {e deliberately broken} Michael-Scott queue: publication relaxed.

    {!Msqueue} with the enqueue's two publication CASes demoted to
    relaxed — the link CAS on the predecessor's [next] field and the tail
    swing.  A dequeuer that reaches a node through the relaxed link has
    not acquired the enqueuer's non-atomic initialisation of
    [value]/[eid], so its plain loads of those fields race: the machine's
    race detector faults the execution, the RC11 differential checker
    flags the same unordered pair, and the MP client reports the
    violation — the counterexample the paper predicts for dropping the
    release on publication.

    Checked-in regression fixture for the synchronization analyzer and
    the refinement driver: behaviourally identical to running the real
    {!Msqueue} under [--weaken msqueue.enq.link_cas=rlx], the weakest
    mutant the mode-necessity audit generates for that site (and must
    classify [Necessary]).  Its registry entry carries
    [expect_violation = true]: its probes must fail, and refinement
    against the spec object must produce a replayable counterexample. *)

type t

val default_fuel : int

val create : ?fuel:int -> Machine.t -> name:string -> t
val graph : t -> Graph.t

val enq :
  ?extra:(Commit.spec list -> Commit.spec list) -> t -> Value.t -> unit Prog.t

val deq : ?extra:(Commit.spec list -> Commit.spec list) -> t -> Value.t Prog.t
(** returns the value, or [Null] for the empty case *)

val instantiate : Iface.queue_factory
