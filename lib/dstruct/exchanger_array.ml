open Compass_rmc
open Compass_event
open Compass_machine
open Prog.Syntax

(* An array of exchangers — Section 4.1: "the elimination mechanism can be
   implemented with an exchanger (which in turn can be implemented as an
   array of exchangers)".

   [slots] independent single-slot exchangers share one event graph, so
   the composite satisfies exactly the same ExchangerConsistent spec: a
   match on any slot is a matched pair in the shared graph.  A thread
   starts at a slot determined by its id and rotates on contention —
   deterministic (the machine's nondeterminism lives in the scheduler, not
   the program), yet spreading threads across slots. *)

type t = { slots : Exchanger.t array; graph : Graph.t; fuel : int }

let default_fuel = 8

let create ?(slots = 2) ?(fuel = default_fuel) m ~name =
  let graph = Machine.new_graph m ~name in
  let mk i =
    Exchanger.create ~graph m ~name:(Printf.sprintf "%s.%d" name i)
  in
  { slots = Array.init slots mk; graph; fuel }

let graph t = t.graph

let exchange ?(extra = fun _ -> []) t v1 =
  if Value.equal v1 Value.Null then
    invalid_arg "Exchanger_array.exchange: bottom";
  let* e1 = Prog.reserve in
  let* my_tid = Prog.tid in
  let n = Array.length t.slots in
  Prog.with_fuel_i ~fuel:t.fuel ~what:"exchange-array" (fun attempt ->
      let i = (my_tid + attempt) mod n in
      Exchanger.exchange_attempt ~extra t.slots.(i) ~e1 ~my_tid v1)

let instantiate ?slots m ~name : Iface.exchanger =
  let t = create ?slots m ~name in
  {
    Iface.x_kind = "exchanger-array";
    x_graph = t.graph;
    exchange = (fun v -> exchange t v);
  }
