open Compass_event
open Compass_spec

(** Spec-as-implementation: reference objects derived from a spec.

    Given a registered spec with a sequential kind, build a {!Iface}
    factory whose operations execute the spec's {e abstract transitions
    atomically}: each operation is one RMW machine step whose commit
    function reads the object's current abstract state (by replaying the
    event graph in commit order), commits the transition's event with its
    [so] edges, and the operation returns the value that event carries.

    Running a client against this object is running it against the spec
    itself — the executable analogue of the paper's "clients are verified
    against specs, implementations are proven against the same specs".
    The object sits at the very top of the strength ladder: every
    explored execution satisfies even the SC-strength spec ([Sc_abs]),
    because transitions are serialised by one acq-rel RMW cell and empty
    removals commit only on the truly empty abstract state.  The
    refinement driver ({!Compass_clients.Refine}) uses it as the
    differential oracle: a correct implementation's outcomes must be a
    subset of the spec object's. *)

(** {1 The labeled-transition interface}

    The spec as an explicit LTS over abstract states: one step performs
    an operation and checks the observed result for legality.  This is
    the single spec-stepping primitive — the refinement drivers
    ({!Compass_clients.Refine} via the spec-object factories below, and
    the forward-simulation checker in [lib/sim]) both go through it, and
    {!Libspec.replay} folds the same [transition] it wraps. *)

val step :
  Libspec.kind ->
  Libspec.astate ->
  id:int ->
  op:Libspec.op_req ->
  result:Event.typ ->
  (Libspec.astate * (int * int) list) option
(** [step kind st ~id ~op ~result] is [Some (st', so)] when performing
    [op] from [st] legally yields the event [result] (committed with id
    [id]): the successor state and the spec's predicted
    insertion-to-removal [so] edges.  [None] when the result is illegal —
    a queue in state [a; b] admits [Deq a] but not [Deq b] (FIFO), a
    stack admits only the most recent push (LIFO), and empty removals are
    legal only from the empty state. *)

val step_event :
  Libspec.kind ->
  Libspec.astate ->
  Event.data ->
  (Libspec.astate * (int * int) list) option
(** {!step} with the request derived from the observed event ([None] for
    events outside the kind's vocabulary) *)

val queue : ?spec:Libspec.t -> unit -> Iface.queue_factory
(** defaults to {!Libspec.queue}; [q_name] is ["spec:" ^ spec name] *)

val stack : ?spec:Libspec.t -> unit -> Iface.stack_factory
(** defaults to {!Libspec.stack}.  The [try_push]/[try_pop] operations
    never fail with contention: the spec object's attempts are total. *)
