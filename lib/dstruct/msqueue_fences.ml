open Compass_rmc
open Compass_event
open Compass_machine
open Prog.Syntax

(* Michael-Scott queue, fence-based: the same algorithm as {!Msqueue} but
   with *relaxed* accesses and explicit release/acquire fences — the other
   half of ORC11's synchronisation vocabulary (iRC11 supports both; the
   fence rules are Section 5's F_rel/F_acq).  Semantically equivalent to
   the rel/acq version: a release fence before the linking CAS publishes
   the node fields and the logical view through the CAS's (relaxed)
   message; an acquire fence after each relaxed pointer load acquires
   them.  The experiments check it against the same LATabs-hb specs the
   access-based version satisfies — fence-based and access-based
   synchronisation are interchangeable at the spec level.

   One subtlety mirrors the access-based version's head-CAS lesson: the
   dequeue's head CAS needs a release fence before it, so that later
   dequeuers (who reach nodes through head) inherit the dequeuer's
   observations; CAS message views also inherit their read message's views
   (release sequences), which carries the chain through. *)

let fval p = Loc.shift (Value.to_loc_exn p) 0
let feid p = Loc.shift (Value.to_loc_exn p) 1
let fnext p = Loc.shift (Value.to_loc_exn p) 2

type t = { head : Loc.t; tail : Loc.t; graph : Graph.t; fuel : int }

let default_fuel = 32

let create ?(fuel = default_fuel) m ~name =
  let graph = Machine.new_graph m ~name in
  let q = Machine.alloc m ~name 2 in
  let sentinel = Machine.alloc m ~name:(name ^ ".sent") 3 in
  ignore
    (Machine.solo m
       (Prog.returning_unit
          (let* () = Prog.store (Loc.shift sentinel 0) (Value.Int 0) Mode.Na in
           let* () = Prog.store (Loc.shift sentinel 1) (Value.Int (-1)) Mode.Na in
           let* () = Prog.store (Loc.shift sentinel 2) Value.Null Mode.Na in
           let* () = Prog.store (Loc.shift q 0) (Value.Ptr sentinel) Mode.Na in
           Prog.store (Loc.shift q 1) (Value.Ptr sentinel) Mode.Na)));
  { head = Loc.shift q 0; tail = Loc.shift q 1; graph; fuel }

let graph t = t.graph

(* A relaxed load followed by an acquire fence: the fence-based acquire.
   [site] labels the load; the fence gets the same label with a ".fence"
   suffix so the audit can weaken or drop it independently. *)
let load_acq_fence ?site l =
  let fsite = Option.map (fun s -> s ^ ".fence") site in
  let* v = Prog.load ?site l Mode.Rlx in
  let* () = Prog.fence ?site:fsite Mode.F_acq in
  Prog.return v

let enq ?(extra = fun _ -> []) t v =
  let* e = Prog.reserve in
  let* n = Prog.alloc ~name:"node" 3 in
  let np = Value.Ptr n in
  let* () = Prog.store ~site:"msqueue_f.enq.init_val" (Loc.shift n 0) v Mode.Na in
  let* () =
    Prog.store ~site:"msqueue_f.enq.init_eid" (Loc.shift n 1) (Value.Int e)
      Mode.Na
  in
  let* () =
    Prog.store ~site:"msqueue_f.enq.init_next" (Loc.shift n 2) Value.Null
      Mode.Na
  in
  let commit =
    Commit.compose
      (Commit.on_success ~obj:(Graph.obj t.graph) (fun _ -> (e, Event.Enq v)))
      extra
  in
  Prog.with_fuel ~fuel:t.fuel ~what:"msf-enq" (fun () ->
      let* tl = load_acq_fence ~site:"msqueue_f.enq.tail_load" t.tail in
      let* nx = load_acq_fence ~site:"msqueue_f.enq.next_load" (fnext tl) in
      match nx with
      | Value.Null ->
          (* The fence-based release: publish node fields + logical view
             through the (relaxed) linking CAS. *)
          let* () = Prog.fence ~site:"msqueue_f.enq.publish_fence" Mode.F_rel in
          let* _, ok =
            Prog.cas ~site:"msqueue_f.enq.link_cas" (fnext tl)
              ~expected:Value.Null ~desired:np Mode.Rlx ~commit
          in
          if ok then
            let* _ =
              Prog.cas ~site:"msqueue_f.enq.tail_swing" t.tail ~expected:tl
                ~desired:np Mode.Rlx
            in
            Prog.return (Some ())
          else Prog.return None
      | _ ->
          let* _ =
            Prog.cas ~site:"msqueue_f.enq.tail_help" t.tail ~expected:tl
              ~desired:nx Mode.Rlx
          in
          Prog.return None)

let deq ?(extra = fun _ -> []) t =
  let* d = Prog.reserve in
  let obj = Graph.obj t.graph in
  Prog.with_fuel ~fuel:t.fuel ~what:"msf-deq" (fun () ->
      let* h = load_acq_fence ~site:"msqueue_f.deq.head_load" t.head in
      let empty_commit =
        Commit.compose
          (fun (r : Commit.op_result) ->
            if Value.equal r.value Value.Null then
              [ Commit.spec ~obj [ Commit.ev d Event.EmpDeq ] ]
            else [])
          extra
      in
      let* nx =
        Prog.load ~site:"msqueue_f.deq.next_load" (fnext h) Mode.Rlx
          ~commit:empty_commit
      in
      let* () = Prog.fence ~site:"msqueue_f.deq.next_load.fence" Mode.F_acq in
      match nx with
      | Value.Null -> Prog.return (Some Value.Null)
      | _ ->
          let* v = Prog.load ~site:"msqueue_f.deq.val_load" (fval nx) Mode.Na in
          let* ev =
            Prog.load ~site:"msqueue_f.deq.eid_load" (feid nx) Mode.Na
          in
          let e = Value.to_int_exn ev in
          let commit =
            Commit.compose
              (Commit.on_success ~obj
                 ~so:(fun _ -> [ (e, d) ])
                 (fun _ -> (d, Event.Deq v)))
              extra
          in
          (* Release what we observed to later dequeuers through head. *)
          let* () = Prog.fence ~site:"msqueue_f.deq.publish_fence" Mode.F_rel in
          let* _, ok =
            Prog.cas ~site:"msqueue_f.deq.head_cas" t.head ~expected:h
              ~desired:nx Mode.Rlx ~commit
          in
          if ok then Prog.return (Some v) else Prog.return None)

let instantiate : Iface.queue_factory =
  {
    Iface.q_name = "ms-queue-fences";
    make_queue =
      (fun m ~name ->
        let t = create m ~name in
        {
          Iface.q_kind = "ms-queue-fences";
          q_graph = t.graph;
          enq = (fun v -> enq t v);
          deq = (fun () -> deq t);
        });
  }
