open Compass_rmc
open Compass_event
open Compass_machine
open Prog.Syntax

(* A single-slot exchanger (the core of Scherer-Lea-Scott's elimination
   channel [Scherer, Lea & Scott'05]), with the paper's helping discipline
   (Section 4.2) realised operationally.

   Protocol.  The slot holds [Null] or a pointer to an *offer*
   [{value; eid; tid; hole}].  An arriving thread:

   - sees [Null]: publishes its own offer with a release CAS (the release
     carries its views — this is the helpee's contribution [V1, M0]), then
     tries to *retract* by CASing [hole] from [Null] to [TAKEN]; retract
     success is the commit point of a failed exchange [Exchange (v, Null)];
     retract failure means a helper matched first — the acquire read of the
     helper's cell in [hole] delivers the completed graph (the paper's
     *local postcondition*: only now does the helpee observe both events);

   - sees an offer: becomes the *helper*: it CASes [hole] from [Null] to
     its own cell; on success this single instruction is the commit point
     of BOTH exchanges — helpee first, then helper — with symmetric so
     edges.  The helpee's event carries the offer message's physical and
     logical views (captured when the helper read the slot — view-explicit
     reasoning, Section 5.2), and the helper's own tid is replaced by the
     helpee's, read from the offer.

   Matched pairs therefore commit in one atomic machine step: no third
   commit can observe the intermediate state, which is exactly the
   atomicity property the elimination stack's LIFO argument needs. *)

(* Offer block: [0] value, [1] event id, [2] tid, [3] hole.
   Helper cell: [0] value. *)
type t = { slot : Loc.t; graph : Graph.t; fuel : int }

let default_fuel = 8

let create ?(fuel = default_fuel) ?graph m ~name =
  (* [graph] lets several slots share one event graph — the array of
     exchangers (Section 4.1's parenthetical) is then just more slots
     feeding the same graph and the same consistency conditions. *)
  let graph =
    match graph with Some g -> g | None -> Machine.new_graph m ~name
  in
  let slot = Machine.alloc m ~name ~init:Value.Null 1 in
  { slot; graph; fuel }

let graph t = t.graph

(* One attempt at exchanging on this slot: [Some v2] = done (with [Null]
   for a committed failed exchange), [None] = contention, try again
   (possibly elsewhere — the array rotates slots between attempts). *)
let exchange_attempt ?(extra = fun _ -> []) t ~e1 ~my_tid v1 =
  let obj = Graph.obj t.graph in
  let attempt () =
      let* s = Prog.load_explicit ~site:"exchanger.slot_load" t.slot Mode.Acq in
      match s.Prog.value with
      | Value.Null -> (
          (* Publish an offer. *)
          let* o = Prog.alloc ~name:"offer" 4 in
          let* () = Prog.store ~site:"exchanger.offer.init_val" (Loc.shift o 0) v1 Mode.Na in
          let* () = Prog.store ~site:"exchanger.offer.init_eid" (Loc.shift o 1) (Value.Int e1) Mode.Na in
          let* () = Prog.store ~site:"exchanger.offer.init_tid" (Loc.shift o 2) (Value.Int my_tid) Mode.Na in
          let* () = Prog.store ~site:"exchanger.offer.init_hole" (Loc.shift o 3) Value.Null Mode.Na in
          let* _, ok =
            Prog.cas ~site:"exchanger.offer.publish_cas" t.slot ~expected:Value.Null ~desired:(Value.Ptr o) Mode.Rel
          in
          if not ok then Prog.return None (* slot got occupied; retry *)
          else
            (* Give a partner a chance, then retract.  The retract CAS
               decides atomically: success = the exchange failed; failure =
               a helper already matched us. *)
            let* () = Prog.yield in
            let fail_commit =
              Commit.compose
                (fun (r : Commit.op_result) ->
                  if r.success then
                    [ Commit.spec ~obj [ Commit.ev e1 (Event.Exchange (v1, Value.Null)) ] ]
                  else [])
                extra
            in
            let* r =
              Prog.cas_explicit ~site:"exchanger.retract_cas" (Loc.shift o 3)
                ~expected:Value.Null ~desired:Value.Taken Mode.Acq
                ~commit:fail_commit
            in
            if r.Prog.success then
              (* Failed exchange; clear the slot (best effort). *)
              let* _ =
                Prog.cas t.slot ~expected:(Value.Ptr o) ~desired:Value.Null
                  Mode.Rlx
              in
              Prog.return (Some Value.Null)
            else
              (* Matched: the failed CAS acquire-read the helper's cell;
                 both events are already in the graph. *)
              match r.Prog.value with
              | Value.Ptr c ->
                  let* v2 = Prog.load ~site:"exchanger.helper_cell_load" (Loc.shift c 0) Mode.Na in
                  let* _ =
                    Prog.cas t.slot ~expected:(Value.Ptr o) ~desired:Value.Null
                      Mode.Rlx
                  in
                  Prog.return (Some v2)
              | w ->
                  failwith
                    (Format.asprintf "exchanger: corrupt hole %a" Value.pp w))
      | Value.Ptr o -> (
          (* Someone's offer is up: try to help. *)
          let* v2 = Prog.load ~site:"exchanger.help.val_load" (Loc.shift o 0) Mode.Na in
          let* e2v = Prog.load ~site:"exchanger.help.eid_load" (Loc.shift o 1) Mode.Na in
          let* tid2v = Prog.load ~site:"exchanger.help.tid_load" (Loc.shift o 2) Mode.Na in
          let e2 = Value.to_int_exn e2v and tid2 = Value.to_int_exn tid2v in
          let* c = Prog.alloc ~name:"cell" 1 in
          let* () = Prog.store ~site:"exchanger.help.cell_init" c v1 Mode.Na in
          let offer_view = s.Prog.view and offer_lview = s.Prog.lview in
          let match_commit =
            Commit.compose
              (fun (r : Commit.op_result) ->
                if r.success then
                  [
                    Commit.spec ~obj
                      [
                        (* Helpee first: its views are the offer's, plus
                           both events (Figure 5: e1, e2 ∈ M'). *)
                        Commit.ev e2
                          (Event.Exchange (v2, v1))
                          ~view:offer_view
                          ~lview:(Lview.add e1 (Lview.add e2 offer_lview))
                          ~tid:tid2;
                        (* Then the helper's own event. *)
                        Commit.ev e1 (Event.Exchange (v1, v2));
                      ]
                      ~so:[ (e1, e2); (e2, e1) ];
                  ]
                else [])
              extra
          in
          let* _, ok =
            Prog.cas ~site:"exchanger.help.match_cas" (Loc.shift o 3)
              ~expected:Value.Null ~desired:(Value.Ptr c) Mode.AcqRel
              ~commit:match_commit
          in
          if ok then
            let* _ =
              Prog.cas t.slot ~expected:(Value.Ptr o) ~desired:Value.Null
                Mode.Rlx
            in
            Prog.return (Some v2)
          else Prog.return None (* lost the race to another helper; retry *))
      | w -> failwith (Format.asprintf "exchanger: corrupt slot %a" Value.pp w)
  in
  attempt ()

let exchange ?extra t v1 =
  if Value.equal v1 Value.Null then invalid_arg "Exchanger.exchange: bottom";
  let* e1 = Prog.reserve in
  let* my_tid = Prog.tid in
  Prog.with_fuel ~fuel:t.fuel ~what:"exchange" (fun () ->
      exchange_attempt ?extra t ~e1 ~my_tid v1)

let instantiate m ~name : Iface.exchanger =
  let t = create m ~name in
  {
    Iface.x_kind = "slot-exchanger";
    x_graph = t.graph;
    exchange = (fun v -> exchange t v);
  }
