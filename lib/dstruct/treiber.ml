open Compass_rmc
open Compass_event
open Compass_machine
open Prog.Syntax

(* Treiber stack [Treiber'86], relaxed: pushes use release CASes and
   successful pops use acquire CASes — exactly the access modes of the
   paper's Section 3.3, where this implementation is verified against the
   LAThist specs.  There are lhb edges only between matching push-pop
   pairs; the linearisation [to] is derivable from lhb plus the
   modification order of [head] — operationally, our commit order *is*
   that modification order, which experiment E5 exploits.

   Commit points:
   - push: the successful release CAS on [head];
   - successful pop: the successful acquire CAS on [head];
   - empty pop: the acquire load of [head] that returned null (which may be
     a *stale* null — the resulting EmpPop may need reordering in [to],
     which is why LAThist only requires existence of a valid reordering). *)

(* Node block: [0] value, [1] event id, [2] next. *)
type t = { head : Loc.t; graph : Graph.t; fuel : int }

let default_fuel = 32

let create ?(fuel = default_fuel) m ~name =
  let graph = Machine.new_graph m ~name in
  let head = Machine.alloc m ~name ~init:Value.Null 1 in
  { head; graph; fuel }

let graph t = t.graph

let make_node v e =
  let* n = Prog.alloc ~name:"node" 3 in
  let* () = Prog.store ~site:"treiber.push.init_val" (Loc.shift n 0) v Mode.Na in
  let* () =
    Prog.store ~site:"treiber.push.init_eid" (Loc.shift n 1) (Value.Int e)
      Mode.Na
  in
  Prog.return n

(* One push attempt; [Some ()] on success. *)
let push_attempt ?(extra = fun _ -> []) t v e n =
  let* h = Prog.load ~site:"treiber.push.head_load" t.head Mode.Rlx in
  let* () = Prog.store ~site:"treiber.push.init_next" (Loc.shift n 2) h Mode.Na in
  let commit =
    Commit.compose
      (Commit.on_success ~obj:(Graph.obj t.graph) (fun _ -> (e, Event.Push v)))
      extra
  in
  let* _, ok =
    Prog.cas ~site:"treiber.push.head_cas" t.head ~expected:h
      ~desired:(Value.Ptr n) Mode.Rel ~commit
  in
  Prog.return (if ok then Some () else None)

(* One pop attempt; [Some v] done (with [v = Null] for empty), [None] lost
   a race. *)
let pop_attempt ?(extra = fun _ -> []) t d =
  let obj = Graph.obj t.graph in
  let empty_commit =
    Commit.compose
      (fun (r : Commit.op_result) ->
        if Value.equal r.value Value.Null then
          [ Commit.spec ~obj [ Commit.ev d Event.EmpPop ] ]
        else [])
      extra
  in
  let* h = Prog.load ~site:"treiber.pop.head_load" t.head Mode.Acq ~commit:empty_commit in
  match h with
  | Value.Null -> Prog.return (Some Value.Null)
  | _ ->
      let* v =
        Prog.load ~site:"treiber.pop.val_load"
          (Loc.shift (Value.to_loc_exn h) 0)
          Mode.Na
      in
      let* ev =
        Prog.load ~site:"treiber.pop.eid_load"
          (Loc.shift (Value.to_loc_exn h) 1)
          Mode.Na
      in
      let e = Value.to_int_exn ev in
      let* nx =
        Prog.load ~site:"treiber.pop.next_load"
          (Loc.shift (Value.to_loc_exn h) 2)
          Mode.Na
      in
      let commit =
        Commit.compose
          (Commit.on_success ~obj
             ~so:(fun _ -> [ (e, d) ])
             (fun _ -> (d, Event.Pop v)))
          extra
      in
      let* _, ok =
        Prog.cas ~site:"treiber.pop.head_cas" t.head ~expected:h ~desired:nx
          Mode.Acq ~commit
      in
      Prog.return (if ok then Some v else None)

let push ?extra t v =
  let* e = Prog.reserve in
  let* n = make_node v e in
  Prog.with_fuel ~fuel:t.fuel ~what:"treiber-push" (fun () ->
      push_attempt ?extra t v e n)

let pop ?extra t =
  let* d = Prog.reserve in
  Prog.with_fuel ~fuel:t.fuel ~what:"treiber-pop" (fun () -> pop_attempt ?extra t d)

(* Single-attempt operations for the elimination stack (the paper's
   [try_push'] and [try_pop'], Section 4.1). *)
let try_push ?extra t v =
  let* e = Prog.reserve in
  let* n = make_node v e in
  let* r = push_attempt ?extra t v e n in
  Prog.return (match r with Some () -> Value.Int 1 | None -> Value.Fail)

let try_pop ?extra t =
  let* d = Prog.reserve in
  let* r = pop_attempt ?extra t d in
  Prog.return (match r with Some v -> v | None -> Value.Fail)

let instantiate : Iface.stack_factory =
  {
    Iface.s_name = "treiber";
    make_stack =
      (fun m ~name ->
        let t = create m ~name in
        {
          Iface.s_kind = "treiber";
          s_graph = t.graph;
          push = (fun v -> push t v);
          pop = (fun () -> pop t);
          try_push = (fun v -> try_push t v);
          try_pop = (fun () -> try_pop t);
        });
  }
