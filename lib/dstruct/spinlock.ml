open Compass_rmc
open Compass_machine
open Prog.Syntax

(* Test-and-set spinlock — a substrate self-test and the tool clients use
   to run a library "in an SC fashion" (Section 3.1: a client that adds
   sufficient external synchronisation can recover the strong FIFO
   condition).  Acquire = blocking-await for 0 then acq-rel CAS; release =
   release store of 0. *)

type t = { cell : Loc.t }

let create m ~name = { cell = Machine.alloc m ~name ~init:(Value.Int 0) 1 }

let lock ?(fuel = 16) t =
  Prog.with_fuel ~fuel ~what:"spinlock" (fun () ->
      let* _ =
        Prog.await ~site:"spinlock.lock.await" t.cell Mode.Rlx
          (Value.equal (Value.Int 0))
      in
      let* _, ok =
        Prog.cas ~site:"spinlock.lock.cas" t.cell ~expected:(Value.Int 0)
          ~desired:(Value.Int 1) Mode.AcqRel
      in
      Prog.return (if ok then Some () else None))

let unlock t =
  Prog.store ~site:"spinlock.unlock.store" t.cell (Value.Int 0) Mode.Rel

let with_lock ?fuel t body =
  let* () = lock ?fuel t in
  let* r = body in
  let* () = unlock t in
  Prog.return r
