(** The paper's library implementations, written against the simulated
    ORC11 memory with the access modes the paper names, and instrumented to
    commit Yacovet events at their commit points:

    - {!Msqueue}: Michael-Scott queue, pure release-acquire (LATabs-hb);
    - {!Msqueue_fences}: the same algorithm with relaxed accesses and
      explicit release/acquire fences — spec-equivalent;
    - {!Msqueue_weak}: the same algorithm with *relaxed* publication — a
      deliberately broken regression fixture for the synchronization
      analyzer;
    - {!Hwqueue}: weak Herlihy-Wing queue, rel enq / acq deq (LAThb);
    - {!Treiber}: relaxed Treiber stack (LAThist);
    - {!Exchanger}: single-slot exchanger with helping (Section 4.2);
    - {!Elimination}: elimination stack composing Treiber + exchanger with
      no new atomics (Section 4.1);
    - {!Spinlock}: test-and-set lock (substrate self-test / SC-mode
      clients);
    - {!Lockqueue}, {!Lockstack}: coarse-grained lock-based SC baselines —
      the "sufficient external synchronisation" limit of Section 3.1 that
      satisfies even the SC-strength spec;
    - {!Iface}: implementation-generic handles used by clients;
    - {!Specobj}: reference implementations derived from registered specs
      — abstract transitions executed atomically ("spec-as-
      implementation"), the refinement driver's oracle. *)

module Iface = Iface
module Msqueue = Msqueue
module Msqueue_fences = Msqueue_fences
module Msqueue_weak = Msqueue_weak
module Hwqueue = Hwqueue
module Treiber = Treiber
module Exchanger = Exchanger
module Exchanger_array = Exchanger_array
module Elimination = Elimination
module Spinlock = Spinlock
module Lockqueue = Lockqueue
module Lockstack = Lockstack
module Chaselev = Chaselev
module Specobj = Specobj
