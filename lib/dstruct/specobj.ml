open Compass_rmc
open Compass_event
open Compass_machine
open Compass_spec
open Prog.Syntax

(* Spec-as-implementation: a reference object whose operations are the
   spec's abstract transitions, executed atomically.

   Layout: one cell [lin], the linearisation point.  Every operation is a
   fetch-and-add on [lin] (acq-rel, so each committer acquires all prior
   committers' views and logical views).  The commit function attached to
   that single instruction replays the object's event graph in commit
   order to the current abstract state, asks the spec for the transition,
   and commits the resulting event with its so edges — all in the same
   atomic machine step.  The continuation then reads the committed event
   back out of the graph to produce the operation's return value; the
   machine applies continuations within the step, so the readback is
   atomic with the commit (and replays identically under the incremental
   checkpoint/restore engine, which restores graphs in place). *)

(* -- the labeled-transition interface ----------------------------------------

   One spec step, checked against an observed result: from abstract state
   [st], does performing [op] legally produce the event [result]?  The
   spec's [transition] is deterministic, so legality is equality of the
   produced event type (which pins FIFO/LIFO removal order: a queue in
   state [(a, _); (b, _)] admits [Deq a] but not [Deq b]).  The returned
   so edges are the spec's predicted insertion-to-removal matching, which
   simulation checkers compare against the edges the implementation
   committed. *)

let step kind st ~id ~op ~result =
  let st', typ, so = Libspec.transition kind st ~id op in
  if Event.typ_equal typ result then Some (st', so) else None

(* Step by observed event alone: derive the request from the event type.
   [None] when the event is outside the kind's vocabulary or illegal from
   [st]. *)
let step_event kind st (e : Event.data) =
  match Libspec.op_of_typ e.Event.typ with
  | None -> None
  | Some op -> step kind st ~id:e.Event.id ~op ~result:e.Event.typ

let kind_of (spec : Libspec.t) =
  match spec.Libspec.kind with
  | Some k -> k
  | None ->
      invalid_arg
        (Printf.sprintf "Specobj: spec %s has no sequential kind"
           spec.Libspec.name)

type t = { graph : Graph.t; lin : Loc.t; kind : Libspec.kind; site : string }

let create spec m ~name =
  let kind = kind_of spec in
  let graph = Machine.new_graph m ~name in
  let lin = Machine.alloc m ~init:(Value.Int 0) ~name:(name ^ ".lin") 1 in
  { graph; lin; kind; site = "spec." ^ spec.Libspec.name }

(* One atomic abstract transition; returns the committed event's type. *)
let atomic t ~opname req =
  let* id = Prog.reserve in
  let obj = Graph.obj t.graph in
  let commit (_ : Commit.op_result) =
    let st = Libspec.replay t.kind t.graph in
    let _, typ, so = Libspec.transition t.kind st ~id req in
    [ Commit.spec ~obj ~so [ Commit.ev id typ ] ]
  in
  let* _ =
    Prog.faa ~site:(t.site ^ "." ^ opname) ~commit t.lin 1 Mode.AcqRel
  in
  match Graph.find_opt t.graph id with
  | Some e -> Prog.return e.Event.typ
  | None -> Prog.return Event.EmpDeq (* unreachable: the commit is unconditional *)

let insert t ~opname v =
  let* _ = atomic t ~opname (Libspec.Insert v) in
  Prog.return ()

let remove t ~opname =
  let* typ = atomic t ~opname Libspec.Remove in
  match Libspec.removed_value typ with
  | Some v -> Prog.return v
  | None -> Prog.return Value.Null

let name_of spec = "spec:" ^ spec.Libspec.name

let queue ?(spec = Libspec.queue) () : Iface.queue_factory =
  {
    Iface.q_name = name_of spec;
    make_queue =
      (fun m ~name ->
        let t = create spec m ~name in
        {
          Iface.q_kind = name_of spec;
          q_graph = t.graph;
          enq = (fun v -> insert t ~opname:"enq" v);
          deq = (fun () -> remove t ~opname:"deq");
        });
  }

let stack ?(spec = Libspec.stack) () : Iface.stack_factory =
  {
    Iface.s_name = name_of spec;
    make_stack =
      (fun m ~name ->
        let t = create spec m ~name in
        {
          Iface.s_kind = name_of spec;
          s_graph = t.graph;
          push = (fun v -> insert t ~opname:"push" v);
          pop = (fun () -> remove t ~opname:"pop");
          try_push =
            (fun v ->
              let* () = insert t ~opname:"try_push" v in
              Prog.return (Value.Int 1));
          try_pop = (fun () -> remove t ~opname:"try_pop");
        });
  }
