open Compass_rmc

(** The typed decision trace — the one substrate every exploration engine
    shares.  A decision script used to be a bare [int array] that
    {!Explore}, {!Dpor}, the fuzzer, the shrinker, and the replay CLI
    each reinterpreted by position; now each entry records {e what} was
    decided ({!kind}), the width of the choice, the source site when the
    program labelled one, and — for read-like decisions — the
    reads-from provenance of the message the choice selected.  The
    provenance is what makes data-DPOR possible: two executions whose
    read decisions resolve to the same rf edges are the same ORC11
    execution graph no matter how the scheduler interleaved them. *)

type kind =
  | Sched of int  (** which thread ran; the tid, [-1] while unresolved *)
  | Read of Loc.t  (** which message a load returned *)
  | Await of Loc.t  (** which satisfying message an await consumed *)
  | Cas of Loc.t  (** which satisfying message an RMW read *)
  | Ts of Loc.t  (** which timestamp gap a write took ([`Gap] policy) *)
  | Opaque  (** unknown origin (deserialized v1 scripts, raw ints) *)

type rf = { rf_ts : Timestamp.t; rf_wtid : int (** -1 = initialisation *) }

type t = {
  choice : int;  (** the alternative taken (< arity when arity known) *)
  arity : int;  (** alternatives at this point; 0 = unknown (external) *)
  mutable kind : kind;
  mutable rf : rf option;  (** provenance of the message read, if any *)
  mutable site : string option;
}

type trace = t array

val make : ?kind:kind -> ?site:string -> choice:int -> arity:int -> unit -> t

val opaque : int -> t
(** a bare choice with no typing ([arity = 0]) *)

val of_ints : int array -> trace
(** lift a raw v1 script; every entry {!Opaque} *)

val choices : trace -> int array
(** the underlying int script (always valid to feed back to replay) *)

val arities : trace -> int array

val resolve : t -> int -> t
(** a fresh decision at the same point with another alternative taken:
    kind and site survive, provenance is dropped (it described the old
    choice) *)

val bumped : t -> t
(** [resolve d (d.choice + 1)] *)

val zeroed : t -> t
(** [resolve d 0] *)

val set_rf : t -> ts:Timestamp.t -> wtid:int -> unit

val equal : t -> t -> bool
val equal_trace : trace -> trace -> bool

val strip_trailing_zeros : trace -> trace
(** choice 0 is the past-the-end replay default, so trailing zeros are
    redundant in any script *)

val measure : trace -> int * int
(** (length, choice sum) — the shrinker's lexicographic measure *)

val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> t -> unit

val pp_trace : Format.formatter -> trace -> unit
(** numbered one-per-line rendering with site labels and rf provenance
    (the [replay --trace] view) *)

val to_line : trace -> string
(** versioned text form: ["v2" token…] with locations as {!Loc.key} ints
    (site labels are not serialized — replay re-derives them) *)

val of_line : string -> trace option
(** parse {!to_line} output {e or} a legacy v1 line of space-separated
    choice ints (lifted via {!of_ints}); [None] on malformed input *)

val to_json : t -> Compass_util.Jsonout.t
val trace_to_json : trace -> Compass_util.Jsonout.t
