(* Source-DPOR with wakeup sequences (Abdulla, Aronis, Jonsson, Sagonas,
   "Optimal dynamic partial order reduction").

   The exploration is organised as a tree of *tasks*.  A task is a
   decision-script prefix that must be replayed verbatim, together with
   the sleep sets to install at the branch points along it and an
   optional wakeup sequence steering the free suffix.  Running a task
   yields one execution; its scheduling observations create *nodes* (one
   per multi-alternative scheduling choice), its data observations spawn
   sibling tasks for the untaken read/timestamp alternatives (DPOR
   reduces over scheduling only — data nondeterminism is enumerated
   exhaustively, exactly as in the sleep-set and unreduced modes), and a
   race analysis of its step log ({!Deps.races}) inserts backtrack tasks
   at the nodes where a reversible race can be scheduled the other way.

   Per node we keep the runnable threads with their pending footprints,
   the set of threads scheduled there so far — explored or queued: the
   node's *source set* — and per explored branch the sleep set a task
   taking that branch must install: the branches scheduled before it.
   That is the classic sleep-set discipline keyed to the DPOR tree
   instead of left-to-right DFS order; the machine re-arms it on every
   replay (installs are positional), filters it as dependent steps wake
   sleepers, and kills with [Pruned] any execution that schedules a
   sleeping thread.

   Race integration follows the source-DPOR rule.  For a reversible race
   (i, j) with branch node [n] at step [i]:

     v        = notdep(i) · j   (the steps after i not trace-ordered
                                 behind i, then j itself)
     I(v)     = threads whose first step in v has no happens-before
                predecessor inside v (all enabled at n)

   If some thread of I(v) is already in n's source set the reversal is
   covered; otherwise we queue a branch for a member of I(v) that is not
   sleeping at n — preferring v's own first thread, in which case the
   rest of v rides along as the wakeup sequence so the new execution
   drives straight to the reversed race instead of rediscovering it.

   Everything here is pure bookkeeping over ints and footprints: the
   module knows nothing about {!Machine} (the {!Explore} driver feeds it
   observations and step logs), which keeps the dependency order
   machine → deps → dpor → explore acyclic. *)

type fp = Deps.footprint

type node = {
  n_pos : int;  (** oracle decision position of this scheduling choice *)
  n_step : int;  (** index of the machine step this choice schedules *)
  n_tids : int array;  (** runnable tids; choice [c] runs [n_tids.(c)] *)
  n_fps : fp array;  (** pending footprint of each runnable thread *)
  n_sleep : (int * fp) list;
      (** sleep set inherited at this node — path-determined, so recording
          it once at node creation is exact *)
  mutable n_sched : int list;
      (** source set: tids scheduled here (explored or queued), in
          insertion order *)
  mutable n_installs : (int * (int * fp) list) list;
      (** per branch choice, the sleep entries a task taking that branch
          installs: the branches scheduled before it.  Fixed at branch
          creation, so every task through the same (node, branch) shares
          checkpoint-consistent sleep state. *)
}

type task = {
  t_script : Decision.trace;  (** decision prefix to replay verbatim *)
  t_installs : (int * (int * fp) list) list;
      (** decision position -> sleep entries, ascending; applied by the
          driver's oracle when the replay reaches each position *)
  t_path : (int * node) list;
      (** (step, node) for every branch node along the prefix, ascending *)
  t_wakeup : int list;
      (** wakeup sequence: tids to prefer at scheduling choices past the
          branch point, abandoned on first divergence *)
  t_branch_step : int;
      (** step index of the branch node; races wholly before it were
          analysed by ancestor tasks *)
}

let root_task =
  {
    t_script = [||];
    t_installs = [];
    t_path = [];
    t_wakeup = [];
    t_branch_step = 0;
  }

let script t = t.t_script
let installs t = t.t_installs
let wakeup t = t.t_wakeup
let branch_step t = t.t_branch_step

(* Observations recorded by the driver's oracle at decision positions past
   the task's scripted prefix. *)
type obs =
  | Osched of {
      o_pos : int;
      o_step : int;
      o_tids : int array;
      o_fps : fp array;
      o_sleep : (int * fp) list;
      o_taken : int;
    }
  | Odata of { o_pos : int; o_step : int; o_arity : int; o_taken : int }

type t = {
  lock : Mutex.t;
  mutable frontier : task list;  (** stack, deepest branch at the head *)
  mutable in_flight : int;
  rf : bool;
      (** reads-from–aware mode: skip atomic write/read race reversals —
          with the later read's rf edge fixed, both orders reach the same
          machine state, and every rf edge the reversal could realise is
          already enumerated as a data sibling of the read choice.
          Reversals involving a non-atomic access are kept: the machine's
          na-race fault detection is order-sensitive. *)
}

let create ?(rf = false) () =
  { lock = Mutex.create (); frontier = [ root_task ]; in_flight = 0; rf }

(* Pop the deepest pending task.  [None] does not mean the search is over:
   running tasks may still push children — poll {!drained}. *)
let claim st =
  Mutex.lock st.lock;
  let r =
    match st.frontier with
    | [] -> None
    | t :: rest ->
        st.frontier <- rest;
        st.in_flight <- st.in_flight + 1;
        Some t
  in
  Mutex.unlock st.lock;
  r

(* Give up a claimed task without integrating (budget hit / stop flag). *)
let abandon st =
  Mutex.lock st.lock;
  st.in_flight <- st.in_flight - 1;
  Mutex.unlock st.lock

let drained st =
  Mutex.lock st.lock;
  let r = st.frontier = [] && st.in_flight = 0 in
  Mutex.unlock st.lock;
  r

let array_index a x =
  let n = Array.length a in
  let rec go i = if i >= n then None else if a.(i) = x then Some i else go (i + 1) in
  go 0

(* Process one finished (or pruned) execution of [task]: create nodes from
   its fresh scheduling observations, spawn sibling tasks for untaken data
   alternatives, and integrate the reversible races of its step log.
   [ds] is the full decision trace, [obs] the observations in execution
   order, [steps] the (tid, footprint) step log oldest first.  Returns
   the number of tasks spawned (for progress accounting). *)
let integrate st task ~ds ~obs ~steps =
  Mutex.lock st.lock;
  let slen = Array.length task.t_script in
  let fresh_nodes =
    List.filter_map
      (function
        | Osched o when o.o_pos >= slen ->
            Some
              ( o.o_step,
                {
                  n_pos = o.o_pos;
                  n_step = o.o_step;
                  n_tids = o.o_tids;
                  n_fps = o.o_fps;
                  n_sleep = o.o_sleep;
                  n_sched = [ o.o_tids.(o.o_taken) ];
                  n_installs = [];
                } )
        | _ -> None)
      obs
  in
  let path = task.t_path @ fresh_nodes in
  let children = ref [] in
  (* Install list for a child branching at decision position [pos]: every
     non-empty branch install along its prefix, read back from the fixed
     per-(node, branch) records. *)
  let installs_below pos =
    List.filter_map
      (fun (_, nd) ->
        if nd.n_pos >= pos then None
        else
          match List.assoc_opt ds.(nd.n_pos).Decision.choice nd.n_installs with
          | Some (_ :: _ as inst) -> Some (nd.n_pos, inst)
          | _ -> None)
      path
  in
  let path_below pos = List.filter (fun (_, nd) -> nd.n_pos < pos) path in
  (* Data siblings: every untaken alternative of a fresh data choice owns
     a disjoint subtree; enumerate them all (DPOR does not reduce data
     nondeterminism). *)
  List.iter
    (function
      | Odata o when o.o_pos >= slen && o.o_arity > 1 ->
          let pre_installs = installs_below o.o_pos in
          let pre_path = path_below o.o_pos in
          for c = o.o_arity - 1 downto 0 do
            if c <> o.o_taken then
              children :=
                {
                  t_script =
                    Array.append (Array.sub ds 0 o.o_pos)
                      [| Decision.resolve ds.(o.o_pos) c |];
                  t_installs = pre_installs;
                  t_path = pre_path;
                  t_wakeup = [];
                  t_branch_step = o.o_step;
                }
                :: !children
          done
      | _ -> ())
    obs;
  (* Queue branch [u] (choice [c]) at node [nd], sleeping every branch
     scheduled before it. *)
  let spawn_branch nd c u ~wakeup =
    let install =
      List.map
        (fun w ->
          match array_index nd.n_tids w with
          | Some i -> (w, nd.n_fps.(i))
          | None -> (w, Deps.FGlobal) (* unreachable: w was runnable *))
        nd.n_sched
    in
    nd.n_installs <- (c, install) :: nd.n_installs;
    nd.n_sched <- nd.n_sched @ [ u ];
    let branch =
      let d = Decision.resolve ds.(nd.n_pos) c in
      d.Decision.kind <- Decision.Sched nd.n_tids.(c);
      d
    in
    children :=
      {
        t_script = Array.append (Array.sub ds 0 nd.n_pos) [| branch |];
        t_installs = installs_below nd.n_pos @ [ (nd.n_pos, install) ];
        t_path = path_below nd.n_pos @ [ (nd.n_step, nd) ];
        t_wakeup = wakeup;
        t_branch_step = nd.n_step;
      }
      :: !children
  in
  let sarr = Deps.analyze_steps steps in
  (* In rf mode, atomic-write-before-atomic-read races need no reversal:
     the read's alternatives (its data siblings) already cover every
     message the reversed order could make it read, and with the rf edge
     fixed both orders commute to the same state. *)
  let keep_race (i, j) =
    (not st.rf)
    ||
    match (Deps.step_fp sarr i, Deps.step_fp sarr j) with
    | Deps.FWrite _, Deps.FRead _ -> false
    | _ -> true
  in
  List.iter
    (fun (i, j) ->
      match List.assoc_opt i path with
      | None ->
          (* Step i was forced: its thread was the only one runnable, so
             [notdep(i) · j] — whose first step is enabled there and is
             never of i's thread — cannot be scheduled: the race is not
             reversible at this state. *)
          ()
      | Some nd ->
          let v = ref [ j ] in
          for k = j - 1 downto i + 1 do
            if not (Deps.hb sarr i k) then v := k :: !v
          done;
          let v = !v in
          let initials =
            let rec go acc seen = function
              | [] -> List.rev acc
              | k :: rest ->
                  let blocked = List.exists (fun l -> Deps.hb sarr l k) seen in
                  let t = Deps.step_tid sarr k in
                  let acc =
                    if blocked || List.mem t acc then acc else t :: acc
                  in
                  go acc (k :: seen) rest
            in
            go [] [] v
          in
          if List.exists (fun t -> List.mem t nd.n_sched) initials then
            (* some initial already in the source set: covered *)
            ()
          else begin
            let sleeping = List.map fst nd.n_sleep in
            match
              List.filter (fun t -> not (List.mem t sleeping)) initials
            with
            | [] -> () (* every initial asleep: covered at an ancestor *)
            | candidates -> (
                let first_tid = Deps.step_tid sarr (List.hd v) in
                let u =
                  if List.mem first_tid candidates then first_tid
                  else List.hd candidates
                in
                match array_index nd.n_tids u with
                | Some c ->
                    let wakeup =
                      if u = first_tid then
                        List.map (Deps.step_tid sarr) (List.tl v)
                      else []
                    in
                    spawn_branch nd c u ~wakeup
                | None ->
                    (* Defensive fallback — an initial should always be
                       runnable at the node; if the approximation ever
                       disagrees, fall back to opening every unexplored,
                       non-sleeping branch (complete, merely
                       conservative). *)
                    Array.iteri
                      (fun c w ->
                        if
                          (not (List.mem w nd.n_sched))
                          && not (List.mem w sleeping)
                        then spawn_branch nd c w ~wakeup:[])
                      nd.n_tids)
          end)
    (List.filter keep_race (Deps.races ~from:task.t_branch_step sarr));
  (* Deepest branch at the head of the stack: ascending push, LIFO pop.
     At jobs = 1 this explores the DPOR tree depth-first, which keeps the
     incremental engine's divergence suffixes short. *)
  let sorted =
    List.stable_sort (fun a b -> compare a.t_branch_step b.t_branch_step)
      !children
  in
  List.iter (fun c -> st.frontier <- c :: st.frontier) sorted;
  st.in_flight <- st.in_flight - 1;
  let spawned = List.length sorted in
  Mutex.unlock st.lock;
  spawned
