open Compass_rmc

(* Dependency relations, shared by the race detector and the DPOR engine.

   Two views of the same idea live here:

   - {!sweep}: the RC11-synchronisation vector-clock sweep over recorded
     access logs.  This used to be private to the analysis-side race
     detector ({!Compass_analysis.Races}); it moved here unchanged so the
     DPOR layer and the race detector share one happens-before engine.

   - {!analyze_steps}: the Mazurkiewicz-trace order over a machine-step
     sequence, built from the same footprint independence relation the
     sleep sets use.  This is the dependency relation source-DPOR needs:
     steps of the same thread are ordered by program order, steps of
     different threads only by chains of dependent (non-commuting)
     steps, and a {e reversible race} is a dependent pair with no
     intermediate path — exactly the pairs whose reversal reaches a new
     Mazurkiewicz trace. *)

(* -- footprints --------------------------------------------------------------

   The footprint of a thread's next operation, abstracted to what matters
   for commutation with another thread's step: the location it reads or
   writes, or [FLocal] (no shared effect: yields, thread ids, non-SC
   fences, which only move the thread's own view) or [FGlobal]
   (conservatively dependent on everything: allocation renumbers blocks,
   SC fences join the machine-global SC view).

   Two steps are independent when running them in either order yields the
   same machine state up to event-id renaming: accesses to different
   locations commute, and two reads of the same location commute because
   reads never change a history.

   Non-atomic accesses get their own variants ([FReadNa], [FWriteNa]).
   Independence is identical to their atomic counterparts — commutation
   only cares about the location and read/write polarity — but the
   reads-from–aware reduction must be able to tell them apart: the
   machine's na-race fault detection is order-sensitive, so only
   atomic-write/atomic-read race reversals may be pruned as
   rf-equivalent. *)

type footprint =
  | FRead of Loc.t
  | FWrite of Loc.t
  | FReadNa of Loc.t
  | FWriteNa of Loc.t
  | FLocal
  | FGlobal

let independent a b =
  match (a, b) with
  | FGlobal, _ | _, FGlobal -> false
  | FLocal, _ | _, FLocal -> true
  | (FRead _ | FReadNa _), (FRead _ | FReadNa _) -> true
  | ( (FRead la | FWrite la | FReadNa la | FWriteNa la),
      (FRead lb | FWrite lb | FReadNa lb | FWriteNa lb) ) ->
      not (Loc.equal la lb)

let pp_footprint ppf = function
  | FRead l -> Format.fprintf ppf "R%a" Loc.pp l
  | FWrite l -> Format.fprintf ppf "W%a" Loc.pp l
  | FReadNa l -> Format.fprintf ppf "Rna%a" Loc.pp l
  | FWriteNa l -> Format.fprintf ppf "Wna%a" Loc.pp l
  | FLocal -> Format.pp_print_string ppf "local"
  | FGlobal -> Format.pp_print_string ppf "global"

(* -- the RC11-synchronisation sweep over access logs -------------------------

   Recomputes happens-before with a vector-clock forward sweep — a
   genuinely different algorithm from {!Rc11}'s explicit transitive
   closure over (po ∪ asw ∪ sw) edge lists.  The sweep models RC11
   synchronisation (not the machine's operational views — rf alone never
   creates hb):

   - each access bumps its thread's own clock component and snapshots
     the thread clock; hb(a, b) iff b's snapshot includes a's stamp;
   - a write publishes a clock on its message: its own snapshot if it
     releases, the clock captured at the last release fence if it is
     atomic but relaxed, and bottom if non-atomic.  Updates additionally
     inherit the clock of the message they read — rf chains among
     updates, i.e. release sequences;
   - an acquire read joins the message clock into the thread clock; a
     relaxed atomic read parks it in a pending-acquire clock that the
     next acquire fence joins in; non-atomic reads never synchronise;
   - a release fence snapshots the thread clock for later relaxed
     writes; an SC fence additionally joins and updates one global
     clock, totally ordering SC fences;
   - fork/join edges (the asw of {!Rc11}): a spawned thread's first
     access joins the setup pseudo-thread's clock, and a post-join
     setup access joins every thread's clock.  (Setup runs solo,
     strictly before spawn and after join, so the eager join is exact.) *)

let mode_geq_rel = function Mode.Rel | Mode.AcqRel -> true | _ -> false
let mode_geq_acq = function Mode.Acq | Mode.AcqRel -> true | _ -> false
let mode_atomic = function Mode.Na -> false | _ -> true

let rel_fence = function
  | Mode.F_rel | Mode.F_acqrel | Mode.F_sc -> true
  | _ -> false

let acq_fence = function
  | Mode.F_acq | Mode.F_acqrel | Mode.F_sc -> true
  | _ -> false

(* The sweep.  Returns [knows] : aid -> aid -> bool, the hb predicate
   (irreflexive use only — callers never ask [knows a a]). *)
let sweep items =
  let n = Array.length items in
  Array.iteri (fun i a -> assert (Access.aid a = i)) items;
  let max_tid = Array.fold_left (fun m a -> max m (Access.tid a)) (-1) items in
  let nt = max_tid + 2 in
  (* thread slots: index 0 is the setup pseudo-thread (tid -1) *)
  let ix tid = tid + 1 in
  let bottom () = Array.make nt 0 in
  let join dst src =
    Array.iteri (fun i v -> if v > dst.(i) then dst.(i) <- v) src
  in
  let cur = Array.init nt (fun _ -> bottom ()) in
  let dacq = Array.init nt (fun _ -> bottom ()) in
  let frel = Array.init nt (fun _ -> bottom ()) in
  let sc = ref (bottom ()) in
  let seq = Array.make nt 0 in
  let started = Array.make nt false in
  let msg : (Loc.t * Timestamp.t, int array) Hashtbl.t = Hashtbl.create 64 in
  let snap = Array.make n [||] in
  let stamp = Array.make n (0, 0) in
  Array.iter
    (fun a ->
      let tid = Access.tid a in
      let t = ix tid in
      (* fork: a spawned thread's first access inherits the setup clock. *)
      if not started.(t) then begin
        started.(t) <- true;
        if tid >= 0 then join cur.(t) cur.(ix (-1))
      end;
      (* join: a post-join setup access inherits every thread's clock. *)
      if tid = -1 then
        Array.iteri (fun u c -> if u <> t then join cur.(t) c) cur;
      match a with
      | Access.Access r ->
          let rclock =
            match r.read_ts with
            | Some ts -> Hashtbl.find_opt msg (r.loc, ts)
            | None -> None
          in
          (match rclock with
          | Some c when mode_geq_acq r.mode -> join cur.(t) c
          | Some c when mode_atomic r.mode -> join dacq.(t) c
          | _ -> () (* non-atomic reads never synchronise *));
          seq.(t) <- seq.(t) + 1;
          cur.(t).(t) <- seq.(t);
          stamp.(r.aid) <- (t, seq.(t));
          snap.(r.aid) <- Array.copy cur.(t);
          (match r.write_ts with
          | Some wts ->
              let published = bottom () in
              if mode_geq_rel r.mode then join published snap.(r.aid)
              else if mode_atomic r.mode then join published frel.(t);
              (* updates inherit the read message's clock: release
                 sequences as rf chains among updates *)
              (match (r.kind, rclock) with
              | Access.Update, Some c -> join published c
              | _ -> ());
              Hashtbl.replace msg (r.loc, wts) published
          | None -> ())
      | Access.Fence f ->
          if acq_fence f.fence then begin
            join cur.(t) dacq.(t);
            dacq.(t) <- bottom ()
          end;
          if f.fence = Mode.F_sc then join cur.(t) !sc;
          seq.(t) <- seq.(t) + 1;
          cur.(t).(t) <- seq.(t);
          stamp.(f.aid) <- (t, seq.(t));
          snap.(f.aid) <- Array.copy cur.(t);
          if rel_fence f.fence then frel.(t) <- Array.copy cur.(t);
          if f.fence = Mode.F_sc then sc := Array.copy cur.(t))
    items;
  fun a b ->
    let ta, sa = stamp.(a) in
    Array.length snap.(b) > 0 && snap.(b).(ta) >= sa

(* -- Mazurkiewicz order over machine-step sequences --------------------------

   Input: the (tid, footprint) sequence of the concurrent phase's machine
   steps, in execution order.  Two steps are dependent when they belong
   to the same thread (program order) or their footprints do not commute.
   The trace order is the transitive closure of dependency restricted to
   execution order; it is computed with one vector clock per step, so
   [hb] is an O(1) stamp comparison afterwards. *)

type steps = {
  s_tid : int array;
  s_fp : footprint array;
  s_clock : int array array;  (** clock of step i, indexed by tid *)
  s_seq : int array;  (** per-step own-thread sequence number *)
}

let dependent_steps s i j =
  s.s_tid.(i) = s.s_tid.(j) || not (independent s.s_fp.(i) s.s_fp.(j))

let analyze_steps steps =
  let n = Array.length steps in
  let s_tid = Array.map fst steps and s_fp = Array.map snd steps in
  let max_tid = Array.fold_left max 0 s_tid in
  let nt = max_tid + 1 in
  let s_clock = Array.make n [||] in
  let s_seq = Array.make n 0 in
  let cur_seq = Array.make nt 0 in
  let s = { s_tid; s_fp; s_clock; s_seq } in
  for j = 0 to n - 1 do
    let c = Array.make nt 0 in
    for i = 0 to j - 1 do
      if dependent_steps s i j then
        Array.iteri (fun t v -> if v > c.(t) then c.(t) <- v) s_clock.(i)
    done;
    let t = s_tid.(j) in
    cur_seq.(t) <- cur_seq.(t) + 1;
    c.(t) <- cur_seq.(t);
    s_clock.(j) <- c;
    s_seq.(j) <- cur_seq.(t)
  done;
  s

(* hb i j: step i is trace-ordered before step j (i < j in execution
   order; the predicate is about the partial order, not mere position). *)
let hb s i j = i < j && s.s_clock.(j).(s.s_tid.(i)) >= s.s_seq.(i)

(* A reversible race: a dependent pair of different-thread steps with no
   intermediate trace path — reversing it reaches a different
   Mazurkiewicz trace, so DPOR must schedule an alternative at the
   earlier step's pre-state.  [from] bounds the later step: only races
   whose {e later} member is at index >= [from] are reported (the
   explorer has already handled races wholly inside a replayed
   prefix). *)
let races ?(from = 0) s =
  let n = Array.length s.s_tid in
  let out = ref [] in
  for j = max 1 from to n - 1 do
    for i = 0 to j - 1 do
      if
        s.s_tid.(i) <> s.s_tid.(j)
        && (not (independent s.s_fp.(i) s.s_fp.(j)))
        && hb s i j
      then begin
        (* direct only: no w strictly between with i ->hb w ->hb j *)
        let direct = ref true in
        let w = ref (i + 1) in
        while !direct && !w < j do
          if hb s i !w && hb s !w j then direct := false;
          incr w
        done;
        if !direct then out := (i, j) :: !out
      end
    done
  done;
  List.rev !out

let step_tid s i = s.s_tid.(i)
let step_fp s i = s.s_fp.(i)
let n_steps s = Array.length s.s_tid
