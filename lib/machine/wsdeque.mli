(** Native Chase-Lev work-stealing deque — the host-side analogue of the
    modelled deque in lib/dstruct/chaselev.ml, used by {!Explore.pdfs} to
    distribute exploration prefixes across domains.

    One domain owns each deque and is the only one allowed to {!push} and
    {!pop} (bottom, LIFO); any other domain may {!steal} (top, FIFO).
    All shared state is sequentially-consistent [Atomic]s, so the classic
    take/steal race on the last element is resolved exactly as in the
    paper — by the CAS on [top]. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** owner only: push at the bottom *)

val pop : 'a t -> 'a option
(** owner only: pop at the bottom (the most recently pushed task);
    [None] when empty *)

val steal : 'a t -> 'a option
(** any domain: steal from the top (the oldest task).  [None] means
    empty {e or} a lost race with a concurrent [steal]/[pop] — callers
    treat both as "nothing obtained" and rescan. *)
