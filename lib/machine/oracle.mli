(** Decision oracles.

    All nondeterminism in an execution — which thread steps, which message
    a load reads, which timestamp a write takes — is a sequence of bounded
    integer choices.  An oracle answers them and logs each as a typed
    {!Decision.t}, which is exactly what the stateless DFS explorer needs
    to enumerate the decision tree and what the replay tooling renders. *)

type kind =
  | Sched of int array
      (** a scheduling decision; element [i] is the tid that choice [i]
          would run ([Array.length tids = arity]) *)
  | Data  (** load / timestamp / await / RMW-candidate choice *)

type t

val choose : ?kind:kind -> ?dkind:Decision.kind -> ?site:string -> t -> arity:int -> int
(** pick a choice in [0 .. arity-1] and log it; [kind] (default [Data])
    tells schedule-directed oracles what the choice means — enumeration
    and replay oracles ignore it.  [dkind] (default {!Decision.Opaque})
    and [site] type the logged decision for trace consumers; they never
    influence the pick. *)

val annotate_sched : t -> int -> unit
(** retype the newest logged decision as [Sched tid] — called by the
    machine right after a scheduling pick resolves to a thread *)

val annotate_rf : t -> ts:Compass_rmc.Timestamp.t -> wtid:int -> unit
(** attach reads-from provenance to the newest logged decision — called
    by the machine right after a read-like pick resolves to a message *)

val decisions : t -> int list
(** choices taken so far, earliest first *)

val arities : t -> int list

val trace : t -> Decision.trace
(** the typed decision trace, earliest first, in one traversal — the
    log entries themselves, so post-hoc annotation stays visible *)

val vectors : t -> int array * int array
(** (decisions, arities) as int arrays, earliest first — the cheap
    projection for consumers that only need the ints *)

val fresh_latest : unit -> t
(** deterministic: always the last alternative (for loads: the mo-maximal
    message) — the right default for solo/setup execution.  A fresh value
    per call: oracles are mutable and must never be shared between
    executions (or domains). *)

val random : seed:int -> t

val make : ?sched_aware:bool -> (pos:int -> arity:int -> kind:kind -> int) -> t
(** an oracle answering with a custom pick function — the hook the
    schedule-fuzzing subsystem's PCT and prefix-replay oracles plug into;
    the pick must return a value in [0 .. arity-1].  [sched_aware]
    (default true) declares whether the pick inspects [Sched] kinds; pass
    [false] for picks that ignore [kind] so the machine can skip building
    the runnable-tid array at every scheduling choice *)

val script : Decision.trace -> t
(** replay the given trace's choices, falling back to choice 0 past the
    end; the DFS explorer's workhorse.  Strict — internally-generated
    scripts are valid by construction, so a mismatch means divergence.
    @raise Invalid_argument if a scripted choice exceeds the arity *)

val script_clamped : Decision.trace -> t
(** tolerant replay: out-of-range choices clamp to the last alternative
    and positions past the end take choice 0 — never raises; each clamp
    is counted in {!clamp_count}.  The logged decision vector of a
    clamped run is a valid script for {!script}.  The uniform semantics
    for every script that crosses a tool boundary: CLI replay, corpus
    entries, shrink candidates, witness JSON. *)

val clamp_count : t -> int
(** out-of-range choices clamped so far (0 for non-clamping oracles) *)

val position : t -> int
(** number of choices taken so far (the current decision depth) *)

val sched_aware : t -> bool
(** whether this oracle's pick inspects {!kind} — enumeration and replay
    oracles don't, letting the machine pass [Data] for scheduling choices
    without materialising the tid array *)

val raw_log : t -> Decision.t list
(** the decision log, newest first; a persistent value, so capturing it
    in a checkpoint is O(1) *)

val resume_script : pos:int -> log:Decision.t list -> Decision.trace -> t
(** resume a scripted replay from decision depth [pos], seeding the log
    with the {!raw_log} captured at a machine checkpoint; the script must
    agree with [log] on the first [pos] positions *)

val resume_make :
  ?sched_aware:bool ->
  pos:int ->
  log:Decision.t list ->
  (pos:int -> arity:int -> kind:kind -> int) ->
  t
(** {!make} resuming from decision depth [pos] with a checkpoint-captured
    {!raw_log} — how the DPOR driver's custom oracle rides the
    incremental engine's restores *)
