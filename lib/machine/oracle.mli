(** Decision oracles.

    All nondeterminism in an execution — which thread steps, which message
    a load reads, which timestamp a write takes — is a sequence of bounded
    integer choices.  An oracle answers them and logs each branching
    factor, which is exactly what the stateless DFS explorer needs to
    enumerate the decision tree. *)

type kind =
  | Sched of int array
      (** a scheduling decision; element [i] is the tid that choice [i]
          would run ([Array.length tids = arity]) *)
  | Data  (** load / timestamp / await / RMW-candidate choice *)

type t

val choose : ?kind:kind -> t -> arity:int -> int
(** pick a choice in [0 .. arity-1] and log it; [kind] (default [Data])
    tells schedule-directed oracles what the choice means — enumeration
    and replay oracles ignore it *)

val decisions : t -> int list
(** choices taken so far, earliest first *)

val arities : t -> int list

val vectors : t -> int array * int array
(** (decisions, arities) as arrays, earliest first, in one traversal —
    what the DFS bumper consumes once per execution *)

val fresh_latest : unit -> t
(** deterministic: always the last alternative (for loads: the mo-maximal
    message) — the right default for solo/setup execution.  A fresh value
    per call: oracles are mutable and must never be shared between
    executions (or domains). *)

val random : seed:int -> t

val make : ?sched_aware:bool -> (pos:int -> arity:int -> kind:kind -> int) -> t
(** an oracle answering with a custom pick function — the hook the
    schedule-fuzzing subsystem's PCT and prefix-replay oracles plug into;
    the pick must return a value in [0 .. arity-1].  [sched_aware]
    (default true) declares whether the pick inspects [Sched] kinds; pass
    [false] for picks that ignore [kind] so the machine can skip building
    the runnable-tid array at every scheduling choice *)

val script : int array -> t
(** replay the given choices, falling back to choice 0 past the end; the
    DFS explorer's workhorse.
    @raise Invalid_argument if a scripted choice exceeds the arity *)

val script_clamped : int array -> t
(** tolerant replay: out-of-range choices clamp to the last alternative
    and positions past the end take choice 0 — never raises.  The logged
    decision vector of a clamped run is a valid script for {!script}.
    What the shrinker and the corpus mutator replay candidates with. *)

val position : t -> int
(** number of choices taken so far (the current decision depth) *)

val sched_aware : t -> bool
(** whether this oracle's pick inspects {!kind} — enumeration and replay
    oracles don't, letting the machine pass [Data] for scheduling choices
    without materialising the tid array *)

val raw_log : t -> (int * int) list
(** the (arity, choice) log, newest first; a persistent value, so
    capturing it in a checkpoint is O(1) *)

val resume_script : pos:int -> log:(int * int) list -> int array -> t
(** resume a scripted replay from decision depth [pos], seeding the log
    with the {!raw_log} captured at a machine checkpoint; the script must
    agree with [log] on the first [pos] positions *)

val resume_make :
  ?sched_aware:bool ->
  pos:int ->
  log:(int * int) list ->
  (pos:int -> arity:int -> kind:kind -> int) ->
  t
(** {!make} resuming from decision depth [pos] with a checkpoint-captured
    {!raw_log} — how the DPOR driver's custom oracle rides the
    incremental engine's restores *)
