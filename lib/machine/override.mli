open Compass_rmc

(** Mode overrides: site label -> weakened access mode / fence replacement,
    applied by the machine just before executing an instruction.

    The synchronization audit ({!Compass_analysis}) runs weakened mutants
    of a data structure by executing the *original* program under an
    override, so a mutant counterexample replays exactly with
    [compass replay --weaken site=mode]. *)

type fence_action = Weaken_fence of Mode.fence | Drop_fence

type t = {
  accesses : (string * Mode.access) list;  (** site -> replacement mode *)
  fences : (string * fence_action) list;  (** site -> replacement / drop *)
}

val empty : t
val is_empty : t -> bool

val weaken_access : string -> Mode.access -> t -> t
val weaken_fence : string -> Mode.fence -> t -> t
val drop_fence : string -> t -> t

val access : t -> site:string option -> Mode.access -> Mode.access
(** the mode to execute an access labeled [site] with *)

val fence : t -> site:string option -> Mode.fence -> Mode.fence option
(** the fence to execute, or [None] if it is dropped (becomes a yield) *)

val access_of_string : string -> Mode.access option
val fence_of_string : string -> Mode.fence option

val add_spec : t -> string -> (t, string) result
(** parse one ["site=mode"] spec, where mode is an access mode
    ([na|rlx|acq|rel|acq_rel]), a fence mode
    ([fence_acq|fence_rel|fence_acq_rel|fence_sc]), or ["drop"] *)

val of_specs : string list -> (t, string) result
val spec_strings : t -> string list
val pp : Format.formatter -> t -> unit
