(** Exploration drivers: stateless model checking.

    Executions replay from decision scripts — typed {!Decision} traces
    carrying the choice taken, the branching factor, and (for reads) the
    reads-from provenance.  The DFS driver enumerates the decision tree
    exhaustively: after each run it takes the logged trace, finds the
    deepest position with an untried alternative, and restarts with the
    bumped prefix.  The parallel driver {!pdfs} splits that tree into
    disjoint decision-prefix tasks balanced across OCaml 5 domains by
    work stealing; [~reduce] selects a partial-order reduction: sleep
    sets in the scheduler (see {!Machine.run}), source-DPOR with wakeup
    sequences ({!Dpor}), or reads-from–aware source-DPOR ([RDporRf]: one
    counted execution per distinct rf⊕mo class).  The random driver
    samples seeded executions.  Where the paper {e proves} a property of
    all executions, we {e enumerate} them (up to the configured bounds)
    and check it on each. *)

type verdict =
  | Pass
  | Violation of string
  | Discard of string
      (** blocked / bounded / irrelevant execution — counted separately *)

type scenario = {
  name : string;
  build : Machine.t -> (Machine.outcome -> verdict);
      (** runs once per execution on a fresh machine: allocate, spawn
          threads, return the judge.  Shared statistics live in closures
          created before the scenario.  Under {!pdfs} the closure runs on
          several domains concurrently: the machine is domain-local, and
          the report fields are merged from domain-local tallies, but any
          counters the scenario itself mutates are updated racily —
          treat them as approximate when [jobs > 1]. *)
}

type failure = { message : string; trace : Decision.trace }

val failure_script : failure -> int array
(** the failure's decision vector — [Decision.choices] of its trace *)

type report = {
  name : string;
  executions : int;
  distinct : int;
      (** distinct decision vectors among the executions — equals
          [executions] under DFS (which enumerates); under random sampling
          the gap is the sampling redundancy *)
  passed : int;
  discarded : int;
  bounded : int;
  blocked : int;
  pruned : int;
      (** subtrees skipped by sleep-set reduction (0 unless
          [~reduce:RSleep]) *)
  dpor_pruned : int;
      (** executions killed as redundant under [~reduce:RDpor] — sleeping
          threads scheduled by a stale branch.  An optimal DPOR search
          reports 0; nonzero counts measure how far the source-set
          approximation is from optimality on this scenario. *)
  rf_pruned : int;
      (** completed runs discarded under [~reduce:RDporRf] because their
          reads-from class ({!rf_class_key}) was already counted.  Like
          [pruned]/[dpor_pruned], never counted in [executions] and never
          judged — on an exhaustive search [executions] equals the number
          of distinct rf⊕mo classes. *)
  violations : failure list;  (** first few, oldest first *)
  complete : bool;  (** DFS exhausted the tree within the budget *)
}

val pp_report : Format.formatter -> report -> unit

val ok : report -> bool
(** no violations *)

val report_to_json : report -> Compass_util.Jsonout.t
(** the report as a JSON object, for [--json] flags and CI artifacts.
    Kept violations carry both the legacy ["script"] int array and the
    typed ["trace"] (with per-decision kind and rf provenance). *)

val run_one :
  config:Machine.config ->
  scenario ->
  Decision.trace ->
  Machine.t * Oracle.t * Machine.outcome * verdict
(** one execution from a decision script, {e strict}: an out-of-range
    choice raises [Invalid_argument] (exposed for driver-internal replay,
    where scripts are machine-generated and a mismatch is a bug) *)

(** The result of one {e clamped} external replay: what the CLI, the
    fuzzer's confirmation pass and the witness detail recovery use. *)
type replayed = {
  r_machine : Machine.t;
  r_outcome : Machine.outcome;
  r_verdict : verdict;
  r_trace : Decision.trace;
      (** the typed decision log of what actually ran — a valid strict
          script, with kinds, sites and rf provenance filled in *)
  r_clamped : int;  (** out-of-range choices clamped during the replay *)
}

val replay : config:Machine.config -> scenario -> Decision.trace -> replayed
(** re-run one script with tracing on, for counterexample display.
    Uniformly {e clamped}: scripts crossing a tool boundary (saved
    corpora, witness files, hand-edited CLI input) may be stale, so
    out-of-range choices take the last alternative and are counted in
    [r_clamped] instead of raising. *)

val rf_class_key : outcome:Machine.outcome -> Access.t list -> string
(** canonical key of an execution's reads-from class: the outcome tag
    plus, per thread in program order, each access's kind/location/mode
    and the {e mo ranks} of the timestamps it read and wrote (ranks, not
    raw timestamps, so the key is placement-independent under the [`Gap]
    policy).  Two interleavings get equal keys iff they realise the same
    execution graph (same per-thread accesses, rf edges and mo order).
    Requires the access log ([record_accesses]). *)

val default_stride : int
(** decisions between checkpoints in the incremental engine (1: checkpoint
    every decision — maximal reuse; memory is bounded by the decision
    depth either way, so larger strides only trade replayed suffix steps
    for fewer snapshots) *)

val dfs :
  ?max_execs:int ->
  ?reduce:Machine.reduction ->
  ?incremental:bool ->
  ?stride:int ->
  ?until_violation:bool ->
  ?config:Machine.config ->
  scenario ->
  report
(** exhaustive sequential DFS.  [reduce] selects a partial-order
    reduction (default {!Machine.RNone}): [RSleep] turns on sleep sets —
    redundant interleavings of independent steps are pruned (counted in
    {!report.pruned}), never losing a violation up to graph isomorphism;
    [RDpor] switches to source-DPOR with wakeup sequences ({!Dpor}),
    which explores strictly fewer executions than sleep sets (near one
    per Mazurkiewicz trace) with the same verdicts and kept violations,
    counting its few redundant kills in {!report.dpor_pruned}; [RDporRf]
    stacks the reads-from reduction on top — atomic write/read race
    reversals are not queued (every rf edge a reversal could realise is
    already a read-choice alternative) and completed runs are
    deduplicated by {!rf_class_key}, so [executions] counts exactly the
    distinct rf⊕mo classes, with the same verdicts and kept violations.

    [incremental] (default on) explores with the checkpoint/restore
    engine: one machine built once, a stack of snapshots keyed by decision
    depth, and only the decision suffix past the deepest valid checkpoint
    re-executed per run — instead of replaying every execution from the
    root.  Reports are field-for-field identical either way (the replay
    path, [~incremental:false], is kept as the differential-testing
    oracle); [stride] sets the checkpoint spacing in decisions.

    [until_violation] (default off) stops the search at the first kept
    violation — what the mode-necessity audit uses to witness a broken
    mutant without paying for the rest of the tree.  A search cut short
    this way reports [complete = false]. *)

val pdfs :
  ?jobs:int ->
  ?max_execs:int ->
  ?reduce:Machine.reduction ->
  ?incremental:bool ->
  ?stride:int ->
  ?until_violation:bool ->
  ?config:Machine.config ->
  scenario ->
  report
(** parallel DFS by work stealing: each of the [jobs] domains (default
    [Domain.recommended_domain_count ()]) owns a Chase-Lev deque
    ({!Wsdeque}) of decision-prefix tasks that partition the tree.  After
    each run a worker pushes one child task per untried alternative,
    shallow-first: its own LIFO pops continue with the deepest divergence
    (sequential [dfs] order), idle workers steal the shallowest — the
    largest — pending subtree.  Per-domain statistics are merged into one
    report, with kept violations re-sorted into script order.  On a
    complete search, [pdfs ~jobs] and {!dfs} agree on every report field;
    kept violations are the lexicographically first scripts, so they
    agree on those too whenever at most 16 violations exist.  (When the
    budget truncates the search, the two drivers explore the same
    {e number} of executions but not necessarily the same subset.)  Each
    worker keeps one incremental engine (machine + checkpoint stack) for
    its whole lifetime, and claims execution budget in batches rather
    than one atomic per run.

    Under [~reduce:RDpor] (and [RDporRf]) the workers share a {!Dpor}
    frontier instead of Chase-Lev deques: stolen prefix tasks carry their
    wakeup-sequence and sleep-install obligations, so parallel DPOR keeps
    the same verdicts and violation sets as the sequential search (the
    execution {e count} may differ run to run — racing workers can both
    explore a branch the other would have put to sleep; under [RDporRf]
    the shared rf-class table makes the counted executions — the distinct
    classes — schedule-independent again on complete searches). *)

val random : ?execs:int -> ?seed:int -> ?config:Machine.config -> scenario -> report

type mode = Dfs of { max_execs : int } | Random of { execs : int; seed : int }

val run :
  ?config:Machine.config ->
  ?jobs:int ->
  ?reduce:Machine.reduction ->
  ?incremental:bool ->
  ?stride:int ->
  ?until_violation:bool ->
  mode:mode ->
  scenario ->
  report
(** dispatch on [mode]; [jobs > 1] routes [Dfs] to {!pdfs}, and [reduce] /
    [incremental] / [stride] apply to either DFS driver (random sampling
    ignores them) *)
