open Compass_rmc
open Compass_event

(* The interleaving machine.

   One machine instance executes one scenario once: a solo setup phase
   (allocation and initialisation, deterministic), a concurrent phase
   (threads interleaved step by step, all nondeterminism resolved by an
   oracle), and an optional finale (runs after all threads have returned,
   with the join of their views — the parent thread after joining its
   children).

   Because ORC11 forbids load-buffering (po ∪ rf acyclic), an interleaving-
   based operational semantics with stale-read choices is adequate: the
   weak behaviours come from reading old messages and from view-limited
   message views, never from cycles in po ∪ rf. *)

type config = {
  max_steps : int;  (** per concurrent phase; exceeding yields [Bounded] *)
  policy : Memory.policy;
  backend : Memory.backend;
      (** history representation; [`Flat] is the fast path, [`Map] the
          differential oracle ([`Gap] policy forces [`Map]) *)
  record_trace : bool;
  record_accesses : bool;
      (** record memory accesses for the axiomatic differential check
          ({!Rc11}) *)
  overrides : Override.t;
      (** mode overrides applied by site label just before an instruction
          executes — how the synchronization audit runs weakened mutants
          of unmodified programs *)
}

let default_config =
  {
    max_steps = 10_000;
    policy = `Append;
    backend = `Flat;
    record_trace = false;
    record_accesses = false;
    overrides = Override.empty;
  }

type thread = {
  tid : int;
  mutable prog : Value.t Prog.t;
  mutable tv : Tview.t;
  mutable finished : Value.t option;
}

type outcome =
  | Finished of Value.t array  (** all threads returned; their results *)
  | Fault of string  (** data race, uninitialised read, or program error *)
  | Blocked of string  (** deadlock on [await], or a spin loop out of fuel *)
  | Bounded  (** step budget exhausted *)
  | Pruned
      (** sleep-set reduction: the scheduled thread was asleep, so every
          execution below this point is a commuted copy of one already
          explored *)

let pp_outcome ppf = function
  | Finished vs ->
      Format.fprintf ppf "finished(%a)"
        (Format.pp_print_seq
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Value.pp)
        (Array.to_seq vs)
  | Fault s -> Format.fprintf ppf "fault: %s" s
  | Blocked s -> Format.fprintf ppf "blocked: %s" s
  | Bounded -> Format.pp_print_string ppf "bounded"
  | Pruned -> Format.pp_print_string ppf "pruned"

(* Footprints (for partial-order reduction) are {!Deps.footprint},
   re-exported so existing users keep constructing them unqualified; the
   reduction machinery itself lives further down. *)
type footprint = Deps.footprint =
  | FRead of Loc.t
  | FWrite of Loc.t
  | FReadNa of Loc.t
  | FWriteNa of Loc.t
  | FLocal
  | FGlobal

(* How the scheduler prunes commuted interleavings.  [RSleep] is the
   self-contained Godefroid sleep-set discipline reconstructed during
   replay; [RDpor] is driven from outside: the machine only records the
   (tid, footprint) step log, honours driver-installed sleep sets, and
   wakes sleepers on dependent steps — the backtrack/wakeup-tree logic
   lives in {!Dpor}/{!Explore}.  [RDporRf] is [RDpor] to the machine; the
   driver additionally prunes race reversals and executions whose
   reads-from class was already explored. *)
type reduction = RNone | RSleep | RDpor | RDporRf

(* Snapshot types are declared here because the machine keeps its last
   snapshot as a cache; the snapshot/restore machinery lives further
   down. *)
type thread_snap = {
  ts_prog : Value.t Prog.t;
  ts_tv : Tview.t;
  ts_finished : Value.t option;
}

type snapshot = {
  s_mem : Memory.snapshot;
  s_reg : Registry.snapshot;
  s_setup_tv : Tview.t;
  s_threads : thread_snap array;
  s_step : int;
  s_trace : Trace.entry list;
  s_sc_view : View.t;
  s_sc_lview : Lview.t;
  s_accesses : Access.t list;
  s_next_aid : int;
  s_sleep : (int * footprint) list;
  s_dpor_log : (int * footprint) list;
  s_run_deadline : int;
}

type t = {
  config : config;
  mem : Memory.t;
  reg : Registry.t;
  mutable setup_tv : Tview.t;
  mutable threads : thread array;
  mutable step : int;
  mutable trace : Trace.entry list;  (** newest first *)
  mutable sc_view : View.t;
      (** global SC-fence view: SC fences join with it both ways, which
          totally orders them — the standard operational account of C11 SC
          fences (e.g. in the promising semantics) *)
  mutable sc_lview : Lview.t;
  mutable accesses : Access.t list;  (** newest first; see [record_accesses] *)
  mutable next_aid : int;
  mutable sleep : (int * footprint) list;
      (** sleep set along the current path (tid, pending footprint); lives
          in the machine so checkpoints can capture and resume it *)
  mutable dpor_log : (int * footprint) list;
      (** under [RDpor]: (tid, footprint) of every concurrent-phase step
          taken along the current path, newest first — the input to the
          Mazurkiewicz dependency analysis; checkpointed like [sleep] *)
  mutable run_deadline : int;
      (** absolute step bound of the current concurrent phase; kept across
          checkpoint restores so a resumed run bounds exactly like a
          from-the-root replay *)
  mutable snap_cache : snapshot option;
      (** last snapshot taken or restored; {!snapshot} reuses its
          per-thread records when a thread hasn't changed *)
  mutable spawned : Value.t Prog.t list;
      (** the initial thread programs as passed to {!spawn}, before any
          execution consumed them — the static analyzer's entry point
          into a built scenario.  Not snapshotted: set once per build. *)
}

let create ?(config = default_config) () =
  {
    config;
    mem = Memory.create ~policy:config.policy ~backend:config.backend ();
    reg = Registry.create ();
    setup_tv = Tview.init;
    threads = [||];
    step = 0;
    trace = [];
    sc_view = View.bot;
    sc_lview = Lview.empty;
    accesses = [];
    next_aid = 0;
    sleep = [];
    dpor_log = [];
    run_deadline = max_int;
    snap_cache = None;
    spawned = [];
  }

let registry m = m.reg
let memory m = m.mem
let trace m = List.rev m.trace
let steps m = m.step
let new_graph m ~name = Registry.new_graph m.reg ~name

let record m ~tid descr =
  if m.config.record_trace then
    m.trace <- { Trace.step = m.step; tid; descr = descr () } :: m.trace

let accesses m = List.rev m.accesses

let record_access m ~tid ?site ~loc ~kind ~mode ~read_ts ~write_ts () =
  if m.config.record_accesses then begin
    let aid = m.next_aid in
    m.next_aid <- aid + 1;
    m.accesses <-
      Access.Access { aid; tid; loc; kind; mode; read_ts; write_ts; site }
      :: m.accesses
  end

let record_fence m ~tid ?site fence =
  if m.config.record_accesses then begin
    let aid = m.next_aid in
    m.next_aid <- aid + 1;
    m.accesses <- Access.Fence { aid; tid; fence; site } :: m.accesses
  end

(* Choices with a single alternative consume no oracle decision: this keeps
   DFS decision scripts short.  [dkind]/[site] type the logged decision;
   post-pick annotation (scheduled tid, rf provenance) must therefore be
   guarded with [arity > 1] by callers — an arity-1 choice logs nothing. *)
let choose ?kind ?dkind ?site oracle ~arity =
  if arity = 1 then 0 else Oracle.choose ?kind ?dkind ?site oracle ~arity

(* -- commits ---------------------------------------------------------------- *)

(* Perform the commit specs produced by an operation's commit function, in
   the same atomic step as the operation.  [written] is the message the
   operation wrote, if any; absorbed events are patched into its logical
   view so that future readers of the commit write observe them. *)
let run_commits m (th : thread) ~(written : Msg.t ref option)
    (specs : Commit.spec list) =
  let sub = ref 0 in
  List.iter
    (fun (spec : Commit.spec) ->
      let g = Registry.graph m.reg spec.obj in
      List.iter
        (fun (es : Commit.ev_spec) ->
          let view = match es.view with Some v -> v | None -> th.tv.Tview.cur in
          let logview =
            match es.lview with
            | Some lv -> Lview.add es.eid lv
            | None -> Lview.add es.eid th.tv.Tview.cur_l
          in
          let data =
            {
              Event.id = es.eid;
              obj = spec.obj;
              typ = es.typ;
              tid = Option.value es.tid ~default:th.tid;
              view;
              logview;
              cix = (m.step, !sub);
            }
          in
          incr sub;
          Graph.commit g data;
          if m.config.record_trace then
            record m ~tid:th.tid (fun () ->
              Format.asprintf "commit %a to %s" Event.pp data (Graph.name g));
          if es.absorb then begin
            th.tv <- Tview.observe_event th.tv es.eid;
            match written with
            | Some msg ->
                msg := { !msg with Msg.lview = Lview.add es.eid !msg.Msg.lview }
            | None -> ()
          end)
        spec.events;
      List.iter (fun (a, b) -> Graph.add_so g ~from:a ~into:b) spec.so)
    specs

(* -- operation semantics ----------------------------------------------------- *)

let mk_res ?(success = true) ~value ~view ~lview () =
  { Prog.value; view; lview; success }

(* Execute the write half of a store/RMW: pick a timestamp, compute the
   message views, insert the message.  Returns the inserted message ref and
   the per-message result. *)
let do_write m (th : thread) oracle ?site ~l ~value ~mode ?rmw_read () =
  let above = View.get th.tv.Tview.cur l in
  let ts =
    match rmw_read with
    | Some (msg : Msg.t) ->
        (* RMW atomicity: the new write is immediately mo-after the read. *)
        let next = Memory.max_ts m.mem l + 1 in
        assert (msg.Msg.ts = Memory.max_ts m.mem l);
        next
    | None ->
        if mode = Mode.Na then begin
          (try
             ignore
               (Memory.na_check m.mem l ~tv:th.tv ~tid:th.tid ~kind:"na-write")
           with Memory.Error (Memory.Race _) as e ->
             (* Record the faulting access (no timestamp: it never landed)
                so the race pair is visible to the analysis-side race
                detector even though the machine aborts the execution. *)
             record_access m ~tid:th.tid ?site ~loc:l ~kind:Access.Store
               ~mode:Mode.Na ~read_ts:None ~write_ts:None ();
             raise e);
          Memory.max_ts m.mem l + 1
        end
        else if m.config.policy = `Append then
          (* Single candidate, no oracle decision and no choice list. *)
          Memory.append_ts m.mem l ~above
        else begin
          let choices = Memory.write_ts_choices m.mem l ~above in
          List.nth choices
            (choose ~dkind:(Decision.Ts l) ?site oracle
               ~arity:(List.length choices))
        end
  in
  let tv', view, lview = Tview.write th.tv ~l ~ts ~mode ?rmw_read () in
  th.tv <- tv';
  let msg = Msg.make ~loc:l ~ts ~value ~view ~lview ~wtid:th.tid in
  Memory.add_msg m.mem msg;
  (* Fetch the ref just inserted so commits can patch it: a new mo-maximal
     write is [latest]; only a [`Gap] midpoint needs the search. *)
  let mref =
    if Memory.max_ts m.mem l = ts then Memory.latest m.mem l
    else Option.get (History.find_opt (Memory.hist m.mem l) ts)
  in
  mref

(* Read choice for an atomic load: count, decide, index — no choice list
   is ever built (on the flat backend the readable set is an index
   range). *)
let pick_read m (th : thread) oracle ?site l =
  let from = View.get th.tv.Tview.cur l in
  let arity = Memory.read_arity m.mem l ~from in
  assert (arity > 0);
  let mref =
    Memory.read_nth m.mem l ~from
      (choose ~dkind:(Decision.Read l) ?site oracle ~arity)
  in
  if arity > 1 then
    Oracle.annotate_rf oracle ~ts:!mref.Msg.ts ~wtid:!mref.Msg.wtid;
  mref

(* Execute one operation of thread [th].  Returns the continuation's next
   program.  Raises [Memory.Error] on races and whatever the program raises
   on logic errors. *)
let exec_op m (th : thread) oracle (op : Prog.op) (k : Prog.res -> Value.t Prog.t)
    : Value.t Prog.t =
  let site = op.Prog.site in
  match op.Prog.instr with
  | Prog.Load (l, mode, commit) ->
      let mode = Override.access m.config.overrides ~site mode in
      let mref =
        if mode = Mode.Na then (
          try Memory.na_read m.mem l ~tv:th.tv ~tid:th.tid
          with Memory.Error (Memory.Race _) as e ->
            (* Record the faulting read (no timestamp: it never landed) so
               the race pair is visible to the analysis-side race detector
               even though the machine aborts the execution. *)
            record_access m ~tid:th.tid ?site ~loc:l ~kind:Access.Load
              ~mode:Mode.Na ~read_ts:None ~write_ts:None ();
            raise e)
        else pick_read m th oracle ?site l
      in
      let msg = !mref in
      th.tv <- Tview.read th.tv msg mode;
      if m.config.record_trace then
        record m ~tid:th.tid (fun () ->
          Format.asprintf "load_%a %a -> %a" Mode.pp_access mode Loc.pp l
            Value.pp msg.Msg.value);
      record_access m ~tid:th.tid ?site ~loc:l ~kind:Access.Load ~mode
        ~read_ts:(Some msg.Msg.ts) ~write_ts:None ();
      let res =
        mk_res ~value:msg.Msg.value ~view:msg.Msg.view ~lview:msg.Msg.lview ()
      in
      (match commit with
      | Some f -> run_commits m th ~written:None (f { value = msg.Msg.value; success = true })
      | None -> ());
      k res
  | Prog.Await (l, mode, pred, commit) ->
      let mode = Override.access m.config.overrides ~site mode in
      let from = View.get th.tv.Tview.cur l in
      let sat (mref : Msg.t ref) = pred !mref.Msg.value in
      let arity = Memory.sat_arity m.mem l ~from ~sat in
      (* The scheduler only runs an await when it is enabled. *)
      assert (arity > 0);
      let mref =
        Memory.sat_nth m.mem l ~from ~sat
          (choose ~dkind:(Decision.Await l) ?site oracle ~arity)
      in
      if arity > 1 then
        Oracle.annotate_rf oracle ~ts:!mref.Msg.ts ~wtid:!mref.Msg.wtid;
      let msg = !mref in
      th.tv <- Tview.read th.tv msg mode;
      if m.config.record_trace then
        record m ~tid:th.tid (fun () ->
          Format.asprintf "await_%a %a -> %a" Mode.pp_access mode Loc.pp l
            Value.pp msg.Msg.value);
      record_access m ~tid:th.tid ?site ~loc:l ~kind:Access.Load ~mode
        ~read_ts:(Some msg.Msg.ts) ~write_ts:None ();
      let res =
        mk_res ~value:msg.Msg.value ~view:msg.Msg.view ~lview:msg.Msg.lview ()
      in
      (match commit with
      | Some f -> run_commits m th ~written:None (f { value = msg.Msg.value; success = true })
      | None -> ());
      k res
  | Prog.Store (l, v, mode, commit) ->
      let mode = Override.access m.config.overrides ~site mode in
      let mref = do_write m th oracle ?site ~l ~value:v ~mode () in
      if m.config.record_trace then
        record m ~tid:th.tid (fun () ->
          Format.asprintf "store_%a %a := %a" Mode.pp_access mode Loc.pp l
            Value.pp v);
      record_access m ~tid:th.tid ?site ~loc:l ~kind:Access.Store ~mode
        ~read_ts:None ~write_ts:(Some !mref.Msg.ts) ();
      (match commit with
      | Some f -> run_commits m th ~written:(Some mref) (f { value = v; success = true })
      | None -> ());
      k (mk_res ~value:v ~view:th.tv.Tview.cur ~lview:th.tv.Tview.cur_l ())
  | Prog.Rmw (l, kind, mode, commit) ->
      let mode = Override.access m.config.overrides ~site mode in
      (* Read-mode / write-mode split of the RMW access mode. *)
      let rmode =
        match mode with
        | Mode.AcqRel | Mode.Acq -> Mode.Acq
        | Mode.Rel | Mode.Rlx -> Mode.Rlx
        | Mode.Na -> invalid_arg "RMW cannot be non-atomic"
      in
      let wmode =
        match mode with
        | Mode.AcqRel | Mode.Rel -> Mode.Rel
        | Mode.Acq | Mode.Rlx -> Mode.Rlx
        | Mode.Na -> assert false
      in
      let from = View.get th.tv.Tview.cur l in
      let latest_ts = Memory.max_ts m.mem l in
      let mref =
        match kind with
        | Prog.Cas (expected, _) ->
            (* A strong CAS must succeed whenever it reads [expected]; a
               successful RMW must read the mo-maximal message.  Hence: the
               latest message is always a candidate; an older message is a
               candidate (a genuine failure) only if its value differs. *)
            let sat (mref : Msg.t ref) =
              !mref.Msg.ts = latest_ts
              || not (Value.equal !mref.Msg.value expected)
            in
            let arity = Memory.sat_arity m.mem l ~from ~sat in
            assert (arity > 0);
            let mref =
              Memory.sat_nth m.mem l ~from ~sat
                (choose ~dkind:(Decision.Cas l) ?site oracle ~arity)
            in
            if arity > 1 then
              Oracle.annotate_rf oracle ~ts:!mref.Msg.ts ~wtid:!mref.Msg.wtid;
            mref
        | Prog.Faa _ | Prog.Xchg _ ->
            (* Unconditional RMWs always succeed: only the latest, which
               is readable because views never run ahead of mo. *)
            Memory.latest m.mem l
      in
      let msg = !mref in
      let success, new_value =
        match kind with
        | Prog.Cas (expected, desired) ->
            if msg.Msg.ts = latest_ts && Value.equal msg.Msg.value expected then
              (true, Some desired)
            else (false, None)
        | Prog.Faa d -> (true, Some (Value.Int (Value.to_int_exn msg.Msg.value + d)))
        | Prog.Xchg v -> (true, Some v)
      in
      th.tv <- Tview.read th.tv msg rmode;
      let written =
        match new_value with
        | Some v -> Some (do_write m th oracle ~l ~value:v ~mode:wmode ~rmw_read:msg ())
        | None -> None
      in
      if m.config.record_trace then
        record m ~tid:th.tid (fun () ->
          Format.asprintf "rmw_%a %a: read %a%s" Mode.pp_access mode Loc.pp l
            Value.pp msg.Msg.value
            (match new_value with
            | Some v -> Format.asprintf ", wrote %a" Value.pp v
            | None -> " (failed)"));
      (match written with
      | Some w ->
          record_access m ~tid:th.tid ?site ~loc:l ~kind:Access.Update ~mode
            ~read_ts:(Some msg.Msg.ts) ~write_ts:(Some !w.Msg.ts) ()
      | None ->
          (* A failed CAS is just a read with the read-part mode. *)
          record_access m ~tid:th.tid ?site ~loc:l ~kind:Access.Load ~mode:rmode
            ~read_ts:(Some msg.Msg.ts) ~write_ts:None ());
      (match commit with
      | Some f -> run_commits m th ~written (f { value = msg.Msg.value; success })
      | None -> ());
      k (mk_res ~success ~value:msg.Msg.value ~view:msg.Msg.view ~lview:msg.Msg.lview ())
  | Prog.Fence f0 -> (
      match Override.fence m.config.overrides ~site f0 with
      | None ->
          (* Dropped by an override: the op degenerates to a yield (still
             one machine step, so decision scripts keep their shape). *)
          if m.config.record_trace then
            record m ~tid:th.tid (fun () ->
              Format.asprintf "%a (dropped)" Mode.pp_fence f0);
          k (mk_res ~value:Value.Unit ~view:th.tv.Tview.cur
               ~lview:th.tv.Tview.cur_l ())
      | Some f ->
      th.tv <- Tview.fence th.tv f;
      (if f = Mode.F_sc then begin
         (* Join with the global SC view both ways: the interleaving order
            of SC fences becomes their total (sc) order. *)
         let tv = th.tv in
         let cur = View.join tv.Tview.cur m.sc_view in
         let cur_l = Lview.join tv.Tview.cur_l m.sc_lview in
         m.sc_view <- cur;
         m.sc_lview <- cur_l;
         th.tv <-
           {
             Tview.cur;
             acq = View.join tv.Tview.acq cur;
             rel = cur;
             cur_l;
             acq_l = Lview.join tv.Tview.acq_l cur_l;
             rel_l = cur_l;
           }
       end);
      if m.config.record_trace then
        record m ~tid:th.tid (fun () -> Format.asprintf "%a" Mode.pp_fence f);
      record_fence m ~tid:th.tid ?site f;
      k (mk_res ~value:Value.Unit ~view:th.tv.Tview.cur ~lview:th.tv.Tview.cur_l ()))
  | Prog.Alloc { name; size; init } ->
      let loc = Memory.alloc m.mem ~name ~size ~init_value:init in
      (* The allocating thread observes the initialisation writes. *)
      let tv = ref th.tv in
      for off = 0 to size - 1 do
        let cell = Loc.shift loc off in
        tv :=
          {
            !tv with
            Tview.cur = View.extend !tv.Tview.cur cell Timestamp.init;
            acq = View.extend !tv.Tview.acq cell Timestamp.init;
          };
        (* The initialisation writes, so reads-from-init has a source. *)
        record_access m ~tid:th.tid ?site ~loc:cell ~kind:Access.Store
          ~mode:Mode.Na ~read_ts:None ~write_ts:(Some Timestamp.init) ()
      done;
      th.tv <- !tv;
      if m.config.record_trace then
        record m ~tid:th.tid (fun () ->
          Format.asprintf "alloc %s[%d] = %a" name size Loc.pp loc);
      k (mk_res ~value:(Value.Ptr loc) ~view:th.tv.Tview.cur ~lview:th.tv.Tview.cur_l ())
  | Prog.Yield ->
      if m.config.record_trace then
        record m ~tid:th.tid (fun () -> "yield");
      k (mk_res ~value:Value.Unit ~view:th.tv.Tview.cur ~lview:th.tv.Tview.cur_l ())
  | Prog.Tid ->
      k (mk_res ~value:(Value.Int th.tid) ~view:th.tv.Tview.cur
           ~lview:th.tv.Tview.cur_l ())

(* Resolve non-step constructors: [Reserve] consumes no machine step (ids
   commute with everything), and [Ret] finishes the thread. *)
let rec settle m (th : thread) =
  match th.prog with
  | Prog.Reserve k ->
      th.prog <- k (Registry.reserve m.reg);
      settle m th
  | Prog.Ret v -> if th.finished = None then th.finished <- Some v
  | Prog.Op _ -> ()

(* Is the thread's next operation enabled? *)
let enabled m (th : thread) =
  match th.prog with
  | Prog.Op ({ Prog.instr = Prog.Await (l, _, pred, _); _ }, _) ->
      let from = View.get th.tv.Tview.cur l in
      Memory.sat_exists m.mem l ~from ~sat:(fun mref -> pred !mref.Msg.value)
  | _ -> true

let step_thread m (th : thread) oracle =
  match th.prog with
  | Prog.Op (op, k) ->
      m.step <- m.step + 1;
      th.prog <- exec_op m th oracle op k;
      settle m th
  | Prog.Ret _ | Prog.Reserve _ -> assert false

(* -- phases ------------------------------------------------------------------ *)

(* Run [prog] to completion deterministically on a fresh pseudo-thread that
   shares the setup view.  Used for setup (before [spawn]) and finale
   (after [run]). *)
let solo ?(tid = -1) m prog =
  let th = { tid; prog; tv = m.setup_tv; finished = None } in
  let oracle = Oracle.fresh_latest () in
  settle m th;
  let fuel = ref 1_000_000 in
  while th.finished = None do
    decr fuel;
    if !fuel <= 0 then failwith "Machine.solo: divergence";
    if not (enabled m th) then failwith "Machine.solo: blocked await";
    step_thread m th oracle
  done;
  m.setup_tv <- th.tv;
  Option.get th.finished

(* Convenience: allocate during setup. *)
let alloc m ?init ~name size =
  solo m (Prog.map (Prog.alloc ?init ~name size) (fun l -> Value.Ptr l))
  |> Value.to_loc_exn

let spawn m progs =
  m.spawned <- progs;
  m.threads <-
    Array.of_list
      (List.mapi
         (fun i prog -> { tid = i; prog; tv = m.setup_tv; finished = None })
         progs)

let spawned_progs m = m.spawned

let thread_view m tid = m.threads.(tid).tv

(* -- independence, for sleep-set reduction ----------------------------------

   The footprint of a thread's next operation, abstracted to what matters
   for commutation with another thread's step: the location it reads or
   writes, or [FLocal] (no shared effect: yields, thread ids, non-SC
   fences, which only move the thread's own view) or [FGlobal]
   (conservatively dependent on everything: allocation renumbers blocks,
   SC fences join the machine-global SC view).

   Two steps are independent when running them in either order yields the
   same machine state up to event-id renaming: accesses to different
   locations commute, and two reads of the same location commute because
   reads never change a history.  Commit annotations riding on the
   operations add events to per-object graphs; swapping two independent
   steps permutes reservation order and commit indices, which yields an
   isomorphic graph — and every checked predicate (consistency conditions,
   spec styles) is invariant under that isomorphism. *)

(* The footprint classifies the *effective* access: mode overrides (the
   audit's weakened mutants) are applied first, so a load weakened to
   non-atomic is [FReadNa] here exactly as it will execute, and a dropped
   SC fence no longer counts as [FGlobal]. *)
let footprint m (th : thread) =
  match th.prog with
  | Prog.Op (op, _) -> (
      let site = op.Prog.site in
      match op.Prog.instr with
      | Prog.Load (l, mode, _) | Prog.Await (l, mode, _, _) ->
          if Override.access m.config.overrides ~site mode = Mode.Na then
            FReadNa l
          else FRead l
      | Prog.Store (l, _, mode, _) ->
          if Override.access m.config.overrides ~site mode = Mode.Na then
            FWriteNa l
          else FWrite l
      | Prog.Rmw (l, _, _, _) -> FWrite l
      | Prog.Fence f -> (
          match Override.fence m.config.overrides ~site f with
          | Some Mode.F_sc -> FGlobal
          | Some _ | None -> FLocal)
      | Prog.Alloc _ -> FGlobal
      | Prog.Yield | Prog.Tid -> FLocal)
  | Prog.Ret _ | Prog.Reserve _ -> FLocal

let independent = Deps.independent

(* DPOR driver hooks: the per-path step log (oldest first), the current
   sleep set, driver installation of a sleep set at a branch point, and
   the pending footprint of a thread by tid — what the driver snapshots
   at each scheduling observation. *)
let dpor_steps m = Array.of_list (List.rev m.dpor_log)
let dpor_depth m = List.length m.dpor_log
let get_sleep m = m.sleep
let set_sleep m s = m.sleep <- s

let pending_footprint m tid =
  let th = Array.find_opt (fun th -> th.tid = tid) m.threads in
  match th with Some th -> footprint m th | None -> FLocal

(* Interleave the spawned threads until they all finish (or fault / block /
   exhaust the budget).

   With [reduce] on, the scheduler maintains a sleep set (Godefroid-style)
   along the replayed path: after the DFS has explored scheduling thread
   [t] at a node, [t] goes to sleep in the later sibling branches of that
   node and stays asleep while the steps actually taken are independent of
   [t]'s pending step.  Scheduling a sleeping thread would only commute
   independent steps of an already-explored subtree, so the run stops with
   [Pruned] — the decision is still logged, which is what lets the DFS
   bump past the redundant subtree.  Which threads have been explored at
   the current node is exactly the set of scheduling alternatives below
   the chosen one, so the sleep set can be reconstructed during replay
   with no tree state. *)
(* Initialise the concurrent-phase deadline and sleep set without running:
   what [run ~resume:false] does on entry.  The incremental explorer primes
   the machine once after build, snapshots it as the root checkpoint, and
   then always runs with [~resume:true] — so a root restored after some
   forced steps keeps the deadline a from-the-root replay would have. *)
let prime m =
  m.run_deadline <- m.step + m.config.max_steps;
  m.sleep <- [];
  m.dpor_log <- []

let run ?(reduction = RNone) ?(resume = false) ?on_step ?on_sched m oracle =
  let n = Array.length m.threads in
  if n = 0 then invalid_arg "Machine.run: no threads (call spawn)";
  if not resume then prime m;
  (* Scratch for the per-step runnable scan: indices into [m.threads],
     filled in array order.  One small array per [run], none per step. *)
  let runnable = Array.make n 0 in
  let rec loop () =
    let threads = m.threads in
    let n_run = ref 0 and unfinished = ref false in
    for i = 0 to n - 1 do
      let th = threads.(i) in
      settle m th;
      if th.finished = None then begin
        unfinished := true;
        if enabled m th then begin
          runnable.(!n_run) <- i;
          incr n_run
        end
      end
    done;
    if not !unfinished then
      Finished (Array.map (fun th -> Option.get th.finished) threads)
    else if !n_run = 0 then Blocked "deadlock: all unfinished threads await"
    else if m.step >= m.run_deadline then Bounded
    else begin
      let arity = !n_run in
      (* A scheduling *decision* (arity > 1) is about to be consumed and
         the machine is at a settled step boundary: the incremental
         explorer's last chance to checkpoint the state this decision
         branches from. *)
      if arity > 1 then (match on_sched with Some f -> f () | None -> ());
      let j =
        if arity = 1 then 0
        else if Oracle.sched_aware oracle then
          (* Tell schedule-directed oracles which threads this choice picks
             between (forced steps never reach the oracle, which is also
             what a priority scheduler would do with one runnable
             thread). *)
          let tids = Array.init arity (fun k -> threads.(runnable.(k)).tid) in
          Oracle.choose ~kind:(Oracle.Sched tids)
            ~dkind:(Decision.Sched (-1)) oracle ~arity
        else Oracle.choose ~dkind:(Decision.Sched (-1)) oracle ~arity
      in
      let th = threads.(runnable.(j)) in
      if arity > 1 then Oracle.annotate_sched oracle th.tid;
      if reduction <> RNone && List.mem_assq th.tid m.sleep then Pruned
      else begin
        (match reduction with
        | RNone -> ()
        | RSleep ->
            (* Earlier siblings fall asleep; survivors are the sleepers
               whose pending step is independent of the one now taken. *)
            let fp = footprint m th in
            let explored = ref [] in
            for k = j - 1 downto 0 do
              let u = threads.(runnable.(k)) in
              explored := (u.tid, footprint m u) :: !explored
            done;
            m.sleep <-
              List.filter
                (fun (_, fu) -> independent fu fp)
                (m.sleep @ !explored)
        | RDpor | RDporRf ->
            (* No sibling-order sleep here: the DPOR driver installs sleep
               sets at branch points (source sets, not left-to-right DFS
               order).  The machine still wakes sleepers on dependent
               steps and logs every step for the dependency analysis. *)
            let fp = footprint m th in
            m.sleep <- List.filter (fun (_, fu) -> independent fu fp) m.sleep;
            m.dpor_log <- (th.tid, fp) :: m.dpor_log);
        step_thread m th oracle;
        (match on_step with Some f -> f () | None -> ());
        loop ()
      end
    end
  in
  try loop () with
  | Memory.Error e -> Fault (Format.asprintf "%a" Memory.pp_error e)
  | Prog.Out_of_fuel what -> Blocked ("out of fuel: " ^ what)
  | Invalid_argument s | Failure s -> Fault ("program error: " ^ s)

(* -- snapshot / restore ------------------------------------------------------

   A machine snapshot is a value-copy of every mutable field: memory and
   registry delegate to their own snapshot layers (persistent maps, O(#locs
   + #graphs) pointers), thread records are copied field-wise (programs are
   free-monad values, immutable by construction), and the sleep set /
   deadline of a concurrent phase in flight ride along so a restored run
   can resume mid-phase with [run ~resume:true].

   Taken between machine steps, the shared message refs and event records
   behind the persistent maps are immutable (commit patching happens inside
   the step that creates a message), so sharing them is sound.  [restore]
   mutates the machine, its histories, graphs and thread records in place:
   every handle a scenario captured at build time stays valid.

   The snapshot and thread_snap types are declared next to {!t} (the
   machine caches its last snapshot).  A machine step changes at most one
   thread, so [snapshot] reuses the cached snapshot's per-thread records
   whenever a thread's fields are unchanged — physical equality, so a
   stale cache only costs allocations, never correctness. *)

let thread_snaps m =
  let fresh th =
    { ts_prog = th.prog; ts_tv = th.tv; ts_finished = th.finished }
  in
  match m.snap_cache with
  | Some p when Array.length p.s_threads = Array.length m.threads ->
      Array.mapi
        (fun i th ->
          let ts = p.s_threads.(i) in
          if
            ts.ts_prog == th.prog && ts.ts_tv == th.tv
            && ts.ts_finished == th.finished
          then ts
          else fresh th)
        m.threads
  | _ -> Array.map fresh m.threads

let snapshot m =
  let s =
    {
      s_mem = Memory.snapshot m.mem;
      s_reg = Registry.snapshot m.reg;
      s_setup_tv = m.setup_tv;
      s_threads = thread_snaps m;
      s_step = m.step;
      s_trace = m.trace;
      s_sc_view = m.sc_view;
      s_sc_lview = m.sc_lview;
      s_accesses = m.accesses;
      s_next_aid = m.next_aid;
      s_sleep = m.sleep;
      s_dpor_log = m.dpor_log;
      s_run_deadline = m.run_deadline;
    }
  in
  m.snap_cache <- Some s;
  s

let restore m s =
  Memory.restore m.mem s.s_mem;
  Registry.restore m.reg s.s_reg;
  m.setup_tv <- s.s_setup_tv;
  if Array.length m.threads = Array.length s.s_threads then
    Array.iteri
      (fun i ts ->
        let th = m.threads.(i) in
        th.prog <- ts.ts_prog;
        th.tv <- ts.ts_tv;
        th.finished <- ts.ts_finished)
      s.s_threads
  else
    m.threads <-
      Array.mapi
        (fun i ts ->
          { tid = i; prog = ts.ts_prog; tv = ts.ts_tv; finished = ts.ts_finished })
        s.s_threads;
  m.step <- s.s_step;
  m.trace <- s.s_trace;
  m.sc_view <- s.s_sc_view;
  m.sc_lview <- s.s_sc_lview;
  m.accesses <- s.s_accesses;
  m.next_aid <- s.s_next_aid;
  m.sleep <- s.s_sleep;
  m.dpor_log <- s.s_dpor_log;
  m.run_deadline <- s.s_run_deadline;
  m.snap_cache <- Some s

(* Join all thread views into the setup view (the parent joining children),
   so a finale prog can read results without racing. *)
let join_views m =
  Array.iter (fun th -> m.setup_tv <- Tview.join m.setup_tv th.tv) m.threads

let finale m prog =
  join_views m;
  solo m prog
