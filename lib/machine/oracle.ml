(* Decision oracles.

   All nondeterminism in an execution — which thread steps, which message a
   load reads, which timestamp a write takes — is resolved by a sequence of
   bounded integer choices.  An oracle answers those choices and logs each
   as a typed {!Decision.t}, which is exactly what the stateless DFS
   explorer needs to enumerate the decision tree and what the replay
   tooling renders for triage.

   Each choice carries a pick-facing [kind]: scheduling choices name the
   runnable threads they pick between, everything else (read message,
   write timestamp, await/RMW candidates) is [Data].  Enumeration and
   replay ignore kinds; schedule-directed oracles (the PCT fuzzer) key on
   them.  Orthogonally, the machine passes a [dkind] (and [site]) that
   types the logged decision — and annotates the entry post-pick with the
   scheduled tid or the reads-from provenance of the message selected. *)

type kind =
  | Sched of int array
      (** a scheduling decision; element [i] is the tid that choice [i]
          would run, so [Array.length tids = arity] *)
  | Data  (** load / timestamp / await / RMW-candidate choice *)

type t = {
  mutable pos : int;
  mutable log : Decision.t list;  (** newest first *)
  pick : pos:int -> arity:int -> kind:kind -> int;
  sched_aware : bool;
      (** whether [pick] inspects scheduling kinds; when false the machine
          skips building the runnable-tid array for [Sched] choices *)
  clamps : int ref;
      (** out-of-range script choices clamped so far (clamped oracles) *)
}

let choose ?(kind = Data) ?(dkind = Decision.Opaque) ?site o ~arity =
  if arity <= 0 then invalid_arg "Oracle.choose: empty choice";
  let pos = o.pos in
  o.pos <- pos + 1;
  let c = o.pick ~pos ~arity ~kind in
  assert (0 <= c && c < arity);
  o.log <- Decision.make ~kind:dkind ?site ~choice:c ~arity () :: o.log;
  c

(* Post-pick annotation of the newest decision.  The machine only learns
   the scheduled thread's tid / the message a read resolved to after the
   pick returns; arity-1 choices consume no decision, so the machine
   guards these with [arity > 1]. *)
let annotate_sched o tid =
  match o.log with d :: _ -> d.Decision.kind <- Decision.Sched tid | [] -> ()

let annotate_rf o ~ts ~wtid =
  match o.log with d :: _ -> Decision.set_rf d ~ts ~wtid | [] -> ()

(* Decisions taken so far, earliest first. *)
let decisions o = List.rev_map (fun d -> d.Decision.choice) o.log
let arities o = List.rev_map (fun d -> d.Decision.arity) o.log

(* The typed trace as an array, earliest first — one log traversal.  The
   records are the log entries themselves (not copies): later annotation
   through the oracle is visible, which is what trace consumers want. *)
let trace o =
  let n = o.pos in
  if n = 0 then [||]
  else begin
    let tr = Array.make n (Decision.opaque 0) in
    let rec fill i = function
      | [] -> ()
      | d :: tl ->
          tr.(i) <- d;
          fill (i - 1) tl
    in
    fill (n - 1) o.log;
    tr
  end

(* Both int vectors as arrays in one log traversal — kept as the cheap
   projection for consumers that only need the ints. *)
let vectors o =
  let n = o.pos in
  let ds = Array.make n 0 and ars = Array.make n 0 in
  let rec fill i = function
    | [] -> ()
    | d :: tl ->
        ds.(i) <- d.Decision.choice;
        ars.(i) <- d.Decision.arity;
        fill (i - 1) tl
  in
  fill (n - 1) o.log;
  (ds, ars)

let position o = o.pos
let sched_aware o = o.sched_aware

let clamp_count o = !(o.clamps)

(* Raw decision log, newest first — the persistent list itself, so
   checkpointing it is O(1). *)
let raw_log o = o.log

(* Custom pick function — how the fuzzing subsystem builds its PCT and
   prefix-replay oracles without this module knowing about them. *)
let make ?(sched_aware = true) pick =
  { pos = 0; log = []; pick; sched_aware; clamps = ref 0 }

(* Deterministic oracle: always the last alternative.  For loads the
   alternatives are in ascending timestamp order, so "last" reads the
   mo-maximal message — the right default for solo (setup) execution.
   Always a fresh value: a shared oracle would be mutable state leaking
   between executions (and between domains, under parallel exploration). *)
let fresh_latest () =
  {
    pos = 0;
    log = [];
    pick = (fun ~pos:_ ~arity ~kind:_ -> arity - 1);
    sched_aware = false;
    clamps = ref 0;
  }

(* Seeded pseudo-random oracle (deterministic per seed). *)
let random ~seed =
  let st = Random.State.make [| seed; 0x5eed |] in
  {
    pos = 0;
    log = [];
    pick = (fun ~pos:_ ~arity ~kind:_ -> Random.State.int st arity);
    sched_aware = false;
    clamps = ref 0;
  }

let script_pick (tr : Decision.trace) ~pos ~arity ~kind:_ =
  if pos < Array.length tr then (
    let c = tr.(pos).Decision.choice in
    if c >= arity then
      invalid_arg
        (Printf.sprintf "Oracle.script: choice %d/%d at %d" c arity pos);
    c)
  else 0

(* Replay [script] and fall back to choice 0 (the "first" alternative) past
   its end — the DFS explorer's workhorse.  Strict: an out-of-range choice
   raises, because internally-generated scripts are valid by construction
   and a mismatch means the engine diverged. *)
let script tr =
  { pos = 0; log = []; pick = script_pick tr; sched_aware = false; clamps = ref 0 }

(* Tolerant replay: out-of-range choices clamp to the last alternative
   instead of raising, and the clamp is counted ({!clamp_count}).  A
   shrinker or fuzzer mutating a valid script can push a later position
   past its (path-dependent) arity; clamping keeps every mutant runnable,
   and the run's *logged* decision vector is then a valid script for
   strict replay.  This is the uniform external-replay semantics: every
   script that crosses a tool boundary (CLI replay, corpus entries,
   shrink candidates, witness JSON) runs clamped-and-reported. *)
let script_clamped tr =
  let clamps = ref 0 in
  {
    pos = 0;
    log = [];
    pick =
      (fun ~pos ~arity ~kind:_ ->
        if pos < Array.length tr then begin
          let c = tr.(pos).Decision.choice in
          if c >= arity then begin
            incr clamps;
            arity - 1
          end
          else c
        end
        else 0);
    sched_aware = false;
    clamps;
  }

(* Resume a scripted replay from a machine checkpoint: the first [pos]
   choices were already taken on the checkpointed path, and their
   decisions are seeded from [log] so that {!trace} and {!vectors} still
   report the full vectors the DFS bumper needs.  [log] must be the
   {!raw_log} captured when the checkpoint was taken, and the checkpoint
   is only valid if [script] agrees with it on those [pos] positions (the
   explorer guarantees this by construction). *)
let resume_script ~pos ~log tr =
  assert (List.length log = pos);
  { pos; log; pick = script_pick tr; sched_aware = false; clamps = ref 0 }

(* Resume with a custom pick — what the DPOR driver plugs into the
   incremental engine: scripted positions replay the task prefix, fresh
   positions consult the driver's scheduling policy. *)
let resume_make ?(sched_aware = true) ~pos ~log pick =
  assert (List.length log = pos);
  { pos; log; pick; sched_aware; clamps = ref 0 }
