(* Decision oracles.

   All nondeterminism in an execution — which thread steps, which message a
   load reads, which timestamp a write takes — is resolved by a sequence of
   bounded integer choices.  An oracle answers those choices and logs the
   branching factor of each, which is exactly what the stateless DFS
   explorer needs to enumerate the decision tree.

   Each choice carries a [kind]: scheduling choices name the runnable
   threads they pick between, everything else (read message, write
   timestamp, await/RMW candidates) is [Data].  Enumeration and replay
   ignore kinds; schedule-directed oracles (the PCT fuzzer) key on them. *)

type kind =
  | Sched of int array
      (** a scheduling decision; element [i] is the tid that choice [i]
          would run, so [Array.length tids = arity] *)
  | Data  (** load / timestamp / await / RMW-candidate choice *)

type t = {
  mutable pos : int;
  mutable log : (int * int) list;  (** (arity, choice), newest first *)
  pick : pos:int -> arity:int -> kind:kind -> int;
  sched_aware : bool;
      (** whether [pick] inspects scheduling kinds; when false the machine
          skips building the runnable-tid array for [Sched] choices *)
}

let choose ?(kind = Data) o ~arity =
  if arity <= 0 then invalid_arg "Oracle.choose: empty choice";
  let pos = o.pos in
  o.pos <- pos + 1;
  let c = o.pick ~pos ~arity ~kind in
  assert (0 <= c && c < arity);
  o.log <- (arity, c) :: o.log;
  c

(* Decisions taken so far, earliest first. *)
let decisions o = List.rev_map snd o.log
let arities o = List.rev_map fst o.log

(* Both vectors as arrays in one log traversal — the explorer calls this
   once per execution, so it avoids the intermediate reversed lists. *)
let vectors o =
  let n = o.pos in
  let ds = Array.make n 0 and ars = Array.make n 0 in
  let rec fill i = function
    | [] -> ()
    | (a, c) :: tl ->
        ds.(i) <- c;
        ars.(i) <- a;
        fill (i - 1) tl
  in
  fill (n - 1) o.log;
  (ds, ars)

let position o = o.pos
let sched_aware o = o.sched_aware

(* Raw (arity, choice) log, newest first — the persistent list itself, so
   checkpointing it is O(1). *)
let raw_log o = o.log

(* Custom pick function — how the fuzzing subsystem builds its PCT and
   prefix-replay oracles without this module knowing about them. *)
let make ?(sched_aware = true) pick = { pos = 0; log = []; pick; sched_aware }

(* Deterministic oracle: always the last alternative.  For loads the
   alternatives are in ascending timestamp order, so "last" reads the
   mo-maximal message — the right default for solo (setup) execution.
   Always a fresh value: a shared oracle would be mutable state leaking
   between executions (and between domains, under parallel exploration). *)
let fresh_latest () =
  {
    pos = 0;
    log = [];
    pick = (fun ~pos:_ ~arity ~kind:_ -> arity - 1);
    sched_aware = false;
  }

(* Seeded pseudo-random oracle (deterministic per seed). *)
let random ~seed =
  let st = Random.State.make [| seed; 0x5eed |] in
  {
    pos = 0;
    log = [];
    pick = (fun ~pos:_ ~arity ~kind:_ -> Random.State.int st arity);
    sched_aware = false;
  }

let script_pick choices ~pos ~arity ~kind:_ =
  if pos < Array.length choices then (
    let c = choices.(pos) in
    if c >= arity then
      invalid_arg
        (Printf.sprintf "Oracle.script: choice %d/%d at %d" c arity pos);
    c)
  else 0

(* Replay [script] and fall back to choice 0 (the "first" alternative) past
   its end — the DFS explorer's workhorse. *)
let script choices =
  { pos = 0; log = []; pick = script_pick choices; sched_aware = false }

(* Tolerant replay: out-of-range choices clamp to the last alternative
   instead of raising.  A shrinker or fuzzer mutating a valid script can
   push a later position past its (path-dependent) arity; clamping keeps
   every mutant runnable, and the run's *logged* decision vector is then a
   valid script for strict replay. *)
let script_clamped choices =
  {
    pos = 0;
    log = [];
    pick =
      (fun ~pos ~arity ~kind:_ ->
        if pos < Array.length choices then min choices.(pos) (arity - 1) else 0);
    sched_aware = false;
  }

(* Resume a scripted replay from a machine checkpoint: the first [pos]
   choices were already taken on the checkpointed path, and their
   (arity, choice) pairs are seeded from [log] so that {!decisions} and
   {!arities} still report the full vectors the DFS bumper needs.  [log]
   must be the {!raw_log} captured when the checkpoint was taken, and the
   checkpoint is only valid if [script] agrees with it on those [pos]
   positions (the explorer guarantees this by construction). *)
let resume_script ~pos ~log choices =
  assert (List.length log = pos);
  { pos; log; pick = script_pick choices; sched_aware = false }

(* Resume with a custom pick — what the DPOR driver plugs into the
   incremental engine: scripted positions replay the task prefix, fresh
   positions consult the driver's scheduling policy. *)
let resume_make ?(sched_aware = true) ~pos ~log pick =
  assert (List.length log = pos);
  { pos; log; pick; sched_aware }
