open Compass_rmc

(* Memory-access events, recorded (when the machine config asks) for the
   axiomatic differential check: an independent RC11-style checker
   ({!Rc11}) rebuilds the execution's po/rf/mo/fr/sw/hb relations from
   these and validates the memory-model axioms — cross-checking the
   view-based operational semantics against the declarative model it is
   supposed to implement. *)

type kind = Load | Store | Update

type t =
  | Access of {
      aid : int;  (** position in recording order; unique *)
      tid : int;
      loc : Loc.t;
      kind : kind;
      mode : Mode.access;
      read_ts : Timestamp.t option;  (** the message read (loads, updates) *)
      write_ts : Timestamp.t option;  (** the message written *)
      site : string option;  (** source-level site label, when the program
                                 supplied one (see {!Prog.op}) *)
    }
  | Fence of { aid : int; tid : int; fence : Mode.fence; site : string option }

let aid = function Access a -> a.aid | Fence f -> f.aid
let tid = function Access a -> a.tid | Fence f -> f.tid
let site = function Access a -> a.site | Fence f -> f.site

let pp_site ppf = function
  | Some s -> Format.fprintf ppf " [%s]" s
  | None -> ()

let pp ppf = function
  | Access a ->
      Format.fprintf ppf "%d:T%d %s_%a %a%a%a%a" a.aid a.tid
        (match a.kind with Load -> "R" | Store -> "W" | Update -> "U")
        Mode.pp_access a.mode Loc.pp a.loc
        (fun ppf -> function
          | Some ts -> Format.fprintf ppf " r@%a" Timestamp.pp ts
          | None -> ())
        a.read_ts
        (fun ppf -> function
          | Some ts -> Format.fprintf ppf " w@%a" Timestamp.pp ts
          | None -> ())
        a.write_ts pp_site a.site
  | Fence f ->
      Format.fprintf ppf "%d:T%d %a%a" f.aid f.tid Mode.pp_fence f.fence
        pp_site f.site
