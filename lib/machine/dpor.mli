(** Source-DPOR with wakeup sequences (Abdulla et al., "Optimal dynamic
    partial order reduction") — the shared exploration state behind
    [Explore]'s [--reduce=dpor] mode.

    Pure bookkeeping over decision scripts, tids and footprints: nodes
    (one per multi-alternative scheduling choice) carry source sets and
    per-branch sleep installs; tasks are script prefixes with their
    install obligations and an optional wakeup sequence.  The [Explore]
    driver runs tasks on the machine, records observations, and feeds
    each finished execution back through {!integrate}, which spawns the
    data-alternative siblings and the race-reversal branches.  All
    operations are serialised by an internal lock, so one [t] may be
    shared by every worker domain of a parallel search. *)

type fp = Deps.footprint

type task

val root_task : task
val script : task -> Decision.trace
val installs : task -> (int * (int * fp) list) list
(** decision position -> sleep entries to install there, ascending *)

val wakeup : task -> int list
(** tids to prefer at scheduling choices past the branch point *)

val branch_step : task -> int
(** step index of the branch; races wholly before it are already
    analysed *)

(** Observations the driver records at decision positions past the task's
    scripted prefix.  [o_step] is {!Machine.dpor_depth} at pick time: for
    scheduling choices the index of the step being scheduled, for data
    choices the index after the step being executed. *)
type obs =
  | Osched of {
      o_pos : int;
      o_step : int;
      o_tids : int array;
      o_fps : fp array;
      o_sleep : (int * fp) list;
      o_taken : int;
    }
  | Odata of { o_pos : int; o_step : int; o_arity : int; o_taken : int }

type t

val create : ?rf:bool -> unit -> t
(** a fresh search: the frontier holds only {!root_task}.  [rf] (default
    off) turns on the reads-from–aware rule: atomic write/read race
    reversals are not queued — with the later read's rf edge fixed both
    orders commute, and every rf edge the reversal could realise is
    already enumerated as a data sibling of the read choice.  Reversals
    involving a non-atomic access are always kept (na-race fault
    detection is order-sensitive). *)

val claim : t -> task option
(** pop the deepest pending task.  [None] does not end the search while
    other workers hold claimed tasks — poll {!drained}. *)

val abandon : t -> unit
(** give up a claimed task without integrating (budget / stop flag) *)

val drained : t -> bool
(** frontier empty and no task in flight: the search is complete *)

val integrate :
  t ->
  task ->
  ds:Decision.trace ->
  obs:obs list ->
  steps:(int * fp) array ->
  int
(** account one finished (or pruned) execution of a claimed task: create
    nodes from fresh scheduling observations, spawn data-alternative
    siblings, insert race-reversal branches per the source-DPOR rule.
    [ds] is the full decision trace, [obs] the observations in execution
    order, [steps] the (tid, footprint) log oldest first.  Releases the
    claim; returns the number of tasks spawned. *)
