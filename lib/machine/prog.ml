open Compass_rmc

(* The program DSL.

   Thread programs are values of type ['a t]: free-monad terms whose
   operations are the memory instructions of ORC11.  Each operation is one
   atomic machine step; the machine resolves all nondeterminism (scheduling,
   read choices, timestamp choices) through an oracle, which is what makes
   stateless model checking possible.

   Operations uniformly yield a {!res} record so the DSL needs no GADTs;
   the exposed combinators project out the interesting part.  [res] exposes
   the message views a load obtained — the operational counterpart of the
   paper's view-explicit reasoning (Section 5.2): library code may capture a
   message's physical/logical view and use it later in a commit (the
   exchanger's helper does exactly this with the helpee's offer). *)

type res = {
  value : Value.t;
  view : View.t;  (** message view for loads/RMWs; thread view otherwise *)
  lview : Lview.t;
  success : bool;  (** RMW success; [true] for other operations *)
}

type rmw_kind =
  | Cas of Value.t * Value.t  (** expected, desired *)
  | Faa of int
  | Xchg of Value.t

type instr =
  | Load of Loc.t * Mode.access * Commit.fn option
  | Store of Loc.t * Value.t * Mode.access * Commit.fn option
  | Rmw of Loc.t * rmw_kind * Mode.access * Commit.fn option
  | Await of Loc.t * Mode.access * (Value.t -> bool) * Commit.fn option
      (** blocking read: schedulable only when a readable message satisfies
          the predicate — the standard encoding of a spin-loop that avoids
          enumerating unboundedly many failed reads *)
  | Fence of Mode.fence
  | Alloc of { name : string; size : int; init : Value.t }
  | Yield
  | Tid  (** the executing thread's id, as [Int tid] *)

(* An operation is an instruction plus an optional *site label*: a stable,
   source-level name for the access site (e.g. "msqueue.enq.link_cas").
   Labels flow into recorded {!Access.t} events, so analyses report source
   sites instead of raw event ids, and the synchronization audit can
   address a site when generating weakened mutants (see {!Override}). *)
type op = { site : string option; instr : instr }

type 'a t =
  | Ret of 'a
  | Op of op * (res -> 'a t)
  | Reserve of (int -> 'a t)
      (** draw a fresh event id from the registry (no memory effect) *)

(* Raised (inside a machine step) when a bounded spin loop exhausts its
   fuel; the machine converts it to a discarded execution, not an error. *)
exception Out_of_fuel of string

let return x = Ret x

let rec bind m f =
  match m with
  | Ret x -> f x
  | Op (op, k) -> Op (op, fun r -> bind (k r) f)
  | Reserve k -> Reserve (fun e -> bind (k e) f)

let map m f = bind m (fun x -> return (f x))

module Syntax = struct
  let ( let* ) = bind
  let ( let+ ) = map
  let ( >>= ) = bind
end

open Syntax

(* -- memory operations ---------------------------------------------------- *)

let op ?site instr k = Op ({ site; instr }, k)

let load ?site ?commit l mode = op ?site (Load (l, mode, commit)) (fun r -> Ret r.value)

(* Load returning the full result, including the message's views. *)
let load_explicit ?site ?commit l mode = op ?site (Load (l, mode, commit)) (fun r -> Ret r)
let store ?site ?commit l v mode = op ?site (Store (l, v, mode, commit)) (fun _ -> Ret ())

(* CAS returning [(old_value, success)]. *)
let cas ?site ?commit l ~expected ~desired mode =
  op ?site (Rmw (l, Cas (expected, desired), mode, commit)) (fun r ->
      Ret (r.value, r.success))

let cas_explicit ?site ?commit l ~expected ~desired mode =
  op ?site (Rmw (l, Cas (expected, desired), mode, commit)) (fun r -> Ret r)

(* Fetch-and-add returning the old value (which must be an [Int]). *)
let faa ?site ?commit l delta mode =
  op ?site (Rmw (l, Faa delta, mode, commit)) (fun r -> Ret (Value.to_int_exn r.value))

(* Atomic exchange returning the old value. *)
let xchg ?site ?commit l v mode =
  op ?site (Rmw (l, Xchg v, mode, commit)) (fun r -> Ret r.value)

let xchg_explicit ?site ?commit l v mode =
  op ?site (Rmw (l, Xchg v, mode, commit)) (fun r -> Ret r)

let await ?site ?commit l mode pred =
  op ?site (Await (l, mode, pred, commit)) (fun r -> Ret r.value)

let await_explicit ?site ?commit l mode pred =
  op ?site (Await (l, mode, pred, commit)) (fun r -> Ret r)

let fence ?site f = op ?site (Fence f) (fun _ -> Ret ())

let alloc ?site ?(init = Value.Poison) ~name size =
  op ?site (Alloc { name; size; init }) (fun r -> Ret (Value.to_loc_exn r.value))

let yield = op Yield (fun _ -> Ret ())
let tid = op Tid (fun r -> Ret (Value.to_int_exn r.value))
let reserve = Reserve (fun e -> Ret e)

(* Threads return [Value.t]; lift a unit program. *)
let returning_unit p = bind p (fun () -> Ret Value.Unit)

(* -- control combinators -------------------------------------------------- *)

let rec seq = function
  | [] -> return ()
  | p :: ps ->
      let* () = p in
      seq ps

let rec iter f = function
  | [] -> return ()
  | x :: xs ->
      let* () = f x in
      iter f xs

let rec fold_left f acc = function
  | [] -> return acc
  | x :: xs ->
      let* acc = f acc x in
      fold_left f acc xs

let rec map_list f = function
  | [] -> return []
  | x :: xs ->
      let* y = f x in
      let* ys = map_list f xs in
      return (y :: ys)

let for_ lo hi f =
  let rec go i = if i > hi then return () else let* () = f i in go (succ i) in
  go lo

(* Retry [body] until it yields [Some v], at most [fuel] times; raises
   {!Out_of_fuel} past the budget (the machine discards such executions). *)
let with_fuel ~fuel ~what body =
  let rec go n =
    if n <= 0 then op Yield (fun _ -> raise (Out_of_fuel what))
    else
      let* r = body () in
      match r with Some v -> return v | None -> go (n - 1)
  in
  go fuel

(* Like {!with_fuel}, but passes the 0-based attempt number to [body].
   Retry loops that vary their behaviour per attempt (e.g. rotating over
   exchanger slots) must use this instead of closing over a mutable
   counter: programs are replayed from machine checkpoints, so any state a
   program carries across attempts has to live in the term, not in OCaml
   refs. *)
let with_fuel_i ~fuel ~what body =
  let rec go i n =
    if n <= 0 then op Yield (fun _ -> raise (Out_of_fuel what))
    else
      let* r = body i in
      match r with Some v -> return v | None -> go (i + 1) (n - 1)
  in
  go 0 fuel
