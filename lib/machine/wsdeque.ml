(* Native Chase-Lev work-stealing deque [Chase & Lev, SPAA'05] — the
   host-side analogue of the modelled deque in lib/dstruct/chaselev.ml,
   used by the parallel explorer to distribute exploration prefixes
   across domains.

   The owner pushes and pops at the *bottom* (LIFO); thieves steal at the
   *top* (FIFO).  For DFS work this is exactly right: the owner keeps
   working depth-first on the subtree it just split, while thieves take
   the shallowest — hence largest — pending subtrees.

   Everything shared is an [Atomic]: the two indices, the buffer pointer,
   and each buffer cell.  OCaml's atomics are seq_cst, which makes this
   the conservatively-fenced variant of Le et al. [PPoPP'13]; per-op cost
   is irrelevant here because each task is a whole machine execution.

   Indices grow monotonically (the buffer is circular, indices are not),
   so CAS on [top] has no ABA.  The buffer only grows; cells in a
   superseded buffer are never written again, so a thief that read the
   old buffer either wins its CAS — in which case the cell it read was
   the live value for that index — or loses and discards the read. *)

type 'a t = {
  top : int Atomic.t;  (** next index to steal *)
  bottom : int Atomic.t;  (** next index to push *)
  buf : 'a option Atomic.t array Atomic.t;  (** circular; length a power of 2 *)
}

let min_capacity = 64

let make_buf n = Array.init n (fun _ -> Atomic.make None)

let create () =
  {
    top = Atomic.make 0;
    bottom = Atomic.make 0;
    buf = Atomic.make (make_buf min_capacity);
  }

(* Owner-only: double the buffer, copying the live range [t, b). *)
let grow q ~b ~t =
  let old = Atomic.get q.buf in
  let n = Array.length old in
  let nu = make_buf (2 * n) in
  for i = t to b - 1 do
    Atomic.set nu.(i land ((2 * n) - 1)) (Atomic.get old.(i land (n - 1)))
  done;
  Atomic.set q.buf nu

let push q x =
  let b = Atomic.get q.bottom and t = Atomic.get q.top in
  (let buf = Atomic.get q.buf in
   if b - t >= Array.length buf - 1 then grow q ~b ~t);
  let buf = Atomic.get q.buf in
  Atomic.set buf.(b land (Array.length buf - 1)) (Some x);
  Atomic.set q.bottom (b + 1)

let pop q =
  let b = Atomic.get q.bottom - 1 in
  Atomic.set q.bottom b;
  let t = Atomic.get q.top in
  if b < t then begin
    (* Empty: restore bottom. *)
    Atomic.set q.bottom t;
    None
  end
  else
    let buf = Atomic.get q.buf in
    let x = Atomic.get buf.(b land (Array.length buf - 1)) in
    if b > t then x
    else begin
      (* Last element: race thieves for it via the CAS on [top]. *)
      let won = Atomic.compare_and_set q.top t (t + 1) in
      Atomic.set q.bottom (t + 1);
      if won then x else None
    end

let steal q =
  let t = Atomic.get q.top in
  let b = Atomic.get q.bottom in
  if t >= b then None
  else
    let buf = Atomic.get q.buf in
    let x = Atomic.get buf.(t land (Array.length buf - 1)) in
    if Atomic.compare_and_set q.top t (t + 1) then x else None
