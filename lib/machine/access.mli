open Compass_rmc

(** Memory-access events recorded for the axiomatic differential check
    ({!Rc11}): the machine logs one entry per instruction when the config
    asks for it. *)

type kind = Load | Store | Update

type t =
  | Access of {
      aid : int;  (** position in recording order; unique *)
      tid : int;
      loc : Loc.t;
      kind : kind;
      mode : Mode.access;
      read_ts : Timestamp.t option;  (** the message read (loads, updates) *)
      write_ts : Timestamp.t option;  (** the message written *)
      site : string option;
          (** source-level site label, when the program supplied one
              (see {!Prog.op}) *)
    }
  | Fence of { aid : int; tid : int; fence : Mode.fence; site : string option }

val aid : t -> int
val tid : t -> int

val site : t -> string option
(** the site label, for both accesses and fences *)

val pp : Format.formatter -> t -> unit
