open Compass_rmc

(** The program DSL: thread programs as free-monad terms whose operations
    are ORC11 memory instructions.  Each operation is one atomic machine
    step; the machine resolves all nondeterminism (scheduling, read
    choices, timestamp choices) through an oracle, enabling stateless
    model checking. *)

type res = {
  value : Value.t;
  view : View.t;
      (** the message view for loads/RMWs (view-explicit reasoning,
          Section 5.2 — e.g. the exchanger's helper captures the offer's
          views here); the thread view otherwise *)
  lview : Lview.t;
  success : bool;  (** RMW success; [true] for other operations *)
}

type rmw_kind =
  | Cas of Value.t * Value.t  (** expected, desired *)
  | Faa of int
  | Xchg of Value.t

type instr =
  | Load of Loc.t * Mode.access * Commit.fn option
  | Store of Loc.t * Value.t * Mode.access * Commit.fn option
  | Rmw of Loc.t * rmw_kind * Mode.access * Commit.fn option
  | Await of Loc.t * Mode.access * (Value.t -> bool) * Commit.fn option
      (** blocking read: schedulable only when a readable message
          satisfies the predicate — the standard spin-loop encoding that
          avoids enumerating unboundedly many failed reads *)
  | Fence of Mode.fence
  | Alloc of { name : string; size : int; init : Value.t }
  | Yield
  | Tid  (** the executing thread's id, as [Int tid] *)

type op = { site : string option; instr : instr }
(** an instruction plus an optional *site label*: a stable source-level
    name for the access site (e.g. ["msqueue.enq.link_cas"]).  Labels flow
    into recorded {!Access.t} events, so analyses report source sites
    instead of raw event ids, and the synchronization audit can address a
    site when generating weakened mutants. *)

type 'a t =
  | Ret of 'a
  | Op of op * (res -> 'a t)
  | Reserve of (int -> 'a t)
      (** draw a fresh event id from the registry (no memory effect) *)

exception Out_of_fuel of string
(** raised when a bounded spin loop exhausts its budget; the machine turns
    it into a discarded ([Blocked]) execution, not an error *)

val return : 'a -> 'a t
val bind : 'a t -> ('a -> 'b t) -> 'b t
val map : 'a t -> ('a -> 'b) -> 'b t

module Syntax : sig
  val ( let* ) : 'a t -> ('a -> 'b t) -> 'b t
  val ( let+ ) : 'a t -> ('a -> 'b) -> 'b t
  val ( >>= ) : 'a t -> ('a -> 'b t) -> 'b t
end

(** {1 Memory operations} *)

val load : ?site:string -> ?commit:Commit.fn -> Loc.t -> Mode.access -> Value.t t

val load_explicit :
  ?site:string -> ?commit:Commit.fn -> Loc.t -> Mode.access -> res t

val store :
  ?site:string -> ?commit:Commit.fn -> Loc.t -> Value.t -> Mode.access -> unit t

val cas :
  ?site:string ->
  ?commit:Commit.fn ->
  Loc.t ->
  expected:Value.t ->
  desired:Value.t ->
  Mode.access ->
  (Value.t * bool) t
(** returns (read value, success) *)

val cas_explicit :
  ?site:string ->
  ?commit:Commit.fn ->
  Loc.t ->
  expected:Value.t ->
  desired:Value.t ->
  Mode.access ->
  res t

val faa : ?site:string -> ?commit:Commit.fn -> Loc.t -> int -> Mode.access -> int t
(** fetch-and-add; returns the old value (which must be an [Int]) *)

val xchg :
  ?site:string -> ?commit:Commit.fn -> Loc.t -> Value.t -> Mode.access -> Value.t t

val xchg_explicit :
  ?site:string -> ?commit:Commit.fn -> Loc.t -> Value.t -> Mode.access -> res t

val await :
  ?site:string ->
  ?commit:Commit.fn ->
  Loc.t ->
  Mode.access ->
  (Value.t -> bool) ->
  Value.t t

val await_explicit :
  ?site:string ->
  ?commit:Commit.fn ->
  Loc.t ->
  Mode.access ->
  (Value.t -> bool) ->
  res t

val fence : ?site:string -> Mode.fence -> unit t
val alloc : ?site:string -> ?init:Value.t -> name:string -> int -> Loc.t t
val yield : unit t
val tid : int t
val reserve : int t

val returning_unit : unit t -> Value.t t
(** threads return [Value.t]; lift a unit program *)

(** {1 Control combinators} *)

val seq : unit t list -> unit t
val iter : ('a -> unit t) -> 'a list -> unit t
val fold_left : ('a -> 'b -> 'a t) -> 'a -> 'b list -> 'a t
val map_list : ('a -> 'b t) -> 'a list -> 'b list t
val for_ : int -> int -> (int -> unit t) -> unit t

val with_fuel : fuel:int -> what:string -> (unit -> 'a option t) -> 'a t
(** retry the body until it yields [Some v], at most [fuel] times;
    raises {!Out_of_fuel} past the budget *)

val with_fuel_i : fuel:int -> what:string -> (int -> 'a option t) -> 'a t
(** {!with_fuel} passing the 0-based attempt number to the body.  Use this
    (not a closed-over mutable counter) when attempts differ: programs are
    replayed from machine checkpoints, so per-attempt state must live in
    the term, never in OCaml refs. *)
