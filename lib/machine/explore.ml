(* Exploration drivers: stateless model checking.

   Executions are replayed from decision scripts — typed {!Decision}
   traces whose entries carry the choice taken, the branching factor, and
   (for reads) reads-from provenance.  The DFS driver enumerates the
   decision tree exhaustively: after each run it inspects the logged
   trace, finds the deepest position with an untried alternative, and
   restarts with the bumped prefix.  Enumeration order is lexicographic
   on decision vectors, which is what makes the tree *shardable*: the
   subtrees below distinct decision prefixes are disjoint, so [pdfs] can
   carve the tree at a fixed split depth and hand the resulting shards to
   OCaml 5 domains.  The random driver samples seeded executions.  Where
   the paper *proves* a property of all executions, we *enumerate* them
   (up to the configured bounds) and check it on each. *)

type verdict =
  | Pass
  | Violation of string
  | Discard of string
      (** blocked / bounded / irrelevant execution: not counted as pass or
          fail (e.g. a spin loop ran out of fuel) *)

(* A scenario builds its memory, graphs, and threads on a fresh machine and
   returns the judge that decides the verdict of the finished execution.
   [build] runs once per execution; shared statistics live in closures
   created before the scenario. *)
type scenario = {
  name : string;
  build : Machine.t -> (Machine.outcome -> verdict);
}

type failure = { message : string; trace : Decision.trace }

let failure_script f = Decision.choices f.trace

type report = {
  name : string;
  executions : int;
  distinct : int;
      (** distinct decision vectors among the executions.  DFS enumerates,
          so there it equals [executions]; random sampling revisits
          decision vectors, and the gap is the sampling redundancy. *)
  passed : int;
  discarded : int;
  bounded : int;
  blocked : int;
  pruned : int;  (** subtrees skipped by sleep-set reduction *)
  dpor_pruned : int;
      (** executions cut short by DPOR sleep sets (a queued branch turned
          out to be covered); like [pruned], never counted in
          [executions] *)
  rf_pruned : int;
      (** runs discarded by the reads-from reduction ([RDporRf]) because
          their rf⊕mo class was already counted; like [pruned], never
          counted in [executions] *)
  violations : failure list;  (** first few, oldest first *)
  complete : bool;  (** DFS exhausted the tree within the budget *)
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%s: %d executions (%s)%s@ passed %d, discarded %d (blocked %d, bounded %d)%s, violations %d%a@]"
    r.name r.executions
    (if r.complete then "exhaustive" else "budget-limited")
    (if r.distinct < r.executions then
       Printf.sprintf ", %d distinct" r.distinct
     else "")
    r.passed r.discarded r.blocked r.bounded
    ((if r.pruned > 0 then Printf.sprintf ", pruned %d subtrees" r.pruned
      else "")
    ^ (if r.dpor_pruned > 0 then
         Printf.sprintf ", dpor-pruned %d branches" r.dpor_pruned
       else "")
    ^
    if r.rf_pruned > 0 then
      Printf.sprintf ", rf-pruned %d duplicates" r.rf_pruned
    else "")
    (List.length r.violations)
    (fun ppf vs ->
      List.iteri
        (fun i (f : failure) ->
          if i < 3 then Format.fprintf ppf "@   - %s" f.message)
        vs)
    r.violations

let ok r = r.violations = []

let report_to_json (r : report) =
  let open Compass_util in
  Jsonout.Obj
    [
      ("name", Jsonout.Str r.name);
      ("executions", Jsonout.Int r.executions);
      ("distinct", Jsonout.Int r.distinct);
      ("passed", Jsonout.Int r.passed);
      ("discarded", Jsonout.Int r.discarded);
      ("bounded", Jsonout.Int r.bounded);
      ("blocked", Jsonout.Int r.blocked);
      ("pruned", Jsonout.Int r.pruned);
      ("dpor_pruned", Jsonout.Int r.dpor_pruned);
      ("rf_pruned", Jsonout.Int r.rf_pruned);
      ("complete", Jsonout.Bool r.complete);
      ( "violations",
        Jsonout.List
          (List.map
             (fun (f : failure) ->
               Jsonout.Obj
                 [
                   ("message", Jsonout.Str f.message);
                   (* legacy int script first: old consumers keep parsing *)
                   ("script", Jsonout.int_array (failure_script f));
                   ("trace", Decision.trace_to_json f.trace);
                 ])
             r.violations) );
    ]

let run_one ~config scenario script =
  let m = Machine.create ~config () in
  let judge = scenario.build m in
  let oracle = Oracle.script script in
  let outcome = Machine.run m oracle in
  let verdict = judge outcome in
  (m, oracle, outcome, verdict)

(* External replay — the CLI, the fuzzer's confirmation pass, the witness
   detail recovery.  Uniformly *clamped*: scripts that cross a tool
   boundary may be stale or hand-edited, so out-of-range choices take the
   last alternative and are counted instead of raising; [r_trace] is the
   typed decision log of what actually ran (a valid strict script). *)
type replayed = {
  r_machine : Machine.t;
  r_outcome : Machine.outcome;
  r_verdict : verdict;
  r_trace : Decision.trace;
  r_clamped : int;  (** out-of-range choices clamped during the replay *)
}

let replay ~config scenario script =
  let config = { config with Machine.record_trace = true } in
  let m = Machine.create ~config () in
  let judge = scenario.build m in
  let oracle = Oracle.script_clamped script in
  let outcome = Machine.run m oracle in
  {
    r_machine = m;
    r_outcome = outcome;
    r_verdict = judge outcome;
    r_trace = Oracle.trace oracle;
    r_clamped = Oracle.clamp_count oracle;
  }

(* Reports keep only the first few counterexamples: enough to show, cheap
   to carry. *)
let max_violations = 16

type stats = {
  mutable execs : int;
  mutable passed : int;
  mutable discarded : int;
  mutable bounded : int;
  mutable blocked : int;
  mutable pruned : int;
  mutable dpor_pruned : int;
  mutable rf_pruned : int;
  mutable viol_count : int;  (** kept violations (avoids O(n) list length) *)
  mutable violations : failure list;  (** newest first *)
}

let fresh_stats () =
  {
    execs = 0;
    passed = 0;
    discarded = 0;
    bounded = 0;
    blocked = 0;
    pruned = 0;
    dpor_pruned = 0;
    rf_pruned = 0;
    viol_count = 0;
    violations = [];
  }

let account st (outcome : Machine.outcome) verdict trace =
  st.execs <- st.execs + 1;
  (match outcome with
  | Machine.Bounded -> st.bounded <- st.bounded + 1
  | Machine.Blocked _ -> st.blocked <- st.blocked + 1
  | _ -> ());
  match verdict with
  | Pass -> st.passed <- st.passed + 1
  | Discard _ -> st.discarded <- st.discarded + 1
  | Violation message ->
      if st.viol_count < max_violations then begin
        st.viol_count <- st.viol_count + 1;
        st.violations <- { message; trace } :: st.violations
      end

(* [distinct]: only the random driver counts fingerprints; DFS enumerates
   distinct scripts by construction, so it defaults to the execution
   count. *)
let to_report ?distinct ~name ~complete st =
  {
    name;
    executions = st.execs;
    distinct = (match distinct with Some d -> d | None -> st.execs);
    passed = st.passed;
    discarded = st.discarded;
    bounded = st.bounded;
    blocked = st.blocked;
    pruned = st.pruned;
    dpor_pruned = st.dpor_pruned;
    rf_pruned = st.rf_pruned;
    violations = List.rev st.violations;
    complete;
  }

(* -- reads-from classes ------------------------------------------------------

   The canonical key of an execution's ORC11 execution graph, built from
   the recorded access log: the outcome tag plus, per thread in program
   order, each access's kind/location/mode and the *mo ranks* of the
   timestamps it read and wrote.  Two interleavings with the same
   per-thread access sequences, the same rf edges and the same mo order
   produce the same key no matter how the scheduler interleaved them —
   timestamps are canonicalised to their rank among the location's
   observed timestamps, so the key is mo-based even under the [`Gap]
   placement policy where raw timestamp values are placement-dependent. *)

let rf_class_key ~(outcome : Machine.outcome) accesses =
  let module Loc = Compass_rmc.Loc in
  let module Mode = Compass_rmc.Mode in
  (* timestamps observed per location, then ranked *)
  let per_loc : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let note loc ts =
    let k = Loc.key loc in
    match Hashtbl.find_opt per_loc k with
    | Some l -> l := ts :: !l
    | None -> Hashtbl.add per_loc k (ref [ ts ])
  in
  List.iter
    (function
      | Access.Access r ->
          (match r.read_ts with Some ts -> note r.loc ts | None -> ());
          (match r.write_ts with Some ts -> note r.loc ts | None -> ())
      | Access.Fence _ -> ())
    accesses;
  let rank : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun k tss ->
      List.iteri
        (fun i ts -> Hashtbl.replace rank (k, ts) i)
        (List.sort_uniq compare !tss))
    per_loc;
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Format.asprintf "%a" Machine.pp_outcome outcome);
  let tids =
    List.sort_uniq compare (List.map Access.tid accesses)
  in
  List.iter
    (fun tid ->
      Buffer.add_string buf (Printf.sprintf "|T%d:" tid);
      List.iter
        (fun a ->
          if Access.tid a = tid then
            match a with
            | Access.Access r ->
                let k = Loc.key r.loc in
                Buffer.add_string buf
                  (Format.asprintf "%c%d%a"
                     (match r.kind with
                     | Access.Load -> 'L'
                     | Access.Store -> 'S'
                     | Access.Update -> 'U')
                     k Mode.pp_access r.mode);
                (match r.read_ts with
                | Some ts ->
                    Buffer.add_string buf
                      (Printf.sprintf "r%d" (Hashtbl.find rank (k, ts)))
                | None -> ());
                (match r.write_ts with
                | Some ts ->
                    Buffer.add_string buf
                      (Printf.sprintf "w%d" (Hashtbl.find rank (k, ts)))
                | None -> ());
                Buffer.add_char buf ';'
            | Access.Fence f ->
                Buffer.add_string buf
                  (Format.asprintf "F%a;" Mode.pp_fence f.fence))
        accesses)
    tids;
  Buffer.contents buf

(* -- the DFS engine ----------------------------------------------------------

   One run + bump.  [run_tree] executes [script], accounts the result into
   [st] (unless the run was pruned, or [count] is off — the parallel
   frontier pass re-runs its executions inside the shard workers), and
   returns the logged decision trace for bumping.

   [mk_oracle] builds the oracle for one run from the machine, the resume
   depth/log (0/[] when replaying from the root) and the script; the
   default is plain scripted replay, the DPOR driver substitutes its
   observing/steering oracle.  [classify] inspects a completed run before
   it is accounted: returning [false] books it as [rf_pruned] instead of
   an execution — the reads-from deduplication hook. *)

let default_mk_oracle _m ~pos ~log script = Oracle.resume_script ~pos ~log script

let default_classify _m _outcome = true

let account_pruned ~reduction st =
  match (reduction : Machine.reduction) with
  | Machine.RDpor | Machine.RDporRf -> st.dpor_pruned <- st.dpor_pruned + 1
  | _ -> st.pruned <- st.pruned + 1

let run_tree ~config ~reduction ~mk_oracle ~classify ~count scenario st script =
  let m = Machine.create ~config () in
  let judge = scenario.build m in
  let oracle = mk_oracle m ~pos:0 ~log:[] script in
  let outcome = Machine.run ~reduction m oracle in
  let tr = Oracle.trace oracle in
  (if count then
     match outcome with
     | Machine.Pruned -> account_pruned ~reduction st
     | _ ->
         if classify m outcome then account st outcome (judge outcome) tr
         else st.rf_pruned <- st.rf_pruned + 1);
  (outcome, tr)

(* -- the incremental engine --------------------------------------------------

   Replay-from-root pays [Machine.create] + scenario build + a full replay
   of the decision prefix on every execution: O(depth) redundant work per
   leaf of the decision tree.  The incremental engine instead keeps ONE
   machine per driver and a stack of checkpoints keyed by decision depth
   along the current path.  To run the next script, it finds the deepest
   checkpoint whose depth is within the common prefix of the new script
   and the previous run's decisions, restores it (O(#locations + #graphs)
   pointer copies — the underlying maps are persistent), and re-executes
   only the decision suffix.  Since DFS bumps the *deepest* untried
   alternative, the suffix is usually a handful of steps.

   A checkpoint is taken every [stride] decisions (at machine-step
   boundaries); on backtrack at most [stride] decisions' worth of steps
   are replayed from the restored state.  The scenario is built exactly
   once per engine: thread programs are free-monad values and judges read
   machine state that [restore] rolls back in place, so per-execution
   behaviour — and hence every report field — matches replay-from-root
   decision for decision (the differential suite in test/test_explore.ml
   asserts this). *)

let default_stride = 1

type checkpoint = {
  c_depth : int;  (** oracle decisions consumed when the snapshot was taken *)
  c_snap : Machine.snapshot;
  c_log : Decision.t list;  (** oracle raw log at the checkpoint *)
}

type engine = {
  e_machine : Machine.t;
  e_judge : Machine.outcome -> verdict;
  e_stride : int;
  mutable e_stack : checkpoint list;
      (** deepest first; the bottom element is the post-build root and is
          never popped.  Invariant: every checkpoint is a state along the
          previous run's path (prefix depths only). *)
  mutable e_prev : Decision.trace;  (** the previous run's decision trace *)
}

let engine ?(stride = default_stride) ~config scenario =
  if stride < 1 then invalid_arg "Explore.engine: stride < 1";
  let m = Machine.create ~config () in
  let judge = scenario.build m in
  (* Prime before the root snapshot so every run — including one restored
     from the root — resumes with the deadline and sleep set a
     from-the-root replay would compute. *)
  Machine.prime m;
  let root = { c_depth = 0; c_snap = Machine.snapshot m; c_log = [] } in
  {
    e_machine = m;
    e_judge = judge;
    e_stride = stride;
    e_stack = [ root ];
    e_prev = [||];
  }

let engine_run eng ~reduction ~mk_oracle ~classify ~count st script =
  (* Divergence point: the first position where [script] departs from the
     previous run's decisions.  Checkpoints strictly deeper than it belong
     to a different path. *)
  let diverge =
    let n = min (Array.length script) (Array.length eng.e_prev) in
    let rec go i =
      if
        i < n
        && script.(i).Decision.choice = eng.e_prev.(i).Decision.choice
      then go (i + 1)
      else i
    in
    go 0
  in
  let rec pop = function
    | ck :: (_ :: _ as rest) when ck.c_depth > diverge -> pop rest
    | stack -> stack
  in
  eng.e_stack <- pop eng.e_stack;
  let ck = List.hd eng.e_stack in
  let m = eng.e_machine in
  Machine.restore m ck.c_snap;
  let oracle = mk_oracle m ~pos:ck.c_depth ~log:ck.c_log script in
  let top = ref ck.c_depth in
  (* Machine step at which the head checkpoint's snapshot was taken — to
     skip no-op slides when no forced step ran since. *)
  let top_step = ref (Machine.steps m) in
  let on_step () =
    let d = Oracle.position oracle in
    if d >= !top + eng.e_stride then begin
      top := d;
      top_step := Machine.steps m;
      eng.e_stack <-
        { c_depth = d; c_snap = Machine.snapshot m; c_log = Oracle.raw_log oracle }
        :: eng.e_stack
    end
  in
  let on_sched () =
    (* A scheduling decision is about to be consumed.  If forced steps ran
       since the head checkpoint's snapshot (arity-1 choices are not
       logged, so the depth didn't move), slide the checkpoint forward to
       this settled boundary: a restore to this depth then lands right
       before the decision instead of replaying the forced run.  Sliding
       only here — not on every forced step — takes exactly one snapshot
       per decision, and none for the forced run trailing the last
       decision (such a snapshot could never be restored: any future
       divergence point is at most the last decision's depth). *)
    let d = Oracle.position oracle in
    match eng.e_stack with
    | ck :: rest when ck.c_depth = d && Machine.steps m > !top_step ->
        top_step := Machine.steps m;
        eng.e_stack <- { ck with c_snap = Machine.snapshot m } :: rest
    | _ -> ()
  in
  let outcome = Machine.run ~reduction ~resume:true ~on_step ~on_sched m oracle in
  let tr = Oracle.trace oracle in
  eng.e_prev <- tr;
  (if count then
     match outcome with
     | Machine.Pruned -> account_pruned ~reduction st
     | _ ->
         if classify m outcome then account st outcome (eng.e_judge outcome) tr
         else st.rf_pruned <- st.rf_pruned + 1);
  (outcome, tr)

(* A driver-agnostic runner: one closure per (driver, domain), so each
   worker owns at most one machine for its whole lifetime instead of
   allocating a machine, hash tables and scenario closures per
   execution. *)
let make_runner ?(mk_oracle = default_mk_oracle) ?(classify = default_classify)
    ~incremental ~stride ~config ~reduction scenario =
  if incremental then begin
    let eng = engine ~stride ~config scenario in
    fun st ~count script ->
      engine_run eng ~reduction ~mk_oracle ~classify ~count st script
  end
  else
    fun st ~count script ->
      run_tree ~config ~reduction ~mk_oracle ~classify ~count scenario st script

(* Deepest position [i] with [lo <= i < min hi (length tr)] holding an
   untried alternative; the bumped script locks everything above it.
   Sequential [dfs] uses the full range; [pdfs] does not bump at all — it
   splits the same alternatives into work-stealing tasks (below). *)
let bump ~lo ~hi (tr : Decision.trace) =
  let len = Array.length tr in
  let rec find i =
    if i < lo then None
    else if tr.(i).Decision.choice + 1 < tr.(i).Decision.arity then Some i
    else find (i - 1)
  in
  match find (min hi len - 1) with
  | None -> None
  | Some i -> Some (Array.append (Array.sub tr 0 i) [| Decision.bumped tr.(i) |])

let merge_stats into from =
  into.execs <- into.execs + from.execs;
  into.passed <- into.passed + from.passed;
  into.discarded <- into.discarded + from.discarded;
  into.bounded <- into.bounded + from.bounded;
  into.blocked <- into.blocked + from.blocked;
  into.pruned <- into.pruned + from.pruned;
  into.dpor_pruned <- into.dpor_pruned + from.dpor_pruned;
  into.rf_pruned <- into.rf_pruned + from.rf_pruned;
  into.viol_count <- into.viol_count + from.viol_count;
  into.violations <- from.violations @ into.violations

(* Deterministic violation order across worker schedules: sort the merged
   failures by decision script (DFS order is lexicographic on scripts). *)
let compare_failure (a : failure) (b : failure) =
  let la = Array.length a.trace and lb = Array.length b.trace in
  let rec go i =
    if i >= la || i >= lb then Int.compare la lb
    else
      match
        Int.compare a.trace.(i).Decision.choice b.trace.(i).Decision.choice
      with
      | 0 -> go (i + 1)
      | c -> c
  in
  go 0

(* -- the source-DPOR drive ---------------------------------------------------

   Tasks ({!Dpor}) replace the bump: each claimed task replays its script
   prefix (re-arming the sleep sets recorded for its branch points), then
   continues with the driver's scheduling policy — follow the task's
   wakeup sequence while the executed steps match it, otherwise the first
   runnable thread that is not asleep; data choices default to the first
   alternative.  Every decision past the prefix is observed; after the
   run, {!Dpor.integrate} spawns the untaken data alternatives and the
   race-reversal branches.  The same runner abstraction as [dfs]/[pdfs]
   carries the incremental engine underneath: checkpoints restored across
   tasks are consistent because the sleep entries installed at a branch
   position are fixed per (node, branch) — two tasks sharing a script
   prefix install byte-identical sleep state along it.

   Workers share the locked task frontier and claim the deepest pending
   branch; at [jobs = 1] the search is fully deterministic (and the
   depth-first order keeps the incremental engine's divergence suffixes
   short).  At [jobs > 1] race-discovery order — and hence execution
   counts — may vary between runs, but verdicts and kept-violation sets
   are schedule-independent (the differential suite asserts this).

   [rf] mode (--reduce=dpor-rf) stacks the data reduction on top:
   {!Dpor.create}[ ~rf:true] stops queueing atomic write/read race
   reversals (the read's data siblings already enumerate every rf edge a
   reversal could realise), and a shared rf-class table keyed by
   {!rf_class_key} deduplicates completed runs — a run whose class was
   already counted books as [rf_pruned], skips the judge, and refunds its
   budget slot, so [executions] counts exactly the distinct rf⊕mo
   classes.  Every run still feeds {!Dpor.integrate}: duplicates can
   still own unexplored data siblings. *)

let dpor_drive ?(jobs = 1) ?(max_execs = 100_000) ?(incremental = true)
    ?(stride = default_stride) ?(until_violation = false)
    ?(config = Machine.default_config) ?(rf = false) scenario =
  let state = Dpor.create ~rf () in
  (* rf-class dedup needs the access log; force-record it in rf mode. *)
  let config =
    if rf && not config.Machine.record_accesses then
      { config with Machine.record_accesses = true }
    else config
  in
  let reduction = if rf then Machine.RDporRf else Machine.RDpor in
  let classes : (string, unit) Hashtbl.t = Hashtbl.create 199 in
  let classes_lock = Mutex.create () in
  let classify m outcome =
    if not rf then true
    else begin
      let key = rf_class_key ~outcome (Machine.accesses m) in
      Mutex.lock classes_lock;
      let dup = Hashtbl.mem classes key in
      if not dup then Hashtbl.add classes key ();
      Mutex.unlock classes_lock;
      not dup
    end
  in
  let spent = Atomic.make 0 in
  let budget_hit = Atomic.make false in
  let stop = Atomic.make false in
  let worker _k () =
    let st = fresh_stats () in
    (* Per-run driver state, rebound by [mk_oracle] before each run. *)
    let cur_task = ref Dpor.root_task in
    let cur_m = ref None in
    let obs = ref [] in
    let wake = ref [] in
    let base = ref 0 in
    let mk_oracle m ~pos ~log script =
      cur_m := Some m;
      obs := [];
      let task = !cur_task in
      wake := Dpor.wakeup task;
      base := Dpor.branch_step task + 1;
      let installs = Dpor.installs task in
      let slen = Array.length script in
      let pick ~pos ~arity ~kind =
        if pos < slen then begin
          (match List.assoc_opt pos installs with
          | Some entries -> Machine.set_sleep m (entries @ Machine.get_sleep m)
          | None -> ());
          let c = script.(pos).Decision.choice in
          if c >= arity then
            invalid_arg
              (Printf.sprintf "Explore.dpor: choice %d/%d at %d" c arity pos);
          c
        end
        else
          match kind with
          | Oracle.Data ->
              let s = Machine.dpor_depth m in
              obs :=
                Dpor.Odata { o_pos = pos; o_step = s; o_arity = arity; o_taken = 0 }
                :: !obs;
              0
          | Oracle.Sched tids ->
              let s = Machine.dpor_depth m in
              let sleep = Machine.get_sleep m in
              (* Steering: consume wakeup entries matching the steps run
                 since the last sync (forced steps included); abandon the
                 sequence on first divergence. *)
              (if !wake <> [] then begin
                 let steps = Machine.dpor_steps m in
                 let t = ref !base in
                 while !wake <> [] && !t < s do
                   (match !wake with
                   | w :: rest when w = fst steps.(!t) -> wake := rest
                   | _ -> wake := []);
                   incr t
                 done;
                 base := s
               end);
              let n = Array.length tids in
              let index_of w =
                let rec go i =
                  if i >= n then None else if tids.(i) = w then Some i else go (i + 1)
                in
                go 0
              in
              let default () =
                let rec go i =
                  if i >= n then 0
                  else if List.mem_assq tids.(i) sleep then go (i + 1)
                  else i
                in
                go 0
              in
              let j =
                match !wake with
                | w :: rest -> (
                    match index_of w with
                    | Some i when not (List.mem_assq w sleep) ->
                        wake := rest;
                        base := s + 1;
                        i
                    | _ ->
                        wake := [];
                        default ())
                | [] -> default ()
              in
              obs :=
                Dpor.Osched
                  {
                    o_pos = pos;
                    o_step = s;
                    o_tids = Array.copy tids;
                    o_fps = Array.map (Machine.pending_footprint m) tids;
                    o_sleep = sleep;
                    o_taken = j;
                  }
                :: !obs;
              j
      in
      Oracle.resume_make ~sched_aware:true ~pos ~log pick
    in
    let run =
      make_runner ~mk_oracle ~classify ~incremental ~stride ~config ~reduction
        scenario
    in
    let rec loop () =
      if Atomic.get budget_hit || Atomic.get stop then ()
      else
        match Dpor.claim state with
        | None ->
            if Dpor.drained state then ()
            else begin
              Domain.cpu_relax ();
              loop ()
            end
        | Some task ->
            let got = Atomic.fetch_and_add spent 1 in
            if got >= max_execs then begin
              ignore (Atomic.fetch_and_add spent (-1));
              Atomic.set budget_hit true;
              Dpor.abandon state
            end
            else begin
              cur_task := task;
              let rfp0 = st.rf_pruned in
              let outcome, ds = run st ~count:true (Dpor.script task) in
              (* Pruned and rf-deduplicated runs are not executions:
                 refund the budget slot. *)
              if outcome = Machine.Pruned || st.rf_pruned > rfp0 then
                ignore (Atomic.fetch_and_add spent (-1));
              let m = Option.get !cur_m in
              ignore
                (Dpor.integrate state task ~ds ~obs:(List.rev !obs)
                   ~steps:(Machine.dpor_steps m));
              if until_violation && st.viol_count > 0 then Atomic.set stop true;
              loop ()
            end
    in
    loop ();
    st
  in
  let stats =
    if jobs = 1 then [ worker 0 () ]
    else
      Array.init jobs (fun k -> Domain.spawn (worker k))
      |> Array.map Domain.join |> Array.to_list
  in
  let st = fresh_stats () in
  List.iter (merge_stats st) stats;
  st.violations <-
    List.sort compare_failure st.violations
    |> List.filteri (fun i _ -> i < max_violations)
    |> List.rev;
  to_report ~name:scenario.name
    ~complete:
      ((not (Atomic.get budget_hit))
      && (not (Atomic.get stop))
      && Dpor.drained state)
    st

(* Exhaustive DFS over the decision tree, up to [max_execs] executions.
   With [until_violation] the search stops at the first kept violation —
   the mode-necessity audit only needs a witness per mutant, not the full
   census (a run cut short this way reports [complete = false]). *)
let dfs ?(max_execs = 100_000) ?(reduce = Machine.RNone) ?(incremental = true)
    ?(stride = default_stride) ?(until_violation = false)
    ?(config = Machine.default_config) scenario =
  match reduce with
  | Machine.RDpor | Machine.RDporRf ->
      dpor_drive ~jobs:1 ~max_execs ~incremental ~stride ~until_violation
        ~config ~rf:(reduce = Machine.RDporRf) scenario
  | Machine.RNone | Machine.RSleep ->
      let st = fresh_stats () in
      let run =
        make_runner ~incremental ~stride ~config ~reduction:reduce scenario
      in
      let rec go script =
        if st.execs >= max_execs then false
        else begin
          let _, tr = run st ~count:true script in
          if until_violation && st.viol_count > 0 then false
          else
            match bump ~lo:0 ~hi:max_int tr with
            | None -> true
            | Some script -> go script
        end
      in
      let complete = go [||] in
      to_report ~name:scenario.name ~complete st

(* -- parallel DFS: work-stealing frontier ------------------------------------

   The decision tree is partitioned into *tasks*.  A task [(script, lock)]
   owns the subtree of executions whose decision vectors extend [script]
   with positions below [lock] frozen.  Running the task's script yields
   one leaf trace; the rest of its subtree is exactly the disjoint
   union of the child tasks

     (tr[0..i) ++ [bumped tr.(i)], i)   for lock <= i < |tr|, choice+1 < arity

   — child [i] covers every execution that agrees with the leaf below
   position [i] and diverges at [i].  Children are pushed shallow-first
   onto the worker's Chase-Lev deque ({!Wsdeque}, the native analogue of
   the modelled lib/dstruct/chaselev.ml), so the owner's LIFO pop
   continues with the *deepest* divergence — at [jobs = 1] this replays
   sequential [dfs]'s bump order execution for execution — while thieves
   steal the *shallowest* pending task, i.e. the largest unexplored
   subtree, which keeps steals rare.

   Because tasks partition the tree, each execution is run and accounted
   exactly once (no unaccounted shard-enumeration pass), and on a
   complete search the merged report matches sequential [dfs] field for
   field; kept violations are re-sorted into script order to erase the
   worker schedule.  Termination is an atomic count of tasks created but
   not yet finished.  Workers share only the deque array, that counter,
   the execution budget and the stop flags — the machine, engine and
   stats are domain-local, which is what the per-run isolation audit of
   [Machine.create] guarantees. *)

(* Workers claim execution budget in batches: one [fetch_and_add] amortised
   over [budget_batch] runs instead of one per run.  Per-execution atomics
   on a shared counter are a cross-domain cache-line ping-pong — profiled
   as the dominant cost of [pdfs] once executions got cheap. *)
let budget_batch = 64

let pdfs ?jobs ?(max_execs = 100_000) ?(reduce = Machine.RNone)
    ?(incremental = true) ?(stride = default_stride)
    ?(until_violation = false) ?(config = Machine.default_config) scenario =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Domain.recommended_domain_count ()
  in
  match reduce with
  | Machine.RDpor | Machine.RDporRf ->
      dpor_drive ~jobs ~max_execs ~incremental ~stride ~until_violation
        ~config ~rf:(reduce = Machine.RDporRf) scenario
  | Machine.RNone | Machine.RSleep ->
  let deques = Array.init jobs (fun _ -> Wsdeque.create ()) in
  (* Tasks created but not yet finished; the search is over when it hits
     zero.  Seeded with the root task before any worker starts. *)
  let pending = Atomic.make 1 in
  Wsdeque.push deques.(0) ([||], 0);
  let spent = Atomic.make 0 in
  let budget_hit = Atomic.make false in
  (* [until_violation]: the first worker to keep a violation raises this
     flag; the others stop at their next task boundary. *)
  let stop = Atomic.make false in
  let worker k () =
    let st = fresh_stats () in
    let run =
      make_runner ~incremental ~stride ~config ~reduction:reduce scenario
    in
    let dq = deques.(k) in
    (* Locally cached budget slots (claimed, not yet used). *)
    let local = ref 0 in
    let take_slot () =
      if !local > 0 then begin decr local; true end
      else begin
        let got = Atomic.fetch_and_add spent budget_batch in
        if got >= max_execs then begin
          (* Over budget: put the whole batch back and stop. *)
          ignore (Atomic.fetch_and_add spent (-budget_batch));
          Atomic.set budget_hit true;
          false
        end
        else begin
          (* Keep only the slots that fit under the budget. *)
          let batch = min budget_batch (max_execs - got) in
          if batch < budget_batch then
            ignore (Atomic.fetch_and_add spent (batch - budget_batch));
          local := batch - 1;
          true
        end
      end
    in
    let exec_task (script, lock) =
      (if Atomic.get stop then ()
       else if not (take_slot ()) then ()
       else begin
         let outcome, tr = run st ~count:true script in
         (* Pruned runs are not executions: refund the budget slot so the
            parallel budget counts what sequential [dfs] counts. *)
         if outcome = Machine.Pruned then incr local;
         if until_violation && st.viol_count > 0 then Atomic.set stop true
         else
           (* Split the remainder of this task's subtree into children,
              shallow-first so the owner's LIFO pop takes the deepest. *)
           for i = lock to Array.length tr - 1 do
             if tr.(i).Decision.choice + 1 < tr.(i).Decision.arity then begin
               Atomic.incr pending;
               Wsdeque.push dq
                 (Array.append (Array.sub tr 0 i) [| Decision.bumped tr.(i) |], i)
             end
           done
       end);
      Atomic.decr pending
    in
    let rec loop () =
      if Atomic.get budget_hit || Atomic.get stop then ()
      else
        match Wsdeque.pop dq with
        | Some t -> exec_task t; loop ()
        | None ->
            if Atomic.get pending = 0 then ()
            else begin
              (* Out of local work but the search isn't over: scan the
                 other deques for the shallowest stealable task. *)
              let stolen = ref None in
              let o = ref 1 in
              while !stolen = None && !o < jobs do
                stolen := Wsdeque.steal deques.((k + !o) mod jobs);
                incr o
              done;
              (match !stolen with
              | Some t -> exec_task t
              | None -> Domain.cpu_relax ());
              loop ()
            end
    in
    loop ();
    (* Return unused cached slots to the shared budget. *)
    ignore (Atomic.fetch_and_add spent (- !local));
    local := 0;
    st
  in
  let stats =
    if jobs = 1 then [ worker 0 () ]
    else begin
      let domains = Array.init jobs (fun k -> Domain.spawn (worker k)) in
      Array.to_list (Array.map Domain.join domains)
    end
  in
  let st = fresh_stats () in
  List.iter (merge_stats st) stats;
  (* [to_report] reverses the (newest-first) list, so store the kept
     failures — the lexicographically smallest scripts — in reverse. *)
  st.violations <-
    List.sort compare_failure st.violations
    |> List.filteri (fun i _ -> i < max_violations)
    |> List.rev;
  to_report ~name:scenario.name
    ~complete:((not (Atomic.get budget_hit)) && not (Atomic.get stop))
    st

(* Random sampling: [execs] seeded executions.  Decision vectors are
   fingerprinted so the report can say how many *distinct* executions the
   sample actually covered — the redundancy random exploration pays and
   DFS does not. *)
let random ?(execs = 1_000) ?(seed = 0) ?(config = Machine.default_config)
    scenario =
  let st = fresh_stats () in
  let seen : (int array, unit) Hashtbl.t = Hashtbl.create 199 in
  for i = 0 to execs - 1 do
    let m = Machine.create ~config () in
    let judge = scenario.build m in
    let oracle = Oracle.random ~seed:(seed + i) in
    let outcome = Machine.run m oracle in
    let verdict = judge outcome in
    let tr = Oracle.trace oracle in
    Hashtbl.replace seen (Decision.choices tr) ();
    account st outcome verdict tr
  done;
  to_report ~distinct:(Hashtbl.length seen) ~name:scenario.name ~complete:false
    st

type mode = Dfs of { max_execs : int } | Random of { execs : int; seed : int }

let run ?(config = Machine.default_config) ?(jobs = 1)
    ?(reduce = Machine.RNone) ?(incremental = true) ?(stride = default_stride)
    ?(until_violation = false) ~mode scenario =
  match mode with
  | Dfs { max_execs } ->
      if jobs > 1 then
        pdfs ~jobs ~max_execs ~reduce ~incremental ~stride ~until_violation
          ~config scenario
      else
        dfs ~max_execs ~reduce ~incremental ~stride ~until_violation ~config
          scenario
  | Random { execs; seed } -> random ~execs ~seed ~config scenario
