(** Dependency relations shared by the race detector and the DPOR engine.

    Two views of the same idea: the RC11-synchronisation vector-clock
    {!sweep} over recorded access logs (the race detector's
    happens-before), and the Mazurkiewicz-trace order over machine-step
    sequences ({!analyze_steps}) built from footprint commutation — the
    dependency relation source-DPOR needs. *)

open Compass_rmc

(** {1 Footprints}

    What a thread's next operation touches, abstracted to what matters
    for commutation: the location read or written, [FLocal] for steps
    with no shared effect, [FGlobal] for steps conservatively dependent
    on everything (allocation, SC fences). *)

type footprint =
  | FRead of Loc.t  (** atomic read (load, await, the read of an RMW) *)
  | FWrite of Loc.t  (** atomic write (store, RMW) *)
  | FReadNa of Loc.t
      (** non-atomic read — commutes exactly like [FRead], but kept
          distinct so the rf-aware reduction never prunes an
          order-sensitive na-race reversal *)
  | FWriteNa of Loc.t  (** non-atomic write (same caveat) *)
  | FLocal
  | FGlobal

val independent : footprint -> footprint -> bool
(** Steps with these footprints commute: running them in either order
    from the same state reaches the same state. *)

val pp_footprint : Format.formatter -> footprint -> unit

(** {1 Access-log happens-before (RC11 synchronisation)} *)

val sweep : Access.t array -> int -> int -> bool
(** [sweep items] runs a vector-clock forward sweep over an access log
    (aids must equal indices) and returns the hb predicate
    [knows : aid -> aid -> bool].  Models RC11 synchronisation:
    release/acquire message clocks, release sequences through updates,
    fence semantics, SC-fence total order, and fork/join edges.
    Irreflexive use only. *)

(** {1 Mazurkiewicz order over machine steps} *)

type steps
(** The analysed dependency structure of one execution's (tid,
    footprint) step sequence. *)

val analyze_steps : (int * footprint) array -> steps
(** One vector clock per step: the transitive closure of per-thread
    program order plus footprint dependence, restricted to execution
    order. *)

val hb : steps -> int -> int -> bool
(** [hb s i j]: step [i] is trace-ordered before step [j].  O(1). *)

val races : ?from:int -> steps -> (int * int) list
(** Reversible races: dependent different-thread pairs [(i, j)], [i < j],
    with no intermediate trace path [i ->hb w ->hb j] — exactly the
    pairs whose reversal reaches a new Mazurkiewicz trace.  [from]
    restricts to races whose later member is at index [>= from].
    Sorted by later member, then earlier. *)

val step_tid : steps -> int -> int
val step_fp : steps -> int -> footprint
val n_steps : steps -> int
