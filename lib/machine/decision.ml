open Compass_rmc

(* The typed decision trace: every nondeterministic choice the machine
   makes — scheduling, read selection, CAS satisfaction, timestamp
   placement — as one record carrying what was decided, how wide the
   choice was, where in the program it happened, and (for reads) the
   reads-from provenance of the message actually returned.  See
   decision.mli. *)

type kind =
  | Sched of int
  | Read of Loc.t
  | Await of Loc.t
  | Cas of Loc.t
  | Ts of Loc.t
  | Opaque

type rf = { rf_ts : Timestamp.t; rf_wtid : int }

type t = {
  choice : int;
  arity : int;
  mutable kind : kind;
  mutable rf : rf option;
  mutable site : string option;
}

type trace = t array

let make ?(kind = Opaque) ?site ~choice ~arity () =
  { choice; arity; kind; rf = None; site }

let opaque choice = { choice; arity = 0; kind = Opaque; rf = None; site = None }
let of_ints s = Array.map opaque s
let choices (tr : trace) = Array.map (fun d -> d.choice) tr
let arities (tr : trace) = Array.map (fun d -> d.arity) tr

(* Same decision site, another alternative: keep kind/site, drop the
   provenance (it described the old choice). *)
let resolve d choice = { d with choice; rf = None }
let bumped d = resolve d (d.choice + 1)
let zeroed d = resolve d 0
let set_rf d ~ts ~wtid = d.rf <- Some { rf_ts = ts; rf_wtid = wtid }

let equal_kind a b =
  match (a, b) with
  | Sched x, Sched y -> x = y
  | Read x, Read y | Await x, Await y | Cas x, Cas y | Ts x, Ts y ->
      Loc.equal x y
  | Opaque, Opaque -> true
  | _ -> false

let equal a b =
  a.choice = b.choice && a.arity = b.arity && equal_kind a.kind b.kind
  && a.rf = b.rf && a.site = b.site

let equal_trace a b = Array.length a = Array.length b && Array.for_all2 equal a b

let strip_trailing_zeros (tr : trace) =
  let n = ref (Array.length tr) in
  while !n > 0 && tr.(!n - 1).choice = 0 do
    decr n
  done;
  Array.sub tr 0 !n

let measure (tr : trace) =
  (Array.length tr, Array.fold_left (fun acc d -> acc + d.choice) 0 tr)

(* -- pretty-printing ---------------------------------------------------------- *)

let pp_kind ppf = function
  | Sched t -> if t < 0 then Format.fprintf ppf "sched" else Format.fprintf ppf "sched T%d" t
  | Read l -> Format.fprintf ppf "read %a" Loc.pp l
  | Await l -> Format.fprintf ppf "await %a" Loc.pp l
  | Cas l -> Format.fprintf ppf "cas %a" Loc.pp l
  | Ts l -> Format.fprintf ppf "ts %a" Loc.pp l
  | Opaque -> Format.fprintf ppf "?"

let pp ppf d =
  Format.fprintf ppf "%a %d" pp_kind d.kind d.choice;
  if d.arity > 0 then Format.fprintf ppf "/%d" d.arity;
  (match d.site with Some s -> Format.fprintf ppf " [%s]" s | None -> ());
  match d.rf with
  | Some r ->
      Format.fprintf ppf " <- w@%a" Timestamp.pp r.rf_ts;
      if r.rf_wtid >= 0 then Format.fprintf ppf " by T%d" r.rf_wtid
      else Format.fprintf ppf " (init)"
  | None -> ()

let pp_trace ppf (tr : trace) =
  Format.fprintf ppf "@[<v>";
  Array.iteri
    (fun i d -> Format.fprintf ppf "%3d  %a@," i pp d)
    tr;
  Format.fprintf ppf "@]"

(* -- serialization ------------------------------------------------------------ *)

(* v2 line grammar (one trace per line, tokens space-separated):

     line   := "v2" (" " token)*
     token  := kind ":" choice "/" arity rf?
     kind   := "s" tid | "r" key | "w" key | "c" key | "t" key | "o"
     rf     := "@" ts "." wtid

   where [key] is {!Loc.key} (locations round-trip as ints; the global
   name registry restores printable names).  A line that does not start
   with "v2" is a v1 script: plain space-separated choice ints. *)

let token_of d =
  let b = Buffer.create 16 in
  (match d.kind with
  | Sched t -> Buffer.add_string b (Printf.sprintf "s%d" t)
  | Read l -> Buffer.add_string b (Printf.sprintf "r%d" (Loc.key l))
  | Await l -> Buffer.add_string b (Printf.sprintf "w%d" (Loc.key l))
  | Cas l -> Buffer.add_string b (Printf.sprintf "c%d" (Loc.key l))
  | Ts l -> Buffer.add_string b (Printf.sprintf "t%d" (Loc.key l))
  | Opaque -> Buffer.add_char b 'o');
  Buffer.add_string b (Printf.sprintf ":%d/%d" d.choice d.arity);
  (match d.rf with
  | Some r -> Buffer.add_string b (Printf.sprintf "@%d.%d" r.rf_ts r.rf_wtid)
  | None -> ());
  Buffer.contents b

let token_to s =
  let fail () = raise Exit in
  let colon = try String.index s ':' with Not_found -> fail () in
  let kind =
    if colon = 0 then fail ()
    else
      let num from = try int_of_string (String.sub s (from + 1) (colon - from - 1)) with _ -> fail () in
      match s.[0] with
      | 's' -> Sched (num 0)
      | 'r' -> Read (Loc.of_key (num 0))
      | 'w' -> Await (Loc.of_key (num 0))
      | 'c' -> Cas (Loc.of_key (num 0))
      | 't' -> Ts (Loc.of_key (num 0))
      | 'o' -> if colon = 1 then Opaque else fail ()
      | _ -> fail ()
  in
  let rest = String.sub s (colon + 1) (String.length s - colon - 1) in
  let rest, rf =
    match String.index_opt rest '@' with
    | None -> (rest, None)
    | Some at ->
        let rfs = String.sub rest (at + 1) (String.length rest - at - 1) in
        let dot = try String.index rfs '.' with Not_found -> fail () in
        let ts = try int_of_string (String.sub rfs 0 dot) with _ -> fail () in
        let wtid =
          try int_of_string (String.sub rfs (dot + 1) (String.length rfs - dot - 1))
          with _ -> fail ()
        in
        (String.sub rest 0 at, Some { rf_ts = ts; rf_wtid = wtid })
  in
  let slash = try String.index rest '/' with Not_found -> fail () in
  let choice = try int_of_string (String.sub rest 0 slash) with _ -> fail () in
  let arity =
    try int_of_string (String.sub rest (slash + 1) (String.length rest - slash - 1))
    with _ -> fail ()
  in
  { choice; arity; kind; rf; site = None }

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

let to_line (tr : trace) =
  String.concat " " ("v2" :: (Array.to_list tr |> List.map token_of))

let of_line s =
  match split_ws s with
  | "v2" :: tokens -> (
      try Some (Array.of_list (List.map token_to tokens)) with Exit -> None)
  | [] -> Some [||]
  | tokens -> (
      (* v1: plain space-separated choice ints *)
      try Some (of_ints (Array.of_list (List.map int_of_string tokens)))
      with _ -> None)

(* -- JSON (emit-only; replays re-derive provenance from the choices) -- *)

let kind_to_json = function
  | Sched t -> [ ("kind", Compass_util.Jsonout.Str "sched"); ("tid", Compass_util.Jsonout.Int t) ]
  | Read l -> [ ("kind", Compass_util.Jsonout.Str "read"); ("loc", Compass_util.Jsonout.Str (Format.asprintf "%a" Loc.pp l)) ]
  | Await l -> [ ("kind", Compass_util.Jsonout.Str "await"); ("loc", Compass_util.Jsonout.Str (Format.asprintf "%a" Loc.pp l)) ]
  | Cas l -> [ ("kind", Compass_util.Jsonout.Str "cas"); ("loc", Compass_util.Jsonout.Str (Format.asprintf "%a" Loc.pp l)) ]
  | Ts l -> [ ("kind", Compass_util.Jsonout.Str "ts"); ("loc", Compass_util.Jsonout.Str (Format.asprintf "%a" Loc.pp l)) ]
  | Opaque -> [ ("kind", Compass_util.Jsonout.Str "opaque") ]

let to_json d =
  Compass_util.Jsonout.Obj
    ([ ("choice", Compass_util.Jsonout.Int d.choice);
       ("arity", Compass_util.Jsonout.Int d.arity) ]
    @ kind_to_json d.kind
    @ (match d.site with
      | Some s -> [ ("site", Compass_util.Jsonout.Str s) ]
      | None -> [])
    @
    match d.rf with
    | Some r ->
        [ ("rf_ts", Compass_util.Jsonout.Int r.rf_ts);
          ("rf_wtid", Compass_util.Jsonout.Int r.rf_wtid) ]
    | None -> [])

let trace_to_json (tr : trace) =
  Compass_util.Jsonout.List (Array.to_list tr |> List.map to_json)
