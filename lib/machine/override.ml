open Compass_rmc

(* Mode overrides: a mapping from site labels to weakened access modes or
   fence replacements, applied by the machine just before it executes an
   instruction.  This is how the synchronization audit runs *mutants*: a
   mutant is not a separate copy of the data structure's code, it is the
   original program executed under an override — so a mutant counterexample
   can be replayed bit-for-bit with [compass replay --weaken site=mode].

   Overrides only apply to labeled operations (an unlabeled op has no
   address), and only strengthen-to-weaken is meaningful: the audit never
   asks for Na (racy-by-construction mutants are a different experiment,
   see Msqueue_weak), but the machine does not police directions — replay
   must be able to reproduce whatever the audit ran. *)

type fence_action = Weaken_fence of Mode.fence | Drop_fence

type t = {
  accesses : (string * Mode.access) list;  (** site -> replacement mode *)
  fences : (string * fence_action) list;  (** site -> replacement / drop *)
}

let empty = { accesses = []; fences = [] }
let is_empty t = t.accesses = [] && t.fences = []
let weaken_access site mode t = { t with accesses = (site, mode) :: t.accesses }

let weaken_fence site fence t =
  { t with fences = (site, Weaken_fence fence) :: t.fences }

let drop_fence site t = { t with fences = (site, Drop_fence) :: t.fences }

let access t ~site mode =
  match site with
  | None -> mode
  | Some s -> ( match List.assoc_opt s t.accesses with Some m -> m | None -> mode)

(* [None] means the fence is dropped (the op becomes a yield). *)
let fence t ~site f =
  match site with
  | None -> Some f
  | Some s -> (
      match List.assoc_opt s t.fences with
      | Some (Weaken_fence f') -> Some f'
      | Some Drop_fence -> None
      | None -> Some f)

(* -- parsing (CLI surface: "site=rlx", "site=drop", ...) ------------------ *)

let access_of_string = function
  | "na" -> Some Mode.Na
  | "rlx" -> Some Mode.Rlx
  | "acq" -> Some Mode.Acq
  | "rel" -> Some Mode.Rel
  | "acq_rel" | "acqrel" -> Some Mode.AcqRel
  | _ -> None

let fence_of_string = function
  | "fence_acq" | "facq" -> Some Mode.F_acq
  | "fence_rel" | "frel" -> Some Mode.F_rel
  | "fence_acq_rel" | "facqrel" -> Some Mode.F_acqrel
  | "fence_sc" | "fsc" -> Some Mode.F_sc
  | _ -> None

(* One spec: "site=MODE" where MODE is an access mode, a fence mode, or
   "drop".  Fence sites and access sites live in one namespace, so the
   spec's right-hand side decides which table the entry lands in. *)
let add_spec t spec =
  match String.index_opt spec '=' with
  | None -> Error (Printf.sprintf "override %S: expected site=mode" spec)
  | Some i -> (
      let site = String.sub spec 0 i in
      let rhs = String.sub spec (i + 1) (String.length spec - i - 1) in
      if site = "" then Error (Printf.sprintf "override %S: empty site" spec)
      else
        match (access_of_string rhs, fence_of_string rhs, rhs) with
        | Some m, _, _ -> Ok (weaken_access site m t)
        | None, Some f, _ -> Ok (weaken_fence site f t)
        | None, None, "drop" -> Ok (drop_fence site t)
        | None, None, _ ->
            Error (Printf.sprintf "override %S: unknown mode %S" spec rhs))

let of_specs specs =
  List.fold_left
    (fun acc spec -> Result.bind acc (fun t -> add_spec t spec))
    (Ok empty) specs

let spec_strings t =
  List.rev_map
    (fun (s, m) -> Printf.sprintf "%s=%s" s (Mode.access_to_string m))
    t.accesses
  @ List.rev_map
      (fun (s, a) ->
        match a with
        | Weaken_fence f -> Format.asprintf "%s=%a" s Mode.pp_fence f
        | Drop_fence -> Printf.sprintf "%s=drop" s)
      t.fences

let pp ppf t =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Format.pp_print_string)
    (spec_strings t)
