open Compass_rmc
open Compass_event

(** The interleaving machine.

    One machine instance executes one scenario once: a deterministic solo
    setup phase (allocation, initialisation), a concurrent phase (threads
    interleaved step by step, nondeterminism resolved by an oracle), and
    an optional finale running with the join of all thread views (the
    parent after joining its children).

    Because ORC11 forbids load-buffering ([po ∪ rf] acyclic — the model's
    defining restriction, Section 1.2), an interleaving-based operational
    semantics with stale-read choices is adequate: weak behaviours come
    from reading old messages and from view-limited message views, never
    from cycles in [po ∪ rf]. *)

type config = {
  max_steps : int;  (** per concurrent phase; exceeding yields [Bounded] *)
  policy : Memory.policy;
  backend : Memory.backend;
      (** history representation; [`Flat] (default) is the fast path,
          [`Map] the differential oracle ([`Gap] policy forces [`Map]) *)
  record_trace : bool;
  record_accesses : bool;
      (** record memory accesses for the axiomatic differential check
          ({!Rc11}) *)
  overrides : Override.t;
      (** mode overrides applied by site label just before an instruction
          executes — how the synchronization audit runs weakened mutants
          of unmodified programs *)
}

val default_config : config

type thread = {
  tid : int;
  mutable prog : Value.t Prog.t;
  mutable tv : Tview.t;
  mutable finished : Value.t option;
}

type outcome =
  | Finished of Value.t array  (** all threads returned; their results *)
  | Fault of string  (** data race, uninitialised read, or program error *)
  | Blocked of string  (** deadlock on [await], or a spin loop out of fuel *)
  | Bounded  (** step budget exhausted *)
  | Pruned
      (** partial-order reduction stopped the run: the scheduled thread
          was asleep, so the subtree is a commuted copy of one already
          explored.  Only produced by {!run} with a reduction other than
          [RNone]; never counted as an execution by the explorer. *)

val pp_outcome : Format.formatter -> outcome -> unit

type reduction =
  | RNone  (** explore every interleaving the oracle asks for *)
  | RSleep
      (** Godefroid sleep sets, reconstructed from DFS sibling order
          during replay — self-contained in the machine *)
  | RDpor
      (** source-DPOR: the machine records the (tid, footprint) step log,
          honours driver-installed sleep sets ({!set_sleep}) and wakes
          sleepers on dependent steps; backtrack/wakeup-tree logic lives
          in the {!Explore} DPOR driver *)
  | RDporRf
      (** reads-from–aware source-DPOR: identical to [RDpor] inside the
          machine; the driver additionally skips atomic write/read race
          reversals (covered by read-choice alternatives) and deduplicates
          executions by reads-from class — one counted execution per
          distinct rf⊕mo graph *)

type t

val create : ?config:config -> unit -> t
val registry : t -> Registry.t
val memory : t -> Memory.t
val trace : t -> Trace.entry list

val accesses : t -> Access.t list
(** recorded memory accesses (oldest first), when [record_accesses] is on *)

val steps : t -> int
val new_graph : t -> name:string -> Graph.t

val solo : ?tid:int -> t -> Value.t Prog.t -> Value.t
(** run a program to completion deterministically on a pseudo-thread
    sharing the setup view; for setup (before {!spawn}) and finale (after
    {!run}).
    @raise Failure on divergence or a blocked await *)

val alloc : t -> ?init:Value.t -> name:string -> int -> Loc.t
(** convenience: allocate during setup *)

val spawn : t -> Value.t Prog.t list -> unit
(** install the concurrent threads, each starting from the setup view *)

val spawned_progs : t -> Value.t Prog.t list
(** the thread programs as handed to {!spawn} (thread [i]'s tid is [i]),
    before any execution consumed them — how the static analyzer
    ({!Compass_static}) gets at a built scenario's program terms *)

val thread_view : t -> int -> Tview.t

val prime : t -> unit
(** initialise the concurrent-phase step deadline and sleep set without
    running — what {!run}[ ~resume:false] does on entry.  The incremental
    explorer primes once after build, takes the root {!snapshot}, and then
    always runs with [~resume:true]. *)

val run :
  ?reduction:reduction ->
  ?resume:bool ->
  ?on_step:(unit -> unit) ->
  ?on_sched:(unit -> unit) ->
  t ->
  Oracle.t ->
  outcome
(** interleave the spawned threads to completion (or fault / block /
    budget).  With [~reduction:RSleep] the scheduler maintains a sleep
    set along the replayed path and stops with {!Pruned} as soon as the
    decision script schedules a sleeping thread — i.e. as soon as the run
    would only commute independent steps of an already-explored subtree.
    Two pending steps are independent when they touch different locations
    or are both reads (and neither is an allocation or SC fence); see
    DESIGN.md, "Parallel exploration & reduction".  With
    [~reduction:RDpor] the sleep sets come from the driver ({!set_sleep})
    instead of sibling order, and every concurrent-phase step is logged
    ({!dpor_steps}) for the dependency analysis.

    [resume] (default off) continues a concurrent phase from a state
    installed by {!restore}: the step deadline and sleep set of the
    checkpointed phase are kept instead of being re-initialised, so the
    resumed run bounds and prunes exactly like a from-the-root replay of
    the same decision script.  [on_step] is called after every completed
    machine step; [on_sched] is called at the settled step boundary just
    before a scheduling choice with more than one alternative is
    consumed.  Both are the incremental explorer's checkpoint hooks. *)

(** {1 DPOR driver hooks}

    Used by the {!Explore} source-DPOR driver; state observed or
    installed at settled step boundaries (inside an oracle pick or an
    [on_sched] callback). *)

val dpor_steps : t -> (int * Deps.footprint) array
(** the (tid, footprint) log of every concurrent-phase step taken along
    the current path, oldest first — only maintained under [RDpor] *)

val dpor_depth : t -> int
(** [Array.length (dpor_steps m)] without building the array *)

val get_sleep : t -> (int * Deps.footprint) list
val set_sleep : t -> (int * Deps.footprint) list -> unit

val pending_footprint : t -> int -> Deps.footprint
(** footprint of the next operation of the thread with this tid *)

type snapshot
(** a value-copy of all machine state (threads, memory, graphs, views,
    sleep set, DPOR step log), sharing persistent substructure:
    O(#locations + #graphs + #threads) pointers.  Valid to take between
    machine steps. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** roll the machine — including its memory, registry and thread records,
    all mutated in place so handles captured at build time stay valid —
    back to [snapshot].  Follow with {!run}[ ~resume:true] to re-explore
    from that point under a different decision suffix. *)

val join_views : t -> unit
(** join all thread views into the setup view (parent joins children) *)

val finale : t -> Value.t Prog.t -> Value.t
(** {!join_views} then {!solo} — e.g. to read results non-atomically
    without racing *)
