(** An independent RC11-style axiomatic checker for differential
    validation of the operational semantics.

    From the machine's recorded accesses it rebuilds po, rf, mo, fr,
    sw (release/acquire with release sequences, fence-based
    synchronisation, SC-fence total order) and hb, and checks:
    coherence (per-location [hb|loc ∪ rf ∪ mo ∪ fr] acyclicity), RMW
    atomicity, [po ∪ rf] acyclicity (ORC11's defining restriction), and
    hb-ordering of non-atomic conflicts.  A violation means the
    view-based machine and the declarative model disagree. *)

val check : Access.t list -> string list
(** axiom violations of one recorded execution; [[]] = consistent *)

val races : Access.t list -> (int * int) list
(** the race clause alone: aid pairs (low, high) of conflicting accesses
    (same location, ≥1 write, ≥1 non-atomic, different threads) that hb
    orders in neither direction.  The analysis-side race detector
    ({!Compass_analysis}) uses this as its differential oracle. *)
