open Compass_rmc
open Compass_event

(* An independent RC11-style axiomatic checker, for differential
   validation of the operational semantics.

   The machine (with [record_accesses]) logs every memory access and
   fence; this module rebuilds the execution's relations — po, rf (from
   the timestamps reads chose), mo (the timestamp order itself), fr,
   sw (release/acquire synchronisation including release sequences,
   fence-based synchronisation, and the SC-fence total order), and
   hb = (po ∪ asw ∪ sw)+ — and checks the axioms the model owes us:

   - COHERENCE:  per location, hb|loc ∪ rf ∪ mo ∪ fr is acyclic;
   - ATOMICITY:  no write intervenes (in mo) between an update and the
     write it read from;
   - NO-LB:      po ∪ rf is acyclic — ORC11's defining restriction;
   - RACES:      conflicting accesses involving a non-atomic are
     hb-ordered (the machine's race detector must have caught anything
     else, so non-faulting executions must pass).

   Any violation here means the view machinery and the declarative model
   disagree — the differential tests run this on every execution of the
   litmus battery and the data-structure workloads. *)

type t = {
  items : Access.t array;  (** indexed by aid *)
  n : int;
}

let of_accesses accesses =
  let items = Array.of_list accesses in
  Array.iteri (fun i a -> assert (Access.aid a = i)) items;
  { items; n = Array.length items }

let is_write = function
  | Access.Access { kind = Access.Store | Access.Update; _ } -> true
  | _ -> false

let is_update = function
  | Access.Access { kind = Access.Update; _ } -> true
  | _ -> false

let is_na = function
  | Access.Access { mode = Mode.Na; _ } -> true
  | _ -> false

let loc_of = function Access.Access a -> Some a.loc | Access.Fence _ -> None

(* -- base relations ----------------------------------------------------------- *)

(* Program order: per thread, in recording order. *)
let po_pairs x =
  let last : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let acc = ref [] in
  Array.iter
    (fun a ->
      let tid = Access.tid a and aid = Access.aid a in
      (match Hashtbl.find_opt last tid with
      | Some prev -> acc := (prev, aid) :: !acc
      | None -> ());
      Hashtbl.replace last tid aid)
    x.items;
  !acc

(* Additional synchronises-with: fork (the last setup access before each
   thread's first access) and join (each thread's last access before the
   first post-join setup access).  Setup runs as tid -1, solo, strictly
   before spawn and after join. *)
let asw_pairs x =
  let firsts : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let lasts : (int, int) Hashtbl.t = Hashtbl.create 8 in
  Array.iter
    (fun a ->
      let tid = Access.tid a and aid = Access.aid a in
      if not (Hashtbl.mem firsts tid) then Hashtbl.replace firsts tid aid;
      Hashtbl.replace lasts tid aid)
    x.items;
  let acc = ref [] in
  Hashtbl.iter
    (fun tid first ->
      if tid >= 0 then begin
        (* fork: the setup access just before this thread's first. *)
        let best = ref (-1) in
        Array.iter
          (fun a ->
            if Access.tid a = -1 && Access.aid a < first && Access.aid a > !best
            then best := Access.aid a)
          x.items;
        if !best >= 0 then acc := (!best, first) :: !acc
      end)
    firsts;
  Hashtbl.iter
    (fun tid last ->
      if tid >= 0 then begin
        (* join: the first setup access after this thread's last. *)
        let best = ref max_int in
        Array.iter
          (fun a ->
            if Access.tid a = -1 && Access.aid a > last && Access.aid a < !best
            then best := Access.aid a)
          x.items;
        if !best < max_int then acc := (last, !best) :: !acc
      end)
    lasts;
  !acc

(* Writes by (loc, timestamp): the rf sources. *)
let write_index x =
  let tbl : (Loc.t * Timestamp.t, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun a ->
      match a with
      | Access.Access ({ write_ts = Some ts; _ } as acc) ->
          Hashtbl.replace tbl (acc.loc, ts) acc.aid
      | _ -> ())
    x.items;
  tbl

(* Reads-from: read r with read_ts = ts at loc reads the write at
   (loc, ts).  Missing sources (possible only through a recording bug)
   are reported. *)
let rf_pairs x =
  let widx = write_index x in
  let missing = ref [] in
  let acc = ref [] in
  Array.iter
    (fun a ->
      match a with
      | Access.Access ({ read_ts = Some ts; _ } as r) -> (
          match Hashtbl.find_opt widx (r.loc, ts) with
          | Some w -> acc := (w, r.aid) :: !acc
          | None ->
              missing :=
                Printf.sprintf "read %d has no rf source at ts %d" r.aid ts
                :: !missing)
      | _ -> ())
    x.items;
  (!acc, !missing)

(* Modification order: per location, writes by timestamp. *)
let mo_pairs x =
  let by_loc : (Loc.t, (Timestamp.t * int) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  Array.iter
    (fun a ->
      match a with
      | Access.Access ({ write_ts = Some ts; _ } as w) ->
          let l =
            match Hashtbl.find_opt by_loc w.loc with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.replace by_loc w.loc l;
                l
          in
          l := (ts, w.aid) :: !l
      | _ -> ())
    x.items;
  Hashtbl.fold
    (fun _ l acc ->
      let sorted = List.sort compare !l in
      let rec consecutive = function
        | (_, a) :: ((_, b) :: _ as rest) -> (a, b) :: consecutive rest
        | _ -> []
      in
      consecutive sorted @ acc)
    by_loc []

(* -- synchronises-with -------------------------------------------------------- *)

let mode_geq_rel = function Mode.Rel | Mode.AcqRel -> true | _ -> false
let mode_geq_acq = function Mode.Acq | Mode.AcqRel -> true | _ -> false
let mode_atomic = function Mode.Na -> false | _ -> true

let rel_fence = function
  | Mode.F_rel | Mode.F_acqrel | Mode.F_sc -> true
  | _ -> false

let acq_fence = function
  | Mode.F_acq | Mode.F_acqrel | Mode.F_sc -> true
  | _ -> false

(* Release point of an atomic write: itself if rel; else the nearest
   release fence po-before it (same thread). *)
let release_point x (w : int) =
  match x.items.(w) with
  | Access.Access a when mode_geq_rel a.mode -> Some w
  | Access.Access a when mode_atomic a.mode ->
      let best = ref None in
      Array.iter
        (fun item ->
          match item with
          | Access.Fence f
            when f.tid = a.tid && f.aid < w && rel_fence f.fence -> (
              match !best with
              | Some b when b > f.aid -> ()
              | _ -> best := Some f.aid)
          | _ -> ())
        x.items;
      !best
  | _ -> None

(* Acquire point of an atomic read: itself if acq; else the nearest
   acquire fence po-after it. *)
let acquire_point x (r : int) =
  match x.items.(r) with
  | Access.Access a when mode_geq_acq a.mode -> Some r
  | Access.Access a when mode_atomic a.mode ->
      let best = ref None in
      Array.iter
        (fun item ->
          match item with
          | Access.Fence f
            when f.tid = a.tid && f.aid > r && acq_fence f.fence -> (
              match !best with
              | Some b when b < f.aid -> ()
              | _ -> best := Some f.aid)
          | _ -> ())
        x.items;
      !best
  | _ -> None

(* Release sequence of write w: w plus updates reachable by rf chains
   among updates. *)
let release_sequence x rf (w : int) =
  let rec grow set =
    let next =
      List.filter_map
        (fun (src, dst) ->
          if List.mem src set && is_update x.items.(dst) && not (List.mem dst set)
          then Some dst
          else None)
        rf
    in
    if next = [] then set else grow (next @ set)
  in
  grow [ w ]

let sw_pairs x rf =
  let acc = ref [] in
  (* rel/acq chains through release sequences. *)
  Array.iter
    (fun a ->
      if is_write a && not (is_na a) then
        let w = Access.aid a in
        match release_point x w with
        | None -> ()
        | Some p ->
            let rs = release_sequence x rf w in
            List.iter
              (fun (src, r) ->
                if List.mem src rs && not (is_na x.items.(r)) then
                  match acquire_point x r with
                  | Some q when p <> q -> acc := (p, q) :: !acc
                  | _ -> ())
              rf)
    x.items;
  (* SC fences are totally ordered by their execution order. *)
  let sc_fences =
    Array.to_list x.items
    |> List.filter_map (function
         | Access.Fence f when f.fence = Mode.F_sc -> Some f.aid
         | _ -> None)
  in
  let rec chain = function
    | a :: (b :: _ as rest) ->
        acc := (a, b) :: !acc;
        chain rest
    | _ -> ()
  in
  chain sc_fences;
  !acc

(* -- races --------------------------------------------------------------------

   The race clause, factored out so the analysis-side race detector
   ({!Compass_analysis.Races}) can use it as a differential oracle: two
   accesses race when they conflict (same location, at least one write, at
   least one non-atomic, different threads) and hb orders them in neither
   direction.  [hb] is the transitive closure predicate over aids. *)

let race_pairs x hb =
  let nodes = List.init x.n (fun i -> i) in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if a >= b then None
          else
            match (x.items.(a), x.items.(b)) with
            | Access.Access ia, Access.Access ib
              when Loc.equal ia.loc ib.loc
                   && (is_write x.items.(a) || is_write x.items.(b))
                   && (is_na x.items.(a) || is_na x.items.(b))
                   && ia.tid <> ib.tid ->
                if not (hb a b || hb b a) then Some (a, b) else None
            | _ -> None)
        nodes)
    nodes

let hb_of x =
  let nodes = List.init x.n (fun i -> i) in
  let po = po_pairs x in
  let asw = asw_pairs x in
  let rf, _missing = rf_pairs x in
  let sw = sw_pairs x rf in
  Order.closure (Order.of_pairs ~nodes (po @ asw @ sw))

let races accesses =
  let x = of_accesses accesses in
  race_pairs x (hb_of x)

(* -- the axioms ---------------------------------------------------------------- *)

let check accesses =
  let x = of_accesses accesses in
  let nodes = List.init x.n (fun i -> i) in
  let po = po_pairs x in
  let asw = asw_pairs x in
  let rf, missing = rf_pairs x in
  let mo = mo_pairs x in
  let violations = ref (List.map (fun s -> "rc11-rf: " ^ s) missing) in
  (* NO-LB: po ∪ rf acyclic (ORC11's defining restriction). *)
  let porf = Order.of_pairs ~nodes (po @ rf) in
  if not (Order.acyclic porf) then
    violations := "rc11-no-lb: po ∪ rf has a cycle" :: !violations;
  (* hb = (po ∪ asw ∪ sw)+ *)
  let sw = sw_pairs x rf in
  let hb_rel = Order.of_pairs ~nodes (po @ asw @ sw) in
  if not (Order.acyclic hb_rel) then
    violations := "rc11-hb: hb has a cycle" :: !violations;
  let hb = Order.closure hb_rel in
  (* fr = rf⁻¹ ; mo (per location, via timestamps). *)
  let ts_of_write w =
    match x.items.(w) with
    | Access.Access { write_ts = Some ts; _ } -> ts
    | _ -> assert false
  in
  let fr =
    List.concat_map
      (fun (w, r) ->
        let l = Option.get (loc_of x.items.(w)) in
        let ts = ts_of_write w in
        List.filter_map
          (fun a ->
            match a with
            | Access.Access { write_ts = Some ts'; loc; aid; _ }
              when Loc.equal loc l && ts' > ts && aid <> r ->
                Some (r, aid)
            | _ -> None)
          (Array.to_list x.items))
      rf
  in
  (* COHERENCE: per location, hb|loc ∪ rf ∪ mo ∪ fr acyclic. *)
  let locs =
    Array.to_list x.items |> List.filter_map loc_of |> List.sort_uniq Loc.compare
  in
  List.iter
    (fun l ->
      let on_loc aid =
        match loc_of x.items.(aid) with
        | Some l' -> Loc.equal l l'
        | None -> false
      in
      let lnodes = List.filter on_loc nodes in
      let hb_loc =
        List.concat_map
          (fun a -> List.filter_map (fun b -> if a <> b && hb a b then Some (a, b) else None) lnodes)
          lnodes
      in
      let here ps = List.filter (fun (a, b) -> on_loc a && on_loc b) ps in
      let coh = Order.of_pairs ~nodes:lnodes (hb_loc @ here rf @ here mo @ here fr) in
      if not (Order.acyclic coh) then
        violations :=
          Format.asprintf "rc11-coherence: cycle at %a" Loc.pp l :: !violations)
    locs;
  (* ATOMICITY: no write in mo between an update and its rf source. *)
  List.iter
    (fun (w, u) ->
      if is_update x.items.(u) then begin
        let l = Option.get (loc_of x.items.(w)) in
        let ts_w = ts_of_write w and ts_u = ts_of_write u in
        Array.iter
          (fun a ->
            match a with
            | Access.Access { write_ts = Some ts'; loc; aid; _ }
              when Loc.equal loc l && ts' > ts_w && ts' < ts_u && aid <> u ->
                violations :=
                  Printf.sprintf
                    "rc11-atomicity: write %d intervenes between %d and update %d"
                    aid w u
                  :: !violations
            | _ -> ())
          x.items
      end)
    rf;
  (* RACES: conflicting accesses involving a non-atomic must be
     hb-ordered.  (Initialisation writes by tid -1 are setup and always
     hb-before via asw.) *)
  List.iter
    (fun (a, b) ->
      violations :=
        Printf.sprintf "rc11-race: %d and %d unordered" a b :: !violations)
    (race_pairs x hb);
  List.rev !violations
