(** The execution machine: a program DSL over the ORC11 substrate
    ({!Prog}), commit annotations realising logically-atomic commit points
    ({!Commit}), the interleaving interpreter ({!Machine}), decision oracles
    ({!Oracle}), traces ({!Trace}), and the stateless model-checking drivers
    ({!Explore}). *)

module Prog = Prog
module Commit = Commit
module Deps = Deps
module Decision = Decision
module Oracle = Oracle
module Trace = Trace
module Access = Access
module Override = Override
module Rc11 = Rc11
module Machine = Machine
module Dpor = Dpor
module Explore = Explore
