(** A minimal JSON emitter for the analysis reports ([compass analyze
    ... --json]) that CI archives as artifacts.  Strings are escaped;
    output is pretty-printed with a trailing newline. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
val int_array : int array -> t
val str_list : string list -> t
val opt : ('a -> t) -> 'a option -> t
