open Compass_machine

val with_accesses :
  Explore.scenario -> (Access.t list -> unit) -> Explore.scenario
(** run the collector on every execution's recorded access log, just
    before the scenario's own judge.  Requires a config with
    [record_accesses = true] and a sequential driver ([jobs = 1] — under
    {!Explore.pdfs} the collector would run concurrently on several
    domains). *)
