open Compass_dstruct
open Compass_clients

(* Audit probes: which client scenarios exercise a structure's labeled
   sites.  Each probe pairs the MP client — the paper's Figure 1, whose
   judge demands the release/acquire flag transfer — with a small
   symmetric workload that exercises the contended paths MP cannot reach
   (competing enqueuers hitting the tail-help path, competing dequeuers
   hitting the head-CAS release).  Only sites a probe exercises are
   audited; verdicts are relative to these clients. *)

type t = {
  key : string;
  description : string;
  scenarios : (unit -> Compass_machine.Explore.scenario) list;
}

let mp_queue factory () = Mp.make factory (Mp.fresh_stats ())
let mp_stack factory () = Mp_stack.make factory (Mp_stack.fresh_stats ())

let wl_queue factory () =
  Harness.queue_workload factory ~enqers:2 ~deqers:1 ~ops:1 ()

let wl_stack factory () =
  Harness.stack_workload factory ~pushers:2 ~poppers:1 ~ops:1 ()

let all =
  [
    {
      key = "ms";
      description =
        "Michael-Scott queue (release-acquire) under MP and a 2-enqueuer \
         workload";
      scenarios =
        [ mp_queue Msqueue.instantiate; wl_queue Msqueue.instantiate ];
    };
    {
      key = "ms-fences";
      description =
        "Michael-Scott queue (relaxed accesses + fences) under MP and a \
         2-enqueuer workload";
      scenarios =
        [
          mp_queue Msqueue_fences.instantiate;
          wl_queue Msqueue_fences.instantiate;
        ];
    };
    {
      key = "ms-weak";
      description =
        "the checked-in publication-relaxed Michael-Scott mutant (its \
         baseline must fail)";
      scenarios = [ mp_queue Msqueue_weak.instantiate ];
    };
    {
      key = "hw";
      description = "Herlihy-Wing queue (rel enq / acq deq) under MP";
      scenarios = [ mp_queue Hwqueue.instantiate ];
    };
    {
      key = "treiber";
      description =
        "Treiber stack under stack-MP and a 2-pusher workload";
      scenarios =
        [ mp_stack Treiber.instantiate; wl_stack Treiber.instantiate ];
    };
    {
      key = "lock-queue";
      description = "coarse lock-based queue (SC baseline) under MP";
      scenarios = [ mp_queue Lockqueue.instantiate ];
    };
  ]

let find key = List.find_opt (fun p -> p.key = key) all
let keys () = List.map (fun p -> p.key) all
