open Compass_rmc
open Compass_machine
open Compass_util

(* The mode-necessity audit.

   For every labeled atomic access site (and every labeled fence) a
   probe's scenarios exercise, generate the strictly weaker mutants —
   acq_rel -> acq / rel -> rlx for accesses, weaker-or-dropped for
   fences, never down to non-atomic — and re-run bounded exploration on
   the *unmodified* program under a mode {!Override}.  A mutant that
   witnesses a violation proves that much strength is load-bearing; a
   mutant whose exploration completes with no violation proves the
   original mode over-strong for these clients.

   The verdict for a site comes from its *weakest* mutant (rlx, or a
   dropped fence):

   - [Necessary]: the weakest mutant violates — with the lexicographically
     least violating decision script as a counterexample, replayable via
     [compass replay --weaken site=mode --script ...];
   - [Over_strong]: the weakest mutant explored its whole tree without a
     violation — the site could be demoted outright;
   - [Unknown]: the budget ran out before either;
   - [Minimal]: the site is already relaxed; there is nothing to weaken.

   Intermediate mutants refine a [Necessary] verdict: a site can be
   necessary as a whole yet safely lose half its strength (e.g. an
   acq_rel CAS whose rel half is all that matters here) — the weakest
   mutant that explored safely is reported as [weakest_safe].

   Verdicts are relative to the probe's clients and bounds, like every
   claim this tool makes: [Over_strong] means "no client in this probe,
   within these bounds, distinguishes the weaker mode" — the paper's
   per-client notion of sufficient synchronisation, not a proof about
   all clients. *)

type site_kind = Access_site of Mode.access | Fence_site of Mode.fence

let kind_to_string = function
  | Access_site m -> Mode.access_to_string m
  | Fence_site f -> Format.asprintf "%a" Mode.pp_fence f

type weakening = To_mode of Mode.access | To_fence of Mode.fence | Drop

let weakening_to_string = function
  | To_mode m -> Mode.access_to_string m
  | To_fence f -> Format.asprintf "%a" Mode.pp_fence f
  | Drop -> "drop"

let spec_of site w = Printf.sprintf "%s=%s" site (weakening_to_string w)

(* Strictly weaker alternatives, strongest first (so the *last* entry is
   the weakest — the verdict mutant).  Atomics never weaken to na: that
   changes the program's race obligations, not just its ordering. *)
let weakenings = function
  | Access_site m -> (
      match m with
      | Mode.AcqRel -> [ To_mode Mode.Acq; To_mode Mode.Rel; To_mode Mode.Rlx ]
      | Mode.Acq | Mode.Rel -> [ To_mode Mode.Rlx ]
      | Mode.Rlx | Mode.Na -> [])
  | Fence_site f -> (
      match f with
      | Mode.F_sc -> [ To_fence Mode.F_acqrel; Drop ]
      | Mode.F_acqrel -> [ To_fence Mode.F_acq; To_fence Mode.F_rel; Drop ]
      | Mode.F_acq | Mode.F_rel -> [ Drop ])

let override_of site = function
  | To_mode m -> Override.weaken_access site m Override.empty
  | To_fence f -> Override.weaken_fence site f Override.empty
  | Drop -> Override.drop_fence site Override.empty

(* -- site discovery ----------------------------------------------------------- *)

let mode_rank = function
  | Mode.Na -> 0
  | Mode.Rlx -> 1
  | Mode.Acq | Mode.Rel -> 2
  | Mode.AcqRel -> 3

(* Run a small recorded exploration of each scenario and collect the
   labeled sites it exercises.  A site's mode is the strongest recorded
   one: a failed CAS records the read half of an acq_rel RMW as an acq
   load, and the audit must weaken the site's static mode, not a
   projection of it. *)
let discover ?(execs = 256) scenarios =
  let config = { Machine.default_config with Machine.record_accesses = true } in
  let tbl : (string, site_kind) Hashtbl.t = Hashtbl.create 32 in
  let order = ref [] in
  let note site kind =
    match Hashtbl.find_opt tbl site with
    | None ->
        Hashtbl.replace tbl site kind;
        order := site :: !order
    | Some (Access_site m0) -> (
        match kind with
        | Access_site m when mode_rank m > mode_rank m0 ->
            Hashtbl.replace tbl site kind
        | _ -> ())
    | Some (Fence_site _) -> ()
  in
  let collect accesses =
    List.iter
      (fun a ->
        match a with
        | Access.Access { site = Some s; mode; _ } -> note s (Access_site mode)
        | Access.Fence { site = Some s; fence; _ } -> note s (Fence_site fence)
        | _ -> ())
      accesses
  in
  List.iter
    (fun mk ->
      let sc = Instrument.with_accesses (mk ()) collect in
      ignore (Explore.dfs ~max_execs:execs ~config sc))
    scenarios;
  List.rev_map (fun s -> (s, Hashtbl.find tbl s)) !order

(* -- mutant exploration ------------------------------------------------------- *)

type outcome = Violated of Explore.failure | Safe | Exhausted

type mutant_result = {
  weakening : weakening;
  spec : string;  (** the [--weaken] spec that replays this mutant *)
  outcome : outcome;
  executions : int;
  scenario : string option;  (** the scenario that witnessed the violation *)
}

type options = {
  execs : int;  (** DFS budget per mutant per scenario *)
  jobs : int;
  reduce : Machine.reduction;
  discover_execs : int;
  shrink : bool;  (** delta-debug witness scripts before reporting *)
  shrink_replays : int;
}

let default_options =
  {
    execs = 100_000;
    jobs = 1;
    reduce = Machine.RSleep;
    discover_execs = 256;
    shrink = true;
    shrink_replays = 20_000;
  }

let explore_one opts override mk =
  let config =
    { Machine.default_config with Machine.overrides = override }
  in
  let sc = mk () in
  let r =
    Explore.run ~config ~jobs:opts.jobs ~reduce:opts.reduce
      ~until_violation:true
      ~mode:(Explore.Dfs { max_execs = opts.execs })
      sc
  in
  (sc.Explore.name, r)

(* Shrink a witness script before reporting it.  Verdicts never depend on
   the script, only on whether a violation exists; a 1-minimal script is
   what a human replays.  The shrinker preserves the exact violation
   message under the same overrides, and hands the script back unchanged
   if it somehow fails to reproduce, so witnesses stay replayable. *)
let shrink_failure opts override mk (f : Explore.failure) =
  if not opts.shrink then f
  else
    let config =
      { Machine.default_config with Machine.overrides = override }
    in
    let _, script =
      Compass_fuzz.Shrink.minimize ~config ~max_replays:opts.shrink_replays
        ~scenario:(mk ()) ~message:f.Explore.message f.Explore.trace
    in
    { f with Explore.trace = script }

let run_mutant opts scenarios site w =
  let override = override_of site w in
  let rec go execs incomplete = function
    | [] ->
        {
          weakening = w;
          spec = spec_of site w;
          outcome = (if incomplete then Exhausted else Safe);
          executions = execs;
          scenario = None;
        }
    | mk :: rest -> (
        let name, r = explore_one opts override mk in
        match r.Explore.violations with
        | f :: _ ->
            {
              weakening = w;
              spec = spec_of site w;
              outcome = Violated (shrink_failure opts override mk f);
              executions = execs + r.Explore.executions;
              scenario = Some name;
            }
        | [] ->
            go
              (execs + r.Explore.executions)
              (incomplete || not r.Explore.complete)
              rest)
  in
  go 0 false scenarios

(* -- classification ----------------------------------------------------------- *)

type verdict =
  | Necessary of { witness : Explore.failure; weakening : weakening }
  | Over_strong of { weakening : weakening }
  | Unknown
  | Minimal

let verdict_to_string = function
  | Necessary _ -> "necessary"
  | Over_strong _ -> "over-strong"
  | Unknown -> "unknown"
  | Minimal -> "minimal"

type site_result = {
  site : string;
  kind : site_kind;
  mutants : mutant_result list;  (** strongest first; weakest last *)
  verdict : verdict;
  weakest_safe : weakening option;
      (** the weakest mutant that explored completely with no violation *)
}

let classify mutants =
  let weakest_safe =
    List.fold_left
      (fun acc m -> match m.outcome with Safe -> Some m.weakening | _ -> acc)
      None mutants
  in
  let verdict =
    match List.rev mutants with
    | [] -> Minimal
    | weakest :: _ -> (
        match weakest.outcome with
        | Violated witness -> Necessary { witness; weakening = weakest.weakening }
        | Safe -> Over_strong { weakening = weakest.weakening }
        | Exhausted -> Unknown)
  in
  (verdict, weakest_safe)

(* -- the audit ---------------------------------------------------------------- *)

type report = {
  probe : string;
  scenario_names : string list;
  budget : int;  (** per-mutant, per-scenario execution budget *)
  baseline_ok : bool;
  baseline_failure : Explore.failure option;
  sites : site_result list;
  first_violation : (int * int) option;
      (** (mutants run, executions spent) in run order up to and
          including the first violating mutant — the cost-to-first-
          verdict metric prioritization is benchmarked on *)
}

let counts r =
  List.fold_left
    (fun (n, o, u, m) s ->
      match s.verdict with
      | Necessary _ -> (n + 1, o, u, m)
      | Over_strong _ -> (n, o + 1, u, m)
      | Unknown -> (n, o, u + 1, m)
      | Minimal -> (n, o, u, m + 1))
    (0, 0, 0, 0) r.sites

(* [prioritize] lists sites to audit first (in the given order — e.g. a
   static analysis's predicted-necessary ranking); everything else keeps
   discovery order.  [verdict_first] marks sites whose *weakest* mutant
   (the verdict mutant) should run before the intermediate ones, so a
   predicted-necessary site reaches its violation without first paying
   for complete explorations of the stronger mutants.  Stored results
   are re-sorted to the canonical strongest-first order either way. *)
let run ?(options = default_options) ?(site_filter = fun _ -> true)
    ?(prioritize = []) ?(verdict_first = fun _ -> false) ?(log = fun _ -> ())
    ~probe scenarios =
  let scenario_names =
    List.map (fun mk -> (mk () : Explore.scenario).Explore.name) scenarios
  in
  (* Baseline sanity: the unmutated structure must pass its probe, or
     every verdict below would be noise. *)
  let baseline_failure =
    List.fold_left
      (fun acc mk ->
        match acc with
        | Some _ -> acc
        | None -> (
            let _, r = explore_one options Override.empty mk in
            match r.Explore.violations with
            | f :: _ -> Some (shrink_failure options Override.empty mk f)
            | [] -> None))
      None scenarios
  in
  let baseline_ok = baseline_failure = None in
  let mutants_run = ref 0
  and execs_run = ref 0
  and first_violation = ref None in
  let note_run m =
    if !first_violation = None then begin
      incr mutants_run;
      execs_run := !execs_run + m.executions;
      match m.outcome with
      | Violated _ -> first_violation := Some (!mutants_run, !execs_run)
      | _ -> ()
    end
  in
  let reorder discovered =
    let keyed = List.map (fun ((s, _) as e) -> (s, e)) discovered in
    let front = List.filter_map (fun s -> List.assoc_opt s keyed) prioritize in
    front
    @ List.filter (fun (s, _) -> not (List.mem s prioritize)) discovered
  in
  let sites =
    if not baseline_ok then []
    else
      discover ~execs:options.discover_execs scenarios
      |> List.filter (fun (s, _) -> site_filter s)
      |> reorder
      |> List.map (fun (site, kind) ->
             log (Printf.sprintf "auditing %s (%s)" site (kind_to_string kind));
             let ws = weakenings kind in
             let reversed = verdict_first site in
             let run_order = if reversed then List.rev ws else ws in
             let results =
               List.map
                 (fun w ->
                   let m = run_mutant options scenarios site w in
                   note_run m;
                   m)
                 run_order
             in
             let mutants = if reversed then List.rev results else results in
             let verdict, weakest_safe = classify mutants in
             log
               (Printf.sprintf "  -> %s" (verdict_to_string verdict));
             { site; kind; mutants; verdict; weakest_safe })
  in
  {
    probe;
    scenario_names;
    budget = options.execs;
    baseline_ok;
    baseline_failure;
    sites;
    first_violation = !first_violation;
  }

(* -- rendering ---------------------------------------------------------------- *)

let pp_script ppf script =
  Format.fprintf ppf "%s"
    (String.concat "," (Array.to_list script |> List.map string_of_int))

let pp_report ppf r =
  Format.fprintf ppf "@[<v>mode-necessity audit: %s@ clients: %s@ budget: %d executions per mutant per client@ "
    r.probe
    (String.concat ", " r.scenario_names)
    r.budget;
  (match r.baseline_failure with
  | Some f ->
      Format.fprintf ppf
        "BASELINE FAILS: %s (script %a)@ no sites audited — fix the structure (or you are auditing a known-broken mutant)@ "
        f.Explore.message pp_script (Explore.failure_script f)
  | None -> ());
  if r.baseline_ok then begin
    Format.fprintf ppf "@ %-34s %-10s %-12s %-10s@ " "site" "mode"
      "verdict" "weakenable";
    List.iter
      (fun s ->
        Format.fprintf ppf "%-34s %-10s %-12s %-10s@ " s.site
          (kind_to_string s.kind)
          (verdict_to_string s.verdict)
          (match s.weakest_safe with
          | Some w -> "to " ^ weakening_to_string w
          | None -> "-");
        List.iter
          (fun m ->
            match m.outcome with
            | Violated f ->
                Format.fprintf ppf
                  "    %s: violation after %d executions%s: %s@       replay: --weaken %s --script %a@ "
                  (weakening_to_string m.weakening)
                  m.executions
                  (match m.scenario with
                  | Some n -> Printf.sprintf " of %s" n
                  | None -> "")
                  f.Explore.message m.spec pp_script (Explore.failure_script f)
            | Safe ->
                Format.fprintf ppf
                  "    %s: exploration complete, no violation (%d executions)@ "
                  (weakening_to_string m.weakening)
                  m.executions
            | Exhausted ->
                Format.fprintf ppf
                  "    %s: budget exhausted, no violation (%d executions)@ "
                  (weakening_to_string m.weakening)
                  m.executions)
          s.mutants)
      r.sites;
    let n, o, u, m = counts r in
    Format.fprintf ppf
      "@ %d sites audited: %d necessary, %d over-strong, %d unknown, %d minimal@ "
      (List.length r.sites) n o u m;
    match r.first_violation with
    | Some (mc, ec) ->
        Format.fprintf ppf
          "first violation reached after %d mutant(s), %d executions@ " mc ec
    | None -> ()
  end;
  Format.fprintf ppf "@]"

let report_to_json r =
  let outcome_json = function
    | Violated f ->
        Jsonout.Obj
          [
            ("result", Jsonout.Str "violated");
            ("message", Jsonout.Str f.Explore.message);
            ("script", Jsonout.int_array (Explore.failure_script f));
            ("trace", Compass_machine.Decision.trace_to_json f.Explore.trace);
          ]
    | Safe -> Jsonout.Obj [ ("result", Jsonout.Str "safe") ]
    | Exhausted -> Jsonout.Obj [ ("result", Jsonout.Str "exhausted") ]
  in
  Jsonout.Obj
    [
      ("probe", Jsonout.Str r.probe);
      ("clients", Jsonout.str_list r.scenario_names);
      ("budget", Jsonout.Int r.budget);
      ("baseline_ok", Jsonout.Bool r.baseline_ok);
      ( "first_violation",
        Jsonout.opt
          (fun (mc, ec) ->
            Jsonout.Obj
              [ ("mutants", Jsonout.Int mc); ("executions", Jsonout.Int ec) ])
          r.first_violation );
      ( "baseline_failure",
        Jsonout.opt
          (fun (f : Explore.failure) ->
            Jsonout.Obj
              [
                ("message", Jsonout.Str f.Explore.message);
                ("script", Jsonout.int_array (Explore.failure_script f));
                ("trace", Compass_machine.Decision.trace_to_json f.Explore.trace);
              ])
          r.baseline_failure );
      ( "sites",
        Jsonout.List
          (List.map
             (fun s ->
               Jsonout.Obj
                 [
                   ("site", Jsonout.Str s.site);
                   ("mode", Jsonout.Str (kind_to_string s.kind));
                   ("verdict", Jsonout.Str (verdict_to_string s.verdict));
                   ( "weakest_safe",
                     Jsonout.opt
                       (fun w -> Jsonout.Str (weakening_to_string w))
                       s.weakest_safe );
                   ( "mutants",
                     Jsonout.List
                       (List.map
                          (fun m ->
                            Jsonout.Obj
                              [
                                ("weaken", Jsonout.Str m.spec);
                                ("executions", Jsonout.Int m.executions);
                                ( "scenario",
                                  Jsonout.opt (fun n -> Jsonout.Str n)
                                    m.scenario );
                                ("outcome", outcome_json m.outcome);
                              ])
                          s.mutants) );
                 ])
             r.sites) );
    ]
