open Compass_rmc
open Compass_machine
open Compass_util

(* Per-site race detection over recorded access logs.

   The detector recomputes happens-before with the vector-clock forward
   sweep of {!Deps.sweep} — a genuinely different algorithm from
   {!Rc11}'s explicit transitive closure over (po ∪ asw ∪ sw) edge
   lists — and flags conflicting access pairs (same location, at least
   one write, at least one non-atomic, different threads) that neither
   direction of hb orders.  Because the two algorithms share no code
   beyond the access log, comparing their race sets on every execution
   is a meaningful differential check; {!differential} does exactly
   that against {!Rc11.races}.

   The sweep itself lives in {!Deps} (lib/machine) since the DPOR
   engine consumes the same happens-before machinery; the semantics are
   documented there. *)

let sweep = Deps.sweep

let is_write = function
  | Access.Access { kind = Access.Store | Access.Update; _ } -> true
  | _ -> false

let is_na = function
  | Access.Access { mode = Mode.Na; _ } -> true
  | _ -> false

let detect accesses =
  let items = Array.of_list accesses in
  let knows = sweep items in
  let n = Array.length items in
  let out = ref [] in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      match (items.(a), items.(b)) with
      | Access.Access ia, Access.Access ib
        when Loc.equal ia.loc ib.loc
             && (is_write items.(a) || is_write items.(b))
             && (is_na items.(a) || is_na items.(b))
             && ia.tid <> ib.tid ->
          if not (knows a b || knows b a) then out := (a, b) :: !out
      | _ -> ()
    done
  done;
  List.rev !out

let differential accesses =
  let mine = List.sort compare (detect accesses) in
  let oracle = List.sort compare (Rc11.races accesses) in
  if mine = oracle then []
  else
    let missed = List.filter (fun p -> not (List.mem p mine)) oracle in
    let spurious = List.filter (fun p -> not (List.mem p oracle)) mine in
    List.map
      (fun (a, b) ->
        Printf.sprintf "vector-clock detector missed rc11 race (%d, %d)" a b)
      missed
    @ List.map
        (fun (a, b) ->
          Printf.sprintf "vector-clock detector reports spurious race (%d, %d)"
            a b)
        spurious

(* -- per-site aggregation ----------------------------------------------------- *)

let site_key a =
  match Access.site a with
  | Some s -> s
  | None -> (
      match a with
      | Access.Access r ->
          Format.asprintf "unlabeled@%a[tid %d]" Loc.pp r.loc r.tid
      | Access.Fence f -> Printf.sprintf "unlabeled-fence[tid %d]" f.tid)

type entry = {
  mutable pairs : int;  (** racing pairs at this site pair, all executions *)
  mutable execs : int;  (** executions with at least one such pair *)
  mutable last_exec : int;
  mutable example : string;
}

type agg = {
  mutable executions : int;
  mutable racy_executions : int;
  mutable total_pairs : int;
  mutable mismatch_count : int;
  mutable mismatches : string list;  (** first few, newest first *)
  tbl : (string * string, entry) Hashtbl.t;
  mutable order : (string * string) list;  (** first seen, reversed *)
}

let agg_create () =
  {
    executions = 0;
    racy_executions = 0;
    total_pairs = 0;
    mismatch_count = 0;
    mismatches = [];
    tbl = Hashtbl.create 16;
    order = [];
  }

let kept_mismatches = 5

let agg_add ?(oracle = true) agg accesses =
  agg.executions <- agg.executions + 1;
  let items = Array.of_list accesses in
  let pairs = detect accesses in
  if pairs <> [] then begin
    agg.racy_executions <- agg.racy_executions + 1;
    agg.total_pairs <- agg.total_pairs + List.length pairs
  end;
  List.iter
    (fun (a, b) ->
      let ka = site_key items.(a) and kb = site_key items.(b) in
      let key = if ka <= kb then (ka, kb) else (kb, ka) in
      let e =
        match Hashtbl.find_opt agg.tbl key with
        | Some e -> e
        | None ->
            let e =
              {
                pairs = 0;
                execs = 0;
                last_exec = -1;
                example =
                  Format.asprintf "%a  /  %a" Access.pp items.(a) Access.pp
                    items.(b);
              }
            in
            Hashtbl.replace agg.tbl key e;
            agg.order <- key :: agg.order;
            e
      in
      e.pairs <- e.pairs + 1;
      if e.last_exec <> agg.executions then begin
        e.last_exec <- agg.executions;
        e.execs <- e.execs + 1
      end)
    pairs;
  if oracle then
    match differential accesses with
    | [] -> ()
    | ms ->
        agg.mismatch_count <- agg.mismatch_count + List.length ms;
        List.iter
          (fun m ->
            if List.length agg.mismatches < kept_mismatches then
              agg.mismatches <- m :: agg.mismatches)
          ms

type site_pair = {
  site_a : string;
  site_b : string;
  pair_count : int;
  exec_count : int;
  example : string;
}

type summary = {
  executions : int;
  racy_executions : int;
  total_pairs : int;
  by_site : site_pair list;  (** most frequent first *)
  mismatch_count : int;  (** differential disagreements with {!Rc11.races} *)
  mismatches : string list;
}

let summary agg =
  let by_site =
    List.rev agg.order
    |> List.map (fun ((ka, kb) as key) ->
           let e = Hashtbl.find agg.tbl key in
           {
             site_a = ka;
             site_b = kb;
             pair_count = e.pairs;
             exec_count = e.execs;
             example = e.example;
           })
    |> List.stable_sort (fun a b -> compare b.pair_count a.pair_count)
  in
  {
    executions = agg.executions;
    racy_executions = agg.racy_executions;
    total_pairs = agg.total_pairs;
    by_site;
    mismatch_count = agg.mismatch_count;
    mismatches = List.rev agg.mismatches;
  }

let pp_summary ppf s =
  Format.fprintf ppf "@[<v>executions analysed   %d@ racy executions       %d@ racing pairs          %d@ rc11 disagreements    %d@ "
    s.executions s.racy_executions s.total_pairs s.mismatch_count;
  if s.by_site = [] then Format.fprintf ppf "no races detected@ "
  else begin
    Format.fprintf ppf "@ %-32s %-32s %8s %8s@ " "site a" "site b" "pairs"
      "execs";
    List.iter
      (fun p ->
        Format.fprintf ppf "%-32s %-32s %8d %8d@   e.g. %s@ " p.site_a p.site_b
          p.pair_count p.exec_count p.example)
      s.by_site
  end;
  List.iter (fun m -> Format.fprintf ppf "MISMATCH: %s@ " m) s.mismatches;
  Format.fprintf ppf "@]"

let summary_to_json s =
  Jsonout.Obj
    [
      ("executions", Jsonout.Int s.executions);
      ("racy_executions", Jsonout.Int s.racy_executions);
      ("total_pairs", Jsonout.Int s.total_pairs);
      ("rc11_mismatches", Jsonout.Int s.mismatch_count);
      ( "by_site",
        Jsonout.List
          (List.map
             (fun p ->
               Jsonout.Obj
                 [
                   ("site_a", Jsonout.Str p.site_a);
                   ("site_b", Jsonout.Str p.site_b);
                   ("pairs", Jsonout.Int p.pair_count);
                   ("executions", Jsonout.Int p.exec_count);
                   ("example", Jsonout.Str p.example);
                 ])
             s.by_site) );
      ("mismatch_samples", Jsonout.str_list s.mismatches);
    ]
