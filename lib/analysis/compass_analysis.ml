(** The synchronization analyzer: static-analysis-flavoured tooling over
    recorded executions.

    - {!Races}: a vector-clock per-site race detector, differentially
      checked against {!Compass_machine.Rc11}'s race clause;
    - {!Audit}: the mode-necessity audit — weakened mutants of each
      labeled site run as {!Compass_machine.Override}s, classified
      necessary / over-strong / unknown with replayable counterexamples;
    - {!Instrument}: scenario wrapping that hands each execution's
      access log to a collector;
    - {!Jsonout}: re-export of {!Compass_util.Jsonout}, the shared JSON
      emitter behind [--json] output. *)

module Jsonout = Compass_util.Jsonout
module Instrument = Instrument
module Races = Races
module Audit = Audit
