open Compass_machine

(* Wrap a scenario so every execution's recorded access log is handed to
   a collector when the judge runs (the machine is still positioned at
   the end of the execution there).  The exploration must run with
   [record_accesses] on, and — because collectors are plain closures —
   with [jobs = 1]: under [pdfs] the judge runs on several domains. *)

let with_accesses (s : Explore.scenario) (collect : Access.t list -> unit) =
  {
    s with
    Explore.build =
      (fun m ->
        let judge = s.Explore.build m in
        fun outcome ->
          collect (Machine.accesses m);
          judge outcome);
  }
