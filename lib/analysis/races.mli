open Compass_machine
open Compass_util

(** Per-site race detection over recorded access logs.

    Happens-before is recomputed with a vector-clock forward sweep — a
    different algorithm from {!Rc11}'s explicit transitive closure, so
    comparing the two race sets per execution ({!differential}) is a
    meaningful differential check of both.  Races are conflicting access
    pairs (same location, at least one write, at least one non-atomic,
    different threads) unordered by hb in either direction — exactly
    {!Rc11}'s race clause. *)

val detect : Access.t list -> (int * int) list
(** racing aid pairs, ascending *)

val differential : Access.t list -> string list
(** disagreements with {!Rc11.races} on the same log; [[]] = agree *)

val site_key : Access.t -> string
(** the access's site label, or a synthesised [unlabeled@loc] key *)

(** {1 Aggregation across an exploration} *)

type agg

val agg_create : unit -> agg

val agg_add : ?oracle:bool -> agg -> Access.t list -> unit
(** detect races in one execution's log and fold them in; [oracle]
    (default on) also runs {!differential} against {!Rc11.races} *)

type site_pair = {
  site_a : string;
  site_b : string;
  pair_count : int;  (** racing pairs across all executions *)
  exec_count : int;  (** executions with at least one such pair *)
  example : string;
}

type summary = {
  executions : int;
  racy_executions : int;
  total_pairs : int;
  by_site : site_pair list;  (** most frequent first *)
  mismatch_count : int;
  mismatches : string list;  (** first few differential disagreements *)
}

val summary : agg -> summary
val pp_summary : Format.formatter -> summary -> unit
val summary_to_json : summary -> Jsonout.t
