open Compass_rmc
open Compass_machine
open Compass_util

(** The mode-necessity audit.

    For each labeled atomic access site (and labeled fence) exercised by
    a probe's client scenarios, generate strictly weaker mutants — as
    mode {!Override}s over the unmodified program — and re-run bounded
    exploration.  The verdict comes from the weakest mutant: a witnessed
    violation proves the strength [Necessary] (with a replayable
    counterexample script), a completed violation-free exploration
    proves it [Over_strong] for these clients, an exhausted budget
    leaves it [Unknown], and an already-relaxed site is [Minimal].

    All verdicts are relative to the probe's clients and bounds — the
    paper's per-client notion of sufficient synchronisation. *)

type site_kind = Access_site of Mode.access | Fence_site of Mode.fence

val kind_to_string : site_kind -> string

type weakening = To_mode of Mode.access | To_fence of Mode.fence | Drop

val weakening_to_string : weakening -> string

val weakenings : site_kind -> weakening list
(** strictly weaker alternatives, strongest first (never [Na]) *)

val override_of : string -> weakening -> Override.t

val discover :
  ?execs:int -> (unit -> Explore.scenario) list -> (string * site_kind) list
(** the labeled sites a small recorded exploration of each scenario
    exercises, in first-seen order; a site's mode is the strongest
    recorded one (a failed CAS logs the read half of an RMW) *)

type outcome = Violated of Explore.failure | Safe | Exhausted

type mutant_result = {
  weakening : weakening;
  spec : string;  (** the [--weaken] spec that replays this mutant *)
  outcome : outcome;
  executions : int;
  scenario : string option;  (** the scenario that witnessed the violation *)
}

type options = {
  execs : int;  (** DFS budget per mutant per scenario *)
  jobs : int;
  reduce : Machine.reduction;
  discover_execs : int;
  shrink : bool;
      (** delta-debug witness scripts (baseline failures and [Violated]
          mutants) to 1-minimal form before reporting; verdicts are
          unchanged and witnesses still replay to the same violation *)
  shrink_replays : int;
}

val default_options : options

type verdict =
  | Necessary of { witness : Explore.failure; weakening : weakening }
  | Over_strong of { weakening : weakening }
  | Unknown
  | Minimal

val verdict_to_string : verdict -> string

type site_result = {
  site : string;
  kind : site_kind;
  mutants : mutant_result list;  (** strongest first; weakest last *)
  verdict : verdict;
  weakest_safe : weakening option;
      (** the weakest mutant that explored completely with no violation *)
}

type report = {
  probe : string;
  scenario_names : string list;
  budget : int;
  baseline_ok : bool;
      (** the unmutated structure passed its probe — verdicts are
          meaningless otherwise, and no sites are audited *)
  baseline_failure : Explore.failure option;
  sites : site_result list;
  first_violation : (int * int) option;
      (** (mutants run, executions spent) in run order up to and
          including the first violating mutant — the cost-to-first-
          verdict metric audit prioritization is measured on *)
}

val counts : report -> int * int * int * int
(** (necessary, over-strong, unknown, minimal) *)

val run :
  ?options:options ->
  ?site_filter:(string -> bool) ->
  ?prioritize:string list ->
  ?verdict_first:(string -> bool) ->
  ?log:(string -> unit) ->
  probe:string ->
  (unit -> Explore.scenario) list ->
  report
(** [prioritize] lists sites to audit first, in the given order (e.g.
    {!Compass_static}'s predicted-necessary ranking); the rest keep
    discovery order.  [verdict_first] marks sites whose weakest (verdict)
    mutant runs before the intermediate ones; stored [mutants] stay in
    canonical strongest-first order regardless. *)

val pp_report : Format.formatter -> report -> unit
val report_to_json : report -> Jsonout.t
