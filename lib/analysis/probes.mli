open Compass_machine

(** Audit probes: the client scenarios that exercise each structure's
    labeled sites — the MP client plus a small contended workload where
    MP alone cannot reach a path (tail helping, competing dequeuers). *)

type t = {
  key : string;  (** CLI name: [ms], [ms-fences], [ms-weak], ... *)
  description : string;
  scenarios : (unit -> Explore.scenario) list;
}

val all : t list
val find : string -> t option
val keys : unit -> string list
