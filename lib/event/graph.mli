(** Per-object event graphs: the paper's [G = (events, so)]
    (Section 3.1).

    A graph accumulates the events committed so far in one execution plus
    the synchronised-with relation [so] between matched operations.  The
    local happens-before relation [lhb] is not stored: it is derived from
    logical views — [(d, e) ∈ lhb iff d ∈ G(e).logview] — exactly as in
    the paper. *)

type t

val create : obj:int -> name:string -> t
val name : t -> string
val obj : t -> int

val mem : t -> int -> bool
val find_opt : t -> int -> Event.data option

val find : t -> int -> Event.data
(** @raise Invalid_argument for ids not in the graph *)

val commit : t -> Event.data -> unit
(** add a (fresh) event — performed by the machine at commit points *)

val add_so : t -> from:int -> into:int -> unit

type snapshot
(** O(1) value-copy of the event map and so relation (both persistent) *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** roll the graph back in place — handles captured at build time stay
    valid *)

val events : t -> Event.data list
val events_by_cix : t -> Event.data list
(** events in commit order — the total order of commit instructions; for
    strongly-placed commit points this is already a valid linearisation
    (Section 3.3) *)

val so : t -> (int * int) list
val so_mem : t -> int * int -> bool
val size : t -> int

val lhb : t -> before:int -> after:int -> bool
(** [(before, after) ∈ G.lhb], i.e. [before ∈ G(after).logview];
    irreflexive, restricted to events of this graph *)

val lhb_pairs : t -> (int * int) list

val so_out : t -> int -> int list
val so_in : t -> int -> int list

val prefix : t -> upto:Event.cix -> t
(** the commit-prefix strictly before [upto]; so restricted.  The paper's
    consistency conditions are invariants — they hold after every commit —
    so checking every prefix validates exactly that. *)

val included : t -> t -> bool
(** graph inclusion [G ⊑ G']: snapshots in the paper's sense *)

val pp : Format.formatter -> t -> unit

val to_dot : t -> string
(** DOT export: so edges solid red, lhb edges dashed gray *)
