(* The per-execution registry of library objects and their graphs.

   Event ids are allocated here, globally across all objects, so that
   logical views (id-sets) can mention events of several libraries at once —
   which is what lets a client combine, say, a stack's and an exchanger's
   orderings (Section 4). *)

type snapshot = {
  s_next_eid : int;
  s_next_obj : int;
  s_graphs : Graph.snapshot array;  (** aligned with [order], newest first *)
}

type t = {
  mutable next_eid : int;
  mutable next_obj : int;
  graphs : (int, Graph.t) Hashtbl.t;
  mutable order : Graph.t list;
      (** registration order, newest first — the snapshot walk order, so
          snapshots need no [Hashtbl.fold]; length is [next_obj] *)
  mutable snap_cache : snapshot option;
}

let create () =
  {
    next_eid = 0;
    next_obj = 0;
    graphs = Hashtbl.create 8;
    order = [];
    snap_cache = None;
  }

let new_graph t ~name =
  let obj = t.next_obj in
  t.next_obj <- obj + 1;
  let g = Graph.create ~obj ~name in
  Hashtbl.replace t.graphs obj g;
  t.order <- g :: t.order;
  g

(* Reserve a fresh event id.  Reservation is separate from commit: an
   operation reserves its id up front (so it can stash it in shared memory,
   e.g. a queue node's eid field) and the id enters the graph only at the
   commit instruction — the paper's "fresh e ∉ G" added at the commit
   point. *)
let reserve t =
  let e = t.next_eid in
  t.next_eid <- e + 1;
  e

(* -- snapshot / restore ------------------------------------------------------

   One {!Graph.snapshot} per registered object, aligned with the [order]
   list so taking one is a plain list walk (it is on the model checker's
   per-step checkpoint path).  [restore] mutates the existing {!Graph.t}
   records in place (scenarios capture them at build time) and removes
   graphs registered after the snapshot, so re-executing the suffix
   re-registers them under the same object ids.

   Snapshots are reused while nothing changed: {!Graph.snapshot} is
   version-cached (physically equal result for an unchanged graph), so
   cache validity is a counter check plus one pointer comparison per
   registered graph. *)

let build_snapshot t =
  match t.order with
  | [] -> { s_next_eid = t.next_eid; s_next_obj = t.next_obj; s_graphs = [||] }
  | g0 :: tl ->
      let a = Array.make t.next_obj (Graph.snapshot g0) in
      let rec fill i = function
        | [] -> ()
        | g :: tl ->
            a.(i) <- Graph.snapshot g;
            fill (i + 1) tl
      in
      fill 1 tl;
      { s_next_eid = t.next_eid; s_next_obj = t.next_obj; s_graphs = a }

let cache_valid t s =
  s.s_next_eid = t.next_eid
  && s.s_next_obj = t.next_obj
  &&
  let rec ok i = function
    | [] -> true
    | g :: tl -> Graph.snapshot g == s.s_graphs.(i) && ok (i + 1) tl
  in
  ok 0 t.order

let snapshot t =
  match t.snap_cache with
  | Some s when cache_valid t s -> s
  | _ ->
      let s = build_snapshot t in
      t.snap_cache <- Some s;
      s

let restore t s =
  t.next_eid <- s.s_next_eid;
  (* Graphs registered after the snapshot sit at the front of [order]. *)
  let rec drop n l =
    if n = 0 then l
    else
      match l with
      | g :: tl ->
          Hashtbl.remove t.graphs (Graph.obj g);
          drop (n - 1) tl
      | [] -> invalid_arg "Registry.restore: snapshot from a different registry"
  in
  let order = drop (t.next_obj - s.s_next_obj) t.order in
  t.order <- order;
  t.next_obj <- s.s_next_obj;
  let rec fill i = function
    | [] -> ()
    | g :: tl ->
        Graph.restore g s.s_graphs.(i);
        fill (i + 1) tl
  in
  fill 0 order;
  t.snap_cache <- Some s

let graph t obj =
  match Hashtbl.find_opt t.graphs obj with
  | Some g -> g
  | None -> invalid_arg (Printf.sprintf "Registry.graph: no object %d" obj)

let graphs t = List.rev t.order
