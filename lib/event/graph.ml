open Compass_rmc

(* Per-object event graphs: the paper's [G = (events, so)] (Section 3.1).

   A graph accumulates the events committed so far during one execution,
   plus the synchronised-with relation [so] between matched operations
   (enqueue/dequeue, push/pop, symmetric exchange pairs).  The local
   happens-before relation [lhb] is not stored: it is derived from logical
   views — [(d, e) ∈ lhb] iff [d ∈ G(e).logview] — exactly as in the
   paper. *)

module Imap = Map.Make (Int)

type snapshot = {
  s_version : int;
  s_events : Event.data Imap.t;
  s_so : (int * int) list;
}

type t = {
  obj : int;
  name : string;
  mutable events : Event.data Imap.t;
  mutable so : (int * int) list;  (** newest first *)
  mutable version : int;
      (** identifies the graph's content: fresh after every mutation, set
          back to the snapshot's version on restore — an unchanged version
          means an unchanged graph, so snapshots can be reused *)
  mutable vnext : int;
  mutable snap_cache : snapshot option;
  mutable events_cache : (int * Event.data list) option;
      (** version-keyed cache of {!events} — the spec checkers walk the
          event list several times per judged execution *)
  mutable cix_cache : (int * Event.data list) option;
      (** version-keyed cache of {!events_by_cix} *)
}

let create ~obj ~name =
  {
    obj;
    name;
    events = Imap.empty;
    so = [];
    version = 0;
    vnext = 1;
    snap_cache = None;
    events_cache = None;
    cix_cache = None;
  }

let touch g =
  g.version <- g.vnext;
  g.vnext <- g.vnext + 1
let name g = g.name
let obj g = g.obj
let mem g id = Imap.mem id g.events
let find_opt g id = Imap.find_opt id g.events

let find g id =
  match find_opt g id with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Graph.find: e%d not in graph %s" id g.name)

let commit g (e : Event.data) =
  assert (not (mem g e.id));
  touch g;
  g.events <- Imap.add e.id e g.events

let add_so g ~from ~into =
  assert (mem g from && mem g into);
  touch g;
  g.so <- (from, into) :: g.so

(* -- snapshot / restore ------------------------------------------------------

   Both components are persistent, so a snapshot is two pointers, and
   [restore] mutates the graph record in place — scenario closures that
   captured the graph at build time keep a valid handle.  Snapshots are
   version-cached: the checkpoint-per-step explorer snapshots far more
   often than the graph changes, and an unchanged version returns the
   same (physically equal) snapshot — which {!Registry} relies on to
   reuse whole registry snapshots. *)

let snapshot g =
  match g.snap_cache with
  | Some s when s.s_version = g.version -> s
  | _ ->
      let s = { s_version = g.version; s_events = g.events; s_so = g.so } in
      g.snap_cache <- Some s;
      s

let restore g s =
  g.events <- s.s_events;
  g.so <- s.s_so;
  g.version <- s.s_version;
  g.snap_cache <- Some s

(* Restores set the version back to the snapshot's (the content is then
   identical to what that version named), so version-keyed caches stay
   valid across restore without invalidation. *)
let events g =
  match g.events_cache with
  | Some (v, l) when v = g.version -> l
  | _ ->
      let l = Imap.bindings g.events |> List.map snd in
      g.events_cache <- Some (g.version, l);
      l

(* Events in commit order — the total order of commit instructions in the
   interleaved execution.  For strongly-synchronised structures this is
   already a valid linearisation (Section 3.3). *)
let events_by_cix g =
  match g.cix_cache with
  | Some (v, l) when v = g.version -> l
  | _ ->
      let l =
        events g |> List.sort (fun a b -> Event.cix_compare a.Event.cix b.Event.cix)
      in
      g.cix_cache <- Some (g.version, l);
      l

let so g = g.so
let so_mem g p = List.exists (fun q -> q = p) g.so
let size g = Imap.cardinal g.events

(* The paper's [(d, e) ∈ G.lhb ⟺ d ∈ G(e).logview]; restricted to events
   of this graph, and irreflexive by convention. *)
let lhb g ~(before : int) ~(after : int) =
  before <> after
  &&
  match find_opt g after with
  | None -> false
  | Some e -> Lview.mem before e.logview && mem g before

(* All lhb pairs, for closure computations and DOT export. *)
let lhb_pairs g =
  Imap.fold
    (fun id e acc ->
      Lview.fold
        (fun d acc -> if d <> id && mem g d then (d, id) :: acc else acc)
        e.Event.logview acc)
    g.events []

(* Matched partner(s) of [id] under so. *)
let so_out g id = List.filter_map (fun (f, t) -> if f = id then Some t else None) g.so
let so_in g id = List.filter_map (fun (f, t) -> if t = id then Some f else None) g.so

(* The commit-prefix of a graph: events committed strictly before [upto],
   with so restricted.  The paper's consistency conditions are
   *invariants* — they hold after every commit — so a checker run on every
   prefix validates exactly that (the prefix-closedness tests). *)
let prefix g ~(upto : Event.cix) =
  let keep (e : Event.data) = Event.cix_compare e.cix upto < 0 in
  let p = create ~obj:g.obj ~name:(g.name ^ "~") in
  List.iter (fun e -> if keep e then commit p e) (events_by_cix g);
  List.iter
    (fun (a, b) -> if mem p a && mem p b then add_so p ~from:a ~into:b)
    (List.rev g.so);
  p

(* Graph inclusion [G ⊑ G']: every event of [g] is in [g'] with identical
   data, and so edges are preserved.  Snapshots in the paper are exactly
   sub-graphs in this sense. *)
let included g g' =
  Imap.for_all
    (fun id e ->
      match find_opt g' id with
      | Some e' ->
          Event.typ_equal e.Event.typ e'.Event.typ && e.Event.cix = e'.Event.cix
      | None -> false)
    g.events
  && List.for_all (fun p -> so_mem g' p) g.so

let pp ppf g =
  Format.fprintf ppf "@[<v>graph %s (%d events)@ %a@ so: %a@]" g.name (size g)
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Event.pp)
    (events_by_cix g)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
       (fun ppf (a, b) -> Format.fprintf ppf "(e%d,e%d)" a b))
    (List.rev g.so)

(* DOT export: events as nodes (commit order as rank), so edges solid, lhb
   edges (transitively reduced by construction of logviews? no — raw) dashed. *)
let to_dot g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph %S {\n  rankdir=TB;\n" g.name);
  List.iter
    (fun (e : Event.data) ->
      Buffer.add_string buf
        (Printf.sprintf "  e%d [label=\"%s\\nT%d @ %d.%d\"];\n" e.id
           (Format.asprintf "%a" Event.pp_typ e.typ)
           e.tid (fst e.cix) (snd e.cix)))
    (events_by_cix g);
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf (Printf.sprintf "  e%d -> e%d [color=red];\n" a b))
    g.so;
  List.iter
    (fun (a, b) ->
      if not (so_mem g (a, b)) then
        Buffer.add_string buf
          (Printf.sprintf "  e%d -> e%d [style=dashed,color=gray];\n" a b))
    (lhb_pairs g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
