(** The per-execution registry of library objects and their graphs.

    Event ids are allocated here, globally across objects, so logical
    views can mention several libraries' events at once — which is what
    lets a client combine, say, a stack's and an exchanger's orderings
    (Section 4). *)

type t

val create : unit -> t
val new_graph : t -> name:string -> Graph.t

val reserve : t -> int
(** Reserve a fresh event id.  Reservation is separate from commit: an
    operation reserves up front (so the id can travel through shared
    memory, e.g. a queue node's eid field) and the id enters the graph
    only at the commit instruction — the paper's "fresh [e ∉ G] added at
    the commit point". *)

type snapshot
(** event-id/object counters plus one {!Graph.snapshot} per object *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** roll back in place: graph handles captured at build time stay valid;
    graphs registered after the snapshot are removed *)

val graph : t -> int -> Graph.t
(** @raise Invalid_argument for unknown object ids *)

val graphs : t -> Graph.t list
