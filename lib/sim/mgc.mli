open Compass_event
open Compass_machine
open Compass_spec

(** Most-general-client generation.

    Refinement verdicts should not depend on hand-picked observation
    clients.  This module enumerates, from a registry entry's op
    signature alone, the {e observationally complete} two-thread client
    family up to a depth bound: every non-empty per-thread sequence of
    insert/remove requests of length [<= depth], for every ordered pair
    of threads, optionally joined by a release/acquire flag handoff (the
    publisher raises the flag after its [p]-th operation, the subscriber
    awaits it before its [q]-th) — the handoffs regenerate every
    MP-shaped synchronisation pattern, which plain op mixes cannot force
    under weak memory.

    Enumeration is pure and deterministic: same depth, same clients, in
    the same order.  Generated programs observe through the event graph
    (the simulation checker reads commits, views and so edges), which
    subsumes return-value observation. *)

type op = Ins | Rem

type client = {
  id : string;
      (** stable identifier, e.g. ["ii|r+h2.1"]: thread op strings joined
          by [|], handoff positions after [+h] *)
  threads : op list array;  (** per-thread request sequences (2 threads) *)
  handoff : (int * int) option;
      (** [Some (p, q)]: thread 0 publishes a Rel flag after its [p]-th
          op; thread 1 acquires it before its [q]-th op *)
}

val generate : depth:int -> unit -> client list
(** all two-thread clients up to [depth] ops per thread (each thread's
    sequence non-empty), without and with every flag-handoff position *)

val find : depth:int -> string -> client option
(** resolve a client [id] within [generate ~depth] (for replay) *)

val build :
  Libspec.entry ->
  client ->
  Machine.t ->
  Compass_rmc.Value.t Prog.t list * Graph.t
(** instantiate the client against the entry's implementation: thread
    programs (plus the handoff flag when requested) and the structure's
    event graph.  Insertions use {!Compass_clients.Harness.val_of}
    values, distinct per (thread, index).  Queue/stack entries resolve
    through their registered factories; the Chase-Lev deque maps thread 0
    to owner push/pop and other threads' requests to steals; the
    exchanger maps every request to an exchange.
    @raise Invalid_argument for entries this generator cannot build *)

val scenario :
  Libspec.entry ->
  judge:(Graph.t -> Machine.outcome -> Explore.verdict) ->
  client ->
  Explore.scenario
(** wrap {!build} as an explorable scenario; the judge sees the graph
    handle and the raw machine outcome *)
