open Compass_machine
open Compass_spec

(** The simulation-refinement driver: explore every most-general client
    of a registry entry and check forward simulation ({!Simrel}) on each
    execution, aggregating one verdict over the full explored set.

    The per-execution check depends only on the execution's event graph,
    which partial-order reductions preserve up to Mazurkiewicz
    equivalence — so verdicts are invariant across
    [--reduce=sleep|dpor], ±[--incremental] and any [jobs] (the
    differential tests gate this).

    Failures come in two shapes, both simulation-level:

    - a {e commit-point break}: some execution's graph admits no legal
      commit-point assignment; the witness names the earliest breaking
      commit (the exact event, step and matched prefix);
    - a {e concrete fault}: the machine leaves the abstraction relation
      mid-operation (data race, poison read) before reaching a commit —
      the witness names the faulting step and the commits matched so
      far.

    The first failing script is shrunk with the ddmin machinery
    ({!Compass_fuzz.Shrink}) and replayed to recover the break detail;
    [compass replay --sim-client] re-runs it with full tracing. *)

type options = {
  mgc_depth : int;  (** client enumeration bound (default 2) *)
  max_execs : int;  (** exploration budget per generated client *)
  jobs : int;
  reduce : Machine.reduction;  (** default {!Machine.RSleep} *)
  incremental : bool;
  until_violation : bool;
      (** stop at the first breaking client (time-to-witness mode) *)
  shrink : bool;  (** ddmin the witness script (default on) *)
  max_replays : int;  (** shrink budget *)
  only_client : string option;  (** restrict to one generated client id *)
}

val default_options : options

type detail = {
  d_fault : bool;  (** concrete fault vs commit-point break *)
  d_step : int;  (** machine step where the abstraction relation breaks *)
  d_what : string;  (** the breaking commit event, or the fault *)
  d_prefix : string list;  (** commits matched before the break, cix order *)
}

type witness = {
  w_client : string;  (** generated client id (for [--sim-client]) *)
  w_message : string;
  w_trace : Decision.trace;  (** shrunk replay script (typed trace) *)
  w_raw_len : int;
  w_replays : int;  (** shrink replays spent (0 when shrinking is off) *)
  w_detail : detail option;  (** from replaying the shrunk script *)
}

type client_row = {
  c_id : string;
  c_report : Explore.report;
  c_ok : bool;
}

type report = {
  struct_key : string;
  impl_name : string;
  spec_name : string;
  depth : int;
  clients_total : int;  (** generated *)
  clients_run : int;  (** explored (fewer under [until_violation]) *)
  executions : int;
  sim_states : int;  (** total commit-point search states expanded *)
  rows : client_row list;
  witness : witness option;
  ok : bool;
  complete : bool;  (** every explored client exhausted its tree *)
}

val run : ?options:options -> Libspec.entry -> report
(** @raise Invalid_argument when the entry is not refinable *)

val client_scenario :
  ?depth:int -> Libspec.entry -> string -> Explore.scenario option
(** the simulation-judged scenario for one generated client id, for
    [compass replay] (default depth 2) *)

val pp : Format.formatter -> report -> unit
val to_json : report -> Compass_util.Jsonout.t
