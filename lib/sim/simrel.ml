open Compass_event
open Compass_spec
open Compass_dstruct

(* Forward simulation of one execution against the spec LTS: search for a
   commit-point assignment — an lhb-respecting total order of the
   committed events that steps the spec legally and reproduces the
   recorded so edges.  See simrel.mli. *)

type break_ = {
  at : Event.data;
  index : int;
  prefix : Event.data list;
  states : int;
}

type result =
  | Simulates of { states : int }
  | Breaks of break_
  | Gave_up of { states : int }

exception Found
exception Out_of_budget

let check ?(max_states = 200_000) kind g =
  let evs =
    Array.of_list
      (List.filter
         (fun (e : Event.data) -> Libspec.op_of_typ e.Event.typ <> None)
         (Graph.events_by_cix g))
  in
  let n = Array.length evs in
  let states = ref 0 in
  if n > 62 then Gave_up { states = 0 }
  else begin
    (* Observed so sources per event (sorted id list): the spec's
       predicted matching must equal them exactly. *)
    let so_in =
      Array.map
        (fun (e : Event.data) ->
          List.sort compare (Graph.so_in g e.Event.id))
        evs
    in
    (* lhb predecessors as bitmasks.  Logical views only ever contain
       already-committed events, so lhb edges point backwards in commit
       order — predecessors of position i live strictly below i. *)
    let preds = Array.make n 0 in
    for i = 0 to n - 1 do
      for j = 0 to i - 1 do
        if Graph.lhb g ~before:evs.(j).Event.id ~after:evs.(i).Event.id then
          preds.(i) <- preds.(i) lor (1 lsl j)
      done
    done;
    (* Is there a legal assignment covering the first [k] events? *)
    let linearizes k =
      let full = (1 lsl k) - 1 in
      let memo = Hashtbl.create 64 in
      let rec go mask st =
        if mask = full then raise Found;
        let key = (mask, st) in
        if not (Hashtbl.mem memo key) then begin
          Hashtbl.add memo key ();
          for i = 0 to k - 1 do
            if mask land (1 lsl i) = 0 && preds.(i) land mask = preds.(i)
            then begin
              incr states;
              if !states > max_states then raise Out_of_budget;
              match Specobj.step_event kind st evs.(i) with
              | Some (st', so_pred)
                when List.sort compare (List.map fst so_pred) = so_in.(i) ->
                  go (mask lor (1 lsl i)) st'
              | _ -> ()
            end
          done
        end
      in
      try
        go 0 [];
        `No
      with
      | Found -> `Yes
      | Out_of_budget -> `Budget
    in
    match linearizes n with
    | `Yes -> Simulates { states = !states }
    | `Budget -> Gave_up { states = !states }
    | `No ->
        (* Earliest breaking commit point: the smallest commit-order
           prefix no assignment covers.  k = n fails, so the scan
           terminates; a budget exhaustion mid-scan falls back to the
           full set. *)
        let rec find k = if k >= n then n else
          match linearizes k with `No -> k | _ -> find (k + 1)
        in
        let k = find 1 in
        Breaks
          {
            at = evs.(k - 1);
            index = k - 1;
            prefix = Array.to_list (Array.sub evs 0 (k - 1));
            states = !states;
          }
  end
