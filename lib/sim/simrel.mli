open Compass_event
open Compass_spec

(** Per-execution forward simulation against the spec LTS.

    One explored execution leaves a library event graph: the operations'
    commit points in commit ([cix]) order, their physical and logical
    views, and the recorded insertion-to-removal [so] edges.  The
    execution {e simulates} the spec when some assignment of spec
    transitions to commit points is legal — a total order of the
    committed events that

    - respects [lhb] (derived from logical views, so the order is
      view-aware: synchronised operations cannot be reordered, unrelated
      ones can);
    - steps the spec LTS ({!Compass_dstruct.Specobj.step}) legally from
      the empty abstract state (FIFO/LIFO removal order, empty removals
      only on the empty state);
    - reproduces the implementation's [so] edges exactly (the spec's
      predicted matching equals the recorded one).

    The search over candidate orders is the commit-point assignment
    search; memoised on (used-set, abstract state).  Commit order itself
    need not be legal — the Herlihy-Wing queue commits enqueues at ticket
    reservation, before the slot write, and is simulated by assignments
    that linearise the enqueue later.

    On failure, the witness is the {e earliest breaking commit point}:
    the smallest commit-order prefix of the event set that no legal
    assignment covers, localising the exact commit where the abstraction
    relation breaks. *)

type break_ = {
  at : Event.data;  (** the breaking commit point *)
  index : int;  (** its position in commit order (0-based) *)
  prefix : Event.data list;
      (** the events committed before [at], in commit order — every
          assignment covering them dies at [at] *)
  states : int;
}

type result =
  | Simulates of { states : int }
      (** a legal commit-point assignment exists; [states] counts the
          (used-set, abstract state) pairs the search expanded *)
  | Breaks of break_
  | Gave_up of { states : int }  (** search budget exhausted *)

val check : ?max_states:int -> Libspec.kind -> Graph.t -> result
(** check one execution's graph (default budget 200k search states).
    Only events in the kind's vocabulary participate; graphs with more
    than 62 such events report [Gave_up]. *)
