open Compass_event
open Compass_machine
open Compass_spec
open Compass_util
module Fz = Compass_fuzz

(* The simulation-refinement driver: see sim.mli. *)

type options = {
  mgc_depth : int;
  max_execs : int;
  jobs : int;
  reduce : Machine.reduction;
  incremental : bool;
  until_violation : bool;
  shrink : bool;
  max_replays : int;
  only_client : string option;
}

let default_options =
  {
    mgc_depth = 2;
    max_execs = 50_000;
    jobs = 1;
    reduce = Machine.RSleep;
    incremental = true;
    until_violation = false;
    shrink = true;
    max_replays = 20_000;
    only_client = None;
  }

type detail = {
  d_fault : bool;
  d_step : int;
  d_what : string;
  d_prefix : string list;
}

type witness = {
  w_client : string;
  w_message : string;
  w_trace : Decision.trace;
  w_raw_len : int;
  w_replays : int;
  w_detail : detail option;
}

type client_row = {
  c_id : string;
  c_report : Explore.report;
  c_ok : bool;
}

type report = {
  struct_key : string;
  impl_name : string;
  spec_name : string;
  depth : int;
  clients_total : int;
  clients_run : int;
  executions : int;
  sim_states : int;
  rows : client_row list;
  witness : witness option;
  ok : bool;
  complete : bool;
}

let kind_of (e : Libspec.entry) =
  match e.Libspec.spec.Libspec.kind with
  | Some k -> k
  | None ->
      invalid_arg
        (Printf.sprintf "Sim: structure %s has no sequential kind"
           e.Libspec.key)

(* Violation messages stay free of schedule-dependent detail (step
   numbers, prefixes): ddmin shrinking accepts only candidates that
   reproduce the exact message, and the break detail is recovered by
   replaying the shrunk script instead. *)
let break_message (b : Simrel.break_) =
  Format.asprintf
    "simulation break at commit %a by thread %d: no legal commit-point \
     assignment"
    Event.pp_typ b.Simrel.at.Event.typ b.Simrel.at.Event.tid

let fault_message s = "simulation break (concrete fault): " ^ s

(* The per-execution judge.  [states] is shared across domains under
   [jobs > 1]; verdicts themselves are per-execution pure. *)
let judge kind (states : int Atomic.t) g outcome =
  match outcome with
  | Machine.Finished _ -> (
      match Simrel.check kind g with
      | Simrel.Simulates { states = s } ->
          ignore (Atomic.fetch_and_add states s);
          Explore.Pass
      | Simrel.Breaks b ->
          ignore (Atomic.fetch_and_add states b.Simrel.states);
          Explore.Violation (break_message b)
      | Simrel.Gave_up { states = s } ->
          ignore (Atomic.fetch_and_add states s);
          Explore.Discard "simulation search budget exhausted")
  | Machine.Fault s -> Explore.Violation (fault_message s)
  | Machine.Blocked s -> Explore.Discard s
  | Machine.Bounded -> Explore.Discard "bounded"
  | Machine.Pruned -> Explore.Discard "pruned"

let scenario_of (e : Libspec.entry) kind states c =
  Mgc.scenario e ~judge:(judge kind states) c

let render (ev : Event.data) =
  Format.asprintf "%a at commit %d (thread %d)" Event.pp_typ ev.Event.typ
    (fst ev.Event.cix) ev.Event.tid

(* Replay a (shrunk) witness script and localise the break: the faulting
   machine step for concrete faults, the earliest breaking commit point
   otherwise, each with the commits matched before it. *)
let detail_of (e : Libspec.entry) kind c script =
  let gref = ref None in
  let sc =
    Mgc.scenario e
      ~judge:(fun g o ->
        gref := Some g;
        judge kind (Atomic.make 0) g o)
      c
  in
  let r = Explore.replay ~config:Machine.default_config sc script in
  let m = r.Explore.r_machine in
  match (r.Explore.r_outcome, !gref) with
  | Machine.Fault s, Some g ->
      Some
        {
          d_fault = true;
          d_step = Machine.steps m;
          d_what = "fault: " ^ s;
          d_prefix = List.map render (Graph.events_by_cix g);
        }
  | Machine.Finished _, Some g -> (
      match Simrel.check kind g with
      | Simrel.Breaks b ->
          Some
            {
              d_fault = false;
              d_step = fst b.Simrel.at.Event.cix;
              d_what = render b.Simrel.at;
              d_prefix = List.map render b.Simrel.prefix;
            }
      | _ -> None)
  | _ -> None

let run ?(options = default_options) (e : Libspec.entry) =
  if not e.Libspec.refinable then
    invalid_arg
      (Printf.sprintf "structure %s is not refinable" e.Libspec.key);
  let kind = kind_of e in
  let clients =
    let all = Mgc.generate ~depth:options.mgc_depth () in
    match options.only_client with
    | None -> all
    | Some id -> List.filter (fun (c : Mgc.client) -> c.Mgc.id = id) all
  in
  let states = Atomic.make 0 in
  let witness = ref None in
  let rows = ref [] in
  let run_client (c : Mgc.client) =
    let sc = scenario_of e kind states c in
    let r =
      if options.jobs > 1 then
        Explore.pdfs ~jobs:options.jobs ~max_execs:options.max_execs
          ~reduce:options.reduce ~incremental:options.incremental
          ~until_violation:options.until_violation sc
      else
        Explore.dfs ~max_execs:options.max_execs ~reduce:options.reduce
          ~incremental:options.incremental
          ~until_violation:options.until_violation sc
    in
    rows := { c_id = c.Mgc.id; c_report = r; c_ok = Explore.ok r } :: !rows;
    (if !witness = None then
       match r.Explore.violations with
       | f :: _ ->
           let raw = f.Explore.trace in
           let script, replays =
             if options.shrink then
               let stats, shrunk =
                 Fz.Shrink.minimize ~max_replays:options.max_replays
                   ~scenario:(scenario_of e kind states c)
                   ~message:f.Explore.message raw
               in
               (shrunk, stats.Fz.Shrink.replays)
             else (raw, 0)
           in
           witness :=
             Some
               {
                 w_client = c.Mgc.id;
                 w_message = f.Explore.message;
                 w_trace = script;
                 w_raw_len = Array.length raw;
                 w_replays = replays;
                 w_detail = detail_of e kind c script;
               }
       | [] -> ());
    Explore.ok r
  in
  let rec loop = function
    | [] -> ()
    | c :: rest ->
        let ok = run_client c in
        if (not ok) && options.until_violation then () else loop rest
  in
  loop clients;
  let rows = List.rev !rows in
  let impl_name =
    match e.Libspec.impl with
    | Compass_clients.Specreg.Queue f -> f.Compass_dstruct.Iface.q_name
    | Compass_clients.Specreg.Stack f -> f.Compass_dstruct.Iface.s_name
    | _ -> e.Libspec.struct_name
  in
  {
    struct_key = e.Libspec.key;
    impl_name;
    spec_name = e.Libspec.spec.Libspec.name;
    depth = options.mgc_depth;
    clients_total = List.length clients;
    clients_run = List.length rows;
    executions =
      List.fold_left (fun n r -> n + r.c_report.Explore.executions) 0 rows;
    sim_states = Atomic.get states;
    rows;
    witness = !witness;
    ok = List.for_all (fun r -> r.c_ok) rows;
    complete = List.for_all (fun r -> r.c_report.Explore.complete) rows;
  }

let client_scenario ?(depth = 2) (e : Libspec.entry) id =
  match Mgc.find ~depth id with
  | None -> None
  | Some c -> (
      match e.Libspec.spec.Libspec.kind with
      | None -> None
      | Some kind -> Some (scenario_of e kind (Atomic.make 0) c))

(* -- reporting ---------------------------------------------------------------- *)

let pp ppf r =
  Format.fprintf ppf
    "@[<v>simulation: %s (impl %s) against spec %s, mgc depth %d@,\
     \  %d/%d clients explored, %d executions, %d commit-point search states%s@,"
    r.struct_key r.impl_name r.spec_name r.depth r.clients_run r.clients_total
    r.executions r.sim_states
    (if r.complete then "" else " (INCOMPLETE: budget hit)");
  List.iter
    (fun row ->
      if not row.c_ok then
        Format.fprintf ppf "  %-16s %7d executions  VIOLATION: %s@," row.c_id
          row.c_report.Explore.executions
          (match row.c_report.Explore.violations with
          | f :: _ -> f.Explore.message
          | [] -> "?"))
    r.rows;
  (match r.witness with
  | Some w ->
      Format.fprintf ppf
        "  witness: client %s, script %s (shrunk from %d choices in %d \
         replays)@,"
        w.w_client
        (String.concat ","
           (List.map string_of_int (Array.to_list (Decision.choices w.w_trace))))
        w.w_raw_len w.w_replays;
      (match w.w_detail with
      | Some d ->
          Format.fprintf ppf
            "  abstraction breaks at step %d: %s@,  matched commits before \
             the break: %s@,"
            d.d_step d.d_what
            (if d.d_prefix = [] then "(none)"
             else String.concat "; " d.d_prefix)
      | None -> ())
  | None -> ());
  Format.fprintf ppf "  verdict: %s@]"
    (if r.ok then "SIMULATES" else "does NOT simulate")

let to_json r =
  Jsonout.Obj
    [
      ("struct", Jsonout.Str r.struct_key);
      ("impl", Jsonout.Str r.impl_name);
      ("spec", Jsonout.Str r.spec_name);
      ("mgc_depth", Jsonout.Int r.depth);
      ("clients_total", Jsonout.Int r.clients_total);
      ("clients_run", Jsonout.Int r.clients_run);
      ("executions", Jsonout.Int r.executions);
      ("sim_states", Jsonout.Int r.sim_states);
      ("ok", Jsonout.Bool r.ok);
      ("complete", Jsonout.Bool r.complete);
      ( "clients",
        Jsonout.List
          (List.map
             (fun row ->
               Jsonout.Obj
                 [
                   ("client", Jsonout.Str row.c_id);
                   ("executions", Jsonout.Int row.c_report.Explore.executions);
                   ("complete", Jsonout.Bool row.c_report.Explore.complete);
                   ("ok", Jsonout.Bool row.c_ok);
                 ])
             r.rows) );
      ( "witness",
        match r.witness with
        | None -> Jsonout.Null
        | Some w ->
            Jsonout.Obj
              ([
                 ("client", Jsonout.Str w.w_client);
                 ("message", Jsonout.Str w.w_message);
                 ("script", Jsonout.int_array (Decision.choices w.w_trace));
                 ("trace", Decision.trace_to_json w.w_trace);
                 ("raw_len", Jsonout.Int w.w_raw_len);
                 ("shrink_replays", Jsonout.Int w.w_replays);
               ]
              @
              match w.w_detail with
              | None -> []
              | Some d ->
                  [
                    ( "break",
                      Jsonout.Obj
                        [
                          ("fault", Jsonout.Bool d.d_fault);
                          ("step", Jsonout.Int d.d_step);
                          ("what", Jsonout.Str d.d_what);
                          ("matched_prefix", Jsonout.str_list d.d_prefix);
                        ] );
                  ]) );
    ]
