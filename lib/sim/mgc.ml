open Compass_rmc
open Compass_event
open Compass_machine
open Compass_spec
open Compass_dstruct
open Compass_clients

(* Most-general-client enumeration and instantiation: see mgc.mli. *)

type op = Ins | Rem

type client = {
  id : string;
  threads : op list array;
  handoff : (int * int) option;
}

let op_char = function Ins -> 'i' | Rem -> 'r'

let seq_string ops = String.init (List.length ops) (fun i -> op_char (List.nth ops i))

let id_of threads handoff =
  let body =
    String.concat "|" (List.map seq_string (Array.to_list threads))
  in
  match handoff with
  | None -> body
  | Some (p, q) -> Printf.sprintf "%s+h%d.%d" body p q

(* All non-empty op sequences of length <= depth, shortest first. *)
let seqs depth =
  let rec of_len l =
    if l = 0 then [ [] ]
    else
      List.concat_map (fun rest -> [ Ins :: rest; Rem :: rest ]) (of_len (l - 1))
  in
  List.concat_map of_len (List.init depth (fun i -> i + 1))

let range n = List.init n (fun i -> i + 1)

let generate ~depth () =
  let ss = seqs depth in
  List.concat_map
    (fun a ->
      List.concat_map
        (fun b ->
          let threads = [| a; b |] in
          let mk handoff = { id = id_of threads handoff; threads; handoff } in
          mk None
          :: List.concat_map
               (fun p -> List.map (fun q -> mk (Some (p, q))) (range (List.length b)))
               (range (List.length a)))
        ss)
    ss

let find ~depth id =
  List.find_opt (fun c -> c.id = id) (generate ~depth ())

(* -- instantiation ------------------------------------------------------------ *)

(* Per-thread request interpreters over the entry's implementation.  The
   interpreter returns one [unit Prog.t] per request; requests are
   sequenced in order, with the handoff flag woven in by [build]. *)

let ops_of (e : Libspec.entry) (m : Machine.t) :
    (int -> int -> op -> unit Prog.t) * Graph.t =
  match e.Libspec.impl with
  | Specreg.Queue f ->
      let q = f.Iface.make_queue m ~name:"q" in
      ( (fun tid i -> function
          | Ins -> q.Iface.enq (Harness.val_of ~tid ~i)
          | Rem -> Prog.bind (q.Iface.deq ()) (fun _ -> Prog.return ())),
        q.Iface.q_graph )
  | Specreg.Stack f ->
      let s = f.Iface.make_stack m ~name:"s" in
      ( (fun tid i -> function
          | Ins -> s.Iface.push (Harness.val_of ~tid ~i)
          | Rem -> Prog.bind (s.Iface.pop ()) (fun _ -> Prog.return ())),
        s.Iface.s_graph )
  | _ -> (
      (* Entries without a generic factory: construct directly from the
         spec's op signature, so the generator covers the whole
         registry. *)
      match e.Libspec.spec.Libspec.kind with
      | Some Libspec.Deque ->
          let t = Chaselev.create m ~name:"d" in
          ( (fun tid i -> function
              | Ins when tid = 0 -> Chaselev.push t (Harness.val_of ~tid ~i)
              | Rem when tid = 0 ->
                  Prog.bind (Chaselev.pop t) (fun _ -> Prog.return ())
              | _ ->
                  (* thieves have one operation: steal *)
                  Prog.bind (Chaselev.steal t) (fun _ -> Prog.return ())),
            Chaselev.graph t )
      | None when e.Libspec.spec.Libspec.name = "exchanger" ->
          let x = Exchanger.instantiate m ~name:"x" in
          ( (fun tid i _ ->
              Prog.bind (x.Iface.exchange (Harness.val_of ~tid ~i)) (fun _ ->
                  Prog.return ())),
            x.Iface.x_graph )
      | _ ->
          invalid_arg
            (Printf.sprintf "Mgc.build: no op signature for structure %s"
               e.Libspec.key))

let build (e : Libspec.entry) (c : client) (m : Machine.t) =
  let interp, g = ops_of e m in
  let flag =
    match c.handoff with
    | None -> None
    | Some _ -> Some (Machine.alloc m ~name:"mgc.flag" ~init:(Value.Int 0) 1)
  in
  let thread tid ops =
    let progs = List.mapi (fun i op -> interp tid i op) ops in
    let progs =
      match (flag, c.handoff) with
      | Some flag, Some (p, q) ->
          let insert_at k extra ps =
            List.concat (List.mapi (fun i prog ->
                if i = k then [ extra; prog ] else [ prog ]) ps)
            @ if k = List.length ps then [ extra ] else []
          in
          if tid = 0 then
            (* publish after the p-th op *)
            insert_at p
              (Prog.store ~site:"mgc.flag.publish" flag (Value.Int 1) Mode.Rel)
              progs
          else if tid = 1 then
            (* await before the q-th op *)
            insert_at (q - 1)
              (Prog.bind
                 (Prog.await ~site:"mgc.flag.await" flag Mode.Acq
                    (Value.equal (Value.Int 1)))
                 (fun _ -> Prog.return ()))
              progs
          else progs
      | _ -> progs
    in
    Prog.returning_unit (Prog.seq progs)
  in
  (List.mapi (fun tid ops -> thread tid ops) (Array.to_list c.threads), g)

let scenario (e : Libspec.entry) ~judge (c : client) =
  {
    Explore.name = Printf.sprintf "mgc[%s:%s]" e.Libspec.key c.id;
    build =
      (fun m ->
        let threads, g = build e c m in
        Machine.spawn m threads;
        judge g);
  }
