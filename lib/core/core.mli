(** COMPASS-OCaml — the public umbrella API.

    An executable reproduction of "Compass: Strong and Compositional
    Library Specifications in Relaxed Memory Separation Logic" (Dang, Jung,
    Choi, Nguyen, Mansky, Kang, Dreyer — PLDI 2022).

    The layers, bottom-up:

    - {!Rmc}: the ORC11 memory-model substrate — locations, values, access
      modes, timestamps, physical and logical views, messages, per-location
      histories, thread view transitions, and the global store with race
      detection (paper Section 2.3 and Section 3.1's logical views).
    - {!Machine}: the program DSL over that substrate, commit annotations
      realising logically-atomic commit points, the interleaving machine,
      and the stateless model-checking drivers (DFS and random).
    - {!Event}: Yacovet-style event graphs — events with physical/logical
      views, per-object graphs with so and derived lhb, partial-order
      utilities (Section 3.1).
    - {!Spec}: the consistency conditions (QueueConsistent, StackConsistent,
      ExchangerConsistent), commit-point abstract states, linearisable
      histories, the LAT spec-style hierarchy (Sections 2.3-3.3, 4.2), and
      the first-class specification registry ({!Spec.Libspec}).
    - {!Dstruct}: the paper's implementations — Michael-Scott queue,
      Herlihy-Wing queue, Treiber stack, exchanger, elimination stack —
      instrumented to commit events at their commit points, plus the
      spec-as-implementation reference objects ({!Dstruct.Specobj}).
    - {!Clients}: the paper's client verifications — Message-Passing
      (Figures 1 and 3), SPSC, a two-queue pipeline, resource exchange, and
      the elimination-stack composition (Section 4) — as model-checked
      scenarios, the populated registry ({!Clients.Specreg}), and the
      refinement driver ({!Clients.Refine}).
    - {!Util}: dependency-free utilities (JSON emission, stamped reports).

    Quick start: see [examples/quickstart.ml]. *)

module Rmc = Compass_rmc
module Machine = Compass_machine
module Event = Compass_event
module Spec = Compass_spec
module Dstruct = Compass_dstruct
module Clients = Compass_clients
module Util = Compass_util

val placeholder : unit -> unit
(** kept so the original scaffold keeps compiling *)

val version : string
(** the toolkit version (= {!Util.Report.version}) *)
