(** Logical views: sets of library-event identifiers (paper, Section 3.1).

    Where a physical view approximates happens-before between memory
    instructions, a logical view approximates happens-before between
    {e library operations}: [(d, e) ∈ G.lhb  iff  d ∈ G(e).logview].
    Event ids are globally unique across all objects
    ({!Compass_event.Registry}), so one set serves every library at once;
    per-object relations are obtained by restriction.

    Logical views ride on exactly the same transfer machinery as physical
    views — release writes attach them to messages, acquire reads join
    them — which is what lets {e external} synchronisation (the MP
    client's flag) transfer library-event observations: the operational
    content of the paper's [SeenQueue(q, G, M)].

    Represented as flat sorted int arrays (like {!View}): joins are merge
    sweeps over unboxed ints, and operations return their argument
    physically unchanged when the result equals it, so stabilised views
    share structure across the whole execution. *)

type t

val empty : t
val is_empty : t -> bool
val cardinal : t -> int
val singleton : int -> t
val mem : int -> t -> bool
val add : int -> t -> t

val join : t -> t -> t
(** set union — the lattice join *)

val union : t -> t -> t
val leq : t -> t -> bool
val subset : t -> t -> bool
val equal : t -> t -> bool
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val elements : t -> int list
val to_seq : t -> int Seq.t
val of_list : int list -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
