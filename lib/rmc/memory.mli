(** The global simulated store: an allocator plus one {!History} per
    location, with race detection for non-atomic accesses.

    Memory is mutable and created fresh per execution: the model checker
    is stateless (it replays executions from decision scripts). *)

type policy = [ `Append | `Gap ]

type t

type error =
  | Race of { loc : Loc.t; tid : int; kind : string }
  | Unallocated of Loc.t
  | Uninitialised of { loc : Loc.t; tid : int }

val pp_error : Format.formatter -> error -> unit

exception Error of error

val create : ?policy:policy -> unit -> t

val alloc : t -> name:string -> size:int -> init_value:Value.t -> Loc.t
(** allocate a block of [size] cells, each with an initialisation write
    of [init_value]; returns the base location *)

val hist : t -> Loc.t -> History.t
(** @raise Error ([Unallocated]) for unknown locations *)

val read_choices : t -> Loc.t -> from:Timestamp.t -> Msg.t ref list
(** the messages an atomic load may read (coherence-filtered, ascending) *)

val latest : t -> Loc.t -> Msg.t ref
val max_ts : t -> Loc.t -> Timestamp.t

val na_check : t -> Loc.t -> tv:Tview.t -> tid:int -> kind:string -> Msg.t ref
(** non-atomic access check: the thread must have observed the mo-maximal
    write, else the access races (ORC11 undefined behaviour, detected).
    @raise Error ([Race]) otherwise *)

val na_read : t -> Loc.t -> tv:Tview.t -> tid:int -> Msg.t ref
(** {!na_check} plus rejection of uninitialised ([Poison]) values.
    @raise Error ([Race] or [Uninitialised]) *)

val write_ts_choices : t -> Loc.t -> above:Timestamp.t -> Timestamp.t list
val add_msg : t -> Msg.t -> unit

type snapshot
(** allocator position plus one {!History.snapshot} per location:
    O(#locations) pointer copies *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** roll the store back to [snapshot]: existing histories are mutated in
    place (handles stay valid) and locations allocated after the snapshot
    are removed *)

val pp : Format.formatter -> t -> unit
