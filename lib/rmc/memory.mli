(** The global simulated store: an allocator plus one {!History} per
    location, with race detection for non-atomic accesses.

    Memory is mutable and created fresh per execution: the model checker
    is stateless (it replays executions from decision scripts).

    Locations get dense ids — blocks are numbered in allocation order and
    a block's cells occupy a contiguous id range — so location lookup is
    two array reads and a bounds check, and store snapshots are array
    sweeps.  The [backend] picks the history representation: [`Flat]
    (default) append-only arrays with O(1) truncating restores, [`Map]
    the persistent-map differential oracle.  The [`Gap] timestamp policy
    requires mid-history insertion and therefore forces [`Map]. *)

type policy = [ `Append | `Gap ]
type backend = [ `Flat | `Map ]
type t

type error =
  | Race of { loc : Loc.t; tid : int; kind : string }
  | Unallocated of Loc.t
  | Uninitialised of { loc : Loc.t; tid : int }

val pp_error : Format.formatter -> error -> unit

exception Error of error

val create : ?policy:policy -> ?backend:backend -> unit -> t
(** [backend] defaults to [`Flat]; [~policy:`Gap] overrides it to
    [`Map] (midpoint timestamps are incompatible with truncating
    restores) *)

val backend : t -> backend
(** the history representation actually in use *)

val alloc : t -> name:string -> size:int -> init_value:Value.t -> Loc.t
(** allocate a block of [size] cells, each with an initialisation write
    of [init_value]; returns the base location *)

val hist : t -> Loc.t -> History.t
(** @raise Error ([Unallocated]) for unknown locations *)

val read_choices : t -> Loc.t -> from:Timestamp.t -> Msg.t ref list
(** the messages an atomic load may read (coherence-filtered, ascending) *)

val read_arity : t -> Loc.t -> from:Timestamp.t -> int
(** [List.length (read_choices ...)] without building the list *)

val read_nth : t -> Loc.t -> from:Timestamp.t -> int -> Msg.t ref
(** [List.nth (read_choices ...) n] without building the list *)

val sat_arity : t -> Loc.t -> from:Timestamp.t -> sat:(Msg.t ref -> bool) -> int
(** readable messages satisfying [sat], counted without materialising
    the filtered list (await / RMW steps) *)

val sat_exists : t -> Loc.t -> from:Timestamp.t -> sat:(Msg.t ref -> bool) -> bool
(** [sat_arity ... > 0] with early exit (await enabledness) *)

val sat_nth :
  t -> Loc.t -> from:Timestamp.t -> sat:(Msg.t ref -> bool) -> int -> Msg.t ref
(** [n]th readable message satisfying [sat] (ascending timestamps) *)

val append_ts : t -> Loc.t -> above:Timestamp.t -> Timestamp.t
(** the unique fresh timestamp under the [`Append] policy (one past the
    maximum of the history top and [above]), without building the
    choice list *)

val latest : t -> Loc.t -> Msg.t ref
val max_ts : t -> Loc.t -> Timestamp.t

val iter_latest : t -> (Loc.t -> Value.t -> unit) -> unit
(** apply [f] to every allocated cell and its mo-maximal value — how the
    static analyzer seeds its abstract store from a freshly built
    machine (post-setup, pre-run) *)

val na_check : t -> Loc.t -> tv:Tview.t -> tid:int -> kind:string -> Msg.t ref
(** non-atomic access check: the thread must have observed the mo-maximal
    write, else the access races (ORC11 undefined behaviour, detected).
    @raise Error ([Race]) otherwise *)

val na_read : t -> Loc.t -> tv:Tview.t -> tid:int -> Msg.t ref
(** {!na_check} plus rejection of uninitialised ([Poison]) values.
    @raise Error ([Race] or [Uninitialised]) *)

val write_ts_choices : t -> Loc.t -> above:Timestamp.t -> Timestamp.t list
val add_msg : t -> Msg.t -> unit

type snapshot
(** allocator position plus one {!History.snapshot} per location:
    an O(#locations) sweep of O(1) captures *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** roll the store back to [snapshot]: existing histories are mutated in
    place (handles stay valid) and locations allocated after the snapshot
    are dropped by truncating the allocator *)

val pp : Format.formatter -> t -> unit
