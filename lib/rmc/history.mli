(** Per-location write histories: the set of a location's write messages,
    keyed by timestamp — its modification order.  This is the [h] of the
    paper's atomic points-to assertion (Section 2.3).

    Two backends share the interface.  [`Flat] (the default) stores the
    history as growable parallel arrays in ascending timestamp order:
    append-only, O(1) length-snapshots, truncating restores, and
    allocation-free readable-message enumeration — the exploration hot
    path.  [`Map] is the original persistent map: it additionally supports
    mid-history insertion (required by the [`Gap] timestamp policy) and
    serves as the differential oracle for the flat backend. *)

type t

val create :
  ?backend:[ `Flat | `Map ] -> loc:Loc.t -> init_value:Value.t -> unit -> t

val max_ts : t -> Timestamp.t
val latest : t -> Msg.t ref
val find_opt : t -> Timestamp.t -> Msg.t ref option
val mem : t -> Timestamp.t -> bool
val cardinal : t -> int

val add : t -> Msg.t -> unit
(** insert a message at a fresh timestamp.  The [`Flat] backend is
    append-only: the timestamp must be strictly above {!max_ts} (the
    [`Append] policy guarantees this); use the [`Map] backend for [`Gap]
    midpoint insertion. *)

type snapshot
(** an O(1) capture of the history: the live length ([`Flat] — restore
    truncates) or the persistent map pointer ([`Map]).  Message refs are
    shared — they are immutable after the machine step that inserts
    them. *)

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

val flat_length : t -> int
(** the live length of a [`Flat] history — its entire rollback state, so
    stores of flat histories can checkpoint as plain int arrays.
    @raise Invalid_argument on the [`Map] backend *)

val truncate : t -> int -> unit
(** roll a [`Flat] history back to a length captured by {!flat_length}.
    @raise Invalid_argument on the [`Map] backend *)

val readable : t -> from:Timestamp.t -> Msg.t ref list
(** all messages a thread whose view of this location is [from] may read
    (coherence forbids reading below the view); ascending timestamp
    order *)

val readable_arity : t -> from:Timestamp.t -> int
(** [List.length (readable h ~from)], without building the list — on the
    flat backend this is a binary search *)

val readable_nth : t -> from:Timestamp.t -> int -> Msg.t ref
(** [List.nth (readable h ~from) n], without building the list — on the
    flat backend this is an array index *)

val sat_arity : t -> from:Timestamp.t -> sat:(Msg.t ref -> bool) -> int
(** number of readable messages satisfying [sat], without materialising
    the filtered list (await / RMW read steps) *)

val sat_exists : t -> from:Timestamp.t -> sat:(Msg.t ref -> bool) -> bool
(** [sat_arity h ~from ~sat > 0], with early exit (await enabledness) *)

val sat_nth : t -> from:Timestamp.t -> sat:(Msg.t ref -> bool) -> int -> Msg.t ref
(** [n]th readable message satisfying [sat] (ascending timestamps);
    [n] must be below the corresponding {!sat_arity} *)

val to_list : t -> Msg.t ref list

val fresh_ts :
  t -> policy:[ `Append | `Gap ] -> above:Timestamp.t -> Timestamp.t list
(** candidate timestamps for a new write that must be mo-after [above]:
    [`Append] gives only past-the-end; [`Gap] also offers free midpoints
    (ascending) *)

val pp : Format.formatter -> t -> unit
