(** Per-location write histories: the set of a location's write messages,
    keyed by timestamp — its modification order.  This is the [h] of the
    paper's atomic points-to assertion (Section 2.3). *)

type t

val create : loc:Loc.t -> init_value:Value.t -> t
val max_ts : t -> Timestamp.t
val latest : t -> Msg.t ref
val find_opt : t -> Timestamp.t -> Msg.t ref option
val mem : t -> Timestamp.t -> bool
val cardinal : t -> int

val add : t -> Msg.t -> unit
(** insert a message at a fresh timestamp *)

type snapshot
(** an O(1) value-copy of the history (the timestamp map is persistent;
    message refs are shared — they are immutable after the machine step
    that inserts them) *)

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit

val readable : t -> from:Timestamp.t -> Msg.t ref list
(** all messages a thread whose view of this location is [from] may read
    (coherence forbids reading below the view); ascending timestamp
    order *)

val to_list : t -> Msg.t ref list

val fresh_ts :
  t -> policy:[ `Append | `Gap ] -> above:Timestamp.t -> Timestamp.t list
(** candidate timestamps for a new write that must be mo-after [above]:
    [`Append] gives only past-the-end; [`Gap] also offers free midpoints
    (ascending) *)

val pp : Format.formatter -> t -> unit
