(* Thread view state and its transitions.

   Each thread carries three physical views and their logical twins:

   - [cur]   the thread's current view (the paper's "seen V");
   - [acq]   an accumulator (>= cur) for message views obtained by relaxed
             reads, released into [cur] by an acquire fence;
   - [rel]   the view frozen by the last release fence (<= cur), attached to
             relaxed writes.

   This is the standard view-machine for RC11-like models (promising
   semantics / iRC11's race detector), restricted to the fragment ORC11
   needs.  The logical components mirror the physical ones exactly, which is
   the whole point: library-event observations flow wherever physical
   synchronisation flows.

   Views are flat shared arrays ({!View}, {!Lview}) whose operations
   return their argument physically unchanged whenever the result equals
   it, so [cur == acq] is the steady state (no relaxed read pending
   acquisition).  The transitions below exploit that: when two components
   are pointer-equal, the lattice work is done once and the result shared
   — which also *preserves* the pointer equality for the next step. *)

type t = {
  cur : View.t;
  acq : View.t;
  rel : View.t;
  cur_l : Lview.t;
  acq_l : Lview.t;
  rel_l : Lview.t;
}

let init =
  {
    cur = View.bot;
    acq = View.bot;
    rel = View.bot;
    cur_l = Lview.empty;
    acq_l = Lview.empty;
    rel_l = Lview.empty;
  }

(* Invariant check, used by tests: rel <= cur <= acq (likewise logically). *)
let wf tv =
  View.leq tv.rel tv.cur && View.leq tv.cur tv.acq
  && Lview.leq tv.rel_l tv.cur_l
  && Lview.leq tv.cur_l tv.acq_l

let join a b =
  {
    cur = View.join a.cur b.cur;
    acq = View.join a.acq b.acq;
    rel = View.join a.rel b.rel;
    cur_l = Lview.join a.cur_l b.cur_l;
    acq_l = Lview.join a.acq_l b.acq_l;
    rel_l = Lview.join a.rel_l b.rel_l;
  }

(* Effect of reading message [m] with access mode [mode] (the paper's
   Acq-Read rule and its relaxed/non-atomic weakenings). *)
let read tv (m : Msg.t) (mode : Mode.access) =
  let cur = View.extend tv.cur m.loc m.ts in
  let acq = if tv.acq == tv.cur then cur else View.extend tv.acq m.loc m.ts in
  if Mode.acquires mode then
    let cur' = View.join cur m.view in
    let acq' = if acq == cur then cur' else View.join acq m.view in
    let cur_l = Lview.join tv.cur_l m.lview in
    let acq_l =
      if tv.acq_l == tv.cur_l then cur_l else Lview.join tv.acq_l m.lview
    in
    { tv with cur = cur'; acq = acq'; cur_l; acq_l }
  else if mode = Mode.Rlx then
    {
      tv with
      cur;
      acq = View.join acq m.view;
      acq_l = Lview.join tv.acq_l m.lview;
    }
  else { tv with cur; acq }

(* Effect of writing to [l] at timestamp [ts] with mode [mode]: returns the
   new thread state and the (physical, logical) release views to attach to
   the message (the paper's Rel-Write rule and weakenings).

   [rmw_read] is the message an RMW read from: C11 release sequences make
   the RMW's store inherit that message's views, so chains of RMWs keep
   propagating the head release. *)
let write tv ~(l : Loc.t) ~(ts : Timestamp.t) ~(mode : Mode.access)
    ?(rmw_read : Msg.t option) () =
  let cur = View.extend tv.cur l ts in
  let acq = if tv.acq == tv.cur then cur else View.extend tv.acq l ts in
  let tv = { tv with cur; acq } in
  let base_view, base_lview =
    if Mode.releases mode then (tv.cur, tv.cur_l)
    else if mode = Mode.Rlx then
      (View.extend tv.rel l ts, tv.rel_l)
    else (View.singleton l ts, Lview.empty)
  in
  let view, lview =
    match rmw_read with
    | None -> (base_view, base_lview)
    | Some m -> (View.join base_view m.view, Lview.join base_lview m.lview)
  in
  (tv, view, lview)

let fence tv (f : Mode.fence) =
  let do_acq tv =
    { tv with cur = View.join tv.cur tv.acq; cur_l = Lview.join tv.cur_l tv.acq_l }
  in
  let do_rel tv = { tv with rel = tv.cur; rel_l = tv.cur_l } in
  match f with
  | Mode.F_acq -> do_acq tv
  | Mode.F_rel -> do_rel tv
  (* F_sc additionally joins the machine's global SC view (both ways),
     which the machine performs — see [Compass_machine.Machine]; the
     thread-local part is acq+rel. *)
  | Mode.F_acqrel | Mode.F_sc -> do_rel (do_acq tv)

(* Record that the thread has observed library event [e] — the operational
   step behind "SeenQueue now contains e" after a commit. *)
let observe_event tv e =
  let cur_l = Lview.add e tv.cur_l in
  let acq_l =
    if tv.acq_l == tv.cur_l then cur_l else Lview.add e tv.acq_l
  in
  { tv with cur_l; acq_l }

let pp ppf tv =
  Format.fprintf ppf "@[<v>cur=%a@ cur_l=%a@]" View.pp tv.cur Lview.pp tv.cur_l
