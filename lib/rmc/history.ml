(* Per-location write histories.

   The history of a location is the set of its write messages, keyed by
   timestamp — the modification order.  This is the [h] of the paper's
   atomic points-to assertion (Section 2.3): a set of write events that may
   still be visible to some threads.  Messages sit behind refs so the
   machine can patch a commit write's logical view in the same atomic step
   that creates the event.

   Two backends share the interface:

   - [Flat] (default): parallel growable arrays, timestamps ascending.
     Exploration with the [`Append] policy only ever appends, so a
     snapshot is the current length and restore is a truncation — O(1)
     both ways, no rebuilding.  Lookup is a binary search; enumeration of
     readable messages is an index range, which gives the machine its
     allocation-free [readable_arity]/[readable_nth] hot path.

   - [Map]: the original persistent [Map.Make(Int)].  It supports
     mid-history insertion, which the [`Gap] timestamp policy needs
     (midpoint timestamps land *between* existing writes, so a truncating
     restore would be unsound), and serves as the differential oracle for
     the flat backend. *)

module Tsmap = Map.Make (Int)

type flat = {
  mutable f_ts : int array; (* sorted strictly ascending; [f_len] live *)
  mutable f_msgs : Msg.t ref array;
  mutable f_len : int;
}

type t = Flat of flat | Map of { mutable msgs : Msg.t ref Tsmap.t }

let create ?(backend = `Flat) ~loc ~init_value () =
  let m0 = ref (Msg.init ~loc ~value:init_value) in
  match backend with
  | `Flat ->
      let cap = 8 in
      let f_ts = Array.make cap 0 and f_msgs = Array.make cap m0 in
      f_ts.(0) <- Timestamp.init;
      Flat { f_ts; f_msgs; f_len = 1 }
  | `Map -> Map { msgs = Tsmap.singleton Timestamp.init m0 }

(* First index in [0, f_len) whose timestamp is >= [k] (so [f_len] when all
   are below): the only search the flat backend ever needs. *)
let lower_bound fl k =
  let lo = ref 0 and hi = ref fl.f_len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get fl.f_ts mid < k then lo := mid + 1 else hi := mid
  done;
  !lo

let max_ts = function
  | Flat fl -> fl.f_ts.(fl.f_len - 1)
  | Map m -> fst (Tsmap.max_binding m.msgs)

let latest = function
  | Flat fl -> fl.f_msgs.(fl.f_len - 1)
  | Map m -> snd (Tsmap.max_binding m.msgs)

let find_opt h ts =
  match h with
  | Flat fl ->
      let i = lower_bound fl ts in
      if i < fl.f_len && fl.f_ts.(i) = ts then Some fl.f_msgs.(i) else None
  | Map m -> Tsmap.find_opt ts m.msgs

let mem h ts =
  match h with
  | Flat fl ->
      let i = lower_bound fl ts in
      i < fl.f_len && fl.f_ts.(i) = ts
  | Map m -> Tsmap.mem ts m.msgs

let cardinal = function
  | Flat fl -> fl.f_len
  | Map m -> Tsmap.cardinal m.msgs

let add h (msg : Msg.t) =
  match h with
  | Flat fl ->
      (* The flat backend is append-only: exploration under the [`Append]
         policy produces strictly ascending timestamps, and that invariant
         is what makes truncating restores sound.  Mid-history insertion
         ([`Gap] midpoints) must use the [Map] backend. *)
      assert (msg.ts > fl.f_ts.(fl.f_len - 1));
      let cap = Array.length fl.f_ts in
      if fl.f_len = cap then begin
        let ncap = cap * 2 in
        let ts = Array.make ncap 0 and msgs = Array.make ncap fl.f_msgs.(0) in
        Array.blit fl.f_ts 0 ts 0 fl.f_len;
        Array.blit fl.f_msgs 0 msgs 0 fl.f_len;
        fl.f_ts <- ts;
        fl.f_msgs <- msgs
      end;
      fl.f_ts.(fl.f_len) <- msg.ts;
      fl.f_msgs.(fl.f_len) <- ref msg;
      fl.f_len <- fl.f_len + 1
  | Map m ->
      assert (not (Tsmap.mem msg.ts m.msgs));
      m.msgs <- Tsmap.add msg.ts (ref msg) m.msgs

(* -- snapshot / restore ------------------------------------------------------

   Flat: the history is append-only, so its past states are exactly its
   prefixes — a snapshot is the length, restore truncates.  Map: the
   timestamp map is persistent, so a snapshot is one pointer.  In both
   backends the message refs behind the structure are shared, which is
   sound because a ref is only mutated (commit-view patching) during the
   machine step that inserts it: snapshots are taken at step boundaries,
   after which every reachable message is immutable. *)

type snapshot = S_len of int | S_map of Msg.t ref Tsmap.t

let snapshot = function
  | Flat fl -> S_len fl.f_len
  | Map m -> S_map m.msgs

let restore h s =
  match (h, s) with
  | Flat fl, S_len n -> fl.f_len <- n
  | Map m, S_map msgs -> m.msgs <- msgs
  | _ -> invalid_arg "History.restore: snapshot from a different backend"

(* Unboxed snapshot path for flat histories: the entire rollback state is
   one integer, so a store of flat histories can checkpoint itself as a
   plain int array instead of an array of [S_len] boxes. *)
let flat_length = function
  | Flat fl -> fl.f_len
  | Map _ -> invalid_arg "History.flat_length: map backend"

let truncate h n =
  match h with
  | Flat fl -> fl.f_len <- n
  | Map _ -> invalid_arg "History.truncate: map backend"

(* -- readable messages -------------------------------------------------------

   All messages readable by a thread whose view of this location is [from]:
   coherence forbids reading below the view, nothing forbids reading above.
   Ascending timestamp order throughout.

   The arity/nth pair is the machine's hot path: on the flat backend the
   readable set is the index range [lower_bound .. f_len), so counting and
   indexing allocate nothing.  The [sat_]* variants fold a predicate in
   (RMW and await steps) without materialising the filtered list. *)

let readable_arity h ~from =
  match h with
  | Flat fl -> fl.f_len - lower_bound fl from
  | Map m ->
      Tsmap.fold
        (fun ts _ acc -> if Timestamp.leq from ts then acc + 1 else acc)
        m.msgs 0

let readable_nth h ~from n =
  match h with
  | Flat fl -> fl.f_msgs.(lower_bound fl from + n)
  | Map m ->
      let k = ref n and r = ref None in
      (try
         Tsmap.iter
           (fun ts msg ->
             if Timestamp.leq from ts then
               if !k = 0 then begin
                 r := Some msg;
                 raise Exit
               end
               else decr k)
           m.msgs
       with Exit -> ());
      Option.get !r

let sat_arity h ~from ~sat =
  match h with
  | Flat fl ->
      let n = ref 0 in
      for i = lower_bound fl from to fl.f_len - 1 do
        if sat (Array.unsafe_get fl.f_msgs i) then incr n
      done;
      !n
  | Map m ->
      Tsmap.fold
        (fun ts msg acc ->
          if Timestamp.leq from ts && sat msg then acc + 1 else acc)
        m.msgs 0

let sat_exists h ~from ~sat =
  match h with
  | Flat fl ->
      let rec go i =
        i < fl.f_len && (sat (Array.unsafe_get fl.f_msgs i) || go (i + 1))
      in
      go (lower_bound fl from)
  | Map m -> Tsmap.exists (fun ts msg -> Timestamp.leq from ts && sat msg) m.msgs

let sat_nth h ~from ~sat n =
  match h with
  | Flat fl ->
      let k = ref n and r = ref None and i = ref (lower_bound fl from) in
      while !r = None do
        let msg = fl.f_msgs.(!i) in
        if sat msg then
          if !k = 0 then r := Some msg else decr k;
        incr i
      done;
      Option.get !r
  | Map m ->
      let k = ref n and r = ref None in
      (try
         Tsmap.iter
           (fun ts msg ->
             if Timestamp.leq from ts && sat msg then
               if !k = 0 then begin
                 r := Some msg;
                 raise Exit
               end
               else decr k)
           m.msgs
       with Exit -> ());
      Option.get !r

let readable h ~from =
  match h with
  | Flat fl ->
      let lo = lower_bound fl from in
      let rec go i acc =
        if i < lo then acc else go (i - 1) (fl.f_msgs.(i) :: acc)
      in
      go (fl.f_len - 1) []
  | Map m ->
      Tsmap.fold
        (fun ts msg acc -> if Timestamp.leq from ts then msg :: acc else acc)
        m.msgs []
      |> List.rev

let to_list = function
  | Flat fl -> Array.to_list (Array.sub fl.f_msgs 0 fl.f_len)
  | Map m -> Tsmap.bindings m.msgs |> List.map snd

let timestamps = function
  | Flat fl -> Array.to_list (Array.sub fl.f_ts 0 fl.f_len)
  | Map m -> Tsmap.bindings m.msgs |> List.map fst

(* Next unused timestamp strictly above [above], per the allocation policy:
   [`Append] always goes past the maximum; [`Gap] may land between existing
   writes when a midpoint slot is free.  Returns candidates (ascending).
   [`Gap] enumeration works on either backend (it only reads), but the
   resulting midpoint *writes* require the [Map] backend. *)
let fresh_ts h ~policy ~above =
  let top = Timestamp.max (max_ts h) above in
  match policy with
  | `Append -> [ top + 1 ]
  | `Gap ->
      let tss = timestamps h in
      let rec mids = function
        | a :: (b :: _ as rest) ->
            let here =
              if Timestamp.lt above b then
                match Timestamp.midpoint (Timestamp.max a above) b with
                | Some m when not (mem h m) -> [ m ]
                | _ -> []
              else []
            in
            here @ mids rest
        | _ -> []
      in
      mids tss @ [ top + Timestamp.stride ]

let pp ppf h =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf m -> Msg.pp ppf !m))
    (to_list h)
