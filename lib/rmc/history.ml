(* Per-location write histories.

   The history of a location is the set of its write messages, keyed by
   timestamp — the modification order.  This is the [h] of the paper's
   atomic points-to assertion (Section 2.3): a set of write events that may
   still be visible to some threads.  Messages sit behind refs so the
   machine can patch a commit write's logical view in the same atomic step
   that creates the event. *)

module Tsmap = Map.Make (Int)

type t = { mutable msgs : Msg.t ref Tsmap.t }

let create ~loc ~init_value =
  { msgs = Tsmap.singleton Timestamp.init (ref (Msg.init ~loc ~value:init_value)) }

let max_ts h = fst (Tsmap.max_binding h.msgs)
let latest h = snd (Tsmap.max_binding h.msgs)
let find_opt h ts = Tsmap.find_opt ts h.msgs
let mem h ts = Tsmap.mem ts h.msgs
let cardinal h = Tsmap.cardinal h.msgs

let add h (m : Msg.t) =
  assert (not (mem h m.ts));
  h.msgs <- Tsmap.add m.ts (ref m) h.msgs

(* -- snapshot / restore ------------------------------------------------------

   The timestamp map is persistent, so a snapshot is one pointer.  The
   message refs behind it are shared, which is sound because a ref is only
   mutated (commit-view patching) during the machine step that inserts it:
   snapshots are taken at step boundaries, after which every reachable
   message is immutable. *)

type snapshot = Msg.t ref Tsmap.t

let snapshot h = h.msgs
let restore h s = h.msgs <- s

(* All messages readable by a thread whose view of this location is [from]:
   coherence forbids reading below the view, nothing forbids reading above.
   Returned in ascending timestamp order. *)
let readable h ~from =
  Tsmap.fold
    (fun ts m acc -> if Timestamp.leq from ts then m :: acc else acc)
    h.msgs []
  |> List.rev

let to_list h = Tsmap.bindings h.msgs |> List.map snd

(* Next unused timestamp strictly above [above], per the allocation policy:
   [`Append] always goes past the maximum; [`Gap] may land between existing
   writes when a midpoint slot is free.  Returns candidates (ascending). *)
let fresh_ts h ~policy ~above =
  let top = Timestamp.max (max_ts h) above in
  match policy with
  | `Append -> [ top + 1 ]
  | `Gap ->
      (* Candidate slots: midpoints between consecutive writes above [above],
         plus one past the end (spaced by the stride to keep gaps open). *)
      let tss = Tsmap.bindings h.msgs |> List.map fst in
      let rec mids = function
        | a :: (b :: _ as rest) ->
            let here =
              if Timestamp.lt above b then
                match Timestamp.midpoint (Timestamp.max a above) b with
                | Some m when not (Tsmap.mem m h.msgs) -> [ m ]
                | _ -> []
              else []
            in
            here @ mids rest
        | _ -> []
      in
      mids tss @ [ top + Timestamp.stride ]

let pp ppf h =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf m -> Msg.pp ppf !m))
    (to_list h)
