(** Memory locations: offsets into allocated blocks.

    A location is a pair of a block identifier (handed out by
    {!Memory.alloc}) and an offset within the block.  Named blocks make
    traces and DOT dumps readable; names are metadata only and do not
    affect semantics. *)

type t = { base : int; off : int }

val compare : t -> t -> int
val equal : t -> t -> bool
val hash : t -> int

val make : base:int -> off:int -> t
val base : t -> int
val off : t -> int

val key : t -> int
(** packed integer key, ordered like {!compare} (requires
    [0 <= off < 2^16], which the allocator guarantees) — the index type of
    the flat view representation *)

val of_key : int -> t
(** inverse of {!key} *)

val shift : t -> int -> t
(** [shift l i] is the cell [i] slots past [l] within the same block.
    Bounds are the allocator's concern, not checked here. *)

val register_name : base:int -> name:string -> unit
(** Associate a human-readable name with a block, for printing. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
