(* Memory locations.

   A location is an offset into an allocated block.  Blocks are identified by
   an integer [base] handed out by the machine's allocator; [off] selects a
   cell within the block.  Named blocks make traces and DOT dumps readable. *)

type t = { base : int; off : int }

let compare (a : t) (b : t) =
  match Int.compare a.base b.base with
  | 0 -> Int.compare a.off b.off
  | c -> c

let equal a b = compare a b = 0
let hash (l : t) = (l.base * 65599) + l.off
let make ~base ~off = { base; off }
let base l = l.base
let off l = l.off

(* Packed integer key, used by the flat view representation: lexicographic
   on (base, off) exactly like {!compare}, provided [0 <= off < 2^16] —
   which the allocator guarantees (block sizes are tiny).  Keys sort the
   same way locations do, so flat views enumerate entries in the same
   order {!Map}-based code did. *)
let off_bits = 16
let off_mask = (1 lsl off_bits) - 1
let key l = (l.base lsl off_bits) lor l.off
let of_key k = { base = k lsr off_bits; off = k land off_mask }

(* Pointer arithmetic within a block: [shift l i] is the cell [i] slots past
   [l].  Blocks are bounds-checked by the allocator, not here. *)
let shift l i = { l with off = l.off + i }

(* Human-readable names for allocated blocks, for trace output only.  The
   registry is global and append-only; it does not affect semantics.  It is
   the one piece of process-global mutable state the machine touches, so
   reads must be safe from every domain at once: the work-stealing
   exploration frontier runs one machine per worker on several domains,
   and each execution's setup re-registers the same (base, name) pairs.

   The table is therefore kept as an immutable map behind an [Atomic]:
   lookups are a single atomic load (no lock, no contention), and the
   write path first checks — again lock-free — whether the binding is
   already present, so steady-state re-registration by every domain costs
   one read and takes the mutex only for genuinely new names.  Writers
   serialise on the mutex to make read-modify-write of the map atomic. *)
module Imap = Map.Make (Int)

let names : string Imap.t Atomic.t = Atomic.make Imap.empty
let names_mutex = Mutex.create ()

let find_name base = Imap.find_opt base (Atomic.get names)

let register_name ~base ~name =
  match find_name base with
  | Some n when String.equal n name -> ()  (* interned already: lock-free *)
  | _ ->
      Mutex.lock names_mutex;
      Atomic.set names (Imap.add base name (Atomic.get names));
      Mutex.unlock names_mutex

let pp ppf l =
  let name =
    match find_name l.base with
    | Some n -> n
    | None -> Printf.sprintf "b%d" l.base
  in
  if l.off = 0 then Format.fprintf ppf "%s" name
  else Format.fprintf ppf "%s[%d]" name l.off

let to_string l = Format.asprintf "%a" pp l

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
