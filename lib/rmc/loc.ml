(* Memory locations.

   A location is an offset into an allocated block.  Blocks are identified by
   an integer [base] handed out by the machine's allocator; [off] selects a
   cell within the block.  Named blocks make traces and DOT dumps readable. *)

type t = { base : int; off : int }

let compare (a : t) (b : t) =
  match Int.compare a.base b.base with
  | 0 -> Int.compare a.off b.off
  | c -> c

let equal a b = compare a b = 0
let hash (l : t) = (l.base * 65599) + l.off
let make ~base ~off = { base; off }
let base l = l.base
let off l = l.off

(* Pointer arithmetic within a block: [shift l i] is the cell [i] slots past
   [l].  Blocks are bounds-checked by the allocator, not here. *)
let shift l i = { l with off = l.off + i }

(* Human-readable names for allocated blocks, for trace output only.  The
   registry is global and append-only; it does not affect semantics.  It is
   the one piece of process-global mutable state the machine touches, so it
   is guarded by a mutex: the parallel explorer ({!Explore.pdfs}) runs one
   machine per execution on several domains at once, and unsynchronised
   [Hashtbl] writes can corrupt the table during a resize. *)
let names : (int, string) Hashtbl.t = Hashtbl.create 64
let names_mutex = Mutex.create ()

let register_name ~base ~name =
  Mutex.lock names_mutex;
  Hashtbl.replace names base name;
  Mutex.unlock names_mutex

let find_name base =
  Mutex.lock names_mutex;
  let n = Hashtbl.find_opt names base in
  Mutex.unlock names_mutex;
  n

let pp ppf l =
  let name =
    match find_name l.base with
    | Some n -> n
    | None -> Printf.sprintf "b%d" l.base
  in
  if l.off = 0 then Format.fprintf ppf "%s" name
  else Format.fprintf ppf "%s[%d]" name l.off

let to_string l = Format.asprintf "%a" pp l

module Map = Map.Make (struct
  type nonrec t = t

  let compare = compare
end)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
