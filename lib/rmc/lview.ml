(* Logical views: sets of library-event identifiers.

   This is the paper's key device (Section 3.1): where a physical view
   approximates happens-before between *memory instructions*, a logical view
   approximates happens-before between *library operations*.  Event ids are
   globally unique across all library objects (see [Compass_event.Graph]), so
   a single set suffices; per-object relations are obtained by restriction.

   Logical views piggyback on exactly the same transfer machinery as
   physical views: every message carries one, release writes attach the
   writer's current logical view, acquire reads join the message's logical
   view into the reader's.  This is what makes *external* synchronisation
   (e.g. the MP client's flag) transfer library-event observations — the
   operational counterpart of the paper's [SeenQueue(q, G, M)] assertions.

   Representation: a sorted int array of distinct event ids, immutable
   after construction — the same flat shape as {!View}, for the same
   reason: joins on the machine's hot path are O(n+m) merge sweeps over
   unboxed ints, and every operation returns its *argument* unchanged
   when the result would equal it, so views that stabilise flow through
   by pointer and [a == b] short-circuits the lattice operations. *)

type t = int array

let empty : t = [||]
let is_empty (s : t) = Array.length s = 0
let cardinal (s : t) = Array.length s
let singleton e : t = [| e |]

let mem e (s : t) =
  let n = Array.length s in
  let rec go i =
    if i >= n then false
    else
      let x = Array.unsafe_get s i in
      if x < e then go (i + 1) else x = e
  in
  go 0

let add e (s : t) : t =
  if mem e s then s
  else begin
    let n = Array.length s in
    let r = Array.make (n + 1) e in
    let rec pos i = if i < n && s.(i) < e then pos (i + 1) else i in
    let p = pos 0 in
    Array.blit s 0 r 0 p;
    Array.blit s p r (p + 1) (n - p);
    r.(p) <- e;
    r
  end

(* Union with subset fast paths: returns the dominant argument unchanged
   when one side contains the other. *)
let join (a : t) (b : t) : t =
  if a == b then a
  else
    let na = Array.length a and nb = Array.length b in
    if na = 0 then b
    else if nb = 0 then a
    else begin
      let n = ref 0 and a_dom = ref true and b_dom = ref true in
      let i = ref 0 and j = ref 0 in
      while !i < na && !j < nb do
        incr n;
        let x = a.(!i) and y = b.(!j) in
        if x < y then begin
          b_dom := false;
          incr i
        end
        else if y < x then begin
          a_dom := false;
          incr j
        end
        else begin
          incr i;
          incr j
        end
      done;
      if !i < na then begin
        b_dom := false;
        n := !n + na - !i
      end;
      if !j < nb then begin
        a_dom := false;
        n := !n + nb - !j
      end;
      if !a_dom then a
      else if !b_dom then b
      else begin
        let r = Array.make !n 0 in
        let i = ref 0 and j = ref 0 and o = ref 0 in
        while !i < na && !j < nb do
          let x = a.(!i) and y = b.(!j) in
          if x < y then begin
            r.(!o) <- x;
            incr i
          end
          else if y < x then begin
            r.(!o) <- y;
            incr j
          end
          else begin
            r.(!o) <- x;
            incr i;
            incr j
          end;
          incr o
        done;
        while !i < na do
          r.(!o) <- a.(!i);
          incr i;
          incr o
        done;
        while !j < nb do
          r.(!o) <- b.(!j);
          incr j;
          incr o
        done;
        r
      end
    end

let union = join

let leq (a : t) (b : t) =
  a == b
  ||
  let na = Array.length a and nb = Array.length b in
  let rec go i j =
    if i >= na then true
    else if j >= nb then false
    else
      let x = a.(i) and y = b.(j) in
      if y < x then go i (j + 1) else if x = y then go (i + 1) (j + 1) else false
  in
  go 0 0

let subset = leq

let equal (a : t) (b : t) =
  a == b
  || (Array.length a = Array.length b
     &&
     let n = Array.length a in
     let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
     go 0)

let iter f (s : t) = Array.iter f s
let fold f (s : t) acc = Array.fold_left (fun acc e -> f e acc) acc s
let elements (s : t) = Array.to_list s
let to_seq (s : t) = Array.to_seq s
let of_list l : t = Array.of_list (List.sort_uniq Int.compare l)

let pp ppf (s : t) =
  Format.fprintf ppf "{@[";
  Array.iteri
    (fun i e ->
      if i > 0 then Format.fprintf ppf ",@ ";
      Format.fprintf ppf "e%d" e)
    s;
  Format.fprintf ppf "@]}"

let to_string s = Format.asprintf "%a" pp s
