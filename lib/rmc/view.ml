(* Physical views: finite maps from locations to timestamps.

   A thread's view records, per location, the latest write it has observed
   (the paper's [View ::= Loc -> Time], Section 2.3).  A location absent from
   the view has never been observed at all — this is strictly below the
   initialisation timestamp, so that non-atomic accesses by threads that have
   not even synchronised with the allocation are flagged as races.

   Representation: two parallel int arrays sorted by packed location key
   ({!Loc.key} orders exactly like [Loc.compare]), immutable after
   construction.  Views are tiny (one entry per location the thread has
   seen), so join and leq are single O(n+m) merge sweeps over unboxed
   ints — no balanced-tree nodes, no per-entry allocation.

   Sharing is the point: every operation returns its *argument* when the
   result would be equal to it ([extend] of an already-dominated entry,
   [join] with a subsumed view), so in the machine's steady state views
   flow through operations by pointer and [a == b] short-circuits the
   lattice operations.  This is hash-consing by construction: instead of a
   global intern table (which the multi-domain explorer would have to
   lock), equal views become pointer-equal because they are never re-built
   in the first place. *)

type t = { ks : int array; ts : int array }

let bot : t = { ks = [||]; ts = [||] }

(* [unseen] is returned for locations the view has no entry for; it is below
   [Timestamp.init] so "observed the initialisation write" is expressible. *)
let unseen : Timestamp.t = -1

(* Index of key [k] in [v.ks], or [-1].  Views are small; a linear scan
   with early exit beats binary search dispatch for the common sizes. *)
let find (v : t) k =
  let ks = v.ks in
  let n = Array.length ks in
  let rec go i =
    if i >= n then -1
    else
      let ki = Array.unsafe_get ks i in
      if ki < k then go (i + 1) else if ki = k then i else -1
  in
  go 0

let get (v : t) (l : Loc.t) =
  let i = find v (Loc.key l) in
  if i >= 0 then v.ts.(i) else unseen

let observed v l = get v l >= Timestamp.init
let singleton l t : t = { ks = [| Loc.key l |]; ts = [| t |] }
let cardinal (v : t) = Array.length v.ks

(* Insert or overwrite entry [k -> t]. *)
let put (v : t) k t : t =
  let i = find v k in
  if i >= 0 then
    if v.ts.(i) = t then v
    else begin
      let ts = Array.copy v.ts in
      ts.(i) <- t;
      { ks = v.ks; ts }
    end
  else begin
    let n = Array.length v.ks in
    let ks = Array.make (n + 1) k and ts = Array.make (n + 1) t in
    (* insertion position: first index with key > k *)
    let rec pos i = if i < n && v.ks.(i) < k then pos (i + 1) else i in
    let p = pos 0 in
    Array.blit v.ks 0 ks 0 p;
    Array.blit v.ts 0 ts 0 p;
    Array.blit v.ks p ks (p + 1) (n - p);
    Array.blit v.ts p ts (p + 1) (n - p);
    ks.(p) <- k;
    ts.(p) <- t;
    { ks; ts }
  end

let set (v : t) l t : t = put v (Loc.key l) t

(* Record an observation, keeping the view monotone: the entry only grows —
   and the view is returned unchanged (physically) when it already
   dominates. *)
let extend (v : t) l t : t =
  let k = Loc.key l in
  let i = find v k in
  if i >= 0 && v.ts.(i) >= t then v else put v k t

let join (a : t) (b : t) : t =
  if a == b then a
  else
    let na = Array.length a.ks and nb = Array.length b.ks in
    if na = 0 then b
    else if nb = 0 then a
    else begin
      (* Pass 1: union size, and whether either input already IS the
         union (pointwise dominant with every key of the other). *)
      let n = ref 0 and a_dom = ref true and b_dom = ref true in
      let i = ref 0 and j = ref 0 in
      while !i < na && !j < nb do
        incr n;
        let ka = a.ks.(!i) and kb = b.ks.(!j) in
        if ka < kb then begin
          b_dom := false;
          incr i
        end
        else if kb < ka then begin
          a_dom := false;
          incr j
        end
        else begin
          let ta = a.ts.(!i) and tb = b.ts.(!j) in
          if ta < tb then a_dom := false else if tb < ta then b_dom := false;
          incr i;
          incr j
        end
      done;
      if !i < na then begin
        b_dom := false;
        n := !n + na - !i
      end;
      if !j < nb then begin
        a_dom := false;
        n := !n + nb - !j
      end;
      if !a_dom then a
      else if !b_dom then b
      else begin
        let ks = Array.make !n 0 and ts = Array.make !n 0 in
        let i = ref 0 and j = ref 0 and o = ref 0 in
        while !i < na && !j < nb do
          let ka = a.ks.(!i) and kb = b.ks.(!j) in
          if ka < kb then begin
            ks.(!o) <- ka;
            ts.(!o) <- a.ts.(!i);
            incr i
          end
          else if kb < ka then begin
            ks.(!o) <- kb;
            ts.(!o) <- b.ts.(!j);
            incr j
          end
          else begin
            ks.(!o) <- ka;
            ts.(!o) <- (if a.ts.(!i) >= b.ts.(!j) then a.ts.(!i) else b.ts.(!j));
            incr i;
            incr j
          end;
          incr o
        done;
        while !i < na do
          ks.(!o) <- a.ks.(!i);
          ts.(!o) <- a.ts.(!i);
          incr i;
          incr o
        done;
        while !j < nb do
          ks.(!o) <- b.ks.(!j);
          ts.(!o) <- b.ts.(!j);
          incr j;
          incr o
        done;
        { ks; ts }
      end
    end

let leq (a : t) (b : t) =
  a == b
  ||
  let na = Array.length a.ks and nb = Array.length b.ks in
  let rec go i j =
    if i >= na then true
    else if j >= nb then false
    else
      let ka = a.ks.(i) and kb = b.ks.(j) in
      if kb < ka then go i (j + 1)
      else if ka = kb then a.ts.(i) <= b.ts.(j) && go (i + 1) (j + 1)
      else false (* ka only in a: b has no entry, i.e. b's value is unseen *)
  in
  go 0 0

let equal (a : t) (b : t) =
  a == b
  || (Array.length a.ks = Array.length b.ks
     &&
     let n = Array.length a.ks in
     let rec go i =
       i >= n || (a.ks.(i) = b.ks.(i) && a.ts.(i) = b.ts.(i) && go (i + 1))
     in
     go 0)

let fold f (v : t) acc =
  let n = Array.length v.ks in
  let rec go i acc =
    if i >= n then acc else go (i + 1) (f (Loc.of_key v.ks.(i)) v.ts.(i) acc)
  in
  go 0 acc

let pp ppf (v : t) =
  Format.fprintf ppf "{@[";
  Array.iteri
    (fun i k ->
      if i > 0 then Format.fprintf ppf ",@ ";
      Format.fprintf ppf "%a@@%a" Loc.pp (Loc.of_key k) Timestamp.pp v.ts.(i))
    v.ks;
  Format.fprintf ppf "@]}"

let to_string v = Format.asprintf "%a" pp v
