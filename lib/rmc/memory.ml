(* Global simulated memory: an allocator plus one history per location.

   Memory is mutable and created fresh for every execution (the model
   checker is stateless: it re-runs executions from decision scripts rather
   than snapshotting state).

   Locations get *dense ids*: blocks are numbered in allocation order and a
   block's cells occupy a contiguous id range, so [loc -> history] is two
   array reads and a bounds check — no hashing on the hot path, and a
   snapshot walk is an array sweep.  Deallocation only happens via
   [restore], which rolls the allocator back to a prefix, so the id space
   truncates exactly like everything else.

   The [backend] selects the {!History} representation: [`Flat] (default)
   is the append-only array form with O(1) truncating restores; [`Map] is
   the persistent-map oracle.  The [`Gap] timestamp policy inserts
   midpoint timestamps *between* existing writes, which the flat form
   cannot restore by truncation — so [`Gap] forces the [`Map] backend. *)

type policy = [ `Append | `Gap ]
type backend = [ `Flat | `Map ]

type hist_snaps =
  | S_flat of int array
      (** flat backend: the live length of each history — unboxed, one
          int array for the whole store *)
  | S_gen of History.snapshot array  (** map backend: per-history snapshots *)

type snapshot = {
  s_version : int;
  s_n_blocks : int;
  s_n_locs : int;
  s_hists : hist_snaps;  (** aligned with {!t.hists} *)
}

type t = {
  mutable block_start : int array;  (** id of block [b]'s first cell *)
  mutable block_size : int array;
  mutable n_blocks : int;
  mutable hists : History.t array;  (** indexed by dense location id *)
  mutable n_locs : int;
  policy : policy;
  backend : backend;
  mutable version : int;
      (** identifies the store's content: fresh after every mutation, set
          back to the snapshot's version on restore — so an unchanged
          version means an unchanged store and snapshots can be reused *)
  mutable vnext : int;  (** next fresh version (monotone, never reused) *)
  mutable snap_cache : snapshot option;
}

type error =
  | Race of { loc : Loc.t; tid : int; kind : string }
  | Unallocated of Loc.t
  | Uninitialised of { loc : Loc.t; tid : int }

let pp_error ppf = function
  | Race { loc; tid; kind } ->
      Format.fprintf ppf "data race on %a by thread %d (%s)" Loc.pp loc tid kind
  | Unallocated l -> Format.fprintf ppf "access to unallocated %a" Loc.pp l
  | Uninitialised { loc; tid } ->
      Format.fprintf ppf "uninitialised non-atomic read of %a by thread %d"
        Loc.pp loc tid

exception Error of error

let error e = raise (Error e)

let create ?(policy = `Append) ?backend () =
  let backend =
    match (policy, backend) with
    | `Gap, _ -> `Map (* midpoint insertion: truncating restore unsound *)
    | `Append, Some b -> b
    | `Append, None -> `Flat
  in
  {
    block_start = [||];
    block_size = [||];
    n_blocks = 0;
    hists = [||];
    n_locs = 0;
    policy;
    backend;
    version = 0;
    vnext = 1;
    snap_cache = None;
  }

let backend mem = mem.backend

let touch mem =
  mem.version <- mem.vnext;
  mem.vnext <- mem.vnext + 1

let grow_int_array a len =
  let cap = Array.length a in
  if len < cap then a
  else begin
    let r = Array.make (if cap = 0 then 16 else 2 * cap) 0 in
    Array.blit a 0 r 0 cap;
    r
  end

let alloc mem ~name ~size ~init_value =
  touch mem;
  let base = mem.n_blocks in
  mem.block_start <- grow_int_array mem.block_start base;
  mem.block_size <- grow_int_array mem.block_size base;
  mem.block_start.(base) <- mem.n_locs;
  mem.block_size.(base) <- size;
  mem.n_blocks <- base + 1;
  Loc.register_name ~base ~name;
  for off = 0 to size - 1 do
    let loc = Loc.make ~base ~off in
    let h = History.create ~backend:mem.backend ~loc ~init_value () in
    let cap = Array.length mem.hists in
    if mem.n_locs >= cap then begin
      let r = Array.make (if cap = 0 then 16 else 2 * cap) h in
      Array.blit mem.hists 0 r 0 cap;
      mem.hists <- r
    end;
    mem.hists.(mem.n_locs) <- h;
    mem.n_locs <- mem.n_locs + 1
  done;
  Loc.make ~base ~off:0

(* Dense id of [l], or a raised [Unallocated]: two array reads and two
   bounds checks, no hashing. *)
let loc_id mem (l : Loc.t) =
  let b = l.Loc.base in
  if b < 0 || b >= mem.n_blocks || l.Loc.off < 0
     || l.Loc.off >= mem.block_size.(b)
  then error (Unallocated l);
  mem.block_start.(b) + l.Loc.off

let hist mem l = mem.hists.(loc_id mem l)

(* All messages a thread with view-of-[l] [from] may read.  Non-atomic reads
   are handled separately in [na_read]. *)
let read_choices mem l ~from = History.readable (hist mem l) ~from

(* Allocation-free variants of [read_choices] — the machine's hot path
   counts choices and indexes into them without building lists. *)
let read_arity mem l ~from = History.readable_arity (hist mem l) ~from
let read_nth mem l ~from n = History.readable_nth (hist mem l) ~from n
let sat_arity mem l ~from ~sat = History.sat_arity (hist mem l) ~from ~sat
let sat_exists mem l ~from ~sat = History.sat_exists (hist mem l) ~from ~sat
let sat_nth mem l ~from ~sat n = History.sat_nth (hist mem l) ~from ~sat n
let latest mem l = History.latest (hist mem l)
let max_ts mem l = History.max_ts (hist mem l)

(* Iterate the mo-maximal value of every allocated cell — the static
   analyzer seeds its abstract store from a built machine's memory this
   way (after setup, "latest" is simply "the setup's write"). *)
let iter_latest mem f =
  for base = 0 to mem.n_blocks - 1 do
    for off = 0 to mem.block_size.(base) - 1 do
      let l = Loc.make ~base ~off in
      f l !(latest mem l).Msg.value
    done
  done

(* The [`Append] policy admits exactly one fresh timestamp: one past the
   end — computed without consing the singleton choice list. *)
let append_ts mem l ~above = Timestamp.max (max_ts mem l) above + 1

(* Non-atomic access check: the accessing thread must have observed the
   mo-maximal write to the location, otherwise the access races with that
   write (ORC11 makes racy non-atomics undefined behaviour; we *detect* and
   report them instead).  Returns the unique readable message. *)
let na_check mem l ~(tv : Tview.t) ~tid ~kind =
  let h = hist mem l in
  let m = History.latest h in
  if not (Timestamp.leq (History.max_ts h) (View.get tv.Tview.cur l)) then
    error (Race { loc = l; tid; kind });
  m

let na_read mem l ~tv ~tid =
  let m = na_check mem l ~tv ~tid ~kind:"na-read" in
  (match !m.Msg.value with
  | Value.Poison -> error (Uninitialised { loc = l; tid })
  | _ -> ());
  m

(* Candidate timestamps for a new write by a thread whose view of [l] is
   [above]; the new write must be mo-after everything the writer observed. *)
let write_ts_choices mem l ~above =
  History.fresh_ts (hist mem l) ~policy:mem.policy ~above

let add_msg mem (m : Msg.t) =
  touch mem;
  History.add (hist mem m.loc) m

(* -- snapshot / restore ------------------------------------------------------

   A snapshot captures the allocator position plus one {!History.snapshot}
   per location — an array sweep of O(#locations) O(1) captures (a length
   for flat histories, a persistent-map pointer for the oracle); nothing
   message-level is duplicated.

   [restore] mutates the existing {!History.t} records in place (callers
   may hold handles to them) and truncates the allocator, dropping
   locations allocated after the snapshot; re-executing the suffix
   re-allocates them at the same bases and ids.  Restore targets are
   always states along the current execution's prefix, so the snapshotted
   locations are exactly the first [s_n_locs] ids.

   Snapshots are version-cached: reads don't [touch] the store, so the
   checkpoint-per-step explorer reuses one snapshot across read-only
   steps instead of rebuilding the array. *)

let build_snapshot mem =
  let s_hists =
    match mem.backend with
    | `Flat ->
        S_flat (Array.init mem.n_locs (fun i -> History.flat_length mem.hists.(i)))
    | `Map ->
        S_gen (Array.init mem.n_locs (fun i -> History.snapshot mem.hists.(i)))
  in
  {
    s_version = mem.version;
    s_n_blocks = mem.n_blocks;
    s_n_locs = mem.n_locs;
    s_hists;
  }

let snapshot mem =
  match mem.snap_cache with
  | Some s when s.s_version = mem.version -> s
  | _ ->
      let s = build_snapshot mem in
      mem.snap_cache <- Some s;
      s

let restore mem s =
  if s.s_n_locs > mem.n_locs then
    invalid_arg "Memory.restore: snapshot from a different store";
  mem.n_blocks <- s.s_n_blocks;
  mem.n_locs <- s.s_n_locs;
  (match s.s_hists with
  | S_flat lens ->
      for i = 0 to s.s_n_locs - 1 do
        History.truncate mem.hists.(i) lens.(i)
      done
  | S_gen snaps ->
      for i = 0 to s.s_n_locs - 1 do
        History.restore mem.hists.(i) snaps.(i)
      done);
  (* The store's content is now exactly what [s] captured. *)
  mem.version <- s.s_version;
  mem.snap_cache <- Some s

let pp ppf mem =
  for b = 0 to mem.n_blocks - 1 do
    for off = 0 to mem.block_size.(b) - 1 do
      let l = Loc.make ~base:b ~off in
      Format.fprintf ppf "%a: %a@." Loc.pp l History.pp
        mem.hists.(mem.block_start.(b) + off)
    done
  done
