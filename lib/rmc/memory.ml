(* Global simulated memory: an allocator plus one history per location.

   Memory is mutable and created fresh for every execution (the model
   checker is stateless: it re-runs executions from decision scripts rather
   than snapshotting state). *)

type policy = [ `Append | `Gap ]

type snapshot = {
  s_version : int;
  s_next_base : int;
  s_n_locs : int;
  s_hists : History.snapshot array;
      (** aligned with {!t.order} (newest first) *)
}

type t = {
  mutable next_base : int;
  hists : (Loc.t, History.t) Hashtbl.t;
  mutable order : (Loc.t * History.t) list;
      (** allocation order, newest first — the snapshot walk order, so
          snapshots need no [Hashtbl.fold] *)
  mutable n_locs : int;
  policy : policy;
  mutable version : int;
      (** identifies the store's content: fresh after every mutation, set
          back to the snapshot's version on restore — so an unchanged
          version means an unchanged store and snapshots can be reused *)
  mutable vnext : int;  (** next fresh version (monotone, never reused) *)
  mutable snap_cache : snapshot option;
}

type error =
  | Race of { loc : Loc.t; tid : int; kind : string }
  | Unallocated of Loc.t
  | Uninitialised of { loc : Loc.t; tid : int }

let pp_error ppf = function
  | Race { loc; tid; kind } ->
      Format.fprintf ppf "data race on %a by thread %d (%s)" Loc.pp loc tid kind
  | Unallocated l -> Format.fprintf ppf "access to unallocated %a" Loc.pp l
  | Uninitialised { loc; tid } ->
      Format.fprintf ppf "uninitialised non-atomic read of %a by thread %d"
        Loc.pp loc tid

exception Error of error

let error e = raise (Error e)
let create ?(policy = `Append) () =
  {
    next_base = 0;
    hists = Hashtbl.create 256;
    order = [];
    n_locs = 0;
    policy;
    version = 0;
    vnext = 1;
    snap_cache = None;
  }

let touch mem =
  mem.version <- mem.vnext;
  mem.vnext <- mem.vnext + 1

let alloc mem ~name ~size ~init_value =
  touch mem;
  let base = mem.next_base in
  mem.next_base <- base + 1;
  Loc.register_name ~base ~name;
  for off = 0 to size - 1 do
    let loc = Loc.make ~base ~off in
    let h = History.create ~loc ~init_value in
    Hashtbl.replace mem.hists loc h;
    mem.order <- (loc, h) :: mem.order;
    mem.n_locs <- mem.n_locs + 1
  done;
  Loc.make ~base ~off:0

let hist mem l =
  match Hashtbl.find_opt mem.hists l with
  | Some h -> h
  | None -> error (Unallocated l)

(* All messages a thread with view-of-[l] [from] may read.  Non-atomic reads
   are handled separately in [na_read]. *)
let read_choices mem l ~from = History.readable (hist mem l) ~from

let latest mem l = History.latest (hist mem l)
let max_ts mem l = History.max_ts (hist mem l)

(* Non-atomic access check: the accessing thread must have observed the
   mo-maximal write to the location, otherwise the access races with that
   write (ORC11 makes racy non-atomics undefined behaviour; we *detect* and
   report them instead).  Returns the unique readable message. *)
let na_check mem l ~(tv : Tview.t) ~tid ~kind =
  let h = hist mem l in
  let m = History.latest h in
  if not (Timestamp.leq (History.max_ts h) (View.get tv.Tview.cur l)) then
    error (Race { loc = l; tid; kind });
  m

let na_read mem l ~tv ~tid =
  let m = na_check mem l ~tv ~tid ~kind:"na-read" in
  (match !m.Msg.value with
  | Value.Poison -> error (Uninitialised { loc = l; tid })
  | _ -> ());
  m

(* Candidate timestamps for a new write by a thread whose view of [l] is
   [above]; the new write must be mo-after everything the writer observed. *)
let write_ts_choices mem l ~above =
  History.fresh_ts (hist mem l) ~policy:mem.policy ~above

let add_msg mem (m : Msg.t) =
  touch mem;
  History.add (hist mem m.loc) m

(* -- snapshot / restore ------------------------------------------------------

   A snapshot captures the allocator position plus one {!History.snapshot}
   per location — O(#locations) pointer copies; the per-location maps are
   persistent, so nothing message-level is duplicated.  The snapshot array
   is aligned with the [order] list (allocation order, newest first), so
   taking one is a plain list walk: no hashing and no tuple allocation —
   it is on the model checker's per-step checkpoint path.

   [restore] mutates the existing {!History.t} records in place (callers
   may hold handles to them) and removes locations allocated after the
   snapshot was taken, so re-executing the suffix re-allocates them at
   the same bases.  Restore targets are always states along the current
   execution's prefix, so the snapshotted locations are exactly the
   oldest [s_n_locs] entries of [order].

   Snapshots are version-cached: reads don't [touch] the store, so the
   checkpoint-per-step explorer reuses one snapshot across read-only
   steps instead of rebuilding the array. *)

let build_snapshot mem =
  match mem.order with
  | [] ->
      {
        s_version = mem.version;
        s_next_base = mem.next_base;
        s_n_locs = 0;
        s_hists = [||];
      }
  | (_, h0) :: tl ->
      let a = Array.make mem.n_locs (History.snapshot h0) in
      let rec fill i = function
        | [] -> ()
        | (_, h) :: tl ->
            a.(i) <- History.snapshot h;
            fill (i + 1) tl
      in
      fill 1 tl;
      {
        s_version = mem.version;
        s_next_base = mem.next_base;
        s_n_locs = mem.n_locs;
        s_hists = a;
      }

let snapshot mem =
  match mem.snap_cache with
  | Some s when s.s_version = mem.version -> s
  | _ ->
      let s = build_snapshot mem in
      mem.snap_cache <- Some s;
      s

let restore mem s =
  mem.next_base <- s.s_next_base;
  (* Locations allocated after the snapshot sit at the front of [order]. *)
  let rec drop n l =
    if n = 0 then l
    else
      match l with
      | (loc, _) :: tl ->
          Hashtbl.remove mem.hists loc;
          drop (n - 1) tl
      | [] -> invalid_arg "Memory.restore: snapshot from a different store"
  in
  let order = drop (mem.n_locs - s.s_n_locs) mem.order in
  mem.order <- order;
  mem.n_locs <- s.s_n_locs;
  let rec fill i = function
    | [] -> ()
    | (_, h) :: tl ->
        History.restore h s.s_hists.(i);
        fill (i + 1) tl
  in
  fill 0 order;
  (* The store's content is now exactly what [s] captured. *)
  mem.version <- s.s_version;
  mem.snap_cache <- Some s

let pp ppf mem =
  Hashtbl.iter
    (fun l h -> Format.fprintf ppf "%a: %a@." Loc.pp l History.pp h)
    mem.hists
