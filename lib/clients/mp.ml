open Compass_rmc
open Compass_event
open Compass_machine
open Compass_spec
open Compass_dstruct

(* The Message-Passing client of queues — the paper's Figure 1 and its
   verification sketch, Figure 3.

     enq(q, 41);            |           | while ([acq] flag == 0) {};
     enq(q, 42);            |  deq(q)   | deq(q)
     flag :=rel 1           |           | // returns 41 or 42, NOT empty

   The verified property: the right thread's dequeue can never return
   empty, because (1) at most one enqueue can have been consumed by the
   middle thread (the deqPerm(2) counting protocol of Figure 3), and
   (2) the release-acquire flag transfers the left thread's logical view
   {e1, e2} to the right thread, so both enqueues happen-before its
   dequeue, and QUEUE-EMPDEQ forbids the empty outcome.

   We check the property on every explored execution, check the deqPerm
   invariant (|G.so| <= 2), and additionally run the *exclusion analysis*:
   for each execution, would a hypothetical empty dequeue at the right
   thread's commit be ruled out by the spec?  Under LAThb (using the
   transferred logical view) it always is; under Cosmo-style LATso-abs
   (where the right thread has no so-chain to the enqueues) it never is —
   reproducing the paper's point that Cosmo's specs cannot verify this
   client (Section 1.1). *)

type stats = {
  mutable executions : int;
  mutable right_got_41 : int;
  mutable right_got_42 : int;
  mutable right_empty : int;  (** must stay 0 with a rel/acq flag *)
  mutable middle_empty : int;  (** fine: the middle thread may see empty *)
  mutable excluded_hb : int;  (** executions where LAThb rules out empty *)
  mutable excluded_so : int;  (** ... where LATso-abs does (never) *)
}

let fresh_stats () =
  {
    executions = 0;
    right_got_41 = 0;
    right_got_42 = 0;
    right_empty = 0;
    middle_empty = 0;
    excluded_hb = 0;
    excluded_so = 0;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>executions       %d@ right deq = 41   %d@ right deq = 42   %d@ \
     right deq = eps  %d@ middle deq = eps %d@ empty excluded by LAThb      \
     %d@ empty excluded by LATso-abs  %d@]"
    s.executions s.right_got_41 s.right_got_42 s.right_empty s.middle_empty
    s.excluded_hb s.excluded_so

(* Exclusion analysis.  [m0] is the set of enqueue events the right thread
   knows at its dequeue (its SeenQueue logical view): under hb-tracking it
   is {e1, e2}; under so-only tracking it is empty (the thread performed no
   prior queue operation).  The empty outcome is *excluded* if some known
   enqueue must still be undequeued: |m0| > number of dequeues that other
   threads could have committed (here at most 1, by deqPerm). *)
let excluded ~m0_size ~other_deqs = m0_size > other_deqs

let make ?(flag_write = Mode.Rel) ?(flag_read = Mode.Acq) ?(style = Styles.Hb)
    (factory : Iface.queue_factory) (st : stats) =
  Harness.scenario
    ~name:
      (Printf.sprintf "mp[%s, flag %s/%s]" factory.q_name
         (Mode.access_to_string flag_write)
         (Mode.access_to_string flag_read))
    (fun m ->
      let q = factory.make_queue m ~name:"q" in
      let flag = Machine.alloc m ~name:"flag" ~init:(Value.Int 0) 1 in
      let left =
        Prog.returning_unit
          (Prog.bind (q.Iface.enq (Value.Int 41)) (fun () ->
               Prog.bind (q.Iface.enq (Value.Int 42)) (fun () ->
                   Prog.store ~site:"mp.flag.publish" flag (Value.Int 1)
                     flag_write)))
      in
      let middle = q.Iface.deq () in
      let right =
        Prog.bind
          (Prog.await ~site:"mp.flag.await" flag flag_read
             (Value.equal (Value.Int 1)))
          (fun _ -> q.Iface.deq ())
      in
      let judge vs =
        st.executions <- st.executions + 1;
        let middle_v = vs.(1) and right_v = vs.(2) in
        if Value.equal middle_v Value.Null then
          st.middle_empty <- st.middle_empty + 1;
        (match right_v with
        | Value.Int 41 -> st.right_got_41 <- st.right_got_41 + 1
        | Value.Int 42 -> st.right_got_42 <- st.right_got_42 + 1
        | Value.Null -> st.right_empty <- st.right_empty + 1
        | _ -> ());
        (* Exclusion analysis: the right thread's knowledge. *)
        let other_deqs = if Value.equal middle_v Value.Null then 0 else 1 in
        if excluded ~m0_size:2 ~other_deqs then
          st.excluded_hb <- st.excluded_hb + 1;
        if excluded ~m0_size:0 ~other_deqs then
          st.excluded_so <- st.excluded_so + 1;
        (* The deqPerm(2) protocol invariant of Figure 3. *)
        let so_size = List.length (Graph.so q.Iface.q_graph) in
        if so_size > 2 then
          Explore.Violation
            (Printf.sprintf "deqPerm violated: %d successful dequeues" so_size)
        else if
          (* The verified property: with a release flag write and acquire
             flag read, the right dequeue is never empty. *)
          Mode.releases flag_write && Mode.acquires flag_read
          && Value.equal right_v Value.Null
        then Explore.Violation "right thread's dequeue returned empty"
        else
          Harness.graph_judge style Styles.Queue q.Iface.q_graph vs
      in
      ([ left; middle; right ], judge))

(* The weak-flag ablation: with a relaxed flag there is no view transfer;
   the right thread may observe an empty queue.  The scenario *expects* to
   find such executions (they are Pass here; the experiment reports their
   count — zero would mean the ablation failed to exhibit the behaviour).
   Note the right thread cannot non-atomically touch anything the left
   thread wrote (that would race); the queue itself is all-atomic. *)
let make_weak (factory : Iface.queue_factory) (st : stats) =
  Harness.scenario
    ~name:(Printf.sprintf "mp-weak[%s, flag rlx/rlx]" factory.q_name)
    (fun m ->
      let q = factory.make_queue m ~name:"q" in
      let flag = Machine.alloc m ~name:"flag" ~init:(Value.Int 0) 1 in
      let left =
        Prog.returning_unit
          (Prog.bind (q.Iface.enq (Value.Int 41)) (fun () ->
               Prog.bind (q.Iface.enq (Value.Int 42)) (fun () ->
                   Prog.store flag (Value.Int 1) Mode.Rlx)))
      in
      let middle = q.Iface.deq () in
      let right =
        Prog.bind (Prog.await flag Mode.Rlx (Value.equal (Value.Int 1)))
          (fun _ -> q.Iface.deq ())
      in
      let judge vs =
        st.executions <- st.executions + 1;
        (match vs.(2) with
        | Value.Int 41 -> st.right_got_41 <- st.right_got_41 + 1
        | Value.Int 42 -> st.right_got_42 <- st.right_got_42 + 1
        | Value.Null -> st.right_empty <- st.right_empty + 1
        | _ -> ());
        (* Consistency must still hold — the queue is correct; only the
           client-level exclusion argument is lost. *)
        Harness.graph_judge Styles.Hb Styles.Queue q.Iface.q_graph vs
      in
      ([ left; middle; right ], judge))
