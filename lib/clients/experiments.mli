open Compass_spec
open Compass_machine

(** The experiment battery of DESIGN.md (E1-E8): every evaluation claim of
    the paper (plus the E8 extension), run end to end with a
    machine-readable paper-vs-measured summary.  [bin/compass report]
    prints it; EXPERIMENTS.md records a reference run. *)

type line = {
  id : string;
  name : string;
  paper : string;  (** the paper's claim *)
  measured : string;  (** what this run measured *)
  ok : bool;
}

val pp_line : Format.formatter -> line -> unit

val e1 : ?max_execs:int -> ?jobs:int -> ?reduce:Machine.reduction -> unit -> line list
(** MP client (Figures 1 and 3) + the weak-flag ablation, per queue.

    Every experiment's exhaustive leg accepts [jobs] (shard the DFS
    across that many domains, {!Explore.pdfs}) and [reduce] (sleep-set
    or source-DPOR reduction).  Verdicts are preserved either way; with
    [reduce] the
    per-execution client counters quoted in [measured] only cover the
    representative interleavings actually explored. *)

type matrix_cell = {
  impl : string;
  style : Styles.style;
  tally : Styles.tally;
}

val matrix :
  ?dfs_execs:int ->
  ?rand_execs:int ->
  ?jobs:int ->
  ?reduce:Machine.reduction ->
  unit ->
  matrix_cell list
(** the raw spec-style satisfaction matrix (E2), including the lock-based
    SC baselines *)

val pp_matrix : Format.formatter -> matrix_cell list -> unit

val e2 :
  ?dfs_execs:int ->
  ?rand_execs:int ->
  ?jobs:int ->
  ?reduce:Machine.reduction ->
  unit ->
  matrix_cell list * line

val e2b : ?max_execs:int -> ?jobs:int -> ?reduce:Machine.reduction -> unit -> line
(** strong FIFO recovery under a client lock (Section 3.1), with the bare
    negative control *)

val e3 : ?max_execs:int -> ?jobs:int -> ?reduce:Machine.reduction -> unit -> line

val e4 :
  ?dfs_execs:int -> ?rand_execs:int -> ?jobs:int -> ?reduce:Machine.reduction -> unit -> line list

val e5 : ?max_execs:int -> ?jobs:int -> ?reduce:Machine.reduction -> unit -> line

val e6 :
  ?dfs_execs:int -> ?rand_execs:int -> ?jobs:int -> ?reduce:Machine.reduction -> unit -> line list

val e8 :
  ?dfs_execs:int -> ?rand_execs:int -> ?jobs:int -> ?reduce:Machine.reduction -> unit -> line list

val e7_paper_numbers : (string * string) list
(** the paper's proof-effort reference points (Section 1.2 / 6) *)

val all : ?quick:bool -> ?jobs:int -> ?reduce:Machine.reduction -> unit -> line list
(** the whole battery; [quick] divides budgets by ~10 *)
