open Compass_rmc
open Compass_event
open Compass_machine
open Compass_spec
open Compass_dstruct

(* Message passing through a *stack*: the same shape as Figure 1, with
   STACK-EMPPOP playing the role of QUEUE-EMPDEQ.  The left thread pushes
   41 and 42 then raises the flag; the middle thread pops once; the right
   thread waits on the flag and pops — by the transferred logical view
   {e1, e2} and the emppop condition, it can never see an empty stack.

   This exercises the stack instance of the paper's spec pattern with the
   same client-side counting argument (one permission per potential
   pop). *)

type stats = {
  mutable executions : int;
  mutable right_got : int;
  mutable right_empty : int;
}

let fresh_stats () = { executions = 0; right_got = 0; right_empty = 0 }

let make ?(style = Styles.Hb) (factory : Iface.stack_factory) (st : stats) =
  Harness.scenario
    ~name:(Printf.sprintf "mp-stack[%s]" factory.s_name)
    (fun m ->
      let s = factory.make_stack m ~name:"s" in
      let flag = Machine.alloc m ~name:"flag" ~init:(Value.Int 0) 1 in
      let left =
        Prog.returning_unit
          (Prog.bind (s.Iface.push (Value.Int 41)) (fun () ->
               Prog.bind (s.Iface.push (Value.Int 42)) (fun () ->
                   Prog.store ~site:"mp_stack.flag.publish" flag (Value.Int 1)
                     Mode.Rel)))
      in
      let middle = s.Iface.pop () in
      let right =
        Prog.bind
          (Prog.await ~site:"mp_stack.flag.await" flag Mode.Acq
             (Value.equal (Value.Int 1)))
          (fun _ -> s.Iface.pop ())
      in
      let judge vs =
        st.executions <- st.executions + 1;
        (match vs.(2) with
        | Value.Int _ -> st.right_got <- st.right_got + 1
        | Value.Null -> st.right_empty <- st.right_empty + 1
        | _ -> ());
        let so_size = List.length (Graph.so s.Iface.s_graph) in
        if so_size > 2 then
          Explore.Violation
            (Printf.sprintf "popPerm violated: %d successful pops" so_size)
        else if Value.equal vs.(2) Value.Null then
          Explore.Violation "right thread's pop returned empty"
        else Harness.graph_judge style Styles.Stack s.Iface.s_graph vs
      in
      ([ left; middle; right ], judge))
