open Compass_spec
open Compass_machine
open Compass_util

(** The refinement driver: implementation vs spec-as-implementation.

    For each observation client — a small scenario whose thread return
    values {e are} the observations (dequeued/popped values) — the driver

    + exhaustively explores the client over the {e spec object}
      ({!Compass_dstruct.Specobj}: the registered spec's abstract
      transitions executed atomically), collecting the set of outcome
      vectors the spec admits;
    + explores the same client over the {e implementation} and judges
      every finished execution by membership: an outcome vector outside
      the spec set is a refinement violation, and any machine fault
      (e.g. a data race) is one too.

    Outcome-set inclusion against the executable spec is the operational
    analogue of the paper's refinement between an implementation and its
    specification.  The spec object sits at the top of the strength
    ladder, yet inclusion holds for every correct implementation here
    because observation clients separate inserter and remover roles: the
    relaxed reorderings the weaker specs permit are not observable in
    return values on these shapes.  The broken [ms-weak] fixture fails
    with a replayable counterexample script (the publication race).

    Soundness: a spec-side exploration that is not exhaustive could
    under-approximate the admitted set and report false violations, so
    the driver records [spec_complete] per client and conservatively
    fails the client when the spec side did not exhaust its (tiny)
    tree. *)

type options = {
  max_execs : int;  (** implementation-side exploration budget *)
  spec_execs : int;  (** spec-side budget (the trees are tiny) *)
  jobs : int;
  reduce : Machine.reduction;
      (** implementation side only; verdict-preserving *)
}

val default_options : options

type client_result = {
  client : string;
  spec_outcomes : int;  (** distinct outcome vectors the spec admits *)
  spec_complete : bool;
  report : Explore.report;  (** the implementation-side exploration *)
  ok : bool;
}

type report = {
  struct_key : string;
  impl_name : string;
  spec_name : string;
  clients : client_result list;
  counterexample : (int * Explore.failure) option;
      (** first refinement violation and the index of the observation
          client that produced it: replayable with
          [compass replay --struct KEY --refine-client I --script ...] *)
  ok : bool;
}

val run : ?options:options -> Libspec.entry -> report
(** @raise Invalid_argument if the entry is not refinable *)

val client_scenario : Libspec.entry -> int -> Explore.scenario option
(** the [i]-th observation client over the entry's implementation, with a
    membership judge against a freshly explored spec outcome set — what
    counterexample replay runs *)

val pp : Format.formatter -> report -> unit
val to_json : report -> Jsonout.t
