open Compass_spec
open Compass_dstruct
open Compass_machine

(** The populated spec registry: every [lib/dstruct] structure bound to
    its spec, implementation factory, default client workloads, ladder
    expectations, and site metadata.

    {!Libspec} provides the registry {e mechanism} (it cannot see the
    implementations — they live above it); this module provides the
    {e population}, and is what the CLI tools resolve [--struct] keys
    through.  Calling any accessor forces registration, so there is no
    initialisation order to get right. *)

type Libspec.impl +=
  | Queue of Iface.queue_factory
  | Stack of Iface.stack_factory
        (** the implementation payloads: generic factories where one
            exists ([No_impl] otherwise — chase-lev, exchanger, whose
            clients construct them directly) *)

val ensure : unit -> unit
(** idempotent: register everything (implied by the accessors below) *)

val find : string -> Libspec.entry option
val all : unit -> Libspec.entry list
val keys : unit -> string list

val scenario : Libspec.entry -> int -> (unit -> Explore.scenario) option
(** the entry's [i]-th default workload ([None] out of range) *)

val sites : Libspec.entry -> (string * string) list
(** labeled site -> declared mode string across the entry's workloads,
    discovered by the static analyzer's symbolic evaluation (memoized;
    no exploration runs) *)

val spec_factory : Libspec.entry -> Libspec.impl
(** the entry's spec-as-implementation oracle ({!Specobj} over the
    entry's spec): [Queue] or [Stack] matching the entry's kind.
    @raise Invalid_argument if the entry is not refinable *)
