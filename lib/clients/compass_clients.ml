(** The paper's client verifications, as model-checked scenarios:

    - {!Mp}: the Message-Passing client of Figures 1 and 3, with the
      deqPerm counting protocol, the weak-flag ablation, and the
      LAThb-vs-LATso exclusion analysis;
    - {!Spsc_client}: the single-producer single-consumer client of
      Section 3.2 (end-to-end FIFO through arrays);
    - {!Pipeline}: a two-queue protocol client (the invariant-R composition
      of Section 2.2), mixing implementations;
    - {!Resource_exchange}: the resource-transfer exchanger client of
      Section 4.2, exercising view transfer through the race detector;
    - {!Es_compose}: the elimination-stack composition of Section 4, with
      the executable simulation check;
    - {!Mp_stack}: message passing through a stack (STACK-EMPPOP);
    - {!Strong_fifo}: Section 3.1's flexibility claim — a client lock
      recovers the strong FIFO condition (with a bare negative control);
    - {!Ws_client}: the work-stealing scheduler over the Chase-Lev deque
      (experiment E8), with the weak-fence ablation;
    - {!Litmus}: the substrate's litmus battery;
    - {!Experiments}: the E1-E8 paper-vs-measured battery;
    - {!Harness}: shared scenario plumbing and parametric workloads;
    - {!Specreg}: the populated spec registry — every structure bound to
      its spec, factory, default workloads and ladder expectations;
    - {!Refine}: the refinement driver — implementation outcome sets
      included in the spec object's ("spec-as-implementation"). *)

module Harness = Harness
module Litmus = Litmus
module Experiments = Experiments
module Mp = Mp
module Mp_stack = Mp_stack
module Strong_fifo = Strong_fifo
module Spsc_client = Spsc_client
module Pipeline = Pipeline
module Resource_exchange = Resource_exchange
module Es_compose = Es_compose
module Ws_client = Ws_client
module Specreg = Specreg
module Refine = Refine
