open Compass_rmc
open Compass_machine
open Compass_spec
open Compass_dstruct

(* The experiment battery of DESIGN.md (E1-E7): everything the paper's
   evaluation claims, run end to end, with a machine-readable summary.
   [bin/compass report] prints it; EXPERIMENTS.md records a reference
   run. *)

type line = {
  id : string;
  name : string;
  paper : string;  (** the paper's claim *)
  measured : string;  (** what this run measured *)
  ok : bool;
}

let pp_line ppf l =
  Format.fprintf ppf "@[<v2>[%s] %s: %s@ paper:    %s@ measured: %s@]"
    (if l.ok then "OK" else "FAIL")
    l.id l.name l.paper l.measured

let queue_factories = [ Msqueue.instantiate; Hwqueue.instantiate ]
let stack_factories = [ Treiber.instantiate; Elimination.instantiate ]

(* SC baselines, included in the matrix only (MP etc. hold trivially). *)
let matrix_queue_factories =
  queue_factories @ [ Msqueue_fences.instantiate; Lockqueue.instantiate ]
let matrix_stack_factories = stack_factories @ [ Lockstack.instantiate ]

(* The exhaustive leg shared by every experiment: the sequential DFS, or
   the sharded parallel driver when [jobs > 1].  [reduce] switches on
   sleep-set reduction; verdicts are preserved, but client-side counters
   then only cover the representative interleavings explored. *)
let edfs ~jobs ~reduce ~max_execs sc =
  if jobs > 1 then Explore.pdfs ~jobs ~max_execs ~reduce sc
  else Explore.dfs ~max_execs ~reduce sc

(* -- E1: MP client (Figures 1 and 3) ------------------------------------------ *)

let e1 ?(max_execs = 150_000) ?(jobs = 1) ?(reduce = Machine.RNone) () =
  List.concat_map
    (fun (factory : Iface.queue_factory) ->
      let st = Mp.fresh_stats () in
      let r = edfs ~jobs ~reduce ~max_execs (Mp.make factory st) in
      let stw = Mp.fresh_stats () in
      let rw = edfs ~jobs ~reduce ~max_execs (Mp.make_weak factory stw) in
      [
        {
          id = "E1";
          name = Printf.sprintf "MP with %s" factory.q_name;
          paper =
            "right thread's dequeue returns 41 or 42, never empty; \
             deqPerm(2) protocol holds; provable with LAThb, not with \
             Cosmo-style LATso";
          measured =
            Printf.sprintf
              "%d executions (%s): 41 x%d, 42 x%d, empty x%d; LAThb excludes \
               empty in %d/%d, LATso in %d/%d"
              r.Explore.executions
              (if r.Explore.complete then "exhaustive" else "budget")
              st.Mp.right_got_41 st.Mp.right_got_42 st.Mp.right_empty
              st.Mp.excluded_hb st.Mp.executions st.Mp.excluded_so
              st.Mp.executions;
          ok =
            Explore.ok r && st.Mp.right_empty = 0
            && st.Mp.excluded_hb = st.Mp.executions
            && st.Mp.excluded_so = 0;
        };
        {
          id = "E1";
          name = Printf.sprintf "MP ablation (relaxed flag) with %s" factory.q_name;
          paper =
            "without the release-acquire flag the empty outcome is \
             unavoidable (the behaviour Cosmo cannot exclude)";
          measured =
            Printf.sprintf "%d executions: empty observed x%d (queue itself \
                            stays consistent)"
              rw.Explore.executions stw.Mp.right_empty;
          ok = Explore.ok rw && stw.Mp.right_empty > 0;
        };
      ])
    queue_factories

(* -- E2: spec-style satisfaction matrix (Figure 2's hierarchy) ---------------- *)

type matrix_cell = {
  impl : string;
  style : Styles.style;
  tally : Styles.tally;
}

let matrix ?(dfs_execs = 25_000) ?(rand_execs = 2_000) ?(jobs = 1)
    ?(reduce = Machine.RNone) () =
  let run_queue (factory : Iface.queue_factory) style =
    let tally = Styles.fresh_tally () in
    let sc =
      Harness.scenario ~name:factory.q_name (fun m ->
          let q = factory.make_queue m ~name:"q" in
          let enq tid i = q.Iface.enq (Harness.val_of ~tid ~i) in
          let threads =
            [
              Prog.returning_unit (Prog.seq [ enq 0 0; enq 0 1 ]);
              Prog.returning_unit (Prog.seq [ enq 1 0 ]);
              Prog.returning_unit
                (Prog.seq
                   [
                     Prog.bind (q.Iface.deq ()) (fun _ -> Prog.return ());
                     Prog.bind (q.Iface.deq ()) (fun _ -> Prog.return ());
                   ]);
              Prog.returning_unit
                (Prog.bind (q.Iface.deq ()) (fun _ -> Prog.return ()));
            ]
          in
          ( threads,
            fun _ ->
              Styles.tally_one tally (Styles.check style Styles.Queue q.Iface.q_graph);
              Explore.Pass ))
    in
    ignore (edfs ~jobs ~reduce ~max_execs:dfs_execs sc);
    ignore (Explore.random ~execs:rand_execs ~seed:23 sc);
    { impl = factory.q_name; style; tally }
  in
  let run_stack (factory : Iface.stack_factory) style =
    let tally = Styles.fresh_tally () in
    let sc =
      Harness.scenario ~name:factory.s_name (fun m ->
          let s = factory.make_stack m ~name:"s" in
          let push tid i = s.Iface.push (Harness.val_of ~tid ~i) in
          let threads =
            [
              Prog.returning_unit (Prog.seq [ push 0 0; push 0 1 ]);
              Prog.returning_unit (Prog.seq [ push 1 0 ]);
              Prog.returning_unit
                (Prog.seq
                   [
                     Prog.bind (s.Iface.pop ()) (fun _ -> Prog.return ());
                     Prog.bind (s.Iface.pop ()) (fun _ -> Prog.return ());
                   ]);
              Prog.returning_unit
                (Prog.bind (s.Iface.pop ()) (fun _ -> Prog.return ()));
            ]
          in
          ( threads,
            fun _ ->
              Styles.tally_one tally (Styles.check style Styles.Stack s.Iface.s_graph);
              Explore.Pass ))
    in
    ignore (edfs ~jobs ~reduce ~max_execs:dfs_execs sc);
    ignore (Explore.random ~execs:rand_execs ~seed:23 sc);
    { impl = factory.s_name; style; tally }
  in
  List.concat_map
    (fun f -> List.map (run_queue f) Styles.all_styles)
    matrix_queue_factories
  @ List.concat_map
      (fun f -> List.map (run_stack f) Styles.all_styles)
      matrix_stack_factories

let pp_matrix ppf cells =
  let impls = List.sort_uniq compare (List.map (fun c -> c.impl) cells) in
  Format.fprintf ppf "%-14s" "impl \\ style";
  List.iter
    (fun s -> Format.fprintf ppf " %-12s" (Styles.style_name s))
    Styles.all_styles;
  Format.pp_print_newline ppf ();
  List.iter
    (fun impl ->
      Format.fprintf ppf "%-14s" impl;
      List.iter
        (fun style ->
          match
            List.find_opt (fun c -> c.impl = impl && c.style = style) cells
          with
          | Some c ->
              Format.fprintf ppf " %-12s"
                (if Styles.satisfied c.tally then "sat"
                 else
                   Printf.sprintf "FAIL %d/%d" c.tally.Styles.failed
                     c.tally.Styles.execs)
          | None -> Format.fprintf ppf " %-12s" "-")
        Styles.all_styles;
      Format.pp_print_newline ppf ())
    impls

(* The paper's expectations for the matrix.  "sat" means every explored
   execution passed; note SC-abs must fail for every relaxed
   implementation (Section 2.3), and LATabs styles must fail for the HW
   queue (Section 3.2). *)
let e2 ?dfs_execs ?rand_execs ?jobs ?reduce () =
  let cells = matrix ?dfs_execs ?rand_execs ?jobs ?reduce () in
  let sat impl style =
    match List.find_opt (fun c -> c.impl = impl && c.style = style) cells with
    | Some c -> Styles.satisfied c.tally
    | None -> false
  in
  let expectations =
    [
      (* impl, style, expected-satisfied *)
      ("ms-queue", Styles.Hb, true);
      ("ms-queue", Styles.So_abs, true);
      ("ms-queue", Styles.Hb_abs, true);
      ("ms-queue", Styles.Hist, true);
      ("ms-queue", Styles.Sc_abs, false);
      (* The fence-based MS queue sits exactly where the access-based one
         does: fences and accesses are interchangeable at the spec level. *)
      ("ms-queue-fences", Styles.Hb, true);
      ("ms-queue-fences", Styles.Hb_abs, true);
      ("ms-queue-fences", Styles.Hist, true);
      ("ms-queue-fences", Styles.Sc_abs, false);
      ("hw-queue", Styles.Hb, true);
      ("hw-queue", Styles.So_abs, false);
      ("hw-queue", Styles.Hb_abs, false);
      ("hw-queue", Styles.Hist, true);
      ("treiber", Styles.Hb, true);
      ("treiber", Styles.Hist, true);
      ("treiber", Styles.Sc_abs, false);
      ("elimination", Styles.Hb, true);
      ("elimination", Styles.Hist, true);
      (* The coarse-grained SC baselines satisfy everything, including the
         SC-strength spec — Section 3.1's "sufficient synchronisation"
         limit. *)
      ("lock-queue", Styles.Sc_abs, true);
      ("lock-queue", Styles.Hist, true);
      ("lock-stack", Styles.Sc_abs, true);
      ("lock-stack", Styles.Hist, true);
    ]
  in
  let ok =
    List.for_all (fun (impl, style, expect) -> sat impl style = expect) expectations
  in
  ( cells,
    {
      id = "E2";
      name = "spec-style satisfaction matrix";
      paper =
        "MS queue satisfies LATabs-hb (hence LATso-abs, LAThb); HW queue \
         satisfies only LAThb (+ offline LAThist); Treiber and the \
         elimination stack satisfy LAThist/LAThb; nothing relaxed reaches \
         SC strength — only the coarse-grained lock baselines do";
      measured =
        (let b = Buffer.create 256 in
         let ppf = Format.formatter_of_buffer b in
         pp_matrix ppf cells;
         Format.pp_print_flush ppf ();
         "\n" ^ Buffer.contents b);
      ok;
    } )

(* -- E2b: strong FIFO recovery under external synchronisation (§3.1) ----------- *)

let e2b ?(max_execs = 60_000) ?(jobs = 1) ?(reduce = Machine.RNone) () =
  let results =
    List.map
      (fun (factory : Iface.queue_factory) ->
        let st = Strong_fifo.fresh_stats () in
        let r = edfs ~jobs ~reduce ~max_execs (Strong_fifo.make factory st) in
        let broke = ref 0 in
        let rc =
          edfs ~jobs ~reduce ~max_execs (Strong_fifo.make_control factory broke)
        in
        (factory.q_name, r, rc, !broke))
      queue_factories
  in
  {
    id = "E2b";
    name = "strong FIFO recovery under a client lock (Section 3.1)";
    paper =
      "a client adding sufficient external synchronisation knows lhb is \
       total and regains the strong FIFO condition (d', d) ∈ lhb — for any \
       implementation, even the weak HW queue";
    measured =
      String.concat "; "
        (List.map
           (fun (name, (r : Explore.report), (rc : Explore.report), broke) ->
             Printf.sprintf
               "%s: %d locked executions all totally ordered + strong FIFO \
                + SC-empty; bare control: lhb non-total in %d/%d"
               name r.Explore.executions broke rc.Explore.executions)
           results);
    ok =
      List.for_all
        (fun (_, r, rc, broke) -> Explore.ok r && Explore.ok rc && broke > 0)
        results;
  }

(* -- E3: HW queue vs commit-point abstract states ------------------------------ *)

let e3 ?(max_execs = 60_000) ?(jobs = 1) ?(reduce = Machine.RNone) () =
  let tally_abs = Styles.fresh_tally () and tally_hist = Styles.fresh_tally () in
  let sc =
    Harness.scenario ~name:"hw-abs" (fun m ->
        let t = Hwqueue.create m ~name:"q" in
        let threads =
          [
            Prog.returning_unit (Hwqueue.enq t (Value.Int 1));
            Prog.returning_unit (Hwqueue.enq t (Value.Int 2));
            Prog.returning_unit
              (Prog.bind (Hwqueue.deq t) (fun _ -> Prog.return ()));
          ]
        in
        ( threads,
          fun _ ->
            Styles.tally_one tally_abs (Queue_spec.abstract_state (Hwqueue.graph t));
            Styles.tally_one tally_hist
              (Styles.check Styles.Hist Styles.Queue (Hwqueue.graph t));
            Explore.Pass ))
  in
  ignore (edfs ~jobs ~reduce ~max_execs sc);
  {
    id = "E3";
    name = "Herlihy-Wing: abstract states fail, linearisation exists";
    paper =
      "constructing the abstract state at HW commit points is not possible \
       (needs prophecy); the weaker LAThb/offline linearisation works \
       (Section 3.2)";
    measured =
      Printf.sprintf
        "commit-point abstract state FAILS in %d/%d executions; offline \
         linearisation (LAThist search) holds in %d/%d"
        tally_abs.Styles.failed tally_abs.Styles.execs
        (tally_hist.Styles.execs - tally_hist.Styles.failed)
        tally_hist.Styles.execs;
    ok = tally_abs.Styles.failed > 0 && tally_hist.Styles.failed = 0;
  }

(* -- E4: SPSC ------------------------------------------------------------------ *)

let e4 ?(dfs_execs = 30_000) ?(rand_execs = 3_000) ?(jobs = 1)
    ?(reduce = Machine.RNone) () =
  List.map
    (fun (factory : Iface.queue_factory) ->
      let st = Spsc_client.fresh_stats () in
      let r1 =
        edfs ~jobs ~reduce ~max_execs:dfs_execs
          (Spsc_client.make ~n:2 ~retries:3 factory st)
      in
      let r2 =
        Explore.random ~execs:rand_execs ~seed:29
          (Spsc_client.make ~n:4 factory st)
      in
      {
        id = "E4";
        name = Printf.sprintf "SPSC with %s" factory.q_name;
        paper = "derived SPSC specs give end-to-end FIFO: a_c = a_p";
        measured =
          Printf.sprintf
            "%d DFS + %d random executions (%d distinct), FIFO held in all \
             (%d retries on empty)"
            r1.Explore.executions r2.Explore.executions r2.Explore.distinct
            st.Spsc_client.empties;
        ok = Explore.ok r1 && Explore.ok r2;
      })
    queue_factories

(* -- E5: Treiber LAThist ------------------------------------------------------- *)

let e5 ?(max_execs = 40_000) ?(jobs = 1) ?(reduce = Machine.RNone) () =
  let total = ref 0 and direct = ref 0 and searched = ref 0 in
  let sc =
    Harness.scenario ~name:"treiber-hist" (fun m ->
        let t = Treiber.create m ~name:"s" in
        let threads =
          [
            Prog.returning_unit (Treiber.push t (Value.Int 1));
            Prog.returning_unit (Treiber.push t (Value.Int 2));
            Prog.returning_unit
              (Prog.bind (Treiber.pop t) (fun _ -> Prog.return ()));
            Prog.returning_unit
              (Prog.bind (Treiber.pop t) (fun _ -> Prog.return ()));
          ]
        in
        ( threads,
          fun _ ->
            incr total;
            let g = Treiber.graph t in
            if Linearize.commit_order_valid Linearize.Stack g then incr direct
            else begin
              match Linearize.search Linearize.Stack g with
              | Linearize.Linearizable _ -> incr searched
              | _ -> ()
            end;
            if Stack_spec.consistent g = [] then Explore.Pass
            else Explore.Violation "inconsistent" ))
  in
  ignore (edfs ~jobs ~reduce ~max_execs sc);
  {
    id = "E5";
    name = "Treiber stack: linearisable history (Figure 4)";
    paper =
      "the relaxed Treiber stack satisfies LAThist; [to] is derivable from \
       lhb plus the head's modification order (= our commit order)";
    measured =
      Printf.sprintf
        "%d executions: commit order is a valid [to] in %d; the remaining %d \
         (stale empty reads) linearise by reordering; 0 unlinearisable"
        !total !direct !searched;
    ok = !total > 0 && !direct + !searched = !total;
  }

(* -- E6: exchanger + elimination stack (Section 4) ------------------------------ *)

let e6 ?(dfs_execs = 40_000) ?(rand_execs = 4_000) ?(jobs = 1)
    ?(reduce = Machine.RNone) () =
  let stx = Resource_exchange.fresh_stats () in
  let rx =
    edfs ~jobs ~reduce ~max_execs:dfs_execs
      (Resource_exchange.make ~threads:2 stx)
  in
  (* DFS explores uncontended schedules first, so small budgets may see no
     matches; a random leg makes swaps occur reliably. *)
  let rx_rand =
    Explore.random ~execs:(max rand_execs 2_000) ~seed:37
      (Resource_exchange.make ~threads:2 stx)
  in
  let stes = Es_compose.fresh_stats () in
  let res =
    Explore.random ~execs:(max rand_execs 4_000) ~seed:31
      (Es_compose.make ~pushers:2 ~poppers:2 ~ops:2 stes)
  in
  [
    {
      id = "E6";
      name = "exchanger: matched pairs, atomic helping, resource transfer";
      paper =
        "first RMC exchanger spec: symmetric so pairs committed atomically \
         together; supports resource exchange at commit points";
      measured =
        Printf.sprintf
          "%d executions (%d distinct in the random leg): %d swaps, %d \
           failed exchanges, all consistent; non-atomic resource reads \
           race-free"
          (rx.Explore.executions + rx_rand.Explore.executions)
          rx_rand.Explore.distinct stx.Resource_exchange.swaps
          stx.Resource_exchange.fails;
      ok = Explore.ok rx && Explore.ok rx_rand && stx.Resource_exchange.swaps > 0;
    };
    {
      id = "E6";
      name = "elimination stack composition";
      paper =
        "the ES satisfies the stack specs assuming only the parts' LAThb \
         specs; eliminated pairs commit atomically together, preserving \
         LIFO";
      measured =
        Printf.sprintf
          "%d executions (%d distinct): StackConsistent + simulation held \
           in all; %d ops via base stack, %d eliminated pairs"
          res.Explore.executions res.Explore.distinct
          stes.Es_compose.via_base stes.Es_compose.eliminated;
      ok = Explore.ok res && stes.Es_compose.eliminated > 0;
    };
  ]

(* -- E8: Chase-Lev work-stealing deque (the paper's Section 6 future work) ------ *)

let e8 ?(dfs_execs = 120_000) ?(rand_execs = 120_000) ?(jobs = 1)
    ?(reduce = Machine.RNone) () =
  let st = Ws_client.fresh_stats () in
  let r1 =
    edfs ~jobs ~reduce ~max_execs:dfs_execs
      (Ws_client.make ~tasks:2 ~thieves:1 ~steals:1 st)
  in
  let r2 =
    Explore.random ~execs:(rand_execs / 4) ~seed:3
      (Ws_client.make ~tasks:3 ~thieves:2 ~steals:2 st)
  in
  let stw = Ws_client.fresh_stats () in
  let rw =
    Explore.random ~execs:(max rand_execs 60_000) ~seed:1
      (Ws_client.make ~weak_fences:true ~tasks:2 ~thieves:1 ~steals:2 stw)
  in
  [
    {
      id = "E8";
      name = "Chase-Lev work-stealing deque (extension: Section 6 future work)";
      paper =
        "future work: apply the Compass approach to work-stealing queues \
         [Chase-Lev; Le et al.].  Our WsDequeConsistent conditions: unique \
         takes, owner-sequential ops, steal order = push order, owner-LIFO, \
         and a *weaker* empty condition than the queue's (the owner's \
         bottom reservation precedes its pop commit)";
      measured =
        Printf.sprintf
          "%d executions: 0 violations; %d pops, %d steals, %d empty steals; \
           LAThist holds throughout"
          (r1.Explore.executions + r2.Explore.executions)
          st.popped st.stolen st.empty_steals;
      ok = Explore.ok r1 && Explore.ok r2 && st.stolen > 0;
    };
    {
      id = "E8";
      name = "Chase-Lev ablation: SC fences weakened to acq-rel";
      paper =
        "the take/steal race on the last element needs the SC fences \
         [Le et al.]; with weaker fences elements are taken twice";
      measured =
        (let violating =
           rw.Explore.executions - rw.Explore.passed - rw.Explore.discarded
         in
         Printf.sprintf
           "%d executions: %d violating (a task taken twice / ws-uniq) — the \
            double-take the SC fences prevent"
           rw.Explore.executions violating);
      ok = rw.Explore.violations <> [];
    };
  ]

(* -- E7: effort table ----------------------------------------------------------- *)

(* The paper reports proof effort (KLOC of Coq).  Our counterpart: lines of
   checking/verification code per library, plus the checking statistics.
   LoC numbers are computed by [bin/compass report] from the source tree;
   here we record the paper's reference points. *)
let e7_paper_numbers =
  [
    ("library verifications", "1.5-3.0 KLOC each, median 2.1 KLOC");
    ("client verifications", "0.1-0.5 KLOC each, median 0.2 KLOC");
    ("Treiber stack (Iris/Coq)", "2.2 KLOC vs 12 KLOC in Isabelle [15]");
  ]

(* -- the whole battery ----------------------------------------------------------- *)

let all ?(quick = false) ?(jobs = 1) ?(reduce = Machine.RNone) () =
  let scale n = if quick then n / 10 else n in
  e1 ~max_execs:(scale 150_000) ~jobs ~reduce ()
  @ (let _, line =
       e2 ~dfs_execs:(scale 25_000) ~rand_execs:(scale 2_000) ~jobs ~reduce ()
     in
     [ line ])
  @ [ e2b ~max_execs:(scale 60_000) ~jobs ~reduce () ]
  @ [ e3 ~max_execs:(scale 60_000) ~jobs ~reduce () ]
  @ e4 ~dfs_execs:(scale 30_000) ~rand_execs:(scale 3_000) ~jobs ~reduce ()
  @ [ e5 ~max_execs:(scale 40_000) ~jobs ~reduce () ]
  @ e6 ~dfs_execs:(scale 40_000) ~rand_execs:(scale 4_000) ~jobs ~reduce ()
  @ e8 ~dfs_execs:(scale 120_000)
      ~rand_execs:(max (scale 120_000) 60_000)
      ~jobs ~reduce ()
