open Compass_rmc
open Compass_machine
open Prog.Syntax

(* The classic litmus tests, validating the ORC11 substrate itself: which
   weak behaviours the model must exhibit, and which it must forbid.

   Each test is a scenario whose judge always passes (the machine-level
   properties — coherence, RMW atomicity, race freedom — are checked by
   construction or reported as faults); the interesting outcome is counted
   in a shared cell so tests/experiments can assert observability or
   absence after exploration. *)

type t = {
  scenario : Explore.scenario;
  observed : int ref;  (** executions exhibiting the distinguished outcome *)
  expect : [ `Observable | `Forbidden ];
  descr : string;
}

let vi n = Value.Int n
let is1 = Value.equal (vi 1)

let alloc0 m name = Machine.alloc m ~name ~init:(vi 0) 1

let finished2 f = function
  | Machine.Finished [| r1; r2 |] -> f r1 r2
  | Machine.Finished _ -> Explore.Violation "arity"
  | Machine.Fault s -> Explore.Violation ("fault: " ^ s)
  | Machine.Blocked s -> Explore.Discard s
  | Machine.Bounded -> Explore.Discard "bounded"
  | Machine.Pruned -> Explore.Discard "pruned"

let finished4 f = function
  | Machine.Finished [| r1; r2; r3; r4 |] -> f r1 r2 r3 r4
  | Machine.Finished _ -> Explore.Violation "arity"
  | Machine.Fault s -> Explore.Violation ("fault: " ^ s)
  | Machine.Blocked s -> Explore.Discard s
  | Machine.Bounded -> Explore.Discard "bounded"
  | Machine.Pruned -> Explore.Discard "pruned"

(* Store Buffering: both threads may read 0 under relaxed (and even under
   SC-less rel/acq) accesses — the hallmark weak behaviour. *)
let sb ?(wmode = Mode.Rlx) ?(rmode = Mode.Rlx) () =
  let observed = ref 0 in
  let scenario =
    {
      Explore.name = "SB";
      build =
        (fun m ->
          let x = alloc0 m "x" and y = alloc0 m "y" in
          let t a b =
            let* () = Prog.store a (vi 1) wmode in
            Prog.load b rmode
          in
          Machine.spawn m [ t x y; t y x ];
          finished2 (fun r1 r2 ->
              if Value.equal r1 (vi 0) && Value.equal r2 (vi 0) then
                incr observed;
              Explore.Pass));
    }
  in
  { scenario; observed; expect = `Observable; descr = "SB: r1 = r2 = 0" }

(* Message Passing with an atomic data cell: reading flag = 1 with acquire
   after a release write forbids reading the stale x = 0. *)
let mp ?(wmode = Mode.Rel) ?(rmode = Mode.Acq) () =
  let observed = ref 0 in
  let expect = if Mode.releases wmode && Mode.acquires rmode then `Forbidden else `Observable in
  let scenario =
    {
      Explore.name = "MP";
      build =
        (fun m ->
          let x = alloc0 m "x" and flag = alloc0 m "flag" in
          let t1 =
            let* () = Prog.store x (vi 1) Mode.Rlx in
            let* () = Prog.store flag (vi 1) wmode in
            Prog.return Value.Unit
          in
          let t2 =
            let* _ = Prog.await flag rmode is1 in
            Prog.load x Mode.Rlx
          in
          Machine.spawn m [ t1; t2 ];
          finished2 (fun _ r2 ->
              if Value.equal r2 (vi 0) then incr observed;
              Explore.Pass));
    }
  in
  { scenario; observed; expect; descr = "MP: stale x = 0 after flag = 1" }

(* MP through fences: relaxed accesses plus release/acquire fences must
   synchronise just like rel/acq accesses. *)
let mp_fences () =
  let observed = ref 0 in
  let scenario =
    {
      Explore.name = "MP+fences";
      build =
        (fun m ->
          let x = alloc0 m "x" and flag = alloc0 m "flag" in
          let t1 =
            let* () = Prog.store x (vi 1) Mode.Rlx in
            let* () = Prog.fence Mode.F_rel in
            let* () = Prog.store flag (vi 1) Mode.Rlx in
            Prog.return Value.Unit
          in
          let t2 =
            let* _ = Prog.await flag Mode.Rlx is1 in
            let* () = Prog.fence Mode.F_acq in
            Prog.load x Mode.Rlx
          in
          Machine.spawn m [ t1; t2 ];
          finished2 (fun _ r2 ->
              if Value.equal r2 (vi 0) then incr observed;
              Explore.Pass));
    }
  in
  { scenario; observed; expect = `Forbidden; descr = "MP+fences: stale x = 0" }

(* SB with SC fences between the store and the load: the weak outcome must
   disappear — SC fences are totally ordered through the global SC view. *)
let sb_sc_fences () =
  let observed = ref 0 in
  let scenario =
    {
      Explore.name = "SB+Fsc";
      build =
        (fun m ->
          let x = alloc0 m "x" and y = alloc0 m "y" in
          let t a b =
            let* () = Prog.store a (vi 1) Mode.Rlx in
            let* () = Prog.fence Mode.F_sc in
            Prog.load b Mode.Rlx
          in
          Machine.spawn m [ t x y; t y x ];
          finished2 (fun r1 r2 ->
              if Value.equal r1 (vi 0) && Value.equal r2 (vi 0) then
                incr observed;
              Explore.Pass));
    }
  in
  { scenario; observed; expect = `Forbidden; descr = "SB+Fsc: r1 = r2 = 0" }

(* Coherence (CoRR): two reads of the same location by one thread may not
   observe writes in anti-modification order. *)
let corr () =
  let observed = ref 0 in
  let scenario =
    {
      Explore.name = "CoRR";
      build =
        (fun m ->
          let x = alloc0 m "x" in
          let writer =
            let* () = Prog.store x (vi 1) Mode.Rlx in
            let* () = Prog.store x (vi 2) Mode.Rlx in
            Prog.return Value.Unit
          in
          let reader =
            let* a = Prog.load x Mode.Rlx in
            let* b = Prog.load x Mode.Rlx in
            Prog.return (vi ((10 * Value.to_int_exn a) + Value.to_int_exn b))
          in
          Machine.spawn m [ writer; reader ];
          finished2 (fun _ r ->
              if Value.equal r (vi 21) then incr observed;
              Explore.Pass));
    }
  in
  { scenario; observed; expect = `Forbidden; descr = "CoRR: reads 2 then 1" }

(* Coherence (CoWW): one thread's writes to a location take mo in program
   order — the final value is the program-order-last write, under either
   timestamp policy. *)
let coww ?(policy = `Append) () =
  let observed = ref 0 in
  let scenario =
    {
      Explore.name = "CoWW";
      build =
        (fun m ->
          ignore policy;
          let x = alloc0 m "x" in
          let w =
            let* () = Prog.store x (vi 1) Mode.Rlx in
            let* () = Prog.store x (vi 2) Mode.Rlx in
            Prog.return Value.Unit
          in
          Machine.spawn m [ w; Prog.return Value.Unit ];
          fun outcome ->
            match outcome with
            | Machine.Finished _ ->
                if
                  not
                    (Value.equal !(Memory.latest (Machine.memory m) x).Msg.value
                       (vi 2))
                then incr observed;
                Explore.Pass
            | Machine.Fault s -> Explore.Violation ("fault: " ^ s)
            | Machine.Blocked s -> Explore.Discard s
            | Machine.Bounded -> Explore.Discard "bounded"
            | Machine.Pruned -> Explore.Discard "pruned");
    }
  in
  { scenario; observed; expect = `Forbidden; descr = "CoWW: mo against po" }

(* Coherence (CoWR): a thread cannot read below its own write. *)
let cowr () =
  let observed = ref 0 in
  let scenario =
    {
      Explore.name = "CoWR";
      build =
        (fun m ->
          let x = alloc0 m "x" in
          let w =
            let* () = Prog.store x (vi 1) Mode.Rlx in
            Prog.load x Mode.Rlx
          in
          (* A concurrent writer, so there are several messages around. *)
          let other = Prog.returning_unit (Prog.store x (vi 2) Mode.Rlx) in
          Machine.spawn m [ w; other ];
          finished2 (fun r1 _ ->
              if Value.equal r1 (vi 0) then incr observed;
              Explore.Pass));
    }
  in
  { scenario; observed; expect = `Forbidden; descr = "CoWR: reads below own write" }

(* Load Buffering: ORC11 forbids po ∪ rf cycles, so r1 = r2 = 1 must be
   unobservable — automatic under interleaving semantics, asserted here. *)
let lb () =
  let observed = ref 0 in
  let scenario =
    {
      Explore.name = "LB";
      build =
        (fun m ->
          let x = alloc0 m "x" and y = alloc0 m "y" in
          let t a b =
            let* r = Prog.load a Mode.Rlx in
            let* () = Prog.store b (vi 1) Mode.Rlx in
            Prog.return r
          in
          Machine.spawn m [ t x y; t y x ];
          finished2 (fun r1 r2 ->
              if Value.equal r1 (vi 1) && Value.equal r2 (vi 1) then
                incr observed;
              Explore.Pass));
    }
  in
  { scenario; observed; expect = `Forbidden; descr = "LB: r1 = r2 = 1" }

(* IRIW: two writers, two readers; the readers may disagree on the order of
   the independent writes under rel/acq (no SC accesses in ORC11). *)
let iriw () =
  let observed = ref 0 in
  let scenario =
    {
      Explore.name = "IRIW";
      build =
        (fun m ->
          let x = alloc0 m "x" and y = alloc0 m "y" in
          let w l = Prog.returning_unit (Prog.store l (vi 1) Mode.Rel) in
          let r a b =
            let* ra = Prog.load a Mode.Acq in
            let* rb = Prog.load b Mode.Acq in
            Prog.return (vi ((10 * Value.to_int_exn ra) + Value.to_int_exn rb))
          in
          Machine.spawn m [ w x; w y; r x y; r y x ];
          finished4 (fun _ _ r3 r4 ->
              if Value.equal r3 (vi 10) && Value.equal r4 (vi 10) then
                incr observed;
              Explore.Pass));
    }
  in
  { scenario; observed; expect = `Observable; descr = "IRIW: readers disagree" }

(* 2+2W: needs mo-middle timestamp insertion; only observable under the
   [`Gap] timestamp policy.  Outcome x = y = 1 requires each location's
   first write to end up mo-last. *)
let two_two_w () =
  let observed = ref 0 in
  let scenario =
    {
      Explore.name = "2+2W";
      build =
        (fun m ->
          let x = alloc0 m "x" and y = alloc0 m "y" in
          let t a b =
            let* () = Prog.store a (vi 1) Mode.Rlx in
            let* () = Prog.store b (vi 2) Mode.Rlx in
            Prog.return Value.Unit
          in
          Machine.spawn m [ t x y; t y x ];
          fun outcome ->
            match outcome with
            | Machine.Finished _ ->
                Machine.join_views m;
                let read l = Machine.solo m (Prog.load l Mode.Na) in
                if Value.equal (read x) (vi 1) && Value.equal (read y) (vi 1)
                then incr observed;
                Explore.Pass
            | Machine.Fault s -> Explore.Violation ("fault: " ^ s)
            | Machine.Blocked s -> Explore.Discard s
            | Machine.Bounded -> Explore.Discard "bounded"
            | Machine.Pruned -> Explore.Discard "pruned");
    }
  in
  { scenario; observed; expect = `Observable; descr = "2+2W: final x = y = 1" }

(* Write-to-Read Causality (WRC): a chain of rel/acq synchronisations is
   transitive. *)
let wrc () =
  let observed = ref 0 in
  let scenario =
    {
      Explore.name = "WRC";
      build =
        (fun m ->
          let x = alloc0 m "x" and y = alloc0 m "y" in
          let t1 = Prog.returning_unit (Prog.store x (vi 1) Mode.Rel) in
          let t2 =
            let* _ = Prog.await x Mode.Acq is1 in
            Prog.returning_unit (Prog.store y (vi 1) Mode.Rel)
          in
          let t3 =
            let* _ = Prog.await y Mode.Acq is1 in
            Prog.load x Mode.Rlx
          in
          Machine.spawn m [ t1; t2; t3 ];
          fun outcome ->
            match outcome with
            | Machine.Finished [| _; _; r3 |] ->
                if Value.equal r3 (vi 0) then incr observed;
                Explore.Pass
            | Machine.Finished _ -> Explore.Violation "arity"
            | Machine.Fault s -> Explore.Violation ("fault: " ^ s)
            | Machine.Blocked s -> Explore.Discard s
            | Machine.Bounded -> Explore.Discard "bounded"
            | Machine.Pruned -> Explore.Discard "pruned");
    }
  in
  { scenario; observed; expect = `Forbidden; descr = "WRC: stale x = 0 at t3" }

(* RMW atomicity: concurrent FAAs never lose increments. *)
let faa_atomic ?(threads = 3) () =
  let observed = ref 0 in
  let scenario =
    {
      Explore.name = "FAA";
      build =
        (fun m ->
          let c = alloc0 m "c" in
          let t = Prog.map (Prog.faa c 1 Mode.Rlx) (fun _ -> Value.Unit) in
          Machine.spawn m (List.init threads (fun _ -> t));
          fun outcome ->
            match outcome with
            | Machine.Finished _ ->
                Machine.join_views m;
                let v = Machine.solo m (Prog.load c Mode.Na) in
                if not (Value.equal v (vi threads)) then incr observed;
                Explore.Pass
            | Machine.Fault s -> Explore.Violation ("fault: " ^ s)
            | Machine.Blocked s -> Explore.Discard s
            | Machine.Bounded -> Explore.Discard "bounded"
            | Machine.Pruned -> Explore.Discard "pruned");
    }
  in
  { scenario; observed; expect = `Forbidden; descr = "FAA: lost increment" }

(* Deliberately racy message passing: the data cell is written and read
   *non-atomically* with no synchronisation at all, so the conflicting
   pair is unordered by hb — the machine's eager race detector faults
   the execution, and both race analyses (the RC11 race clause and the
   analyzer's vector-clock detector) must flag the same pair.  NOT part
   of [all ()]: the battery expects race-free tests; this one exists as
   the positive control for the synchronization analyzer's tests. *)
let racy_na () =
  let observed = ref 0 in
  let scenario =
    {
      Explore.name = "RACY-NA";
      build =
        (fun m ->
          let x = alloc0 m "x" and flag = alloc0 m "flag" in
          let t1 =
            let* () = Prog.store ~site:"racy.data.write" x (vi 1) Mode.Na in
            let* () = Prog.store flag (vi 1) Mode.Rlx in
            Prog.return Value.Unit
          in
          let t2 =
            let* _ = Prog.load flag Mode.Rlx in
            Prog.load ~site:"racy.data.read" x Mode.Na
          in
          Machine.spawn m [ t1; t2 ];
          finished2 (fun _ _ ->
              incr observed;
              Explore.Pass));
    }
  in
  {
    scenario;
    observed;
    expect = `Observable;
    descr = "racy na MP: the machine must fault, both detectors must flag";
  }

let all () =
  [
    sb ();
    sb_sc_fences ();
    mp ();
    mp ~wmode:Mode.Rlx ~rmode:Mode.Rlx ();
    mp_fences ();
    corr ();
    coww ();
    cowr ();
    lb ();
    iriw ();
    wrc ();
    faa_atomic ();
  ]

(* Run one litmus test exhaustively; [Ok] if the expectation holds.
   [jobs > 1] shards the DFS across domains; [reduce] prunes commuted
   interleavings (the observation count then covers the representatives
   actually explored — the verdict is unaffected, because the
   distinguished outcome is invariant under commuting independent
   steps). *)
let verdict ?(max_execs = 100_000) ?config ?(jobs = 1)
    ?(reduce = Machine.RNone) ?(incremental = true)
    ?(stride = Explore.default_stride) t =
  let report =
    if jobs > 1 then
      Explore.pdfs ~jobs ~max_execs ~reduce ~incremental ~stride ?config
        t.scenario
    else Explore.dfs ~max_execs ~reduce ~incremental ~stride ?config t.scenario
  in
  let obs = !(t.observed) in
  let ok =
    Explore.ok report
    && match t.expect with `Observable -> obs > 0 | `Forbidden -> obs = 0
  in
  (ok, report, obs)
