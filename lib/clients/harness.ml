open Compass_rmc
open Compass_machine
open Compass_spec
open Compass_dstruct

(* Scenario-building helpers shared by all client verifications and
   experiments: wrap the machine outcome handling, attach per-execution
   consistency checks, and provide parametric workloads. *)

let vi n = Value.Int n

(* Standard outcome plumbing: faults are violations, blocked/bounded
   executions are discarded (spin fuel, capacity), finished executions go
   to the judge. *)
let scenario ~name build =
  {
    Explore.name;
    build =
      (fun m ->
        let threads, judge = build m in
        Machine.spawn m threads;
        fun outcome ->
          match outcome with
          | Machine.Finished vs -> judge vs
          | Machine.Fault s -> Explore.Violation ("fault: " ^ s)
          | Machine.Blocked s -> Explore.Discard s
          | Machine.Bounded -> Explore.Discard "bounded"
          (* The explorer intercepts pruned runs before the judge;
             defensive only. *)
          | Machine.Pruned -> Explore.Discard "pruned");
  }

(* The verdict/judge glue lives once in {!Libspec}; these are the
   kind-indexed convenience aliases clients are written against. *)
let first_violation = Libspec.first_violation
let ( &&& ) = Libspec.( &&& )
let graph_judge style kind g = Libspec.graph_judge style (Libspec.of_kind kind) g

(* -- parametric workloads ----------------------------------------------------

   [n] enqueuer threads each enqueue [ops] distinct values; [d] dequeuer
   threads each dequeue [ops] times (accepting empties).  Values encode
   (thread, index) so all enqueued values are distinct — required for
   unambiguous so matching in the checkers. *)

let val_of ~tid ~i = vi (((tid + 1) * 100) + i)

let queue_workload ?(style = Styles.Hb) (factory : Iface.queue_factory)
    ~enqers ~deqers ~ops () =
  scenario ~name:(Printf.sprintf "%s[%dx%d enq, %d deq]" factory.q_name enqers ops deqers)
    (fun m ->
      let q = factory.make_queue m ~name:"q" in
      let enq_thread tid =
        Prog.returning_unit
          (Prog.for_ 0 (ops - 1) (fun i -> q.Iface.enq (val_of ~tid ~i)))
      in
      let deq_thread _tid =
        Prog.returning_unit
          (Prog.for_ 0 (ops - 1) (fun _ ->
               Prog.bind (q.Iface.deq ()) (fun _ -> Prog.return ())))
      in
      let threads =
        List.init enqers enq_thread @ List.init deqers deq_thread
      in
      (threads, graph_judge style Styles.Queue q.Iface.q_graph))

let stack_workload ?(style = Styles.Hb) (factory : Iface.stack_factory)
    ~pushers ~poppers ~ops () =
  scenario
    ~name:(Printf.sprintf "%s[%dx%d push, %d pop]" factory.s_name pushers ops poppers)
    (fun m ->
      let s = factory.make_stack m ~name:"s" in
      let push_thread tid =
        Prog.returning_unit
          (Prog.for_ 0 (ops - 1) (fun i -> s.Iface.push (val_of ~tid ~i)))
      in
      let pop_thread _tid =
        Prog.returning_unit
          (Prog.for_ 0 (ops - 1) (fun _ ->
               Prog.bind (s.Iface.pop ()) (fun _ -> Prog.return ())))
      in
      let threads =
        List.init pushers push_thread @ List.init poppers pop_thread
      in
      (threads, graph_judge style Styles.Stack s.Iface.s_graph))

(* Mixed workload: every thread both pushes and pops. *)
let stack_mixed ?(style = Styles.Hb) (factory : Iface.stack_factory) ~threads
    ~ops () =
  scenario ~name:(Printf.sprintf "%s[mixed %dx%d]" factory.s_name threads ops)
    (fun m ->
      let s = factory.make_stack m ~name:"s" in
      let thread tid =
        Prog.returning_unit
          (Prog.for_ 0 (ops - 1) (fun i ->
               Prog.bind (s.Iface.push (val_of ~tid ~i)) (fun () ->
                   Prog.bind (s.Iface.pop ()) (fun _ -> Prog.return ()))))
      in
      (List.init threads thread, graph_judge style Styles.Stack s.Iface.s_graph))

(* Exchanger workload: [threads] threads, each exchanging one distinct
   value; judge checks ExchangerConsistent plus pairwise value swaps.
   [impl] picks the implementation (single slot by default; pass
   [Exchanger_array.instantiate ~slots:k] for the array). *)
let exchanger_workload ?(impl = fun m ~name -> Exchanger.instantiate m ~name)
    ~threads () =
  scenario ~name:(Printf.sprintf "exchanger[%d]" threads)
    (fun m ->
      let x = impl m ~name:"x" in
      let thread tid = x.Iface.exchange (val_of ~tid ~i:0) in
      let judge vs =
        match first_violation (Exchanger_spec.consistent x.Iface.x_graph) with
        | Explore.Pass ->
            (* A thread's return value, if non-bottom, must be some other
               thread's input, and the swaps must pair up. *)
            let n = Array.length vs in
            let ok = ref true in
            Array.iteri
              (fun i v ->
                if not (Value.equal v Value.Null) then begin
                  let j =
                    match v with
                    | Value.Int enc -> (enc / 100) - 1
                    | _ -> -1
                  in
                  if j < 0 || j >= n || j = i then ok := false
                  else if not (Value.equal vs.(j) (val_of ~tid:i ~i:0)) then
                    ok := false
                end)
              vs;
            if !ok then Explore.Pass
            else Explore.Violation "exchange results do not pair up"
        | v -> v
      in
      (List.init threads thread, judge))
