open Compass_rmc
open Compass_machine

(** The classic litmus tests, validating the ORC11 substrate itself:
    which weak behaviours the model must exhibit and which it must
    forbid. *)

type t = {
  scenario : Explore.scenario;
  observed : int ref;  (** executions exhibiting the distinguished outcome *)
  expect : [ `Observable | `Forbidden ];
  descr : string;
}

val sb : ?wmode:Mode.access -> ?rmode:Mode.access -> unit -> t
(** store buffering: both-read-zero, observable *)

val sb_sc_fences : unit -> t
(** SB with SC fences: forbidden (validates the global SC view) *)

val mp : ?wmode:Mode.access -> ?rmode:Mode.access -> unit -> t
(** message passing: stale read forbidden under rel/acq, observable
    otherwise *)

val mp_fences : unit -> t
(** MP through relaxed accesses + rel/acq fences: forbidden *)

val corr : unit -> t
(** coherence: anti-mo read pairs forbidden *)

val coww : ?policy:[ `Append | `Gap ] -> unit -> t
(** coherence: one thread's writes take mo in program order *)

val cowr : unit -> t
(** coherence: a thread cannot read below its own write *)

val lb : unit -> t
(** load buffering: forbidden — ORC11's defining [po ∪ rf] acyclicity *)

val iriw : unit -> t
(** independent reads of independent writes: readers may disagree under
    rel/acq *)

val two_two_w : unit -> t
(** 2+2W: needs mo-middle insertion; observable only under the [`Gap]
    timestamp policy *)

val wrc : unit -> t
(** write-to-read causality: rel/acq chains are transitive *)

val faa_atomic : ?threads:int -> unit -> t
(** RMW atomicity: no lost increments *)

val racy_na : unit -> t
(** deliberately racy non-atomic MP — the machine faults on it; the
    positive control for the race detectors (not part of {!all}) *)

val all : unit -> t list
(** the standard battery (excludes {!two_two_w}, which needs its own
    machine config) *)

val verdict :
  ?max_execs:int ->
  ?config:Machine.config ->
  ?jobs:int ->
  ?reduce:Machine.reduction ->
  ?incremental:bool ->
  ?stride:int ->
  t ->
  bool * Explore.report * int
(** run exhaustively; [true] iff the expectation holds (and no
    violations); also returns the report and the observation count.
    [jobs > 1] shards the DFS across domains ({!Explore.pdfs});
    [reduce] selects a partial-order reduction (sleep sets or
    source-DPOR) — the verdict is preserved, but the observation count
    then only covers the representative interleavings actually
    explored. *)
