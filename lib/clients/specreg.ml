open Compass_spec
open Compass_dstruct

(* The populated spec registry.

   [Libspec] owns the table and the entry shape; this module contributes
   the implementation payloads (it can see the factories) and the default
   client workloads — the MP client of Figure 1 paired, where MP alone
   cannot reach a path, with a small contended workload (tail helping,
   competing dequeuers).  Only sites these workloads exercise are
   audited; analyzer verdicts are relative to them. *)

type Libspec.impl +=
  | Queue of Iface.queue_factory
  | Stack of Iface.stack_factory

(* -- default workloads -------------------------------------------------------- *)

let mp_queue factory () = Mp.make factory (Mp.fresh_stats ())
let mp_stack factory () = Mp_stack.make factory (Mp_stack.fresh_stats ())

let wl_queue factory () =
  Harness.queue_workload factory ~enqers:2 ~deqers:1 ~ops:1 ()

let wl_stack factory () =
  Harness.stack_workload factory ~pushers:2 ~poppers:1 ~ops:1 ()

let ws_small () =
  Ws_client.make ~tasks:2 ~thieves:1 ~steals:1 (Ws_client.fresh_stats ())

let exchanger_small () = Harness.exchanger_workload ~threads:2 ()

(* -- the entries -------------------------------------------------------------- *)

(* Ladder expectations are experiment E2's matrix rows (styles the matrix
   does not exercise for a structure are omitted). *)

let entries () =
  [
    {
      Libspec.key = "ms";
      struct_name = "ms-queue";
      descr =
        "Michael-Scott queue (release-acquire) under MP and a 2-enqueuer \
         workload";
      spec = Libspec.queue;
      impl = Queue Msqueue.instantiate;
      ladder =
        [
          (Libspec.Hb, true); (Libspec.So_abs, true); (Libspec.Hb_abs, true);
          (Libspec.Hist, true); (Libspec.Sc_abs, false);
        ];
      site_prefix = Some "msqueue.";
      scenarios = [ mp_queue Msqueue.instantiate; wl_queue Msqueue.instantiate ];
      smoke = wl_queue Msqueue.instantiate;
      expect_violation = false;
      refinable = true;
    };
    {
      Libspec.key = "ms-fences";
      struct_name = "ms-queue-fences";
      descr =
        "Michael-Scott queue (relaxed accesses + fences) under MP and a \
         2-enqueuer workload";
      spec = Libspec.queue;
      impl = Queue Msqueue_fences.instantiate;
      ladder =
        [
          (Libspec.Hb, true); (Libspec.Hb_abs, true); (Libspec.Hist, true);
          (Libspec.Sc_abs, false);
        ];
      site_prefix = Some "msqueue_f.";
      scenarios =
        [
          mp_queue Msqueue_fences.instantiate;
          wl_queue Msqueue_fences.instantiate;
        ];
      smoke = wl_queue Msqueue_fences.instantiate;
      expect_violation = false;
      refinable = true;
    };
    {
      Libspec.key = "ms-weak";
      struct_name = "ms-queue-weak";
      descr =
        "the checked-in publication-relaxed Michael-Scott mutant (its \
         baseline must fail)";
      spec = Libspec.queue;
      impl = Queue Msqueue_weak.instantiate;
      ladder = [];
      site_prefix = Some "msqueue_weak.";
      scenarios = [ mp_queue Msqueue_weak.instantiate ];
      smoke = mp_queue Msqueue_weak.instantiate;
      expect_violation = true;
      refinable = true;
    };
    {
      Libspec.key = "hw";
      struct_name = "hw-queue";
      descr = "Herlihy-Wing queue (rel enq / acq deq) under MP";
      spec = Libspec.queue;
      impl = Queue Hwqueue.instantiate;
      ladder =
        [
          (Libspec.Hb, true); (Libspec.So_abs, false); (Libspec.Hb_abs, false);
          (Libspec.Hist, true);
        ];
      site_prefix = Some "hwqueue.";
      scenarios = [ mp_queue Hwqueue.instantiate ];
      smoke = wl_queue Hwqueue.instantiate;
      expect_violation = false;
      refinable = true;
    };
    {
      Libspec.key = "lock-queue";
      struct_name = "lock-queue";
      descr = "coarse lock-based queue (SC baseline) under MP";
      spec = Libspec.queue;
      impl = Queue Lockqueue.instantiate;
      ladder = [ (Libspec.Sc_abs, true); (Libspec.Hist, true) ];
      site_prefix = Some "lockqueue.";
      scenarios = [ mp_queue Lockqueue.instantiate ];
      smoke = wl_queue Lockqueue.instantiate;
      expect_violation = false;
      refinable = true;
    };
    {
      Libspec.key = "treiber";
      struct_name = "treiber";
      descr = "Treiber stack under stack-MP and a 2-pusher workload";
      spec = Libspec.stack;
      impl = Stack Treiber.instantiate;
      ladder =
        [ (Libspec.Hb, true); (Libspec.Hist, true); (Libspec.Sc_abs, false) ];
      site_prefix = Some "treiber.";
      scenarios =
        [ mp_stack Treiber.instantiate; wl_stack Treiber.instantiate ];
      smoke = wl_stack Treiber.instantiate;
      expect_violation = false;
      refinable = true;
    };
    {
      Libspec.key = "lock-stack";
      struct_name = "lock-stack";
      descr = "coarse lock-based stack (SC baseline) under a 2-pusher workload";
      spec = Libspec.stack;
      impl = Stack Lockstack.instantiate;
      ladder = [ (Libspec.Sc_abs, true); (Libspec.Hist, true) ];
      site_prefix = None;
      scenarios = [ mp_stack Lockstack.instantiate; wl_stack Lockstack.instantiate ];
      smoke = wl_stack Lockstack.instantiate;
      expect_violation = false;
      refinable = true;
    };
    {
      Libspec.key = "es";
      struct_name = "elimination";
      descr =
        "elimination stack (Treiber + exchanger, Section 4.1) under \
         stack-MP and a 2-pusher workload";
      spec = Libspec.stack;
      impl = Stack Elimination.instantiate;
      ladder = [ (Libspec.Hb, true); (Libspec.Hist, true) ];
      site_prefix = None;
      scenarios =
        [ mp_stack Elimination.instantiate; wl_stack Elimination.instantiate ];
      smoke = wl_stack Elimination.instantiate;
      expect_violation = false;
      refinable = true;
    };
    {
      Libspec.key = "chaselev";
      struct_name = "chase-lev";
      descr =
        "Chase-Lev work-stealing deque under the scheduler client \
         (experiment E8)";
      spec = Libspec.deque;
      impl = Libspec.No_impl;
      ladder = [];
      site_prefix = None;
      scenarios = [ ws_small ];
      smoke = ws_small;
      expect_violation = false;
      refinable = false;
    };
    {
      Libspec.key = "exchanger";
      struct_name = "exchanger";
      descr = "single-slot exchanger with helping (Section 4.2)";
      spec = Libspec.exchanger;
      impl = Libspec.No_impl;
      ladder = [];
      site_prefix = Some "exchanger.";
      scenarios = [ exchanger_small ];
      smoke = exchanger_small;
      expect_violation = false;
      refinable = false;
    };
  ]

let registered = ref false

let ensure () =
  if not !registered then begin
    registered := true;
    List.iter Libspec.register (entries ())
  end

let find key = ensure (); Libspec.find key
let all () = ensure (); Libspec.all ()
let keys () = ensure (); Libspec.keys ()

let scenario (e : Libspec.entry) i = List.nth_opt e.Libspec.scenarios i

(* Site metadata comes from the static analyzer's symbolic discovery —
   no exploration, no execution budget — and is memoized per key: the
   CLI asks for it both when emitting [specs --json] and when validating
   [replay --weaken] site labels. *)
let site_table : (string, (string * string) list) Hashtbl.t = Hashtbl.create 8

let sites (e : Libspec.entry) =
  match Hashtbl.find_opt site_table e.Libspec.key with
  | Some s -> s
  | None ->
      let s = Compass_static.Static.site_modes e.Libspec.scenarios in
      Hashtbl.replace site_table e.Libspec.key s;
      s

let spec_factory (e : Libspec.entry) =
  if not e.Libspec.refinable then
    invalid_arg (Printf.sprintf "structure %s is not refinable" e.Libspec.key);
  match e.Libspec.impl with
  | Queue _ -> Queue (Specobj.queue ~spec:e.Libspec.spec ())
  | Stack _ -> Stack (Specobj.stack ~spec:e.Libspec.spec ())
  | _ ->
      invalid_arg
        (Printf.sprintf "structure %s has no implementation factory"
           e.Libspec.key)
