open Compass_rmc
open Compass_machine
open Compass_spec
open Compass_dstruct
open Compass_util
open Prog.Syntax

(* The refinement driver: outcome-set inclusion of an implementation in
   its spec object (see refine.mli for the argument). *)

type options = {
  max_execs : int;
  spec_execs : int;
  jobs : int;
  reduce : Machine.reduction;
}

let default_options =
  { max_execs = 200_000; spec_execs = 200_000; jobs = 1; reduce = Machine.RNone }

type client_result = {
  client : string;
  spec_outcomes : int;
  spec_complete : bool;
  report : Explore.report;
  ok : bool;
}

type report = {
  struct_key : string;
  impl_name : string;
  spec_name : string;
  clients : client_result list;
  counterexample : (int * Explore.failure) option;
  ok : bool;
}

(* -- observation clients ------------------------------------------------------ *)

(* Thread return values are the observations; removers pack what they saw
   into their result.  Values are [val_of]-distinct and < 1000, so the
   packing is injective. *)

let code = function Value.Int n -> n | _ -> 0
let pack2 a b = Value.Int ((code a * 1000) + code b)
let v tid i = Harness.val_of ~tid ~i
let key_of vs = String.concat "," (List.map Value.to_string (Array.to_list vs))

let queue_clients :
    (string
    * (Iface.queue_factory ->
      judge:(Value.t array -> Explore.verdict) ->
      Explore.scenario))
    list =
  let sc name (factory : Iface.queue_factory) ~judge build =
    Harness.scenario ~name:(factory.Iface.q_name ^ ":" ^ name) (fun m ->
        (build (factory.make_queue m ~name:"q"), judge))
  in
  [
    (* one inserter, one remover observing twice: FIFO order is visible *)
    ( "enq2|deq2",
      fun f ~judge ->
        sc "enq2|deq2" f ~judge (fun q ->
            [
              Prog.returning_unit
                (Prog.seq [ q.Iface.enq (v 0 0); q.Iface.enq (v 0 1) ]);
              (let* a = q.Iface.deq () in
               let* b = q.Iface.deq () in
               Prog.return (pack2 a b));
            ]) );
    (* competing enqueuers (tail helping) against one observer *)
    ( "enq|enq|deq",
      fun f ~judge ->
        sc "enq|enq|deq" f ~judge (fun q ->
            [
              Prog.returning_unit (q.Iface.enq (v 0 0));
              Prog.returning_unit (q.Iface.enq (v 1 0));
              q.Iface.deq ();
            ]) );
    (* competing dequeuers (head-CAS race) over one insertion *)
    ( "enq|deq|deq",
      fun f ~judge ->
        sc "enq|deq|deq" f ~judge (fun q ->
            [
              Prog.returning_unit (q.Iface.enq (v 0 0));
              q.Iface.deq ();
              q.Iface.deq ();
            ]) );
  ]

let stack_clients :
    (string
    * (Iface.stack_factory ->
      judge:(Value.t array -> Explore.verdict) ->
      Explore.scenario))
    list =
  let sc name (factory : Iface.stack_factory) ~judge build =
    Harness.scenario ~name:(factory.Iface.s_name ^ ":" ^ name) (fun m ->
        (build (factory.make_stack m ~name:"s"), judge))
  in
  [
    ( "push2|pop2",
      fun f ~judge ->
        sc "push2|pop2" f ~judge (fun s ->
            [
              Prog.returning_unit
                (Prog.seq [ s.Iface.push (v 0 0); s.Iface.push (v 0 1) ]);
              (let* a = s.Iface.pop () in
               let* b = s.Iface.pop () in
               Prog.return (pack2 a b));
            ]) );
    ( "push|push|pop",
      fun f ~judge ->
        sc "push|push|pop" f ~judge (fun s ->
            [
              Prog.returning_unit (s.Iface.push (v 0 0));
              Prog.returning_unit (s.Iface.push (v 1 0));
              s.Iface.pop ();
            ]) );
    ( "push|pop|pop",
      fun f ~judge ->
        sc "push|pop|pop" f ~judge (fun s ->
            [
              Prog.returning_unit (s.Iface.push (v 0 0));
              s.Iface.pop ();
              s.Iface.pop ();
            ]) );
  ]

type cl = {
  cl_name : string;
  impl_sc : judge:(Value.t array -> Explore.verdict) -> Explore.scenario;
  spec_sc : judge:(Value.t array -> Explore.verdict) -> Explore.scenario;
}

let clients_for (e : Libspec.entry) =
  match (e.Libspec.impl, Specreg.spec_factory e) with
  | Specreg.Queue f, Specreg.Queue sf ->
      List.map
        (fun (n, b) -> { cl_name = n; impl_sc = b f; spec_sc = b sf })
        queue_clients
  | Specreg.Stack f, Specreg.Stack sf ->
      List.map
        (fun (n, b) -> { cl_name = n; impl_sc = b f; spec_sc = b sf })
        stack_clients
  | _ ->
      invalid_arg
        (Printf.sprintf "structure %s is not refinable" e.Libspec.key)

(* -- the driver --------------------------------------------------------------- *)

let collect tbl vs =
  Hashtbl.replace tbl (key_of vs) ();
  Explore.Pass

let membership tbl vs =
  let k = key_of vs in
  if Hashtbl.mem tbl k then Explore.Pass
  else
    Explore.Violation
      (Printf.sprintf "outcome [%s] is not admitted by the spec object" k)

let spec_set ~spec_execs (c : cl) =
  let tbl = Hashtbl.create 64 in
  let r = Explore.dfs ~max_execs:spec_execs (c.spec_sc ~judge:(collect tbl)) in
  (tbl, r)

let run ?(options = default_options) (e : Libspec.entry) =
  let cex = ref None in
  let clients =
    List.mapi
      (fun i c ->
        let tbl, sr = spec_set ~spec_execs:options.spec_execs c in
        let sc = c.impl_sc ~judge:(membership tbl) in
        let r =
          if options.jobs > 1 then
            Explore.pdfs ~jobs:options.jobs ~max_execs:options.max_execs
              ~reduce:options.reduce sc
          else
            Explore.dfs ~max_execs:options.max_execs ~reduce:options.reduce sc
        in
        if !cex = None then
          (match r.Explore.violations with
          | f :: _ -> cex := Some (i, f)
          | [] -> ());
        {
          client = c.cl_name;
          spec_outcomes = Hashtbl.length tbl;
          spec_complete = sr.Explore.complete;
          report = r;
          ok = Explore.ok r && sr.Explore.complete;
        })
      (clients_for e)
  in
  let impl_name =
    match e.Libspec.impl with
    | Specreg.Queue f -> f.Iface.q_name
    | Specreg.Stack f -> f.Iface.s_name
    | _ -> e.Libspec.struct_name
  in
  {
    struct_key = e.Libspec.key;
    impl_name;
    spec_name = e.Libspec.spec.Libspec.name;
    clients;
    counterexample = !cex;
    ok = List.for_all (fun (c : client_result) -> c.ok) clients;
  }

let client_scenario (e : Libspec.entry) i =
  match List.nth_opt (clients_for e) i with
  | None -> None
  | Some c ->
      let tbl, _ = spec_set ~spec_execs:default_options.spec_execs c in
      Some (c.impl_sc ~judge:(membership tbl))

(* -- reporting ---------------------------------------------------------------- *)

let pp ppf r =
  Format.fprintf ppf "@[<v>refinement: %s (impl %s) against spec %s@,"
    r.struct_key r.impl_name r.spec_name;
  List.iter
    (fun c ->
      Format.fprintf ppf "  %-14s %7d impl executions vs %3d spec outcomes%s  %s@,"
        c.client c.report.Explore.executions c.spec_outcomes
        (if c.spec_complete then "" else " (spec side INCOMPLETE)")
        (if c.ok then "included"
         else
           match c.report.Explore.violations with
           | f :: _ -> "VIOLATION: " ^ f.Explore.message
           | [] -> "FAIL"))
    r.clients;
  (match r.counterexample with
  | Some (i, f) ->
      Format.fprintf ppf "  counterexample (client %d) script: %s@," i
        (String.concat ","
           (List.map string_of_int (Array.to_list (Explore.failure_script f))))
  | None -> ());
  Format.fprintf ppf "  verdict: %s@]"
    (if r.ok then "REFINES" else "does NOT refine")

let to_json r =
  Jsonout.Obj
    [
      ("struct", Jsonout.Str r.struct_key);
      ("impl", Jsonout.Str r.impl_name);
      ("spec", Jsonout.Str r.spec_name);
      ("ok", Jsonout.Bool r.ok);
      ( "clients",
        Jsonout.List
          (List.map
             (fun c ->
               Jsonout.Obj
                 [
                   ("client", Jsonout.Str c.client);
                   ("spec_outcomes", Jsonout.Int c.spec_outcomes);
                   ("spec_complete", Jsonout.Bool c.spec_complete);
                   ("ok", Jsonout.Bool c.ok);
                   ("report", Explore.report_to_json c.report);
                 ])
             r.clients) );
      ( "counterexample",
        match r.counterexample with
        | None -> Jsonout.Null
        | Some (i, f) ->
            Jsonout.Obj
              [
                ("client", Jsonout.Int i);
                ("message", Jsonout.Str f.Explore.message);
                ("script", Jsonout.int_array (Explore.failure_script f));
                ("trace", Compass_machine.Decision.trace_to_json f.Explore.trace);
              ] );
    ]
