open Compass_machine

(** Lint passes over symbolic paths ({!Sym}).

    [Defect] findings (publication, acquire-pairing, relaxed-CAS-success)
    must be empty for every correct structure at declared modes;
    [Candidate] findings (na-race pairs) over-approximate and are held
    to soundness only: they must contain every dynamically detected race
    pair (the differential harness). *)

type severity = Defect | Candidate

val severity_to_string : severity -> string

type finding = {
  lint : string;
  severity : severity;
  site : string;
  partner : string option;
  scenario : string;
  detail : string;
}

val fkey : finding -> string * string * string option
(** identity for dedup / base-vs-hypothesis comparison (scenario-blind) *)

val run :
  ?hyp:Override.t ->
  ?with_candidates:bool ->
  scenario:string ->
  Sym.path list ->
  finding list
(** all passes under hypothetical override [hyp] (defaults to declared
    modes); [with_candidates:false] skips the na-race pass (hypothesis
    runs only need defects) *)
