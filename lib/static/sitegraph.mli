open Compass_rmc

(** The static access-site graph: sites (with their strongest observed
    mode, threads, canonical locations and read/write polarity) plus
    same-location may-alias edges between them. *)

type kind = KAccess of Mode.access | KFence of Mode.fence

val kind_to_string : kind -> string

type site = {
  key : string;
  kind : kind;  (** strongest mode observed at the site *)
  labeled : bool;  (** an instrumented label, not an unlabeled fallback *)
  tids : int list;  (** sorted *)
  locs : string list;  (** canonical location names, sorted *)
  reads : bool;
  writes : bool;
}

type edge = {
  a : string;
  b : string;
  loc : string;  (** the shared canonical location *)
  cross_thread : bool;  (** observed from distinct threads *)
}

type t = { sites : site list; edges : edge list }

val build : Sym.path list -> t
(** sites in first-seen order across the given paths *)

val labeled_modes : t -> (string * string) list
(** labeled sites with their declared mode strings — the per-structure
    site metadata [compass specs --json] cross-links by *)
