open Compass_rmc

(* The static access-site graph: one node per site (label, or the
   unlabeled fallback key), carrying the strongest mode seen, the
   threads and canonical locations that touch it, and read/write
   polarity; one edge per pair of sites that may touch the same
   canonical location (the may-alias relation the lints and the
   dynamic differential compare against). *)

type kind = KAccess of Mode.access | KFence of Mode.fence

let kind_to_string = function
  | KAccess m -> Mode.access_to_string m
  | KFence f -> Format.asprintf "%a" Mode.pp_fence f

type site = {
  key : string;
  kind : kind;
  labeled : bool;
  tids : int list;  (** sorted *)
  locs : string list;  (** canonical location names, sorted *)
  reads : bool;
  writes : bool;
}

type edge = { a : string; b : string; loc : string; cross_thread : bool }
type t = { sites : site list; edges : edge list }

let mode_rank = function
  | Mode.Na -> 0
  | Mode.Rlx -> 1
  | Mode.Acq | Mode.Rel -> 2
  | Mode.AcqRel -> 3

type acc = {
  mutable k : kind;
  mutable ts : int list;
  mutable ls : string list;
  mutable rd : bool;
  mutable wr : bool;
  lab : bool;
}

let build (paths : Sym.path list) : t =
  let tbl : (string, acc) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  (* canonical loc key -> (site key, tid) occurrences, plus a name *)
  let locs : (int, string * (string * int) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (p : Sym.path) ->
      Array.iter
        (fun (e : Sym.ev) ->
          let key = Sym.site_key p e in
          let kind =
            match e.Sym.ekind with
            | Sym.EFence f -> KFence f
            | _ -> KAccess e.Sym.mode
          in
          let a =
            match Hashtbl.find_opt tbl key with
            | Some a -> a
            | None ->
                let a =
                  {
                    k = kind;
                    ts = [];
                    ls = [];
                    rd = false;
                    wr = false;
                    lab = e.Sym.site <> None;
                  }
                in
                Hashtbl.replace tbl key a;
                order := key :: !order;
                a
          in
          (match (a.k, kind) with
          | KAccess m0, KAccess m when mode_rank m > mode_rank m0 -> a.k <- kind
          | _ -> ());
          if not (List.mem p.Sym.tid a.ts) then a.ts <- p.Sym.tid :: a.ts;
          (match e.Sym.ekind with
          | Sym.ELoad | Sym.EAwait -> a.rd <- true
          | Sym.EStore | Sym.EAlloc -> a.wr <- true
          | Sym.EUpdate s ->
              a.rd <- true;
              if s then a.wr <- true
          | Sym.EFence _ -> ());
          match e.Sym.cloc with
          | None -> ()
          | Some cl ->
              let name = Format.asprintf "%a" Loc.pp cl in
              if not (List.mem name a.ls) then a.ls <- name :: a.ls;
              let lk = Loc.key cl in
              let _, occs =
                match Hashtbl.find_opt locs lk with
                | Some x -> x
                | None ->
                    let x = (name, ref []) in
                    Hashtbl.replace locs lk x;
                    x
              in
              if not (List.mem (key, p.Sym.tid) !occs) then
                occs := (key, p.Sym.tid) :: !occs)
        p.Sym.events)
    paths;
  let sites =
    List.rev_map
      (fun key ->
        let a = Hashtbl.find tbl key in
        {
          key;
          kind = a.k;
          labeled = a.lab;
          tids = List.sort compare a.ts;
          locs = List.sort compare a.ls;
          reads = a.rd;
          writes = a.wr;
        })
      !order
  in
  let edges = ref [] in
  Hashtbl.iter
    (fun _ (name, occs) ->
      let keys = List.sort_uniq compare (List.map fst !occs) in
      let cross a b =
        List.exists
          (fun (k1, t1) ->
            k1 = a
            && List.exists (fun (k2, t2) -> k2 = b && t2 <> t1) !occs)
          !occs
      in
      let rec pairs = function
        | [] -> ()
        | a :: rest ->
            List.iter
              (fun b ->
                edges :=
                  { a; b; loc = name; cross_thread = cross a b || cross b a }
                  :: !edges)
              rest;
            pairs rest
      in
      pairs keys)
    locs;
  { sites; edges = List.sort compare !edges }

let labeled_modes t =
  List.filter_map
    (fun s -> if s.labeled then Some (s.key, kind_to_string s.kind) else None)
    t.sites
